module spooftrack

go 1.22
