// Mitigation: close the loop the paper's introduction sketches — use the
// localization output to drive automatic DoS mitigation via BGP flowspec
// (RFC 5575). An attacker floods the honeypot through the border router;
// the tracker localizes the source clusters; flowspec drop rules are
// generated for the candidate networks, disseminated in wire format, and
// installed at the border. The attack volume collapses while legitimate
// traffic keeps flowing.
package main

import (
	"fmt"
	"log"
	"net"
	"net/netip"
	"time"

	"spooftrack"
	"spooftrack/internal/amp"
	"spooftrack/internal/flowspec"
)

func main() {
	// Offline: campaign and clusters.
	params := spooftrack.DefaultTrackerParams(21)
	tp := spooftrack.DefaultGenParams(21)
	tp.NumASes = 1000
	params.World.Topo = &tp
	params.World.MaxPoisonTargets = 20
	params.UseTruth = true
	fmt.Println("preparing: campaign + clusters...")
	tracker, err := spooftrack.NewTracker(params)
	if err != nil {
		log.Fatal(err)
	}

	// The attack: one source AS spoofing toward the honeypot.
	rng := spooftrack.NewRNG(5)
	placement := tracker.PlaceSingleSource(rng)
	attackerIdx := -1
	for k, w := range placement.Weight {
		if w > 0 {
			attackerIdx = k
		}
	}
	attackerAS := tracker.Campaign.Sources[attackerIdx]
	attackerASN := tracker.World.Graph.ASN(attackerAS)
	fmt.Printf("attacker: AS%d\n", attackerASN)

	// Localize from simulated per-config honeypot volumes.
	volumes := tracker.SimulateAttack(placement)
	report, err := tracker.LocalizeAttack(volumes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("localized to %d candidate network(s): %v\n",
		len(report.CandidateASNs), report.CandidateASNs)

	// Generate flowspec drop rules for the candidates' prefixes,
	// protecting the honeypot prefix, scoped to the amplification
	// service (UDP/11211 as a memcached stand-in).
	protect := netip.MustParsePrefix("198.51.100.0/24")
	var candidateIdx []int
	for _, k := range report.CandidateIndexes {
		candidateIdx = append(candidateIdx, tracker.Campaign.Sources[k])
	}
	rules := flowspec.DropRulesForSources(tracker.World.Space, candidateIdx, protect, 17, 11211)
	wire, err := flowspec.MarshalRules(rules)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("disseminating %d flowspec rules (%d bytes on the wire)\n", len(rules), len(wire))
	installed, err := flowspec.UnmarshalRules(wire)
	if err != nil {
		log.Fatal(err)
	}
	table := flowspec.NewTable(installed)

	// Packet level: honeypot + border on loopback.
	hp, err := amp.NewHoneypot("127.0.0.1:0", amp.DefaultHoneypotConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer hp.Close()
	catchment := map[uint32]uint8{}
	for k, src := range tracker.Campaign.Sources {
		if l := tracker.Campaign.Catchments[0][k]; l != spooftrack.NoLink {
			catchment[uint32(tracker.World.Graph.ASN(src))] = uint8(l)
		}
	}
	border, err := amp.NewBorder("127.0.0.1:0", hp.Addr().(*net.UDPAddr), catchment)
	if err != nil {
		log.Fatal(err)
	}
	defer border.Close()

	victim := netip.MustParseAddr("198.51.100.200")
	attack, err := amp.NewAttacker(uint32(attackerASN), victim)
	if err != nil {
		log.Fatal(err)
	}
	defer attack.Close()

	flood := func(n int) int64 {
		before := totalPackets(hp)
		if _, err := attack.Flood(border.Addr(), n, 8); err != nil {
			log.Fatal(err)
		}
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			if totalPackets(hp)+border.Filtered() >= before+int64(n) {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		return totalPackets(hp) - before
	}

	fmt.Printf("\nbefore mitigation: %d of 100 attack packets reached the honeypot\n", flood(100))

	// Install the filter: match each packet's true source address (the
	// border sees which wire it came in on; here the attacker's AS maps
	// to its address space) against the flowspec table.
	space := tracker.World.Space
	graph := tracker.World.Graph
	border.SetFilter(func(p *amp.Packet) bool {
		idx, ok := graph.Index(spooftrack.ASN(p.TrueSrcAS))
		if !ok {
			return false
		}
		return table.ShouldDrop(flowspec.Packet{
			Src:     space.HostAddr(idx, 0),
			Dst:     netip.MustParseAddr("198.51.100.1"),
			Proto:   17,
			DstPort: 11211,
		})
	})

	fmt.Printf("after mitigation:  %d of 100 attack packets reached the honeypot (%d filtered)\n",
		flood(100), border.Filtered())
}

func totalPackets(hp *amp.Honeypot) int64 {
	total := int64(0)
	for _, s := range hp.VolumeByLink() {
		total += s.Packets
	}
	return total
}
