// Mitigation: close the loop the paper's introduction sketches — use
// live localization output to drive automatic DoS mitigation via BGP
// flowspec (RFC 5575). An attacker floods the honeypot through the
// border router; the streaming attribution pipeline localizes the
// source online (reconfiguring the border's catchment table as it
// refines); flowspec drop rules are generated for the candidate
// networks, disseminated in wire format, and installed at the border.
// The attack volume collapses while legitimate traffic keeps flowing.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/netip"
	"os"
	"os/signal"
	"time"

	"spooftrack"
	"spooftrack/internal/amp"
	"spooftrack/internal/flowspec"
	"spooftrack/internal/stream"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// Offline: campaign and measured catchments.
	params := spooftrack.DefaultTrackerParams(21)
	tp := spooftrack.DefaultGenParams(21)
	tp.NumASes = 1000
	params.World.Topo = &tp
	params.World.MaxPoisonTargets = 20
	params.UseTruth = true
	params.Ctx = ctx
	fmt.Println("preparing: campaign + catchments...")
	tracker, err := spooftrack.NewTracker(params)
	if err != nil {
		log.Fatal(err)
	}
	camp := tracker.Campaign

	// Packet level: honeypot + border on loopback.
	hp, err := amp.NewHoneypot("127.0.0.1:0", amp.DefaultHoneypotConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer hp.Close()
	border, err := amp.NewBorder("127.0.0.1:0", hp.Addr().(*net.UDPAddr), camp.CatchmentTable(0))
	if err != nil {
		log.Fatal(err)
	}
	defer border.Close()

	// The attack: one source AS spoofing toward the honeypot.
	rng := spooftrack.NewRNG(5)
	attackerIdx := rng.Intn(camp.NumSources())
	attackerASN := tracker.SourceASNs()[attackerIdx]
	fmt.Printf("attacker: AS%d\n", attackerASN)
	victim := netip.MustParseAddr("198.51.100.200")
	attack, err := amp.NewAttacker(uint32(attackerASN), victim)
	if err != nil {
		log.Fatal(err)
	}
	defer attack.Close()

	// Localize live: the honeypot tap streams every spoofed request
	// into the attribution pipeline, which reconfigures the border
	// online until the attacker's cluster cannot be refined further.
	pipe, err := stream.New(stream.Attribution{
		Catchments: camp.Catchments,
		SourceASNs: tracker.SourceASNs(),
		NumLinks:   tracker.World.Platform.NumLinks(),
	}, stream.Config{
		EvalInterval:    50 * time.Millisecond,
		MinRoundPackets: 40,
		Settle:          10 * time.Millisecond,
		Deploy: func(cfgIdx int, table map[uint32]uint8) {
			border.SetCatchments(table)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	hp.SetTap(func(ev amp.Event) { pipe.Ingest(ev) })
	deadline := time.Now().Add(30 * time.Second)
	for !pipe.Converged() && time.Now().Before(deadline) && ctx.Err() == nil {
		if _, err := attack.Flood(border.Addr(), 30, 8); err != nil {
			log.Fatal(err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	hp.SetTap(nil)
	pipe.Close()
	candidates := pipe.Candidates()
	fmt.Printf("localized to %d candidate network(s) after %d online reconfigurations\n",
		len(candidates), len(pipe.Deployed())-1)

	// Generate flowspec drop rules for the candidates' prefixes,
	// protecting the honeypot prefix, scoped to the amplification
	// service (UDP/11211 as a memcached stand-in).
	protect := netip.MustParsePrefix("198.51.100.0/24")
	var candidateIdx []int
	for _, k := range candidates {
		candidateIdx = append(candidateIdx, camp.Sources[k])
	}
	rules := flowspec.DropRulesForSources(tracker.World.Space, candidateIdx, protect, 17, 11211)
	wire, err := flowspec.MarshalRules(rules)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("disseminating %d flowspec rules (%d bytes on the wire)\n", len(rules), len(wire))
	installed, err := flowspec.UnmarshalRules(wire)
	if err != nil {
		log.Fatal(err)
	}
	table := flowspec.NewTable(installed)

	flood := func(n int) int64 {
		before := totalPackets(hp)
		filteredBefore := border.Filtered()
		if _, err := attack.Flood(border.Addr(), n, 8); err != nil {
			log.Fatal(err)
		}
		floodDeadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(floodDeadline) && ctx.Err() == nil {
			if totalPackets(hp)-before+border.Filtered()-filteredBefore >= int64(n) {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		return totalPackets(hp) - before
	}

	fmt.Printf("\nbefore mitigation: %d of 100 attack packets reached the honeypot\n", flood(100))

	// Install the filter: match each packet's true source address (the
	// border sees which wire it came in on; here the attacker's AS maps
	// to its address space) against the flowspec table.
	space := tracker.World.Space
	graph := tracker.World.Graph
	border.SetFilter(func(p *amp.Packet) bool {
		idx, ok := graph.Index(spooftrack.ASN(p.TrueSrcAS))
		if !ok {
			return false
		}
		return table.ShouldDrop(flowspec.Packet{
			Src:     space.HostAddr(idx, 0),
			Dst:     netip.MustParseAddr("198.51.100.1"),
			Proto:   17,
			DstPort: 11211,
		})
	})

	fmt.Printf("after mitigation:  %d of 100 attack packets reached the honeypot (%d filtered)\n",
		flood(100), border.Filtered())
}

func totalPackets(hp *amp.Honeypot) int64 {
	total := int64(0)
	for _, s := range hp.VolumeByLink() {
		total += s.Packets
	}
	return total
}
