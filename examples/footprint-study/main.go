// Footprint study: how does localization precision depend on the number
// of peering locations? Reproduces the Fig. 5 / Fig. 6 analysis at a
// reduced scale: networks with 7, 6, and 5 PoPs are emulated by
// restricting the campaign to configurations that use only the retained
// links.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"

	"spooftrack/internal/experiments"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	fmt.Println("deploying campaign for the footprint study...")
	lab, err := experiments.NewLab(experiments.LabParams{
		Seed:             5,
		NumASes:          1500,
		NumProbes:        500,
		NumCollectors:    120,
		MaxPoisonTargets: 40,
		Ctx:              ctx,
	})
	if err != nil {
		log.Fatal(err)
	}

	res := experiments.Fig5(lab)
	fmt.Println(res)
	fmt.Println(res.Fig6String())

	fmt.Println("takeaway: every location removed shrinks the usable configuration")
	fmt.Println("space and fattens the cluster-size tail — networks with larger")
	fmt.Println("peering footprints localize spoofed traffic more precisely.")
}
