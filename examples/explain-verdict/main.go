// Explain a verdict: the decision-provenance ledger end to end. The
// example runs the same closed loop as live-attribution — one spoofing
// attacker flooding an AmpPot-style honeypot through the border router,
// the streaming pipeline refining localization and deploying greedy
// configurations online — but with a provenance ledger attached to both
// the offline campaign and the live controller. After convergence it
// turns the ledger into the three operator artifacts:
//
//   - a JSON timeline (explain-verdict-ledger.json) and a DOT provenance
//     graph (explain-verdict-ledger.dot; render with `dot -Tsvg`),
//   - the evidence chain behind the attacker's cluster — every
//     configuration deployed (with retries and catchment rows), every
//     round folded, every reconfiguration decision with the candidate
//     set it beat,
//   - a deterministic replay of the whole run purely from the ledger,
//     asserting it reproduces the live verdict byte for byte.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/netip"
	"os"
	"os/signal"
	"time"

	"spooftrack"
	"spooftrack/internal/amp"
	"spooftrack/internal/metrics"
	"spooftrack/internal/provenance"
	"spooftrack/internal/stream"
)

func main() {
	ledgerPath := flag.String("ledger", "explain-verdict-ledger.json",
		"write the JSON ledger timeline here (empty = off)")
	dotPath := flag.String("dot", "explain-verdict-ledger.dot",
		"write the DOT provenance graph here (empty = off)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// The ledger is built first and handed to the tracker, so the
	// offline campaign's deployments and catchment rows are evidence
	// leaves in the same record as the live rounds.
	led := spooftrack.NewProvenanceLedger()

	params := spooftrack.DefaultTrackerParams(17)
	tp := spooftrack.DefaultGenParams(17)
	tp.NumASes = 1000
	params.World.Topo = &tp
	params.World.MaxPoisonTargets = 20
	params.UseTruth = true
	params.Ctx = ctx
	params.Ledger = led
	fmt.Println("offline: deploying campaign and measuring catchments (ledger recording)...")
	tracker, err := spooftrack.NewTracker(params)
	if err != nil {
		log.Fatal(err)
	}
	camp := tracker.Campaign

	// Packet plane on loopback.
	hp, err := amp.NewHoneypot("127.0.0.1:0", amp.DefaultHoneypotConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer hp.Close()
	border, err := amp.NewBorder("127.0.0.1:0", hp.Addr().(*net.UDPAddr), nil)
	if err != nil {
		log.Fatal(err)
	}
	defer border.Close()

	// Streaming pipeline with the same ledger: every round fold,
	// reconfiguration decision, and per-fold verdict goes on the record.
	reg := metrics.NewRegistry()
	led.Instrument(reg)
	pipe, err := stream.New(stream.Attribution{
		Catchments: camp.Catchments,
		SourceASNs: tracker.SourceASNs(),
		NumLinks:   tracker.World.Platform.NumLinks(),
	}, stream.Config{
		EvalInterval:    50 * time.Millisecond,
		MinRoundPackets: 40,
		Settle:          10 * time.Millisecond,
		Metrics:         reg,
		Ledger:          led,
		Deploy: func(cfgIdx int, table map[uint32]uint8) {
			border.SetCatchments(table)
			fmt.Printf("  deploy: configuration %d\n", cfgIdx)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	hp.SetTap(func(ev amp.Event) { pipe.Ingest(ev) })

	// The attack: one spoofing source, flooding until convergence.
	rng := spooftrack.NewRNG(7)
	attackerIdx := rng.Intn(camp.NumSources())
	attackerASN := tracker.SourceASNs()[attackerIdx]
	fmt.Printf("attack begins: AS%d (source %d) spoofing 192.0.2.66\n", attackerASN, attackerIdx)
	attack, err := amp.NewAttacker(uint32(attackerASN), netip.MustParseAddr("192.0.2.66"))
	if err != nil {
		log.Fatal(err)
	}
	defer attack.Close()

	deadline := time.Now().Add(30 * time.Second)
	for !pipe.Converged() && time.Now().Before(deadline) && ctx.Err() == nil {
		if _, err := attack.Flood(border.Addr(), 30, 8); err != nil {
			log.Fatal(err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	hp.SetTap(nil)
	pipe.Close()

	st := pipe.Status(3)
	fmt.Printf("\nprocessed %d events over %d rounds (%d online reconfigurations)\n",
		st.TotalEvents, st.Rounds, st.Reconfigurations)

	// 1. Export: the full timeline, as JSON and as a provenance graph.
	export := led.Export()
	fmt.Printf("ledger: %d events recorded\n", len(export.Events))
	for _, v := range export.Verdicts() {
		tag := ""
		if v.Final {
			tag = "  <-- final"
		}
		fmt.Printf("  verdict seq=%d origin=%s round=%d clusters=%d converged=%v%s\n",
			v.Seq, v.Origin, v.Round, v.Clusters, v.Converged, tag)
	}
	if *ledgerPath != "" {
		if err := writeTo(*ledgerPath, export.WriteJSON); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote JSON timeline to %s\n", *ledgerPath)
	}
	if *dotPath != "" {
		if err := writeTo(*dotPath, export.WriteDOT); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote provenance graph to %s (render: dot -Tsvg %s)\n", *dotPath, *dotPath)
	}

	// 2. Explain: the evidence chain behind the attacker's cluster.
	verdicts := export.Verdicts()
	if len(verdicts) == 0 || st.Rounds == 0 {
		fmt.Println("no rounds folded; nothing to explain")
		return
	}
	final := verdicts[len(verdicts)-1]
	ex, err := export.Explain(attackerCluster(export, attackerIdx))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexplaining cluster %d of the final verdict (round %d, %d clusters):\n",
		ex.Cluster, final.Round, final.Clusters)
	fmt.Printf("  members: %d source(s), attacker source %d included\n", len(ex.Members), attackerIdx)
	fmt.Printf("  evidence: %d configuration chains, %d rounds, %d reconfigurations, %d probe verdicts, %d quarantine transitions\n",
		len(ex.Configs), len(ex.Rounds), len(ex.Reconfigs), len(ex.Probes), len(ex.Quarantines))
	for _, rc := range ex.Reconfigs {
		fmt.Printf("  round %d: chose configuration %d (%s) over %d candidates\n",
			rc.Round, rc.Chosen, rc.Reason, len(rc.Beaten))
	}

	// 3. Replay: re-run classification and localization purely from the
	// ledger and check the verdicts match byte for byte.
	res, err := provenance.Replay(export)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreplay: %d rounds, %d reconfigs, %d verdicts re-derived; reproduced=%v\n",
		res.Rounds, res.Reconfigs, res.Verdicts, res.Reproduced)
	for _, m := range res.Mismatches {
		fmt.Printf("  MISMATCH: %s\n", m)
	}
	if !res.Reproduced {
		os.Exit(1)
	}
	fmt.Println("the live verdict is fully accounted for by the recorded evidence")
}

// attackerCluster returns the final verdict's cluster id for the
// attacker's source position (0 when there is no verdict yet).
func attackerCluster(e *provenance.Export, src int) int {
	vs := e.Events
	for i := len(vs) - 1; i >= 0; i-- {
		if vs[i].Kind == provenance.KindVerdict && vs[i].Verdict != nil {
			if a := vs[i].Verdict.Assign; src < len(a) {
				return int(a[src])
			}
			return 0
		}
	}
	return 0
}

// writeTo creates path and streams fn into it.
func writeTo(path string, fn func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
