// DDoS localization: the full pipeline at packet level, closed-loop. An
// AmpPot-style honeypot and a border router run over loopback UDP;
// spoofing attackers flood the honeypot while the streaming attribution
// pipeline consumes every packet through the honeypot's event tap,
// incrementally refines the localization, and deploys the next greedy
// configuration online (§V-C) by swapping the border's live catchment
// table — no precomputed deployment order, no manual round loop.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/netip"
	"os"
	"os/signal"
	"time"

	"spooftrack"
	"spooftrack/internal/amp"
	"spooftrack/internal/stream"
)

const numAttackers = 2

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// Offline phase: measure catchments for the whole campaign before
	// any attack (UseTruth keeps the example fast).
	params := spooftrack.DefaultTrackerParams(11)
	tp := spooftrack.DefaultGenParams(11)
	tp.NumASes = 1000
	params.World.Topo = &tp
	params.World.MaxPoisonTargets = 20
	params.UseTruth = true
	params.Ctx = ctx
	fmt.Println("offline: deploying campaign and measuring catchments...")
	tracker, err := spooftrack.NewTracker(params)
	if err != nil {
		log.Fatal(err)
	}
	camp := tracker.Campaign

	// Packet-level infrastructure on loopback.
	victim := netip.MustParseAddr("192.0.2.66")
	hp, err := amp.NewHoneypot("127.0.0.1:0", amp.DefaultHoneypotConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer hp.Close()
	border, err := amp.NewBorder("127.0.0.1:0", hp.Addr().(*net.UDPAddr), nil)
	if err != nil {
		log.Fatal(err)
	}
	defer border.Close()

	// Streaming attribution: the honeypot tap feeds the pipeline, and
	// the pipeline's Deploy callback reconfigures the border online.
	pipe, err := stream.New(stream.Attribution{
		Catchments: camp.Catchments,
		SourceASNs: tracker.SourceASNs(),
		NumLinks:   tracker.World.Platform.NumLinks(),
	}, stream.Config{
		EvalInterval:    50 * time.Millisecond,
		MinRoundPackets: 60,
		Settle:          10 * time.Millisecond,
		Deploy: func(cfgIdx int, table map[uint32]uint8) {
			border.SetCatchments(table)
			fmt.Printf("  deploy: configuration %d\n", cfgIdx)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	hp.SetTap(func(ev amp.Event) { pipe.Ingest(ev) })

	// Attack begins: pick attacker ASes.
	rng := spooftrack.NewRNG(3)
	attackers := make([]int, numAttackers) // source positions
	clients := make([]*amp.Attacker, numAttackers)
	for i := range attackers {
		attackers[i] = rng.Intn(camp.NumSources())
		asn := tracker.SourceASNs()[attackers[i]]
		clients[i], err = amp.NewAttacker(uint32(asn), victim)
		if err != nil {
			log.Fatal(err)
		}
		defer clients[i].Close()
		fmt.Printf("attacker %d spoofing from AS%d\n", i+1, asn)
	}

	// Online phase: flood until the attribution converges — the
	// pipeline reconfigures the border by itself along the way.
	deadline := time.Now().Add(30 * time.Second)
	for !pipe.Converged() && time.Now().Before(deadline) && ctx.Err() == nil {
		for _, c := range clients {
			if _, err := c.Flood(border.Addr(), 30, 8); err != nil {
				log.Fatal(err)
			}
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Graceful shutdown: stop the producer side, then drain.
	hp.SetTap(nil)
	pipe.Close()

	st := pipe.Status(5)
	fmt.Printf("\nprocessed %d spoofed packets over %d rounds, %d online reconfigurations\n",
		st.TotalEvents, st.Rounds, st.Reconfigurations)
	cands := pipe.Candidates()
	fmt.Printf("after %d deployed configurations, %d of %d sources remain candidates:\n",
		len(pipe.Deployed()), len(cands), camp.NumSources())
	isAttacker := map[int]bool{}
	for _, k := range attackers {
		isAttacker[k] = true
	}
	hits := 0
	for _, k := range cands {
		marker := ""
		if isAttacker[k] {
			marker = "  <-- true attacker"
			hits++
		}
		fmt.Printf("  AS%d%s\n", tracker.SourceASNs()[k], marker)
	}
	fmt.Printf("true attackers among candidates: %d of %d\n", hits, numAttackers)
}
