// DDoS localization: the full pipeline at packet level. An AmpPot-style
// honeypot and a border router run over loopback UDP; spoofing attackers
// flood the honeypot while the origin cycles through announcement
// configurations in greedy order (§V-C). The border stamps each packet
// with its ingress peering link from the live catchment table; the
// honeypot's per-link volumes are then correlated with the campaign's
// catchments to localize the attacking ASes.
package main

import (
	"fmt"
	"log"
	"net"
	"net/netip"
	"time"

	"spooftrack"
	"spooftrack/internal/amp"
	"spooftrack/internal/sched"
	"spooftrack/internal/spoof"
)

const (
	numAttackers    = 2
	packetsPerRound = 60
	configsToDeploy = 16
)

func main() {
	// Offline phase: measure catchments for the whole campaign before
	// any attack (UseTruth keeps the example fast).
	params := spooftrack.DefaultTrackerParams(11)
	tp := spooftrack.DefaultGenParams(11)
	tp.NumASes = 1000
	params.World.Topo = &tp
	params.World.MaxPoisonTargets = 20
	params.UseTruth = true
	fmt.Println("offline: deploying campaign and measuring catchments...")
	tracker, err := spooftrack.NewTracker(params)
	if err != nil {
		log.Fatal(err)
	}
	camp := tracker.Campaign

	// Greedy deployment order computed from the measured catchments.
	_, order := sched.GreedyTrajectory(camp.Catchments, configsToDeploy)

	// Attack begins: pick attacker ASes.
	rng := spooftrack.NewRNG(3)
	attackers := make([]int, numAttackers) // source positions
	for i := range attackers {
		attackers[i] = rng.Intn(camp.NumSources())
	}

	// Packet-level infrastructure on loopback.
	victim := netip.MustParseAddr("192.0.2.66")
	hp, err := amp.NewHoneypot("127.0.0.1:0", amp.DefaultHoneypotConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer hp.Close()
	border, err := amp.NewBorder("127.0.0.1:0", hp.Addr().(*net.UDPAddr), nil)
	if err != nil {
		log.Fatal(err)
	}
	defer border.Close()

	clients := make([]*amp.Attacker, numAttackers)
	for i, k := range attackers {
		asn := tracker.SourceASNs()[k]
		clients[i], err = amp.NewAttacker(uint32(asn), victim)
		if err != nil {
			log.Fatal(err)
		}
		defer clients[i].Close()
		fmt.Printf("attacker %d spoofing from AS%d\n", i+1, asn)
	}

	// Online phase: deploy configurations in greedy order; under each,
	// update the border's catchment table, let attackers flood, and
	// read the honeypot's per-link volumes.
	numLinks := tracker.World.Platform.NumLinks()
	var deployedConfigs []int
	volumes := make([][]float64, 0, len(order))
	prevPackets := map[uint8]int64{}
	for round, cfgIdx := range order {
		table := map[uint32]uint8{}
		for k, src := range camp.Sources {
			if l := camp.Catchments[cfgIdx][k]; l != spooftrack.NoLink {
				table[uint32(tracker.World.Graph.ASN(src))] = uint8(l)
			}
		}
		border.SetCatchments(table)
		for _, c := range clients {
			if _, err := c.Flood(border.Addr(), packetsPerRound, 8); err != nil {
				log.Fatal(err)
			}
		}
		// Wait for this round's packets to drain through the pipeline.
		want := int64((round + 1) * numAttackers * packetsPerRound)
		deadline := time.Now().Add(3 * time.Second)
		for time.Now().Before(deadline) {
			total := int64(0)
			for _, s := range hp.VolumeByLink() {
				total += s.Packets
			}
			if total >= want {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		// Per-round link volumes = deltas of the honeypot counters.
		row := make([]float64, numLinks)
		for l, s := range hp.VolumeByLink() {
			row[int(l)] = float64(s.Packets - prevPackets[l])
			prevPackets[l] = s.Packets
		}
		volumes = append(volumes, row)
		deployedConfigs = append(deployedConfigs, cfgIdx)
	}

	// Correlate measured volumes with the deployed configurations'
	// catchments.
	catchments := make([][]spooftrack.LinkID, len(deployedConfigs))
	for i, cfgIdx := range deployedConfigs {
		catchments[i] = camp.Catchments[cfgIdx]
	}
	cands := spoof.Localize(catchments, volumes)

	fmt.Printf("\nafter %d greedy configurations, %d of %d sources remain candidates:\n",
		len(deployedConfigs), len(cands), camp.NumSources())
	isAttacker := map[int]bool{}
	for _, k := range attackers {
		isAttacker[k] = true
	}
	hits := 0
	for _, k := range cands {
		marker := ""
		if isAttacker[k] {
			marker = "  <-- true attacker"
			hits++
		}
		fmt.Printf("  AS%d%s\n", tracker.SourceASNs()[k], marker)
	}
	fmt.Printf("true attackers among candidates: %d of %d\n", hits, numAttackers)
}
