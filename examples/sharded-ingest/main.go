// Command sharded-ingest is the multi-process fault-tolerance demo: it
// re-executes itself as four shard-node processes and two controller
// processes (a leader and a standby sharing a file lease), drives ten
// rounds of spoofed traffic through the consistent-hash ring over real
// HTTP, SIGKILLs the leading controller mid-campaign, and shows the
// standby taking over at a higher lease term and finishing the
// localization with results byte-identical to a single-node fold.
//
// Every process agrees on the world the same way the spooftrackd modes
// do: the orchestrator writes one topology file (the -topo-file
// mechanism, CAIDA serialization) and each child derives the shared
// attribution matrix from it.
//
// Run with:
//
//	go run ./examples/sharded-ingest
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/netip"
	"os"
	"os/exec"
	"path/filepath"
	"time"

	"spooftrack/internal/amp"
	"spooftrack/internal/bgp"
	"spooftrack/internal/shard"
	"spooftrack/internal/stream"
	"spooftrack/internal/topo"
)

const (
	numShards   = 4
	numRounds   = 10
	killAfter   = 5 // SIGKILL the leading controller after this round
	leaseTTL    = 1 * time.Second
	numSources  = 16
	numConfigs  = 4
	numLinks    = 2
	topoName    = "topology.txt"
	demoTimeout = 60 * time.Second
)

// attackers is the fixed per-round traffic mix (source position,
// packets per round) — three spoofers hiding among sixteen sources.
var attackers = []struct {
	src  int
	pkts int
}{{5, 30}, {11, 20}, {2, 10}}

func main() {
	role := flag.String("role", "", "internal: child role (shard|controller)")
	id := flag.String("id", "", "internal: child id")
	dir := flag.String("dir", "", "internal: shared scratch directory")
	peers := flag.String("peers", "", "internal: controller's shard spec (id=url,...)")
	flag.Parse()

	switch *role {
	case "":
		orchestrate()
	case "shard":
		runShard(*id, *dir)
	case "controller":
		runCtrl(*id, *dir, *peers)
	default:
		fatalf("unknown -role %q", *role)
	}
}

// attribution derives the shared source/catchment contract from the
// topology file — the same contract every spooftrackd process computes
// from -topo-file plus the campaign seed. The demo keeps it synthetic
// (sixteen sources, four binary-split configurations over two links) so
// the localization narrative stays readable.
func attribution(g *topo.Graph) stream.Attribution {
	catchments := make([][]bgp.LinkID, numConfigs)
	for c := 0; c < numConfigs; c++ {
		row := make([]bgp.LinkID, numSources)
		for k := 0; k < numSources; k++ {
			row[k] = bgp.LinkID((k >> c) & 1)
		}
		catchments[c] = row
	}
	asns := make([]topo.ASN, numSources)
	for k := range asns {
		asns[k] = g.ASN(k) // dense indices are ASN-sorted: deterministic per file
	}
	return stream.Attribution{Catchments: catchments, SourceASNs: asns, NumLinks: numLinks}
}

func loadAttr(dir string) stream.Attribution {
	f, err := os.Open(filepath.Join(dir, topoName))
	if err != nil {
		fatalf("open topology: %v", err)
	}
	defer f.Close()
	g, err := topo.ReadCAIDA(f)
	if err != nil {
		fatalf("read topology: %v", err)
	}
	return attribution(g)
}

// ---- shard role -----------------------------------------------------

// ingestReq is one spoofed packet on the demo's ingest API.
type ingestReq struct {
	AS   uint32 `json:"as"`
	Link uint8  `json:"link"`
}

func runShard(id, dir string) {
	attr := loadAttr(dir)
	n, err := shard.NewNode(shard.NodeConfig{
		ID:   id,
		Attr: attr,
		Pipe: stream.Config{Workers: 1, BatchSize: 1, FlushInterval: time.Millisecond},
	})
	if err != nil {
		fatalf("shard %s: %v", id, err)
	}
	victim := netip.MustParseAddr("203.0.113.9")

	mux := http.NewServeMux()
	mux.Handle("/shard/", shard.NodeHandler(n))
	mux.HandleFunc("/ingest", func(w http.ResponseWriter, r *http.Request) {
		var batch []ingestReq
		if err := json.NewDecoder(r.Body).Decode(&batch); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		for _, p := range batch {
			n.Ingest(amp.Event{
				Time:        time.Now(),
				IngressLink: p.Link,
				TrueSrcAS:   p.AS,
				SpoofedSrc:  victim,
				WireLen:     64,
			})
		}
		fmt.Fprintf(w, "%d", len(batch))
	})
	mux.HandleFunc("/total", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "%d", n.Pipeline().TotalEvents())
	})
	serveChild(id, dir, mux)
}

// ---- controller role ------------------------------------------------

func runCtrl(id, dir, peers string) {
	attr := loadAttr(dir)
	tr := shard.NewHTTPTransport(2 * time.Second)
	var ids []string
	for _, kv := range bytes.Split([]byte(peers), []byte(",")) {
		sid, url, ok := bytes.Cut(kv, []byte("="))
		if !ok {
			fatalf("controller %s: bad peer %q", id, kv)
		}
		tr.Register(string(sid), string(url))
		ids = append(ids, string(sid))
	}
	lease := shard.NewFileLease(filepath.Join(dir, "lease"))
	ct, err := shard.NewController(shard.ControllerConfig{
		ID:              id,
		Attr:            attr,
		MinRoundPackets: 1,
		Members:         ids,
		Transport:       tr,
		Lease:           lease,
		LeaseTTL:        leaseTTL,
	})
	if err != nil {
		fatalf("controller %s: %v", id, err)
	}

	// The orchestrator drives rounds over /step (instead of ct.Start's
	// free-running ticker) so round boundaries are deterministic and the
	// final state can be compared byte-for-byte against a local fold.
	mux := http.NewServeMux()
	mux.HandleFunc("/step", func(w http.ResponseWriter, r *http.Request) {
		if !ct.Leading() {
			if err := ct.TryLead(); err != nil {
				http.Error(w, err.Error(), http.StatusConflict)
				return
			}
			fmt.Fprintf(os.Stderr, "[%s] acquired lease at term %d, recovered epoch from shards\n", id, ct.Term())
		}
		res, err := ct.Step(r.URL.Query().Get("final") == "1")
		if err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		json.NewEncoder(w).Encode(res)
	})
	mux.HandleFunc("/cluster", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(ct.Status())
	})
	serveChild(id, dir, mux)
}

// serveChild listens on an ephemeral port, publishes the address for
// the orchestrator (temp-and-rename so a partial file is never read),
// and serves until the parent kills the process.
func serveChild(id, dir string, mux *http.ServeMux) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatalf("%s: listen: %v", id, err)
	}
	addrFile := filepath.Join(dir, id+".addr")
	tmp := addrFile + ".tmp"
	if err := os.WriteFile(tmp, []byte("http://"+ln.Addr().String()), 0o644); err != nil {
		fatalf("%s: %v", id, err)
	}
	if err := os.Rename(tmp, addrFile); err != nil {
		fatalf("%s: %v", id, err)
	}
	fatalf("%s: serve: %v", id, http.Serve(ln, mux))
}

// ---- orchestrator ---------------------------------------------------

func orchestrate() {
	start := time.Now()
	dir, err := os.MkdirTemp("", "sharded-ingest-")
	if err != nil {
		fatalf("mkdtemp: %v", err)
	}
	defer os.RemoveAll(dir)

	// One topology file, shared by every process — the -topo-file story.
	p := topo.DefaultGenParams(42)
	p.NumASes = 400
	p.NumTier1 = 5
	g, err := topo.Generate(p)
	if err != nil {
		fatalf("generate topology: %v", err)
	}
	tf, err := os.Create(filepath.Join(dir, topoName))
	if err != nil {
		fatalf("create topology: %v", err)
	}
	if err := topo.WriteCAIDA(tf, g); err != nil {
		fatalf("write topology: %v", err)
	}
	tf.Close()
	attr := attribution(g)
	fmt.Printf("wrote %s (%d ASes); every process derives the same attribution from it\n",
		topoName, g.NumASes())

	children := make(map[string]*exec.Cmd)
	defer func() {
		for _, cmd := range children {
			if cmd.Process != nil {
				cmd.Process.Kill()
			}
			cmd.Wait()
		}
	}()
	spawn := func(args ...string) {
		cmd := exec.Command(os.Args[0], args...)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			fatalf("spawn %v: %v", args, err)
		}
		children[args[1][len("-id="):]] = cmd
	}

	// Four shard-node processes, then two controllers over their addresses.
	var shardIDs []string
	for i := 0; i < numShards; i++ {
		sid := fmt.Sprintf("shard-%d", i)
		shardIDs = append(shardIDs, sid)
		spawn("-role=shard", "-id="+sid, "-dir="+dir)
	}
	addrs := make(map[string]string)
	for _, sid := range shardIDs {
		addrs[sid] = waitAddr(dir, sid)
	}
	peers := ""
	for _, sid := range shardIDs {
		if peers != "" {
			peers += ","
		}
		peers += sid + "=" + addrs[sid]
	}
	ctrlIDs := []string{"ctrl-a", "ctrl-b"}
	for _, cid := range ctrlIDs {
		spawn("-role=controller", "-id="+cid, "-dir="+dir, "-peers="+peers)
		addrs[cid] = waitAddr(dir, cid)
	}
	fmt.Printf("spawned %d shard processes and 2 controller processes (file lease: %s)\n",
		numShards, filepath.Join(dir, "lease"))

	// The local reference fold: same attribution, same parameters, same
	// rounds. The surviving controller's final state must match it
	// byte-for-byte — that is the tentpole's correctness contract.
	ref := stream.NewEvaluator(attr, stream.EvalParams{})
	ring := shard.NewRing(shardIDs, 0)
	routed := make(map[string]int64)
	leader := 0

	for r := 1; r <= numRounds; r++ {
		cfg := ref.Current()
		pkts := make([]int64, numLinks)
		batches := make(map[string][]ingestReq)
		for _, a := range attackers {
			as := uint32(attr.SourceASNs[a.src])
			link := uint8(attr.Catchments[cfg][a.src])
			owner := ring.Owner(as)
			for i := 0; i < a.pkts; i++ {
				batches[owner] = append(batches[owner], ingestReq{AS: as, Link: link})
				pkts[link]++
			}
		}
		for sid, batch := range batches {
			body, _ := json.Marshal(batch)
			resp, err := http.Post(addrs[sid]+"/ingest", "application/json", bytes.NewReader(body))
			if err != nil {
				fatalf("round %d: ingest to %s: %v", r, sid, err)
			}
			resp.Body.Close()
			routed[sid] += int64(len(batch))
		}
		quiesce(addrs, routed)

		res, who := step(addrs, ctrlIDs, &leader, false)
		fmt.Printf("round %2d: %s folded merged counters (epoch %d, config %d)\n",
			r, who, res.Epoch, ref.Current())
		ref.Step(pkts, false, nil, nil, false)

		if r == killAfter {
			victim := ctrlIDs[leader]
			fmt.Printf("\n*** SIGKILL %s (the leading controller) mid-campaign ***\n", victim)
			children[victim].Process.Kill()
			children[victim].Wait()
			delete(children, victim)
			fmt.Printf("    waiting out the %s lease TTL; the standby's next acquire is fenced at a higher term\n\n", leaseTTL)
		}
	}
	_, who := step(addrs, ctrlIDs, &leader, true)

	// Compare the survivor's cluster state against the local fold.
	resp, err := http.Get(addrs[who] + "/cluster")
	if err != nil {
		fatalf("cluster status: %v", err)
	}
	var cs shard.ClusterStatus
	if err := json.NewDecoder(resp.Body).Decode(&cs); err != nil {
		fatalf("cluster status: %v", err)
	}
	resp.Body.Close()

	fmt.Printf("final cluster state from %s: term=%d epoch=%d rounds=%d deployed=%v converged=%v clusters=%d\n",
		who, cs.Term, cs.Epoch, cs.Rounds, cs.DeployedConfigs, cs.Converged, cs.NumClusters)
	identical := cs.Converged == ref.Converged() &&
		cs.CurrentConfig == ref.Current() &&
		cs.NumClusters == ref.NumClusters() &&
		equalInts(cs.DeployedConfigs, ref.Deployed())
	fmt.Printf("single-node reference fold:      deployed=%v converged=%v clusters=%d\n",
		ref.Deployed(), ref.Converged(), ref.NumClusters())
	fmt.Printf("byte-identical across failover: %v  (%.1fs)\n", identical, time.Since(start).Seconds())
	if !identical {
		os.Exit(1)
	}
}

// step drives one controller round, failing over to the next controller
// when the current one is dead or cannot (yet) take the lease.
func step(addrs map[string]string, ctrlIDs []string, leader *int, final bool) (shard.StepResult, string) {
	url := "/step"
	if final {
		url = "/step?final=1"
	}
	deadline := time.Now().Add(demoTimeout)
	for time.Now().Before(deadline) {
		for i := 0; i < len(ctrlIDs); i++ {
			idx := (*leader + i) % len(ctrlIDs)
			cid := ctrlIDs[idx]
			resp, err := http.Post(addrs[cid]+url, "application/json", nil)
			if err != nil {
				continue // dead controller: try the standby
			}
			if resp.StatusCode != http.StatusOK {
				resp.Body.Close() // not leader yet: lease not expired
				continue
			}
			var res shard.StepResult
			if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
				fatalf("step via %s: %v", cid, err)
			}
			resp.Body.Close()
			*leader = idx
			return res, cid
		}
		time.Sleep(100 * time.Millisecond)
	}
	fatalf("no controller could complete the round within %s", demoTimeout)
	return shard.StepResult{}, ""
}

// quiesce waits until every shard's pipeline has flushed all routed
// events, so the following collect sees a complete round.
func quiesce(addrs map[string]string, routed map[string]int64) {
	deadline := time.Now().Add(10 * time.Second)
	for sid, want := range routed {
		for {
			resp, err := http.Get(addrs[sid] + "/total")
			var got int64
			if err == nil {
				fmt.Fscan(resp.Body, &got)
				resp.Body.Close()
			}
			if got >= want {
				break
			}
			if time.Now().After(deadline) {
				fatalf("quiesce: %s flushed %d of %d events", sid, got, want)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
}

func waitAddr(dir, id string) string {
	path := filepath.Join(dir, id+".addr")
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if b, err := os.ReadFile(path); err == nil {
			return string(b)
		}
		time.Sleep(20 * time.Millisecond)
	}
	fatalf("timed out waiting for %s to publish its address", id)
	return ""
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sharded-ingest: "+format+"\n", args...)
	os.Exit(1)
}
