// Live BGP: drive the announcement side over real BGP sessions. The
// origin (AS47065) dials a TCP BGP session to a route-server collector
// and announces each configuration's paths as genuine UPDATE messages —
// prepending and poison sentinels included — then withdraws them before
// the next configuration, exactly the control-plane churn a PEERING
// experiment produces at its muxes. The collector's RIB is read back
// after each configuration to verify what the world would see.
package main

import (
	"context"
	"fmt"
	"log"
	"net/netip"
	"os"
	"os/signal"
	"time"

	"spooftrack"
	"spooftrack/internal/bgpwire"
	"spooftrack/internal/measure"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	// A small world provides the configurations to announce.
	world, err := spooftrack.BuildWorld(func() spooftrack.WorldParams {
		p := spooftrack.DefaultWorldParams(55)
		tp := spooftrack.DefaultGenParams(55)
		tp.NumASes = 600
		p.Topo = &tp
		return p
	}())
	if err != nil {
		log.Fatal(err)
	}
	plan, err := world.DefaultPlan()
	if err != nil {
		log.Fatal(err)
	}
	plan = plan[:4]

	// The collector side: a route server on loopback.
	rs, err := bgpwire.NewRouteServer("127.0.0.1:0", bgpwire.SessionConfig{
		LocalAS: 65000, BGPID: 0x7f000001, HoldTime: 9 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer rs.Close()
	fmt.Printf("collector route server on %v\n", rs.Addr())

	// The origin side: one session, like a PEERING mux's BGP speaker.
	sess, err := bgpwire.Dial(rs.Addr().String(), bgpwire.SessionConfig{
		LocalAS: spooftrack.PEERINGASN, BGPID: 47065, HoldTime: 9 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	fmt.Printf("origin session established: state=%v peer=AS%d hold=%v\n\n",
		sess.State(), sess.PeerAS(), sess.HoldTime())

	prefix := measure.AnnouncedPrefix
	nextHop := netip.MustParseAddr("203.0.113.1")
	for i, pc := range plan {
		if ctx.Err() != nil {
			fmt.Println("canceled; withdrawing and closing the session")
			return
		}
		fmt.Printf("configuration %d (%s): %v\n", i+1, pc.Phase, pc.Config)
		for _, a := range pc.Config.Anns {
			u := &bgpwire.Update{
				Path:     a.InitialPath(spooftrack.PEERINGASN),
				NextHop:  nextHop,
				Prefixes: []netip.Prefix{prefix},
			}
			if err := sess.Announce(u); err != nil {
				log.Fatal(err)
			}
		}
		// Wait for the collector RIB to converge on this config.
		waitRIB(rs)
		path := rs.Routes(spooftrack.PEERINGASN)[prefix]
		fmt.Printf("  collector sees AS-path %v\n", path)

		// Withdraw before the next configuration.
		if err := sess.Announce(&bgpwire.Update{Withdrawn: []netip.Prefix{prefix}}); err != nil {
			log.Fatal(err)
		}
		waitWithdrawn(rs)
	}
	fmt.Println("\nall configurations announced and withdrawn over live BGP")
}

func waitRIB(rs *bgpwire.RouteServer) {
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if len(rs.Routes(spooftrack.PEERINGASN)) > 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	log.Fatal("collector never saw the announcement")
}

func waitWithdrawn(rs *bgpwire.RouteServer) {
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if len(rs.Routes(spooftrack.PEERINGASN)) == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	log.Fatal("withdrawal never reached the collector")
}
