// Quickstart: build a simulated world, deploy the paper's announcement
// campaign, and localize a single spoofing source — the common
// amplification-attack case — from per-link honeypot volumes.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"

	"spooftrack"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// A reduced-scale world keeps the quickstart fast; drop these
	// overrides for the paper-scale 4000-AS / 705-configuration setup.
	params := spooftrack.DefaultTrackerParams(42)
	params.Ctx = ctx
	tp := spooftrack.DefaultGenParams(42)
	tp.NumASes = 1200
	params.World.Topo = &tp
	params.World.NumProbes = 400
	params.World.NumCollectors = 100
	params.World.MaxPoisonTargets = 40

	fmt.Println("deploying announcement campaign (location, prepending, poisoning phases)...")
	tracker, err := spooftrack.NewTracker(params)
	if err != nil {
		log.Fatal(err)
	}

	summary := tracker.Summary()
	fmt.Printf("campaign: %d configurations over %d observed source ASes\n",
		tracker.Campaign.NumConfigs(), tracker.Campaign.NumSources())
	fmt.Printf("clusters: %d (mean %.2f ASes, %.0f%% singletons)\n",
		summary.NumClusters, summary.MeanSize, summary.SingletonFrac*100)

	// An attacker starts spoofing from one AS. The honeypot measures
	// per-link volume under every configuration; correlating volumes
	// with catchments pins the source down.
	rng := spooftrack.NewRNG(7)
	placement := tracker.PlaceSingleSource(rng)
	volumes := tracker.SimulateAttack(placement)
	report, err := tracker.LocalizeAttack(volumes)
	if err != nil {
		log.Fatal(err)
	}

	var trueASN spooftrack.ASN
	for k, w := range placement.Weight {
		if w > 0 {
			trueASN = tracker.SourceASNs()[k]
		}
	}
	fmt.Printf("\nattacker placed in AS%d\n", trueASN)
	fmt.Printf("localization narrowed %d sources down to %d candidate(s): ",
		tracker.Campaign.NumSources(), len(report.CandidateASNs))
	for i, asn := range report.CandidateASNs {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Printf("AS%d", asn)
	}
	fmt.Println()
}
