// Dataset analysis: the paper publishes its measurement dataset (§VI) so
// others can study BGP-steered catchment manipulation without weeks of
// announcements. This example runs the equivalent workflow: a campaign
// is exported to the JSON-lines dataset format, re-loaded as a fresh
// analysis input, and mined without touching the simulator — clustering,
// per-phase statistics, and a greedy schedule all come straight from the
// file.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"

	"spooftrack"
	"spooftrack/internal/cluster"
	"spooftrack/internal/core"
	"spooftrack/internal/sched"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// Producer side: run a campaign and export it.
	params := spooftrack.DefaultTrackerParams(33)
	params.Ctx = ctx
	tp := spooftrack.DefaultGenParams(33)
	tp.NumASes = 1000
	params.World.Topo = &tp
	params.World.MaxPoisonTargets = 30
	fmt.Println("producer: running campaign and exporting dataset...")
	tracker, err := spooftrack.NewTracker(params)
	if err != nil {
		log.Fatal(err)
	}
	var file bytes.Buffer
	if err := core.WriteDataset(&file, tracker.Campaign.Dataset()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("producer: dataset is %d KiB for %d configurations x %d sources\n\n",
		file.Len()/1024, tracker.Campaign.NumConfigs(), tracker.Campaign.NumSources())

	// Consumer side: everything below uses only the file.
	ds, err := core.ReadDataset(&file)
	if err != nil {
		log.Fatal(err)
	}
	matrix := ds.CatchmentMatrix()
	fmt.Printf("consumer: loaded %d configurations over %d sources\n",
		len(ds.Configs), len(ds.Header.SourceASNs))

	// Per-phase clustering.
	part := cluster.New(len(ds.Header.SourceASNs))
	lastPhase := ""
	for i, cfg := range ds.Configs {
		if cfg.Phase != lastPhase && lastPhase != "" {
			m := part.Summarize()
			fmt.Printf("  after %-11s phase: %4d clusters, mean %.2f ASes\n", lastPhase, m.NumClusters, m.MeanSize)
		}
		lastPhase = cfg.Phase
		part.Refine(matrix[i])
	}
	m := part.Summarize()
	fmt.Printf("  after %-11s phase: %4d clusters, mean %.2f ASes (%.0f%% singletons)\n\n",
		lastPhase, m.NumClusters, m.MeanSize, m.SingletonFrac*100)

	// Scheduling study straight from the file.
	greedy, order := sched.GreedyTrajectory(matrix, 10)
	fmt.Printf("greedy schedule from the dataset: first pick is config %d (%s)\n",
		order[0], ds.Configs[order[0]].Phase)
	fmt.Printf("mean cluster size after 10 greedy configs: %.2f ASes\n", greedy[len(greedy)-1])
}
