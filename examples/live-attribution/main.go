// Live attribution: the streaming closed loop as a library, without the
// daemon. An attacker floods an AmpPot-style honeypot through the
// border router; every spoofed request flows through the honeypot's
// event tap into the streaming pipeline, which incrementally refines
// the localization and deploys the next greedy configuration online by
// swapping the border's catchment table — until the attacker's cluster
// is isolated. Ctrl-C cancels cleanly at any point.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/netip"
	"os"
	"os/signal"
	"time"

	"spooftrack"
	"spooftrack/internal/amp"
	"spooftrack/internal/metrics"
	"spooftrack/internal/stream"
	"spooftrack/internal/trace"
)

func main() {
	tracePath := flag.String("trace", "live-attribution-trace.json",
		"write a Chrome trace of the run here (open in chrome://tracing or ui.perfetto.dev; empty = off)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// Tracing goes global before the tracker is built so the offline
	// campaign (deploy/measure spans) lands in the journal too.
	if *tracePath != "" {
		trace.SetGlobal(trace.New(trace.Options{Enabled: true, JournalCap: 65536}))
	}

	// Offline phase: measure catchments for the whole campaign before
	// any attack (UseTruth keeps the example fast).
	params := spooftrack.DefaultTrackerParams(17)
	tp := spooftrack.DefaultGenParams(17)
	tp.NumASes = 1000
	params.World.Topo = &tp
	params.World.MaxPoisonTargets = 20
	params.UseTruth = true
	params.Ctx = ctx
	fmt.Println("offline: deploying campaign and measuring catchments...")
	tracker, err := spooftrack.NewTracker(params)
	if err != nil {
		log.Fatal(err)
	}
	camp := tracker.Campaign

	// Packet plane on loopback.
	hp, err := amp.NewHoneypot("127.0.0.1:0", amp.DefaultHoneypotConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer hp.Close()
	border, err := amp.NewBorder("127.0.0.1:0", hp.Addr().(*net.UDPAddr), nil)
	if err != nil {
		log.Fatal(err)
	}
	defer border.Close()

	// Streaming pipeline closed onto the border: Deploy swaps the live
	// catchment table, and the honeypot tap feeds every spoofed request
	// straight into attribution. The honeypot and border share the
	// registry, so per-link and per-outcome series accumulate alongside
	// the pipeline's own counters.
	reg := metrics.NewRegistry()
	hp.SetMetrics(reg)
	border.SetMetrics(reg)
	pipe, err := stream.New(stream.Attribution{
		Catchments: camp.Catchments,
		SourceASNs: tracker.SourceASNs(),
		NumLinks:   tracker.World.Platform.NumLinks(),
	}, stream.Config{
		EvalInterval:    50 * time.Millisecond,
		MinRoundPackets: 40,
		Settle:          10 * time.Millisecond,
		Metrics:         reg,
		Deploy: func(cfgIdx int, table map[uint32]uint8) {
			border.SetCatchments(table)
			fmt.Printf("  deploy: configuration %d\n", cfgIdx)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	hp.SetTap(func(ev amp.Event) { pipe.Ingest(ev) })

	// The attack: one spoofing source, flooding continuously.
	rng := spooftrack.NewRNG(7)
	attackerIdx := rng.Intn(camp.NumSources())
	attackerASN := tracker.SourceASNs()[attackerIdx]
	fmt.Printf("attack begins: AS%d (source %d) spoofing 192.0.2.66\n", attackerASN, attackerIdx)
	attack, err := amp.NewAttacker(uint32(attackerASN), netip.MustParseAddr("192.0.2.66"))
	if err != nil {
		log.Fatal(err)
	}
	defer attack.Close()

	// Flood until the pipeline converges (or the user cancels).
	deadline := time.Now().Add(30 * time.Second)
	for !pipe.Converged() && time.Now().Before(deadline) && ctx.Err() == nil {
		if _, err := attack.Flood(border.Addr(), 30, 8); err != nil {
			log.Fatal(err)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Graceful shutdown: stop the producer side first, then drain.
	hp.SetTap(nil)
	pipe.Close()

	st := pipe.Status(3)
	fmt.Printf("\nprocessed %d events over %d rounds (%d online reconfigurations)\n",
		st.TotalEvents, st.Rounds, st.Reconfigurations)
	fmt.Printf("clusters: %d, mean size %.1f, converged=%v\n",
		st.NumClusters, st.MeanClusterSize, st.Converged)
	fmt.Printf("events_total metric: %d\n", reg.Counter("stream_events_total").Value())
	if snap, ok := reg.Snapshot()["amp_honeypot_packets_total"].(map[string]any); ok {
		fmt.Printf("honeypot saw traffic on %d links\n", len(snap))
	}

	rep, err := pipe.Evidence()
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range rep.Candidates {
		marker := ""
		if c.ASN == attackerASN {
			marker = "  <-- true attacker"
		}
		fmt.Printf("candidate AS%d: cluster size %d, traffic in %d of %d configurations%s\n",
			c.ASN, c.ClusterSize, c.ConfigsWithTraffic, c.ConfigsObserved, marker)
	}

	if *tracePath != "" {
		// Close the packet plane first so the serve-loop spans (which end
		// on socket close) make it into the journal. The deferred Closes
		// become no-ops.
		border.Close()
		hp.Close()
		tr := trace.Global()
		f, err := os.Create(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		if err := tr.WriteChromeTrace(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %d spans to %s (load in chrome://tracing or ui.perfetto.dev)\n",
			len(tr.Snapshot()), *tracePath)
	}
}
