// Policy survey: audit how many ASes follow the textbook BGP decision
// criteria across announcement configurations (the paper's Fig. 9).
// High compliance is what makes catchment *prediction* viable as a way
// to pre-rank configurations and speed up localization (§V-C).
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"

	"spooftrack/internal/bgp"
	"spooftrack/internal/cluster"
	"spooftrack/internal/experiments"
	"spooftrack/internal/sched"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	fmt.Println("deploying campaign for the policy survey...")
	lab, err := experiments.NewLab(experiments.LabParams{
		Seed:             9,
		NumASes:          1500,
		NumProbes:        500,
		NumCollectors:    120,
		MaxPoisonTargets: 40,
		Ctx:              ctx,
	})
	if err != nil {
		log.Fatal(err)
	}

	res := experiments.Fig9(lab)
	fmt.Println(res)

	// Because compliance is high, a noise-free Gao-Rexford predictor can
	// rank configurations by expected information gain without deploying
	// them. Compare the predictor's top pick against a useless config.
	pred, err := sched.NewPredictor(lab.World.Graph, lab.World.Platform.Engine().Origin())
	if err != nil {
		log.Fatal(err)
	}
	part := cluster.New(lab.Campaign.NumSources())
	cands := []bgp.Config{
		{Anns: []bgp.Announcement{{Link: 0}}}, // single link: splits nothing
		lab.Plan[0].Config,                    // full anycast: splits a lot
	}
	order, err := pred.RankByPredictedGain(part, lab.Campaign.Sources, cands)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("predictor ranks the full-anycast configuration first: %v\n", order[0] == 1)
}
