// SAV survey: actively probe every routable AS in a synthetic topology
// and infer, per AS and per direction, whether it validates source
// addresses — the probing side of "Tracking Down Sources of Spoofed IP
// Packets". Control probes establish deliverability and a hop-count
// baseline, inbound probes forge a source inside the target, and
// outbound probes bounce an amplification request off a reflector so
// the spoofed-source reply has to escape the target's egress filtering.
// Output is deterministic for the fixed seed.
package main

import (
	"fmt"
	"log"

	"spooftrack/internal/bgp"
	"spooftrack/internal/peering"
	"spooftrack/internal/probe"
	"spooftrack/internal/topo"
)

const seed = 11

func main() {
	p := topo.DefaultGenParams(seed)
	p.NumASes = 600
	g, err := topo.Generate(p)
	if err != nil {
		log.Fatal(err)
	}
	plat, err := peering.New(g, peering.Options{EngineParams: bgp.DefaultParams(seed)})
	if err != nil {
		log.Fatal(err)
	}
	anns := make([]bgp.Announcement, plat.NumLinks())
	for i := range anns {
		anns[i] = bgp.Announcement{Link: bgp.LinkID(i)}
	}
	out, err := plat.Propagate(bgp.Config{Anns: anns})
	if err != nil {
		log.Fatal(err)
	}

	// Seeded ground truth: 40% of ASes filter inbound, 50% outbound.
	truth := probe.RandomGroundTruth(g.NumASes(), 0.4, 0.5, seed)
	net, err := probe.NewSimNet(out, truth, 0, seed)
	if err != nil {
		log.Fatal(err)
	}
	pr, err := probe.NewProber(probe.Config{
		Net:         net,
		TargetLinks: out.CatchmentVector(),
		LinkNames:   plat.LinkNames(),
		Budget:      200,
		PerKind:     4,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("surveying %d routable ASes, 200 per round...\n", pr.NumTargets())
	for pr.Coverage() < 1 {
		rep := pr.Round(nil)
		fmt.Printf("round %d: visited %d, sent %d, answered %d (coverage %.0f%%)\n",
			rep.Round, rep.Visited, rep.Sent, rep.Answered, 100*pr.Coverage())
	}

	fmt.Println("\nper-AS SAV report (first 20 of the survey):")
	fmt.Println("  AS   link        inbound            outbound")
	reports := pr.Reports()
	for _, r := range reports[:20] {
		fmt.Printf("%4d   %-10s  %-8s (%.3f)   %-8s (%.3f)\n",
			r.AS, plat.LinkNames()[r.Link], r.Inbound, r.InConfidence, r.Outbound, r.OutConfidence)
	}

	// Tally verdicts against the seeded ground truth.
	var inRight, outRight, confident int
	counts := map[probe.SAVState]int{}
	for _, r := range reports {
		counts[r.Outbound]++
		want := probe.SAVAbsent
		if truth.InboundSAV[r.AS] {
			want = probe.SAVDeployed
		}
		if r.Inbound == want {
			inRight++
		}
		want = probe.SAVAbsent
		if truth.OutboundSAV[r.AS] {
			want = probe.SAVDeployed
		}
		if r.Outbound == want {
			outRight++
		}
		if r.OutConfidence >= probe.HighConfidence {
			confident++
		}
	}
	fmt.Printf("\nsurveyed %d ASes: outbound verdicts %d deployed / %d absent / %d unknown\n",
		len(reports), counts[probe.SAVDeployed], counts[probe.SAVAbsent], counts[probe.SAVUnknown])
	fmt.Printf("agreement with ground truth: inbound %d/%d, outbound %d/%d (%d high-confidence)\n",
		inRight, len(reports), outRight, len(reports), confident)

	// The evidence bridge: probe-measured ingress links audited against
	// the propagation-derived catchment vector, and a BCP38 deployment
	// model the survey measured instead of assumed.
	pr.Inference(func(inf *probe.SAVInference) {
		audit := probe.Audit(probe.BuildChannel(inf, 0), out.CatchmentVector())
		fmt.Printf("channel audit vs catchments: %d agree, %d conflict, %d probe-only, %d catchment-only\n",
			audit.Agree, audit.Conflict, audit.ProbeOnly, audit.CatchmentOnly)
		sources := make([]int, 0, len(reports))
		for _, r := range reports {
			sources = append(sources, r.AS)
		}
		model := probe.InferredBCP38(inf, sources, 0)
		deployed := 0
		for k := range sources {
			if model.Deployed(k) {
				deployed++
			}
		}
		fmt.Printf("inferred BCP38 model: %d/%d surveyed sources egress-filter spoofed packets\n",
			deployed, len(sources))
	})
}
