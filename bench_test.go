package spooftrack

// The benchmark harness regenerates every table and figure of the
// paper's evaluation. Each benchmark drives the corresponding experiment
// on the shared paper-scale lab (4000-AS topology, 7 PoPs, a 705-
// configuration campaign measured through the collector/traceroute
// pipeline) and reports the figure's headline quantity as a custom
// metric so runs are directly comparable with the paper's numbers:
//
//	BenchmarkTable1Platform       Table I    PoP/provider bindings
//	BenchmarkHeadlineCampaign     §V         mean cluster size / singletons
//	BenchmarkFig3ClusterCCDF      Fig. 3     CCDF after each phase
//	BenchmarkFig4ClusterTrajectory Fig. 4    mean/p90 vs. #configs
//	BenchmarkFig5Footprint        Fig. 5     mean size vs. footprint
//	BenchmarkFig6FootprintCCDF    Fig. 6     tail vs. footprint
//	BenchmarkFig7DistanceBreakdown Fig. 7    size vs. AS-hop distance
//	BenchmarkFig8Scheduling       Fig. 8     random vs. greedy schedules
//	BenchmarkFig9PolicyCompliance Fig. 9     Gao-Rexford compliance
//	BenchmarkFig10SpoofedTraffic  Fig. 10    traffic vs. cluster size
//	BenchmarkCampaignDeployment   §IV        full campaign wall time
//
// Run with: go test -bench=. -benchmem
// EXPERIMENTS.md records the paper-vs-measured comparison.

import (
	"testing"

	"spooftrack/internal/experiments"
	"spooftrack/internal/sched"
)

func benchLab(b *testing.B) *experiments.Lab {
	b.Helper()
	lab, err := experiments.DefaultLab()
	if err != nil {
		b.Fatal(err)
	}
	return lab
}

func BenchmarkTable1Platform(b *testing.B) {
	lab := benchLab(b)
	b.ResetTimer()
	var rows int
	for i := 0; i < b.N; i++ {
		rows = len(experiments.Table1(lab).Rows)
	}
	b.ReportMetric(float64(rows), "PoPs")
}

func BenchmarkHeadlineCampaign(b *testing.B) {
	lab := benchLab(b)
	b.ResetTimer()
	var res *experiments.HeadlineResult
	for i := 0; i < b.N; i++ {
		res = experiments.Headline(lab)
	}
	b.ReportMetric(res.MeanSize, "mean-cluster-ASes")
	b.ReportMetric(res.SingletonFrac*100, "singleton-%")
	b.ReportMetric(float64(res.NumConfigs), "configs")
	b.ReportMetric(float64(res.NumSources), "sources")
}

func BenchmarkFig3ClusterCCDF(b *testing.B) {
	lab := benchLab(b)
	b.ResetTimer()
	var res *experiments.Fig3Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig3(lab)
	}
	b.ReportMetric(res.SingletonFrac[sched.PhasePoisoning]*100, "final-singleton-%")
	b.ReportMetric(float64(res.LargeClusters), "clusters>5ASes")
	b.ReportMetric(res.LargeClusterASFrac*100, "ASes-in-large-%")
}

func BenchmarkFig4ClusterTrajectory(b *testing.B) {
	lab := benchLab(b)
	b.ResetTimer()
	var res *experiments.Fig4Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig4(lab)
	}
	b.ReportMetric(res.Mean[len(res.Mean)-1], "final-mean-ASes")
	b.ReportMetric(res.Mean[res.PhaseEnds[sched.PhaseLocations]-1], "mean-after-locations")
	b.ReportMetric(res.Mean[res.PhaseEnds[sched.PhasePrepending]-1], "mean-after-prepending")
}

func BenchmarkFig5Footprint(b *testing.B) {
	lab := benchLab(b)
	b.ResetTimer()
	var res *experiments.Fig5Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig5(lab)
	}
	for _, s := range res.Scenarios {
		final := s.MeanTrajectory[len(s.MeanTrajectory)-1]
		switch s.Locations {
		case 7:
			b.ReportMetric(final, "mean-7loc")
		case 6:
			b.ReportMetric(final, "mean-6loc")
		case 5:
			b.ReportMetric(final, "mean-5loc")
		}
	}
}

func BenchmarkFig6FootprintCCDF(b *testing.B) {
	lab := benchLab(b)
	b.ResetTimer()
	var res *experiments.Fig5Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig6(lab)
	}
	for _, s := range res.Scenarios {
		switch s.Locations {
		case 7:
			b.ReportMetric(s.FracOver25*100, ">25ASes-7loc-%")
		case 6:
			b.ReportMetric(s.FracOver25*100, ">25ASes-6loc-%")
		case 5:
			b.ReportMetric(s.FracOver25*100, ">25ASes-5loc-%")
		}
	}
}

func BenchmarkFig7DistanceBreakdown(b *testing.B) {
	lab := benchLab(b)
	b.ResetTimer()
	var res *experiments.Fig7Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig7(lab)
	}
	b.ReportMetric(res.MeanNear, "mean-1-2hops-ASes")
	b.ReportMetric(res.MeanFar, "mean-3+hops-ASes")
}

func BenchmarkFig8Scheduling(b *testing.B) {
	lab := benchLab(b)
	params := experiments.DefaultFig8Params()
	b.ResetTimer()
	var res *experiments.Fig8Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig8(lab, params)
	}
	b.ReportMetric(res.RandomAt10, "random-at-10")
	b.ReportMetric(res.GreedyAt10, "greedy-at-10")
}

func BenchmarkFig9PolicyCompliance(b *testing.B) {
	lab := benchLab(b)
	b.ResetTimer()
	var res *experiments.Fig9Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig9(lab)
	}
	b.ReportMetric(res.MeanBestRel*100, "best-rel-%")
	b.ReportMetric(res.MeanGaoRexford*100, "gao-rexford-%")
}

func BenchmarkFig10SpoofedTraffic(b *testing.B) {
	lab := benchLab(b)
	params := experiments.DefaultFig10Params()
	b.ResetTimer()
	var res *experiments.Fig10Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig10(lab, params)
	}
	b.ReportMetric(res.Single[0].CumFrac*100, "single-traffic-size1-%")
	b.ReportMetric(res.Pareto[4].CumFrac*100, "pareto-traffic-size5-%")
	b.ReportMetric(res.Uniform[4].CumFrac*100, "uniform-traffic-size5-%")
}

// BenchmarkCampaignDeployment measures the full §IV pipeline — world
// build, 705-configuration deployment, measurement, inference, and
// imputation — on a reduced topology per iteration (the paper-scale run
// is covered once by the shared lab).
func BenchmarkCampaignDeployment(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lab, err := experiments.NewLab(experiments.LabParams{
			Seed:             uint64(i + 1),
			NumASes:          1200,
			NumProbes:        400,
			NumCollectors:    100,
			MaxPoisonTargets: 40,
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = lab.Campaign.FinalPartition()
	}
}
