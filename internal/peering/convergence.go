package peering

import (
	"math"
	"time"

	"spooftrack/internal/stats"
)

// ConvergenceModel captures BGP route-convergence delay after an
// announcement change. §IV-b keeps each configuration active for 70
// minutes so that, with high probability, at least three rounds of
// traceroutes (issued every 20 minutes) complete after convergence,
// citing that convergence takes under 2.5 minutes 99% of the time
// (LIFEGUARD, SIGCOMM 2012). The model is lognormal, parameterized by
// its median and 99th percentile.
type ConvergenceModel struct {
	Median time.Duration
	P99    time.Duration
}

// DefaultConvergenceModel matches the paper's operating point: typical
// convergence well under a minute, 99% under 2.5 minutes.
func DefaultConvergenceModel() ConvergenceModel {
	return ConvergenceModel{Median: 30 * time.Second, P99: 150 * time.Second}
}

// z99 is the standard normal 99th-percentile quantile.
const z99 = 2.3263478740408408

// Sample draws one convergence delay. Deterministic for an RNG state.
func (m ConvergenceModel) Sample(rng *stats.RNG) time.Duration {
	mu := math.Log(m.Median.Seconds())
	sigma := (math.Log(m.P99.Seconds()) - mu) / z99
	if sigma <= 0 {
		return m.Median
	}
	z := gaussian(rng)
	return time.Duration(math.Exp(mu+sigma*z) * float64(time.Second))
}

// gaussian draws a standard normal variate via Box-Muller.
func gaussian(rng *stats.RNG) float64 {
	u1 := rng.Float64()
	for u1 == 0 {
		u1 = rng.Float64()
	}
	u2 := rng.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// RoundsAfterConvergence returns how many periodic measurement rounds
// fit in a configuration slot after routes converge: rounds fire at
// period, 2*period, ... within the slot, and only those strictly after
// the convergence delay count.
func RoundsAfterConvergence(slot, period, convergence time.Duration) int {
	if period <= 0 {
		return 0
	}
	rounds := 0
	for t := period; t <= slot; t += period {
		if t > convergence {
			rounds++
		}
	}
	return rounds
}
