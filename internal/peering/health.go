package peering

import (
	"sync"

	"spooftrack/internal/bgp"
	"spooftrack/internal/metrics"
)

// BreakerState is a per-link circuit-breaker state.
type BreakerState int

const (
	// BreakerClosed: the link is healthy and schedulable.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the link is quarantined — recent deployments through
	// it flapped or failed repeatedly; greedy planning routes around it.
	BreakerOpen
	// BreakerHalfOpen: the quarantine cooldown elapsed; the next
	// deployment through the link is a trial. Success closes the
	// breaker, failure re-opens it.
	BreakerHalfOpen
)

// String names the state as used in metrics labels and /faults output.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half_open"
	default:
		return "unknown"
	}
}

type linkState struct {
	state       BreakerState
	consecFails int
	openedAt    int64 // report tick when the breaker last opened

	failures  int64
	successes int64
}

// LinkHealth tracks per-peering-link deployment health and quarantines
// flapping links with a consecutive-failure circuit breaker. Time is the
// global report tick — every reported outcome advances it — so
// quarantine expiry is driven by deployment activity, not wall clock,
// and chaos runs stay deterministic. The breaker never alters campaign
// results: it is consulted only by scheduling (sched masks, the stream
// controller) and surfaced on /faults.
type LinkHealth struct {
	mu        sync.Mutex
	threshold int
	cooldown  int64
	tick      int64
	links     []linkState

	transitions [3]*metrics.Counter // indexed by BreakerState, nil until Instrument

	// onTransition, if set, observes every breaker state change (the
	// provenance ledger's quarantine hook). Called with h.mu held — it
	// must be fast and must not call back into LinkHealth.
	onTransition func(link bgp.LinkID, from, to BreakerState)
}

// DefaultBreakerThreshold trips a link's breaker after this many
// consecutive failed or flapped deployments.
const DefaultBreakerThreshold = 3

// DefaultBreakerCooldown is how many report ticks an open breaker waits
// before allowing a half-open trial.
const DefaultBreakerCooldown = 16

// NewLinkHealth builds a tracker for numLinks peering links. A
// threshold or cooldown ≤ 0 takes the default.
func NewLinkHealth(numLinks, threshold int, cooldown int64) *LinkHealth {
	if threshold <= 0 {
		threshold = DefaultBreakerThreshold
	}
	if cooldown <= 0 {
		cooldown = DefaultBreakerCooldown
	}
	return &LinkHealth{
		threshold: threshold,
		cooldown:  cooldown,
		links:     make([]linkState, numLinks),
	}
}

// SetTransitionHook registers fn to observe every breaker state change
// (link, previous state, new state) — the decision-provenance ledger's
// quarantine evidence channel. fn runs with the health lock held and
// must not call back into LinkHealth. Call before reports start; a nil
// fn clears the hook.
func (h *LinkHealth) SetTransitionHook(fn func(link bgp.LinkID, from, to BreakerState)) {
	h.mu.Lock()
	h.onTransition = fn
	h.mu.Unlock()
}

func (h *LinkHealth) transition(link bgp.LinkID, st *linkState, to BreakerState) {
	from := st.state
	st.state = to
	if to == BreakerOpen {
		st.openedAt = h.tick
	}
	if c := h.transitions[to]; c != nil {
		c.Inc()
	}
	if h.onTransition != nil {
		h.onTransition(link, from, to)
	}
}

// advanceLocked bumps the report tick and moves cooled-down open
// breakers to half-open.
func (h *LinkHealth) advanceLocked() {
	h.tick++
	for i := range h.links {
		st := &h.links[i]
		if st.state == BreakerOpen && h.tick-st.openedAt >= h.cooldown {
			h.transition(bgp.LinkID(i), st, BreakerHalfOpen)
		}
	}
}

// ReportFailure records a failed or flapped deployment through link l:
// consecutive failures trip the breaker open; a failed half-open trial
// re-opens it.
func (h *LinkHealth) ReportFailure(l bgp.LinkID) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if int(l) < 0 || int(l) >= len(h.links) {
		return
	}
	h.advanceLocked()
	st := &h.links[l]
	st.failures++
	st.consecFails++
	switch st.state {
	case BreakerClosed:
		if st.consecFails >= h.threshold {
			h.transition(l, st, BreakerOpen)
		}
	case BreakerHalfOpen:
		h.transition(l, st, BreakerOpen)
	}
}

// ReportSuccess records a clean deployment through link l: it resets
// the failure streak and closes a half-open breaker.
func (h *LinkHealth) ReportSuccess(l bgp.LinkID) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if int(l) < 0 || int(l) >= len(h.links) {
		return
	}
	h.advanceLocked()
	st := &h.links[l]
	st.successes++
	st.consecFails = 0
	if st.state == BreakerHalfOpen {
		h.transition(l, st, BreakerClosed)
	}
}

// IsQuarantined reports whether link l's breaker is open. Half-open
// links are schedulable (that is the trial).
func (h *LinkHealth) IsQuarantined(l bgp.LinkID) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if int(l) < 0 || int(l) >= len(h.links) {
		return false
	}
	return h.links[l].state == BreakerOpen
}

// Quarantined returns the links whose breakers are currently open.
func (h *LinkHealth) Quarantined() []bgp.LinkID {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []bgp.LinkID
	for i := range h.links {
		if h.links[i].state == BreakerOpen {
			out = append(out, bgp.LinkID(i))
		}
	}
	return out
}

// LinkHealthStat is one link's point-in-time breaker state, shaped for
// the daemon's /faults endpoint.
type LinkHealthStat struct {
	Link        int    `json:"link"`
	State       string `json:"state"`
	ConsecFails int    `json:"consecutive_failures,omitempty"`
	Failures    int64  `json:"failures"`
	Successes   int64  `json:"successes"`
}

// Snapshot returns every link's breaker state.
func (h *LinkHealth) Snapshot() []LinkHealthStat {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]LinkHealthStat, len(h.links))
	for i := range h.links {
		st := &h.links[i]
		out[i] = LinkHealthStat{
			Link:        i,
			State:       st.state.String(),
			ConsecFails: st.consecFails,
			Failures:    st.failures,
			Successes:   st.successes,
		}
	}
	return out
}

// Instrument mirrors breaker transitions into the registry as
// peering_link_breaker_transitions_total{state=...} plus a
// peering_links_quarantined gauge. Call once, before reports start.
func (h *LinkHealth) Instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	vec := reg.CounterVec("peering_link_breaker_transitions_total", "state")
	h.mu.Lock()
	for s := BreakerClosed; s <= BreakerHalfOpen; s++ {
		h.transitions[s] = vec.With(s.String())
	}
	h.mu.Unlock()
	reg.GaugeFunc("peering_links_quarantined", func() float64 {
		return float64(len(h.Quarantined()))
	})
}
