package peering

import (
	"testing"

	"spooftrack/internal/bgp"
	"spooftrack/internal/fault"
)

func benchConfig(p *Platform) bgp.Config {
	anns := make([]bgp.Announcement, p.NumLinks())
	for i := range anns {
		anns[i] = bgp.Announcement{Link: bgp.LinkID(i)}
	}
	return bgp.Config{Anns: anns}
}

// BenchmarkPlatformPropagateFaultsOff is the hot path with no fault hook
// installed: it must stay within the 5% budget of plain Propagate
// (scripts/bench.sh compares the two).
func BenchmarkPlatformPropagateFaultsOff(b *testing.B) {
	p := platformForTest(b, 2000)
	cfg := benchConfig(p)
	if _, err := p.PropagateAttempt(cfg, 0, true, nil); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.PropagateAttempt(cfg, 0, true, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlatformPropagateBaseline is plain Propagate on the same
// platform and configuration — the reference for the fault-off budget.
func BenchmarkPlatformPropagateBaseline(b *testing.B) {
	p := platformForTest(b, 2000)
	cfg := benchConfig(p)
	if _, err := p.engine.Propagate(cfg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.engine.Propagate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlatformPropagateFaultsOn measures the injected-fault path
// (chaos profile, latency zeroed so the bench measures bookkeeping, not
// sleeps). Failed attempts are part of the measured work.
func BenchmarkPlatformPropagateFaultsOn(b *testing.B) {
	p := platformForTest(b, 2000)
	prof, err := fault.ProfileByName("chaos")
	if err != nil {
		b.Fatal(err)
	}
	prof.DeployLatency = 0
	p.SetFaultHook(fault.New(prof, 7, p.NumLinks()))
	cfg := benchConfig(p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.PropagateAttempt(cfg, i, true, nil)
	}
}
