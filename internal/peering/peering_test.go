package peering

import (
	"testing"
	"time"

	"spooftrack/internal/bgp"
	"spooftrack/internal/topo"
)

func graphForTest(t testing.TB, n int) *topo.Graph {
	t.Helper()
	p := topo.DefaultGenParams(21)
	p.NumASes = n
	g, err := topo.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func platformForTest(t testing.TB, n int) *Platform {
	t.Helper()
	g := graphForTest(t, n)
	p, err := New(g, Options{EngineParams: bgp.DefaultParams(21)})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewBindsTableI(t *testing.T) {
	p := platformForTest(t, 1000)
	if p.NumLinks() != 7 {
		t.Fatalf("NumLinks = %d, want 7", p.NumLinks())
	}
	names := map[string]bool{}
	provs := map[int]bool{}
	for _, m := range p.Muxes() {
		names[m.Spec.Name] = true
		if provs[m.Provider] {
			t.Fatalf("two muxes share provider index %d", m.Provider)
		}
		provs[m.Provider] = true
		if p.Graph().IsTier1(m.Provider) {
			t.Errorf("mux %s bound to a tier-1 provider", m.Spec.Name)
		}
		if len(p.Graph().Customers(m.Provider)) == 0 {
			t.Errorf("mux %s bound to a non-transit provider", m.Spec.Name)
		}
	}
	for _, spec := range TableI {
		if !names[spec.Name] {
			t.Errorf("mux %s missing", spec.Name)
		}
	}
	ln := p.LinkNames()
	if len(ln) != p.NumLinks() {
		t.Fatalf("LinkNames has %d entries for %d links", len(ln), p.NumLinks())
	}
	for i, m := range p.Muxes() {
		if ln[i] != m.Spec.Name {
			t.Fatalf("LinkNames[%d] = %q, want %q", i, ln[i], m.Spec.Name)
		}
	}
}

func TestNewProvidersSpread(t *testing.T) {
	p := platformForTest(t, 2000)
	// At least some pairs of providers should be >= 2 AS-hops apart so
	// catchments are meaningful.
	g := p.Graph()
	far := 0
	ms := p.Muxes()
	for i := range ms {
		d := g.HopDistances([]int{ms[i].Provider})
		for j := i + 1; j < len(ms); j++ {
			if d[ms[j].Provider] >= 2 {
				far++
			}
		}
	}
	if far == 0 {
		t.Fatal("all providers adjacent; greedy spread failed")
	}
}

func TestDeployAdvancesClock(t *testing.T) {
	p := platformForTest(t, 800)
	cfg := bgp.Config{Anns: []bgp.Announcement{{Link: 0}, {Link: 1}}}
	if _, err := p.Deploy(cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Deploy(cfg); err != nil {
		t.Fatal(err)
	}
	if got, want := p.Elapsed(), 140*time.Minute; got != want {
		t.Fatalf("Elapsed = %v, want %v", got, want)
	}
	if p.Deployed() != 2 || len(p.History()) != 2 {
		t.Fatalf("Deployed = %d, history %d", p.Deployed(), len(p.History()))
	}
}

func TestConstraintMaxPoison(t *testing.T) {
	p := platformForTest(t, 800)
	g := p.Graph()
	cfg := bgp.Config{Anns: []bgp.Announcement{{
		Link:   0,
		Poison: []topo.ASN{g.ASN(1), g.ASN(2), g.ASN(3)}, // 3 > limit of 2
	}}}
	if err := p.CheckConstraints(cfg); err == nil {
		t.Fatal("expected max-poison violation")
	}
	if _, err := p.Deploy(cfg); err == nil {
		t.Fatal("Deploy must reject constraint violations")
	}
	if p.Deployed() != 0 {
		t.Fatal("rejected deploy must not advance state")
	}
}

func TestConstraintMaxPrepend(t *testing.T) {
	p := platformForTest(t, 800)
	cfg := bgp.Config{Anns: []bgp.Announcement{{Link: 0, Prepend: 5}}}
	if err := p.CheckConstraints(cfg); err == nil {
		t.Fatal("expected max-prepend violation")
	}
	ok := bgp.Config{Anns: []bgp.Announcement{{Link: 0, Prepend: 4}}}
	if err := p.CheckConstraints(ok); err != nil {
		t.Fatalf("4 prepends should be allowed: %v", err)
	}
}

func TestDeployPropagates(t *testing.T) {
	p := platformForTest(t, 1000)
	anns := make([]bgp.Announcement, p.NumLinks())
	for i := range anns {
		anns[i] = bgp.Announcement{Link: bgp.LinkID(i)}
	}
	out, err := p.Deploy(bgp.Config{Anns: anns})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRouted() < p.Graph().NumASes()*9/10 {
		t.Fatalf("only %d of %d ASes routed", out.NumRouted(), p.Graph().NumASes())
	}
}

func TestLinkByProvider(t *testing.T) {
	p := platformForTest(t, 800)
	g := p.Graph()
	for l, m := range p.Muxes() {
		got, ok := p.LinkByProvider(g.ASN(m.Provider))
		if !ok || got != bgp.LinkID(l) {
			t.Fatalf("LinkByProvider(%d) = %d ok=%v, want %d", g.ASN(m.Provider), got, ok, l)
		}
	}
	if _, ok := p.LinkByProvider(4294967295); ok {
		t.Fatal("unknown provider should not resolve")
	}
}

func TestProviderNeighbors(t *testing.T) {
	p := platformForTest(t, 800)
	ns := p.ProviderNeighbors()
	if len(ns) != p.NumLinks() {
		t.Fatalf("got %d entries, want %d", len(ns), p.NumLinks())
	}
	total := 0
	for l, list := range ns {
		prov := p.Muxes()[l].Provider
		for _, idx := range list {
			if _, ok := p.Graph().Rel(prov, idx); !ok {
				t.Fatalf("AS at %d is not a neighbor of provider of link %d", idx, l)
			}
		}
		total += len(list)
	}
	if total == 0 {
		t.Fatal("providers have no neighbors")
	}
}

func TestNewCustomMuxes(t *testing.T) {
	g := graphForTest(t, 800)
	specs := []MuxSpec{{Name: "X", ProviderName: "XP", ProviderASN: 1}, {Name: "Y", ProviderName: "YP", ProviderASN: 2}}
	p, err := New(g, Options{Muxes: specs, EngineParams: bgp.DefaultParams(1)})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumLinks() != 2 {
		t.Fatalf("NumLinks = %d, want 2", p.NumLinks())
	}
}

func TestNewErrors(t *testing.T) {
	g := graphForTest(t, 800)
	if _, err := New(g, Options{Muxes: []MuxSpec{}}); err == nil {
		t.Fatal("expected error for zero muxes")
	}
	// Tiny graph without enough transit providers.
	b := topo.NewBuilder()
	if err := b.AddP2C(1, 2); err != nil {
		t.Fatal(err)
	}
	tiny := b.Freeze()
	if _, err := New(tiny, Options{}); err == nil {
		t.Fatal("expected error for too-small topology")
	}
}

func TestDefaultConstraints(t *testing.T) {
	c := DefaultConstraints()
	if c.MaxPoison != 2 || c.MaxPrepend != 4 || c.ConfigDuration != 70*time.Minute {
		t.Fatalf("unexpected defaults %+v", c)
	}
}
