// Package peering models the origin-AS side of the experiment: a
// PEERING-like research platform (Schlinker et al., CoNEXT 2019) with
// multiple points-of-presence, each connected to one transit provider
// (the paper's Table I), an announcement controller enforcing the
// platform's operational constraints, and a simulated clock accounting
// for BGP convergence and catchment measurement delay (70 minutes per
// configuration in the paper, §IV-b).
package peering

import (
	"fmt"
	"sort"
	"time"

	"spooftrack/internal/bgp"
	"spooftrack/internal/metrics"
	"spooftrack/internal/stats"
	"spooftrack/internal/topo"
	"spooftrack/internal/trace"
)

// PEERINGASN is the platform's AS number, used as the origin ASN and as
// the sentinel wrapped around poisoned ASes (§IV-e).
const PEERINGASN topo.ASN = 47065

// MuxSpec names one PEERING point-of-presence and its transit provider,
// as in the paper's Table I.
type MuxSpec struct {
	Name         string
	ProviderName string
	ProviderASN  topo.ASN
}

// TableI lists the seven PoPs and providers the paper's experiments used.
var TableI = []MuxSpec{
	{Name: "AMS-IX", ProviderName: "Bit BV", ProviderASN: 12859},
	{Name: "GRNet", ProviderName: "GRNet", ProviderASN: 5408},
	{Name: "USC/ISI", ProviderName: "Los Nettos", ProviderASN: 226},
	{Name: "NEU", ProviderName: "Northeastern University", ProviderASN: 156},
	{Name: "Seattle-IX", ProviderName: "RGnet", ProviderASN: 3130},
	{Name: "UFMG", ProviderName: "RNP", ProviderASN: 1916},
	{Name: "UW", ProviderName: "Pacific Northwest GigaPoP", ProviderASN: 101},
}

// Mux is one deployed point-of-presence: a Table-I label bound to a
// provider AS in the topology.
type Mux struct {
	Spec MuxSpec
	// Provider is the dense topo index of the transit provider this mux
	// announces through.
	Provider int
}

// Constraints are the platform's per-announcement operational limits.
type Constraints struct {
	// MaxPoison is the maximum number of ASes poisoned on a single
	// announcement (PEERING conservatively allows 2, §IV-e).
	MaxPoison int
	// MaxPrepend bounds AS-path prepending per announcement.
	MaxPrepend int
	// ConfigDuration is how long each configuration stays active to
	// cover convergence plus three rounds of traceroutes (70 min, §IV-b).
	ConfigDuration time.Duration
}

// DefaultConstraints returns the limits the paper operated under.
func DefaultConstraints() Constraints {
	return Constraints{
		MaxPoison:      2,
		MaxPrepend:     4,
		ConfigDuration: 70 * time.Minute,
	}
}

// Platform is the origin AS with its muxes, constraint checking, and the
// simulated experiment clock. It wraps a bgp.Engine: Deploy validates a
// configuration, charges clock time, and propagates it.
//
// Propagation is split from bookkeeping so campaigns can fan
// configurations out across CPUs: Propagate is safe for concurrent use
// (and consults the outcome cache), while Record — which advances the
// simulated clock and the deployment history, both ordered state — must
// be called sequentially in deployment order.
type Platform struct {
	muxes       []Mux
	constraints Constraints
	engine      *bgp.Engine
	cache       *bgp.OutcomeCache // nil when disabled

	// conv models per-deployment BGP convergence delay; convRNG drives
	// its sampling. Both belong to the sequential Record path.
	conv    ConvergenceModel
	convRNG *stats.RNG

	elapsed   time.Duration
	converged time.Duration
	deployed  int
	history   []bgp.Config

	// hook, when set, injects deployment faults (latency, link flaps,
	// failed attempts); health is the per-link breaker the hook's flap
	// and failure reports feed. The hot path pays nothing when no hook
	// is installed.
	hook   FaultHook
	health *LinkHealth
}

// FaultHook injects deployment faults. Deploy is called once per
// deployment attempt with the configuration's canonical key; it returns
// the links that flapped during the attempt (reported to the link-health
// breaker even on success) and a non-nil error when the attempt fails.
// internal/fault.Injector implements it.
type FaultHook interface {
	Deploy(cfgKey string, attempt int) ([]bgp.LinkID, error)
}

// Options configures platform construction.
type Options struct {
	// Muxes to deploy; defaults to TableI.
	Muxes []MuxSpec
	// Constraints default to DefaultConstraints.
	Constraints *Constraints
	// EngineParams configures the routing engine realism knobs.
	EngineParams bgp.Params
	// DisableOutcomeCache turns off outcome memoization: every
	// Propagate/Deploy re-runs the routing engine even for a
	// configuration seen before. Outcomes are immutable, so the cache
	// never changes results — disable it only to bound memory or to
	// benchmark raw propagation.
	DisableOutcomeCache bool
	// OutcomeCacheCapacity bounds the outcome cache (LRU eviction past
	// the bound). 0 uses bgp.DefaultOutcomeCacheCapacity; negative means
	// unbounded. At internet scale an Outcome is ~16 bytes per AS, so
	// size this to the memory budget.
	OutcomeCacheCapacity int
}

// New builds a platform over the topology, binding each mux to a transit
// provider. Providers are chosen deterministically: the highest-customer-
// degree non-tier-1 transit ASes, greedily spread so no two muxes share a
// provider and pairwise AS-hop distance is maximized — mirroring
// PEERING's geographically dispersed PoPs.
func New(g *topo.Graph, opts Options) (*Platform, error) {
	specs := opts.Muxes
	if specs == nil {
		specs = TableI
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("peering: no muxes requested")
	}
	cons := DefaultConstraints()
	if opts.Constraints != nil {
		cons = *opts.Constraints
	}
	providers, err := chooseProviders(g, len(specs))
	if err != nil {
		return nil, err
	}
	muxes := make([]Mux, len(specs))
	links := make([]bgp.Link, len(specs))
	for i, spec := range specs {
		muxes[i] = Mux{Spec: spec, Provider: providers[i]}
		links[i] = bgp.Link{Name: spec.Name, Provider: providers[i]}
	}
	engine, err := bgp.NewEngine(g, bgp.Origin{ASN: PEERINGASN, Links: links}, opts.EngineParams)
	if err != nil {
		return nil, err
	}
	p := &Platform{
		muxes:       muxes,
		constraints: cons,
		engine:      engine,
		conv:        DefaultConvergenceModel(),
		convRNG:     stats.NewRNG(opts.EngineParams.Seed ^ 0xc09e4ce5ead),
	}
	if !opts.DisableOutcomeCache {
		switch {
		case opts.OutcomeCacheCapacity > 0:
			p.cache = bgp.NewOutcomeCacheCap(opts.OutcomeCacheCapacity)
		case opts.OutcomeCacheCapacity < 0:
			p.cache = bgp.NewOutcomeCacheCap(0)
		default:
			p.cache = bgp.NewOutcomeCache()
		}
	}
	p.health = NewLinkHealth(len(muxes), 0, 0)
	return p, nil
}

// chooseProviders picks n distinct non-tier-1 transit ASes: the 4n
// largest by customer count, then a greedy max-min-distance subset.
func chooseProviders(g *topo.Graph, n int) ([]int, error) {
	transit := g.TransitASes()
	var cands []int
	for _, i := range transit {
		if !g.IsTier1(i) {
			cands = append(cands, i)
		}
	}
	if len(cands) < n {
		return nil, fmt.Errorf("peering: topology has only %d candidate providers, need %d", len(cands), n)
	}
	sort.Slice(cands, func(a, b int) bool {
		ca, cb := len(g.Customers(cands[a])), len(g.Customers(cands[b]))
		if ca != cb {
			return ca > cb
		}
		return cands[a] < cands[b]
	})
	pool := cands
	if len(pool) > 4*n {
		pool = pool[:4*n]
	}
	// Greedy farthest-point selection over AS-hop distance.
	chosen := []int{pool[0]}
	dist := g.HopDistances([]int{pool[0]})
	for len(chosen) < n {
		best, bestD := -1, -1
		for _, c := range pool {
			if containsInt(chosen, c) {
				continue
			}
			if dist[c] > bestD {
				best, bestD = c, dist[c]
			}
		}
		chosen = append(chosen, best)
		nd := g.HopDistances([]int{best})
		for i := range dist {
			if nd[i] < dist[i] {
				dist[i] = nd[i]
			}
		}
	}
	return chosen, nil
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// Engine exposes the underlying routing engine (read-only use).
func (p *Platform) Engine() *bgp.Engine { return p.engine }

// Constraints returns the platform's operational limits.
func (p *Platform) Constraints() Constraints { return p.constraints }

// Graph returns the topology the platform is attached to.
func (p *Platform) Graph() *topo.Graph { return p.engine.Graph() }

// Muxes returns the deployed muxes.
func (p *Platform) Muxes() []Mux { return p.muxes }

// NumLinks returns the number of peering links (muxes).
func (p *Platform) NumLinks() int { return len(p.muxes) }

// LinkNames returns the mux names indexed by LinkID — stable
// identifiers for metric labels and reports.
func (p *Platform) LinkNames() []string {
	names := make([]string, len(p.muxes))
	for i, m := range p.muxes {
		names[i] = m.Spec.Name
	}
	return names
}

// LinkByProvider maps a provider ASN to its peering link.
func (p *Platform) LinkByProvider(asn topo.ASN) (bgp.LinkID, bool) {
	for i, m := range p.muxes {
		if p.Graph().ASN(m.Provider) == asn {
			return bgp.LinkID(i), true
		}
	}
	return bgp.NoLink, false
}

// ProviderNeighbors returns, for each mux, the dense indices of the
// provider's neighbors excluding the origin itself — the poisoning
// targets of the paper's third technique (§III-A-c): ASes one hop behind
// a directly connected provider.
func (p *Platform) ProviderNeighbors() map[bgp.LinkID][]int {
	g := p.Graph()
	out := make(map[bgp.LinkID][]int, len(p.muxes))
	for l, m := range p.muxes {
		var ns []int
		for _, nb := range g.Neighbors(m.Provider) {
			ns = append(ns, nb.Idx)
		}
		out[bgp.LinkID(l)] = ns
	}
	return out
}

// CheckConstraints validates a configuration against the platform limits
// without deploying it.
func (p *Platform) CheckConstraints(cfg bgp.Config) error {
	if err := cfg.Validate(p.engine.Origin()); err != nil {
		return err
	}
	for _, a := range cfg.Anns {
		if len(a.Poison) > p.constraints.MaxPoison {
			return fmt.Errorf("peering: announcement on %s poisons %d ASes, platform limit is %d",
				p.muxes[a.Link].Spec.Name, len(a.Poison), p.constraints.MaxPoison)
		}
		if a.Prepend > p.constraints.MaxPrepend {
			return fmt.Errorf("peering: announcement on %s prepends %d times, platform limit is %d",
				p.muxes[a.Link].Spec.Name, a.Prepend, p.constraints.MaxPrepend)
		}
	}
	return nil
}

// Propagate computes the converged routing outcome for the configuration
// without touching the platform's clock or history. It consults the
// outcome cache when enabled and is safe for concurrent use.
func (p *Platform) Propagate(cfg bgp.Config) (*bgp.Outcome, error) {
	return p.PropagateTraced(cfg, nil)
}

// PropagateTraced is Propagate with trace-span parentage: the cache
// lookup (or raw propagation) span nests under parent. With tracing
// disabled the extra cost is a few atomic loads.
func (p *Platform) PropagateTraced(cfg bgp.Config, parent *trace.Span) (*bgp.Outcome, error) {
	if p.cache != nil {
		return p.cache.PropagateTraced(p.engine, cfg, parent)
	}
	out, err := p.engine.PropagateTraced(cfg, parent)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// SetFaultHook installs a deployment fault injector. Call before the
// campaign starts; a nil hook restores the fault-free fast path.
func (p *Platform) SetFaultHook(h FaultHook) { p.hook = h }

// Health returns the per-link breaker tracking deployment health. It is
// always non-nil; without a fault hook it simply never trips.
func (p *Platform) Health() *LinkHealth { return p.health }

// PropagateAttempt runs one deployment attempt of the configuration:
// the fault hook (if any) first injects convergence latency, link
// flaps, and attempt failures — flaps and failures are charged to the
// link-health breaker, clean announcements credited — and then the
// outcome is computed as in PropagateTraced (bypassing the outcome
// cache when noCache is set). Safe for concurrent use; the breaker
// never influences the returned outcome, so campaign results stay
// deterministic under any fault profile.
func (p *Platform) PropagateAttempt(cfg bgp.Config, attempt int, noCache bool, parent *trace.Span) (*bgp.Outcome, error) {
	if p.hook != nil {
		flapped, err := p.hook.Deploy(cfg.Key(), attempt)
		for _, l := range flapped {
			p.health.ReportFailure(l)
		}
		for _, a := range cfg.Anns {
			if containsLink(flapped, a.Link) {
				continue
			}
			if err != nil {
				p.health.ReportFailure(a.Link)
			} else {
				p.health.ReportSuccess(a.Link)
			}
		}
		if err != nil {
			return nil, err
		}
	}
	if noCache || p.cache == nil {
		out, err := p.engine.PropagateTraced(cfg, parent)
		if err != nil {
			return nil, err
		}
		return &out, nil
	}
	return p.cache.PropagateTraced(p.engine, cfg, parent)
}

func containsLink(xs []bgp.LinkID, v bgp.LinkID) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// Record accounts for one deployment of the configuration: it advances
// the simulated clock by the configuration duration, samples a
// convergence delay from the platform's model, and appends to the
// deployment history. Callers that propagate concurrently must call
// Record sequentially, in deployment order.
func (p *Platform) Record(cfg bgp.Config) {
	p.RecordTraced(cfg, nil)
}

// RecordTraced is Record with trace-span parentage: it emits a
// "peering.settle" span under parent carrying the sampled convergence
// delay and the configuration slot duration. The convergence sample is
// drawn whether or not tracing is on, so simulated clocks are identical
// across traced and untraced runs.
func (p *Platform) RecordTraced(cfg bgp.Config, parent *trace.Span) {
	conv := p.conv.Sample(p.convRNG)
	sp := trace.StartChild(parent, "peering.settle")
	p.elapsed += p.constraints.ConfigDuration
	p.converged += conv
	p.deployed++
	p.history = append(p.history, cfg)
	if sp != nil {
		sp.Set(
			trace.Float("sim_convergence_s", conv.Seconds()),
			trace.Float("sim_config_duration_s", p.constraints.ConfigDuration.Seconds()),
			trace.Int("deployed", int64(p.deployed)),
		)
		sp.End()
	}
}

// CacheStats returns the outcome cache's cumulative hit and miss counts
// (zeros when the cache is disabled).
func (p *Platform) CacheStats() (hits, misses uint64) {
	if p.cache == nil {
		return 0, 0
	}
	return p.cache.Stats()
}

// CacheSize returns the number of memoized outcomes (zero when the
// cache is disabled).
func (p *Platform) CacheSize() int {
	if p.cache == nil {
		return 0
	}
	return p.cache.Len()
}

// InstrumentCache wires the outcome cache into a metrics registry as
// bgp_outcome_cache_requests_total{result="hit"|"miss"|"eviction"} plus a
// bgp_outcome_cache_size gauge. No-op when the cache is disabled or reg
// is nil. The watchdog's hit-rate SLO reads the labeled family.
func (p *Platform) InstrumentCache(reg *metrics.Registry) {
	if p.cache == nil || reg == nil {
		return
	}
	p.cache.Instrument(reg.CounterVec("bgp_outcome_cache_requests_total", "result"))
	reg.GaugeFunc("bgp_outcome_cache_size", func() float64 { return float64(p.cache.Len()) })
}

// ConvergenceTotal returns the cumulative sampled convergence delay
// across all recorded deployments.
func (p *Platform) ConvergenceTotal() time.Duration { return p.converged }

// Deploy validates the configuration, advances the simulated clock by the
// configuration duration, and returns the converged routing outcome.
func (p *Platform) Deploy(cfg bgp.Config) (*bgp.Outcome, error) {
	if err := p.CheckConstraints(cfg); err != nil {
		return nil, err
	}
	out, err := p.Propagate(cfg)
	if err != nil {
		return nil, err
	}
	p.Record(cfg)
	return out, nil
}

// Elapsed returns the simulated wall-clock time spent deploying
// configurations so far.
func (p *Platform) Elapsed() time.Duration { return p.elapsed }

// Deployed returns how many configurations have been deployed.
func (p *Platform) Deployed() int { return p.deployed }

// History returns the configurations deployed so far, in order.
func (p *Platform) History() []bgp.Config { return p.history }
