package peering

import (
	"testing"
	"time"

	"spooftrack/internal/stats"
)

func TestConvergenceModelQuantiles(t *testing.T) {
	m := DefaultConvergenceModel()
	rng := stats.NewRNG(1)
	const n = 20000
	under25, underMedianish := 0, 0
	for i := 0; i < n; i++ {
		d := m.Sample(rng)
		if d <= 0 {
			t.Fatal("non-positive convergence delay")
		}
		if d < 150*time.Second {
			under25++
		}
		if d < 30*time.Second {
			underMedianish++
		}
	}
	// ~99% under 2.5 minutes (the paper's cited operating point).
	if frac := float64(under25) / n; frac < 0.975 || frac > 0.999 {
		t.Fatalf("%.4f of samples under 2.5 min, want ~0.99", frac)
	}
	// ~50% under the median.
	if frac := float64(underMedianish) / n; frac < 0.45 || frac > 0.55 {
		t.Fatalf("%.4f of samples under median, want ~0.5", frac)
	}
}

func TestConvergenceModelDeterministic(t *testing.T) {
	m := DefaultConvergenceModel()
	a, b := stats.NewRNG(7), stats.NewRNG(7)
	for i := 0; i < 100; i++ {
		if m.Sample(a) != m.Sample(b) {
			t.Fatal("samples diverge for same seed")
		}
	}
}

func TestRoundsAfterConvergence(t *testing.T) {
	slot := 70 * time.Minute
	period := 20 * time.Minute
	// Rounds at 20/40/60 min; all after a 2.5-minute convergence.
	if got := RoundsAfterConvergence(slot, period, 150*time.Second); got != 3 {
		t.Fatalf("got %d rounds, want 3", got)
	}
	// A pathological 45-minute convergence leaves only the 60-min round.
	if got := RoundsAfterConvergence(slot, period, 45*time.Minute); got != 1 {
		t.Fatalf("got %d rounds, want 1", got)
	}
	if got := RoundsAfterConvergence(slot, 0, time.Second); got != 0 {
		t.Fatalf("zero period should give 0 rounds, got %d", got)
	}
}

func TestPaperSlotCoversThreeRounds(t *testing.T) {
	// The §IV-b design claim: a 70-minute slot with 20-minute traceroute
	// rounds yields at least 3 post-convergence rounds with high
	// probability under the cited convergence distribution.
	m := DefaultConvergenceModel()
	rng := stats.NewRNG(3)
	const n = 10000
	ok := 0
	for i := 0; i < n; i++ {
		if RoundsAfterConvergence(70*time.Minute, 20*time.Minute, m.Sample(rng)) >= 3 {
			ok++
		}
	}
	if frac := float64(ok) / n; frac < 0.98 {
		t.Fatalf("only %.4f of slots cover 3 rounds, want >= 0.98", frac)
	}
}
