package peering

import (
	"fmt"
	"reflect"
	"testing"

	"spooftrack/internal/bgp"
	"spooftrack/internal/metrics"
)

func TestBreakerTripsAndCoolsDown(t *testing.T) {
	h := NewLinkHealth(3, 3, 4)
	for i := 0; i < 2; i++ {
		h.ReportFailure(0)
		if h.IsQuarantined(0) {
			t.Fatalf("quarantined after %d failures, threshold 3", i+1)
		}
	}
	h.ReportFailure(0)
	if !h.IsQuarantined(0) {
		t.Fatal("3 consecutive failures must trip the breaker")
	}
	if got := h.Quarantined(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("Quarantined = %v, want [0]", got)
	}
	// Activity on other links advances the tick; after the cooldown the
	// breaker goes half-open (schedulable again).
	for i := 0; i < 4; i++ {
		h.ReportSuccess(1)
	}
	if h.IsQuarantined(0) {
		t.Fatal("breaker must go half-open after the cooldown")
	}
	// A successful half-open trial closes it.
	h.ReportSuccess(0)
	snap := h.Snapshot()
	if snap[0].State != "closed" {
		t.Fatalf("state after trial success = %s, want closed", snap[0].State)
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	h := NewLinkHealth(2, 2, 2)
	h.ReportFailure(1)
	h.ReportFailure(1)
	if !h.IsQuarantined(1) {
		t.Fatal("breaker should be open")
	}
	h.ReportSuccess(0)
	h.ReportSuccess(0) // cooldown elapses → half-open
	if h.IsQuarantined(1) {
		t.Fatal("breaker should be half-open")
	}
	h.ReportFailure(1)
	if !h.IsQuarantined(1) {
		t.Fatal("failed half-open trial must re-open the breaker")
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	h := NewLinkHealth(1, 3, 4)
	h.ReportFailure(0)
	h.ReportFailure(0)
	h.ReportSuccess(0)
	h.ReportFailure(0)
	h.ReportFailure(0)
	if h.IsQuarantined(0) {
		t.Fatal("interleaved success must reset the consecutive-failure streak")
	}
	st := h.Snapshot()[0]
	if st.Failures != 4 || st.Successes != 1 {
		t.Fatalf("counts = %+v", st)
	}
}

func TestBreakerOutOfRangeLinkIgnored(t *testing.T) {
	h := NewLinkHealth(2, 1, 1)
	h.ReportFailure(9)
	h.ReportSuccess(bgp.NoLink)
	if h.IsQuarantined(9) || len(h.Quarantined()) != 0 {
		t.Fatal("out-of-range links must be ignored")
	}
}

func TestBreakerInstrument(t *testing.T) {
	reg := metrics.NewRegistry()
	h := NewLinkHealth(2, 2, 2)
	h.Instrument(reg)
	h.ReportFailure(0)
	h.ReportFailure(0) // → open
	h.ReportSuccess(1)
	h.ReportSuccess(1) // cooldown → half-open
	h.ReportSuccess(0) // trial → closed
	snap := reg.Snapshot()
	vec, ok := snap["peering_link_breaker_transitions_total"].(map[string]any)
	if !ok {
		t.Fatalf("transitions vec missing: %+v", snap)
	}
	for state, want := range map[string]int64{"state=open": 1, "state=half_open": 1, "state=closed": 1} {
		if got, _ := vec[state].(int64); got != want {
			t.Fatalf("transitions[%s] = %v, want %d (vec %v)", state, got, want, vec)
		}
	}
	if g, _ := snap["peering_links_quarantined"].(float64); g != 0 {
		t.Fatalf("quarantined gauge = %v, want 0", g)
	}
}

// scriptedHook fails every attempt below failUntil, flapping the listed
// links each time.
type scriptedHook struct {
	failUntil int
	flap      []bgp.LinkID
	calls     int
}

func (s *scriptedHook) Deploy(cfgKey string, attempt int) ([]bgp.LinkID, error) {
	s.calls++
	if attempt < s.failUntil {
		return s.flap, fmt.Errorf("scripted failure (attempt %d)", attempt)
	}
	return nil, nil
}

func TestPropagateAttemptMatchesPropagate(t *testing.T) {
	p := platformForTest(t, 800)
	cfg := bgp.Config{Anns: []bgp.Announcement{{Link: 0}, {Link: 2}}}
	want, err := p.Propagate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// No hook installed: identical outcome, cached or not.
	for _, noCache := range []bool{false, true} {
		got, err := p.PropagateAttempt(cfg, 0, noCache, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want.Catchments(), got.Catchments()) {
			t.Fatalf("PropagateAttempt(noCache=%v) diverged from Propagate", noCache)
		}
	}
	// Hook installed and succeeding: still identical.
	p.SetFaultHook(&scriptedHook{})
	got, err := p.PropagateAttempt(cfg, 0, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Catchments(), got.Catchments()) {
		t.Fatal("PropagateAttempt with clean hook diverged from Propagate")
	}
}

func TestPropagateAttemptFeedsBreaker(t *testing.T) {
	p := platformForTest(t, 800)
	hook := &scriptedHook{failUntil: DefaultBreakerThreshold, flap: []bgp.LinkID{1}}
	p.SetFaultHook(hook)
	cfg := bgp.Config{Anns: []bgp.Announcement{{Link: 0}}}
	var lastErr error
	for attempt := 0; attempt < DefaultBreakerThreshold; attempt++ {
		if _, lastErr = p.PropagateAttempt(cfg, attempt, false, nil); lastErr == nil {
			t.Fatalf("attempt %d should have failed", attempt)
		}
	}
	// Link 1 flapped and link 0 failed on every attempt: both tripped.
	if !p.Health().IsQuarantined(0) || !p.Health().IsQuarantined(1) {
		t.Fatalf("links 0 and 1 should be quarantined: %+v", p.Health().Snapshot())
	}
	// The retry that finally lands succeeds and credits link 0.
	if _, err := p.PropagateAttempt(cfg, DefaultBreakerThreshold, false, nil); err != nil {
		t.Fatal(err)
	}
	st := p.Health().Snapshot()[0]
	if st.Successes != 1 || st.ConsecFails != 0 {
		t.Fatalf("link 0 after success: %+v", st)
	}
	if hook.calls != DefaultBreakerThreshold+1 {
		t.Fatalf("hook called %d times", hook.calls)
	}
}
