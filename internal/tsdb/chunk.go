package tsdb

import "math"

// chunk is one Gorilla-compressed run of (timestamp, value) samples for
// a single series, append-only and time-ordered:
//
//   - Timestamps are delta-of-delta coded (Facebook's Gorilla, §4.1):
//     a scrape ticker produces near-constant deltas, so the second
//     difference is almost always zero — one bit per sample — with
//     escape buckets of 7/9/12/32/64 bits absorbing jitter.
//   - Values are XOR coded (§4.1.2): successive samples of a counter or
//     gauge share sign/exponent and most mantissa bits, so the XOR is a
//     short run of meaningful bits; an unchanged value costs one bit.
//
// Timestamps are unix milliseconds. A chunk is owned by its series and
// guarded by the series lock; it has no locking of its own.
type chunk struct {
	w bitWriter
	n int // samples

	tFirst int64 // unix ms of the first sample
	tLast  int64 // unix ms of the last sample
	tDelta int64 // last timestamp delta

	vPrev             uint64 // bits of the last value
	leading, trailing uint8  // current XOR bit window (leadSentinel = none)
}

// leadSentinel marks "no previous XOR window" (real leading counts are
// capped at 31 so they fit the 5-bit field).
const leadSentinel = 0xff

// append adds one sample. Timestamps must be non-decreasing; the caller
// (the series appender) guarantees ordering.
func (c *chunk) append(t int64, v float64) {
	vb := math.Float64bits(v)
	switch c.n {
	case 0:
		c.tFirst, c.tLast = t, t
		c.leading = leadSentinel
		c.w.writeBits(uint64(t), 64)
		c.w.writeBits(vb, 64)
		c.vPrev = vb
		c.n = 1
		return
	case 1:
		c.tDelta = t - c.tLast
		// First delta: delta-of-delta against an implicit zero previous
		// delta, so it rides the same escape buckets.
		c.writeDoD(c.tDelta)
	default:
		delta := t - c.tLast
		c.writeDoD(delta - c.tDelta)
		c.tDelta = delta
	}
	c.tLast = t
	c.writeXOR(vb)
	c.n++
}

// writeDoD encodes a delta-of-delta with Gorilla's prefix buckets.
func (c *chunk) writeDoD(dod int64) {
	switch {
	case dod == 0:
		c.w.writeBit(false)
	case dod >= -63 && dod <= 64:
		c.w.writeBits(0b10, 2)
		c.w.writeBits(uint64(dod+63), 7)
	case dod >= -255 && dod <= 256:
		c.w.writeBits(0b110, 3)
		c.w.writeBits(uint64(dod+255), 9)
	case dod >= -2047 && dod <= 2048:
		c.w.writeBits(0b1110, 4)
		c.w.writeBits(uint64(dod+2047), 12)
	case dod >= -(1<<31) && dod < 1<<31:
		c.w.writeBits(0b11110, 5)
		c.w.writeBits(uint64(dod+(1<<31)), 32)
	default:
		c.w.writeBits(0b11111, 5)
		c.w.writeBits(uint64(dod), 64)
	}
}

// writeXOR encodes a value against the previous one.
func (c *chunk) writeXOR(vb uint64) {
	xor := vb ^ c.vPrev
	c.vPrev = vb
	if xor == 0 {
		c.w.writeBit(false)
		return
	}
	c.w.writeBit(true)
	lead := uint8(leadingZeros64(xor))
	if lead > 31 {
		lead = 31
	}
	trail := uint8(trailingZeros64(xor))
	if c.leading != leadSentinel && lead >= c.leading && trail >= c.trailing {
		// Fits the previous window: '0' + meaningful bits.
		c.w.writeBit(false)
		c.w.writeBits(xor>>c.trailing, uint(64-c.leading-c.trailing))
		return
	}
	c.leading, c.trailing = lead, trail
	meaningful := 64 - lead - trail // >= 1 since xor != 0
	c.w.writeBit(true)
	c.w.writeBits(uint64(lead), 5)
	c.w.writeBits(uint64(meaningful-1), 6)
	c.w.writeBits(xor>>trail, uint(meaningful))
}

// bytes returns the encoded size so far.
func (c *chunk) bytes() int { return len(c.w.buf) }

// decode appends the chunk's samples with t in [from, to] to dst. Pass
// math.MinInt64/MaxInt64 to take everything. Decoding reads the live
// buffer, so the caller must hold the owning series lock.
func (c *chunk) decode(dst []Point, from, to int64) []Point {
	if c.n == 0 || c.tFirst > to || c.tLast < from {
		return dst
	}
	r := newBitReader(c.w.buf)
	tb, _ := r.readBits(64)
	vb, _ := r.readBits(64)
	t := int64(tb)
	v := vb
	if t >= from && t <= to {
		dst = append(dst, Point{T: t, V: math.Float64frombits(v)})
	}
	var delta int64
	var leading, trailing uint8 = leadSentinel, 0
	for i := 1; i < c.n; i++ {
		dod, ok := c.readDoD(r)
		if !ok {
			break
		}
		delta += dod
		t += delta
		v, leading, trailing, ok = readXOR(r, v, leading, trailing)
		if !ok {
			break
		}
		if t > to {
			break
		}
		if t >= from {
			dst = append(dst, Point{T: t, V: math.Float64frombits(v)})
		}
	}
	return dst
}

// readDoD decodes one delta-of-delta.
func (c *chunk) readDoD(r *bitReader) (int64, bool) {
	b, ok := r.readBit()
	if !ok {
		return 0, false
	}
	if !b { // '0'
		return 0, true
	}
	if b, ok = r.readBit(); !ok {
		return 0, false
	}
	if !b { // '10'
		v, ok := r.readBits(7)
		return int64(v) - 63, ok
	}
	if b, ok = r.readBit(); !ok {
		return 0, false
	}
	if !b { // '110'
		v, ok := r.readBits(9)
		return int64(v) - 255, ok
	}
	if b, ok = r.readBit(); !ok {
		return 0, false
	}
	if !b { // '1110'
		v, ok := r.readBits(12)
		return int64(v) - 2047, ok
	}
	if b, ok = r.readBit(); !ok {
		return 0, false
	}
	if !b { // '11110'
		v, ok := r.readBits(32)
		return int64(v) - (1 << 31), ok
	}
	v, ok := r.readBits(64) // '11111'
	return int64(v), ok
}

// readXOR decodes one XOR-coded value given the previous value bits and
// bit window.
func readXOR(r *bitReader, prev uint64, leading, trailing uint8) (v uint64, lead, trail uint8, ok bool) {
	b, ok := r.readBit()
	if !ok {
		return 0, 0, 0, false
	}
	if !b {
		return prev, leading, trailing, true
	}
	if b, ok = r.readBit(); !ok {
		return 0, 0, 0, false
	}
	if b {
		l, ok := r.readBits(5)
		if !ok {
			return 0, 0, 0, false
		}
		m, ok := r.readBits(6)
		if !ok {
			return 0, 0, 0, false
		}
		leading = uint8(l)
		trailing = 64 - leading - (uint8(m) + 1)
	}
	bits, ok := r.readBits(uint(64 - leading - trailing))
	if !ok {
		return 0, 0, 0, false
	}
	return prev ^ (bits << trailing), leading, trailing, true
}

func leadingZeros64(x uint64) int {
	n := 0
	for x&(1<<63) == 0 {
		x <<= 1
		n++
		if n == 64 {
			break
		}
	}
	return n
}

func trailingZeros64(x uint64) int {
	if x == 0 {
		return 64
	}
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}
