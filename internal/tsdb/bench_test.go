package tsdb

import (
	"fmt"
	"testing"
	"time"

	"spooftrack/internal/metrics"
)

// benchRegistry builds a registry shaped like spooftrackd's: a few
// plain counters/gauges, labeled vectors, and histograms.
func benchRegistry() *metrics.Registry {
	reg := metrics.NewRegistry()
	reg.Counter("stream_events_total").Add(123456)
	reg.Counter("stream_dropped_total").Add(17)
	reg.Gauge("stream_queue_depth").Set(42)
	links := reg.CounterVec("probe_sent_total", "link")
	for i := 0; i < 16; i++ {
		links.With(fmt.Sprint(i)).Add(int64(1000 * (i + 1)))
	}
	out := reg.CounterVec("amp_border_packets_total", "outcome")
	out.With("pass").Add(90000)
	out.With("drop").Add(1200)
	h := reg.Histogram("stream_flush_lag_seconds")
	for i := 0; i < 64; i++ {
		h.Observe(float64(i%17) * 0.003)
	}
	return reg
}

// BenchmarkTsdbScrape measures one full registry scrape-and-append
// cycle — the per-tick overhead the engine adds to a running daemon.
func BenchmarkTsdbScrape(b *testing.B) {
	db := New(Options{Registry: benchRegistry()})
	base := time.UnixMilli(1_700_000_000_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.ScrapeOnce(base.Add(time.Duration(i) * time.Second))
	}
}

// BenchmarkTsdbQueryRange measures a rate() range query over a 2h
// window of 1s samples — the /query and burn-rate evaluation hot path.
func BenchmarkTsdbQueryRange(b *testing.B) {
	reg := metrics.NewRegistry()
	ctr := reg.Counter("stream_events_total")
	db := New(Options{Registry: reg, Tiers: []Tier{{Resolution: 0, Retention: 3 * time.Hour}}})
	base := time.UnixMilli(1_700_000_000_000)
	const n = 7200
	for i := 0; i <= n; i++ {
		ctr.Add(5000)
		db.ScrapeOnce(base.Add(time.Duration(i) * time.Second))
	}
	q := Query{Series: "stream_events_total", From: base, To: base.Add(n * time.Second), Rate: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := db.Query(q); len(got) != 1 {
			b.Fatalf("query matched %d series", len(got))
		}
	}
}

// BenchmarkTsdbSnapshotAt measures historical snapshot reconstruction,
// which windowed SLO rules perform twice per evaluation.
func BenchmarkTsdbSnapshotAt(b *testing.B) {
	db := New(Options{Registry: benchRegistry()})
	base := time.UnixMilli(1_700_000_000_000)
	for i := 0; i < 600; i++ {
		db.ScrapeOnce(base.Add(time.Duration(i) * time.Second))
	}
	at := base.Add(300 * time.Second)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if snap := db.SnapshotAt(at); len(snap) == 0 {
			b.Fatal("empty snapshot")
		}
	}
}
