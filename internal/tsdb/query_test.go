package tsdb

import (
	"testing"
	"time"

	"spooftrack/internal/metrics"
)

func TestQueryRateAndAggregation(t *testing.T) {
	reg := metrics.NewRegistry()
	vec := reg.CounterVec("packets_total", "link")
	db := New(Options{Registry: reg})
	for i := 0; i <= 10; i++ {
		vec.With("a").Add(100) // 100/s
		vec.With("b").Add(300) // 300/s
		db.ScrapeOnce(t0.Add(time.Duration(i) * time.Second))
	}
	end := t0.Add(10 * time.Second)

	rates := db.Query(Query{Series: "packets_total", From: t0, To: end, Rate: true})
	if len(rates) != 2 {
		t.Fatalf("rate query matched %d series, want 2", len(rates))
	}
	for _, sd := range rates {
		want := 100.0
		if sd.Child == "link=b" {
			want = 300
		}
		for _, p := range sd.Points {
			if p.V != want {
				t.Fatalf("%s rate point %v, want %v", sd.Child, p.V, want)
			}
		}
	}

	sum := db.Query(Query{Series: "packets_total", From: t0, To: end, Rate: true, Agg: "sum"})
	if len(sum) != 1 || len(sum[0].Points) != 10 {
		t.Fatalf("sum-of-rates = %+v", sum)
	}
	for _, p := range sum[0].Points {
		if p.V != 400 {
			t.Fatalf("sum rate point %v, want 400", p.V)
		}
	}

	max := db.Query(Query{Series: "packets_total", From: t0, To: end, Agg: "max"})
	if last := max[0].Points[len(max[0].Points)-1].V; last != 3300 {
		t.Fatalf("max at end = %v, want 3300", last)
	}

	if got := db.Query(Query{Series: "no_such_series", From: t0, To: end}); len(got) != 0 {
		t.Fatalf("unknown series returned %+v", got)
	}
}

func TestQueryChildFilter(t *testing.T) {
	reg := metrics.NewRegistry()
	vec := reg.CounterVec("packets_total", "link")
	db := New(Options{Registry: reg})
	vec.With("a").Add(1)
	vec.With("b").Add(2)
	db.ScrapeOnce(t0)
	got := db.Query(Query{Series: "packets_total", Child: "link=b", From: t0, To: t0.Add(time.Second)})
	if len(got) != 1 || got[0].Child != "link=b" || got[0].Points[0].V != 2 {
		t.Fatalf("child filter = %+v", got)
	}
}

func TestIncreaseAndCounterReset(t *testing.T) {
	reg := metrics.NewRegistry()
	ctr := reg.Counter("events_total")
	db := New(Options{Registry: reg})
	ctr.Add(100)
	db.ScrapeOnce(t0)
	ctr.Add(50)
	db.ScrapeOnce(t0.Add(10 * time.Second))
	ctr.Add(50)
	db.ScrapeOnce(t0.Add(20 * time.Second))

	delta, dt, ok := db.Increase("events_total", "", t0, t0.Add(20*time.Second))
	if !ok || delta != 100 || dt != 20 {
		t.Fatalf("Increase = (%v, %v, %v), want (100, 20, true)", delta, dt, ok)
	}
	if rate, ok := db.RateOver("events_total", "", t0, t0.Add(20*time.Second)); !ok || rate != 5 {
		t.Fatalf("RateOver = (%v, %v), want (5, true)", rate, ok)
	}

	// A window reaching before history clamps to real data: the answer
	// is the honest rate over what exists, not a diluted one.
	rate, ok := db.RateOver("events_total", "", t0.Add(-time.Hour), t0.Add(20*time.Second))
	if !ok || rate != 5 {
		t.Fatalf("clamped RateOver = (%v, %v), want (5, true)", rate, ok)
	}

	// Counter reset: the drop restarts accumulation from zero.
	reg2 := metrics.NewRegistry()
	g := reg2.Gauge("restarting_total") // gauge lets the test force a drop
	db2 := New(Options{Registry: reg2})
	g.Set(1000)
	db2.ScrapeOnce(t0)
	g.Set(1100)
	db2.ScrapeOnce(t0.Add(time.Second))
	g.Set(30) // process restart
	db2.ScrapeOnce(t0.Add(2 * time.Second))
	delta, _, ok = db2.Increase("restarting_total", "", t0, t0.Add(2*time.Second))
	if !ok || delta != 130 {
		t.Fatalf("reset-aware Increase = %v, want 130", delta)
	}

	if _, _, ok := db.Increase("missing", "", t0, t0.Add(time.Second)); ok {
		t.Fatal("Increase on a missing series reported ok")
	}
}

func TestQuantileOverTime(t *testing.T) {
	reg := metrics.NewRegistry()
	h := reg.Histogram("lag_seconds", 0.01, 0.1, 1, 10)
	db := New(Options{Registry: reg})

	// Phase 1: all observations fast.
	for i := 0; i < 100; i++ {
		h.Observe(0.005)
	}
	db.ScrapeOnce(t0)
	// Phase 2: all slow.
	for i := 0; i < 100; i++ {
		h.Observe(5)
	}
	db.ScrapeOnce(t0.Add(time.Minute))

	// Whole window mixes both phases; live P99 agrees.
	whole, ok := db.QuantileOverTime("lag_seconds", "", 0.99, t0.Add(-time.Minute), t0.Add(time.Minute))
	if !ok {
		t.Fatal("whole-window quantile not ok")
	}
	// A window covering only phase 2 must see only slow samples.
	late, ok := db.QuantileOverTime("lag_seconds", "", 0.5, t0.Add(30*time.Second), t0.Add(time.Minute))
	if !ok {
		t.Fatal("late-window quantile not ok")
	}
	if late <= 1 {
		t.Fatalf("late-window median %v should reflect only slow samples (>1s)", late)
	}
	if whole <= 1 {
		t.Fatalf("whole-window p99 %v should land in the slow bucket", whole)
	}
	if _, ok := db.QuantileOverTime("lag_seconds", "", 0.5, t0.Add(2*time.Minute), t0.Add(3*time.Minute)); ok {
		t.Fatal("quantile over an empty window reported ok")
	}
}

// TestQueryRangeLatency is the ISSUE acceptance check: a rate() query
// over a 2h window answers in under 5ms.
func TestQueryRangeLatency(t *testing.T) {
	reg := metrics.NewRegistry()
	ctr := reg.Counter("events_total")
	db := New(Options{Registry: reg, Tiers: []Tier{{Resolution: 0, Retention: 3 * time.Hour}}})
	const n = 7200 // 2h at 1s cadence
	for i := 0; i <= n; i++ {
		ctr.Add(1000)
		db.ScrapeOnce(t0.Add(time.Duration(i) * time.Second))
	}
	end := t0.Add(n * time.Second)
	q := Query{Series: "events_total", From: t0, To: end, Rate: true}
	if got := db.Query(q); len(got) != 1 || len(got[0].Points) != n {
		t.Fatalf("warmup query returned %d series", len(got))
	}
	best := time.Duration(1 << 62)
	for i := 0; i < 5; i++ {
		start := time.Now()
		db.Query(q)
		if d := time.Since(start); d < best {
			best = d
		}
	}
	if best > 5*time.Millisecond {
		t.Fatalf("2h rate() query took %v (best of 5), budget 5ms", best)
	}
	t.Logf("2h rate() query: %v (best of 5, %d points)", best, n)
}
