package tsdb

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Point is one decoded sample. T is unix milliseconds.
type Point struct {
	T int64   `json:"t"`
	V float64 `json:"v"`
}

// SeriesData is one series' slice of a query result.
type SeriesData struct {
	Family string  `json:"family"`
	Child  string  `json:"child,omitempty"`
	Kind   string  `json:"kind,omitempty"` // "" scalar, "count"/"sum"/"bucket" for histogram parts
	Bound  string  `json:"bound,omitempty"`
	Points []Point `json:"points"`
}

// Query selects a range from one metric family.
type Query struct {
	Series   string    // metric family name
	Child    string    // exact "label=value,.." child; "" selects all
	From, To time.Time // inclusive range
	Rate     bool      // per-second derivative (counter-reset aware)
	Agg      string    // "", "sum", "max" — collapse matched children
	Quantile float64   // >0: quantile-over-time on a histogram family
}

// Query runs q and returns the matched series, children sorted by key.
// Unknown families return an empty result, not an error — the caller
// (the /query endpoint, the dashboard poller) treats "no data yet" and
// "no such series" identically.
func (db *DB) Query(q Query) []SeriesData {
	from, to := q.From.UnixMilli(), q.To.UnixMilli()
	if q.Quantile > 0 {
		v, ok := db.QuantileOverTime(q.Series, q.Child, q.Quantile, q.From, q.To)
		if !ok {
			return nil
		}
		return []SeriesData{{
			Family: q.Series, Child: q.Child, Kind: "quantile",
			Points: []Point{{T: to, V: v}},
		}}
	}
	matched := db.match(q.Series, q.Child)
	out := make([]SeriesData, 0, len(matched))
	for _, s := range matched {
		pts := s.rangePoints(from, to)
		if q.Rate {
			pts = ratePoints(pts)
		}
		if len(pts) == 0 {
			continue
		}
		out = append(out, SeriesData{
			Family: s.key.family,
			Child:  s.key.child,
			Kind:   kindName(s.key.kind),
			Bound:  s.key.bound,
			Points: pts,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Child != out[j].Child {
			return out[i].Child < out[j].Child
		}
		return out[i].Bound < out[j].Bound
	})
	if q.Agg != "" && len(out) > 0 {
		return []SeriesData{aggregate(q.Series, q.Agg, out)}
	}
	return out
}

// match selects scalar-valued series of a family: plain scalars (and
// every vector child when child == ""). For histogram families, which
// have no scalar series, the count series stands in so rate queries
// answer "observations per second".
func (db *DB) match(family, child string) []*series {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var scalars, counts []*series
	for k, s := range db.series {
		if k.family != family {
			continue
		}
		if child != "" && k.child != child {
			continue
		}
		switch k.kind {
		case kindScalar:
			scalars = append(scalars, s)
		case kindHistCount:
			counts = append(counts, s)
		}
	}
	if len(scalars) > 0 {
		return scalars
	}
	return counts
}

func kindName(k kind) string {
	switch k {
	case kindHistCount:
		return "count"
	case kindHistSum:
		return "sum"
	case kindHistBucket:
		return "bucket"
	}
	return ""
}

// rangePoints decodes the series over [from, to], stitched across
// tiers: each tier contributes only the span older than the earliest
// sample of any finer tier, so results use the best resolution
// available at every age.
func (s *series) rangePoints(from, to int64) []Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.tiers)
	earliest := make([]int64, n)
	for i := range s.tiers {
		if len(s.tiers[i].chunks) == 0 {
			earliest[i] = math.MaxInt64
		} else {
			earliest[i] = s.tiers[i].chunks[0].tFirst
		}
	}
	var out []Point
	for i := n - 1; i >= 0; i-- { // coarsest first: segments ascend in time
		if earliest[i] == math.MaxInt64 {
			continue
		}
		lo, hi := from, to
		if earliest[i] > lo {
			lo = earliest[i]
		}
		for j := 0; j < i; j++ { // stop where a finer tier takes over
			if earliest[j] != math.MaxInt64 && earliest[j]-1 < hi {
				hi = earliest[j] - 1
			}
		}
		if lo > hi {
			continue
		}
		for _, c := range s.tiers[i].chunks {
			out = c.decode(out, lo, hi)
		}
	}
	return out
}

// ratePoints converts a cumulative series to a per-second derivative.
// A drop (counter reset) restarts from zero rather than going negative.
func ratePoints(pts []Point) []Point {
	if len(pts) < 2 {
		return nil
	}
	out := make([]Point, 0, len(pts)-1)
	for i := 1; i < len(pts); i++ {
		dt := float64(pts[i].T-pts[i-1].T) / 1000
		if dt <= 0 {
			continue
		}
		dv := pts[i].V - pts[i-1].V
		if dv < 0 {
			dv = pts[i].V
		}
		out = append(out, Point{T: pts[i].T, V: dv / dt})
	}
	return out
}

// aggregate collapses label-vector children pointwise by timestamp —
// valid because one scrape stamps every series with the same instant.
func aggregate(family, agg string, in []SeriesData) SeriesData {
	acc := make(map[int64]float64)
	for _, sd := range in {
		for _, p := range sd.Points {
			if agg == "max" {
				if cur, ok := acc[p.T]; !ok || p.V > cur {
					acc[p.T] = p.V
				}
			} else {
				acc[p.T] += p.V
			}
		}
	}
	pts := make([]Point, 0, len(acc))
	for t, v := range acc {
		pts = append(pts, Point{T: t, V: v})
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].T < pts[j].T })
	return SeriesData{Family: family, Kind: agg, Points: pts}
}

// Increase returns how much a cumulative series grew over [from, to]
// (counter-reset aware) plus the actual span covered by data. When the
// window reaches back before recorded history, the span shrinks to
// what exists — callers dividing by dt get honest rates during warmup
// instead of silence.
func (db *DB) Increase(family, child string, from, to time.Time) (delta, dtSeconds float64, ok bool) {
	matched := db.match(family, child)
	if len(matched) == 0 {
		return 0, 0, false
	}
	lo, hi := from.UnixMilli(), to.UnixMilli()
	var any bool
	var spanLo, spanHi int64 = math.MaxInt64, math.MinInt64
	for _, s := range matched {
		pts := s.rangePoints(lo, hi)
		if len(pts) < 2 {
			continue
		}
		any = true
		for i := 1; i < len(pts); i++ {
			dv := pts[i].V - pts[i-1].V
			if dv < 0 {
				dv = pts[i].V
			}
			delta += dv
		}
		if pts[0].T < spanLo {
			spanLo = pts[0].T
		}
		if pts[len(pts)-1].T > spanHi {
			spanHi = pts[len(pts)-1].T
		}
	}
	if !any || spanHi <= spanLo {
		return 0, 0, false
	}
	return delta, float64(spanHi-spanLo) / 1000, true
}

// RateOver is Increase divided by the covered span — the windowed
// equivalent of a two-frame rate rule.
func (db *DB) RateOver(family, child string, from, to time.Time) (float64, bool) {
	delta, dt, ok := db.Increase(family, child, from, to)
	if !ok || dt <= 0 {
		return 0, false
	}
	return delta / dt, true
}

// QuantileOverTime estimates the q-quantile of a histogram family's
// observations that occurred within [from, to]: each bucket's increase
// over the window forms the distribution, interpolated exactly like
// metrics.Histogram.Quantile.
func (db *DB) QuantileOverTime(family, child string, q float64, from, to time.Time) (float64, bool) {
	db.mu.RLock()
	bounds := db.bounds[family]
	var buckets []*series
	for k, s := range db.series {
		if k.family == family && k.kind == kindHistBucket && (child == "" || k.child == child) {
			buckets = append(buckets, s)
		}
	}
	db.mu.RUnlock()
	if len(bounds) == 0 || len(buckets) == 0 {
		return 0, false
	}
	idx := boundIndex(bounds)
	counts := make([]float64, len(bounds)+1)
	lo, hi := from.UnixMilli(), to.UnixMilli()
	var any bool
	for _, s := range buckets {
		i, ok := idx[s.key.bound]
		if !ok {
			continue
		}
		last, ok := s.valueAt(hi)
		if !ok {
			continue // series born after the window
		}
		// Baseline: the bucket's value just before the window opened. A
		// series first occupied inside the window baselines at zero.
		base, ok := s.valueAt(lo)
		if !ok {
			base = 0
		}
		d := last - base
		if d < 0 {
			d = last // counter reset inside the window: recount from zero
		}
		if d > 0 {
			counts[i] += d
			any = true
		}
	}
	if !any {
		return 0, false
	}
	return quantileFromCounts(bounds, counts, q), true
}

// boundIndex maps formatted bucket-bound keys (as the registry renders
// them, "+inf" for overflow) to positional slots.
func boundIndex(bounds []float64) map[string]int {
	idx := make(map[string]int, len(bounds)+1)
	for i, b := range bounds {
		idx[fmt.Sprintf("%g", b)] = i
	}
	idx["+inf"] = len(bounds)
	return idx
}

// quantileFromCounts mirrors metrics.Histogram.Quantile over float
// bucket weights (windowed increases rather than lifetime counts).
func quantileFromCounts(bounds []float64, counts []float64, q float64) float64 {
	var total float64
	for _, n := range counts {
		total += n
	}
	if total == 0 {
		return 0
	}
	rank := q * total
	acc, lo := 0.0, 0.0
	for i := range counts {
		n := counts[i]
		if n == 0 {
			if i < len(bounds) {
				lo = bounds[i]
			}
			continue
		}
		if acc+n >= rank {
			if i >= len(bounds) {
				return bounds[len(bounds)-1]
			}
			frac := (rank - acc) / n
			return lo + frac*(bounds[i]-lo)
		}
		acc += n
		lo = bounds[i]
	}
	return bounds[len(bounds)-1]
}

// EarliestTime reports the oldest sample instant stored for a family
// (any child, any tier). Burn-rate rules clamp their windows to it so
// a freshly started daemon evaluates over real data.
func (db *DB) EarliestTime(family string) (time.Time, bool) {
	return db.earliest(family)
}

// Earliest reports the oldest sample instant stored anywhere in the DB.
func (db *DB) Earliest() (time.Time, bool) {
	return db.earliest("")
}

func (db *DB) earliest(family string) (time.Time, bool) {
	db.mu.RLock()
	var matched []*series
	for k, s := range db.series {
		if family == "" || k.family == family {
			matched = append(matched, s)
		}
	}
	db.mu.RUnlock()
	var best int64 = math.MaxInt64
	for _, s := range matched {
		s.mu.Lock()
		for i := range s.tiers {
			if cs := s.tiers[i].chunks; len(cs) > 0 && cs[0].tFirst < best {
				best = cs[0].tFirst
			}
		}
		s.mu.Unlock()
	}
	if best == math.MaxInt64 {
		return time.Time{}, false
	}
	return time.UnixMilli(best), true
}
