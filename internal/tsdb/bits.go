package tsdb

// bitWriter appends bits MSB-first into a byte slice. It is the
// substrate of the Gorilla-style chunk encoding: timestamps and values
// compress to a handful of bits per sample, so the writer's unit of
// account is the bit, not the byte.
type bitWriter struct {
	buf   []byte
	nbits uint8 // bits already used in the last byte (0..7; 0 = full)
}

// writeBit appends one bit.
func (w *bitWriter) writeBit(bit bool) {
	if w.nbits == 0 {
		w.buf = append(w.buf, 0)
		w.nbits = 8
	}
	if bit {
		w.buf[len(w.buf)-1] |= 1 << (w.nbits - 1)
	}
	w.nbits--
}

// writeBits appends the low n bits of v, MSB first (n <= 64).
func (w *bitWriter) writeBits(v uint64, n uint) {
	for n > 0 {
		if w.nbits == 0 {
			w.buf = append(w.buf, 0)
			w.nbits = 8
		}
		take := uint(w.nbits)
		if take > n {
			take = n
		}
		// Highest `take` of the remaining n bits land in the current byte.
		chunk := byte(v >> (n - take))
		w.buf[len(w.buf)-1] |= chunk << (uint(w.nbits) - take)
		w.nbits -= uint8(take)
		n -= take
	}
}

// bytes returns the encoded stream (the final partial byte included).
func (w *bitWriter) bytes() []byte { return w.buf }

// bitReader consumes bits MSB-first from a byte slice.
type bitReader struct {
	buf []byte
	pos int   // next byte index
	rem uint8 // unread bits left in buf[pos-1] (0 = fetch next byte)
}

func newBitReader(buf []byte) *bitReader { return &bitReader{buf: buf} }

// readBit returns the next bit; ok=false at end of stream.
func (r *bitReader) readBit() (bit, ok bool) {
	if r.rem == 0 {
		if r.pos >= len(r.buf) {
			return false, false
		}
		r.pos++
		r.rem = 8
	}
	b := r.buf[r.pos-1]
	r.rem--
	return b&(1<<r.rem) != 0, true
}

// readBits returns the next n bits as the low bits of a uint64.
func (r *bitReader) readBits(n uint) (v uint64, ok bool) {
	for n > 0 {
		if r.rem == 0 {
			if r.pos >= len(r.buf) {
				return 0, false
			}
			r.pos++
			r.rem = 8
		}
		take := uint(r.rem)
		if take > n {
			take = n
		}
		b := r.buf[r.pos-1]
		chunk := (uint64(b) >> (uint(r.rem) - take)) & ((1 << take) - 1)
		v = v<<take | chunk
		r.rem -= uint8(take)
		n -= take
	}
	return v, true
}
