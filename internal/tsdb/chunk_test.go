package tsdb

import (
	"math"
	"math/rand"
	"testing"
)

// roundtrip encodes samples into one chunk and decodes them all back.
func roundtrip(t *testing.T, ts []int64, vs []float64) []Point {
	t.Helper()
	c := &chunk{}
	for i := range ts {
		c.append(ts[i], vs[i])
	}
	if c.n != len(ts) {
		t.Fatalf("chunk.n = %d, want %d", c.n, len(ts))
	}
	got := c.decode(nil, math.MinInt64, math.MaxInt64)
	if len(got) != len(ts) {
		t.Fatalf("decoded %d points, want %d", len(got), len(ts))
	}
	return got
}

func TestChunkRoundtripRandomWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 500
	ts := make([]int64, n)
	vs := make([]float64, n)
	now := int64(1_700_000_000_000)
	v := 100.0
	for i := 0; i < n; i++ {
		// Jittered scrape cadence and a noisy random walk: worst
		// realistic case for both coders.
		now += 1000 + int64(rng.Intn(41)) - 20
		v += rng.NormFloat64() * 3
		ts[i], vs[i] = now, v
	}
	got := roundtrip(t, ts, vs)
	for i := range got {
		if got[i].T != ts[i] || got[i].V != vs[i] {
			t.Fatalf("point %d: got (%d, %v), want (%d, %v)", i, got[i].T, got[i].V, ts[i], vs[i])
		}
	}
}

func TestChunkRoundtripExtremeValues(t *testing.T) {
	ts := []int64{0, 1, 2, 1_000_000, 1_000_001, 5_000_000_000_000, 5_000_000_000_001, 5_000_000_000_002}
	vs := []float64{0, math.MaxFloat64, -math.MaxFloat64, math.SmallestNonzeroFloat64,
		math.Inf(1), math.Inf(-1), 0, 1e-300}
	got := roundtrip(t, ts, vs)
	for i := range got {
		if got[i].T != ts[i] || got[i].V != vs[i] {
			t.Fatalf("point %d: got (%d, %v), want (%d, %v)", i, got[i].T, got[i].V, ts[i], vs[i])
		}
	}
}

func TestChunkRoundtripNaN(t *testing.T) {
	got := roundtrip(t, []int64{10, 20, 30}, []float64{1, math.NaN(), 2})
	if !math.IsNaN(got[1].V) {
		t.Fatalf("NaN did not survive roundtrip: %v", got[1].V)
	}
	if got[0].V != 1 || got[2].V != 2 {
		t.Fatalf("neighbors of NaN corrupted: %+v", got)
	}
}

func TestChunkDecodeRange(t *testing.T) {
	c := &chunk{}
	for i := 0; i < 100; i++ {
		c.append(int64(i*1000), float64(i))
	}
	got := c.decode(nil, 25_000, 30_000)
	if len(got) != 6 {
		t.Fatalf("range decode returned %d points, want 6", len(got))
	}
	if got[0].T != 25_000 || got[5].T != 30_000 {
		t.Fatalf("range edges wrong: first %d last %d", got[0].T, got[5].T)
	}
	if got := c.decode(nil, 200_000, 300_000); len(got) != 0 {
		t.Fatalf("out-of-range decode returned %d points", len(got))
	}
}

func TestChunkSteadySeriesCompression(t *testing.T) {
	// The common shape: fixed scrape cadence, constant (or slowly
	// changing) value. Timestamp dod is 0 and the XOR is 0 — one bit
	// each — so a sample should cost well under a byte.
	c := &chunk{}
	const n = 1000
	for i := 0; i < n; i++ {
		c.append(int64(1_700_000_000_000+i*1000), 42)
	}
	perSample := float64(c.bytes()) / n
	if perSample > 0.5 {
		t.Fatalf("steady series costs %.2f bytes/sample, want <= 0.5", perSample)
	}
}

func TestBitWriterReaderRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var w bitWriter
	type item struct {
		v uint64
		n uint
	}
	var items []item
	for i := 0; i < 2000; i++ {
		n := uint(1 + rng.Intn(64))
		v := rng.Uint64()
		if n < 64 {
			v &= (1 << n) - 1
		}
		items = append(items, item{v, n})
		w.writeBits(v, n)
	}
	r := newBitReader(w.bytes())
	for i, it := range items {
		got, ok := r.readBits(it.n)
		if !ok {
			t.Fatalf("item %d: unexpected end of stream", i)
		}
		if got != it.v {
			t.Fatalf("item %d: got %#x, want %#x (n=%d)", i, got, it.v, it.n)
		}
	}
}
