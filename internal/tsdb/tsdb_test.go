package tsdb

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"spooftrack/internal/metrics"
)

var t0 = time.UnixMilli(1_700_000_000_000)

func TestScrapeFlattensRegistry(t *testing.T) {
	reg := metrics.NewRegistry()
	ctr := reg.Counter("events_total")
	g := reg.Gauge("depth")
	reg.GaugeFunc("computed", func() float64 { return 7.5 })
	vec := reg.CounterVec("packets_total", "outcome")
	h := reg.Histogram("lag_seconds", 0.01, 0.1, 1)

	db := New(Options{Registry: reg})
	ctr.Add(10)
	g.Set(3)
	vec.With("pass").Add(4)
	vec.With("drop").Add(1)
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(2)
	db.ScrapeOnce(t0)
	ctr.Add(5)
	vec.With("pass").Add(6)
	db.ScrapeOnce(t0.Add(time.Second))

	got := db.Query(Query{Series: "events_total", From: t0, To: t0.Add(time.Minute)})
	if len(got) != 1 || len(got[0].Points) != 2 {
		t.Fatalf("events_total query = %+v, want 1 series x 2 points", got)
	}
	if got[0].Points[0].V != 10 || got[0].Points[1].V != 15 {
		t.Fatalf("events_total values = %+v, want 10 then 15", got[0].Points)
	}

	got = db.Query(Query{Series: "packets_total", From: t0, To: t0.Add(time.Minute)})
	if len(got) != 2 {
		t.Fatalf("packets_total matched %d children, want 2", len(got))
	}
	if got[0].Child != "outcome=drop" || got[1].Child != "outcome=pass" {
		t.Fatalf("children out of order: %q, %q", got[0].Child, got[1].Child)
	}

	// Histogram families answer rate/raw queries via their count series.
	got = db.Query(Query{Series: "lag_seconds", From: t0, To: t0.Add(time.Minute)})
	if len(got) != 1 || got[0].Kind != "count" || got[0].Points[0].V != 3 {
		t.Fatalf("lag_seconds count query = %+v", got)
	}

	if fams := db.Families(); len(fams) != 5 {
		t.Fatalf("Families() = %v, want 5 entries", fams)
	}
	st := db.Stats()
	if st.Scrapes != 2 || st.Series == 0 || st.Bytes == 0 {
		t.Fatalf("Stats() = %+v", st)
	}
}

func TestSnapshotAtReconstruction(t *testing.T) {
	reg := metrics.NewRegistry()
	ctr := reg.Counter("events_total")
	vec := reg.GaugeVec("load", "shard")
	h := reg.Histogram("lag_seconds", 0.01, 0.1, 1)

	db := New(Options{Registry: reg})
	ctr.Add(5)
	vec.With("0").Set(1.5)
	h.Observe(0.05)
	h.Observe(0.5)
	db.ScrapeOnce(t0)
	ctr.Add(4)
	vec.With("0").Set(2.5)
	vec.With("1").Set(9)
	h.Observe(0.05)
	db.ScrapeOnce(t0.Add(10 * time.Second))

	past := db.SnapshotAt(t0)
	if v, _ := past["events_total"].(float64); v != 5 {
		t.Fatalf("events_total at t0 = %v, want 5", past["events_total"])
	}
	loads, _ := past["load"].(map[string]any)
	if loads == nil || loads["shard=0"] != 1.5 {
		t.Fatalf("load at t0 = %v", past["load"])
	}
	if _, ok := loads["shard=1"]; ok {
		t.Fatalf("shard=1 should not exist at t0: %v", loads)
	}
	hs, ok := past["lag_seconds"].(metrics.HistogramSnapshot)
	if !ok {
		t.Fatalf("lag_seconds at t0 is %T", past["lag_seconds"])
	}
	live := reg.Histogram("lag_seconds").Snapshot()
	if hs.Count != 2 || hs.Buckets["0.1"] != 1 || hs.Buckets["1"] != 1 {
		t.Fatalf("historical histogram = %+v", hs)
	}
	if len(hs.Bounds) != len(live.Bounds) {
		t.Fatalf("bounds not preserved: %v vs %v", hs.Bounds, live.Bounds)
	}

	now := db.SnapshotAt(t0.Add(10 * time.Second))
	if v, _ := now["events_total"].(float64); v != 9 {
		t.Fatalf("events_total at t1 = %v, want 9", now["events_total"])
	}
	hs2 := now["lag_seconds"].(metrics.HistogramSnapshot)
	if hs2.Count != 3 || hs2.P99 != live.P99 {
		t.Fatalf("historical P99 %v != live P99 %v (count %d)", hs2.P99, live.P99, hs2.Count)
	}

	if before := db.SnapshotAt(t0.Add(-time.Hour)); len(before) != 0 {
		t.Fatalf("snapshot before history should be empty, got %v", before)
	}
}

func TestTiersDownsampleAndEvict(t *testing.T) {
	reg := metrics.NewRegistry()
	ctr := reg.Counter("c")
	db := New(Options{
		Registry: reg,
		Tiers: []Tier{
			{Resolution: 0, Retention: 30 * time.Second},
			{Resolution: 10 * time.Second, Retention: 10 * time.Minute},
		},
		ChunkSamples: 8, // small chunks so eviction is visible
	})
	// Two minutes of 1s scrapes.
	for i := 0; i <= 120; i++ {
		ctr.Add(1)
		db.ScrapeOnce(t0.Add(time.Duration(i) * time.Second))
	}
	end := t0.Add(120 * time.Second)

	// Recent window: raw 1s resolution.
	recent := db.Query(Query{Series: "c", From: end.Add(-10 * time.Second), To: end})
	if len(recent) != 1 || len(recent[0].Points) != 11 {
		t.Fatalf("recent window has %d points, want 11", len(recent[0].Points))
	}

	// Full window: the old range is served by the 10s tier (raw evicted),
	// the last ~30s by the raw tier — so far fewer than 121 points but
	// full coverage.
	full := db.Query(Query{Series: "c", From: t0, To: end})
	if len(full) != 1 {
		t.Fatalf("full query matched %d series", len(full))
	}
	pts := full[0].Points
	if pts[0].T != t0.UnixMilli() {
		t.Fatalf("oldest point %d, want coverage from t0 (%d)", pts[0].T, t0.UnixMilli())
	}
	if pts[len(pts)-1].T != end.UnixMilli() {
		t.Fatalf("newest point %d, want %d", pts[len(pts)-1].T, end.UnixMilli())
	}
	if len(pts) >= 121 || len(pts) < 20 {
		t.Fatalf("stitched result has %d points; want downsampled old range + raw tail", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].T <= pts[i-1].T {
			t.Fatalf("points not strictly ascending at %d: %d then %d", i, pts[i-1].T, pts[i].T)
		}
	}

	// Raw tier must have evicted everything older than ~30s+chunk slack.
	st := db.Stats()
	if st.RawSamples > 50 {
		t.Fatalf("raw tier holds %d samples after retention, want <= 50", st.RawSamples)
	}
	if early, ok := db.EarliestTime("c"); !ok || !early.Equal(t0) {
		t.Fatalf("EarliestTime = %v %v, want %v", early, ok, t0)
	}
}

// TestCompressionBudget is the ISSUE acceptance check: 24h of synthetic
// history for 1k series must fit in 64 MiB, with the raw tier costing
// <= 4 bytes/sample. Per-series storage is independent across series,
// so we run a representative 100-series mix for the full 24h and scale.
func TestCompressionBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("24h synthetic history is slow; skipped with -short")
	}
	reg := metrics.NewRegistry()
	counters := reg.CounterVec("flows_total", "link")
	gauges := reg.GaugeVec("depth", "shard")
	const (
		nCounters = 60
		nGauges   = 40
		seconds   = 86_400
	)
	db := New(Options{Registry: reg}) // DefaultTiers: the shipped layout
	rng := rand.New(rand.NewSource(1))
	rates := make([]int64, nCounters)
	for i := range rates {
		rates[i] = int64(1 + rng.Intn(2000))
	}
	links := make([]string, nCounters)
	for i := range links {
		links[i] = fmt.Sprint(i)
	}
	shards := make([]string, nGauges)
	for i := range shards {
		shards[i] = fmt.Sprint(i)
	}
	for sec := 0; sec < seconds; sec++ {
		for i, l := range links {
			// Steady per-link flow with occasional bursts: the paper's
			// spoofed-traffic shape as the honeypot tap sees it.
			d := rates[i]
			if rng.Intn(100) == 0 {
				d *= int64(2 + rng.Intn(8))
			}
			counters.With(l).Add(d)
		}
		if sec%5 == 0 {
			for i, s := range shards {
				gauges.With(s).Set(float64(rng.Intn(64)) + float64(i))
			}
		}
		db.ScrapeOnce(t0.Add(time.Duration(sec) * time.Second))
	}
	st := db.Stats()
	perSample := float64(st.RawBytes) / float64(st.RawSamples)
	if perSample > 4 {
		t.Fatalf("raw tier costs %.2f bytes/sample, budget is 4", perSample)
	}
	// Per-series storage is independent of the series count: extrapolate
	// this 100-series day to the 1k-series acceptance budget.
	perSeries := float64(st.Bytes) / float64(nCounters+nGauges)
	extrapolated := perSeries * 1000
	if limit := float64(64 << 20); extrapolated > limit {
		t.Fatalf("24h x 1k series extrapolates to %.1f MiB, budget 64 MiB (raw %.2f B/sample)",
			extrapolated/(1<<20), perSample)
	}
	t.Logf("raw tier: %.2f bytes/sample; 1k series/24h extrapolates to %.2f MiB (all tiers)",
		perSample, extrapolated/(1<<20))
}

// TestConcurrentScrapeQuerySnapshot exercises scrape + query + snapshot
// from racing goroutines; run with -race (scripts/ci.sh does).
func TestConcurrentScrapeQuerySnapshot(t *testing.T) {
	reg := metrics.NewRegistry()
	ctr := reg.Counter("events_total")
	vec := reg.CounterVec("packets_total", "outcome")
	h := reg.Histogram("lag_seconds", 0.01, 0.1, 1)

	db := New(Options{Registry: reg})
	const iters = 400
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			ctr.Inc()
			vec.With("pass").Add(2)
			h.Observe(0.05)
			db.ScrapeOnce(t0.Add(time.Duration(i) * time.Second))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			db.Query(Query{Series: "packets_total", From: t0, To: t0.Add(time.Hour), Rate: true, Agg: "sum"})
			db.Query(Query{Series: "lag_seconds", From: t0, To: t0.Add(time.Hour), Quantile: 0.99})
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			db.SnapshotAt(t0.Add(time.Duration(i) * time.Second))
			db.Stats()
		}
	}()
	wg.Wait()
}

func TestStartStop(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("events_total").Add(3)
	db := New(Options{Registry: reg, Interval: time.Millisecond})
	db.Start()
	deadline := time.Now().Add(2 * time.Second)
	for db.Stats().Scrapes < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	db.Stop()
	db.Stop() // idempotent
	if db.Stats().Scrapes < 3 {
		t.Fatalf("ticker scraped %d times, want >= 3", db.Stats().Scrapes)
	}
}
