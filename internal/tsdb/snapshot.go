package tsdb

import (
	"math"
	"time"

	"spooftrack/internal/metrics"
)

// SnapshotAt reconstructs a metrics.Registry.Snapshot()-shaped view of
// the world at instant t: plain metrics as float64, vectors as
// map[string]any keyed by child, histograms as HistogramSnapshot with
// Count/Sum/Buckets/Bounds (and the derived Mean/P50/P99) rebuilt from
// their decomposed series. Min/Max are not stored per-sample and come
// back zero. Every watch expression combinator — Metric, Series,
// Quantile, Ratio, VecSum, Sum — evaluates over the result exactly as
// it would over a live snapshot, which is what lets windowed SLO rules
// reuse the whole expression language: a rule's rate over window W is
// expr(SnapshotAt(now)) − expr(SnapshotAt(now−W)) over W.
//
// Each series answers with its latest sample at or before t (finest
// tier that reaches back that far wins); series with no sample by t are
// absent, exactly like a registry before first use.
func (db *DB) SnapshotAt(t time.Time) map[string]any {
	ms := t.UnixMilli()
	db.mu.RLock()
	all := make([]*series, 0, len(db.series))
	for _, s := range db.series {
		all = append(all, s)
	}
	bounds := make(map[string][]float64, len(db.bounds))
	for f, b := range db.bounds {
		bounds[f] = b
	}
	db.mu.RUnlock()

	// Gather raw values per (family, child).
	cells := make(map[string]map[string]*cell) // family -> child -> cell
	for _, s := range all {
		v, ok := s.valueAt(ms)
		if !ok {
			continue
		}
		byChild := cells[s.key.family]
		if byChild == nil {
			byChild = make(map[string]*cell)
			cells[s.key.family] = byChild
		}
		c := byChild[s.key.child]
		if c == nil {
			c = &cell{}
			byChild[s.key.child] = c
		}
		switch s.key.kind {
		case kindScalar:
			c.scalar, c.hasScalar = v, true
		case kindHistCount:
			c.count, c.hasHist = v, true
		case kindHistSum:
			c.sum, c.hasHist = v, true
		case kindHistBucket:
			if c.buckets == nil {
				c.buckets = make(map[string]int64)
			}
			c.buckets[s.key.bound] = int64(v)
			c.hasHist = true
		}
	}

	out := make(map[string]any, len(cells))
	for family, byChild := range cells {
		plain, isPlain := byChild[""]
		if isPlain && len(byChild) == 1 {
			out[family] = cellValue(plain, bounds[family])
			continue
		}
		m := make(map[string]any, len(byChild))
		for child, c := range byChild {
			m[child] = cellValue(c, bounds[family])
		}
		out[family] = m
	}
	return out
}

// cell accumulates one (family, child)'s decomposed series while a
// snapshot is being reassembled.
type cell struct {
	scalar    float64
	hasScalar bool
	count     float64
	sum       float64
	hasHist   bool
	buckets   map[string]int64
}

// cellValue renders one (family, child) cell as its snapshot shape.
func cellValue(c *cell, bounds []float64) any {
	if c.hasHist {
		return rebuildHistogram(c.count, c.sum, c.buckets, bounds)
	}
	return c.scalar
}

// rebuildHistogram reassembles a HistogramSnapshot from decomposed
// series, recomputing the interpolated quantiles from buckets+bounds
// with the same semantics as metrics.Histogram.Quantile.
func rebuildHistogram(count, sum float64, buckets map[string]int64, bounds []float64) metrics.HistogramSnapshot {
	hs := metrics.HistogramSnapshot{
		Count:   int64(count),
		Sum:     sum,
		Buckets: buckets,
		Bounds:  bounds,
	}
	if hs.Buckets == nil {
		hs.Buckets = map[string]int64{}
	}
	if hs.Count > 0 {
		hs.Mean = hs.Sum / float64(hs.Count)
	}
	if len(bounds) > 0 && len(buckets) > 0 {
		counts := bucketCounts(bounds, buckets)
		hs.P50 = quantileFromCounts(bounds, counts, 0.50)
		hs.P99 = quantileFromCounts(bounds, counts, 0.99)
	}
	return hs
}

// bucketCounts lays a bound-keyed bucket map out positionally
// (len(bounds)+1 slots, overflow last).
func bucketCounts(bounds []float64, buckets map[string]int64) []float64 {
	counts := make([]float64, len(bounds)+1)
	idx := boundIndex(bounds)
	for key, n := range buckets {
		if i, ok := idx[key]; ok {
			counts[i] = float64(n)
		}
	}
	return counts
}

// valueAt returns the series' latest sample at or before t, preferring
// the finest tier whose history reaches back that far.
func (s *series) valueAt(t int64) (float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.tiers {
		chunks := s.tiers[i].chunks
		for j := len(chunks) - 1; j >= 0; j-- {
			c := chunks[j]
			if c.tFirst > t {
				continue
			}
			pts := c.decode(nil, math.MinInt64, t)
			if len(pts) > 0 {
				return pts[len(pts)-1].V, true
			}
			break
		}
	}
	return 0, false
}
