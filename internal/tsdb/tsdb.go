// Package tsdb is an in-process, dependency-free time-series engine for
// the attribution pipeline's own telemetry. It scrapes a
// metrics.Registry on a ticker, decomposes every metric (plain,
// labeled-vector child, histogram) into flat series, and stores each
// series in Gorilla-compressed chunks across tiered retention windows
// (raw for minutes, downsampled for hours). Queries reconstruct ranges,
// rates, aggregations, quantiles-over-time, and full
// registry-snapshot-shaped views at a past instant — what the SLO
// watchdog's burn-rate rules and spooftrackd's /query + /dash surfaces
// run on.
//
// Localization campaigns run for hours (the paper's single-prefix runs
// take 11.7h); a point-in-time /metrics cannot answer "what did flush
// lag do over the campaign?". This package can, in a few MiB.
package tsdb

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"spooftrack/internal/metrics"
)

// Tier is one retention level. Resolution 0 means "every scrape" (the
// raw tier); otherwise at most one sample per Resolution is kept. Older
// samples are evicted past Retention, whole chunks at a time.
type Tier struct {
	Resolution time.Duration
	Retention  time.Duration
}

// DefaultTiers is the standard three-level layout: full-resolution
// recent history for incident triage, 15s for the watchdog's slow
// burn-rate windows, 5m for day-scale campaign review.
func DefaultTiers() []Tier {
	return []Tier{
		{Resolution: 0, Retention: 10 * time.Minute},
		{Resolution: 15 * time.Second, Retention: 2 * time.Hour},
		{Resolution: 5 * time.Minute, Retention: 24 * time.Hour},
	}
}

// Options configures a DB. Zero-value fields take defaults.
type Options struct {
	Registry *metrics.Registry
	Interval time.Duration // scrape cadence; default 1s
	Tiers    []Tier        // default DefaultTiers()
	// ChunkSamples caps samples per chunk before sealing; smaller chunks
	// evict more precisely, larger ones compress better. Default 120
	// (Gorilla's two-hour block at typical cadences, and ~2 minutes of
	// raw 1s data — fine-grained enough for a 10m raw retention).
	ChunkSamples int
}

// seriesKey identifies one flat series. Histograms decompose into a
// count series, a sum series, and one series per occupied bucket;
// vector children carry their "label=value,.." child key.
type seriesKey struct {
	family string // registry metric name
	child  string // "" for plain metrics, else "label=value,.."
	kind   kind
	bound  string // bucket bound ("+inf" or %g-formatted) for kindHistBucket
}

type kind uint8

const (
	kindScalar kind = iota
	kindHistCount
	kindHistSum
	kindHistBucket
)

// tierStore is one tier's chunk list for one series, oldest first.
type tierStore struct {
	res        int64 // ms between kept samples; 0 = every scrape
	retention  int64 // ms
	lastAppend int64 // unix ms of the newest kept sample
	chunks     []*chunk
}

// series is the storage for one flat series across all tiers. Its
// mutex covers both appends and decodes; contention is per-series, so
// concurrent queries of different series never serialize.
type series struct {
	key   seriesKey
	mu    sync.Mutex
	tiers []tierStore
}

// DB is the engine. All methods are safe for concurrent use.
type DB struct {
	reg          *metrics.Registry
	interval     time.Duration
	tiers        []Tier
	chunkSamples int

	mu     sync.RWMutex
	series map[seriesKey]*series
	bounds map[string][]float64 // histogram bucket layout per family

	scrapes atomic.Int64

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// New builds a DB over reg. Call Start to begin scraping, or drive it
// manually with ScrapeOnce (tests do).
func New(opts Options) *DB {
	if opts.Registry == nil {
		panic("tsdb: Options.Registry is required")
	}
	if opts.Interval <= 0 {
		opts.Interval = time.Second
	}
	if len(opts.Tiers) == 0 {
		opts.Tiers = DefaultTiers()
	}
	if opts.ChunkSamples <= 0 {
		opts.ChunkSamples = 120
	}
	return &DB{
		reg:          opts.Registry,
		interval:     opts.Interval,
		tiers:        opts.Tiers,
		chunkSamples: opts.ChunkSamples,
		series:       make(map[seriesKey]*series),
		bounds:       make(map[string][]float64),
		stop:         make(chan struct{}),
		done:         make(chan struct{}),
	}
}

// Interval returns the configured scrape cadence.
func (db *DB) Interval() time.Duration { return db.interval }

// Start launches the scrape ticker. Stop with Stop.
func (db *DB) Start() {
	go func() {
		defer close(db.done)
		tick := time.NewTicker(db.interval)
		defer tick.Stop()
		for {
			select {
			case <-db.stop:
				return
			case now := <-tick.C:
				db.ScrapeOnce(now)
			}
		}
	}()
}

// Stop halts the scrape loop and waits for it to exit. Idempotent;
// safe even if Start was never called.
func (db *DB) Stop() {
	db.stopOnce.Do(func() { close(db.stop) })
	select {
	case <-db.done:
	default:
		select {
		case <-db.done:
		case <-time.After(2 * db.interval):
		}
	}
}

// ScrapeOnce snapshots the registry and appends one sample per series
// at the given instant. Exported so tests (and catch-up paths) can
// drive time explicitly.
func (db *DB) ScrapeOnce(now time.Time) {
	snap := db.reg.Snapshot()
	ms := now.UnixMilli()
	for name, v := range snap {
		db.ingest(ms, name, "", v)
	}
	db.scrapes.Add(1)
}

// ingest flattens one snapshot entry into series appends.
func (db *DB) ingest(ms int64, family, child string, v any) {
	switch x := v.(type) {
	case int64:
		db.append(ms, seriesKey{family: family, child: child, kind: kindScalar}, float64(x))
	case float64:
		db.append(ms, seriesKey{family: family, child: child, kind: kindScalar}, x)
	case metrics.HistogramSnapshot:
		db.noteBounds(family, x.Bounds)
		db.append(ms, seriesKey{family: family, child: child, kind: kindHistCount}, float64(x.Count))
		db.append(ms, seriesKey{family: family, child: child, kind: kindHistSum}, x.Sum)
		for bound, n := range x.Buckets {
			db.append(ms, seriesKey{family: family, child: child, kind: kindHistBucket, bound: bound}, float64(n))
		}
	case map[string]any:
		// Labeled vector: one nested entry per child.
		for ck, cv := range x {
			db.ingest(ms, family, ck, cv)
		}
	}
}

// append routes one sample to its series, creating storage on first
// sight (new vector children and freshly occupied histogram buckets
// appear mid-flight).
func (db *DB) append(ms int64, key seriesKey, v float64) {
	db.mu.RLock()
	s := db.series[key]
	db.mu.RUnlock()
	if s == nil {
		s = db.createSeries(key)
	}
	s.append(ms, v, db.chunkSamples)
}

func (db *DB) createSeries(key seriesKey) *series {
	db.mu.Lock()
	defer db.mu.Unlock()
	if s, ok := db.series[key]; ok {
		return s
	}
	s := &series{key: key, tiers: make([]tierStore, len(db.tiers))}
	for i, t := range db.tiers {
		s.tiers[i] = tierStore{res: t.Resolution.Milliseconds(), retention: t.Retention.Milliseconds()}
	}
	db.series[key] = s
	return s
}

// noteBounds remembers a histogram family's bucket layout so SnapshotAt
// can rebuild interpolation-exact HistogramSnapshots.
func (db *DB) noteBounds(family string, bounds []float64) {
	db.mu.RLock()
	_, ok := db.bounds[family]
	db.mu.RUnlock()
	if ok {
		return
	}
	db.mu.Lock()
	if _, ok := db.bounds[family]; !ok {
		db.bounds[family] = append([]float64(nil), bounds...)
	}
	db.mu.Unlock()
}

// append adds the sample to every tier whose cadence is due, then
// evicts whole chunks past each tier's retention.
func (s *series) append(now int64, v float64, chunkSamples int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.tiers {
		t := &s.tiers[i]
		if t.res > 0 && t.lastAppend != 0 && now-t.lastAppend < t.res {
			continue
		}
		if now <= t.lastAppend && t.lastAppend != 0 {
			continue // ignore clock retreat; ordering is per-tier monotone
		}
		t.lastAppend = now
		var c *chunk
		if n := len(t.chunks); n > 0 && t.chunks[n-1].n < chunkSamples {
			c = t.chunks[n-1]
		} else {
			c = &chunk{}
			t.chunks = append(t.chunks, c)
		}
		c.append(now, v)
		cutoff := now - t.retention
		drop := 0
		for drop < len(t.chunks) && t.chunks[drop].tLast < cutoff {
			drop++
		}
		if drop > 0 {
			n := copy(t.chunks, t.chunks[drop:])
			for j := n; j < len(t.chunks); j++ {
				t.chunks[j] = nil
			}
			t.chunks = t.chunks[:n]
		}
	}
}

// Families returns the distinct metric families stored, sorted.
func (db *DB) Families() []string {
	db.mu.RLock()
	seen := make(map[string]struct{})
	for k := range db.series {
		seen[k.family] = struct{}{}
	}
	db.mu.RUnlock()
	out := make([]string, 0, len(seen))
	for f := range seen {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// Stats summarizes storage, for /query introspection and the
// compression acceptance test.
type Stats struct {
	Series     int   `json:"series"`
	Samples    int64 `json:"samples"`     // across all tiers
	Bytes      int64 `json:"bytes"`       // compressed payload across all tiers
	RawSamples int64 `json:"raw_samples"` // tier-0 only
	RawBytes   int64 `json:"raw_bytes"`
	Scrapes    int64 `json:"scrapes"`
}

// Stats walks every series; cheap (counts, not decodes).
func (db *DB) Stats() Stats {
	db.mu.RLock()
	all := make([]*series, 0, len(db.series))
	for _, s := range db.series {
		all = append(all, s)
	}
	db.mu.RUnlock()
	st := Stats{Series: len(all), Scrapes: db.scrapes.Load()}
	for _, s := range all {
		s.mu.Lock()
		for i := range s.tiers {
			t := &s.tiers[i]
			for _, c := range t.chunks {
				st.Samples += int64(c.n)
				st.Bytes += int64(c.bytes())
				if t.res == 0 {
					st.RawSamples += int64(c.n)
					st.RawBytes += int64(c.bytes())
				}
			}
		}
		s.mu.Unlock()
	}
	return st
}
