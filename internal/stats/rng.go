// Package stats provides deterministic randomness and the small set of
// statistical primitives the experiments need: complementary CDFs,
// percentiles, Pareto sampling, and summary helpers.
//
// Every stochastic component in this repository draws from a stats.RNG
// constructed from an explicit seed so that experiments are reproducible
// bit-for-bit across runs and machines.
package stats

import "math/bits"

// RNG is a small, fast, deterministic pseudo-random number generator
// (xoshiro256**). It is not safe for concurrent use; derive per-goroutine
// generators with Split.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from the given seed. Two RNGs built
// from the same seed produce identical streams on all platforms.
func NewRNG(seed uint64) *RNG {
	// SplitMix64 expansion of the seed into the xoshiro state, as
	// recommended by the xoshiro authors to avoid correlated states.
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split derives a statistically independent generator from r, advancing r.
// Use it to hand isolated streams to concurrent workers.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xa0761d6478bd642f)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value in the stream.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling.
	bound := uint64(n)
	hi, lo := bits.Mul64(r.Uint64(), bound)
	if lo < bound {
		threshold := -bound % bound
		for lo < threshold {
			hi, lo = bits.Mul64(r.Uint64(), bound)
		}
	}
	return int(hi)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n) as a slice.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudo-randomizes the order of n elements using the swap callback.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}
