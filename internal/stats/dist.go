package stats

import (
	"fmt"
	"math"
	"sort"
)

// CCDFPoint is one point of a complementary cumulative distribution:
// Frac is the fraction of samples with value strictly greater than or
// equal to Value (the convention used by the paper's figures, which plot
// P[X >= x] on log-log axes).
type CCDFPoint struct {
	Value float64
	Frac  float64
}

// CCDF computes the complementary cumulative distribution of the samples.
// The result has one point per distinct sample value, in increasing order
// of value. CCDF of an empty slice is nil.
func CCDF(samples []float64) []CCDFPoint {
	if len(samples) == 0 {
		return nil
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	var out []CCDFPoint
	for i := 0; i < len(sorted); {
		j := i
		for j < len(sorted) && sorted[j] == sorted[i] {
			j++
		}
		// Fraction of samples >= sorted[i].
		out = append(out, CCDFPoint{Value: sorted[i], Frac: float64(len(sorted)-i) / n})
		i = j
	}
	return out
}

// CCDFInts computes the CCDF of integer samples (e.g., cluster sizes).
func CCDFInts(samples []int) []CCDFPoint {
	fs := make([]float64, len(samples))
	for i, v := range samples {
		fs[i] = float64(v)
	}
	return CCDF(fs)
}

// FracGreater returns the fraction of samples whose value exceeds x.
func FracGreater(samples []int, x int) float64 {
	if len(samples) == 0 {
		return 0
	}
	n := 0
	for _, v := range samples {
		if v > x {
			n++
		}
	}
	return float64(n) / float64(len(samples))
}

// Mean returns the arithmetic mean of the samples, or 0 for no samples.
func Mean(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range samples {
		sum += v
	}
	return sum / float64(len(samples))
}

// MeanInts returns the arithmetic mean of integer samples.
func MeanInts(samples []int) float64 {
	if len(samples) == 0 {
		return 0
	}
	sum := 0
	for _, v := range samples {
		sum += v
	}
	return float64(sum) / float64(len(samples))
}

// Percentile returns the p-th percentile (0 <= p <= 100) of the samples
// using linear interpolation between closest ranks. It panics on an empty
// slice or out-of-range p.
func Percentile(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		panic("stats: Percentile of empty slice")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of range", p))
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// PercentileInts is Percentile over integer samples.
func PercentileInts(samples []int, p float64) float64 {
	fs := make([]float64, len(samples))
	for i, v := range samples {
		fs[i] = float64(v)
	}
	return Percentile(fs, p)
}

// Pareto samples from a Pareto (type I) distribution with minimum xm and
// shape alpha. Larger alpha concentrates mass near xm.
func (r *RNG) Pareto(xm, alpha float64) float64 {
	if xm <= 0 || alpha <= 0 {
		panic("stats: Pareto parameters must be positive")
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// ParetoShape8020 is the shape parameter for which a Pareto distribution
// concentrates 80% of total mass in the top 20% of draws (the "80-20 rule"
// the paper uses for its spoofed-source placement): alpha = log4(5) ≈ 1.16.
var ParetoShape8020 = math.Log(5) / math.Log(4)

// Summary holds the five-number-style summary used in experiment reports.
type Summary struct {
	N    int
	Mean float64
	P25  float64
	P50  float64
	P75  float64
	P90  float64
	Max  float64
}

// Summarize computes a Summary of the samples. A zero Summary is returned
// for no samples.
func Summarize(samples []float64) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	max := samples[0]
	for _, v := range samples {
		if v > max {
			max = v
		}
	}
	return Summary{
		N:    len(samples),
		Mean: Mean(samples),
		P25:  Percentile(samples, 25),
		P50:  Percentile(samples, 50),
		P75:  Percentile(samples, 75),
		P90:  Percentile(samples, 90),
		Max:  max,
	}
}

// SummarizeInts computes a Summary of integer samples.
func SummarizeInts(samples []int) Summary {
	fs := make([]float64, len(samples))
	for i, v := range samples {
		fs[i] = float64(v)
	}
	return Summarize(fs)
}
