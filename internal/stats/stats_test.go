package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverge at %d: %d vs %d", i, av, bv)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(7)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGIntnUniformity(t *testing.T) {
	r := NewRNG(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	for i, c := range counts {
		frac := float64(c) / draws
		if frac < 0.08 || frac > 0.12 {
			t.Errorf("bucket %d has fraction %.4f, want ~0.1", i, frac)
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(5)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(9)
	a := r.Split()
	b := r.Split()
	if a.Uint64() == b.Uint64() {
		t.Fatal("split streams start identically")
	}
}

func TestCCDFBasic(t *testing.T) {
	pts := CCDF([]float64{1, 1, 2, 4})
	want := []CCDFPoint{{1, 1.0}, {2, 0.5}, {4, 0.25}}
	if len(pts) != len(want) {
		t.Fatalf("got %d points, want %d: %v", len(pts), len(want), pts)
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Errorf("point %d = %v, want %v", i, pts[i], want[i])
		}
	}
}

func TestCCDFEmpty(t *testing.T) {
	if pts := CCDF(nil); pts != nil {
		t.Fatalf("CCDF(nil) = %v, want nil", pts)
	}
}

func TestCCDFProperties(t *testing.T) {
	// Property: CCDF is non-increasing in Frac, starts at 1.0, values
	// strictly increasing, and every Frac is in (0, 1].
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]float64, len(raw))
		for i, v := range raw {
			samples[i] = float64(v)
		}
		pts := CCDF(samples)
		if pts[0].Frac != 1.0 {
			return false
		}
		for i := range pts {
			if pts[i].Frac <= 0 || pts[i].Frac > 1 {
				return false
			}
			if i > 0 && (pts[i].Frac >= pts[i-1].Frac || pts[i].Value <= pts[i-1].Value) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFracGreater(t *testing.T) {
	s := []int{1, 1, 5, 26, 30}
	if got := FracGreater(s, 25); got != 0.4 {
		t.Fatalf("FracGreater(25) = %v, want 0.4", got)
	}
	if got := FracGreater(nil, 0); got != 0 {
		t.Fatalf("FracGreater(nil) = %v, want 0", got)
	}
}

func TestMean(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Fatalf("Mean = %v, want 2", m)
	}
	if m := Mean(nil); m != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", m)
	}
	if m := MeanInts([]int{2, 4}); m != 3 {
		t.Fatalf("MeanInts = %v, want 3", m)
	}
}

func TestPercentile(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {90, 4.6},
	}
	for _, c := range cases {
		if got := Percentile(s, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileSingle(t *testing.T) {
	if got := Percentile([]float64{7}, 90); got != 7 {
		t.Fatalf("Percentile of singleton = %v, want 7", got)
	}
}

func TestPercentileMonotone(t *testing.T) {
	f := func(raw []uint8, pRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]float64, len(raw))
		for i, v := range raw {
			samples[i] = float64(v)
		}
		p1 := float64(pRaw) / 255 * 100
		p2 := p1 / 2
		return Percentile(samples, p2) <= Percentile(samples, p1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParetoShape8020(t *testing.T) {
	// Verify that with the 80-20 shape, the top 20% of a large sample
	// holds roughly 80% of the mass.
	r := NewRNG(123)
	const n = 200000
	xs := make([]float64, n)
	total := 0.0
	for i := range xs {
		xs[i] = r.Pareto(1, ParetoShape8020)
		total += xs[i]
	}
	sort.Float64s(xs)
	top := 0.0
	for _, v := range xs[n*8/10:] {
		top += v
	}
	frac := top / total
	if frac < 0.72 || frac > 0.88 {
		t.Fatalf("top-20%% mass fraction = %.3f, want ~0.8", frac)
	}
}

func TestParetoMin(t *testing.T) {
	r := NewRNG(99)
	for i := 0; i < 10000; i++ {
		if v := r.Pareto(2, 1.5); v < 2 {
			t.Fatalf("Pareto(2, 1.5) = %v below minimum", v)
		}
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Max != 4 {
		t.Fatalf("unexpected summary %+v", s)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatalf("Summarize(nil) = %+v, want zero", z)
	}
}

func TestSummarizeIntsMatchesFloat(t *testing.T) {
	a := SummarizeInts([]int{5, 1, 9})
	b := Summarize([]float64{5, 1, 9})
	if a != b {
		t.Fatalf("int and float summaries differ: %+v vs %+v", a, b)
	}
}

func TestPercentilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Percentile(nil, 50) },
		func() { Percentile([]float64{1}, -1) },
		func() { Percentile([]float64{1}, 101) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestParetoPanics(t *testing.T) {
	r := NewRNG(1)
	for _, f := range []func(){
		func() { r.Pareto(0, 1) },
		func() { r.Pareto(1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestRNGBool(t *testing.T) {
	r := NewRNG(2)
	always, never := 0, 0
	for i := 0; i < 1000; i++ {
		if r.Bool(1.0) {
			always++
		}
		if r.Bool(0.0) {
			never++
		}
	}
	if always != 1000 || never != 0 {
		t.Fatalf("Bool boundaries wrong: %d / %d", always, never)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{3})
	if s.N != 1 || s.Mean != 3 || s.P25 != 3 || s.P90 != 3 || s.Max != 3 {
		t.Fatalf("singleton summary %+v", s)
	}
}

func TestCCDFIntsMatchesFloat(t *testing.T) {
	a := CCDFInts([]int{3, 1, 1})
	b := CCDF([]float64{3, 1, 1})
	if len(a) != len(b) {
		t.Fatal("length mismatch")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("point %d differs", i)
		}
	}
}
