package metrics

import (
	"sync/atomic"
	"testing"
)

// TestQuantileZeroBounds covers the zero-value-constructed histogram
// (empty bounds slice): Quantile must not index bounds[-1] and answers
// with the observed maximum instead.
func TestQuantileZeroBounds(t *testing.T) {
	h := &Histogram{counts: make([]atomic.Int64, 1)}
	if q := h.Quantile(0.99); q != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", q)
	}
	h.Observe(7)
	h.Observe(3)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 7 {
			t.Fatalf("zero-bounds Quantile(%v) = %v, want max 7", q, got)
		}
	}
}

// TestQuantileEdgeCases locks the interpolation semantics at the
// boundaries: q=0 answers the lower edge of the first non-empty bucket,
// q=1 the upper bound of the last occupied bucket, overflow mass clamps
// to the last bound, and empty buckets advance the interpolation base.
func TestQuantileEdgeCases(t *testing.T) {
	tests := []struct {
		name    string
		bounds  []float64
		samples []float64
		q       float64
		want    float64
	}{
		{
			name:   "empty histogram",
			bounds: []float64{1, 2},
			q:      0.5,
			want:   0,
		},
		{
			name:    "q=0 lands on lower edge of first non-empty bucket",
			bounds:  []float64{1, 2, 4},
			samples: []float64{1.5, 1.5}, // bucket (1,2]
			q:       0,
			want:    1,
		},
		{
			name:    "q=1 reaches the containing bucket's upper bound",
			bounds:  []float64{1, 2, 4},
			samples: []float64{0.5, 1.5, 3},
			q:       1,
			want:    4,
		},
		{
			name:    "single bucket interpolates from zero",
			bounds:  []float64{10},
			samples: []float64{1, 2, 3, 4}, // all in (..,10]
			q:       0.5,
			want:    5, // 0 + (2/4)*(10-0)
		},
		{
			name:    "all mass in overflow clamps to last bound",
			bounds:  []float64{1, 2},
			samples: []float64{100, 200, 300},
			q:       0.5,
			want:    2,
		},
		{
			name:    "overflow tail clamps p99 to last bound",
			bounds:  []float64{1, 2},
			samples: []float64{0.5, 100},
			q:       0.99,
			want:    2,
		},
		{
			name:    "empty leading buckets advance the interpolation base",
			bounds:  []float64{1, 2, 4},
			samples: []float64{3, 3}, // bucket (2,4]; base must be 2, not 0
			q:       0.5,
			want:    3, // 2 + (1/2)*(4-2)
		},
		{
			name:    "median splits across buckets by rank",
			bounds:  []float64{1, 2, 3},
			samples: []float64{0.5, 1.5, 2.5, 2.6},
			q:       0.5,
			want:    2, // rank 2 exhausts bucket (1,2]: 1 + ((2-1)/1)*(2-1)
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			h := NewHistogram(tc.bounds)
			for _, s := range tc.samples {
				h.Observe(s)
			}
			if got := h.Quantile(tc.q); got != tc.want {
				t.Fatalf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
			}
		})
	}
}
