package metrics

import "strings"

// durationBuckets spans microseconds to minutes — wide enough for both
// a cache lookup span and a whole-campaign span.
var durationBuckets = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1, 5, 30, 120, 600,
}

// SpanObserver returns a callback that records span durations into
// per-span-name histograms in r — the trace→metrics bridge. Wire it as
// trace.Options.OnEnd via a closure:
//
//	obs := metrics.SpanObserver(reg, "trace_span_")
//	tr := trace.New(trace.Options{OnEnd: func(rec trace.SpanRecord) {
//	    obs(rec.Name, rec.Duration.Seconds())
//	}})
//
// Span names are sanitized (dots become underscores) so "bgp.propagate"
// lands in "trace_span_bgp_propagate_seconds". The returned func is safe
// for concurrent use; the histogram lookup goes through the registry's
// get-or-create path, which is cheap after first registration.
func SpanObserver(r *Registry, prefix string) func(name string, seconds float64) {
	return func(name string, seconds float64) {
		metric := prefix + strings.ReplaceAll(name, ".", "_") + "_seconds"
		r.Histogram(metric, durationBuckets...).Observe(seconds)
	}
}
