// Package metrics is a dependency-free instrumentation kit for the
// live attribution pipeline: lock-free counters and gauges, fixed-bucket
// histograms, and an expvar-style JSON export that cmd/spooftrackd
// serves over HTTP. Hot-path operations (Counter.Add, Gauge.Set,
// Histogram.Observe) are single atomic ops — safe to call from every
// packet-processing goroutine.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing int64.
type Counter struct {
	n atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.n.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// Gauge is an instantaneous float64 value.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the gauge's value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram accumulates observations into fixed buckets. Buckets are
// defined by their inclusive upper bounds; one implicit overflow bucket
// catches everything beyond the last bound.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is overflow
	count  atomic.Int64
	sumBig atomic.Uint64 // float64 bits, CAS-accumulated
	minBig atomic.Uint64 // float64 bits, CAS-lowered; +Inf until first sample
	maxBig atomic.Uint64 // float64 bits, CAS-raised; -Inf until first sample
}

// NewHistogram builds a histogram with the given ascending upper
// bounds. Use DefBuckets when in doubt.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	if !sort.Float64sAreSorted(bounds) {
		panic("metrics: histogram bounds must be ascending")
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	h.minBig.Store(math.Float64bits(math.Inf(1)))
	h.maxBig.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// DefBuckets is a decade-spanning default (powers of ~3 from 1e-5 up),
// suitable for latencies in seconds or small batch sizes alike.
var DefBuckets = []float64{
	1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2,
	0.1, 0.3, 1, 3, 10, 30, 100, 300, 1000,
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.minBig.Load()
		if v >= math.Float64frombits(old) || h.minBig.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.maxBig.Load()
		if v <= math.Float64frombits(old) || h.maxBig.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.sumBig.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBig.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBig.Load()) }

// Min returns the smallest observation (0 with no samples).
func (h *Histogram) Min() float64 {
	if h.Count() == 0 {
		return 0
	}
	return math.Float64frombits(h.minBig.Load())
}

// Max returns the largest observation (0 with no samples).
func (h *Histogram) Max() float64 {
	if h.Count() == 0 {
		return 0
	}
	return math.Float64frombits(h.maxBig.Load())
}

// Mean returns the average observation (0 with no samples).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Quantile estimates the q-quantile (0..1) by linear interpolation
// within the containing bucket. Overflow-bucket answers clamp to the
// last bound. A histogram with no buckets (possible only by
// constructing the zero value directly — NewHistogram substitutes
// DefBuckets) answers with the observed maximum rather than indexing an
// empty bounds slice.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	if len(h.bounds) == 0 {
		return h.Max()
	}
	rank := q * float64(total)
	acc := int64(0)
	lo := 0.0
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			if i < len(h.bounds) {
				lo = h.bounds[i]
			}
			continue
		}
		if float64(acc+n) >= rank {
			if i >= len(h.bounds) {
				return h.bounds[len(h.bounds)-1]
			}
			frac := (rank - float64(acc)) / float64(n)
			return lo + frac*(h.bounds[i]-lo)
		}
		acc += n
		lo = h.bounds[i]
	}
	return h.bounds[len(h.bounds)-1]
}

// HistogramSnapshot is a point-in-time view of a histogram, the shape
// exporters marshal. Grabbing it is lock-free (each field is an atomic
// read), so export paths can take snapshots without stalling observers.
type HistogramSnapshot struct {
	Count   int64            `json:"count"`
	Sum     float64          `json:"sum"`
	Min     float64          `json:"min"`
	Max     float64          `json:"max"`
	Mean    float64          `json:"mean"`
	P50     float64          `json:"p50"`
	P99     float64          `json:"p99"`
	Buckets map[string]int64 `json:"buckets"`
	// Bounds is the full bucket-bound layout (Buckets holds only
	// occupied buckets, keyed by formatted bound). Not serialized, so
	// the JSON shape is unchanged; in-process consumers (the SLO
	// watchdog's quantile rules) use it to reconstruct exact
	// interpolation semantics from a snapshot.
	Bounds []float64 `json:"-"`
}

// Snapshot captures the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	buckets := make(map[string]int64, len(h.counts))
	for i := range h.counts {
		if n := h.counts[i].Load(); n > 0 {
			key := "+inf"
			if i < len(h.bounds) {
				key = fmt.Sprintf("%g", h.bounds[i])
			}
			buckets[key] = n
		}
	}
	return HistogramSnapshot{
		Count:   h.Count(),
		Sum:     h.Sum(),
		Min:     h.Min(),
		Max:     h.Max(),
		Mean:    h.Mean(),
		P50:     h.Quantile(0.50),
		P99:     h.Quantile(0.99),
		Buckets: buckets,
		Bounds:  h.bounds,
	}
}

// Registry names and exports a set of metrics. The zero value is not
// usable; call NewRegistry. All methods are safe for concurrent use;
// Counter/Gauge/Histogram lookups are get-or-create and cheap enough
// to call once at setup, not per event.
type Registry struct {
	mu    sync.RWMutex
	order []string
	vars  map[string]any
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{vars: make(map[string]any)}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	return register(r, name, func() *Counter { return &Counter{} })
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	return register(r, name, func() *Gauge { return &Gauge{} })
}

// Histogram returns the named histogram, creating it with the bounds on
// first use (bounds are ignored on later lookups).
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	return register(r, name, func() *Histogram { return NewHistogram(bounds) })
}

// GaugeFunc is a gauge whose value is computed on demand — for state
// owned elsewhere (cache sizes, pool depths) that would be stale as a
// stored Gauge. fn must be safe for concurrent use.
type GaugeFunc struct {
	fn func() float64
}

// Value evaluates the gauge.
func (g *GaugeFunc) Value() float64 { return g.fn() }

// GaugeFunc registers a computed gauge under name. The function bound on
// first registration wins; later calls with the same name return the
// existing gauge unchanged.
func (r *Registry) GaugeFunc(name string, fn func() float64) *GaugeFunc {
	return register(r, name, func() *GaugeFunc { return &GaugeFunc{fn: fn} })
}

func register[T any](r *Registry, name string, mk func() T) T {
	r.mu.RLock()
	v, ok := r.vars[name]
	r.mu.RUnlock()
	if ok {
		t, good := v.(T)
		if !good {
			panic(fmt.Sprintf("metrics: %q registered with a different type", name))
		}
		return t
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok := r.vars[name]; ok {
		t, good := v.(T)
		if !good {
			panic(fmt.Sprintf("metrics: %q registered with a different type", name))
		}
		return t
	}
	t := mk()
	r.vars[name] = t
	r.order = append(r.order, name)
	return t
}

// Snapshot returns every metric's current value, keyed by name:
// counters as int64, gauges as float64, histograms as HistogramSnapshot
// values. The registry lock is held only to copy the variable table;
// values (including histogram traversal and GaugeFunc evaluation) are
// read afterwards, so a slow gauge function or a wide histogram cannot
// stall registrations.
func (r *Registry) Snapshot() map[string]any {
	r.mu.RLock()
	vars := make(map[string]any, len(r.vars))
	for name, v := range r.vars {
		vars[name] = v
	}
	r.mu.RUnlock()
	out := make(map[string]any, len(vars))
	for name, v := range vars {
		switch m := v.(type) {
		case *Counter:
			out[name] = m.Value()
		case *Gauge:
			out[name] = m.Value()
		case *GaugeFunc:
			out[name] = m.Value()
		case *Histogram:
			out[name] = m.Snapshot()
		case *CounterVec:
			out[name] = m.Snapshot()
		case *GaugeVec:
			out[name] = m.Snapshot()
		case *HistogramVec:
			out[name] = m.Snapshot()
		}
	}
	return out
}

// timeNow is the export clock, a variable so tests comparing two
// serializations of one registry can pin it.
var timeNow = time.Now

// WriteJSON emits the registry expvar-style: one JSON object, metrics
// in registration order, led by a "ts" unix-seconds capture timestamp
// so exported snapshots are self-describing when archived.
func (r *Registry) WriteJSON(w io.Writer) error {
	r.mu.RLock()
	names := append([]string(nil), r.order...)
	r.mu.RUnlock()
	snap := r.Snapshot()
	if _, err := fmt.Fprintf(w, "{\n\"ts\": %d", timeNow().Unix()); err != nil {
		return err
	}
	for _, name := range names {
		v, ok := snap[name]
		if !ok {
			continue
		}
		data, err := json.Marshal(v)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, ",\n%q: %s", name, data); err != nil {
			return err
		}
	}
	_, err := fmt.Fprint(w, "\n}\n")
	return err
}

// Handler serves the registry at /metrics, content-negotiated: JSON by
// default (byte-compatible with the pre-Prometheus export, so existing
// consumers are unaffected), Prometheus text format when the client
// asks for it via Accept: text/plain (what promtool and the Prometheus
// scraper send) or ?format=prometheus. ?format=json forces JSON.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if wantsPrometheus(req) {
			w.Header().Set("Content-Type", PrometheusContentType)
			_ = r.WritePrometheus(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
}
