package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// PrometheusContentType is the Content-Type of the Prometheus text
// exposition format (version 0.0.4), the format WritePrometheus emits.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus emits every metric in the registry in Prometheus text
// exposition format, in registration order. Scalars map directly
// (Counter -> counter, Gauge/GaugeFunc -> gauge); histograms emit the
// conventional cumulative _bucket series (one per bound plus le="+Inf",
// which always equals _count) and _sum/_count; vectors emit one series
// per child with its label set. Metric and label names are sanitized to
// the Prometheus grammar and label values are escaped, so arbitrary
// registry names cannot produce an unscrapable page.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	names := append([]string(nil), r.order...)
	vars := make(map[string]any, len(r.vars))
	for name, v := range r.vars {
		vars[name] = v
	}
	r.mu.RUnlock()

	for _, name := range names {
		pname := sanitizeMetricName(name)
		var err error
		switch m := vars[name].(type) {
		case *Counter:
			err = writeScalar(w, pname, "counter", nil, nil, float64(m.Value()))
		case *Gauge:
			err = writeScalar(w, pname, "gauge", nil, nil, m.Value())
		case *GaugeFunc:
			err = writeScalar(w, pname, "gauge", nil, nil, m.Value())
		case *Histogram:
			err = writeHistogram(w, pname, nil, nil, m, true)
		case *CounterVec:
			if _, err = fmt.Fprintf(w, "# TYPE %s counter\n", pname); err == nil {
				labels := sanitizeLabelNames(m.labels)
				for _, c := range m.children() {
					if err = writeSeries(w, pname, labels, c.values, float64(c.metric.Value())); err != nil {
						break
					}
				}
			}
		case *GaugeVec:
			if _, err = fmt.Fprintf(w, "# TYPE %s gauge\n", pname); err == nil {
				labels := sanitizeLabelNames(m.labels)
				for _, c := range m.children() {
					if err = writeSeries(w, pname, labels, c.values, c.metric.Value()); err != nil {
						break
					}
				}
			}
		case *HistogramVec:
			if _, err = fmt.Fprintf(w, "# TYPE %s histogram\n", pname); err == nil {
				labels := sanitizeLabelNames(m.labels)
				for _, c := range m.children() {
					if err = writeHistogram(w, pname, labels, c.values, c.metric, false); err != nil {
						break
					}
				}
			}
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writeScalar emits a TYPE header and one sample.
func writeScalar(w io.Writer, name, typ string, labels, values []string, v float64) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, typ); err != nil {
		return err
	}
	return writeSeries(w, name, labels, values, v)
}

// writeSeries emits one sample line: name{labels} value.
func writeSeries(w io.Writer, name string, labels, values []string, v float64) error {
	_, err := fmt.Fprintf(w, "%s%s %s\n", name, renderLabels(labels, values, "", 0), formatValue(v))
	return err
}

// writeHistogram emits the cumulative _bucket/_sum/_count triple for one
// histogram, with the child's label set (if any) plus the le label on
// buckets. withType emits the TYPE header (once per family).
func writeHistogram(w io.Writer, name string, labels, values []string, h *Histogram, withType bool) error {
	if withType {
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
	}
	cum := int64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		ls := renderLabels(labels, values, "le", bound)
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, ls, cum); err != nil {
			return err
		}
	}
	// le="+Inf" includes the overflow bucket and equals _count by
	// construction.
	count := h.Count()
	ls := renderLabels(labels, values, "le", math.Inf(1))
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, ls, count); err != nil {
		return err
	}
	plain := renderLabels(labels, values, "", 0)
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, plain, formatValue(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, plain, count)
	return err
}

// renderLabels renders a {name="value",...} block, optionally appending
// an le label (histogram buckets). Empty when there are no labels.
func renderLabels(labels, values []string, leName string, le float64) string {
	if len(labels) == 0 && leName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(values[i]))
		b.WriteByte('"')
	}
	if leName != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(leName)
		b.WriteString(`="`)
		b.WriteString(formatValue(le))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// formatValue renders a float the way Prometheus expects: shortest
// round-trip decimal, with +Inf/-Inf/NaN spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// sanitizeMetricName maps an arbitrary registry name onto the Prometheus
// metric-name grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func sanitizeMetricName(name string) string {
	return sanitizeName(name, true)
}

// sanitizeLabelNames maps label names onto [a-zA-Z_][a-zA-Z0-9_]* (no
// colon, unlike metric names).
func sanitizeLabelNames(labels []string) []string {
	out := make([]string, len(labels))
	for i, l := range labels {
		out[i] = sanitizeName(l, false)
	}
	return out
}

func sanitizeName(name string, allowColon bool) string {
	if name == "" {
		return "_"
	}
	var b []byte
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || (allowColon && c == ':') ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			if b == nil {
				b = []byte(name)
			}
			b[i] = '_'
		}
	}
	if b == nil {
		return name
	}
	return string(b)
}

// escapeLabelValue escapes backslash, double quote, and newline — the
// three characters the text format requires escaping in label values.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// wantsPrometheus decides the exposition format for a /metrics request:
// an explicit ?format= wins, then the Accept header — any text/plain or
// OpenMetrics media type selects Prometheus text. The default stays
// JSON so pre-existing consumers see identical bytes.
func wantsPrometheus(req *http.Request) bool {
	switch req.URL.Query().Get("format") {
	case "prometheus":
		return true
	case "json":
		return false
	}
	for _, part := range strings.Split(req.Header.Get("Accept"), ",") {
		mt := strings.TrimSpace(part)
		if i := strings.IndexByte(mt, ';'); i >= 0 {
			mt = strings.TrimSpace(mt[:i])
		}
		if mt == "text/plain" || mt == "application/openmetrics-text" {
			return true
		}
	}
	return false
}
