package metrics

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a registry exercising every exposition case:
// name sanitization, plain scalars, label escaping, cumulative buckets,
// and vectors of each kind.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("events_total").Add(42)
	r.Counter("weird.name/with-chars").Add(1) // sanitized
	r.Gauge("queue_depth").Set(7.5)
	r.GaugeFunc("computed", func() float64 { return 3 })
	h := r.Histogram("flush_seconds", 0.01, 0.1, 1)
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(5) // overflow: only in +Inf
	cv := r.CounterVec("link_packets_total", "link", "outcome")
	cv.With("0", "forwarded").Add(10)
	cv.With("1", "dropped").Add(2)
	cv.With("1", `esc"ape\me`+"\n").Add(1) // label escaping
	gv := r.GaugeVec("shard_depth", "shard")
	gv.With("0").Set(3)
	hv := r.HistogramVec("eval_seconds", []string{"config"}, 0.1, 1)
	hv.With("4").Observe(0.5)
	hv.With("4").Observe(2)
	return r
}

func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "prometheus.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("WritePrometheus output differs from golden:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestPrometheusInfBucketEqualsCount verifies the histogram invariants
// on every _bucket series: cumulative (non-decreasing) buckets, and
// le="+Inf" exactly equal to _count.
func TestPrometheusInfBucketEqualsCount(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int64{} // series prefix (name+labels sans le) -> _count
	infs := map[string]int64{}
	last := map[string]int64{}
	for _, line := range strings.Split(buf.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, valStr, _ := strings.Cut(line, " ")
		switch {
		case strings.Contains(name, "_bucket"):
			v, err := strconv.ParseInt(valStr, 10, 64)
			if err != nil {
				t.Fatalf("bucket value %q: %v", line, err)
			}
			key := stripLe(name)
			if v < last[key] {
				t.Fatalf("bucket series %q not cumulative: %d after %d", key, v, last[key])
			}
			last[key] = v
			if strings.Contains(name, `le="+Inf"`) {
				infs[key] = v
			}
		case strings.Contains(name, "_count"):
			v, _ := strconv.ParseInt(valStr, 10, 64)
			counts[strings.Replace(name, "_count", "_bucket", 1)] = v
		}
	}
	if len(infs) == 0 {
		t.Fatal("no +Inf buckets found")
	}
	for key, inf := range infs {
		if counts[key] != inf {
			t.Fatalf("series %q: +Inf bucket %d != _count %d", key, inf, counts[key])
		}
	}
}

// stripLe removes the le label from a _bucket series name, leaving the
// name plus the child labels.
func stripLe(name string) string {
	i := strings.Index(name, "le=\"")
	if i < 0 {
		return name
	}
	j := strings.Index(name[i+4:], "\"")
	rest := name[i+4+j+1:]
	pre := strings.TrimSuffix(strings.TrimSuffix(name[:i], ","), "{")
	if rest == "}" {
		if strings.Contains(pre, "{") {
			return pre + "}"
		}
		return pre
	}
	return pre + rest
}

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"ok_name":     "ok_name",
		"with:colon":  "with:colon",
		"dots.and/sl": "dots_and_sl",
		"9starts":     "_starts",
		"":            "_",
	}
	for in, want := range cases {
		if got := sanitizeMetricName(in); got != want {
			t.Errorf("sanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestHandlerContentNegotiation(t *testing.T) {
	r := goldenRegistry()
	// Pin the export clock: the byte-compat check below serializes the
	// registry twice, and a real clock could cross a second boundary
	// between them.
	defer func(orig func() time.Time) { timeNow = orig }(timeNow)
	timeNow = func() time.Time { return time.Unix(1_700_000_000, 0) }

	// Default (no Accept) stays JSON — byte compatibility with existing
	// consumers.
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("default Content-Type = %q", ct)
	}
	var decoded map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &decoded); err != nil {
		t.Fatalf("default body not JSON: %v", err)
	}
	var direct bytes.Buffer
	if err := r.WriteJSON(&direct); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rec.Body.Bytes(), direct.Bytes()) {
		t.Fatal("handler JSON differs from WriteJSON output")
	}

	// Accept: text/plain selects the Prometheus text format.
	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	rec = httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); ct != PrometheusContentType {
		t.Fatalf("text/plain Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "# TYPE events_total counter") {
		t.Fatalf("prometheus body missing TYPE line:\n%s", rec.Body.String())
	}

	// The Prometheus scraper's real Accept header.
	req = httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text;version=1.0.0,text/plain;version=0.0.4;q=0.5,*/*;q=0.1")
	rec = httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); ct != PrometheusContentType {
		t.Fatalf("scraper Accept Content-Type = %q", ct)
	}

	// Explicit ?format= overrides.
	for format, wantCT := range map[string]string{"prometheus": PrometheusContentType, "json": "application/json"} {
		req = httptest.NewRequest("GET", fmt.Sprintf("/metrics?format=%s", format), nil)
		req.Header.Set("Accept", "*/*")
		rec = httptest.NewRecorder()
		r.Handler().ServeHTTP(rec, req)
		if ct := rec.Header().Get("Content-Type"); ct != wantCT {
			t.Fatalf("?format=%s Content-Type = %q, want %q", format, ct, wantCT)
		}
	}
}
