package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events")
	const goroutines, per = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*per {
		t.Fatalf("counter = %d, want %d", got, goroutines*per)
	}
	// Get-or-create must return the same instance.
	if r.Counter("events") != c {
		t.Fatal("Counter lookup returned a different instance")
	}
}

func TestGauge(t *testing.T) {
	g := NewRegistry().Gauge("depth")
	g.Set(3.5)
	if got := g.Value(); got != 3.5 {
		t.Fatalf("gauge = %v, want 3.5", got)
	}
	g.Set(-1)
	if got := g.Value(); got != -1 {
		t.Fatalf("gauge = %v, want -1", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	for i := 0; i < 100; i++ {
		h.Observe(float64(i%8) + 0.5) // 0.5 .. 7.5
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	wantSum := 0.0
	for i := 0; i < 100; i++ {
		wantSum += float64(i%8) + 0.5
	}
	if math.Abs(h.Sum()-wantSum) > 1e-9 {
		t.Fatalf("sum = %v, want %v", h.Sum(), wantSum)
	}
	if m := h.Mean(); math.Abs(m-wantSum/100) > 1e-9 {
		t.Fatalf("mean = %v", m)
	}
	// Median of samples spread over (0.5..7.5) should land mid-range.
	if q := h.Quantile(0.5); q < 1 || q > 6 {
		t.Fatalf("p50 = %v, want within (1, 6)", q)
	}
	if q := h.Quantile(0.99); q < 4 || q > 8 {
		t.Fatalf("p99 = %v, want within (4, 8]", q)
	}
	// Overflow clamps to the last bound.
	h2 := NewHistogram([]float64{1, 2})
	h2.Observe(100)
	if q := h2.Quantile(0.9); q != 2 {
		t.Fatalf("overflow quantile = %v, want 2", q)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(nil)
	var wg sync.WaitGroup
	const goroutines, per = 4, 5000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(1)
			}
		}()
	}
	wg.Wait()
	if h.Count() != goroutines*per {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-float64(goroutines*per)) > 1e-6 {
		t.Fatalf("sum = %v", h.Sum())
	}
}

func TestWriteJSONAndHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("ingested").Add(42)
	r.Gauge("queue_depth").Set(7)
	r.Histogram("flush_size", 1, 10, 100).Observe(5)

	defer func(orig func() time.Time) { timeNow = orig }(timeNow)
	timeNow = func() time.Time { return time.Unix(1_700_000_000, 0) }

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	// The snapshot leads with its capture timestamp, self-describing for
	// anyone archiving exports.
	if decoded["ts"] != float64(1_700_000_000) {
		t.Fatalf("ts = %v, want 1700000000", decoded["ts"])
	}
	if !strings.HasPrefix(buf.String(), "{\n\"ts\": 1700000000,\n") {
		t.Fatalf("ts is not the first key:\n%s", buf.String())
	}
	if decoded["ingested"] != float64(42) {
		t.Fatalf("ingested = %v", decoded["ingested"])
	}
	if decoded["queue_depth"] != float64(7) {
		t.Fatalf("queue_depth = %v", decoded["queue_depth"])
	}
	hist, ok := decoded["flush_size"].(map[string]any)
	if !ok || hist["count"] != float64(1) {
		t.Fatalf("flush_size = %v", decoded["flush_size"])
	}

	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 || rec.Header().Get("Content-Type") != "application/json" {
		t.Fatalf("handler: code %d, type %q", rec.Code, rec.Header().Get("Content-Type"))
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &decoded); err != nil {
		t.Fatalf("handler body not JSON: %v", err)
	}
}
