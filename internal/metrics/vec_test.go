package metrics

import (
	"sync"
	"testing"
)

func TestCounterVecIdentityAndValues(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("packets_total", "link", "outcome")
	v.With("0", "ok").Add(3)
	v.With("1", "drop").Inc()
	v.With("0", "ok").Add(2)

	if got := v.With("0", "ok").Value(); got != 5 {
		t.Fatalf(`With("0","ok") = %d, want 5`, got)
	}
	if got := v.With("1", "drop").Value(); got != 1 {
		t.Fatalf(`With("1","drop") = %d, want 1`, got)
	}
	// Same label set must resolve to the same child.
	if v.With("0", "ok") != v.With("0", "ok") {
		t.Fatal("With returned different children for one label set")
	}
	// Registry lookup returns the same vector.
	if r.CounterVec("packets_total", "link", "outcome") != v {
		t.Fatal("CounterVec lookup returned a different vector")
	}
}

func TestVecKeyNoCollision(t *testing.T) {
	v := NewRegistry().CounterVec("x", "a", "b")
	v.With("ab", "c").Inc()
	v.With("a", "bc").Inc()
	if got := v.With("ab", "c").Value(); got != 1 {
		t.Fatalf(`("ab","c") = %d, want 1`, got)
	}
	if got := v.With("a", "bc").Value(); got != 1 {
		t.Fatalf(`("a","bc") = %d, want 1`, got)
	}
}

func TestVecWrongArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("With with wrong arity should panic")
		}
	}()
	NewRegistry().CounterVec("x", "a", "b").With("only-one")
}

func TestGaugeVecAndHistogramVec(t *testing.T) {
	r := NewRegistry()
	g := r.GaugeVec("depth", "shard")
	g.With("0").Set(4)
	g.With("1").Set(2.5)
	if g.With("1").Value() != 2.5 {
		t.Fatalf("gauge child = %v", g.With("1").Value())
	}

	h := r.HistogramVec("lat", []string{"link"}, 1, 10)
	h.With("7").Observe(3)
	h.With("7").Observe(0.5)
	if got := h.With("7").Count(); got != 2 {
		t.Fatalf("histogram child count = %d", got)
	}
}

func TestVecConcurrentCreateAndObserve(t *testing.T) {
	v := NewRegistry().CounterVec("c", "k")
	keys := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	var wg sync.WaitGroup
	const per = 2000
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				v.With(keys[(g+i)%len(keys)]).Inc()
			}
		}(g)
	}
	wg.Wait()
	total := int64(0)
	for _, k := range keys {
		total += v.With(k).Value()
	}
	if total != 8*per {
		t.Fatalf("total = %d, want %d", total, 8*per)
	}
}

func TestVecRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("pkts", "link")
	v.With("0").Add(7)
	v.With("3").Add(9)
	snap := r.Snapshot()
	m, ok := snap["pkts"].(map[string]any)
	if !ok {
		t.Fatalf("snapshot pkts = %T, want map", snap["pkts"])
	}
	if m["link=0"] != int64(7) || m["link=3"] != int64(9) {
		t.Fatalf("snapshot children = %v", m)
	}
}
