package metrics

import (
	"strconv"
	"testing"
)

// BenchmarkPlainCounter is the baseline the labeled-vector budget is
// measured against (vector observe must stay within 2× of this).
func BenchmarkPlainCounter(b *testing.B) {
	c := NewRegistry().Counter("events_total")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkVecObserve resolves an already-seen label set and increments
// its counter — the pipeline's hot path shape (per-link counters are
// single-label vectors). Must be 0 allocs/op and within 2× of
// BenchmarkPlainCounter.
func BenchmarkVecObserve(b *testing.B) {
	v := NewRegistry().CounterVec("link_packets_total", "link")
	v.With("3").Inc() // pre-seed the label set
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.With("3").Inc()
	}
}

// BenchmarkVecObserveTwoLabels pays key assembly on top of the map
// lookup (two-label child resolution).
func BenchmarkVecObserveTwoLabels(b *testing.B) {
	v := NewRegistry().CounterVec("link_packets_total", "link", "outcome")
	v.With("3", "forwarded").Inc()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.With("3", "forwarded").Inc()
	}
}

// BenchmarkVecObserveManyChildren exercises the map lookup with a wider
// child set (64 links × 2 outcomes), rotating labels per iteration.
func BenchmarkVecObserveManyChildren(b *testing.B) {
	v := NewRegistry().CounterVec("link_packets_total", "link", "outcome")
	links := make([]string, 64)
	for i := range links {
		links[i] = strconv.Itoa(i)
		v.With(links[i], "forwarded").Inc()
		v.With(links[i], "dropped").Inc()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.With(links[i&63], "forwarded").Inc()
	}
}

// BenchmarkVecObserveHistogram is the labeled-histogram flavor (shared
// bounds, per-link children).
func BenchmarkVecObserveHistogram(b *testing.B) {
	v := NewRegistry().HistogramVec("lag_seconds", []string{"shard"}, 1e-3, 1e-2, 0.1, 1)
	v.With("2").Observe(0.05)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.With("2").Observe(0.05)
	}
}

// BenchmarkVecObserveParallel hammers one child from all procs —
// the contended shape of per-link counters under a flood.
func BenchmarkVecObserveParallel(b *testing.B) {
	v := NewRegistry().CounterVec("link_packets_total", "link")
	v.With("0").Inc()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			v.With("0").Inc()
		}
	})
}
