package metrics

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// A metric vector is a family of child metrics sharing one name and one
// ordered set of label names, keyed by label values — the dimensional
// model Prometheus scrapes ("stream_link_packets_total{link="3"}").
// Lookups on the observe path are lock-free: the children live in a
// read-mostly map behind an atomic pointer, and With builds its lookup
// key in a stack buffer, so resolving an already-seen label set costs a
// map read and zero allocations. First use of a new label set takes a
// mutex and copies the map (copy-on-write), which is fine for label
// sets with bounded cardinality (links, shards, outcomes, configs).

// vecChild pairs a child metric with the label values that key it, in
// label-name order, so exporters can render the series without parsing
// the map key back apart.
type vecChild[M any] struct {
	values []string
	metric M
}

// vec is the label-indexing core shared by CounterVec, GaugeVec, and
// HistogramVec.
type vec[M any] struct {
	name   string
	labels []string
	mk     func() M
	ptr    atomic.Pointer[map[string]*vecChild[M]]
	// hot caches the most recently resolved single-label child. Observe
	// paths are usually monotone in their label (a flood arrives on one
	// link; a worker owns one shard), so checking the cached child's
	// value — a pointer-equal string compare when the caller passes the
	// same string each time — skips the map hash entirely. Stale or
	// thrashing caches only cost the compare; the map remains the truth.
	hot atomic.Pointer[vecChild[M]]
	mu  sync.Mutex // guards copy-on-write inserts
}

func newVec[M any](name string, labels []string, mk func() M) *vec[M] {
	if len(labels) == 0 {
		panic(fmt.Sprintf("metrics: vector %q needs at least one label", name))
	}
	for _, l := range labels {
		if l == "" {
			panic(fmt.Sprintf("metrics: vector %q has an empty label name", name))
		}
	}
	v := &vec[M]{name: name, labels: append([]string(nil), labels...), mk: mk}
	m := make(map[string]*vecChild[M])
	v.ptr.Store(&m)
	return v
}

// keySep separates label values inside a child key. 0xff cannot appear
// in valid UTF-8 label values, so joined keys cannot collide.
const keySep = '\xff'

// with resolves the child metric for the given label values, creating
// it on first use. The hot path (seen label set) performs no
// allocation: the key is assembled in a stack buffer and the map is
// indexed with a string conversion the compiler does not materialize.
func (v *vec[M]) with(values []string) M {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("metrics: vector %q wants %d label values, got %d",
			v.name, len(v.labels), len(values)))
	}
	if len(values) == 1 {
		// Single-label vectors (the common per-link/per-shard case) skip
		// key assembly entirely: the value is the key.
		val := values[0]
		if c := v.hot.Load(); c != nil && c.values[0] == val {
			return c.metric
		}
		if c, ok := (*v.ptr.Load())[val]; ok {
			v.hot.Store(c)
			return c.metric
		}
		return v.create(val, values)
	}
	var arr [96]byte
	key := arr[:0]
	for i, val := range values {
		if i > 0 {
			key = append(key, keySep)
		}
		key = append(key, val...)
	}
	m := *v.ptr.Load()
	if c, ok := m[string(key)]; ok {
		return c.metric
	}
	return v.create(string(key), values)
}

// create inserts a child under the mutex, copy-on-write. Double-checks
// after acquiring the lock so racing first observers agree on one child.
func (v *vec[M]) create(key string, values []string) M {
	v.mu.Lock()
	defer v.mu.Unlock()
	old := *v.ptr.Load()
	if c, ok := old[key]; ok {
		return c.metric
	}
	next := make(map[string]*vecChild[M], len(old)+1)
	for k, c := range old {
		next[k] = c
	}
	c := &vecChild[M]{values: append([]string(nil), values...), metric: v.mk()}
	next[key] = c
	v.ptr.Store(&next)
	return c.metric
}

// children returns the current child set sorted by label values, for
// deterministic exposition.
func (v *vec[M]) children() []*vecChild[M] {
	m := *v.ptr.Load()
	out := make([]*vecChild[M], 0, len(m))
	for _, c := range m {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].values, out[j].values
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}

// LabelNames returns the vector's label names in order.
func (v *vec[M]) LabelNames() []string { return append([]string(nil), v.labels...) }

// childKey renders a child's identity as "label=value,label=value" — the
// key the JSON export and watch rules address children by.
func childKey(labels, values []string) string {
	n := 0
	for i := range labels {
		n += len(labels[i]) + len(values[i]) + 2
	}
	b := make([]byte, 0, n)
	for i := range labels {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, labels[i]...)
		b = append(b, '=')
		b = append(b, values[i]...)
	}
	return string(b)
}

// CounterVec is a family of counters keyed by label values.
type CounterVec struct {
	*vec[*Counter]
}

// With returns the counter for the label values (in label-name order),
// creating it on first use. Zero allocations for a seen label set.
func (v *CounterVec) With(values ...string) *Counter { return v.with(values) }

// Snapshot returns current child values keyed by "label=value,..".
func (v *CounterVec) Snapshot() map[string]any {
	out := make(map[string]any)
	for _, c := range v.children() {
		out[childKey(v.labels, c.values)] = c.metric.Value()
	}
	return out
}

// GaugeVec is a family of gauges keyed by label values.
type GaugeVec struct {
	*vec[*Gauge]
}

// With returns the gauge for the label values, creating it on first use.
func (v *GaugeVec) With(values ...string) *Gauge { return v.with(values) }

// Snapshot returns current child values keyed by "label=value,..".
func (v *GaugeVec) Snapshot() map[string]any {
	out := make(map[string]any)
	for _, c := range v.children() {
		out[childKey(v.labels, c.values)] = c.metric.Value()
	}
	return out
}

// HistogramVec is a family of histograms sharing one bucket layout,
// keyed by label values.
type HistogramVec struct {
	*vec[*Histogram]
}

// With returns the histogram for the label values, creating it on first
// use.
func (v *HistogramVec) With(values ...string) *Histogram { return v.with(values) }

// Snapshot returns current child snapshots keyed by "label=value,..".
func (v *HistogramVec) Snapshot() map[string]any {
	out := make(map[string]any)
	for _, c := range v.children() {
		out[childKey(v.labels, c.values)] = c.metric.Snapshot()
	}
	return out
}

// CounterVec returns the named counter vector, creating it with the
// label names on first use (label names are fixed at first
// registration; later lookups must pass a name registered as a
// CounterVec or the registry panics, like every other kind mismatch).
func (r *Registry) CounterVec(name string, labels ...string) *CounterVec {
	return register(r, name, func() *CounterVec {
		return &CounterVec{newVec(name, labels, func() *Counter { return &Counter{} })}
	})
}

// GaugeVec returns the named gauge vector, creating it with the label
// names on first use.
func (r *Registry) GaugeVec(name string, labels ...string) *GaugeVec {
	return register(r, name, func() *GaugeVec {
		return &GaugeVec{newVec(name, labels, func() *Gauge { return &Gauge{} })}
	})
}

// HistogramVec returns the named histogram vector, creating it with the
// label names and bucket bounds on first use (bounds are ignored on
// later lookups, like Registry.Histogram).
func (r *Registry) HistogramVec(name string, labels []string, bounds ...float64) *HistogramVec {
	return register(r, name, func() *HistogramVec {
		return &HistogramVec{newVec(name, labels, func() *Histogram { return NewHistogram(bounds) })}
	})
}
