package provenance

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"spooftrack/internal/bgp"
)

// Export is a point-in-time snapshot of the ledger, sorted by global
// sequence number. It is the unit Replay and Explain operate on and the
// payload the /explain endpoint and the JSON/DOT writers serialize.
type Export struct {
	Events []Event `json:"events"`
}

// Export snapshots the ledger. A nil ledger exports an empty timeline.
func (l *Ledger) Export() *Export {
	if l == nil {
		return &Export{}
	}
	var evs []Event
	for i := range l.shards {
		sh := &l.shards[i]
		sh.mu.Lock()
		evs = append(evs, sh.events...)
		sh.mu.Unlock()
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].Seq < evs[j].Seq })
	return &Export{Events: evs}
}

// WriteJSON writes the timeline as indented JSON.
func (e *Export) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(e)
}

// ParseExport reads a timeline previously written by WriteJSON.
func ParseExport(r io.Reader) (*Export, error) {
	var e Export
	if err := json.NewDecoder(r).Decode(&e); err != nil {
		return nil, fmt.Errorf("provenance: parse export: %w", err)
	}
	return &e, nil
}

// meta returns the stream meta event if present, else the first meta.
func (e *Export) meta() *MetaEvent {
	var first *MetaEvent
	for i := range e.Events {
		if m := e.Events[i].Meta; m != nil {
			if m.Component == "stream" {
				return m
			}
			if first == nil {
				first = m
			}
		}
	}
	return first
}

// finalVerdict returns the last verdict event, or nil.
func (e *Export) finalVerdict() *VerdictEvent {
	for i := len(e.Events) - 1; i >= 0; i-- {
		if v := e.Events[i].Verdict; v != nil {
			return v
		}
	}
	return nil
}

// WriteDOT renders the provenance graph in Graphviz DOT form: evidence
// leaves (configurations with their deploy/retry/degrade history and
// catchment rows, probe verdicts, quarantine transitions) feed round
// nodes, rounds chain into the evolving cluster state, and the final
// verdict node closes the chain. Node order follows the event timeline,
// so output is deterministic for a given ledger.
func (e *Export) WriteDOT(w io.Writer) error {
	var b strings.Builder
	b.WriteString("digraph provenance {\n")
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [shape=box, fontsize=10];\n")

	// Evidence leaves: one node per configuration seen in a deploy or
	// row event, annotated with attempts / retries / degradation.
	attempts := map[int]int{}
	retries := map[int]int{}
	degraded := map[int]string{}
	rows := map[int]*RowEvent{}
	var cfgOrder []int
	seenCfg := map[int]bool{}
	note := func(cfg int) {
		if !seenCfg[cfg] {
			seenCfg[cfg] = true
			cfgOrder = append(cfgOrder, cfg)
		}
	}
	for i := range e.Events {
		switch ev := &e.Events[i]; {
		case ev.Deploy != nil:
			note(ev.Deploy.Config)
			attempts[ev.Deploy.Config] = ev.Deploy.Attempts
		case ev.Retry != nil:
			note(ev.Retry.Config)
			retries[ev.Retry.Config]++
		case ev.Degrade != nil:
			note(ev.Degrade.Config)
			degraded[ev.Degrade.Config] = ev.Degrade.Phase
		case ev.Row != nil:
			note(ev.Row.Config)
			rows[ev.Row.Config] = ev.Row
		}
	}
	for _, cfg := range cfgOrder {
		label := fmt.Sprintf("config %d", cfg)
		if a := attempts[cfg]; a > 1 {
			label += fmt.Sprintf("\\n%d attempts", a)
		}
		if r := retries[cfg]; r > 0 {
			label += fmt.Sprintf("\\n%d retries", r)
		}
		if ph, ok := degraded[cfg]; ok {
			label += fmt.Sprintf("\\ndegraded (%s)", ph)
		}
		if row, ok := rows[cfg]; ok && row.Incomplete {
			label += "\\nrow incomplete"
		}
		style := ""
		if _, ok := degraded[cfg]; ok {
			style = ", style=dashed"
		}
		fmt.Fprintf(&b, "  cfg%d [label=\"%s\"%s];\n", cfg, label, style)
	}

	// Quarantine and probe evidence.
	for i := range e.Events {
		if q := e.Events[i].Quarantine; q != nil {
			fmt.Fprintf(&b, "  quar%d [label=\"link %d\\n%s -> %s\", shape=octagon];\n",
				e.Events[i].Seq, q.Link, q.From, q.To)
		}
		if p := e.Events[i].Probe; p != nil {
			fmt.Fprintf(&b, "  probe%d [label=\"probe AS %d\\n%s (%.2f)\", shape=ellipse];\n",
				e.Events[i].Seq, p.AS, p.Signal, p.Confidence)
		}
	}

	// Rounds chain through intermediate cluster states to the verdict.
	prevState := ""
	for i := range e.Events {
		ev := &e.Events[i]
		switch {
		case ev.Round != nil:
			r := ev.Round
			fmt.Fprintf(&b, "  round%d [label=\"round %d\\nconfig %d, %d pkts\"];\n",
				r.Round, r.Round, r.Config, r.Packets)
			fmt.Fprintf(&b, "  cfg%d -> round%d;\n", r.Config, r.Round)
			state := fmt.Sprintf("state%d", r.Round)
			fmt.Fprintf(&b, "  %s [label=\"%d clusters\\n%d candidates\", shape=oval];\n",
				state, r.Clusters, r.Candidates)
			fmt.Fprintf(&b, "  round%d -> %s;\n", r.Round, state)
			if prevState != "" {
				fmt.Fprintf(&b, "  %s -> round%d [style=dotted];\n", prevState, r.Round)
			}
			prevState = state
		case ev.Reconfig != nil:
			rc := ev.Reconfig
			fmt.Fprintf(&b, "  %s -> cfg%d [label=\"%s\", style=dashed];\n",
				orDefault(prevState, "start"), rc.Chosen, rc.Reason)
		}
	}

	if v := e.finalVerdict(); v != nil {
		fmt.Fprintf(&b, "  verdict [label=\"verdict (%s)\\n%d clusters, converged=%v\", shape=doubleoctagon];\n",
			v.Origin, v.Clusters, v.Converged)
		if prevState != "" {
			fmt.Fprintf(&b, "  %s -> verdict;\n", prevState)
		} else {
			for _, cfg := range cfgOrder {
				fmt.Fprintf(&b, "  cfg%d -> verdict;\n", cfg)
			}
		}
		for i := range e.Events {
			if p := e.Events[i].Probe; p != nil {
				fmt.Fprintf(&b, "  probe%d -> verdict [style=dotted];\n", e.Events[i].Seq)
			}
			if e.Events[i].Quarantine != nil {
				fmt.Fprintf(&b, "  quar%d -> verdict [style=dotted];\n", e.Events[i].Seq)
			}
		}
	}

	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

// rowsByConfig collects the latest catchment row per configuration.
func (e *Export) rowsByConfig() map[int][]bgp.LinkID {
	rows := map[int][]bgp.LinkID{}
	for i := range e.Events {
		if r := e.Events[i].Row; r != nil {
			rows[r.Config] = r.Catchment
		}
	}
	return rows
}
