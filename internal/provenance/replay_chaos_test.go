// Chaos replay: the tentpole acceptance test. A full closed loop —
// offline campaign plus live streaming attribution — runs under a
// fault-injection profile with the provenance ledger attached; then
// Replay re-derives every verdict purely from the exported ledger and
// must reproduce the live ones byte for byte, with the degradation
// events the faults caused present in the evidence chain. The external
// test package lets this file import the root spooftrack package (and
// transitively stream) without a cycle.
package provenance_test

import (
	"bytes"
	"net/netip"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spooftrack"
	"spooftrack/internal/amp"
	"spooftrack/internal/provenance"
	"spooftrack/internal/stream"
)

// chaosLoop runs the closed loop under the named fault profile with a
// ledger attached and returns the export alongside the live pipeline's
// final status.
func chaosLoop(t *testing.T, profile string, seed uint64) (*provenance.Export, stream.Status) {
	t.Helper()
	led := spooftrack.NewProvenanceLedger()

	params := spooftrack.DefaultTrackerParams(seed)
	tp := spooftrack.DefaultGenParams(seed)
	tp.NumASes = 300
	params.World.Topo = &tp
	params.World.MaxPoisonTargets = 10
	params.UseTruth = true
	params.FaultProfile = profile
	params.FaultSeed = seed
	retry := spooftrack.DefaultRetryPolicy()
	retry.MaxAttempts = 2
	retry.DegradeOnExhaust = true
	params.Retry = retry
	params.Ledger = led
	tracker, err := spooftrack.NewTracker(params)
	if err != nil {
		t.Fatalf("tracker under %s: %v", profile, err)
	}
	camp := tracker.Campaign

	var current atomic.Int32
	pipe, err := stream.New(stream.Attribution{
		Catchments: camp.Catchments,
		SourceASNs: tracker.SourceASNs(),
		NumLinks:   tracker.World.Platform.NumLinks(),
	}, stream.Config{
		Workers:         2,
		EvalInterval:    5 * time.Millisecond,
		MinRoundPackets: 50,
		Settle:          2 * time.Millisecond,
		Ledger:          led,
		Deploy: func(cfgIdx int, table map[uint32]uint8) {
			current.Store(int32(cfgIdx))
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Synthetic attacker: packets enter on whatever link the attacker's
	// catchment maps to under the currently deployed configuration
	// (degraded rows may say NoLink; those ticks send nothing, which is
	// exactly what a lost measurement looks like).
	attacker := camp.NumSources() / 2
	victim := netip.MustParseAddr("192.0.2.66")
	stop := make(chan struct{})
	var gen sync.WaitGroup
	gen.Add(1)
	go func() {
		defer gen.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			link := camp.Catchments[current.Load()][attacker]
			if link >= 0 {
				pipe.Ingest(amp.Event{
					Time:        time.Now(),
					IngressLink: uint8(link),
					SpoofedSrc:  victim,
					WireLen:     24,
				})
			}
			time.Sleep(50 * time.Microsecond)
		}
	}()

	deadline := time.After(20 * time.Second)
	for !pipe.Converged() {
		select {
		case <-deadline:
			t.Logf("did not converge under %s; replaying the partial run", profile)
			goto done
		case <-time.After(5 * time.Millisecond):
		}
	}
done:
	close(stop)
	gen.Wait()
	pipe.Close()
	return led.Export(), pipe.Status(0)
}

// TestReplayReproducesUnderFaultProfiles is the acceptance criterion:
// under both the chaos and probe-storm profiles, Replay over the
// exported ledger reproduces every live verdict byte for byte.
func TestReplayReproducesUnderFaultProfiles(t *testing.T) {
	if testing.Short() {
		t.Skip("full closed loop; skipped in -short")
	}
	for _, profile := range []string{"chaos", "probe-storm"} {
		profile := profile
		t.Run(profile, func(t *testing.T) {
			t.Parallel()
			export, st := chaosLoop(t, profile, 42)
			res, err := provenance.Replay(export)
			if err != nil {
				t.Fatal(err)
			}
			if res.Verdicts == 0 {
				t.Fatal("no verdicts recorded")
			}
			if st.Rounds > 0 && res.Rounds == 0 {
				t.Fatalf("live run folded %d rounds but the ledger replayed none", st.Rounds)
			}
			if !res.Reproduced {
				t.Fatalf("replay diverged from the live run: %v", res.Mismatches)
			}
			if res.Final == nil {
				t.Fatal("replay produced no final verdict")
			}

			// The degradations the profile caused must be visible in the
			// evidence chain: every degrade event in the export shows up
			// in some configuration's chain.
			degrades := 0
			for _, ev := range export.Events {
				if ev.Kind == provenance.KindDegrade {
					degrades++
				}
			}
			if degrades != res.Degraded {
				t.Fatalf("export has %d degrade events, replay saw %d", degrades, res.Degraded)
			}
			if profile == "chaos" && degrades == 0 {
				t.Fatal("chaos profile with MaxAttempts=2 produced no degradations; the chain cannot exercise the degraded path")
			}
			if degrades > 0 {
				ex, err := export.Explain(0)
				if err != nil {
					t.Fatal(err)
				}
				chained := 0
				for _, ch := range ex.Configs {
					chained += len(ch.Degraded)
				}
				if chained != degrades {
					t.Fatalf("explanation chains %d degrade events, export has %d", chained, degrades)
				}
			}
		})
	}
}

// TestReplayLedgerJSONRoundTrip re-runs the replay over a ledger that
// went through WriteJSON/ParseExport — the offline postmortem path: an
// operator saves the ledger file, a different process replays it.
func TestReplayLedgerJSONRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("full closed loop; skipped in -short")
	}
	export, _ := chaosLoop(t, "chaos", 7)
	var buf bytes.Buffer
	if err := export.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := provenance.ParseExport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	res, err := provenance.Replay(back)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reproduced {
		t.Fatalf("replay of the JSON round-tripped ledger diverged: %v", res.Mismatches)
	}
}
