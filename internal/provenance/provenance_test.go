package provenance

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"spooftrack/internal/bgp"
	"spooftrack/internal/metrics"
)

// fixedClock returns a deterministic clock for golden-file tests: the
// epoch plus one second per call.
func fixedClock() func() time.Time {
	n := 0
	base := time.Date(2024, 1, 2, 3, 4, 5, 0, time.UTC)
	return func() time.Time {
		n++
		return base.Add(time.Duration(n) * time.Second)
	}
}

func TestNilLedgerNoOps(t *testing.T) {
	var l *Ledger
	if l.Enabled() {
		t.Fatal("nil ledger reports enabled")
	}
	// Every Record* must be a safe no-op on nil.
	l.RecordMeta(MetaEvent{Component: "stream"})
	l.RecordDeploy(DeployEvent{Config: 1})
	l.RecordRetry(RetryEvent{Config: 1})
	l.RecordDegrade(DegradeEvent{Config: 1})
	l.RecordRow(RowEvent{Config: 1})
	l.RecordQuarantine(QuarantineEvent{Link: 0})
	l.RecordProbe(ProbeEvent{AS: 3})
	l.RecordRound(RoundEvent{Round: 1})
	l.RecordReconfig(ReconfigEvent{Round: 1})
	l.RecordVerdict(VerdictEvent{Origin: "stream"})
	l.Instrument(metrics.NewRegistry())
	if l.Len() != 0 {
		t.Fatalf("nil ledger Len = %d", l.Len())
	}
	e := l.Export()
	if len(e.Events) != 0 {
		t.Fatalf("nil ledger exported %d events", len(e.Events))
	}
}

func TestConcurrentAppendExportOrdering(t *testing.T) {
	l := New(Options{Shards: 4})
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.RecordRetry(RetryEvent{Config: w, Attempt: i})
			}
		}(w)
	}
	wg.Wait()
	if l.Len() != workers*per {
		t.Fatalf("Len = %d, want %d", l.Len(), workers*per)
	}
	e := l.Export()
	if len(e.Events) != workers*per {
		t.Fatalf("exported %d events, want %d", len(e.Events), workers*per)
	}
	for i, ev := range e.Events {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d: export not in global sequence order", i, ev.Seq)
		}
		if ev.Kind != KindRetry || ev.Retry == nil {
			t.Fatalf("event %d: kind %q payload %+v", i, ev.Kind, ev)
		}
	}
}

func TestRecordCopiesSlices(t *testing.T) {
	l := New(Options{})
	row := []bgp.LinkID{0, 1, 2}
	l.RecordRow(RowEvent{Config: 0, Catchment: row})
	vol := []float64{1, 2}
	l.RecordRound(RoundEvent{Round: 1, Volumes: vol})
	cand := []int{1, 2}
	assign := []int32{0, 1, 0}
	l.RecordVerdict(VerdictEvent{Origin: "stream", Candidates: cand, Assign: assign})
	row[0], vol[0], cand[0], assign[0] = 9, 9, 9, 9
	e := l.Export()
	if e.Events[0].Row.Catchment[0] != 0 {
		t.Fatal("RecordRow aliased the caller's catchment slice")
	}
	if e.Events[1].Round.Volumes[0] != 1 {
		t.Fatal("RecordRound aliased the caller's volume slice")
	}
	if e.Events[2].Verdict.Candidates[0] != 1 || e.Events[2].Verdict.Assign[0] != 0 {
		t.Fatal("RecordVerdict aliased the caller's slices")
	}
}

func TestInstrumentCountsByKind(t *testing.T) {
	reg := metrics.NewRegistry()
	l := New(Options{})
	l.Instrument(reg)
	l.RecordRound(RoundEvent{Round: 1})
	l.RecordRound(RoundEvent{Round: 2})
	l.RecordVerdict(VerdictEvent{Origin: "stream"})
	vec := reg.CounterVec("provenance_events_total", "kind")
	if got := vec.With(string(KindRound)).Value(); got != 2 {
		t.Fatalf("round counter = %d, want 2", got)
	}
	if got := vec.With(string(KindVerdict)).Value(); got != 1 {
		t.Fatalf("verdict counter = %d, want 1", got)
	}
}

// testExport builds a small synthetic run: 2 configs over 3 sources,
// one retry, one degrade on config 1, a quarantine flap, one probe
// verdict, one round, one reconfig, and a campaign-style final verdict.
// The verdict is the one campaignVerdict derives from the rows, so
// Replay reproduces it.
func testLedger() *Ledger {
	l := New(Options{Clock: fixedClock()})
	l.RecordMeta(MetaEvent{Component: "campaign", NumSources: 3, NumConfigs: 2, NumLinks: 2, UseTruth: true})
	l.RecordRetry(RetryEvent{Config: 0, Phase: "deploy", Attempt: 1, Error: "mux flap"})
	l.RecordDeploy(DeployEvent{Config: 0, Key: "k0", Attempts: 2, Phase: "isolation"})
	l.RecordRow(RowEvent{Config: 0, Catchment: []bgp.LinkID{0, 0, 1}})
	l.RecordDegrade(DegradeEvent{Config: 1, Phase: "measure", Error: "gone"})
	l.RecordRow(RowEvent{Config: 1, Catchment: []bgp.LinkID{-1, -1, -1}, Incomplete: true})
	l.RecordQuarantine(QuarantineEvent{Link: 1, From: "closed", To: "open"})
	l.RecordProbe(ProbeEvent{AS: 7, Source: 2, Link: 1, Signal: "can_spoof", Confidence: 0.97, Round: 1})
	l.RecordVerdict(VerdictEvent{Origin: "campaign", Assign: []int32{0, 0, 1}, Clusters: 2})
	return l
}

func TestExportJSONRoundTrip(t *testing.T) {
	e := testLedger().Export()
	var buf bytes.Buffer
	if err := e.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseExport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(e.Events, back.Events) {
		t.Fatalf("round trip changed events:\n  out: %+v\n  in:  %+v", e.Events, back.Events)
	}
}

// golden compares got against testdata/<name>, rewriting the file when
// -update is set via the UPDATE_GOLDEN env var.
func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (set UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

func TestWriteDOTGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := testLedger().Export().WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"cfg0", "cfg1", "quar", "probe", "verdict"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
	golden(t, "ledger.dot", buf.Bytes())
}

func TestWriteJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := testLedger().Export().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden(t, "ledger.json", buf.Bytes())
}

func TestVerdicts(t *testing.T) {
	e := testLedger().Export()
	vs := e.Verdicts()
	if len(vs) != 1 {
		t.Fatalf("Verdicts = %+v, want one entry", vs)
	}
	v := vs[0]
	if v.Origin != "campaign" || v.Clusters != 2 || !v.Final {
		t.Fatalf("verdict summary = %+v", v)
	}
	if got := (&Export{}).Verdicts(); len(got) != 0 {
		t.Fatalf("empty export Verdicts = %+v", got)
	}
}

func TestExplain(t *testing.T) {
	e := testLedger().Export()
	if _, err := e.Explain(-1); err == nil {
		t.Fatal("Explain(-1) succeeded")
	}
	if _, err := e.Explain(2); err == nil {
		t.Fatal("Explain(2) succeeded on a 2-cluster verdict")
	}
	if _, err := (&Export{}).Explain(0); err == nil {
		t.Fatal("Explain on an empty export succeeded")
	}

	ex, err := e.Explain(0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ex.Members, []int{0, 1}) {
		t.Fatalf("cluster 0 members = %v, want [0 1]", ex.Members)
	}
	// Every configuration the ledger saw must have a chain entry.
	if len(ex.Configs) != 2 {
		t.Fatalf("configs = %+v, want chains for configs 0 and 1", ex.Configs)
	}
	c0, c1 := ex.Configs[0], ex.Configs[1]
	if c0.Config != 0 || !c0.Deployed || c0.Attempts != 2 || len(c0.Retries) != 1 || c0.Row == nil {
		t.Fatalf("config 0 chain = %+v", c0)
	}
	if !reflect.DeepEqual(c0.MemberLinks, []bgp.LinkID{0, 0}) {
		t.Fatalf("config 0 member links = %v", c0.MemberLinks)
	}
	if c1.Config != 1 || c1.Deployed || len(c1.Degraded) != 1 || c1.Row == nil || !c1.Row.Incomplete {
		t.Fatalf("config 1 chain = %+v", c1)
	}
	// Probe and quarantine evidence rides along; the probe targets
	// source 2 (cluster 1), so it is not a member probe of cluster 0.
	if len(ex.Probes) != 1 || len(ex.MemberProbes) != 0 || len(ex.Quarantines) != 1 {
		t.Fatalf("evidence = probes %+v member %v quarantines %+v", ex.Probes, ex.MemberProbes, ex.Quarantines)
	}
	// The embedded replay check must pass: the recorded verdict is the
	// refinement of the recorded rows.
	if !ex.Replay.Reproduced || ex.Replay.Error != "" {
		t.Fatalf("embedded replay failed: %+v", ex.Replay)
	}

	// Cluster 1 sees the probe as a member probe.
	ex1, err := e.Explain(1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ex1.Members, []int{2}) || len(ex1.MemberProbes) != 1 {
		t.Fatalf("cluster 1 = members %v memberProbes %v", ex1.Members, ex1.MemberProbes)
	}
}

func TestReplayDetectsTamperedVerdict(t *testing.T) {
	l := New(Options{Clock: fixedClock()})
	l.RecordMeta(MetaEvent{Component: "campaign", NumSources: 3, NumConfigs: 1, NumLinks: 2})
	l.RecordRow(RowEvent{Config: 0, Catchment: []bgp.LinkID{0, 0, 1}})
	// A verdict the rows do not support: sources 0 and 2 together.
	l.RecordVerdict(VerdictEvent{Origin: "campaign", Assign: []int32{0, 1, 0}, Clusters: 2})
	res, err := Replay(l.Export())
	if err != nil {
		t.Fatal(err)
	}
	if res.Reproduced || len(res.Mismatches) == 0 {
		t.Fatalf("tampered verdict replayed clean: %+v", res)
	}
}

func TestReplayEmptyExport(t *testing.T) {
	if _, err := Replay(&Export{}); err == nil {
		t.Fatal("Replay of an empty export succeeded")
	}
}
