package provenance

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"

	"spooftrack/internal/bgp"
	"spooftrack/internal/cluster"
	"spooftrack/internal/sched"
	"spooftrack/internal/spoof"
)

// ReplayResult is the outcome of re-running localization from a ledger.
type ReplayResult struct {
	// Rounds / Reconfigs / Verdicts count the events re-executed.
	Rounds    int `json:"rounds"`
	Reconfigs int `json:"reconfigs"`
	Verdicts  int `json:"verdicts"`
	// Degraded counts degradation events present in the chain (under
	// chaos profiles these must appear for the replay to be honest
	// about what the live run actually saw).
	Degraded int `json:"degraded"`
	// Final is the last verdict as recomputed by the replay.
	Final *VerdictEvent `json:"final,omitempty"`
	// Reproduced is true when every recorded verdict and decision was
	// reproduced byte-for-byte.
	Reproduced bool `json:"reproduced"`
	// Mismatches describes every divergence found (empty when
	// Reproduced).
	Mismatches []string `json:"mismatches,omitempty"`
}

// replayState is the per-component (campaign or stream) decision state
// reconstructed from the ledger.
type replayState struct {
	meta       *MetaEvent
	rows       [][]bgp.LinkID
	part       *cluster.Partition
	loc        *spoof.IncrementalLocalizer
	used       []bool
	current    int
	candidates []int
	// Fold-time snapshot consumed by the reconfig/verdict that follow
	// the round event.
	estVol    []float64
	topSize   int
	canSplit  bool
	lastRound int
}

// Replay re-runs classification and localization purely from the
// recorded ledger — the same refinement, localizer, volume-ranking,
// and greedy scheduling code the live pipeline ran, driven only by
// recorded catchment rows and round volumes — and asserts that every
// recorded verdict and reconfiguration decision is reproduced
// byte-for-byte. It never consults live state, so a ledger exported
// from one process replays identically anywhere.
func Replay(e *Export) (*ReplayResult, error) {
	if e == nil || len(e.Events) == 0 {
		return nil, fmt.Errorf("provenance: replay of empty ledger")
	}
	res := &ReplayResult{}
	states := map[string]*replayState{}
	rows := e.rowsByConfig()

	state := func(component string) *replayState {
		if st := states[component]; st != nil {
			return st
		}
		return nil
	}

	for i := range e.Events {
		ev := &e.Events[i]
		switch {
		case ev.Meta != nil:
			m := ev.Meta
			st := &replayState{
				meta:    m,
				part:    cluster.New(m.NumSources),
				loc:     spoof.NewIncrementalLocalizer(m.NumSources),
				used:    make([]bool, m.NumConfigs),
				current: m.InitialConfig,
				topSize: -1,
			}
			if m.InitialConfig >= 0 && m.InitialConfig < len(st.used) {
				st.used[m.InitialConfig] = true
			}
			st.rows = rowTable(rows, m.NumConfigs, m.NumSources)
			states[m.Component] = st

		case ev.Degrade != nil:
			res.Degraded++

		case ev.Round != nil:
			st := state("stream")
			if st == nil {
				return nil, fmt.Errorf("provenance: round event %d before stream meta", ev.Seq)
			}
			res.Rounds++
			r := ev.Round
			if r.Config != st.current {
				res.Mismatches = append(res.Mismatches, fmt.Sprintf(
					"round %d folded config %d, replay expected %d", r.Round, r.Config, st.current))
			}
			// Rebuild the rows table late if the round references a row
			// recorded after the meta event (stream re-measurement).
			row := st.rowFor(r.Config, rows)
			st.loc.AddRound(row, r.Volumes)
			st.part.Refine(row)
			st.candidates = st.loc.Candidates(st.meta.MaxMisses)
			st.lastRound = r.Round
			if got := st.part.NumClusters(); got != r.Clusters {
				res.Mismatches = append(res.Mismatches, fmt.Sprintf(
					"round %d: %d clusters recorded, replay got %d", r.Round, r.Clusters, got))
			}
			if got := len(st.candidates); got != r.Candidates {
				res.Mismatches = append(res.Mismatches, fmt.Sprintf(
					"round %d: %d candidates recorded, replay got %d", r.Round, r.Candidates, got))
			}
			// Fold-time decision inputs, exactly as the controller
			// computed them (before any reconfiguration marks a
			// configuration used).
			st.estVol = estimateVolumes(row, st.candidates, r.Volumes)
			topID, topSize := topVolumeCluster(st.part, st.candidates, st.estVol)
			st.topSize = topSize
			st.canSplit = false
			if topSize > st.meta.SplitThreshold {
				st.canSplit = splittable(st.rows, st.used, st.part.MembersOf(topID))
			}

		case ev.Reconfig != nil:
			st := state("stream")
			if st == nil {
				return nil, fmt.Errorf("provenance: reconfig event %d before stream meta", ev.Seq)
			}
			res.Reconfigs++
			rc := ev.Reconfig
			blocked := blockedMask(rc.Blocked, len(st.used))
			var next int
			switch rc.Reason {
			case "remeasure":
				next = sched.NextRemeasure(st.rows, rc.Hints, st.used, blocked)
			default:
				var scores []sched.ConfigScore
				next, scores = sched.NextGreedyVolumeScored(st.part, st.rows, st.estVol, st.used, blocked)
				if rc.Beaten != nil {
					if diff := diffScores(rc.Beaten, scores); diff != "" {
						res.Mismatches = append(res.Mismatches, fmt.Sprintf(
							"reconfig after round %d: candidate scores diverge: %s", rc.Round, diff))
					}
				}
			}
			if next != rc.Chosen {
				res.Mismatches = append(res.Mismatches, fmt.Sprintf(
					"reconfig after round %d (%s): chose %d, replay chose %d", rc.Round, rc.Reason, rc.Chosen, next))
			}
			if rc.Chosen >= 0 && rc.Chosen < len(st.used) {
				st.used[rc.Chosen] = true
				st.current = rc.Chosen
			}

		case ev.Verdict != nil:
			res.Verdicts++
			v := ev.Verdict
			var recomputed *VerdictEvent
			switch v.Origin {
			case "campaign":
				st := state("campaign")
				if st == nil {
					return nil, fmt.Errorf("provenance: campaign verdict %d before campaign meta", ev.Seq)
				}
				recomputed = campaignVerdict(st, rows)
			default:
				st := state("stream")
				if st == nil {
					return nil, fmt.Errorf("provenance: stream verdict %d before stream meta", ev.Seq)
				}
				recomputed = &VerdictEvent{
					Origin:     "stream",
					Round:      st.lastRound,
					Candidates: st.candidates,
					Assign:     st.part.Assignments(),
					Clusters:   st.part.NumClusters(),
					Converged:  st.topSize >= 0 && !st.canSplit,
				}
			}
			if diff := diffVerdicts(v, recomputed); diff != "" {
				res.Mismatches = append(res.Mismatches, fmt.Sprintf(
					"verdict (%s, round %d): %s", v.Origin, v.Round, diff))
			}
			res.Final = recomputed
		}
	}

	res.Reproduced = len(res.Mismatches) == 0
	return res, nil
}

// rowFor returns the catchment row for a configuration, preferring the
// table built at meta time and falling back to the global row map.
func (st *replayState) rowFor(cfg int, rows map[int][]bgp.LinkID) []bgp.LinkID {
	if cfg >= 0 && cfg < len(st.rows) && st.rows[cfg] != nil {
		return st.rows[cfg]
	}
	if r, ok := rows[cfg]; ok {
		return r
	}
	return make([]bgp.LinkID, st.meta.NumSources)
}

// rowTable materializes the dense per-configuration catchment table.
// Configurations without a recorded row replay as all-unobserved.
func rowTable(rows map[int][]bgp.LinkID, numConfigs, numSources int) [][]bgp.LinkID {
	table := make([][]bgp.LinkID, numConfigs)
	for c := range table {
		if r, ok := rows[c]; ok && len(r) == numSources {
			table[c] = r
			continue
		}
		blank := make([]bgp.LinkID, numSources)
		for k := range blank {
			blank[k] = bgp.NoLink
		}
		table[c] = blank
	}
	return table
}

// estimateVolumes mirrors stream.estimateVolumesLocked: each candidate
// whose catchment under the folded configuration is link l receives an
// equal share of volumes[l].
func estimateVolumes(row []bgp.LinkID, candidates []int, volumes []float64) []float64 {
	onLink := make([]int, len(volumes))
	for _, k := range candidates {
		if l := row[k]; l != bgp.NoLink && int(l) < len(onLink) {
			onLink[l]++
		}
	}
	est := make([]float64, len(row))
	for _, k := range candidates {
		if l := row[k]; l != bgp.NoLink && int(l) < len(volumes) && onLink[l] > 0 {
			est[k] = volumes[l] / float64(onLink[l])
		}
	}
	return est
}

// topVolumeCluster mirrors stream.topVolumeClusterLocked: the candidate
// cluster carrying the most estimated volume (ties toward the lowest
// cluster id), or (-1, -1) when no candidate carries volume.
func topVolumeCluster(p *cluster.Partition, candidates []int, estVol []float64) (clusterID, size int) {
	volByCluster := make(map[int]float64)
	for _, k := range candidates {
		if estVol[k] > 0 {
			volByCluster[p.ClusterOf(k)] += estVol[k]
		}
	}
	best, bestVol := -1, 0.0
	for c, v := range volByCluster {
		if best == -1 || v > bestVol || (v == bestVol && c < best) {
			best, bestVol = c, v
		}
	}
	if best == -1 {
		return -1, -1
	}
	return best, len(p.MembersOf(best))
}

// splittable mirrors stream.splittableLocked: does any unused
// configuration map the cluster members to more than one ingress link?
func splittable(rows [][]bgp.LinkID, used []bool, members []int) bool {
	if len(members) < 2 {
		return false
	}
	for cfg, row := range rows {
		if used[cfg] {
			continue
		}
		first := row[members[0]]
		for _, k := range members[1:] {
			if row[k] != first {
				return true
			}
		}
	}
	return false
}

// campaignVerdict refines a fresh partition over the campaign's rows in
// configuration order — exactly Campaign.FinalPartition.
func campaignVerdict(st *replayState, rows map[int][]bgp.LinkID) *VerdictEvent {
	p := cluster.New(st.meta.NumSources)
	cfgs := make([]int, 0, len(rows))
	for c := range rows {
		cfgs = append(cfgs, c)
	}
	sort.Ints(cfgs)
	for _, c := range cfgs {
		if row := rows[c]; len(row) == st.meta.NumSources {
			p.Refine(row)
		}
	}
	return &VerdictEvent{
		Origin:   "campaign",
		Assign:   p.Assignments(),
		Clusters: p.NumClusters(),
	}
}

// blockedMask expands a recorded blocked-configuration list to a mask.
func blockedMask(blocked []int, n int) []bool {
	if len(blocked) == 0 {
		return nil
	}
	mask := make([]bool, n)
	for _, c := range blocked {
		if c >= 0 && c < n {
			mask[c] = true
		}
	}
	return mask
}

// diffVerdicts compares two verdicts byte-for-byte via their canonical
// JSON encodings and describes the first divergence.
func diffVerdicts(recorded, recomputed *VerdictEvent) string {
	a, err := json.Marshal(recorded)
	if err != nil {
		return fmt.Sprintf("marshal recorded: %v", err)
	}
	b, err := json.Marshal(recomputed)
	if err != nil {
		return fmt.Sprintf("marshal recomputed: %v", err)
	}
	if !bytes.Equal(a, b) {
		return fmt.Sprintf("recorded %s != replayed %s", a, b)
	}
	return ""
}

// diffScores compares a recorded candidate-score set against the
// replayed one.
func diffScores(recorded []CandidateScore, replayed []sched.ConfigScore) string {
	if len(recorded) != len(replayed) {
		return fmt.Sprintf("%d candidates recorded, %d replayed", len(recorded), len(replayed))
	}
	for i := range recorded {
		if recorded[i].Config != replayed[i].Config || recorded[i].Score != replayed[i].Score {
			return fmt.Sprintf("candidate %d: recorded {%d %g}, replayed {%d %g}",
				i, recorded[i].Config, recorded[i].Score, replayed[i].Config, replayed[i].Score)
		}
	}
	return ""
}
