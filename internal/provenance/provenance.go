// Package provenance is the decision-provenance ledger: an append-only,
// lock-sharded record of every input that shaped a localization verdict
// — deployed configurations and their catchment rows, retry / degrade /
// quarantine events from the fault substrate, probe-channel verdicts
// with confidences, each stream round fold, and every greedy
// reconfiguration decision together with the candidate set it beat. The
// paper's end product is an accusation ("this AS forwards spoofed
// packets"); the ledger is what lets an operator justify it before
// filing an abuse report: the full measurement trail exports as a JSON
// timeline or a DOT provenance graph, and Replay re-runs localization
// purely from the recorded events, asserting it reproduces the live
// verdict byte for byte — a black-box flight recorder for postmortems.
//
// The package follows internal/trace's nil fast path: a nil *Ledger is
// valid and permanently disabled, and every method is a nil-safe no-op,
// so instrumented hot paths pay one nil check per event site when
// provenance is off:
//
//	led.Round(provenance.RoundEvent{...}) // no-op when led == nil
//
// Appends are lock-sharded by sequence number so concurrent producers
// (campaign deploy workers, the stream controller, the probe scan loop)
// do not serialize on one mutex; Export merges the shards back into
// global sequence order.
package provenance

import (
	"sync"
	"sync/atomic"
	"time"

	"spooftrack/internal/bgp"
	"spooftrack/internal/metrics"
)

// Kind tags an event with its evidence type.
type Kind string

// Event kinds, in rough pipeline order.
const (
	// KindMeta opens a component's event stream (campaign or stream)
	// and carries the dimensions Replay needs.
	KindMeta Kind = "meta"
	// KindDeploy records one configuration's deployment (with attempts).
	KindDeploy Kind = "deploy"
	// KindRetry records one retried deploy/measure attempt.
	KindRetry Kind = "retry"
	// KindDegrade records a configuration permanently lost to faults.
	KindDegrade Kind = "degrade"
	// KindRow records a configuration's final catchment row — the
	// evidence clustering and localization consume.
	KindRow Kind = "catchment_row"
	// KindQuarantine records a link circuit-breaker transition.
	KindQuarantine Kind = "quarantine"
	// KindProbe records a promoted probe-channel verdict.
	KindProbe Kind = "probe_verdict"
	// KindRound records one stream round fold (config, volumes, state).
	KindRound Kind = "round"
	// KindReconfig records a greedy reconfiguration decision and the
	// candidate set it beat.
	KindReconfig Kind = "reconfig"
	// KindVerdict records the attribution verdict after a fold (or the
	// campaign's final partition).
	KindVerdict Kind = "verdict"
	// KindMembership records a sharded-ingest membership transition
	// (shard joined, drained, evicted, or restored).
	KindMembership Kind = "membership"
	// KindFailover records a controller leadership transition: a lease
	// acquired at a new term, an abdication, or a failover recovery.
	KindFailover Kind = "failover"
)

// Event is one ledger entry: a global sequence number, a wall-clock
// stamp (never consulted by Replay), the kind, and exactly one non-nil
// payload matching the kind.
type Event struct {
	Seq  uint64    `json:"seq"`
	Wall time.Time `json:"wall"`
	Kind Kind      `json:"kind"`

	Meta       *MetaEvent       `json:"meta,omitempty"`
	Deploy     *DeployEvent     `json:"deploy,omitempty"`
	Retry      *RetryEvent      `json:"retry,omitempty"`
	Degrade    *DegradeEvent    `json:"degrade,omitempty"`
	Row        *RowEvent        `json:"row,omitempty"`
	Quarantine *QuarantineEvent `json:"quarantine,omitempty"`
	Probe      *ProbeEvent      `json:"probe,omitempty"`
	Round      *RoundEvent      `json:"round,omitempty"`
	Reconfig   *ReconfigEvent   `json:"reconfig,omitempty"`
	Verdict    *VerdictEvent    `json:"verdict,omitempty"`
	Membership *MembershipEvent `json:"membership,omitempty"`
	Failover   *FailoverEvent   `json:"failover,omitempty"`
}

// MetaEvent opens a component's stream of events and fixes the
// dimensions Replay validates against.
type MetaEvent struct {
	// Component is "campaign" (offline deployment) or "stream" (the
	// live closed loop).
	Component string `json:"component"`
	// NumSources / NumConfigs / NumLinks size the evidence matrices.
	NumSources int `json:"num_sources"`
	NumConfigs int `json:"num_configs"`
	NumLinks   int `json:"num_links"`
	// MaxMisses, SplitThreshold, NoiseFloor, and InitialConfig are the
	// stream controller's decision parameters (zero for campaigns).
	MaxMisses      int     `json:"max_misses,omitempty"`
	SplitThreshold int     `json:"split_threshold,omitempty"`
	NoiseFloor     float64 `json:"noise_floor,omitempty"`
	InitialConfig  int     `json:"initial_config,omitempty"`
	// UseTruth marks a campaign that read catchments off the engine.
	UseTruth bool `json:"use_truth,omitempty"`
}

// DeployEvent records one configuration deployment.
type DeployEvent struct {
	Config int `json:"config"`
	// Key is the canonical announcement key (bgp.Config.Key).
	Key string `json:"key,omitempty"`
	// Attempts is how many deployment attempts the configuration took
	// (1 on a clean deploy).
	Attempts int `json:"attempts"`
	// Phase names the plan phase that generated the configuration.
	Phase string `json:"phase,omitempty"`
}

// RetryEvent records one retried attempt of a faulted phase.
type RetryEvent struct {
	Config int `json:"config"`
	// Phase is "deploy" or "measure".
	Phase   string `json:"phase"`
	Attempt int    `json:"attempt"`
	Error   string `json:"error,omitempty"`
}

// DegradeEvent records a configuration permanently lost to faults: its
// catchment row stays all-unknown and the final clustering is provably
// a coarsening of the fault-free one.
type DegradeEvent struct {
	Config int    `json:"config"`
	Phase  string `json:"phase"`
	Error  string `json:"error,omitempty"`
}

// RowEvent records a configuration's final catchment row — Replay's
// ground truth for refinement and localization.
type RowEvent struct {
	Config int `json:"config"`
	// Catchment[k] is source k's ingress link (bgp.NoLink = -1 when
	// unobserved).
	Catchment []bgp.LinkID `json:"catchment"`
	// Incomplete marks a row degraded to all-unknown by faults.
	Incomplete bool `json:"incomplete,omitempty"`
}

// QuarantineEvent records a peering-link circuit-breaker transition.
type QuarantineEvent struct {
	Link int    `json:"link"`
	From string `json:"from"`
	To   string `json:"to"`
}

// ProbeEvent records one promoted probe-channel verdict: the second
// evidence channel's contribution for one AS.
type ProbeEvent struct {
	// AS is the dense topology index probed; Source is the campaign
	// source position it maps to (-1 when the AS is not a source).
	AS     int `json:"as"`
	Source int `json:"source"`
	// Link is the measured ingress link (-1 unknown).
	Link int `json:"link"`
	// Signal is the promoted spoofability signal ("can_spoof",
	// "cannot_spoof").
	Signal     string  `json:"signal"`
	Confidence float64 `json:"confidence"`
	// Round is the probe scan round that promoted the verdict.
	Round int `json:"round"`
}

// RoundEvent records one stream round fold. Volumes are the post-noise-
// floor per-link volumes exactly as folded, so Replay recomputes the
// identical localizer and partition transitions.
type RoundEvent struct {
	Round      int       `json:"round"`
	Config     int       `json:"config"`
	Packets    int64     `json:"packets"`
	Volumes    []float64 `json:"volumes"`
	Clusters   int       `json:"clusters"`
	Candidates int       `json:"candidates"`
}

// CandidateScore is one scheduling candidate and the score it achieved
// in a greedy reconfiguration decision (lower is better).
type CandidateScore struct {
	Config int     `json:"config"`
	Score  float64 `json:"score"`
}

// ReconfigEvent records one online reconfiguration decision: what was
// chosen, why, and the full candidate set it beat.
type ReconfigEvent struct {
	Round  int `json:"round"`
	Chosen int `json:"chosen"`
	// Reason is "split" (greedy volume-weighted refinement) or
	// "remeasure" (probe-conflict re-measurement hint).
	Reason string `json:"reason"`
	// Beaten lists every eligible candidate with its score (the chosen
	// configuration included), ascending by config index.
	Beaten []CandidateScore `json:"beaten,omitempty"`
	// Blocked lists configurations quarantine routed around.
	Blocked []int `json:"blocked,omitempty"`
	// Hints lists the re-measurement hint sources (reason "remeasure").
	Hints []int `json:"hints,omitempty"`
}

// VerdictEvent is the attribution verdict after a fold: the surviving
// candidate set and the cluster partition bounding localization
// precision. Cluster ids are dense and ordered by first occurrence
// (cluster.Partition.Refine's determinism), so Replay reproduces them
// exactly.
type VerdictEvent struct {
	// Origin is "stream" (per-fold verdict) or "campaign" (final
	// partition of the offline campaign).
	Origin string `json:"origin"`
	Round  int    `json:"round,omitempty"`
	// Candidates are the source positions still consistent with every
	// folded round (nil for campaign verdicts).
	Candidates []int `json:"candidates,omitempty"`
	// Assign[k] is source k's cluster id.
	Assign   []int32 `json:"assign"`
	Clusters int     `json:"clusters"`
	// Converged mirrors the controller's convergence flag.
	Converged bool `json:"converged,omitempty"`
}

// MembershipEvent records one sharded-ingest membership transition —
// the ledger's answer to "why is localization coarser than expected":
// a drained shard re-hashes its sources onto the survivors with no data
// loss, an evicted one forces discarded rounds and an explicit
// coarsening.
type MembershipEvent struct {
	// Node is the shard's id.
	Node string `json:"node"`
	// Action is "join", "drain" (SLO-breaching but reachable: final
	// harvest collected, range re-hashed), "evict" (unreachable past the
	// retry budget: rounds discarded), or "restore" (re-applied state
	// after failover recovery).
	Action string `json:"action"`
	Epoch  int64  `json:"epoch"`
	Term   uint64 `json:"term,omitempty"`
	Reason string `json:"reason,omitempty"`
}

// FailoverEvent records a controller leadership transition.
type FailoverEvent struct {
	// Action is "elect" (lease acquired at a new term), "abdicate"
	// (lease renewal failed), or "recover" (evaluator state restored
	// from the highest-epoch shard snapshot after election).
	Action string `json:"action"`
	Leader string `json:"leader"`
	Term   uint64 `json:"term"`
	Epoch  int64  `json:"epoch,omitempty"`
	// Rounds is the number of folded rounds recovered (action "recover").
	Rounds int    `json:"rounds,omitempty"`
	Reason string `json:"reason,omitempty"`
}

// Options configures a Ledger.
type Options struct {
	// Shards is the number of append shards (rounded up to a power of
	// two; default 8).
	Shards int
	// Clock overrides the wall-clock source (tests; default time.Now).
	Clock func() time.Time
}

// Ledger is the append-only evidence ledger. All methods are safe for
// concurrent use; a nil *Ledger is valid and drops everything.
type Ledger struct {
	seq    atomic.Uint64
	mask   uint64
	shards []ledgerShard
	now    func() time.Time

	// kindC mirrors appends into a labeled counter family once
	// Instrument attaches one (provenance_events_total{kind}).
	mu    sync.Mutex
	kindC map[Kind]*metrics.Counter
	vec   *metrics.CounterVec
}

type ledgerShard struct {
	mu     sync.Mutex
	events []Event
}

// New builds an enabled ledger. To run with provenance off, keep a nil
// *Ledger instead — every method no-ops.
func New(opts Options) *Ledger {
	ns := 1
	for ns < opts.Shards || (opts.Shards <= 0 && ns < 8) {
		ns <<= 1
	}
	now := opts.Clock
	if now == nil {
		now = time.Now
	}
	return &Ledger{mask: uint64(ns - 1), shards: make([]ledgerShard, ns), now: now}
}

// Enabled reports whether events are being recorded.
func (l *Ledger) Enabled() bool { return l != nil }

// append assigns the event a global sequence number and a wall stamp
// and stores it in the shard the sequence hashes to.
func (l *Ledger) append(ev Event) {
	ev.Seq = l.seq.Add(1)
	ev.Wall = l.now()
	sh := &l.shards[ev.Seq&l.mask]
	sh.mu.Lock()
	sh.events = append(sh.events, ev)
	sh.mu.Unlock()
	l.mu.Lock()
	c := l.kindC[ev.Kind]
	if c == nil && l.vec != nil {
		c = l.vec.With(string(ev.Kind))
		l.kindC[ev.Kind] = c
	}
	l.mu.Unlock()
	if c != nil {
		c.Inc()
	}
}

// RecordMeta appends a component meta event.
func (l *Ledger) RecordMeta(m MetaEvent) {
	if l == nil {
		return
	}
	l.append(Event{Kind: KindMeta, Meta: &m})
}

// RecordDeploy appends a configuration deployment.
func (l *Ledger) RecordDeploy(d DeployEvent) {
	if l == nil {
		return
	}
	l.append(Event{Kind: KindDeploy, Deploy: &d})
}

// RecordRetry appends a retried attempt.
func (l *Ledger) RecordRetry(r RetryEvent) {
	if l == nil {
		return
	}
	l.append(Event{Kind: KindRetry, Retry: &r})
}

// RecordDegrade appends a permanent configuration loss.
func (l *Ledger) RecordDegrade(d DegradeEvent) {
	if l == nil {
		return
	}
	l.append(Event{Kind: KindDegrade, Degrade: &d})
}

// RecordRow appends a configuration's catchment row. The row is copied.
func (l *Ledger) RecordRow(r RowEvent) {
	if l == nil {
		return
	}
	r.Catchment = append([]bgp.LinkID(nil), r.Catchment...)
	l.append(Event{Kind: KindRow, Row: &r})
}

// RecordRowShared is RecordRow without the defensive copy: the ledger
// retains the caller's Catchment slice, so the caller must never
// mutate it afterwards. The campaign uses this for its catchment
// matrix — immutable once RunCampaign returns — where copying hundreds
// of rows would be the ledger's dominant cost.
func (l *Ledger) RecordRowShared(r RowEvent) {
	if l == nil {
		return
	}
	l.append(Event{Kind: KindRow, Row: &r})
}

// RecordQuarantine appends a breaker transition.
func (l *Ledger) RecordQuarantine(q QuarantineEvent) {
	if l == nil {
		return
	}
	l.append(Event{Kind: KindQuarantine, Quarantine: &q})
}

// RecordProbe appends a promoted probe verdict.
func (l *Ledger) RecordProbe(p ProbeEvent) {
	if l == nil {
		return
	}
	l.append(Event{Kind: KindProbe, Probe: &p})
}

// RecordRound appends a stream round fold. Volumes are copied.
func (l *Ledger) RecordRound(r RoundEvent) {
	if l == nil {
		return
	}
	r.Volumes = append([]float64(nil), r.Volumes...)
	l.append(Event{Kind: KindRound, Round: &r})
}

// RecordReconfig appends a reconfiguration decision.
func (l *Ledger) RecordReconfig(r ReconfigEvent) {
	if l == nil {
		return
	}
	l.append(Event{Kind: KindReconfig, Reconfig: &r})
}

// RecordVerdict appends an attribution verdict. Slices are copied.
func (l *Ledger) RecordVerdict(v VerdictEvent) {
	if l == nil {
		return
	}
	v.Candidates = append([]int(nil), v.Candidates...)
	v.Assign = append([]int32(nil), v.Assign...)
	l.append(Event{Kind: KindVerdict, Verdict: &v})
}

// RecordMembership appends a sharded-ingest membership transition.
func (l *Ledger) RecordMembership(m MembershipEvent) {
	if l == nil {
		return
	}
	l.append(Event{Kind: KindMembership, Membership: &m})
}

// RecordFailover appends a controller leadership transition.
func (l *Ledger) RecordFailover(f FailoverEvent) {
	if l == nil {
		return
	}
	l.append(Event{Kind: KindFailover, Failover: &f})
}

// Len returns the number of recorded events.
func (l *Ledger) Len() int {
	if l == nil {
		return 0
	}
	n := 0
	for i := range l.shards {
		sh := &l.shards[i]
		sh.mu.Lock()
		n += len(sh.events)
		sh.mu.Unlock()
	}
	return n
}

// Instrument mirrors appends into reg as
// provenance_events_total{kind=...} and exposes the ledger size as the
// provenance_ledger_events gauge. Events recorded before Instrument are
// not replayed into the counters.
func (l *Ledger) Instrument(reg *metrics.Registry) {
	if l == nil || reg == nil {
		return
	}
	vec := reg.CounterVec("provenance_events_total", "kind")
	l.mu.Lock()
	l.vec = vec
	l.kindC = make(map[Kind]*metrics.Counter)
	l.mu.Unlock()
	reg.GaugeFunc("provenance_ledger_events", func() float64 {
		return float64(l.Len())
	})
}
