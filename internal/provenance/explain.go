package provenance

import (
	"fmt"
	"sort"

	"spooftrack/internal/bgp"
)

// This file is the operator-facing view of an exported ledger: the
// /explain endpoint's payloads. Verdicts lists what can be explained;
// Explain assembles, for one cluster of the final verdict, the complete
// evidence chain that produced it — every configuration that ran (with
// its deploy attempts, retries, degradations, and catchment row), every
// stream round and reconfiguration decision, the probe verdicts and
// breaker quarantines in effect, and an embedded replay check proving
// the chain actually reproduces the verdict.

// VerdictSummary is one explainable verdict in an export.
type VerdictSummary struct {
	Seq       uint64 `json:"seq"`
	Origin    string `json:"origin"`
	Round     int    `json:"round,omitempty"`
	Clusters  int    `json:"clusters"`
	Converged bool   `json:"converged,omitempty"`
	// Final marks the verdict Explain renders (the last one recorded).
	Final bool `json:"final,omitempty"`
}

// Verdicts summarizes every verdict event in the export, in sequence
// order. The last entry is the final verdict Explain renders.
func (e *Export) Verdicts() []VerdictSummary {
	var out []VerdictSummary
	for _, ev := range e.Events {
		if ev.Kind != KindVerdict || ev.Verdict == nil {
			continue
		}
		v := ev.Verdict
		out = append(out, VerdictSummary{
			Seq:       ev.Seq,
			Origin:    v.Origin,
			Round:     v.Round,
			Clusters:  v.Clusters,
			Converged: v.Converged,
		})
	}
	if len(out) > 0 {
		out[len(out)-1].Final = true
	}
	return out
}

// ConfigChain is one configuration's complete contribution to a
// verdict: how it got deployed (or failed to), and the catchment row it
// yielded. Every configuration that appears anywhere in the ledger —
// deployed, retried, degraded, or measured — gets a chain entry, so the
// explanation's leaves account for the entire campaign.
type ConfigChain struct {
	Config int `json:"config"`
	// Key is the canonical announcement key (empty when no deploy event
	// recorded one, e.g. stream-side rows).
	Key string `json:"key,omitempty"`
	// Deployed is true when a deploy event confirmed the configuration;
	// Attempts and Phase come from that event.
	Deployed bool   `json:"deployed"`
	Attempts int    `json:"attempts,omitempty"`
	Phase    string `json:"phase,omitempty"`
	// Retries and Degraded are the fault-substrate events charged to the
	// configuration, in sequence order.
	Retries  []RetryEvent   `json:"retries,omitempty"`
	Degraded []DegradeEvent `json:"degraded,omitempty"`
	// Row is the configuration's final catchment row (nil when the
	// configuration never yielded one).
	Row *RowEvent `json:"row,omitempty"`
	// Rounds lists the stream rounds folded under this configuration.
	Rounds []int `json:"rounds,omitempty"`
	// MemberLinks[i] is cluster member i's ingress link under this row
	// (parallel to Explanation.Members; omitted without a row).
	MemberLinks []bgp.LinkID `json:"member_links,omitempty"`
}

// ReplayCheck is the embedded replay verification: whether re-running
// classification and localization purely from the ledger reproduced the
// live verdict byte for byte.
type ReplayCheck struct {
	Reproduced bool     `json:"reproduced"`
	Verdicts   int      `json:"verdicts"`
	Mismatches []string `json:"mismatches,omitempty"`
	Error      string   `json:"error,omitempty"`
}

// Explanation is the full evidence chain behind one cluster of the
// final verdict — the /explain/{cluster} payload.
type Explanation struct {
	Cluster int `json:"cluster"`
	// Members are the source positions assigned to the cluster.
	Members []int `json:"members"`
	// Verdict is the final verdict the cluster belongs to.
	Verdict *VerdictEvent `json:"verdict"`
	// Meta carries the run dimensions (stream preferred over campaign).
	Meta *MetaEvent `json:"meta,omitempty"`
	// Configs is the per-configuration evidence chain, ascending by
	// configuration index. Every configuration the ledger saw is listed.
	Configs []ConfigChain `json:"configs"`
	// Rounds and Reconfigs are the stream decisions, in order.
	Rounds    []RoundEvent    `json:"rounds,omitempty"`
	Reconfigs []ReconfigEvent `json:"reconfigs,omitempty"`
	// Probes are the promoted probe-channel verdicts, every scan round
	// that contributed one; MemberProbes indexes those targeting a
	// cluster member.
	Probes       []ProbeEvent `json:"probes,omitempty"`
	MemberProbes []int        `json:"member_probes,omitempty"`
	// Quarantines are the link breaker transitions active during the run.
	Quarantines []QuarantineEvent `json:"quarantines,omitempty"`
	// Replay is the embedded determinism check over the same export.
	Replay ReplayCheck `json:"replay"`
}

// Explain assembles the evidence chain for one cluster id of the final
// verdict. It errors when the export has no verdict or the cluster id
// is out of range.
func (e *Export) Explain(clusterID int) (*Explanation, error) {
	final := e.finalVerdict()
	if final == nil {
		return nil, fmt.Errorf("provenance: export has no verdict to explain")
	}
	if clusterID < 0 || clusterID >= final.Clusters {
		return nil, fmt.Errorf("provenance: cluster %d out of range (verdict has %d clusters)", clusterID, final.Clusters)
	}
	ex := &Explanation{Cluster: clusterID, Verdict: final, Meta: e.meta()}
	for k, c := range final.Assign {
		if int(c) == clusterID {
			ex.Members = append(ex.Members, k)
		}
	}

	chains := map[int]*ConfigChain{}
	chain := func(cfg int) *ConfigChain {
		ch := chains[cfg]
		if ch == nil {
			ch = &ConfigChain{Config: cfg}
			chains[cfg] = ch
		}
		return ch
	}
	member := make(map[int]bool, len(ex.Members))
	for _, k := range ex.Members {
		member[k] = true
	}
	for _, ev := range e.Events {
		switch ev.Kind {
		case KindDeploy:
			ch := chain(ev.Deploy.Config)
			ch.Deployed = true
			ch.Attempts = ev.Deploy.Attempts
			ch.Key = orDefault(ev.Deploy.Key, ch.Key)
			ch.Phase = orDefault(ev.Deploy.Phase, ch.Phase)
		case KindRetry:
			ch := chain(ev.Retry.Config)
			ch.Retries = append(ch.Retries, *ev.Retry)
		case KindDegrade:
			ch := chain(ev.Degrade.Config)
			ch.Degraded = append(ch.Degraded, *ev.Degrade)
		case KindRow:
			// Latest row wins, matching rowsByConfig and Replay.
			row := *ev.Row
			chain(row.Config).Row = &row
		case KindRound:
			ch := chain(ev.Round.Config)
			ch.Rounds = append(ch.Rounds, ev.Round.Round)
			ex.Rounds = append(ex.Rounds, *ev.Round)
		case KindReconfig:
			ex.Reconfigs = append(ex.Reconfigs, *ev.Reconfig)
		case KindProbe:
			ex.Probes = append(ex.Probes, *ev.Probe)
			if member[ev.Probe.Source] {
				ex.MemberProbes = append(ex.MemberProbes, len(ex.Probes)-1)
			}
		case KindQuarantine:
			ex.Quarantines = append(ex.Quarantines, *ev.Quarantine)
		}
	}
	ex.Configs = make([]ConfigChain, 0, len(chains))
	for _, ch := range chains {
		if ch.Row != nil {
			ch.MemberLinks = make([]bgp.LinkID, len(ex.Members))
			for i, k := range ex.Members {
				ch.MemberLinks[i] = bgp.NoLink
				if k < len(ch.Row.Catchment) {
					ch.MemberLinks[i] = ch.Row.Catchment[k]
				}
			}
		}
		ex.Configs = append(ex.Configs, *ch)
	}
	sort.Slice(ex.Configs, func(i, j int) bool { return ex.Configs[i].Config < ex.Configs[j].Config })

	if res, err := Replay(e); err != nil {
		ex.Replay = ReplayCheck{Error: err.Error()}
	} else {
		ex.Replay = ReplayCheck{
			Reproduced: res.Reproduced,
			Verdicts:   res.Verdicts,
			Mismatches: res.Mismatches,
		}
	}
	return ex, nil
}
