package mrt

import (
	"bytes"
	"net/netip"
	"testing"

	"spooftrack/internal/topo"
)

// FuzzReadUpdate exercises the MRT/BGP parser against arbitrary input:
// it must never panic, and anything it accepts must re-encode to a
// parseable record.
func FuzzReadUpdate(f *testing.F) {
	// Seed corpus: valid records and near-miss corruptions.
	u := &Update{
		PeerAS:    64500,
		LocalAS:   64501,
		Timestamp: 1,
		Path:      []topo.ASN{64500, 47065},
		NextHop:   netip.MustParseAddr("203.0.113.1"),
		Prefix:    netip.PrefixFrom(netip.MustParseAddr("198.51.100.0"), 24),
	}
	var buf bytes.Buffer
	if err := WriteUpdate(&buf, u); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	truncated := append([]byte(nil), valid[:len(valid)-3]...)
	f.Add(truncated)
	corrupted := append([]byte(nil), valid...)
	corrupted[20] ^= 0xff
	f.Add(corrupted)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadUpdate(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Round-trip whatever parsed.
		var out bytes.Buffer
		if err := WriteUpdate(&out, got); err != nil {
			// Some parsed values are unencodable (e.g., empty path is
			// rejected by the writer); that is fine as long as parsing
			// flagged nothing.
			return
		}
		if _, err := ReadUpdate(bytes.NewReader(out.Bytes())); err != nil {
			t.Fatalf("re-encoded record unparseable: %v", err)
		}
	})
}
