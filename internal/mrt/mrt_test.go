package mrt

import (
	"bytes"
	"io"
	"net/netip"
	"testing"
	"testing/quick"

	"spooftrack/internal/topo"
)

func sampleUpdate() *Update {
	return &Update{
		PeerAS:    64500,
		LocalAS:   64501,
		Timestamp: 1234567,
		Path:      []topo.ASN{64500, 3356, 47065},
		NextHop:   netip.MustParseAddr("203.0.113.1"),
		Prefix:    netip.PrefixFrom(netip.MustParseAddr("198.51.100.0"), 24),
	}
}

func TestUpdateRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	u := sampleUpdate()
	if err := WriteUpdate(&buf, u); err != nil {
		t.Fatal(err)
	}
	got, err := ReadUpdate(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.PeerAS != u.PeerAS || got.Timestamp != u.Timestamp || got.Prefix != u.Prefix {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, u)
	}
	if len(got.Path) != len(u.Path) {
		t.Fatalf("path %v, want %v", got.Path, u.Path)
	}
	for i := range u.Path {
		if got.Path[i] != u.Path[i] {
			t.Fatalf("path %v, want %v", got.Path, u.Path)
		}
	}
}

func TestUpdateRoundTripProperty(t *testing.T) {
	f := func(peer uint32, rawPath []uint32, bits uint8) bool {
		if len(rawPath) == 0 {
			rawPath = []uint32{1}
		}
		if len(rawPath) > 200 {
			rawPath = rawPath[:200]
		}
		path := make([]topo.ASN, len(rawPath))
		for i, v := range rawPath {
			path[i] = topo.ASN(v)
		}
		u := &Update{
			PeerAS:  topo.ASN(peer),
			Path:    path,
			NextHop: netip.MustParseAddr("203.0.113.1"),
			Prefix:  netip.PrefixFrom(netip.AddrFrom4([4]byte{198, 51, 100, 0}), int(bits%25)),
		}
		var buf bytes.Buffer
		if err := WriteUpdate(&buf, u); err != nil {
			return false
		}
		got, err := ReadUpdate(&buf)
		if err != nil || got.PeerAS != u.PeerAS || len(got.Path) != len(path) {
			return false
		}
		for i := range path {
			if got.Path[i] != path[i] {
				return false
			}
		}
		return got.Prefix.Bits() == u.Prefix.Bits()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStreamOfUpdates(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 5; i++ {
		u := sampleUpdate()
		u.PeerAS = topo.ASN(100 + i)
		u.Path = []topo.ASN{u.PeerAS, 47065}
		if err := WriteUpdate(&buf, u); err != nil {
			t.Fatal(err)
		}
	}
	updates, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(updates) != 5 {
		t.Fatalf("got %d updates, want 5", len(updates))
	}
	for i, u := range updates {
		if u.PeerAS != topo.ASN(100+i) {
			t.Fatalf("update %d peer %d", i, u.PeerAS)
		}
	}
}

func TestWriteUpdateValidation(t *testing.T) {
	var buf bytes.Buffer
	empty := sampleUpdate()
	empty.Path = nil
	if err := WriteUpdate(&buf, empty); err == nil {
		t.Error("empty path accepted")
	}
	long := sampleUpdate()
	long.Path = make([]topo.ASN, 256)
	if err := WriteUpdate(&buf, long); err == nil {
		t.Error("256-hop path accepted")
	}
	v6 := sampleUpdate()
	v6.NextHop = netip.MustParseAddr("2001:db8::1")
	if err := WriteUpdate(&buf, v6); err == nil {
		t.Error("IPv6 next hop accepted")
	}
	v6p := sampleUpdate()
	v6p.Prefix = netip.PrefixFrom(netip.MustParseAddr("2001:db8::"), 48)
	if err := WriteUpdate(&buf, v6p); err == nil {
		t.Error("IPv6 prefix accepted")
	}
}

func TestLongASPathUsesExtendedLength(t *testing.T) {
	// 64 hops * 4 bytes + 2 > 255 forces the extended-length attribute
	// encoding.
	u := sampleUpdate()
	u.Path = make([]topo.ASN, 80)
	for i := range u.Path {
		u.Path[i] = topo.ASN(i + 1)
	}
	var buf bytes.Buffer
	if err := WriteUpdate(&buf, u); err != nil {
		t.Fatal(err)
	}
	got, err := ReadUpdate(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Path) != 80 || got.Path[79] != 80 {
		t.Fatalf("extended-length path corrupted: %v", got.Path[:5])
	}
}

func TestReadUpdateRejectsGarbage(t *testing.T) {
	// Truncated header.
	if _, err := ReadUpdate(bytes.NewReader([]byte{1, 2, 3})); err == nil || err == io.EOF {
		t.Error("truncated header accepted")
	}
	// Clean EOF on empty stream.
	if _, err := ReadUpdate(bytes.NewReader(nil)); err != io.EOF {
		t.Errorf("empty stream: got %v, want EOF", err)
	}
	// Corrupt a valid record's BGP marker.
	var buf bytes.Buffer
	if err := WriteUpdate(&buf, sampleUpdate()); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[mrtHeaderLen+20] = 0x00 // first marker byte
	if _, err := ReadUpdate(bytes.NewReader(data)); err == nil {
		t.Error("bad marker accepted")
	}
	// Wrong MRT type.
	buf.Reset()
	if err := WriteUpdate(&buf, sampleUpdate()); err != nil {
		t.Fatal(err)
	}
	data = buf.Bytes()
	data[4], data[5] = 0, 13 // TABLE_DUMP_V2
	if _, err := ReadUpdate(bytes.NewReader(data)); err == nil {
		t.Error("unsupported MRT type accepted")
	}
}

func TestParseBGPUpdateErrors(t *testing.T) {
	// Build a valid record, then surgically corrupt the inner BGP
	// message in ways the parser must reject.
	var buf bytes.Buffer
	if err := WriteUpdate(&buf, sampleUpdate()); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	bgpStart := mrtHeaderLen + 20

	corrupt := func(mutate func(msg []byte)) error {
		data := append([]byte(nil), valid...)
		mutate(data[bgpStart:])
		_, err := ReadUpdate(bytes.NewReader(data))
		return err
	}
	if err := corrupt(func(m []byte) { m[18] = 1 }); err == nil { // OPEN, not UPDATE
		t.Error("non-UPDATE accepted")
	}
	if err := corrupt(func(m []byte) { m[16], m[17] = 0, 5 }); err == nil { // bad BGP length
		t.Error("bad BGP length accepted")
	}
	if err := corrupt(func(m []byte) { m[19], m[20] = 0xff, 0xff }); err == nil { // withdrawn overrun
		t.Error("withdrawn overrun accepted")
	}
}

func TestReadUpdateImplausibleRecordLength(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteUpdate(&buf, sampleUpdate()); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[8], data[9], data[10], data[11] = 0xff, 0xff, 0xff, 0xff
	if _, err := ReadUpdate(bytes.NewReader(data)); err == nil {
		t.Fatal("implausible record length accepted")
	}
}

func TestReadAllPropagatesErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteUpdate(&buf, sampleUpdate()); err != nil {
		t.Fatal(err)
	}
	// Append garbage after the valid record.
	buf.Write([]byte{9, 9, 9})
	if _, err := ReadAll(&buf); err == nil {
		t.Error("trailing garbage accepted")
	}
}
