// Package mrt implements the wire formats route collectors speak: a
// subset of the BGP-4 UPDATE message (RFC 4271, with four-octet AS
// numbers per RFC 6793) and of the MRT BGP4MP_MESSAGE_AS4 framing
// (RFC 6396) that RouteViews and RIPE RIS use to publish feeds.
//
// The paper's inference pipeline consumes AS-paths "observed on BGP
// update messages towards PEERING prefixes collected from public feeds"
// (§IV-b). This package lets the simulated collectors produce those
// feeds as actual MRT byte streams and the measurement pipeline parse
// them back, exercising the real encode/decode path.
//
// Scope: IPv4 unicast announcements with ORIGIN, AS_PATH (AS_SEQUENCE)
// and NEXT_HOP attributes. Withdrawals, communities, and multiprotocol
// attributes are out of scope for the feeds the simulation produces.
package mrt

import (
	"encoding/binary"
	"fmt"
	"io"
	"net/netip"

	"spooftrack/internal/topo"
)

// BGP message constants (RFC 4271).
const (
	bgpHeaderLen  = 19
	bgpMaxMsgLen  = 4096
	bgpTypeUpdate = 2

	attrOrigin  = 1
	attrASPath  = 2
	attrNextHop = 3

	asSequence = 2

	originIGP = 0
)

// MRT constants (RFC 6396).
const (
	mrtHeaderLen         = 12
	mrtTypeBGP4MP        = 16
	mrtSubtypeMessageAS4 = 4
	afiIPv4              = 1
)

// Update is one simplified BGP UPDATE: an announcement of Prefix with
// the given AS_PATH.
type Update struct {
	// PeerAS is the collector peer that sent the update.
	PeerAS topo.ASN
	// LocalAS is the collector's AS.
	LocalAS topo.ASN
	// Timestamp is the MRT capture time (seconds since epoch).
	Timestamp uint32
	// Path is the AS_PATH as a single AS_SEQUENCE.
	Path []topo.ASN
	// NextHop is the announced next hop.
	NextHop netip.Addr
	// Prefix is the announced NLRI.
	Prefix netip.Prefix
}

var bgpMarker = func() [16]byte {
	var m [16]byte
	for i := range m {
		m[i] = 0xff
	}
	return m
}()

// marshalBGPUpdate encodes the BGP UPDATE message body (RFC 4271 §4.3)
// with four-octet ASNs in AS_PATH.
func marshalBGPUpdate(u *Update) ([]byte, error) {
	if len(u.Path) == 0 {
		return nil, fmt.Errorf("mrt: empty AS path")
	}
	if len(u.Path) > 255 {
		return nil, fmt.Errorf("mrt: AS path longer than 255 segments")
	}
	if !u.NextHop.Is4() {
		return nil, fmt.Errorf("mrt: next hop %v is not IPv4", u.NextHop)
	}
	if !u.Prefix.Addr().Is4() {
		return nil, fmt.Errorf("mrt: prefix %v is not IPv4", u.Prefix)
	}

	// Path attributes.
	var attrs []byte
	// ORIGIN: flags 0x40 (well-known transitive), len 1.
	attrs = append(attrs, 0x40, attrOrigin, 1, originIGP)
	// AS_PATH: one AS_SEQUENCE segment of 4-byte ASNs.
	pathLen := 2 + 4*len(u.Path)
	if pathLen > 255 {
		// Extended length attribute.
		attrs = append(attrs, 0x50, attrASPath, byte(pathLen>>8), byte(pathLen))
	} else {
		attrs = append(attrs, 0x40, attrASPath, byte(pathLen))
	}
	attrs = append(attrs, asSequence, byte(len(u.Path)))
	for _, asn := range u.Path {
		attrs = binary.BigEndian.AppendUint32(attrs, uint32(asn))
	}
	// NEXT_HOP.
	nh := u.NextHop.As4()
	attrs = append(attrs, 0x40, attrNextHop, 4)
	attrs = append(attrs, nh[:]...)

	// NLRI: one prefix.
	bits := u.Prefix.Bits()
	nBytes := (bits + 7) / 8
	addr := u.Prefix.Addr().As4()
	nlri := append([]byte{byte(bits)}, addr[:nBytes]...)

	body := make([]byte, 0, 4+len(attrs)+len(nlri))
	body = append(body, 0, 0) // withdrawn routes length
	body = binary.BigEndian.AppendUint16(body, uint16(len(attrs)))
	body = append(body, attrs...)
	body = append(body, nlri...)

	msgLen := bgpHeaderLen + len(body)
	if msgLen > bgpMaxMsgLen {
		return nil, fmt.Errorf("mrt: UPDATE of %d bytes exceeds maximum", msgLen)
	}
	msg := make([]byte, 0, msgLen)
	msg = append(msg, bgpMarker[:]...)
	msg = binary.BigEndian.AppendUint16(msg, uint16(msgLen))
	msg = append(msg, bgpTypeUpdate)
	msg = append(msg, body...)
	return msg, nil
}

// parseBGPUpdate decodes an UPDATE message produced by marshalBGPUpdate
// (and, more generally, any IPv4-unicast announcement using 4-octet
// AS_PATH encoding).
func parseBGPUpdate(msg []byte) (path []topo.ASN, prefix netip.Prefix, err error) {
	if len(msg) < bgpHeaderLen {
		return nil, prefix, fmt.Errorf("mrt: BGP message too short")
	}
	for i := 0; i < 16; i++ {
		if msg[i] != 0xff {
			return nil, prefix, fmt.Errorf("mrt: bad BGP marker")
		}
	}
	if int(binary.BigEndian.Uint16(msg[16:])) != len(msg) {
		return nil, prefix, fmt.Errorf("mrt: BGP length mismatch")
	}
	if msg[18] != bgpTypeUpdate {
		return nil, prefix, fmt.Errorf("mrt: not an UPDATE (type %d)", msg[18])
	}
	body := msg[bgpHeaderLen:]
	if len(body) < 4 {
		return nil, prefix, fmt.Errorf("mrt: truncated UPDATE body")
	}
	withdrawn := int(binary.BigEndian.Uint16(body))
	if len(body) < 2+withdrawn+2 {
		return nil, prefix, fmt.Errorf("mrt: truncated withdrawn routes")
	}
	attrLen := int(binary.BigEndian.Uint16(body[2+withdrawn:]))
	attrStart := 4 + withdrawn
	if len(body) < attrStart+attrLen {
		return nil, prefix, fmt.Errorf("mrt: truncated path attributes")
	}
	attrs := body[attrStart : attrStart+attrLen]
	nlri := body[attrStart+attrLen:]

	for len(attrs) > 0 {
		if len(attrs) < 3 {
			return nil, prefix, fmt.Errorf("mrt: truncated attribute header")
		}
		flags, code := attrs[0], attrs[1]
		var alen, hdr int
		if flags&0x10 != 0 { // extended length
			if len(attrs) < 4 {
				return nil, prefix, fmt.Errorf("mrt: truncated extended attribute")
			}
			alen = int(binary.BigEndian.Uint16(attrs[2:]))
			hdr = 4
		} else {
			alen = int(attrs[2])
			hdr = 3
		}
		if len(attrs) < hdr+alen {
			return nil, prefix, fmt.Errorf("mrt: attribute overruns message")
		}
		val := attrs[hdr : hdr+alen]
		if code == attrASPath {
			p, err := parseASPath(val)
			if err != nil {
				return nil, prefix, err
			}
			path = p
		}
		attrs = attrs[hdr+alen:]
	}
	if path == nil {
		return nil, prefix, fmt.Errorf("mrt: UPDATE has no AS_PATH")
	}

	if len(nlri) < 1 {
		return nil, prefix, fmt.Errorf("mrt: UPDATE has no NLRI")
	}
	bits := int(nlri[0])
	nBytes := (bits + 7) / 8
	if bits > 32 || len(nlri) < 1+nBytes {
		return nil, prefix, fmt.Errorf("mrt: bad NLRI")
	}
	var addr [4]byte
	copy(addr[:], nlri[1:1+nBytes])
	prefix = netip.PrefixFrom(netip.AddrFrom4(addr), bits)
	return path, prefix, nil
}

func parseASPath(val []byte) ([]topo.ASN, error) {
	var path []topo.ASN
	for len(val) > 0 {
		if len(val) < 2 {
			return nil, fmt.Errorf("mrt: truncated AS_PATH segment")
		}
		segType, n := val[0], int(val[1])
		if segType != asSequence {
			return nil, fmt.Errorf("mrt: unsupported AS_PATH segment type %d", segType)
		}
		if len(val) < 2+4*n {
			return nil, fmt.Errorf("mrt: truncated AS_PATH")
		}
		for i := 0; i < n; i++ {
			path = append(path, topo.ASN(binary.BigEndian.Uint32(val[2+4*i:])))
		}
		val = val[2+4*n:]
	}
	return path, nil
}

// WriteUpdate frames the update as one MRT BGP4MP_MESSAGE_AS4 record
// and writes it to w.
func WriteUpdate(w io.Writer, u *Update) error {
	bgpMsg, err := marshalBGPUpdate(u)
	if err != nil {
		return err
	}
	// BGP4MP_MESSAGE_AS4 body: peer AS(4) local AS(4) ifindex(2) afi(2)
	// peer IP(4) local IP(4) then the BGP message.
	body := make([]byte, 0, 20+len(bgpMsg))
	body = binary.BigEndian.AppendUint32(body, uint32(u.PeerAS))
	body = binary.BigEndian.AppendUint32(body, uint32(u.LocalAS))
	body = binary.BigEndian.AppendUint16(body, 0) // interface index
	body = binary.BigEndian.AppendUint16(body, afiIPv4)
	body = append(body, 0, 0, 0, 0) // peer IP (unused in simulation)
	body = append(body, 0, 0, 0, 0) // local IP
	body = append(body, bgpMsg...)

	hdr := make([]byte, 0, mrtHeaderLen)
	hdr = binary.BigEndian.AppendUint32(hdr, u.Timestamp)
	hdr = binary.BigEndian.AppendUint16(hdr, mrtTypeBGP4MP)
	hdr = binary.BigEndian.AppendUint16(hdr, mrtSubtypeMessageAS4)
	hdr = binary.BigEndian.AppendUint32(hdr, uint32(len(body)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// ReadUpdate reads one MRT record. It returns io.EOF at a clean end of
// stream.
func ReadUpdate(r io.Reader) (*Update, error) {
	hdr := make([]byte, mrtHeaderLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("mrt: reading header: %w", err)
	}
	ts := binary.BigEndian.Uint32(hdr[0:])
	typ := binary.BigEndian.Uint16(hdr[4:])
	sub := binary.BigEndian.Uint16(hdr[6:])
	blen := int(binary.BigEndian.Uint32(hdr[8:]))
	if typ != mrtTypeBGP4MP || sub != mrtSubtypeMessageAS4 {
		return nil, fmt.Errorf("mrt: unsupported record type %d/%d", typ, sub)
	}
	if blen < 20 || blen > 1<<20 {
		return nil, fmt.Errorf("mrt: implausible record length %d", blen)
	}
	body := make([]byte, blen)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("mrt: reading body: %w", err)
	}
	u := &Update{
		Timestamp: ts,
		PeerAS:    topo.ASN(binary.BigEndian.Uint32(body[0:])),
		LocalAS:   topo.ASN(binary.BigEndian.Uint32(body[4:])),
	}
	if afi := binary.BigEndian.Uint16(body[10:]); afi != afiIPv4 {
		return nil, fmt.Errorf("mrt: unsupported AFI %d", afi)
	}
	path, prefix, err := parseBGPUpdate(body[20:])
	if err != nil {
		return nil, err
	}
	u.Path = path
	u.Prefix = prefix
	return u, nil
}

// ReadAll parses a whole MRT stream.
func ReadAll(r io.Reader) ([]*Update, error) {
	var out []*Update
	for {
		u, err := ReadUpdate(r)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, u)
	}
}
