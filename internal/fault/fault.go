// Package fault is a deterministic, seed-driven fault injector for the
// campaign and streaming paths: probabilistic deploy and measurement
// errors, injected deployment latency, peering-link flaps, dark
// collector feeds, lost traceroute batches, partial catchment
// visibility, and event-tap drops.
//
// The paper's method only works if the origin AS keeps deploying
// configurations and measuring catchments while the real Internet
// misbehaves — BGP convergence is slow and flappy, collector feeds go
// dark, traceroutes are lost, and muxes fail mid-campaign (§V-C).
// BGPeek-a-Boo (Krupp & Rossow) makes the same argument for active BGP
// traceback: deployments must tolerate noisy, partially-failing
// measurements, not assume a clean oracle. This package is the
// misbehaving Internet: it plugs into peering.Platform (deploy faults
// and link flaps, via the platform's FaultHook), core.RunCampaign
// (measurement faults and visibility masking, via CampaignOptions), and
// the amp event taps (drops, via WrapTap).
//
// Every decision is a pure function of (seed, fault kind, site key,
// attempt) — never of execution order or wall clock — so a chaos run is
// bit-reproducible at any parallelism: the same configuration fails the
// same attempts under the same profile and seed, which is what lets the
// chaos tests assert that retried campaigns converge to the fault-free
// clusters. The only exception is the event-tap drop stream, which is
// keyed on an arrival sequence number (per-packet arrival order is
// inherently racy; determinism there would be a lie).
package fault

import (
	"fmt"
	"sync/atomic"
	"time"

	"spooftrack/internal/amp"
	"spooftrack/internal/bgp"
	"spooftrack/internal/measure"
	"spooftrack/internal/metrics"
	"spooftrack/internal/topo"
)

// Kind enumerates the injectable fault classes.
type Kind int

const (
	// KindDeployFail is a failed deployment attempt (mux unreachable,
	// announcement rejected, convergence never observed).
	KindDeployFail Kind = iota
	// KindMeasureFail is a lost measurement round (probe batch lost,
	// collector session down before the capture window closed).
	KindMeasureFail
	// KindLinkFlap is a peering-link flap observed during a deployment
	// attempt; flaps feed the platform's link-health breaker.
	KindLinkFlap
	// KindTapDrop is a per-packet event lost between the honeypot tap
	// and the streaming pipeline.
	KindTapDrop
	// KindFeedGap is a route collector whose feed is dark for a
	// configuration's capture window.
	KindFeedGap
	// KindProbeLoss is a traceroute dropped from an observation beyond
	// the measurement model's own noise.
	KindProbeLoss
	// KindLatency is injected deployment latency (slow convergence).
	KindLatency
	// KindHidden is a source hidden from an otherwise successful
	// catchment measurement (partial visibility).
	KindHidden
	// KindPartition is a blackholed RPC between two sharded-ingest
	// nodes (controller ↔ shard): the attempt times out and must be
	// retried. Rolled per ordered node pair and attempt, so retries
	// heal transient partitions deterministically.
	KindPartition
	// KindShardCrash is an ingest shard dying permanently at a round
	// boundary: its pipeline stops answering and its round counters are
	// lost, forcing the controller to discard the round and degrade.
	KindShardCrash
	// KindSplitBrain is a controller spuriously losing its leadership
	// lease at renewal — the lease store's answer diverges from the
	// controller's belief, forcing abdication and re-election at a
	// higher term.
	KindSplitBrain

	numKinds
)

// String names the kind as used in metrics labels and /faults output.
func (k Kind) String() string {
	switch k {
	case KindDeployFail:
		return "deploy_fail"
	case KindMeasureFail:
		return "measure_fail"
	case KindLinkFlap:
		return "link_flap"
	case KindTapDrop:
		return "tap_drop"
	case KindFeedGap:
		return "feed_gap"
	case KindProbeLoss:
		return "probe_loss"
	case KindLatency:
		return "latency"
	case KindHidden:
		return "hidden_source"
	case KindPartition:
		return "partition"
	case KindShardCrash:
		return "shard_crash"
	case KindSplitBrain:
		return "split_brain"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Injector injects the faults described by a Profile. All methods are
// safe for concurrent use; injection counts are kept per kind and
// optionally mirrored into a metrics registry (Instrument).
type Injector struct {
	profile  Profile
	seed     uint64
	numLinks int

	counts   [numKinds]atomic.Int64
	counters atomic.Pointer[[numKinds]*metrics.Counter]
	tapSeq   atomic.Uint64

	// sleep is replaceable in tests so latency profiles don't slow the
	// suite down.
	sleep func(time.Duration)
}

// New builds an injector for the profile, seed, and number of peering
// links (flap decisions are rolled per link).
func New(p Profile, seed uint64, numLinks int) *Injector {
	return &Injector{profile: p, seed: seed, numLinks: numLinks, sleep: time.Sleep}
}

// Profile returns the profile the injector was built with.
func (inj *Injector) Profile() Profile { return inj.profile }

// Seed returns the injector's seed.
func (inj *Injector) Seed() uint64 { return inj.seed }

// roll returns a uniform [0,1) value that is a pure function of the
// injector seed, the fault kind, the site key, and the salt.
func (inj *Injector) roll(kind Kind, key string, salt uint64) float64 {
	h := uint64(14695981039346656037) // FNV-1a offset basis
	for i := 0; i < len(key); i++ {
		h = (h ^ uint64(key[i])) * 1099511628211
	}
	h ^= inj.seed
	h ^= (uint64(kind) + 1) * 0x9e3779b97f4a7c15
	h ^= salt * 0xd6e8feb86659fd93
	// SplitMix64 finalizer: decorrelates nearby sites and salts.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return float64(h>>11) / (1 << 53)
}

func (inj *Injector) count(k Kind) {
	inj.counts[k].Add(1)
	if cs := inj.counters.Load(); cs != nil {
		cs[k].Inc()
	}
}

// Instrument mirrors injection counts into the registry as
// fault_injected_total{kind=...}. Call once, before injection starts.
func (inj *Injector) Instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	vec := reg.CounterVec("fault_injected_total", "kind")
	var cs [numKinds]*metrics.Counter
	for k := Kind(0); k < numKinds; k++ {
		cs[k] = vec.With(k.String())
	}
	inj.counters.Store(&cs)
}

// Deploy implements the platform's deployment fault hook: it injects
// convergence latency, rolls per-link flaps, and decides whether this
// attempt of the configuration fails. flapped is reported even when the
// attempt succeeds — links can flap without sinking a deployment — and
// feeds the platform's link-health breaker.
func (inj *Injector) Deploy(cfgKey string, attempt int) (flapped []bgp.LinkID, err error) {
	pr := &inj.profile
	if d := pr.DeployLatency; d > 0 {
		frac := inj.roll(KindLatency, cfgKey, uint64(attempt))
		inj.count(KindLatency)
		inj.sleep(time.Duration((0.5 + frac) * float64(d)))
	}
	if pr.PrLinkFlap > 0 {
		for l := 0; l < inj.numLinks; l++ {
			if inj.roll(KindLinkFlap, cfgKey, uint64(attempt)<<8|uint64(l)) < pr.PrLinkFlap {
				flapped = append(flapped, bgp.LinkID(l))
				inj.count(KindLinkFlap)
			}
		}
	}
	if pr.PrDeployFail > 0 && inj.roll(KindDeployFail, cfgKey, uint64(attempt)) < pr.PrDeployFail {
		inj.count(KindDeployFail)
		return flapped, fmt.Errorf("fault: injected deploy failure (config %q, attempt %d)", cfgKey, attempt)
	}
	return flapped, nil
}

// Measure implements the campaign's measurement fault hook: it decides
// whether this measurement attempt of configuration cfgIdx is lost.
func (inj *Injector) Measure(cfgIdx, attempt int) error {
	if pr := inj.profile.PrMeasureFail; pr > 0 &&
		inj.roll(KindMeasureFail, "", uint64(cfgIdx)<<16|uint64(attempt)) < pr {
		inj.count(KindMeasureFail)
		return fmt.Errorf("fault: injected measurement failure (config %d, attempt %d)", cfgIdx, attempt)
	}
	return nil
}

// DropEvent decides whether the next tapped per-packet event is lost.
// Unlike the other sites, drops are keyed on arrival order (packet
// arrival is inherently racy), so only the aggregate drop rate — not the
// exact drop set — is reproducible.
func (inj *Injector) DropEvent() bool {
	p := inj.profile.PrTapDrop
	if p <= 0 {
		return false
	}
	if inj.roll(KindTapDrop, "", inj.tapSeq.Add(1)) < p {
		inj.count(KindTapDrop)
		return true
	}
	return false
}

// WrapTap wraps an amp event tap with the injector's tap-drop fault:
// dropped events never reach t. A nil tap stays nil.
func (inj *Injector) WrapTap(t amp.Tap) amp.Tap {
	if t == nil {
		return nil
	}
	return func(ev amp.Event) {
		if inj.DropEvent() {
			return
		}
		t(ev)
	}
}

// Probe decides whether one active spoof-probe (egress link, target AS,
// probe sequence within the round) is lost, after injecting the
// profile's per-probe latency. Decisions are pure functions of
// (seed, link, target, seq) — like every other site, independent of call
// order — so a probe round is bit-reproducible at any concurrency.
// internal/probe.FaultHook is implemented by this method.
func (inj *Injector) Probe(link int, target int, seq uint64) bool {
	pr := &inj.profile
	salt := uint64(link)<<40 | uint64(target)<<16 | (seq & 0xffff)
	if d := pr.ProbeLatency; d > 0 {
		frac := inj.roll(KindLatency, "probe", salt)
		inj.count(KindLatency)
		inj.sleep(time.Duration((0.5 + frac) * float64(d)))
	}
	if p := pr.PrProbeLoss; p > 0 && inj.roll(KindProbeLoss, "probe", salt) < p {
		inj.count(KindProbeLoss)
		return true
	}
	return false
}

// FilterFeeds deletes collector feeds that are dark for configuration
// cfgIdx under the profile's feed-gap probability, returning how many
// were dropped. Decisions are per (config, collector), so a collector
// dark for one configuration is dark on every retry of it — feed gaps
// are capture-window outages, not per-read races.
func (inj *Injector) FilterFeeds(cfgIdx int, paths map[int][]topo.ASN) (dropped int) {
	p := inj.profile.PrFeedGap
	if p <= 0 {
		return 0
	}
	for c := range paths {
		if inj.roll(KindFeedGap, "", uint64(cfgIdx)<<20|uint64(c)) < p {
			delete(paths, c)
			inj.count(KindFeedGap)
			dropped++
		}
	}
	return dropped
}

// PerturbObservation applies the profile's measurement-plane faults to
// one configuration's observation in place: dark collector feeds and
// lost traceroutes. It returns how many of each were dropped.
func (inj *Injector) PerturbObservation(cfgIdx int, obs *measure.Observation) (feedsDropped, probesDropped int) {
	feedsDropped = inj.FilterFeeds(cfgIdx, obs.BGPPaths)
	if p := inj.profile.PrProbeLoss; p > 0 && len(obs.Traceroutes) > 0 {
		kept := obs.Traceroutes[:0]
		for i := range obs.Traceroutes {
			if inj.roll(KindProbeLoss, "", uint64(cfgIdx)<<24|uint64(i)) < p {
				inj.count(KindProbeLoss)
				probesDropped++
				continue
			}
			kept = append(kept, obs.Traceroutes[i])
		}
		obs.Traceroutes = kept
	}
	return feedsDropped, probesDropped
}

// HideSource reports whether source src is hidden from configuration
// cfgIdx's catchment measurement (partial catchment visibility).
func (inj *Injector) HideSource(cfgIdx, src int) bool {
	p := inj.profile.HideVisibility
	if p <= 0 {
		return false
	}
	if inj.roll(KindHidden, "", uint64(cfgIdx)<<28|uint64(src)) < p {
		inj.count(KindHidden)
		return true
	}
	return false
}

// Mask implements the campaign's optional measurement masker: it
// degrades a successful measurement in place by hiding a deterministic
// subset of observed sources (partial catchment visibility). It returns
// how many observations were hidden.
func (inj *Injector) Mask(cfgIdx int, m *measure.CatchmentMeasurement) int {
	if inj.profile.HideVisibility <= 0 {
		return 0
	}
	hidden := 0
	for i, obs := range m.Observed {
		if obs && inj.HideSource(cfgIdx, i) {
			m.Observed[i] = false
			m.Catchment[i] = bgp.NoLink
			hidden++
		}
	}
	return hidden
}

// Partitioned reports whether the RPC path between two sharded-ingest
// nodes is blackholed for this attempt. The decision is symmetric (the
// pair is ordered before hashing: a partition cuts both directions) and
// salted per attempt, so a controller retrying with backoff heals a
// transient partition deterministically — the same attempt of the same
// edge always rolls the same way.
func (inj *Injector) Partitioned(from, to string, attempt int) bool {
	p := inj.profile.PrPartition
	if p <= 0 {
		return false
	}
	a, b := from, to
	if b < a {
		a, b = b, a
	}
	if inj.roll(KindPartition, a+"|"+b, uint64(attempt)) < p {
		inj.count(KindPartition)
		return true
	}
	return false
}

// ShardCrash reports whether ingest shard node crashes permanently at
// the given round boundary. Unlike a partition the decision is not
// salted per attempt: once a shard has crashed it stays dead, so the
// controller's retries exhaust and the round is discarded.
func (inj *Injector) ShardCrash(node string, round int) bool {
	p := inj.profile.PrShardCrash
	if p <= 0 {
		return false
	}
	if inj.roll(KindShardCrash, node, uint64(round)) < p {
		inj.count(KindShardCrash)
		return true
	}
	return false
}

// SplitBrain reports whether the lease holder spuriously loses its
// leadership lease when renewing at the given term — the injected
// moment where the controller's belief and the lease store diverge.
// Fenced terms turn this into a clean abdication + re-election instead
// of two live controllers.
func (inj *Injector) SplitBrain(holder string, term uint64) bool {
	p := inj.profile.PrSplitBrain
	if p <= 0 {
		return false
	}
	if inj.roll(KindSplitBrain, holder, term) < p {
		inj.count(KindSplitBrain)
		return true
	}
	return false
}

// Count returns how many faults of the kind have been injected.
func (inj *Injector) Count(k Kind) int64 {
	if k < 0 || k >= numKinds {
		return 0
	}
	return inj.counts[k].Load()
}

// Stats is a point-in-time injection summary, shaped for the daemon's
// /faults endpoint.
type Stats struct {
	Profile string           `json:"profile"`
	Seed    uint64           `json:"seed"`
	Counts  map[string]int64 `json:"injected"`
}

// Stats snapshots the injector: profile, seed, and per-kind injection
// counts. Every registered kind is listed, including ones with zero
// injections, so operators can see which fault classes exist (and are
// armed but quiet) before the first trigger.
func (inj *Injector) Stats() Stats {
	s := Stats{Profile: inj.profile.Name, Seed: inj.seed, Counts: make(map[string]int64, numKinds)}
	for k := Kind(0); k < numKinds; k++ {
		s.Counts[k.String()] = inj.counts[k].Load()
	}
	return s
}
