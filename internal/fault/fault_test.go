package fault

import (
	"net/netip"
	"testing"
	"time"

	"spooftrack/internal/amp"
	"spooftrack/internal/bgp"
	"spooftrack/internal/measure"
	"spooftrack/internal/metrics"
	"spooftrack/internal/topo"
)

func TestDeployDeterministicAcrossInjectors(t *testing.T) {
	prof, err := ProfileByName("flaky-mux")
	if err != nil {
		t.Fatal(err)
	}
	prof.DeployLatency = 0 // keep the test instant
	a := New(prof, 7, 7)
	b := New(prof, 7, 7)
	for attempt := 0; attempt < 20; attempt++ {
		for _, key := range []string{"0:0;1:0;", "0:4;", "2:0,q64512;"} {
			fa, ea := a.Deploy(key, attempt)
			fb, eb := b.Deploy(key, attempt)
			if (ea == nil) != (eb == nil) {
				t.Fatalf("deploy(%q, %d): divergent outcomes", key, attempt)
			}
			if len(fa) != len(fb) {
				t.Fatalf("deploy(%q, %d): divergent flaps %v vs %v", key, attempt, fa, fb)
			}
			for i := range fa {
				if fa[i] != fb[i] {
					t.Fatalf("deploy(%q, %d): divergent flaps %v vs %v", key, attempt, fa, fb)
				}
			}
		}
	}
}

func TestDeployFailRateAndSeedSensitivity(t *testing.T) {
	prof := Profile{Name: "t", PrDeployFail: 0.3}
	inj := New(prof, 1, 7)
	fails := 0
	const n = 5000
	for i := 0; i < n; i++ {
		if _, err := inj.Deploy("cfg", i); err != nil {
			fails++
		}
	}
	if frac := float64(fails) / n; frac < 0.27 || frac > 0.33 {
		t.Fatalf("fail rate %.3f, want ~0.30", frac)
	}
	// A different seed must produce a different fault set.
	other := New(prof, 2, 7)
	same := 0
	for i := 0; i < 200; i++ {
		_, e1 := inj.Deploy("cfg2", i)
		_, e2 := other.Deploy("cfg2", i)
		if (e1 == nil) == (e2 == nil) {
			same++
		}
	}
	if same == 200 {
		t.Fatal("seeds 1 and 2 produced identical fault sets")
	}
}

func TestLatencyInjection(t *testing.T) {
	prof := Profile{Name: "t", DeployLatency: 10 * time.Millisecond}
	inj := New(prof, 3, 2)
	var slept time.Duration
	inj.sleep = func(d time.Duration) { slept = d }
	if _, err := inj.Deploy("k", 0); err != nil {
		t.Fatal(err)
	}
	if slept < 5*time.Millisecond || slept > 15*time.Millisecond {
		t.Fatalf("slept %v, want 0.5–1.5× 10ms", slept)
	}
	if inj.Count(KindLatency) != 1 {
		t.Fatalf("latency count = %d", inj.Count(KindLatency))
	}
}

func TestMeasureFaultKeyedOnConfigAndAttempt(t *testing.T) {
	inj := New(Profile{Name: "t", PrMeasureFail: 0.5}, 9, 7)
	// Same (config, attempt) always agrees with itself; over many
	// configs the rate approaches the profile.
	fails := 0
	for cfg := 0; cfg < 2000; cfg++ {
		e1 := inj.Measure(cfg, 0)
		e2 := New(Profile{Name: "t", PrMeasureFail: 0.5}, 9, 7).Measure(cfg, 0)
		if (e1 == nil) != (e2 == nil) {
			t.Fatal("measure fault not deterministic")
		}
		if e1 != nil {
			fails++
		}
	}
	if frac := float64(fails) / 2000; frac < 0.45 || frac > 0.55 {
		t.Fatalf("measure fail rate %.3f, want ~0.5", frac)
	}
}

func TestWrapTapDropsAtProfileRate(t *testing.T) {
	prof, err := ProfileByName("tap-drop")
	if err != nil {
		t.Fatal(err)
	}
	inj := New(prof, 5, 2)
	delivered := 0
	tap := inj.WrapTap(func(amp.Event) { delivered++ })
	ev := amp.Event{SpoofedSrc: netip.MustParseAddr("192.0.2.1"), WireLen: 24}
	const n = 5000
	for i := 0; i < n; i++ {
		tap(ev)
	}
	drops := inj.Count(KindTapDrop)
	if int(drops)+delivered != n {
		t.Fatalf("drops %d + delivered %d != %d", drops, delivered, n)
	}
	if frac := float64(drops) / n; frac < 0.22 || frac > 0.28 {
		t.Fatalf("drop rate %.3f, want ~0.25", frac)
	}
	if inj.WrapTap(nil) != nil {
		t.Fatal("wrapping a nil tap must stay nil")
	}
}

func TestFilterFeedsStableAcrossRetries(t *testing.T) {
	prof := Profile{Name: "t", PrFeedGap: 0.4}
	inj := New(prof, 11, 7)
	mk := func() map[int][]topo.ASN {
		m := make(map[int][]topo.ASN)
		for c := 0; c < 500; c++ {
			m[c] = []topo.ASN{topo.ASN(c), 47065}
		}
		return m
	}
	a := mk()
	dropped := inj.FilterFeeds(3, a)
	if frac := float64(dropped) / 500; frac < 0.32 || frac > 0.48 {
		t.Fatalf("feed gap rate %.3f, want ~0.4", frac)
	}
	// Same config index on a retry: the same collectors are dark.
	b := mk()
	inj.FilterFeeds(3, b)
	if len(a) != len(b) {
		t.Fatalf("retry darkened a different feed set: %d vs %d survivors", len(a), len(b))
	}
	for c := range a {
		if _, ok := b[c]; !ok {
			t.Fatalf("collector %d survived one retry but not the other", c)
		}
	}
	// A different config darkens a different set.
	c := mk()
	inj.FilterFeeds(4, c)
	diff := false
	for k := range a {
		if _, ok := c[k]; !ok {
			diff = true
			break
		}
	}
	if !diff && len(a) == len(c) {
		t.Fatal("configs 3 and 4 darkened identical feed sets")
	}
}

func TestPerturbObservationDropsProbes(t *testing.T) {
	prof := Profile{Name: "t", PrProbeLoss: 0.5}
	inj := New(prof, 13, 7)
	obs := measure.Observation{BGPPaths: map[int][]topo.ASN{1: {2, 3}}}
	for i := 0; i < 1000; i++ {
		obs.Traceroutes = append(obs.Traceroutes, measure.Traceroute{ProbeAS: i})
	}
	_, probesDropped := inj.PerturbObservation(0, &obs)
	if probesDropped+len(obs.Traceroutes) != 1000 {
		t.Fatalf("dropped %d + kept %d != 1000", probesDropped, len(obs.Traceroutes))
	}
	if frac := float64(probesDropped) / 1000; frac < 0.44 || frac > 0.56 {
		t.Fatalf("probe loss rate %.3f, want ~0.5", frac)
	}
	if len(obs.BGPPaths) != 1 {
		t.Fatal("PrFeedGap=0 must leave feeds alone")
	}
}

func TestMaskHidesObservedSourcesOnly(t *testing.T) {
	prof := Profile{Name: "t", HideVisibility: 0.5}
	inj := New(prof, 17, 7)
	n := 1000
	m := &measure.CatchmentMeasurement{
		Catchment: make([]bgp.LinkID, n),
		Observed:  make([]bool, n),
	}
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			m.Observed[i] = true
			m.Catchment[i] = bgp.LinkID(i % 7)
		} else {
			m.Catchment[i] = bgp.NoLink
		}
	}
	hidden := inj.Mask(0, m)
	if frac := float64(hidden) / 500; frac < 0.4 || frac > 0.6 {
		t.Fatalf("hid %.3f of observed, want ~0.5", frac)
	}
	for i := 0; i < n; i++ {
		if m.Observed[i] && m.Catchment[i] == bgp.NoLink {
			t.Fatal("observed source with NoLink catchment after mask")
		}
		if !m.Observed[i] && m.Catchment[i] != bgp.NoLink {
			t.Fatal("hidden source kept its catchment")
		}
	}
}

func TestProbeSiteDeterministicAndRateAccurate(t *testing.T) {
	prof, err := ProfileByName("probe-storm")
	if err != nil {
		t.Fatal(err)
	}
	prof.ProbeLatency = 0 // keep the test instant
	a, b := New(prof, 21, 7), New(prof, 21, 7)
	lost := 0
	const n = 4000
	for i := 0; i < n; i++ {
		la := a.Probe(i%7, i/7, uint64(i%3))
		lb := b.Probe(i%7, i/7, uint64(i%3))
		if la != lb {
			t.Fatalf("probe loss not deterministic at %d", i)
		}
		if la {
			lost++
		}
	}
	if frac := float64(lost) / n; frac < 0.81 || frac > 0.89 {
		t.Fatalf("probe loss rate %.3f, want ~0.85", frac)
	}
	if a.Count(KindProbeLoss) != int64(lost) {
		t.Fatalf("probe loss count %d, want %d", a.Count(KindProbeLoss), lost)
	}
	// Different seeds roll different losses.
	other := New(prof, 22, 7)
	same := 0
	for i := 0; i < 200; i++ {
		if a.Probe(0, i, 0) == other.Probe(0, i, 0) {
			same++
		}
	}
	if same == 200 {
		t.Fatal("seeds 21 and 22 lost identical probe sets")
	}
}

func TestProbeLatencyInjection(t *testing.T) {
	inj := New(Profile{Name: "t", ProbeLatency: 10 * time.Millisecond}, 3, 2)
	var slept time.Duration
	inj.sleep = func(d time.Duration) { slept = d }
	inj.Probe(0, 1, 0)
	if slept < 5*time.Millisecond || slept > 15*time.Millisecond {
		t.Fatalf("slept %v, want 0.5–1.5× 10ms", slept)
	}
	if inj.Count(KindLatency) != 1 {
		t.Fatalf("latency count = %d", inj.Count(KindLatency))
	}
}

func TestProfileRegistry(t *testing.T) {
	for _, name := range []string{"flaky-mux", "slow-converge", "feed-gap", "tap-drop", "probe-storm", "chaos"} {
		p, err := ProfileByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name != name {
			t.Fatalf("ProfileByName(%q).Name = %q", name, p.Name)
		}
	}
	if _, err := ProfileByName("no-such-profile"); err == nil {
		t.Fatal("unknown profile accepted")
	}
	if p, err := ProfileByName(""); err != nil || p.Name != "none" {
		t.Fatalf("empty profile = %+v, %v", p, err)
	}
	if len(Profiles()) != len(Names()) {
		t.Fatal("Profiles and Names disagree")
	}
}

func TestInstrumentAndStats(t *testing.T) {
	reg := metrics.NewRegistry()
	inj := New(Profile{Name: "t", PrDeployFail: 1}, 1, 2)
	inj.Instrument(reg)
	if _, err := inj.Deploy("k", 0); err == nil {
		t.Fatal("PrDeployFail=1 must fail")
	}
	st := inj.Stats()
	if st.Counts["deploy_fail"] != 1 {
		t.Fatalf("stats = %+v", st.Counts)
	}
	snap := reg.Snapshot()
	vec, ok := snap["fault_injected_total"].(map[string]any)
	if !ok {
		t.Fatalf("fault_injected_total not in registry snapshot: %+v", snap)
	}
	if v, _ := vec["kind=deploy_fail"].(int64); v != 1 {
		t.Fatalf("fault_injected_total{kind=deploy_fail} = %v, want 1", vec)
	}
}
