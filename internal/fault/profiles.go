package fault

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Profile names one chaos scenario: a bundle of per-site fault
// probabilities. The zero Profile injects nothing.
type Profile struct {
	// Name identifies the profile (spooftrackd -fault-profile).
	Name string `json:"name"`
	// Desc is a one-line operator-facing description.
	Desc string `json:"desc,omitempty"`

	// PrDeployFail is the probability a deployment attempt fails
	// outright (mux unreachable, announcement rejected).
	PrDeployFail float64 `json:"pr_deploy_fail,omitempty"`
	// PrMeasureFail is the probability a measurement attempt is lost.
	PrMeasureFail float64 `json:"pr_measure_fail,omitempty"`
	// PrLinkFlap is the per-link, per-attempt probability of a flap
	// (feeds the platform's link-health breaker).
	PrLinkFlap float64 `json:"pr_link_flap,omitempty"`
	// PrTapDrop is the per-packet probability an event-tap delivery is
	// lost.
	PrTapDrop float64 `json:"pr_tap_drop,omitempty"`
	// PrFeedGap is the per-collector probability its feed is dark for a
	// configuration's capture window.
	PrFeedGap float64 `json:"pr_feed_gap,omitempty"`
	// PrProbeLoss is the per-traceroute probability it is lost beyond
	// the measurement model's own noise.
	PrProbeLoss float64 `json:"pr_probe_loss,omitempty"`
	// DeployLatency is the mean injected per-attempt deployment delay
	// (each attempt sleeps 0.5–1.5× this; slow BGP convergence).
	DeployLatency time.Duration `json:"deploy_latency,omitempty"`
	// ProbeLatency is the mean injected per-probe delay on the active
	// spoof-probing path (each probe sleeps 0.5–1.5× this; congested or
	// rate-limited reflectors).
	ProbeLatency time.Duration `json:"probe_latency,omitempty"`
	// HideVisibility is the fraction of observed sources hidden from an
	// otherwise successful catchment measurement.
	HideVisibility float64 `json:"hide_visibility,omitempty"`
	// PrPartition is the per-attempt probability an RPC between two
	// sharded-ingest nodes is blackholed (retries re-roll and heal
	// transient partitions).
	PrPartition float64 `json:"pr_partition,omitempty"`
	// PrShardCrash is the per-round probability an ingest shard dies
	// permanently at a round boundary.
	PrShardCrash float64 `json:"pr_shard_crash,omitempty"`
	// PrSplitBrain is the per-term probability the controller spuriously
	// loses its leadership lease at renewal, forcing abdication and a
	// fenced re-election.
	PrSplitBrain float64 `json:"pr_split_brain,omitempty"`
}

// builtins are the named scenario profiles, ordered mild to severe.
var builtins = []Profile{
	{
		Name:          "flaky-mux",
		Desc:          "PEERING muxes fail deployments and links flap mid-campaign",
		PrDeployFail:  0.30,
		PrLinkFlap:    0.12,
		DeployLatency: 500 * time.Microsecond,
	},
	{
		Name:          "slow-converge",
		Desc:          "BGP convergence drags; measurement windows close before routes settle",
		PrMeasureFail: 0.25,
		DeployLatency: 2 * time.Millisecond,
	},
	{
		Name:           "feed-gap",
		Desc:           "collector feeds go dark and traceroute batches are lost",
		PrMeasureFail:  0.15,
		PrFeedGap:      0.35,
		PrProbeLoss:    0.50,
		HideVisibility: 0.15,
	},
	{
		Name:      "tap-drop",
		Desc:      "per-packet events are lost between the honeypot tap and the pipeline",
		PrTapDrop: 0.25,
	},
	{
		Name:         "probe-storm",
		Desc:         "active spoof probes are mostly lost and the survivors crawl",
		PrProbeLoss:  0.85,
		ProbeLatency: 20 * time.Microsecond,
	},
	{
		Name:         "netsplit",
		Desc:         "the ingest tier partitions: shard RPCs blackhole and the controller lease flaps",
		PrPartition:  0.35,
		PrSplitBrain: 0.20,
	},
	{
		Name:           "chaos",
		Desc:           "everything at once, at moderate rates",
		PrDeployFail:   0.20,
		PrMeasureFail:  0.15,
		PrLinkFlap:     0.08,
		PrTapDrop:      0.10,
		PrFeedGap:      0.15,
		PrProbeLoss:    0.30,
		DeployLatency:  300 * time.Microsecond,
		HideVisibility: 0.05,
	},
}

// Profiles returns the built-in scenario profiles, mild to severe.
func Profiles() []Profile {
	out := make([]Profile, len(builtins))
	copy(out, builtins)
	return out
}

// Names returns the built-in profile names, sorted.
func Names() []string {
	out := make([]string, len(builtins))
	for i, p := range builtins {
		out[i] = p.Name
	}
	sort.Strings(out)
	return out
}

// ProfileByName resolves a built-in profile. The empty string and
// "none" resolve to the zero profile (no injection).
func ProfileByName(name string) (Profile, error) {
	if name == "" || name == "none" {
		return Profile{Name: "none"}, nil
	}
	for _, p := range builtins {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("fault: unknown profile %q (built-ins: %s)", name, strings.Join(Names(), ", "))
}
