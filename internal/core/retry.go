package core

import (
	"context"
	"time"

	"spooftrack/internal/measure"
)

// RetryPolicy controls per-configuration retry of faulted deployment
// and measurement attempts in RunCampaign. The zero policy retries
// nothing (one attempt, fail the campaign on error), which is the
// pre-fault behaviour.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts per configuration per
	// phase (deploy, measure). Values ≤ 1 mean a single attempt.
	MaxAttempts int
	// BaseBackoff is the wait before the first retry; each further retry
	// doubles it (exponential backoff), capped at MaxBackoff.
	BaseBackoff time.Duration
	// MaxBackoff caps the per-retry wait. Zero means no cap.
	MaxBackoff time.Duration
	// Jitter spreads each backoff by ±Jitter fraction. The jitter is a
	// deterministic hash of (config index, attempt), not a random draw,
	// so retried campaigns stay bit-reproducible.
	Jitter float64
	// DegradeOnExhaust records a configuration whose retries are
	// exhausted as incomplete (all-unknown catchments) and lets the
	// campaign proceed with partial intersections, instead of failing
	// the whole run. The baseline configuration (index 0) is always
	// fatal when permanently lost: sources are derived from it.
	DegradeOnExhaust bool
}

// DefaultRetryPolicy is the policy spooftrackd runs chaos campaigns
// under: 4 attempts, 100ms→2s exponential backoff with ±25% jitter,
// degrading on exhaustion.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts:      4,
		BaseBackoff:      100 * time.Millisecond,
		MaxBackoff:       2 * time.Second,
		Jitter:           0.25,
		DegradeOnExhaust: true,
	}
}

// attempts returns the effective attempt budget (always ≥ 1).
func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// Backoff returns the wait before retrying configuration cfgIdx after
// failed attempt number attempt (0-based): exponential in the attempt,
// capped, with deterministic ±Jitter derived from (cfgIdx, attempt).
func (p RetryPolicy) Backoff(cfgIdx, attempt int) time.Duration {
	d := p.BaseBackoff
	if d <= 0 {
		return 0
	}
	for i := 0; i < attempt && (p.MaxBackoff <= 0 || d < p.MaxBackoff); i++ {
		d *= 2
	}
	if p.MaxBackoff > 0 && d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	if p.Jitter > 0 {
		// SplitMix64 over the site identity: same campaign, same waits.
		h := uint64(cfgIdx)<<32 | uint64(attempt)
		h ^= h >> 30
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		h *= 0x94d049bb133111eb
		h ^= h >> 31
		u := float64(h>>11) / (1 << 53) // [0,1)
		d = time.Duration(float64(d) * (1 - p.Jitter + 2*p.Jitter*u))
	}
	return d
}

// sleepCtx waits d or until the context is canceled, whichever first,
// returning the context error on cancellation.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// MeasureFaultHook injects measurement faults into a campaign: Measure
// is consulted once per measurement attempt of configuration cfgIdx and
// returns non-nil when the attempt is lost (probe batch lost, collector
// session down). fault.Injector implements it.
type MeasureFaultHook interface {
	Measure(cfgIdx, attempt int) error
}

// MeasureMasker optionally degrades a successful measurement in place
// (partial catchment visibility): Mask hides sources and returns how
// many it hid. A MeasureFaultHook that also implements MeasureMasker is
// applied after each successful measurement. fault.Injector implements
// it.
type MeasureMasker interface {
	Mask(cfgIdx int, m *measure.CatchmentMeasurement) int
}
