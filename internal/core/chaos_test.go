package core

import (
	"context"
	"fmt"
	"reflect"
	"testing"
	"time"

	"spooftrack/internal/bgp"
	"spooftrack/internal/cluster"
	"spooftrack/internal/fault"
	"spooftrack/internal/sched"
)

// chaosRetry is the retry policy chaos tests run under: a generous
// attempt budget with zero backoff so the suite stays fast, degrading
// on exhaustion as the daemon does.
func chaosRetry() RetryPolicy {
	return RetryPolicy{MaxAttempts: 8, DegradeOnExhaust: true}
}

// truthBaseline runs a fault-free UseTruth campaign on a fresh world.
func truthBaseline(t *testing.T, seed uint64) (*Campaign, []sched.PlannedConfig) {
	t.Helper()
	w := smallWorld(t, seed)
	plan, err := w.DefaultPlan()
	if err != nil {
		t.Fatal(err)
	}
	c, err := w.RunCampaign(plan, CampaignOptions{UseTruth: true})
	if err != nil {
		t.Fatal(err)
	}
	return c, plan
}

// assertCoarsening fails unless every cluster of the faulty partition is
// a union of baseline clusters: sources the baseline keeps together, the
// faulty run must keep together (all-unknown rows never split, so a run
// that only *lost* information can only be coarser).
func assertCoarsening(t *testing.T, base, faulty *cluster.Partition) {
	t.Helper()
	if base.NumSources() != faulty.NumSources() {
		t.Fatalf("source counts differ: %d vs %d", base.NumSources(), faulty.NumSources())
	}
	// baseline cluster -> faulty cluster must be a function.
	img := make(map[int]int)
	for k := 0; k < base.NumSources(); k++ {
		b, f := base.ClusterOf(k), faulty.ClusterOf(k)
		if got, ok := img[b]; ok {
			if got != f {
				t.Fatalf("baseline cluster %d split by the faulty run (sources map to faulty clusters %d and %d)", b, got, f)
			}
		} else {
			img[b] = f
		}
	}
	if faulty.NumClusters() > base.NumClusters() {
		t.Fatalf("faulty run has more clusters (%d) than baseline (%d)", faulty.NumClusters(), base.NumClusters())
	}
}

// TestChaosProfilesConverge is the tentpole invariant: under every
// built-in scenario profile with retries enabled, a UseTruth campaign
// reaches the same clusters as the fault-free baseline — byte-identical
// Catchments and CatchmentTable when no configuration is permanently
// lost, a provable coarsening (superset clusters) when some are.
func TestChaosProfilesConverge(t *testing.T) {
	const seed = 42
	base, _ := truthBaseline(t, seed)
	for _, prof := range fault.Profiles() {
		prof := prof
		t.Run(prof.Name, func(t *testing.T) {
			prof.DeployLatency = 0 // keep the suite fast; latency is covered in fault's own tests
			w := smallWorld(t, seed)
			plan, err := w.DefaultPlan()
			if err != nil {
				t.Fatal(err)
			}
			inj := fault.New(prof, 7, w.Platform.NumLinks())
			w.Platform.SetFaultHook(inj)
			c, err := w.RunCampaign(plan, CampaignOptions{
				UseTruth: true,
				Retry:    chaosRetry(),
			})
			if err != nil {
				t.Fatalf("campaign under %s did not survive: %v", prof.Name, err)
			}
			if !reflect.DeepEqual(base.Sources, c.Sources) {
				t.Fatal("sources diverged from fault-free baseline")
			}
			if len(c.Incomplete) == 0 {
				if !reflect.DeepEqual(base.Catchments, c.Catchments) {
					t.Fatal("no config lost, but catchment matrix diverged from fault-free baseline")
				}
				for _, cfg := range []int{0, len(plan) / 2, len(plan) - 1} {
					if !reflect.DeepEqual(base.CatchmentTable(cfg), c.CatchmentTable(cfg)) {
						t.Fatalf("CatchmentTable(%d) diverged", cfg)
					}
				}
				return
			}
			// Some configs permanently lost: their rows must be uniformly
			// unknown, every surviving row byte-identical, and the final
			// partition a coarsening of the baseline's.
			t.Logf("%s: %d/%d configs permanently lost", prof.Name, len(c.Incomplete), len(plan))
			for i := range plan {
				if c.IsIncomplete(i) {
					for k, l := range c.Catchments[i] {
						if l != bgp.NoLink {
							t.Fatalf("incomplete config %d has known catchment for source %d", i, k)
						}
					}
					if len(c.CatchmentTable(i)) != 0 {
						t.Fatalf("incomplete config %d has a non-empty catchment table", i)
					}
					continue
				}
				if !reflect.DeepEqual(base.Catchments[i], c.Catchments[i]) {
					t.Fatalf("surviving config %d diverged from baseline", i)
				}
			}
			assertCoarsening(t, base.FinalPartition(), c.FinalPartition())
		})
	}
}

// TestChaosDeterministic: the same profile and seed reproduce the same
// campaign bit-for-bit, at different parallelism settings.
func TestChaosDeterministic(t *testing.T) {
	prof, err := fault.ProfileByName("chaos")
	if err != nil {
		t.Fatal(err)
	}
	prof.DeployLatency = 0
	run := func(parallelism int) *Campaign {
		w := smallWorld(t, 7)
		plan, err := w.DefaultPlan()
		if err != nil {
			t.Fatal(err)
		}
		w.Platform.SetFaultHook(fault.New(prof, 99, w.Platform.NumLinks()))
		c, err := w.RunCampaign(plan, CampaignOptions{
			UseTruth:    true,
			Retry:       chaosRetry(),
			Parallelism: parallelism,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	a, b := run(1), run(8)
	if !reflect.DeepEqual(a.Incomplete, b.Incomplete) {
		t.Fatalf("incomplete sets diverged across parallelism: %v vs %v", a.Incomplete, b.Incomplete)
	}
	if !reflect.DeepEqual(a.Catchments, b.Catchments) {
		t.Fatal("catchment matrices diverged across parallelism")
	}
}

// dropHook permanently fails the deployment of configurations whose
// canonical keys it holds, and passes everything else through.
type dropHook struct{ keys map[string]bool }

func (d *dropHook) Deploy(cfgKey string, attempt int) ([]bgp.LinkID, error) {
	if d.keys[cfgKey] {
		return nil, fmt.Errorf("dropHook: config permanently down")
	}
	return nil, nil
}

func TestChaosForcedDropIsProvableSuperset(t *testing.T) {
	const seed = 11
	base, plan := truthBaseline(t, seed)
	w := smallWorld(t, seed)
	plan2, err := w.DefaultPlan()
	if err != nil {
		t.Fatal(err)
	}
	dropped := []int{3, len(plan2) / 2, len(plan2) - 1}
	hook := &dropHook{keys: map[string]bool{}}
	for _, i := range dropped {
		hook.keys[plan2[i].Config.Key()] = true
	}
	w.Platform.SetFaultHook(hook)
	c, err := w.RunCampaign(plan2, CampaignOptions{UseTruth: true, Retry: chaosRetry()})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c.Incomplete, dropped) {
		t.Fatalf("Incomplete = %v, want %v", c.Incomplete, dropped)
	}
	for _, i := range dropped {
		if len(c.CatchmentTable(i)) != 0 {
			t.Fatalf("dropped config %d still has a catchment table", i)
		}
	}
	assertCoarsening(t, base.FinalPartition(), c.FinalPartition())
	if reflect.DeepEqual(plan, plan2) && c.FinalPartition().NumClusters() > base.FinalPartition().NumClusters() {
		t.Fatal("dropping configs must not create clusters")
	}
	// The baseline config permanently down is fatal: sources derive from it.
	w2 := smallWorld(t, seed)
	plan3, _ := w2.DefaultPlan()
	w2.Platform.SetFaultHook(&dropHook{keys: map[string]bool{plan3[0].Config.Key(): true}})
	if _, err := w2.RunCampaign(plan3, CampaignOptions{UseTruth: true, Retry: chaosRetry()}); err == nil {
		t.Fatal("losing the baseline config must fail the campaign")
	}
}

// TestChaosMeasuredPathByteIdentical: with measurement faults retried to
// success, the measured pipeline reproduces the fault-free measurements
// byte-for-byte (each retry consumes a pristine copy of the config's
// RNG).
func TestChaosMeasuredPathByteIdentical(t *testing.T) {
	const seed, nConfigs = 5, 20
	runMeasured := func(withFaults bool) *Campaign {
		w := smallWorld(t, seed)
		plan, err := w.DefaultPlan()
		if err != nil {
			t.Fatal(err)
		}
		plan = plan[:nConfigs]
		opts := CampaignOptions{}
		if withFaults {
			prof, err := fault.ProfileByName("slow-converge")
			if err != nil {
				t.Fatal(err)
			}
			prof.DeployLatency = 0
			inj := fault.New(prof, 13, w.Platform.NumLinks())
			w.Platform.SetFaultHook(inj)
			opts.MeasureFault = inj
			opts.Retry = RetryPolicy{MaxAttempts: 12, DegradeOnExhaust: true}
		}
		c, err := w.RunCampaign(plan, opts)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	base, faulty := runMeasured(false), runMeasured(true)
	if len(faulty.Incomplete) != 0 {
		// Deterministic under the fixed seeds; 12 attempts at 25% loss
		// makes exhaustion essentially impossible.
		t.Fatalf("unexpected permanent losses: %v", faulty.Incomplete)
	}
	for i := range base.Measurements {
		if !reflect.DeepEqual(base.Measurements[i], faulty.Measurements[i]) {
			t.Fatalf("measurement %d diverged from fault-free baseline", i)
		}
	}
	if !reflect.DeepEqual(base.Catchments, faulty.Catchments) {
		t.Fatal("imputed catchments diverged")
	}
}

// TestChaosMeasuredPathDegrades: the feed-gap profile (feed gaps, probe
// loss, partial visibility) degrades measurements but the campaign still
// completes and localizes.
func TestChaosMeasuredPathDegrades(t *testing.T) {
	const seed, nConfigs = 5, 15
	w := smallWorld(t, seed)
	plan, err := w.DefaultPlan()
	if err != nil {
		t.Fatal(err)
	}
	plan = plan[:nConfigs]
	prof, err := fault.ProfileByName("feed-gap")
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.New(prof, 3, w.Platform.NumLinks())
	w.Platform.SetFaultHook(inj)
	c, err := w.RunCampaign(plan, CampaignOptions{
		MeasureFault: inj,
		Retry:        chaosRetry(),
	})
	if err != nil {
		t.Fatalf("feed-gap campaign did not survive: %v", err)
	}
	if len(c.Sources) == 0 {
		t.Fatal("no sources localized")
	}
	if c.FinalPartition().NumClusters() < 2 {
		t.Fatal("degraded campaign should still split the source space")
	}
	if inj.Count(fault.KindHidden) == 0 {
		t.Fatal("feed-gap profile should have masked some sources")
	}
}

func TestRetryPolicyBackoff(t *testing.T) {
	p := RetryPolicy{BaseBackoff: 100 * time.Millisecond, MaxBackoff: 400 * time.Millisecond}
	if d := p.Backoff(0, 0); d != 100*time.Millisecond {
		t.Fatalf("attempt 0 backoff = %v", d)
	}
	if d := p.Backoff(0, 1); d != 200*time.Millisecond {
		t.Fatalf("attempt 1 backoff = %v", d)
	}
	if d := p.Backoff(0, 5); d != 400*time.Millisecond {
		t.Fatalf("attempt 5 backoff = %v, want cap", d)
	}
	j := RetryPolicy{BaseBackoff: 100 * time.Millisecond, Jitter: 0.25}
	a, b := j.Backoff(1, 0), j.Backoff(2, 0)
	if a == b {
		t.Fatal("jitter should vary across configs")
	}
	for _, d := range []time.Duration{a, b} {
		if d < 75*time.Millisecond || d > 125*time.Millisecond {
			t.Fatalf("jittered backoff %v outside ±25%%", d)
		}
	}
	if j.Backoff(1, 0) != a {
		t.Fatal("jitter must be deterministic")
	}
	if (RetryPolicy{}).Backoff(0, 3) != 0 {
		t.Fatal("zero policy must not wait")
	}
	if (RetryPolicy{}).attempts() != 1 || (RetryPolicy{MaxAttempts: 5}).attempts() != 5 {
		t.Fatal("attempts() wrong")
	}
}

func TestRetryRespectsContextDeadline(t *testing.T) {
	w := smallWorld(t, 9)
	plan, err := w.DefaultPlan()
	if err != nil {
		t.Fatal(err)
	}
	w.Platform.SetFaultHook(&dropHook{keys: map[string]bool{plan[0].Config.Key(): true}})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = w.RunCampaign(plan, CampaignOptions{
		UseTruth: true,
		Ctx:      ctx,
		Retry:    RetryPolicy{MaxAttempts: 100, BaseBackoff: time.Second, MaxBackoff: time.Minute},
	})
	if err == nil {
		t.Fatal("campaign should fail when the deadline cuts retries short")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("backoff ignored the context deadline (took %v)", elapsed)
	}
}
