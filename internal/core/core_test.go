package core

import (
	"testing"
	"time"

	"spooftrack/internal/bgp"
	"spooftrack/internal/sched"
	"spooftrack/internal/topo"
)

// smallWorld builds a reduced-scale world for fast tests.
func smallWorld(t testing.TB, seed uint64) *World {
	t.Helper()
	p := DefaultWorldParams(seed)
	tp := topo.DefaultGenParams(seed)
	tp.NumASes = 1200
	p.Topo = &tp
	p.NumCollectors = 80
	p.NumProbes = 300
	p.MaxPoisonTargets = 40
	w, err := BuildWorld(p)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestBuildWorldDefaults(t *testing.T) {
	w := smallWorld(t, 1)
	if w.Graph.NumASes() != 1200 {
		t.Fatalf("NumASes = %d", w.Graph.NumASes())
	}
	if w.Platform.NumLinks() != 7 {
		t.Fatalf("links = %d, want 7", w.Platform.NumLinks())
	}
	if len(w.Vantages.Collectors) != 80 || len(w.Vantages.Probes) != 300 {
		t.Fatal("vantage sizes wrong")
	}
}

func TestDefaultPlanShape(t *testing.T) {
	w := smallWorld(t, 2)
	plan, err := w.DefaultPlan()
	if err != nil {
		t.Fatal(err)
	}
	counts := sched.PhaseCounts(plan)
	if counts[sched.PhaseLocations] != 64 {
		t.Errorf("locations = %d, want 64", counts[sched.PhaseLocations])
	}
	if counts[sched.PhasePrepending] != 294 {
		t.Errorf("prepending = %d, want 294", counts[sched.PhasePrepending])
	}
	if counts[sched.PhasePoisoning] != 40 {
		t.Errorf("poisoning = %d, want capped 40", counts[sched.PhasePoisoning])
	}
	// Poison targets must be neighbors of the poisoned link's provider.
	for _, pc := range plan {
		if pc.Phase != sched.PhasePoisoning {
			continue
		}
		for _, a := range pc.Config.Anns {
			if len(a.Poison) == 0 {
				continue
			}
			prov := w.Platform.Muxes()[a.Link].Provider
			for _, target := range a.Poison {
				idx, ok := w.Graph.Index(target)
				if !ok {
					t.Fatalf("poison target AS%d not in graph", target)
				}
				if _, adjacent := w.Graph.Rel(prov, idx); !adjacent {
					t.Fatalf("poison target AS%d is not a neighbor of link %d's provider", target, a.Link)
				}
			}
		}
	}
}

func TestRunCampaignTruth(t *testing.T) {
	w := smallWorld(t, 3)
	plan, err := w.DefaultPlan()
	if err != nil {
		t.Fatal(err)
	}
	plan = plan[:24] // keep the test fast
	camp, err := w.RunCampaign(plan, CampaignOptions{UseTruth: true})
	if err != nil {
		t.Fatal(err)
	}
	if camp.NumConfigs() != 24 || len(camp.Catchments) != 24 {
		t.Fatal("campaign sizes wrong")
	}
	if camp.NumSources() != w.Graph.NumASes() {
		t.Fatalf("truth campaign should cover all ASes, got %d", camp.NumSources())
	}
	// Refinement trajectory is monotone in cluster count.
	prev := 0
	p := camp.PartitionAfter(0)
	if p.NumClusters() != 1 {
		t.Fatal("empty refinement should be one cluster")
	}
	for n := 1; n <= 24; n++ {
		k := camp.PartitionAfter(n).NumClusters()
		if k < prev {
			t.Fatal("cluster count decreased")
		}
		prev = k
	}
	if got := camp.FinalPartition().NumClusters(); got != prev {
		t.Fatal("FinalPartition inconsistent with PartitionAfter")
	}
}

func TestRunCampaignMeasured(t *testing.T) {
	w := smallWorld(t, 4)
	plan, err := w.DefaultPlan()
	if err != nil {
		t.Fatal(err)
	}
	plan = plan[:12]
	var progress int
	camp, err := w.RunCampaign(plan, CampaignOptions{
		Progress: func(done, total int) { progress = done },
	})
	if err != nil {
		t.Fatal(err)
	}
	if progress != 12 {
		t.Fatalf("progress callback reached %d, want 12", progress)
	}
	if camp.Imputed == nil || len(camp.Measurements) != 12 {
		t.Fatal("measured campaign missing measurement state")
	}
	if camp.NumSources() == 0 {
		t.Fatal("no sources observed")
	}
	// Sources should be a meaningful fraction of the topology but not
	// everything (vantage coverage is partial).
	frac := float64(camp.NumSources()) / float64(w.Graph.NumASes())
	if frac < 0.2 || frac > 0.99 {
		t.Fatalf("source coverage %.2f implausible", frac)
	}
	// Measured catchments should mostly agree with the truth.
	wrong, total := 0, 0
	for cc, out := range camp.Outcomes {
		for k, src := range camp.Sources {
			got := camp.Catchments[cc][k]
			if got == bgp.NoLink {
				continue
			}
			total++
			if got != out.CatchmentOf(src) {
				wrong++
			}
		}
	}
	if total == 0 {
		t.Fatal("no catchments measured")
	}
	if frac := float64(wrong) / float64(total); frac > 0.10 {
		t.Fatalf("measured catchments wrong for %.1f%%", frac*100)
	}
}

func TestRunCampaignWireFeeds(t *testing.T) {
	// The MRT wire round-trip must not change measured catchments.
	p := DefaultWorldParams(4)
	tp := topo.DefaultGenParams(4)
	tp.NumASes = 1200
	p.Topo = &tp
	p.NumCollectors = 80
	p.NumProbes = 300
	p.MaxPoisonTargets = 40
	w1, err := BuildWorld(p)
	if err != nil {
		t.Fatal(err)
	}
	p.WireFeeds = true
	w2, err := BuildWorld(p)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := w1.DefaultPlan()
	if err != nil {
		t.Fatal(err)
	}
	plan = plan[:8]
	c1, err := w1.RunCampaign(plan, CampaignOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := w2.RunCampaign(plan, CampaignOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if c1.NumSources() != c2.NumSources() {
		t.Fatalf("wire feeds changed source count: %d vs %d", c1.NumSources(), c2.NumSources())
	}
	for cc := range c1.Catchments {
		for k := range c1.Catchments[cc] {
			if c1.Catchments[cc][k] != c2.Catchments[cc][k] {
				t.Fatalf("wire feeds changed catchment [%d][%d]", cc, k)
			}
		}
	}
}

func TestRunCampaignConcurrentPrefixes(t *testing.T) {
	w := smallWorld(t, 9)
	plan, err := w.DefaultPlan()
	if err != nil {
		t.Fatal(err)
	}
	plan = plan[:10]
	camp, err := w.RunCampaign(plan, CampaignOptions{UseTruth: true, ConcurrentPrefixes: 4})
	if err != nil {
		t.Fatal(err)
	}
	// 10 configs over 4 prefixes = 3 slots of 70 minutes.
	if got, want := camp.Elapsed, 3*70*time.Minute; got != want {
		t.Fatalf("Elapsed = %v, want %v", got, want)
	}
	// Catchments are unaffected by concurrency.
	w2 := smallWorld(t, 9)
	seq, err := w2.RunCampaign(plan, CampaignOptions{UseTruth: true})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Elapsed != 10*70*time.Minute {
		t.Fatalf("sequential Elapsed = %v", seq.Elapsed)
	}
	for c := range camp.Catchments {
		for k := range camp.Catchments[c] {
			if camp.Catchments[c][k] != seq.Catchments[c][k] {
				t.Fatal("concurrency changed catchments")
			}
		}
	}
}

func TestRunCampaignEmptyPlan(t *testing.T) {
	w := smallWorld(t, 5)
	if _, err := w.RunCampaign(nil, CampaignOptions{}); err == nil {
		t.Fatal("expected error for empty plan")
	}
}

func TestMetricsTrajectoryMatchesPartitions(t *testing.T) {
	w := smallWorld(t, 6)
	plan, err := w.DefaultPlan()
	if err != nil {
		t.Fatal(err)
	}
	plan = plan[:10]
	camp, err := w.RunCampaign(plan, CampaignOptions{UseTruth: true})
	if err != nil {
		t.Fatal(err)
	}
	traj := camp.MetricsTrajectory()
	if len(traj) != 10 {
		t.Fatal("trajectory length wrong")
	}
	for n := 1; n <= 10; n++ {
		want := camp.PartitionAfter(n).Summarize()
		if traj[n-1] != want {
			t.Fatalf("trajectory[%d] = %+v, want %+v", n-1, traj[n-1], want)
		}
	}
}

func TestPhasePartitions(t *testing.T) {
	w := smallWorld(t, 7)
	plan, err := w.DefaultPlan()
	if err != nil {
		t.Fatal(err)
	}
	camp, err := w.RunCampaign(plan[:70], CampaignOptions{UseTruth: true})
	if err != nil {
		t.Fatal(err)
	}
	parts := camp.PhasePartitions()
	locEnd := sched.PhaseEnd(camp.Plan, sched.PhaseLocations)
	if got := parts[sched.PhaseLocations].NumClusters(); got != camp.PartitionAfter(locEnd).NumClusters() {
		t.Fatal("phase partition inconsistent")
	}
	// Later phases refine further (or equal).
	if parts[sched.PhasePrepending].NumClusters() < parts[sched.PhaseLocations].NumClusters() {
		t.Fatal("prepending phase lost clusters")
	}
}

func TestSubCampaignFootprint(t *testing.T) {
	w := smallWorld(t, 8)
	plan, err := w.DefaultPlan()
	if err != nil {
		t.Fatal(err)
	}
	camp, err := w.RunCampaign(plan[:sched.PhaseEnd(plan, sched.PhasePrepending)], CampaignOptions{UseTruth: true})
	if err != nil {
		t.Fatal(err)
	}
	// Six-location emulation: drop link 6.
	links := []bgp.LinkID{0, 1, 2, 3, 4, 5}
	keep := camp.ConfigsUsingOnlyLinks(links)
	if len(keep) != 118 {
		t.Fatalf("six-location sub-plan has %d configs, want 118", len(keep))
	}
	sub := camp.SubCampaign(keep)
	if sub.NumConfigs() != 118 {
		t.Fatal("SubCampaign size wrong")
	}
	// Fewer configurations cannot produce more clusters.
	if sub.FinalPartition().NumClusters() > camp.FinalPartition().NumClusters() {
		t.Fatal("sub-campaign produced more clusters than the full campaign")
	}
	// Five locations: 31 configs.
	keep5 := camp.ConfigsUsingOnlyLinks([]bgp.LinkID{0, 1, 2, 3, 4})
	if len(keep5) != 31 {
		t.Fatalf("five-location sub-plan has %d configs, want 31", len(keep5))
	}
}
