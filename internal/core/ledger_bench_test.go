package core

import (
	"testing"

	"spooftrack/internal/provenance"
)

// benchCampaignLedger times a full UseTruth campaign — including the
// final-partition verdict every consumer derives — with or without a
// provenance ledger attached. The two benchmarks share the same world
// parameters and plan so the only difference is the ledger's event
// recording; scripts/bench.sh gates ledger-on at ≤5% over ledger-off.
func benchCampaignLedger(b *testing.B, withLedger bool) {
	w := smallWorld(b, 3)
	plan, err := w.DefaultPlan()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var led *provenance.Ledger
		if withLedger {
			led = provenance.New(provenance.Options{})
		}
		// NoOutcomeCache: every iteration pays the real propagation cost
		// (a warm cache would shrink the denominator to cache lookups and
		// make the fixed ledger cost look relatively huge).
		c, err := w.RunCampaign(plan, CampaignOptions{UseTruth: true, NoOutcomeCache: true, Ledger: led})
		if err != nil {
			b.Fatal(err)
		}
		if c.FinalPartition().NumClusters() == 0 {
			b.Fatal("empty final partition")
		}
	}
}

func BenchmarkCampaignLedgerOff(b *testing.B) { benchCampaignLedger(b, false) }

func BenchmarkCampaignLedgerOn(b *testing.B) { benchCampaignLedger(b, true) }
