// Package core orchestrates the paper's system end-to-end: it builds a
// world (topology + PEERING platform + address space + measurement
// vantages), generates the three-phase announcement plan (§III-A, §IV-a),
// deploys it configuration by configuration, runs the measurement and
// inference pipeline per configuration (§IV-b/c), imputes source
// visibility (§IV-d), and exposes the catchment matrix and cluster
// partitions the evaluation section is built on.
package core

import (
	"fmt"
	"sort"

	"spooftrack/internal/addr"
	"spooftrack/internal/bgp"
	"spooftrack/internal/measure"
	"spooftrack/internal/peering"
	"spooftrack/internal/sched"
	"spooftrack/internal/stats"
	"spooftrack/internal/topo"
)

// WorldParams sizes the simulated world.
type WorldParams struct {
	// Seed drives every stochastic component.
	Seed uint64
	// Topo configures the synthetic Internet; zero value means
	// topo.DefaultGenParams(Seed).
	Topo *topo.GenParams
	// Graph, when non-nil, is used verbatim instead of generating a
	// topology from Topo — the -topo-file path. Separate processes that
	// load the same serialized graph (topo.ReadCAIDA) and share Seed
	// build byte-identical worlds, which is what lets a sharded
	// deployment agree on one attribution matrix.
	Graph *topo.Graph
	// Muxes lists the PoPs to deploy; nil means peering.TableI.
	Muxes []peering.MuxSpec
	// Engine configures routing realism; zero value means
	// bgp.DefaultParams(Seed).
	Engine *bgp.Params
	// NumCollectors is the number of BGP feed vantage ASes
	// (RouteViews + RIS peers).
	NumCollectors int
	// NumProbes is the number of traceroute probe ASes (the paper used
	// 1600 RIPE Atlas probes).
	NumProbes int
	// Noise configures traceroute imperfections.
	Noise measure.NoiseParams
	// MapperErrRate is the fraction of address blocks with wrong
	// IP-to-AS data.
	MapperErrRate float64
	// MaxPoisonTargets caps the poisoning phase of the default plan
	// (the paper identified 347 provider neighbors).
	MaxPoisonTargets int
	// WireFeeds routes every configuration's collector observations
	// through the MRT/BGP-UPDATE wire codec (package mrt) and back, as
	// real RouteViews/RIS consumption would.
	WireFeeds bool
	// OutcomeCacheCap bounds the platform's outcome cache (LRU past the
	// bound): 0 = bgp.DefaultOutcomeCacheCapacity, negative = unbounded.
	OutcomeCacheCap int
}

// DefaultWorldParams mirrors the paper's experimental scale: a topology
// big enough that the measurement dataset covers on the order of the
// paper's 1885 ASes, 7 PoPs, ~1600 probes, and a ~350-target poison
// phase.
func DefaultWorldParams(seed uint64) WorldParams {
	return WorldParams{
		Seed:             seed,
		NumCollectors:    250,
		NumProbes:        1600,
		Noise:            measure.DefaultNoise(),
		MapperErrRate:    0.02,
		MaxPoisonTargets: 347,
	}
}

// World is a fully built simulated environment.
type World struct {
	Params   WorldParams
	Graph    *topo.Graph
	Platform *peering.Platform
	Space    *addr.Space
	Mapper   addr.Mapper
	Vantages measure.VantageSet
	Infer    measure.InferInput
}

// BuildWorld constructs a world from parameters.
func BuildWorld(p WorldParams) (*World, error) {
	g := p.Graph
	if g == nil {
		tp := topo.DefaultGenParams(p.Seed)
		if p.Topo != nil {
			tp = *p.Topo
		}
		var err error
		g, err = topo.Generate(tp)
		if err != nil {
			return nil, fmt.Errorf("core: topology: %w", err)
		}
	}
	ep := bgp.DefaultParams(p.Seed)
	if p.Engine != nil {
		ep = *p.Engine
	}
	plat, err := peering.New(g, peering.Options{
		Muxes:                p.Muxes,
		EngineParams:         ep,
		OutcomeCacheCapacity: p.OutcomeCacheCap,
	})
	if err != nil {
		return nil, fmt.Errorf("core: platform: %w", err)
	}
	space := addr.Allocate(g)
	var mapper addr.Mapper = addr.PerfectMapper{Space: space}
	if p.MapperErrRate > 0 {
		nm, err := addr.NewNoisyMapper(space, p.MapperErrRate, p.Seed)
		if err != nil {
			return nil, fmt.Errorf("core: mapper: %w", err)
		}
		mapper = nm
	}
	v := measure.ChooseVantages(g, p.Seed, p.NumCollectors, p.NumProbes)
	w := &World{
		Params:   p,
		Graph:    g,
		Platform: plat,
		Space:    space,
		Mapper:   mapper,
		Vantages: v,
	}
	w.Infer = measure.InferInput{
		Graph:     g,
		Mapper:    mapper,
		OriginASN: peering.PEERINGASN,
		LinkOf: func(prov int) (bgp.LinkID, bool) {
			return plat.LinkByProvider(g.ASN(prov))
		},
	}
	return w, nil
}

// DefaultPlan generates the paper's three-phase campaign for this world:
// 64 location configurations, 294 prepending configurations, and a
// poisoning phase targeting neighbors of the platform's providers,
// capped at MaxPoisonTargets and spread round-robin across links
// preferring well-connected neighbors (which §III-A-c argues move the
// most sources).
func (w *World) DefaultPlan() ([]sched.PlannedConfig, error) {
	pp := sched.DefaultPlanParams(w.Platform.NumLinks())
	pp.PoisonTargets = w.poisonTargets()
	return sched.GeneratePlan(pp)
}

// poisonTargets selects provider-neighbor poison targets per link.
func (w *World) poisonTargets() map[bgp.LinkID][]topo.ASN {
	g := w.Graph
	neighbors := w.Platform.ProviderNeighbors()
	links := make([]bgp.LinkID, 0, len(neighbors))
	for l := range neighbors {
		links = append(links, l)
	}
	sort.Slice(links, func(i, j int) bool { return links[i] < links[j] })

	// Per link, order neighbors by degree descending (stable by ASN).
	ordered := make(map[bgp.LinkID][]topo.ASN, len(links))
	for _, l := range links {
		ns := append([]int(nil), neighbors[l]...)
		sort.Slice(ns, func(a, b int) bool {
			da, db := g.Degree(ns[a]), g.Degree(ns[b])
			if da != db {
				return da > db
			}
			return g.ASN(ns[a]) < g.ASN(ns[b])
		})
		asns := make([]topo.ASN, len(ns))
		for i, idx := range ns {
			asns[i] = g.ASN(idx)
		}
		ordered[l] = asns
	}

	cap := w.Params.MaxPoisonTargets
	if cap <= 0 {
		cap = 1 << 30
	}
	out := make(map[bgp.LinkID][]topo.ASN, len(links))
	total := 0
	for round := 0; total < cap; round++ {
		advanced := false
		for _, l := range links {
			if total >= cap {
				break
			}
			if round < len(ordered[l]) {
				out[l] = append(out[l], ordered[l][round])
				total++
				advanced = true
			}
		}
		if !advanced {
			break
		}
	}
	return out
}

// rngFor derives a deterministic child generator for a labeled purpose.
func (w *World) rngFor(label uint64) *stats.RNG {
	return stats.NewRNG(w.Params.Seed ^ (label * 0x9e3779b97f4a7c15))
}

// MeasureOutcome runs the full §IV collection-and-inference pipeline for
// one routing outcome: collector paths (optionally through the MRT wire
// codec), noisy traceroutes, repair, and catchment inference. configIdx
// stamps the simulated capture time of wire feeds.
func (w *World) MeasureOutcome(out *bgp.Outcome, configIdx int, rng *stats.RNG) (*measure.CatchmentMeasurement, error) {
	obs := measure.Collect(out, w.Vantages, w.Space, w.Params.Noise, rng)
	if w.Params.WireFeeds {
		ts := uint32(configIdx) * 70 * 60
		if err := measure.RoundTripMRT(&obs, w.Graph, ts); err != nil {
			return nil, fmt.Errorf("feed round-trip: %w", err)
		}
	}
	return measure.Infer(obs, w.Infer), nil
}
