package core

import (
	"runtime"
	"testing"

	"spooftrack/internal/sched"
)

// runVariant builds a fresh world (the platform clock and history are
// stateful, so variants cannot share one) and runs the same plan prefix
// under the given options.
func runVariant(t *testing.T, seed uint64, nConfigs int, opts CampaignOptions) *Campaign {
	t.Helper()
	w := smallWorld(t, seed)
	plan, err := w.DefaultPlan()
	if err != nil {
		t.Fatal(err)
	}
	camp, err := w.RunCampaign(plan[:nConfigs], opts)
	if err != nil {
		t.Fatal(err)
	}
	return camp
}

func sameCampaign(t *testing.T, label string, a, b *Campaign) {
	t.Helper()
	if a.Elapsed != b.Elapsed {
		t.Fatalf("%s: elapsed %v vs %v", label, a.Elapsed, b.Elapsed)
	}
	if len(a.Sources) != len(b.Sources) {
		t.Fatalf("%s: %d vs %d sources", label, len(a.Sources), len(b.Sources))
	}
	for k := range a.Sources {
		if a.Sources[k] != b.Sources[k] {
			t.Fatalf("%s: source %d differs", label, k)
		}
	}
	for c := range a.Catchments {
		for k := range a.Catchments[c] {
			if a.Catchments[c][k] != b.Catchments[c][k] {
				t.Fatalf("%s: catchment differs at config %d source %d: %d vs %d",
					label, c, k, a.Catchments[c][k], b.Catchments[c][k])
			}
		}
	}
	for c := range a.Outcomes {
		av, bv := a.Outcomes[c].CatchmentVector(), b.Outcomes[c].CatchmentVector()
		for i := range av {
			if av[i] != bv[i] {
				t.Fatalf("%s: outcome %d differs at AS %d", label, c, i)
			}
		}
	}
}

// TestRunCampaignParallelismInvariant is the acceptance check for the
// parallel deployment pool: campaigns must be bit-identical at
// Parallelism 1 and GOMAXPROCS, with and without the outcome cache.
// Run under -race this also exercises the pool for data races.
func TestRunCampaignParallelismInvariant(t *testing.T) {
	const seed, n = 11, 20
	base := runVariant(t, seed, n, CampaignOptions{Parallelism: 1})
	wide := runVariant(t, seed, n, CampaignOptions{Parallelism: runtime.GOMAXPROCS(0)})
	sameCampaign(t, "parallelism", base, wide)
	nocacheSeq := runVariant(t, seed, n, CampaignOptions{Parallelism: 1, NoOutcomeCache: true})
	sameCampaign(t, "no-cache sequential", base, nocacheSeq)
	nocacheWide := runVariant(t, seed, n, CampaignOptions{NoOutcomeCache: true})
	sameCampaign(t, "no-cache parallel", base, nocacheWide)
}

// TestRunCampaignTruthParallelismInvariant covers the truth path (no
// measurement pipeline), where deployment is the only fan-out.
func TestRunCampaignTruthParallelismInvariant(t *testing.T) {
	const seed, n = 12, 30
	base := runVariant(t, seed, n, CampaignOptions{UseTruth: true, Parallelism: 1})
	wide := runVariant(t, seed, n, CampaignOptions{UseTruth: true})
	sameCampaign(t, "truth", base, wide)
}

// TestOutcomeCacheReusedAcrossConfigs checks that repeated deployments
// of identical configurations hit the platform cache while the clock
// still advances per deployment.
func TestOutcomeCacheReusedAcrossConfigs(t *testing.T) {
	w := smallWorld(t, 13)
	plan, err := w.DefaultPlan()
	if err != nil {
		t.Fatal(err)
	}
	dup := []sched.PlannedConfig{plan[0], plan[1], plan[0], plan[1], plan[0]}
	camp, err := w.RunCampaign(dup, CampaignOptions{UseTruth: true})
	if err != nil {
		t.Fatal(err)
	}
	hits, misses := w.Platform.CacheStats()
	if misses != 2 || hits != 3 {
		t.Fatalf("cache stats hits=%d misses=%d, want 3/2", hits, misses)
	}
	// Cache hits are pointer-stable.
	if camp.Outcomes[0] != camp.Outcomes[2] || camp.Outcomes[0] != camp.Outcomes[4] {
		t.Fatal("duplicate configs did not reuse the cached outcome")
	}
	// The simulated clock charges every deployment, cached or not.
	want := 5 * w.Platform.Constraints().ConfigDuration
	if camp.Elapsed != want {
		t.Fatalf("elapsed %v, want %v", camp.Elapsed, want)
	}
	if w.Platform.Deployed() != 5 {
		t.Fatalf("deployed %d, want 5", w.Platform.Deployed())
	}
}
