package core

import (
	"bytes"
	"strings"
	"testing"

	"spooftrack/internal/bgp"
	"spooftrack/internal/cluster"
	"spooftrack/internal/sched"
)

func datasetCampaign(t *testing.T) *Campaign {
	t.Helper()
	w := smallWorld(t, 31)
	plan, err := w.DefaultPlan()
	if err != nil {
		t.Fatal(err)
	}
	camp, err := w.RunCampaign(plan[:20], CampaignOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return camp
}

func TestDatasetRoundTrip(t *testing.T) {
	camp := datasetCampaign(t)
	d := camp.Dataset()
	var buf bytes.Buffer
	if err := WriteDataset(&buf, d); err != nil {
		t.Fatal(err)
	}
	d2, err := ReadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(d2.Configs) != len(d.Configs) {
		t.Fatalf("configs %d, want %d", len(d2.Configs), len(d.Configs))
	}
	if len(d2.Header.SourceASNs) != len(d.Header.SourceASNs) {
		t.Fatal("sources differ")
	}
	for i := range d.Configs {
		if d.Configs[i].Phase != d2.Configs[i].Phase {
			t.Fatal("phase lost")
		}
		for k := range d.Configs[i].Catchments {
			if d.Configs[i].Catchments[k] != d2.Configs[i].Catchments[k] {
				t.Fatal("catchment lost")
			}
		}
	}
}

func TestDatasetMatrixMatchesCampaign(t *testing.T) {
	camp := datasetCampaign(t)
	d := camp.Dataset()
	matrix := d.CatchmentMatrix()
	for c := range matrix {
		for k := range matrix[c] {
			if matrix[c][k] != camp.Catchments[c][k] {
				t.Fatalf("matrix[%d][%d] = %d, want %d", c, k, matrix[c][k], camp.Catchments[c][k])
			}
		}
	}
	// Clustering from the dataset equals clustering from the campaign.
	p1 := cluster.New(len(d.Header.SourceASNs))
	for _, row := range matrix {
		p1.Refine(row)
	}
	p2 := camp.FinalPartition()
	if p1.NumClusters() != p2.NumClusters() {
		t.Fatalf("dataset clustering %d clusters, campaign %d", p1.NumClusters(), p2.NumClusters())
	}
}

func TestDatasetPhaseOf(t *testing.T) {
	camp := datasetCampaign(t)
	d := camp.Dataset()
	for i := range d.Configs {
		ph, err := d.Configs[i].PhaseOf()
		if err != nil {
			t.Fatal(err)
		}
		if ph != camp.Plan[i].Phase {
			t.Fatalf("config %d phase %v, want %v", i, ph, camp.Plan[i].Phase)
		}
	}
	bad := DatasetConfig{Phase: "quantum"}
	if _, err := bad.PhaseOf(); err == nil {
		t.Fatal("unknown phase accepted")
	}
}

func TestReadDatasetRejectsGarbage(t *testing.T) {
	cases := []string{
		"",           // no header
		"not json\n", // bad header
		`{"version":99,"muxes":["a"],"source_asns":[1]}` + "\n", // bad version
		`{"version":1,"muxes":[],"source_asns":[1]}` + "\n",     // no muxes
		// catchment length mismatch:
		`{"version":1,"muxes":["a"],"source_asns":[1,2]}` + "\n" +
			`{"phase":"locations","announcements":[{"link":0}],"catchments":[0]}` + "\n",
		// out-of-range link:
		`{"version":1,"muxes":["a"],"source_asns":[1]}` + "\n" +
			`{"phase":"locations","announcements":[{"link":0}],"catchments":[3]}` + "\n",
		// no announcements:
		`{"version":1,"muxes":["a"],"source_asns":[1]}` + "\n" +
			`{"phase":"locations","announcements":[],"catchments":[0]}` + "\n",
		// unknown announcement link:
		`{"version":1,"muxes":["a"],"source_asns":[1]}` + "\n" +
			`{"phase":"locations","announcements":[{"link":5}],"catchments":[0]}` + "\n",
	}
	for i, in := range cases {
		if _, err := ReadDataset(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestDatasetDrivesScheduling(t *testing.T) {
	camp := datasetCampaign(t)
	var buf bytes.Buffer
	if err := WriteDataset(&buf, camp.Dataset()); err != nil {
		t.Fatal(err)
	}
	d, err := ReadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// The exported matrix feeds the Fig. 8 machinery directly.
	traj, order := sched.GreedyTrajectory(d.CatchmentMatrix(), 5)
	if len(traj) != 5 || len(order) != 5 {
		t.Fatal("greedy over dataset failed")
	}
	if traj[4] > traj[0] {
		t.Fatal("greedy trajectory not improving")
	}
	_ = bgp.NoLink
}
