package core

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"spooftrack/internal/bgp"
	"spooftrack/internal/sched"
	"spooftrack/internal/topo"
)

// The paper releases its measurement dataset (§VI) — per-configuration
// catchment assignments for every observed AS — so that others can study
// route manipulation without redeploying weeks of announcements. This
// file implements the equivalent: a campaign exports to a streamable
// JSON-lines dataset and can be re-analyzed (clustering, scheduling,
// spoofed-traffic studies) from the file alone.
//
// Format: the first line is a header object; every following line is
// one configuration record. Catchments are stored per source in header
// order, -1 meaning unobserved.

// DatasetHeader is the first line of a dataset file.
type DatasetHeader struct {
	// Version identifies the format.
	Version int `json:"version"`
	// Muxes are the peering link names, indexed by LinkID.
	Muxes []string `json:"muxes"`
	// SourceASNs lists the analyzed sources.
	SourceASNs []topo.ASN `json:"source_asns"`
}

// DatasetConfig is one configuration record.
type DatasetConfig struct {
	// Phase is the generating technique ("locations", "prepending",
	// "poisoning").
	Phase string `json:"phase"`
	// Announcements describe ⟨A; P; Q⟩.
	Announcements []DatasetAnn `json:"announcements"`
	// Catchments holds, per source (header order), the link id or -1.
	Catchments []int8 `json:"catchments"`
}

// DatasetAnn is one announcement within a configuration.
type DatasetAnn struct {
	Link    int        `json:"link"`
	Prepend int        `json:"prepend,omitempty"`
	Poison  []topo.ASN `json:"poison,omitempty"`
}

// Dataset is a fully parsed dataset.
type Dataset struct {
	Header  DatasetHeader
	Configs []DatasetConfig
}

// datasetVersion is the current format version.
const datasetVersion = 1

// Dataset exports the campaign's catchment matrix.
func (c *Campaign) Dataset() *Dataset {
	d := &Dataset{Header: DatasetHeader{Version: datasetVersion}}
	for _, m := range c.World.Platform.Muxes() {
		d.Header.Muxes = append(d.Header.Muxes, m.Spec.Name)
	}
	g := c.World.Graph
	for _, src := range c.Sources {
		d.Header.SourceASNs = append(d.Header.SourceASNs, g.ASN(src))
	}
	for i, pc := range c.Plan {
		rec := DatasetConfig{Phase: pc.Phase.String()}
		for _, a := range pc.Config.Anns {
			rec.Announcements = append(rec.Announcements, DatasetAnn{
				Link:    int(a.Link),
				Prepend: a.Prepend,
				Poison:  a.Poison,
			})
		}
		rec.Catchments = make([]int8, len(c.Sources))
		for k := range c.Sources {
			rec.Catchments[k] = int8(c.Catchments[i][k])
		}
		d.Configs = append(d.Configs, rec)
	}
	return d
}

// WriteDataset streams the dataset as JSON lines.
func WriteDataset(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(d.Header); err != nil {
		return fmt.Errorf("core: dataset header: %w", err)
	}
	for i := range d.Configs {
		if err := enc.Encode(&d.Configs[i]); err != nil {
			return fmt.Errorf("core: dataset config %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadDataset parses a dataset written by WriteDataset, validating
// structural consistency (catchment vector lengths, link ranges).
func ReadDataset(r io.Reader) (*Dataset, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	d := &Dataset{}
	if err := dec.Decode(&d.Header); err != nil {
		return nil, fmt.Errorf("core: dataset header: %w", err)
	}
	if d.Header.Version != datasetVersion {
		return nil, fmt.Errorf("core: unsupported dataset version %d", d.Header.Version)
	}
	if len(d.Header.Muxes) == 0 {
		return nil, fmt.Errorf("core: dataset has no muxes")
	}
	nSources := len(d.Header.SourceASNs)
	nLinks := len(d.Header.Muxes)
	for i := 0; ; i++ {
		var rec DatasetConfig
		if err := dec.Decode(&rec); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("core: dataset config %d: %w", i, err)
		}
		if len(rec.Catchments) != nSources {
			return nil, fmt.Errorf("core: config %d has %d catchments for %d sources",
				i, len(rec.Catchments), nSources)
		}
		for _, l := range rec.Catchments {
			if l < -1 || int(l) >= nLinks {
				return nil, fmt.Errorf("core: config %d has out-of-range link %d", i, l)
			}
		}
		if len(rec.Announcements) == 0 {
			return nil, fmt.Errorf("core: config %d announces from no links", i)
		}
		for _, a := range rec.Announcements {
			if a.Link < 0 || a.Link >= nLinks {
				return nil, fmt.Errorf("core: config %d announces on unknown link %d", i, a.Link)
			}
		}
		d.Configs = append(d.Configs, rec)
	}
	return d, nil
}

// CatchmentMatrix converts the dataset to the [config][source] matrix
// that package cluster and package sched consume.
func (d *Dataset) CatchmentMatrix() [][]bgp.LinkID {
	out := make([][]bgp.LinkID, len(d.Configs))
	for i, rec := range d.Configs {
		row := make([]bgp.LinkID, len(rec.Catchments))
		for k, l := range rec.Catchments {
			row[k] = bgp.LinkID(l)
		}
		out[i] = row
	}
	return out
}

// PhaseOf parses a record's phase label back to the sched constant.
func (rec *DatasetConfig) PhaseOf() (sched.Phase, error) {
	switch rec.Phase {
	case sched.PhaseLocations.String():
		return sched.PhaseLocations, nil
	case sched.PhasePrepending.String():
		return sched.PhasePrepending, nil
	case sched.PhasePoisoning.String():
		return sched.PhasePoisoning, nil
	default:
		return 0, fmt.Errorf("core: unknown phase %q", rec.Phase)
	}
}
