package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"spooftrack/internal/bgp"
	"spooftrack/internal/cluster"
	"spooftrack/internal/measure"
	"spooftrack/internal/metrics"
	"spooftrack/internal/provenance"
	"spooftrack/internal/sched"
	"spooftrack/internal/stats"
	"spooftrack/internal/trace"
)

// CampaignOptions tunes a campaign run.
type CampaignOptions struct {
	// UseTruth skips the measurement pipeline and uses the routing
	// engine's true catchments for every AS. Useful for isolating
	// algorithmic behaviour from measurement noise (and much faster).
	UseTruth bool
	// Progress, if non-nil, is called after each deployed configuration
	// with the number of configurations completed.
	Progress func(done, total int)
	// ConcurrentPrefixes deploys the plan over this many dedicated
	// prefixes in parallel time slots (§V-C's first speedup: "use
	// multiple prefixes and deploy multiple configurations
	// concurrently"). Prefixes route independently, so catchments are
	// unchanged; the campaign's simulated duration divides by this
	// factor. Zero or one means a single prefix.
	ConcurrentPrefixes int
	// Parallelism bounds the worker pool that runs route propagation and
	// the measurement pipeline across configurations (host CPU
	// parallelism, not a simulation parameter; results are bit-identical
	// at any setting). Zero means GOMAXPROCS.
	Parallelism int
	// NoOutcomeCache bypasses the platform's outcome cache for this
	// campaign: every configuration is propagated from scratch even if
	// seen before. Outcomes are identical either way; this exists for
	// benchmarking and memory-bounded runs.
	NoOutcomeCache bool
	// Ctx, if non-nil, cancels the campaign early: deployment and
	// measurement stop between configurations and RunCampaign returns
	// the context's error. Nil means run to completion.
	Ctx context.Context
	// Metrics, if non-nil, receives per-phase campaign instrumentation:
	// core_campaign_phase_seconds{phase="deploy"|"measure"} wall-clock
	// histograms, core_campaign_configs_total{phase} counters, plus
	// core_campaign_retries_total{phase} and
	// core_campaign_incomplete_configs_total under faults.
	Metrics *metrics.Registry
	// Retry controls per-configuration retry of faulted deployment and
	// measurement attempts (exponential backoff + deterministic jitter,
	// honoring Ctx). The zero policy makes every fault fatal, which is
	// the fault-free behaviour. Deployment faults come from the
	// platform's fault hook (peering.Platform.SetFaultHook); measurement
	// faults from MeasureFault.
	Retry RetryPolicy
	// MeasureFault, if non-nil, injects measurement-attempt faults
	// (and, when it also implements MeasureMasker, partial catchment
	// visibility on successful measurements). fault.Injector implements
	// both. Nil costs the hot path nothing.
	MeasureFault MeasureFaultHook
	// Ledger, if non-nil, records campaign provenance: every deployment
	// (with attempt counts), retry, permanent degradation, the final
	// catchment rows, and the campaign verdict. A nil ledger is
	// provenance-off and costs the hot path one nil check per event
	// site.
	Ledger *provenance.Ledger
}

// Campaign is the result of deploying a plan: per-configuration routing
// outcomes, measurements, and the imputed source-catchment matrix that
// clustering and scheduling consume.
type Campaign struct {
	World *World
	Plan  []sched.PlannedConfig
	// Outcomes[c] is the converged routing state of configuration c.
	Outcomes []*bgp.Outcome
	// Measurements[c] is the inferred per-AS catchment assignment
	// (nil when the campaign ran with UseTruth).
	Measurements []*measure.CatchmentMeasurement
	// Sources are the dense AS indices under analysis (§IV-d: the ASes
	// observed in the baseline configuration).
	Sources []int
	// Catchments[c][k] is the catchment of Sources[k] in configuration
	// c after imputation.
	Catchments [][]bgp.LinkID
	// Imputed is the imputation report (nil with UseTruth).
	Imputed *measure.ImputeResult
	// Incomplete lists the plan indices of configurations permanently
	// lost to faults (retries exhausted under a degrading RetryPolicy),
	// ascending. Their catchment rows are all-unknown (bgp.NoLink), so
	// clustering never splits on them: the final partition is provably a
	// coarsening of the fault-free partition. Empty on a clean run.
	Incomplete []int
	// Elapsed is the simulated experiment duration.
	Elapsed time.Duration

	finalOnce sync.Once
	finalPart *cluster.Partition
}

// IsIncomplete reports whether configuration cfgIdx was permanently
// lost to faults.
func (c *Campaign) IsIncomplete(cfgIdx int) bool {
	for _, i := range c.Incomplete {
		if i == cfgIdx {
			return true
		}
	}
	return false
}

// RunCampaign deploys every configuration of the plan in order, measures
// (or reads off) catchments, and imputes visibility.
func (w *World) RunCampaign(plan []sched.PlannedConfig, opts CampaignOptions) (*Campaign, error) {
	if len(plan) == 0 {
		return nil, fmt.Errorf("core: empty plan")
	}
	ctx := opts.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	c := &Campaign{World: w, Plan: plan}
	rng := w.rngFor(0xc0113c7)

	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(plan) {
		workers = len(plan)
	}

	// Root span for the whole campaign; every phase below nests under it.
	// Tracing never changes results: RNG splitting, deployment order, and
	// the simulated clock are identical with the tracer on or off.
	csp := trace.Start("core.campaign")
	defer csp.End()
	if csp != nil {
		csp.Set(
			trace.Int("configs", int64(len(plan))),
			trace.Int("workers", int64(workers)),
			trace.Bool("use_truth", opts.UseTruth),
		)
	}

	var phaseH *metrics.HistogramVec
	var cfgC, retryC *metrics.CounterVec
	var incompleteC *metrics.Counter
	if opts.Metrics != nil {
		phaseH = opts.Metrics.HistogramVec("core_campaign_phase_seconds",
			[]string{"phase"}, 1e-4, 1e-3, 1e-2, 0.1, 1, 10, 60, 600)
		cfgC = opts.Metrics.CounterVec("core_campaign_configs_total", "phase")
		retryC = opts.Metrics.CounterVec("core_campaign_retries_total", "phase")
		incompleteC = opts.Metrics.Counter("core_campaign_incomplete_configs_total")
	}
	retry := opts.Retry
	led := opts.Ledger

	// Per-config RNGs split in plan order up front, so downstream results
	// do not depend on execution parallelism.
	rngs := make([]*stats.RNG, len(plan))
	for i := range plan {
		rngs[i] = rng.Split()
	}

	// Deployment splits into three steps so propagation — the expensive
	// part — can fan out across the worker pool while everything ordered
	// stays sequential: (1) constraint-check in plan order, so validation
	// errors surface at deterministic indices; (2) propagate each
	// configuration concurrently into its slot (after CheckConstraints,
	// propagation cannot fail except by cancellation); (3) record
	// clock/history strictly in plan order. Outcomes are bit-identical at
	// any Parallelism setting.
	for i, pc := range plan {
		if err := w.Platform.CheckConstraints(pc.Config); err != nil {
			return nil, fmt.Errorf("core: config %d (%v): %w", i, pc.Config, err)
		}
	}
	c.Outcomes = make([]*bgp.Outcome, len(plan))
	perrs := make([]error, len(plan))
	deployStart := time.Now()
	runPoolSpans(csp, "campaign.deploy.worker", workers, len(plan), func(i int, wsp *trace.Span) {
		if err := ctx.Err(); err != nil {
			perrs[i] = err
			return
		}
		var dsp *trace.Span
		if wsp != nil {
			// All indices are enqueued at phase start, so pickup time
			// relative to deployStart is exactly this config's wait in the
			// worker-pool queue.
			dsp = wsp.Child("campaign.deploy")
			dsp.Count("queue_wait_ns", time.Since(deployStart).Nanoseconds())
			dsp.Set(trace.String("config", plan[i].Config.Key()))
		}
		// Retry loop: each attempt goes through the platform's fault hook
		// (if any). After CheckConstraints, propagation itself cannot fail,
		// so every retryable error here is an injected deployment fault.
		var out *bgp.Outcome
		var err error
		attempts := 0
		for attempt := 0; ; attempt++ {
			if err = ctx.Err(); err != nil {
				break
			}
			out, err = w.Platform.PropagateAttempt(plan[i].Config, attempt, opts.NoOutcomeCache, dsp)
			attempts = attempt + 1
			if err == nil || attempt+1 >= retry.attempts() {
				if dsp != nil {
					dsp.Count("attempts", int64(attempt+1))
				}
				break
			}
			if retryC != nil {
				retryC.With("deploy").Inc()
			}
			led.RecordRetry(provenance.RetryEvent{Config: i, Phase: "deploy", Attempt: attempt, Error: err.Error()})
			if serr := sleepCtx(ctx, retry.Backoff(i, attempt)); serr != nil {
				err = serr
				break
			}
		}
		if err == nil && led.Enabled() {
			led.RecordDeploy(provenance.DeployEvent{
				Config:   i,
				Key:      plan[i].Config.Key(),
				Attempts: attempts,
				Phase:    plan[i].Phase.String(),
			})
		}
		c.Outcomes[i] = out
		perrs[i] = err
		dsp.End()
	})
	for i := range plan {
		if err := perrs[i]; err != nil {
			if ctx.Err() != nil {
				return nil, fmt.Errorf("core: campaign canceled at config %d: %w", i, err)
			}
			if retry.DegradeOnExhaust && i != 0 {
				// Permanently lost: record incomplete and move on. The
				// config's catchment row stays all-unknown and the simulated
				// clock does not advance for it (nothing was deployed).
				c.Outcomes[i] = nil
				c.Incomplete = append(c.Incomplete, i)
				if incompleteC != nil {
					incompleteC.Inc()
				}
				led.RecordDegrade(provenance.DegradeEvent{Config: i, Phase: "deploy", Error: err.Error()})
				continue
			}
			if i == 0 && retry.DegradeOnExhaust {
				return nil, fmt.Errorf("core: baseline config permanently lost (sources are derived from it): %w", err)
			}
			return nil, fmt.Errorf("core: config %d (%v): %w", i, plan[i].Config, err)
		}
		w.Platform.RecordTraced(plan[i].Config, csp)
	}
	if phaseH != nil {
		phaseH.With("deploy").Observe(time.Since(deployStart).Seconds())
		cfgC.With("deploy").Add(int64(len(plan)))
	}

	if !opts.UseTruth {
		// Measurement is independent per configuration: fan out.
		c.Measurements = make([]*measure.CatchmentMeasurement, len(plan))
		errs := make([]error, len(plan))
		lost := make([]bool, len(plan))
		masker, _ := opts.MeasureFault.(MeasureMasker)
		var done int32
		measureStart := time.Now()
		runPoolSpans(csp, "campaign.measure.worker", workers, len(plan), func(i int, wsp *trace.Span) {
			if ctx.Err() != nil {
				errs[i] = ctx.Err()
				return
			}
			var msp *trace.Span
			if wsp != nil {
				msp = wsp.Child("campaign.measure")
				msp.Set(trace.Int("config", int64(i)))
			}
			if c.Outcomes[i] == nil {
				// Deployment was permanently lost; nothing to measure.
				c.Measurements[i] = measure.Unobserved(w.Graph.NumASes())
				msp.End()
				return
			}
			// Retry loop over injected measurement faults. Each attempt
			// consumes a pristine copy of the config's pre-split RNG, so a
			// successful retry yields the byte-identical measurement a
			// fault-free run would have produced.
			var m *measure.CatchmentMeasurement
			var err error
			for attempt := 0; ; attempt++ {
				if err = ctx.Err(); err != nil {
					break
				}
				if opts.MeasureFault != nil {
					if err = opts.MeasureFault.Measure(i, attempt); err != nil {
						if attempt+1 >= retry.attempts() {
							break
						}
						if retryC != nil {
							retryC.With("measure").Inc()
						}
						led.RecordRetry(provenance.RetryEvent{Config: i, Phase: "measure", Attempt: attempt, Error: err.Error()})
						if serr := sleepCtx(ctx, retry.Backoff(i, attempt)); serr != nil {
							err = serr
						} else {
							continue
						}
						break
					}
				}
				r := *rngs[i]
				m, err = w.MeasureOutcome(c.Outcomes[i], i, &r)
				if msp != nil {
					msp.Count("attempts", int64(attempt+1))
				}
				break
			}
			if err != nil && ctx.Err() == nil && retry.DegradeOnExhaust && i != 0 {
				// Capture window permanently lost: keep an all-unknown
				// measurement so imputation and clustering degrade instead of
				// aborting.
				led.RecordDegrade(provenance.DegradeEvent{Config: i, Phase: "measure", Error: err.Error()})
				m, err, lost[i] = measure.Unobserved(w.Graph.NumASes()), nil, true
			}
			if m != nil && masker != nil {
				if hidden := masker.Mask(i, m); hidden > 0 && msp != nil {
					msp.Count("masked_sources", int64(hidden))
				}
			}
			msp.End()
			c.Measurements[i] = m
			errs[i] = err
			if opts.Progress != nil {
				opts.Progress(int(atomic.AddInt32(&done, 1)), len(plan))
			}
		})
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: campaign canceled during measurement: %w", err)
		}
		for i, err := range errs {
			if err != nil {
				if i == 0 && retry.DegradeOnExhaust {
					return nil, fmt.Errorf("core: baseline measurement permanently lost (sources are derived from it): %w", err)
				}
				return nil, fmt.Errorf("core: config %d: %w", i, err)
			}
		}
		for i, l := range lost {
			if l && !c.IsIncomplete(i) {
				c.Incomplete = append(c.Incomplete, i)
				if incompleteC != nil {
					incompleteC.Inc()
				}
			}
		}
		sort.Ints(c.Incomplete)
		if phaseH != nil {
			phaseH.With("measure").Observe(time.Since(measureStart).Seconds())
			cfgC.With("measure").Add(int64(len(plan)))
		}
	} else if opts.Progress != nil {
		opts.Progress(len(plan), len(plan))
	}
	c.Elapsed = w.Platform.Elapsed()
	if k := opts.ConcurrentPrefixes; k > 1 {
		slots := (len(plan) + k - 1) / k
		c.Elapsed = time.Duration(slots) * w.Platform.Constraints().ConfigDuration
	}

	if opts.UseTruth {
		// Sources: every AS routed in the baseline configuration.
		base := c.Outcomes[0]
		for i := 0; i < w.Graph.NumASes(); i++ {
			if base.HasRoute(i) {
				c.Sources = append(c.Sources, i)
			}
		}
		c.Catchments = make([][]bgp.LinkID, len(plan))
		for cc, out := range c.Outcomes {
			row := make([]bgp.LinkID, len(c.Sources))
			if out == nil {
				// Permanently lost configuration: a uniform all-unknown row,
				// which cluster.Refine never splits on.
				for k := range row {
					row[k] = bgp.NoLink
				}
			} else {
				for k, src := range c.Sources {
					row[k] = out.CatchmentOf(src)
				}
			}
			c.Catchments[cc] = row
		}
		c.recordProvenance(led, true)
		return c, nil
	}

	c.Imputed = measure.Impute(c.Measurements)
	c.Sources = c.Imputed.Sources
	c.Catchments = c.Imputed.Catchments
	c.recordProvenance(led, false)
	return c, nil
}

// recordProvenance closes the campaign's provenance chain: dimensions,
// the final per-configuration catchment rows (the evidence leaves
// clustering consumed), and the campaign verdict — the final partition
// in canonical assignment form, which provenance.Replay re-derives
// purely from the recorded rows.
func (c *Campaign) recordProvenance(led *provenance.Ledger, useTruth bool) {
	if !led.Enabled() {
		return
	}
	led.RecordMeta(provenance.MetaEvent{
		Component:  "campaign",
		NumSources: len(c.Sources),
		NumConfigs: len(c.Plan),
		NumLinks:   c.World.Graph.NumLinks(),
		UseTruth:   useTruth,
	})
	for i, row := range c.Catchments {
		// Shared, not copied: the catchment matrix is immutable once the
		// campaign returns, and copying every row would dominate the
		// ledger's cost (scripts/bench.sh gates it at 5%).
		led.RecordRowShared(provenance.RowEvent{Config: i, Catchment: row, Incomplete: c.IsIncomplete(i)})
	}
	p := c.FinalPartition()
	led.RecordVerdict(provenance.VerdictEvent{
		Origin:   "campaign",
		Assign:   p.Assignments(),
		Clusters: p.NumClusters(),
	})
}

// runPool executes fn(0..n-1) across a bounded pool of workers and waits
// for all of them. fn must write only to its own index's slots.
func runPool(workers, n int, fn func(i int)) {
	runPoolSpans(nil, "", workers, n, func(i int, _ *trace.Span) { fn(i) })
}

// runPoolSpans is runPool with per-worker trace spans: when parent is a
// live span, each worker goroutine gets its own child span on a fresh
// track (so concurrent work renders as parallel flame-chart rows) and
// passes it to fn. The sequential path hands fn the parent itself. The
// work queue is pre-filled before any worker starts, so time-of-pickup
// minus phase start is a config's queue wait. fn must write only to its
// own index's slots.
func runPoolSpans(parent *trace.Span, workerName string, workers, n int, fn func(i int, wsp *trace.Span)) {
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i, parent)
		}
		return
	}
	next := make(chan int, n)
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var wsp *trace.Span
			if parent != nil {
				wsp = parent.ChildTrack(workerName)
				defer wsp.End()
			}
			for i := range next {
				fn(i, wsp)
			}
		}()
	}
	wg.Wait()
}

// NumConfigs returns the number of deployed configurations.
func (c *Campaign) NumConfigs() int { return len(c.Plan) }

// NumSources returns the number of sources under analysis.
func (c *Campaign) NumSources() int { return len(c.Sources) }

// PartitionAfter returns the cluster partition after refining by the
// first n configurations (n = 0 gives the single all-sources cluster).
func (c *Campaign) PartitionAfter(n int) *cluster.Partition {
	if n > len(c.Catchments) {
		n = len(c.Catchments)
	}
	p := cluster.New(len(c.Sources))
	for i := 0; i < n; i++ {
		p.Refine(c.Catchments[i])
	}
	return p
}

// FinalPartition returns the partition after the whole campaign. The
// result is computed once and shared across calls (the provenance
// verdict and every downstream consumer need the same refinement):
// treat it as read-only and Clone before refining it further.
func (c *Campaign) FinalPartition() *cluster.Partition {
	c.finalOnce.Do(func() {
		c.finalPart = c.PartitionAfter(len(c.Catchments))
	})
	return c.finalPart
}

// MetricsTrajectory returns partition metrics after each configuration,
// computed incrementally (Fig. 4).
func (c *Campaign) MetricsTrajectory() []cluster.Metrics {
	p := cluster.New(len(c.Sources))
	out := make([]cluster.Metrics, 0, len(c.Catchments))
	for _, labels := range c.Catchments {
		p.Refine(labels)
		out = append(out, p.Summarize())
	}
	return out
}

// PhasePartitions returns the partition at the end of each plan phase
// (Fig. 3's three distributions).
func (c *Campaign) PhasePartitions() map[sched.Phase]*cluster.Partition {
	out := make(map[sched.Phase]*cluster.Partition, 3)
	for _, ph := range []sched.Phase{sched.PhaseLocations, sched.PhasePrepending, sched.PhasePoisoning} {
		end := sched.PhaseEnd(c.Plan, ph)
		if end > 0 {
			out[ph] = c.PartitionAfter(end)
		}
	}
	return out
}

// CatchmentTable renders configuration cfgIdx's catchments as the
// true-source-ASN -> ingress-link table an amp.Border consumes. Sources
// without a known catchment under the configuration are omitted (the
// border drops their traffic, as a network with no route would never
// receive it).
func (c *Campaign) CatchmentTable(cfgIdx int) map[uint32]uint8 {
	g := c.World.Graph
	table := make(map[uint32]uint8, len(c.Sources))
	for k, src := range c.Sources {
		if l := c.Catchments[cfgIdx][k]; l != bgp.NoLink {
			table[uint32(g.ASN(src))] = uint8(l)
		}
	}
	return table
}

// SubCampaign restricts the campaign to the configurations selected by
// keep (by index), reusing the already-measured catchments. This is how
// Fig. 5/6 emulate networks with fewer PoPs without re-deploying.
func (c *Campaign) SubCampaign(keep []int) *Campaign {
	sub := &Campaign{World: c.World, Sources: c.Sources}
	for _, i := range keep {
		sub.Plan = append(sub.Plan, c.Plan[i])
		sub.Outcomes = append(sub.Outcomes, c.Outcomes[i])
		if c.Measurements != nil {
			sub.Measurements = append(sub.Measurements, c.Measurements[i])
		}
		sub.Catchments = append(sub.Catchments, c.Catchments[i])
	}
	return sub
}

// ConfigsUsingOnlyLinks returns the indices of plan configurations whose
// announcements use only the given links (for footprint emulation).
func (c *Campaign) ConfigsUsingOnlyLinks(links []bgp.LinkID) []int {
	allowed := make(map[bgp.LinkID]bool, len(links))
	for _, l := range links {
		allowed[l] = true
	}
	var keep []int
	for i, pc := range c.Plan {
		ok := true
		for _, a := range pc.Config.Anns {
			if !allowed[a.Link] {
				ok = false
				break
			}
		}
		if ok {
			keep = append(keep, i)
		}
	}
	return keep
}
