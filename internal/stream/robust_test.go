package stream

import (
	"net/netip"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spooftrack/internal/amp"
	"spooftrack/internal/metrics"
)

func testEvent(link uint8) amp.Event {
	return amp.Event{
		Time:        time.Now(),
		IngressLink: link,
		SpoofedSrc:  netip.MustParseAddr("198.51.100.7"),
		WireLen:     24,
	}
}

// TestCloseIdempotent: repeated Close calls are no-ops after the first.
func TestCloseIdempotent(t *testing.T) {
	p, err := New(testAttribution(), Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		p.Close()
	}
	if p.Ingest(testEvent(0)) {
		t.Fatal("Ingest accepted an event after Close")
	}
}

// TestConcurrentCloseAndIngest races many closers against many
// producers: every Close must return (no double-close panic, no
// deadlock) and every event accepted before the close wins must be
// accounted.
func TestConcurrentCloseAndIngest(t *testing.T) {
	p, err := New(testAttribution(), Config{
		Workers:         2,
		QueueDepth:      4,
		BatchSize:       1,
		FlushInterval:   time.Millisecond,
		MinRoundPackets: 1 << 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	var accepted atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if p.Ingest(testEvent(uint8(i % 2))) {
					accepted.Add(1)
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			time.Sleep(time.Millisecond)
			p.Close()
		}()
	}
	wg.Wait()
	p.Close()
	if got := p.TotalEvents(); got != accepted.Load() {
		t.Fatalf("accounted %d of %d accepted events", got, accepted.Load())
	}
}

// TestShedOverload: with Shed on and the single worker wedged behind the
// state mutex, full queues drop (with accounting and a degraded flag)
// instead of blocking the producer; once the consumer recovers, the
// controller clears the flag.
func TestShedOverload(t *testing.T) {
	reg := metrics.NewRegistry()
	p, err := New(testAttribution(), Config{
		Workers:         1,
		QueueDepth:      2,
		BatchSize:       1,
		FlushInterval:   time.Millisecond,
		EvalInterval:    2 * time.Millisecond,
		MinRoundPackets: 1 << 40,
		Shed:            true,
		Metrics:         reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// Wedge the worker: it needs p.mu to flush its single-event batches,
	// so holding the mutex backs the shard queue up.
	p.mu.Lock()
	deadline := time.Now().Add(5 * time.Second)
	for p.Dropped() == 0 {
		if time.Now().After(deadline) {
			p.mu.Unlock()
			t.Fatal("no drops despite a wedged consumer")
		}
		p.Ingest(testEvent(0))
	}
	dropped := p.Dropped()
	p.mu.Unlock()

	if !p.Degraded() {
		t.Fatal("drops must raise the degraded flag")
	}
	if got := reg.Counter("stream_dropped_total").Value(); got < dropped {
		t.Fatalf("stream_dropped_total = %d, want ≥ %d", got, dropped)
	}
	if !p.Status(3).Degraded || p.Status(3).DroppedEvents < dropped {
		t.Fatalf("status does not surface degradation: %+v", p.Status(3))
	}
	// Consumer recovered: queues drain, drops stop, the controller
	// clears the flag.
	deadline = time.Now().Add(5 * time.Second)
	for p.Degraded() {
		if time.Now().After(deadline) {
			t.Fatal("degraded flag never cleared after recovery")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if p.Ingest(testEvent(0)) != true {
		t.Fatal("pipeline must stay open throughout shedding")
	}
}

// TestDegradedRecoveryHook: with a DegradedRecovery oracle configured,
// drained queues and a quiet drop counter are necessary but not
// sufficient — the flag stays raised until the oracle agrees, and
// clears promptly once it does.
func TestDegradedRecoveryHook(t *testing.T) {
	var recovered atomic.Bool // oracle answer; starts false
	p, err := New(testAttribution(), Config{
		Workers:          1,
		QueueDepth:       2,
		BatchSize:        1,
		FlushInterval:    time.Millisecond,
		EvalInterval:     2 * time.Millisecond,
		MinRoundPackets:  1 << 40,
		Shed:             true,
		DegradedRecovery: func() bool { return recovered.Load() },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// Force drops the same way TestShedOverload does: wedge the worker
	// behind the state mutex until the tiny shard queue overflows.
	p.mu.Lock()
	deadline := time.Now().Add(5 * time.Second)
	for p.Dropped() == 0 {
		if time.Now().After(deadline) {
			p.mu.Unlock()
			t.Fatal("no drops despite a wedged consumer")
		}
		p.Ingest(testEvent(0))
	}
	p.mu.Unlock()
	if !p.Degraded() {
		t.Fatal("drops must raise the degraded flag")
	}

	// Queues drain and drops stop, but the oracle still says no: the
	// flag must hold across many controller evaluations.
	evals := p.cfg.Metrics.Counter("stream_evals_total")
	base := evals.Value()
	deadline = time.Now().Add(5 * time.Second)
	for evals.Value() < base+5 {
		if time.Now().After(deadline) {
			t.Fatal("controller stopped evaluating")
		}
		time.Sleep(time.Millisecond)
	}
	if !p.Degraded() {
		t.Fatal("degraded flag cleared while the recovery oracle said no")
	}

	// Oracle flips: the next evaluation with drained queues clears it.
	recovered.Store(true)
	deadline = time.Now().Add(5 * time.Second)
	for p.Degraded() {
		if time.Now().After(deadline) {
			t.Fatal("degraded flag never cleared after the oracle agreed")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestBlockedConfigRouting: the controller routes around quarantined
// configurations and deploys them once unblocked.
func TestBlockedConfigRouting(t *testing.T) {
	attr := testAttribution()
	var blockCfg1 atomic.Bool
	blockCfg1.Store(true)
	var deployedMu sync.Mutex
	var deployedOrder []int
	p, err := New(attr, Config{
		Workers:         1,
		BatchSize:       4,
		FlushInterval:   time.Millisecond,
		EvalInterval:    5 * time.Millisecond,
		MinRoundPackets: 20,
		Blocked: func() []bool {
			if blockCfg1.Load() {
				return []bool{false, true, false}
			}
			return nil
		},
		Deploy: func(cfgIdx int, table map[uint32]uint8) {
			deployedMu.Lock()
			deployedOrder = append(deployedOrder, cfgIdx)
			deployedMu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	feed := func(n int) {
		for i := 0; i < n; i++ {
			// Two sources on different links so every config can split
			// something.
			p.Ingest(testEvent(0))
			p.Ingest(testEvent(1))
		}
	}
	// First reconfiguration must avoid blocked config 1.
	deadline := time.Now().Add(5 * time.Second)
	for {
		feed(30)
		deployedMu.Lock()
		n := len(deployedOrder)
		deployedMu.Unlock()
		if n >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no reconfiguration while config 1 was blocked")
		}
		time.Sleep(2 * time.Millisecond)
	}
	deployedMu.Lock()
	second := deployedOrder[1]
	deployedMu.Unlock()
	if second == 1 {
		t.Fatal("controller deployed a quarantined configuration")
	}
	// Unblock: config 1 becomes eligible and is eventually deployed.
	blockCfg1.Store(false)
	deadline = time.Now().Add(5 * time.Second)
	for {
		feed(30)
		deployedMu.Lock()
		saw1 := false
		for _, c := range deployedOrder {
			if c == 1 {
				saw1 = true
			}
		}
		deployedMu.Unlock()
		if saw1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("unblocked configuration was never deployed")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
