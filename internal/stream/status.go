package stream

import (
	"net/netip"
	"sort"
	"time"

	"spooftrack/internal/report"
	"spooftrack/internal/topo"
)

// LinkStatus is one peering link's current-round traffic.
type LinkStatus struct {
	Link          int     `json:"link"`
	RoundPackets  int64   `json:"round_packets"`
	RoundBytes    int64   `json:"round_bytes"`
	PacketsPerSec float64 `json:"packets_per_sec"`
}

// AttributedSource is one candidate network ranked by estimated spoofed
// volume.
type AttributedSource struct {
	ASN         topo.ASN `json:"asn"`
	Cluster     int      `json:"cluster"`
	ClusterSize int      `json:"cluster_size"`
	// VolumeShare is the fraction of the current round's volume
	// attributed to this source.
	VolumeShare float64 `json:"volume_share"`
}

// VictimStatus is one spoofed (victim) address by request count.
type VictimStatus struct {
	Addr    netip.Addr `json:"addr"`
	Packets int64      `json:"packets"`
}

// Status is a point-in-time snapshot of the pipeline, shaped for the
// daemon's JSON status endpoint.
type Status struct {
	UptimeSec        float64            `json:"uptime_sec"`
	Workers          int                `json:"workers"`
	CurrentConfig    int                `json:"current_config"`
	DeployedConfigs  []int              `json:"deployed_configs"`
	Reconfigurations int                `json:"reconfigurations"`
	Rounds           int                `json:"rounds"`
	TotalEvents      int64              `json:"total_events"`
	TotalBytes       int64              `json:"total_bytes"`
	EventsPerSec     float64            `json:"events_per_sec"`
	NumSources       int                `json:"num_sources"`
	NumClusters      int                `json:"num_clusters"`
	MeanClusterSize  float64            `json:"mean_cluster_size"`
	Candidates       int                `json:"candidates"`
	Converged        bool               `json:"converged"`
	Degraded         bool               `json:"degraded"`
	DroppedEvents    int64              `json:"dropped_events"`
	PerLink          []LinkStatus       `json:"per_link"`
	TopSources       []AttributedSource `json:"top_sources"`
	TopVictims       []VictimStatus     `json:"top_victims"`
	History          []RoundRecord      `json:"history"`
}

// Status snapshots the pipeline. topN caps the TopSources and
// TopVictims lists (0 means 10).
func (p *Pipeline) Status(topN int) Status {
	if topN <= 0 {
		topN = 10
	}
	now := time.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	st := &p.st

	s := Status{
		UptimeSec:        now.Sub(p.start).Seconds(),
		Workers:          p.cfg.Workers,
		CurrentConfig:    st.eval.current,
		DeployedConfigs:  append([]int(nil), st.eval.deployed...),
		Reconfigurations: len(st.eval.deployed) - 1,
		Rounds:           len(st.history),
		TotalEvents:      st.total,
		TotalBytes:       st.totalBytes,
		NumSources:       st.eval.part.NumSources(),
		NumClusters:      st.eval.part.NumClusters(),
		MeanClusterSize:  st.eval.part.Summarize().MeanSize,
		Candidates:       len(st.eval.candidates),
		Converged:        st.eval.converged,
		Degraded:         p.degraded.Load(),
		DroppedEvents:    p.droppedN.Load(),
		History:          append([]RoundRecord(nil), st.history...),
	}
	if s.UptimeSec > 0 {
		s.EventsPerSec = float64(st.total) / s.UptimeSec
	}

	roundDur := now.Sub(st.roundStart).Seconds()
	totalRound := 0.0
	for l := range st.roundPkts {
		if st.roundPkts[l] == 0 && st.roundBytes[l] == 0 {
			continue
		}
		ls := LinkStatus{Link: l, RoundPackets: st.roundPkts[l], RoundBytes: st.roundBytes[l]}
		if roundDur > 0 {
			ls.PacketsPerSec = float64(st.roundPkts[l]) / roundDur
		}
		totalRound += float64(st.roundPkts[l])
		s.PerLink = append(s.PerLink, ls)
	}

	// Top attributed sources: candidates ranked by current-round
	// volume share.
	volumes := make([]float64, len(st.roundPkts))
	for l, n := range st.roundPkts {
		volumes[l] = float64(n)
	}
	est := st.eval.estimateVolumes(volumes)
	for _, k := range st.eval.candidates {
		if est[k] <= 0 {
			continue
		}
		cl := st.eval.part.ClusterOf(k)
		as := AttributedSource{
			ASN:         p.attr.SourceASNs[k],
			Cluster:     cl,
			ClusterSize: st.eval.part.SizeOfSource(k),
		}
		if totalRound > 0 {
			as.VolumeShare = est[k] / totalRound
		}
		s.TopSources = append(s.TopSources, as)
	}
	sort.Slice(s.TopSources, func(i, j int) bool {
		a, b := s.TopSources[i], s.TopSources[j]
		if a.VolumeShare != b.VolumeShare {
			return a.VolumeShare > b.VolumeShare
		}
		return a.ASN < b.ASN
	})
	if len(s.TopSources) > topN {
		s.TopSources = s.TopSources[:topN]
	}

	for addr, n := range st.bySource {
		s.TopVictims = append(s.TopVictims, VictimStatus{Addr: addr, Packets: n})
	}
	sort.Slice(s.TopVictims, func(i, j int) bool {
		a, b := s.TopVictims[i], s.TopVictims[j]
		if a.Packets != b.Packets {
			return a.Packets > b.Packets
		}
		return a.Addr.Less(b.Addr)
	})
	if len(s.TopVictims) > topN {
		s.TopVictims = s.TopVictims[:topN]
	}
	return s
}

// Candidates returns the current candidate source positions.
func (p *Pipeline) Candidates() []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]int(nil), p.st.eval.candidates...)
}

// Deployed returns the configurations deployed so far, in order.
func (p *Pipeline) Deployed() []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]int(nil), p.st.eval.deployed...)
}

// History returns the completed rounds.
func (p *Pipeline) History() []RoundRecord {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]RoundRecord(nil), p.st.history...)
}

// Converged reports whether the top volume-ranked candidate cluster is
// within the split threshold.
func (p *Pipeline) Converged() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.st.eval.converged
}

// Evidence assembles the operator notification report (internal/report)
// from every completed round — the per-candidate volume shares and
// corroborating configurations §I's adoption-driving use case needs.
func (p *Pipeline) Evidence() (*report.Report, error) {
	p.mu.Lock()
	history := append([]RoundRecord(nil), p.st.history...)
	candidates := append([]int(nil), p.st.eval.candidates...)
	part := p.st.eval.part.Clone()
	p.mu.Unlock()

	in := report.Input{
		Sources:          allSources(part.NumSources()),
		ASNOf:            func(i int) topo.ASN { return p.attr.SourceASNs[i] },
		Partition:        part,
		CandidateIndexes: candidates,
	}
	for _, rec := range history {
		in.Catchments = append(in.Catchments, p.attr.Catchments[rec.Config])
		in.Volumes = append(in.Volumes, rec.Volumes)
	}
	return report.Build(in)
}
