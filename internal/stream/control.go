package stream

import (
	"time"

	"spooftrack/internal/provenance"
	"spooftrack/internal/sched"
	"spooftrack/internal/trace"
)

// controller is the closed loop: evaluate the current round on a tick,
// and reconfigure when the attribution is still too coarse.
func (p *Pipeline) controller() {
	defer p.wg.Done()
	var csp *trace.Span
	if p.span != nil {
		csp = p.span.ChildTrack("stream.controller")
		defer csp.End()
	}
	ticker := time.NewTicker(p.cfg.EvalInterval)
	defer ticker.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-ticker.C:
			p.evaluate(false, csp)
		}
	}
}

// evaluate folds the current round into the attribution state if it
// carries enough volume, and — unless localization has converged —
// deploys the configuration the greedy scheduler picks next. With
// final=true (shutdown) it folds whatever the round holds. Folds emit a
// "stream.eval" span under parent; ticks that skip (too little volume)
// emit nothing.
func (p *Pipeline) evaluate(final bool, parent *trace.Span) {
	t0 := time.Now()
	p.mEvals.Inc()

	// Quarantine mask and re-measurement hints, refreshed every
	// evaluation (outside p.mu — the callbacks may take other locks):
	// blocked configurations become eligible again the moment their
	// links leave quarantine; hints are probe-conflict sources worth
	// re-observing when no split is pending.
	var blocked []bool
	if p.cfg.Blocked != nil {
		blocked = p.cfg.Blocked()
	}
	var hints []int
	if p.cfg.Remeasure != nil {
		hints = p.cfg.Remeasure()
	}
	// Evaluated outside p.mu like the other callbacks: recovery oracles
	// typically query metric history and may take their own locks.
	recoveryOK := true
	if p.cfg.DegradedRecovery != nil {
		recoveryOK = p.cfg.DegradedRecovery()
	}

	p.mu.Lock()
	st := &p.st
	roundPackets := int64(0)
	for _, n := range st.roundPkts {
		roundPackets += n
	}
	queued := p.queueDepth()
	p.mQueue.Set(float64(queued))
	// Degraded recovery: no shed drops since the last evaluation, the
	// queues have drained, and the recovery oracle (when configured)
	// agrees the overload has passed.
	if d := p.droppedN.Load(); d == st.lastDropped {
		if queued == 0 && recoveryOK && p.degraded.Load() {
			p.degraded.Store(false)
		}
	} else {
		st.lastDropped = d
	}
	if p.cfg.Relay {
		// Relay mode: the sharded-ingest controller owns folding and
		// deployment (HarvestRound / AdvanceEpoch); local evaluation
		// stops at overload-recovery bookkeeping.
		p.mu.Unlock()
		return
	}
	if roundPackets == 0 || (!final && roundPackets < p.cfg.MinRoundPackets) {
		p.mu.Unlock()
		return
	}
	esp := trace.StartChild(parent, "stream.eval")

	// Fold the round and decide the next deployment — the Evaluator is
	// the shared fold-and-decide core (also run by internal/shard's
	// controller over merged per-shard counters). With the ledger on,
	// the scored greedy variant captures the candidate set the chosen
	// configuration beat.
	led := p.cfg.Ledger
	out := st.eval.Step(st.roundPkts, final, blocked, hints, led.Enabled())

	roundBytes := int64(0)
	for _, n := range st.roundBytes {
		roundBytes += n
	}
	rec := RoundRecord{
		Config:      out.Config,
		Started:     st.roundStart,
		Ended:       time.Now(),
		Packets:     roundPackets,
		Bytes:       roundBytes,
		Volumes:     out.Volumes,
		NumClusters: out.Clusters,
		MeanSize:    out.MeanSize,
		Candidates:  out.Candidates,
	}
	st.history = append(st.history, rec)
	p.mRounds.Inc()
	p.mClusters.Set(float64(out.Clusters))
	p.mMeanSize.Set(out.MeanSize)
	p.mCands.Set(float64(out.Candidates))

	led.RecordRound(provenance.RoundEvent{
		Round:      out.Round,
		Config:     out.Config,
		Packets:    roundPackets,
		Volumes:    out.Volumes,
		Clusters:   out.Clusters,
		Candidates: out.Candidates,
	})
	switch {
	case out.Deploy >= 0 && out.Reason == "split":
		p.mReconfig.Inc()
		led.RecordReconfig(provenance.ReconfigEvent{
			Round:   out.Round,
			Chosen:  out.Deploy,
			Reason:  "split",
			Beaten:  candidateScores(out.Scores),
			Blocked: blockedConfigs(blocked),
		})
	case out.Deploy >= 0 && out.Reason == "remeasure":
		p.mRemeasure.Inc()
		led.RecordReconfig(provenance.ReconfigEvent{
			Round:   out.Round,
			Chosen:  out.Deploy,
			Reason:  "remeasure",
			Blocked: blockedConfigs(blocked),
			Hints:   append([]int(nil), hints...),
		})
	}
	if led.Enabled() {
		led.RecordVerdict(provenance.VerdictEvent{
			Origin:     "stream",
			Round:      out.Round,
			Candidates: st.eval.candidates,
			Assign:     st.eval.part.Assignments(),
			Clusters:   out.Clusters,
			Converged:  out.Converged,
		})
	}

	// Start the next round (same config if nothing new to deploy). The
	// epoch bump invalidates worker batches accumulated before this
	// fold — flushed late, they would otherwise leak the old round's
	// per-link counts into the new one. The settle deadline is
	// published before the lock drops so no event produced under the
	// old configuration can observe a stale value.
	for l := range st.roundPkts {
		st.roundPkts[l], st.roundBytes[l] = 0, 0
	}
	st.epoch++
	p.epoch.Store(st.epoch)
	st.roundStart = time.Now()
	if out.Deploy >= 0 && p.cfg.Settle > 0 {
		p.settleUntil.Store(time.Now().Add(p.cfg.Settle).UnixNano())
	}
	p.mu.Unlock()

	if out.Deploy >= 0 && p.cfg.Deploy != nil {
		p.cfg.Deploy(out.Deploy, p.table(out.Deploy))
	}
	p.hEval.Observe(time.Since(t0).Seconds())
	if esp != nil {
		esp.Count("round_packets", roundPackets)
		esp.Count("clusters", int64(out.Clusters))
		esp.Count("candidates", int64(rec.Candidates))
		if out.Deploy >= 0 {
			esp.Set(trace.Int("deploy_config", int64(out.Deploy)))
		}
		esp.End()
	}
}

// candidateScores converts the scheduler's candidate scores to the
// ledger's representation.
func candidateScores(scores []sched.ConfigScore) []provenance.CandidateScore {
	if len(scores) == 0 {
		return nil
	}
	out := make([]provenance.CandidateScore, len(scores))
	for i, s := range scores {
		out[i] = provenance.CandidateScore{Config: s.Config, Score: s.Score}
	}
	return out
}

// blockedConfigs lists the set configurations of a quarantine mask.
func blockedConfigs(blocked []bool) []int {
	var out []int
	for c, b := range blocked {
		if b {
			out = append(out, c)
		}
	}
	return out
}

// queueDepth sums the occupancy of every shard channel (approximate).
func (p *Pipeline) queueDepth() int {
	d := 0
	for _, ch := range p.shards {
		d += len(ch)
	}
	return d
}
