package stream

import (
	"time"

	"spooftrack/internal/bgp"
	"spooftrack/internal/provenance"
	"spooftrack/internal/sched"
	"spooftrack/internal/trace"
)

// controller is the closed loop: evaluate the current round on a tick,
// and reconfigure when the attribution is still too coarse.
func (p *Pipeline) controller() {
	defer p.wg.Done()
	var csp *trace.Span
	if p.span != nil {
		csp = p.span.ChildTrack("stream.controller")
		defer csp.End()
	}
	ticker := time.NewTicker(p.cfg.EvalInterval)
	defer ticker.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-ticker.C:
			p.evaluate(false, csp)
		}
	}
}

// evaluate folds the current round into the attribution state if it
// carries enough volume, and — unless localization has converged —
// deploys the configuration the greedy scheduler picks next. With
// final=true (shutdown) it folds whatever the round holds. Folds emit a
// "stream.eval" span under parent; ticks that skip (too little volume)
// emit nothing.
func (p *Pipeline) evaluate(final bool, parent *trace.Span) {
	t0 := time.Now()
	p.mEvals.Inc()

	// Quarantine mask and re-measurement hints, refreshed every
	// evaluation (outside p.mu — the callbacks may take other locks):
	// blocked configurations become eligible again the moment their
	// links leave quarantine; hints are probe-conflict sources worth
	// re-observing when no split is pending.
	var blocked []bool
	if p.cfg.Blocked != nil {
		blocked = p.cfg.Blocked()
	}
	var hints []int
	if p.cfg.Remeasure != nil {
		hints = p.cfg.Remeasure()
	}
	// Evaluated outside p.mu like the other callbacks: recovery oracles
	// typically query metric history and may take their own locks.
	recoveryOK := true
	if p.cfg.DegradedRecovery != nil {
		recoveryOK = p.cfg.DegradedRecovery()
	}

	p.mu.Lock()
	st := &p.st
	roundPackets := int64(0)
	for _, n := range st.roundPkts {
		roundPackets += n
	}
	queued := p.queueDepth()
	p.mQueue.Set(float64(queued))
	// Degraded recovery: no shed drops since the last evaluation, the
	// queues have drained, and the recovery oracle (when configured)
	// agrees the overload has passed.
	if d := p.droppedN.Load(); d == st.lastDropped {
		if queued == 0 && recoveryOK && p.degraded.Load() {
			p.degraded.Store(false)
		}
	} else {
		st.lastDropped = d
	}
	if roundPackets == 0 || (!final && roundPackets < p.cfg.MinRoundPackets) {
		p.mu.Unlock()
		return
	}
	esp := trace.StartChild(parent, "stream.eval")

	// Fold the round: localizer misses, cluster refinement, history.
	// Links below the noise floor are treated as silent so that a
	// handful of packets straggling across a reconfiguration (stamped
	// under the previous catchment table) cannot keep a cluster alive.
	volumes := make([]float64, len(st.roundPkts))
	floor := p.cfg.NoiseFloor * float64(roundPackets)
	for l, n := range st.roundPkts {
		if v := float64(n); v > floor {
			volumes[l] = v
		}
	}
	cur := st.current
	st.loc.AddRound(p.attr.Catchments[cur], volumes)
	st.part.Refine(p.attr.Catchments[cur])
	st.candidates = st.loc.Candidates(p.cfg.MaxMisses)

	m := st.part.Summarize()
	roundBytes := int64(0)
	for _, n := range st.roundBytes {
		roundBytes += n
	}
	rec := RoundRecord{
		Config:      cur,
		Started:     st.roundStart,
		Ended:       time.Now(),
		Packets:     roundPackets,
		Bytes:       roundBytes,
		Volumes:     volumes,
		NumClusters: m.NumClusters,
		MeanSize:    m.MeanSize,
		Candidates:  len(st.candidates),
	}
	st.history = append(st.history, rec)
	p.mRounds.Inc()
	p.mClusters.Set(float64(m.NumClusters))
	p.mMeanSize.Set(m.MeanSize)
	p.mCands.Set(float64(len(st.candidates)))

	led := p.cfg.Ledger
	round := len(st.history)
	led.RecordRound(provenance.RoundEvent{
		Round:      round,
		Config:     cur,
		Packets:    roundPackets,
		Volumes:    volumes,
		Clusters:   m.NumClusters,
		Candidates: len(st.candidates),
	})

	// Volume-ranked clusters: estimate per-source volume by splitting
	// each link's round volume evenly across the candidates it hosts
	// (§III-C attribution at round granularity), then find the heaviest
	// candidate cluster still above the split threshold.
	estVol := p.estimateVolumesLocked(volumes)
	topID, topSize := p.topVolumeClusterLocked(estVol)

	// The loop is done when the heaviest cluster is small enough, or
	// when no remaining configuration separates its members — clusters
	// bound localization precision (§V), so deploying further would
	// burn configurations without refining anything.
	canSplit := false
	if topSize > p.cfg.SplitThreshold {
		canSplit = p.splittableLocked(st.part.MembersOf(topID))
	}
	var deployIdx = -1
	budgetLeft := p.cfg.MaxOnlineConfigs == 0 || len(st.deployed)-1 < p.cfg.MaxOnlineConfigs
	if !final && canSplit && budgetLeft {
		// Quarantined configurations are routed around, not consumed:
		// if every useful configuration is blocked the loop simply waits
		// (converged stays false) and retries them once their links heal.
		// With the ledger on, the scored variant captures the full
		// candidate set the chosen configuration beat.
		var next int
		var scores []sched.ConfigScore
		if led.Enabled() {
			next, scores = sched.NextGreedyVolumeScored(st.part, p.attr.Catchments, estVol, st.used, blocked)
		} else {
			next = sched.NextGreedyVolumeMasked(st.part, p.attr.Catchments, estVol, st.used, blocked)
		}
		if next >= 0 {
			st.used[next] = true
			st.current = next
			st.deployed = append(st.deployed, next)
			deployIdx = next
			p.mReconfig.Inc()
			led.RecordReconfig(provenance.ReconfigEvent{
				Round:   round,
				Chosen:  next,
				Reason:  "split",
				Beaten:  candidateScores(scores),
				Blocked: blockedConfigs(blocked),
			})
		}
	}
	// Probe-conflict re-measurement: when no split is pending but the
	// probe channel disagrees with the catchment evidence for some
	// sources, spend the round re-observing them under the unused
	// configuration that covers the most conflicted sources. This feeds
	// probe.Audit's conflict set back into live measurement instead of
	// leaving the disagreement standing.
	if deployIdx < 0 && !final && budgetLeft && len(hints) > 0 {
		if next := sched.NextRemeasure(p.attr.Catchments, hints, st.used, blocked); next >= 0 {
			st.used[next] = true
			st.current = next
			st.deployed = append(st.deployed, next)
			deployIdx = next
			p.mRemeasure.Inc()
			led.RecordReconfig(provenance.ReconfigEvent{
				Round:   round,
				Chosen:  next,
				Reason:  "remeasure",
				Blocked: blockedConfigs(blocked),
				Hints:   append([]int(nil), hints...),
			})
		}
	}
	st.converged = topSize >= 0 && !canSplit
	if led.Enabled() {
		led.RecordVerdict(provenance.VerdictEvent{
			Origin:     "stream",
			Round:      round,
			Candidates: st.candidates,
			Assign:     st.part.Assignments(),
			Clusters:   m.NumClusters,
			Converged:  st.converged,
		})
	}

	// Start the next round (same config if nothing new to deploy). The
	// epoch bump invalidates worker batches accumulated before this
	// fold — flushed late, they would otherwise leak the old round's
	// per-link counts into the new one. The settle deadline is
	// published before the lock drops so no event produced under the
	// old configuration can observe a stale value.
	for l := range st.roundPkts {
		st.roundPkts[l], st.roundBytes[l] = 0, 0
	}
	st.epoch++
	p.epoch.Store(st.epoch)
	st.roundStart = time.Now()
	if deployIdx >= 0 && p.cfg.Settle > 0 {
		p.settleUntil.Store(time.Now().Add(p.cfg.Settle).UnixNano())
	}
	p.mu.Unlock()

	if deployIdx >= 0 && p.cfg.Deploy != nil {
		p.cfg.Deploy(deployIdx, p.table(deployIdx))
	}
	p.hEval.Observe(time.Since(t0).Seconds())
	if esp != nil {
		esp.Count("round_packets", roundPackets)
		esp.Count("clusters", int64(m.NumClusters))
		esp.Count("candidates", int64(rec.Candidates))
		if deployIdx >= 0 {
			esp.Set(trace.Int("deploy_config", int64(deployIdx)))
		}
		esp.End()
	}
}

// estimateVolumesLocked attributes the round's per-link volume to
// sources: each candidate whose current catchment is link l gets an
// equal share of volumes[l]; eliminated sources get zero. Caller holds
// p.mu.
func (p *Pipeline) estimateVolumesLocked(volumes []float64) []float64 {
	st := &p.st
	row := p.attr.Catchments[st.current]
	onLink := make([]int, len(volumes))
	for _, k := range st.candidates {
		if l := row[k]; l != bgp.NoLink && int(l) < len(onLink) {
			onLink[l]++
		}
	}
	est := make([]float64, len(row))
	for _, k := range st.candidates {
		if l := row[k]; l != bgp.NoLink && int(l) < len(volumes) && onLink[l] > 0 {
			est[k] = volumes[l] / float64(onLink[l])
		}
	}
	return est
}

// topVolumeClusterLocked returns the candidate cluster carrying the
// most estimated volume and its size, or (-1, -1) when no candidate
// carries volume. Caller holds p.mu.
func (p *Pipeline) topVolumeClusterLocked(estVol []float64) (clusterID, size int) {
	st := &p.st
	volByCluster := make(map[int]float64)
	for _, k := range st.candidates {
		if estVol[k] > 0 {
			volByCluster[st.part.ClusterOf(k)] += estVol[k]
		}
	}
	best, bestVol := -1, 0.0
	for c, v := range volByCluster {
		if best == -1 || v > bestVol || (v == bestVol && c < best) {
			best, bestVol = c, v
		}
	}
	if best == -1 {
		return -1, -1
	}
	return best, len(st.part.MembersOf(best))
}

// splittableLocked reports whether any unused configuration maps the
// given cluster members to more than one ingress link — i.e. whether
// further refinement of that cluster is possible at all. Caller holds
// p.mu.
func (p *Pipeline) splittableLocked(members []int) bool {
	if len(members) < 2 {
		return false
	}
	for cfg, row := range p.attr.Catchments {
		if p.st.used[cfg] {
			continue
		}
		first := row[members[0]]
		for _, k := range members[1:] {
			if row[k] != first {
				return true
			}
		}
	}
	return false
}

// candidateScores converts the scheduler's candidate scores to the
// ledger's representation.
func candidateScores(scores []sched.ConfigScore) []provenance.CandidateScore {
	if len(scores) == 0 {
		return nil
	}
	out := make([]provenance.CandidateScore, len(scores))
	for i, s := range scores {
		out[i] = provenance.CandidateScore{Config: s.Config, Score: s.Score}
	}
	return out
}

// blockedConfigs lists the set configurations of a quarantine mask.
func blockedConfigs(blocked []bool) []int {
	var out []int
	for c, b := range blocked {
		if b {
			out = append(out, c)
		}
	}
	return out
}

// queueDepth sums the occupancy of every shard channel (approximate).
func (p *Pipeline) queueDepth() int {
	d := 0
	for _, ch := range p.shards {
		d += len(ch)
	}
	return d
}
