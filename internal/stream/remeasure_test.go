package stream

import (
	"net/netip"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spooftrack/internal/amp"
	"spooftrack/internal/bgp"
	"spooftrack/internal/metrics"
	"spooftrack/internal/provenance"
)

// TestRemeasureHints drives the closed loop with a probe-conflict hint
// on the attacker and one spare configuration the greedy splitter never
// needs (a duplicate of config 0). Once localization can no longer
// split, the controller must spend the spare configuration re-observing
// the hinted source, count it under stream_remeasure_total, and record
// the decision in the provenance ledger with the hint set that drove
// it.
func TestRemeasureHints(t *testing.T) {
	attr := testAttribution()
	// Config 3 duplicates config 0: it can never increase the cluster
	// count, so the split scheduler skips it and it stays available for
	// the re-measurement round.
	attr.Catchments = append(attr.Catchments, append([]bgp.LinkID(nil), attr.Catchments[0]...))
	const attacker = 5
	victim := netip.MustParseAddr("192.0.2.66")

	led := provenance.New(provenance.Options{})
	reg := metrics.NewRegistry()
	var current atomic.Int32
	p, err := New(attr, Config{
		Workers:         2,
		BatchSize:       8,
		FlushInterval:   2 * time.Millisecond,
		EvalInterval:    10 * time.Millisecond,
		MinRoundPackets: 100,
		Settle:          3 * time.Millisecond,
		Ledger:          led,
		Metrics:         reg,
		Remeasure:       func() []int { return []int{attacker} },
		Deploy: func(cfgIdx int, table map[uint32]uint8) {
			current.Store(int32(cfgIdx))
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var gen sync.WaitGroup
	gen.Add(1)
	go func() {
		defer gen.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			cfg := int(current.Load())
			p.Ingest(amp.Event{
				Time:        time.Now(),
				IngressLink: uint8(attr.Catchments[cfg][attacker]),
				SpoofedSrc:  victim,
				WireLen:     24,
			})
			time.Sleep(50 * time.Microsecond)
		}
	}()

	deadline := time.After(10 * time.Second)
	for !p.Converged() {
		select {
		case <-deadline:
			t.Fatalf("did not converge; status: %+v", p.Status(5))
		case <-time.After(10 * time.Millisecond):
		}
	}
	close(stop)
	gen.Wait()
	p.Close()

	if got := reg.Counter("stream_remeasure_total").Value(); got < 1 {
		t.Fatalf("stream_remeasure_total = %d, want >= 1", got)
	}
	// The duplicate configuration only enters the deployment sequence
	// through the re-measurement path.
	sawSpare := false
	for _, c := range p.Deployed() {
		if c == 3 {
			sawSpare = true
		}
	}
	if !sawSpare {
		t.Fatalf("spare config 3 never deployed; deployed = %v", p.Deployed())
	}

	// The ledger must carry the decision: a reconfig event with reason
	// "remeasure", the spare configuration chosen, and the hint set
	// that drove it.
	var remeasures []provenance.ReconfigEvent
	for _, ev := range led.Export().Events {
		if ev.Kind == provenance.KindReconfig && ev.Reconfig.Reason == "remeasure" {
			remeasures = append(remeasures, *ev.Reconfig)
		}
	}
	if len(remeasures) == 0 {
		t.Fatal("no remeasure reconfig event in the ledger")
	}
	rm := remeasures[0]
	if rm.Chosen != 3 {
		t.Fatalf("remeasure chose config %d, want 3", rm.Chosen)
	}
	if len(rm.Hints) != 1 || rm.Hints[0] != attacker {
		t.Fatalf("remeasure hints = %v, want [%d]", rm.Hints, attacker)
	}
}
