package stream

import (
	"fmt"
	"time"
)

// Harvest is one relay pipeline's round-counter snapshot: the per-link
// packet/byte counters accumulated since the last epoch advance, tagged
// with the epoch they accumulated under. Harvesting does not consume
// the counters — the controller may collect the same epoch repeatedly
// (retries, failover re-collection) and only AdvanceEpoch resets them —
// so the snapshot a fold acts on is exactly the one that was collected.
type Harvest struct {
	Epoch      int64   `json:"epoch"`
	Pkts       []int64 `json:"pkts"`
	Bytes      []int64 `json:"bytes"`
	Total      int64   `json:"total"`
	TotalBytes int64   `json:"total_bytes"`
	Settled    int64   `json:"settled"`
	Degraded   bool    `json:"degraded"`
	Dropped    int64   `json:"dropped"`
}

// HarvestRound snapshots the current round's counters (relay mode: the
// sharded-ingest controller's Collect RPC lands here).
func (p *Pipeline) HarvestRound() Harvest {
	p.mu.Lock()
	st := &p.st
	h := Harvest{
		Epoch:      st.epoch,
		Pkts:       append([]int64(nil), st.roundPkts...),
		Bytes:      append([]int64(nil), st.roundBytes...),
		Total:      st.total,
		TotalBytes: st.totalBytes,
		Settled:    st.settled,
	}
	p.mu.Unlock()
	h.Degraded = p.degraded.Load()
	h.Dropped = p.droppedN.Load()
	return h
}

// Epoch returns the epoch the pipeline is currently accumulating under.
func (p *Pipeline) Epoch() int64 { return p.epoch.Load() }

// AdvanceEpoch adopts a controller-decided epoch and configuration
// (relay mode: the sharded-ingest controller's Apply RPC lands here).
// It resets the round counters, bumps the epoch — invalidating worker
// batches accumulated under the old one, exactly like a local fold —
// arms the settle window, and deploys the configuration when it
// changed. Re-applying the pipeline's current (epoch, config) is an
// idempotent no-op, so a controller recovering from failover can
// re-broadcast its snapshot safely; an epoch older than the pipeline's
// is rejected (a stale controller must not rewind the shard).
func (p *Pipeline) AdvanceEpoch(epoch int64, cfgIdx int) error {
	if cfgIdx < 0 || cfgIdx >= len(p.attr.Catchments) {
		return fmt.Errorf("stream: advance to config %d out of range", cfgIdx)
	}
	p.mu.Lock()
	st := &p.st
	if epoch < st.epoch {
		cur := st.epoch
		p.mu.Unlock()
		return fmt.Errorf("stream: stale epoch %d (pipeline at %d)", epoch, cur)
	}
	if epoch == st.epoch && cfgIdx == st.eval.current {
		p.mu.Unlock()
		return nil
	}
	changed := cfgIdx != st.eval.current
	for l := range st.roundPkts {
		st.roundPkts[l], st.roundBytes[l] = 0, 0
	}
	st.epoch = epoch
	p.epoch.Store(epoch)
	st.roundStart = time.Now()
	if changed {
		st.eval.current = cfgIdx
		st.eval.used[cfgIdx] = true
		st.eval.deployed = append(st.eval.deployed, cfgIdx)
		if p.cfg.Settle > 0 {
			p.settleUntil.Store(time.Now().Add(p.cfg.Settle).UnixNano())
		}
	}
	p.mu.Unlock()
	if changed && p.cfg.Deploy != nil {
		p.cfg.Deploy(cfgIdx, p.table(cfgIdx))
	}
	return nil
}
