package stream

import (
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spooftrack/internal/amp"
	"spooftrack/internal/bgp"
	"spooftrack/internal/metrics"
	"spooftrack/internal/topo"
)

// testAttribution builds a 3-configuration binary-split matrix over 8
// sources and 2 links: config c sends source k to link (k>>c)&1 ... in
// fact to bit c of k, so the three configs together give every source a
// unique signature (all singletons).
func testAttribution() Attribution {
	const nSources, nConfigs = 8, 3
	catchments := make([][]bgp.LinkID, nConfigs)
	for c := 0; c < nConfigs; c++ {
		row := make([]bgp.LinkID, nSources)
		for k := 0; k < nSources; k++ {
			row[k] = bgp.LinkID((k >> c) & 1)
		}
		catchments[c] = row
	}
	asns := make([]topo.ASN, nSources)
	for k := range asns {
		asns[k] = topo.ASN(65000 + k)
	}
	return Attribution{Catchments: catchments, SourceASNs: asns, NumLinks: 2}
}

// TestClosedLoop drives the pipeline with synthetic events from one
// attacking source and checks the loop reconfigures online until the
// attacker is isolated.
func TestClosedLoop(t *testing.T) {
	attr := testAttribution()
	const attacker = 5
	victim := netip.MustParseAddr("192.0.2.66")

	var current atomic.Int32
	// Settle covers the window where the generator still stamps events
	// under the previous configuration — the loopback analogue of BGP
	// convergence delay after a reconfiguration.
	p, err := New(attr, Config{
		Workers:         4,
		BatchSize:       8,
		FlushInterval:   2 * time.Millisecond,
		EvalInterval:    10 * time.Millisecond,
		MinRoundPackets: 100,
		Settle:          3 * time.Millisecond,
		Deploy: func(cfgIdx int, table map[uint32]uint8) {
			current.Store(int32(cfgIdx))
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Traffic generator: the attacker's packets enter on whatever link
	// its catchment maps to under the currently deployed configuration.
	stop := make(chan struct{})
	var gen sync.WaitGroup
	gen.Add(1)
	go func() {
		defer gen.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			cfg := int(current.Load())
			link := uint8(attr.Catchments[cfg][attacker])
			p.Ingest(amp.Event{
				Time:        time.Now(),
				IngressLink: link,
				SpoofedSrc:  victim,
				WireLen:     24,
			})
			time.Sleep(50 * time.Microsecond)
		}
	}()

	deadline := time.After(10 * time.Second)
	for !p.Converged() {
		select {
		case <-deadline:
			t.Fatalf("did not converge; status: %+v", p.Status(5))
		case <-time.After(10 * time.Millisecond):
		}
	}
	close(stop)
	gen.Wait()
	p.Close()

	cands := p.Candidates()
	if len(cands) != 1 || cands[0] != attacker {
		t.Fatalf("candidates = %v, want [%d]", cands, attacker)
	}
	deployed := p.Deployed()
	if len(deployed) < 2 {
		t.Fatalf("expected at least one online reconfiguration, deployed = %v", deployed)
	}
	hist := p.History()
	if len(hist) < 2 {
		t.Fatalf("expected at least 2 rounds, got %d", len(hist))
	}
	first, last := hist[0], hist[len(hist)-1]
	if last.MeanSize >= float64(len(attr.SourceASNs)) || last.NumClusters <= first.NumClusters {
		t.Fatalf("clusters did not shrink: first %+v last %+v", first, last)
	}
	st := p.Status(5)
	if !st.Converged || st.Candidates != 1 || st.Reconfigurations < 1 {
		t.Fatalf("status inconsistent: %+v", st)
	}
	if len(st.TopVictims) != 1 || st.TopVictims[0].Addr != victim {
		t.Fatalf("top victims = %+v", st.TopVictims)
	}
	rep, err := p.Evidence()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Candidates) != 1 || rep.Candidates[0].ASN != attr.SourceASNs[attacker] {
		t.Fatalf("evidence candidates = %+v", rep.Candidates)
	}
}

// TestLoopbackIntegration runs the acceptance path end-to-end over real
// UDP: attacker -> border -> honeypot tap -> pipeline -> online
// reconfiguration via border.SetCatchments.
func TestLoopbackIntegration(t *testing.T) {
	attr := testAttribution()
	const attacker = 3
	attackerASN := uint32(attr.SourceASNs[attacker])

	hp, err := amp.NewHoneypot("127.0.0.1:0", amp.DefaultHoneypotConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer hp.Close()
	border, err := amp.NewBorder("127.0.0.1:0", hp.Addr().(*net.UDPAddr), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer border.Close()

	p, err := New(attr, Config{
		Workers:         2,
		BatchSize:       16,
		FlushInterval:   2 * time.Millisecond,
		EvalInterval:    10 * time.Millisecond,
		MinRoundPackets: 60,
		Settle:          2 * time.Millisecond,
		Deploy: func(cfgIdx int, table map[uint32]uint8) {
			border.SetCatchments(table)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	hp.SetTap(func(ev amp.Event) { p.Ingest(ev) })

	attack, err := amp.NewAttacker(attackerASN, netip.MustParseAddr("192.0.2.9"))
	if err != nil {
		t.Fatal(err)
	}
	defer attack.Close()

	deadline := time.Now().Add(15 * time.Second)
	for !p.Converged() && time.Now().Before(deadline) {
		if _, err := attack.Flood(border.Addr(), 40, 8); err != nil {
			t.Fatal(err)
		}
		time.Sleep(15 * time.Millisecond)
	}

	// Graceful shutdown: stop the producer side first, then drain.
	hp.SetTap(nil)
	p.Close()

	if !p.Converged() {
		t.Fatalf("did not converge; status %+v", p.Status(5))
	}
	cands := p.Candidates()
	if len(cands) != 1 || cands[0] != attacker {
		t.Fatalf("candidates = %v, want [%d]", cands, attacker)
	}
	if len(p.Deployed()) < 2 {
		t.Fatalf("no online configuration change: %v", p.Deployed())
	}
}

// TestBackpressureNoLoss asserts the bounded queues shed load by
// blocking producers, never by dropping: with single-event queues,
// single-event batches, and heavy mutex contention from a status
// poller, every ingested event must still be accounted after Close.
func TestBackpressureNoLoss(t *testing.T) {
	attr := testAttribution()
	reg := metrics.NewRegistry()
	p, err := New(attr, Config{
		Workers:         2,
		QueueDepth:      1,
		BatchSize:       1,
		FlushInterval:   time.Millisecond,
		EvalInterval:    time.Millisecond,
		MinRoundPackets: 1 << 40, // never reconfigure mid-test
		Metrics:         reg,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Slow consumer: hammer the shared state so flushes contend.
	pollStop := make(chan struct{})
	var pollWG sync.WaitGroup
	pollWG.Add(1)
	go func() {
		defer pollWG.Done()
		for {
			select {
			case <-pollStop:
				return
			default:
				p.Status(3)
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()

	const producers, perProducer = 8, 2000
	var wg sync.WaitGroup
	var rejected atomic.Int64
	for g := 0; g < producers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			victim := netip.AddrFrom4([4]byte{203, 0, 113, byte(g)})
			for i := 0; i < perProducer; i++ {
				ok := p.Ingest(amp.Event{
					Time:        time.Now(),
					IngressLink: uint8(i % attr.NumLinks),
					SpoofedSrc:  victim,
					WireLen:     24,
				})
				if !ok {
					rejected.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	close(pollStop)
	pollWG.Wait()
	p.Close()

	if rejected.Load() != 0 {
		t.Fatalf("%d events rejected while open", rejected.Load())
	}
	const want = producers * perProducer
	if got := p.TotalEvents(); got != want {
		t.Fatalf("event loss: accounted %d of %d", got, want)
	}
	if got := reg.Counter("stream_events_total").Value(); got != want {
		t.Fatalf("metrics counter %d, want %d", got, want)
	}
	// Double Close must be a no-op, and Ingest after Close must reject.
	p.Close()
	if p.Ingest(amp.Event{SpoofedSrc: netip.MustParseAddr("203.0.113.99")}) {
		t.Fatal("Ingest accepted an event after Close")
	}
}

// TestNewValidation covers constructor error paths.
func TestNewValidation(t *testing.T) {
	good := testAttribution()
	cases := []struct {
		name string
		mut  func(a Attribution) Attribution
	}{
		{"no configs", func(a Attribution) Attribution { a.Catchments = nil; return a }},
		{"asn mismatch", func(a Attribution) Attribution { a.SourceASNs = a.SourceASNs[:3]; return a }},
		{"no links", func(a Attribution) Attribution { a.NumLinks = 0; return a }},
		{"bad initial", func(a Attribution) Attribution { a.InitialConfig = 99; return a }},
		{"ragged rows", func(a Attribution) Attribution {
			a.Catchments = append([][]bgp.LinkID{}, a.Catchments...)
			a.Catchments[1] = a.Catchments[1][:2]
			return a
		}},
	}
	for _, tc := range cases {
		if _, err := New(tc.mut(good), Config{}); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}
