package stream

import (
	"fmt"

	"spooftrack/internal/bgp"
	"spooftrack/internal/cluster"
	"spooftrack/internal/sched"
	"spooftrack/internal/spoof"
)

// EvalParams are the decision-relevant knobs of the attribution loop —
// the subset of Config that determines, byte for byte, what the
// controller folds and deploys. The single-node Pipeline and the
// sharded controller (internal/shard) both run an Evaluator built from
// the same params, which is what makes "byte-identical localization
// versus single-node" a property of shared code rather than of two
// implementations agreeing.
type EvalParams struct {
	// SplitThreshold: reconfigure while the top volume-ranked candidate
	// cluster holds more than this many sources (default 1).
	SplitThreshold int
	// MaxMisses is the localization tolerance (0 = exact correlation).
	MaxMisses int
	// NoiseFloor is the fraction of a round's volume below which a link
	// counts as silent (default 0.02; negative disables).
	NoiseFloor float64
	// MaxOnlineConfigs caps deployments beyond the initial one (0 = no cap).
	MaxOnlineConfigs int
}

func (p *EvalParams) setDefaults() {
	if p.SplitThreshold <= 0 {
		p.SplitThreshold = 1
	}
	if p.NoiseFloor == 0 {
		p.NoiseFloor = 0.02
	} else if p.NoiseFloor < 0 {
		p.NoiseFloor = 0
	}
}

// EvalRound is one folded round as the Evaluator records it: the
// configuration it was measured under and the post-noise-floor per-link
// volumes. The sequence of EvalRounds is a complete, replayable
// transcript of the attribution state — RestoreEvaluator rebuilds the
// localizer and partition by refolding them.
type EvalRound struct {
	Config  int       `json:"config"`
	Volumes []float64 `json:"volumes"`
}

// Outcome is what one Evaluator step decided: the round that was folded
// and the deployment (if any) that follows it.
type Outcome struct {
	// Round is the 1-based round number just folded.
	Round int
	// Config is the configuration the round was measured under.
	Config int
	// Volumes are the post-noise-floor per-link volumes that were folded.
	Volumes []float64
	// Clusters / MeanSize / Candidates summarize the attribution state
	// after the fold.
	Clusters   int
	MeanSize   float64
	Candidates int
	// Deploy is the configuration chosen for the next round, or -1 when
	// the evaluator stays on the current one.
	Deploy int
	// Reason is "split" or "remeasure" when Deploy >= 0.
	Reason string
	// Scores is the candidate set the chosen split configuration beat
	// (only populated when scored=true and Reason=="split").
	Scores []sched.ConfigScore
	// Converged reports whether the top volume-ranked candidate cluster
	// is within the split threshold (or cannot be split further).
	Converged bool
}

// Evaluator is the attribution loop's fold-and-decide core, extracted
// from the Pipeline controller so the sharded controller can run the
// exact same logic over merged per-shard counters. It is not
// goroutine-safe; callers serialize access (the Pipeline under p.mu,
// the shard controller from its single round loop).
type Evaluator struct {
	attr Attribution
	par  EvalParams

	current    int
	deployed   []int
	used       []bool
	part       *cluster.Partition
	loc        *spoof.IncrementalLocalizer
	candidates []int
	converged  bool
	rounds     []EvalRound
}

// NewEvaluator builds an evaluator over the attribution matrix with the
// initial configuration deployed.
func NewEvaluator(attr Attribution, par EvalParams) *Evaluator {
	par.setDefaults()
	n := len(attr.Catchments[0])
	e := &Evaluator{
		attr:     attr,
		par:      par,
		current:  attr.InitialConfig,
		deployed: []int{attr.InitialConfig},
		used:     make([]bool, len(attr.Catchments)),
		part:     cluster.New(n),
		loc:      spoof.NewIncrementalLocalizer(n),
	}
	e.used[attr.InitialConfig] = true
	e.candidates = allSources(n)
	return e
}

// Step folds one round of per-link packet counters into the attribution
// state and — unless final — decides the next deployment: a greedy
// volume-ranked split when the top candidate cluster is still too
// coarse, else a re-measurement of hinted sources. blocked is the
// per-configuration quarantine mask (nil = nothing blocked); scored
// selects the scored greedy variant that also returns the beaten
// candidate set (for provenance).
func (e *Evaluator) Step(roundPkts []int64, final bool, blocked []bool, hints []int, scored bool) Outcome {
	roundPackets := int64(0)
	for _, n := range roundPkts {
		roundPackets += n
	}
	// Links below the noise floor are treated as silent so that a
	// handful of packets straggling across a reconfiguration (stamped
	// under the previous catchment table) cannot keep a cluster alive.
	volumes := make([]float64, len(roundPkts))
	floor := e.par.NoiseFloor * float64(roundPackets)
	for l, n := range roundPkts {
		if v := float64(n); v > floor {
			volumes[l] = v
		}
	}

	cur := e.current
	e.loc.AddRound(e.attr.Catchments[cur], volumes)
	e.part.Refine(e.attr.Catchments[cur])
	e.candidates = e.loc.Candidates(e.par.MaxMisses)
	e.rounds = append(e.rounds, EvalRound{Config: cur, Volumes: volumes})

	m := e.part.Summarize()
	out := Outcome{
		Round:      len(e.rounds),
		Config:     cur,
		Volumes:    volumes,
		Clusters:   m.NumClusters,
		MeanSize:   m.MeanSize,
		Candidates: len(e.candidates),
		Deploy:     -1,
	}

	// Volume-ranked clusters: estimate per-source volume by splitting
	// each link's round volume evenly across the candidates it hosts
	// (§III-C attribution at round granularity), then find the heaviest
	// candidate cluster still above the split threshold.
	estVol := e.estimateVolumes(volumes)
	topID, topSize := e.topVolumeCluster(estVol)

	// The loop is done when the heaviest cluster is small enough, or
	// when no remaining configuration separates its members — clusters
	// bound localization precision (§V), so deploying further would
	// burn configurations without refining anything.
	canSplit := false
	if topSize > e.par.SplitThreshold {
		canSplit = e.splittable(e.part.MembersOf(topID))
	}
	budgetLeft := e.par.MaxOnlineConfigs == 0 || len(e.deployed)-1 < e.par.MaxOnlineConfigs
	if !final && canSplit && budgetLeft {
		// Quarantined configurations are routed around, not consumed:
		// if every useful configuration is blocked the loop simply waits
		// (converged stays false) and retries them once their links heal.
		var next int
		var scores []sched.ConfigScore
		if scored {
			next, scores = sched.NextGreedyVolumeScored(e.part, e.attr.Catchments, estVol, e.used, blocked)
		} else {
			next = sched.NextGreedyVolumeMasked(e.part, e.attr.Catchments, estVol, e.used, blocked)
		}
		if next >= 0 {
			e.used[next] = true
			e.current = next
			e.deployed = append(e.deployed, next)
			out.Deploy = next
			out.Reason = "split"
			out.Scores = scores
		}
	}
	// Probe-conflict re-measurement: when no split is pending but the
	// probe channel disagrees with the catchment evidence for some
	// sources, spend the round re-observing them under the unused
	// configuration that covers the most conflicted sources.
	if out.Deploy < 0 && !final && budgetLeft && len(hints) > 0 {
		if next := sched.NextRemeasure(e.attr.Catchments, hints, e.used, blocked); next >= 0 {
			e.used[next] = true
			e.current = next
			e.deployed = append(e.deployed, next)
			out.Deploy = next
			out.Reason = "remeasure"
		}
	}
	e.converged = topSize >= 0 && !canSplit
	out.Converged = e.converged
	return out
}

// estimateVolumes attributes the round's per-link volume to sources:
// each candidate whose current catchment is link l gets an equal share
// of volumes[l]; eliminated sources get zero.
func (e *Evaluator) estimateVolumes(volumes []float64) []float64 {
	row := e.attr.Catchments[e.current]
	onLink := make([]int, len(volumes))
	for _, k := range e.candidates {
		if l := row[k]; l != bgp.NoLink && int(l) < len(onLink) {
			onLink[l]++
		}
	}
	est := make([]float64, len(row))
	for _, k := range e.candidates {
		if l := row[k]; l != bgp.NoLink && int(l) < len(volumes) && onLink[l] > 0 {
			est[k] = volumes[l] / float64(onLink[l])
		}
	}
	return est
}

// topVolumeCluster returns the candidate cluster carrying the most
// estimated volume and its size, or (-1, -1) when no candidate carries
// volume.
func (e *Evaluator) topVolumeCluster(estVol []float64) (clusterID, size int) {
	volByCluster := make(map[int]float64)
	for _, k := range e.candidates {
		if estVol[k] > 0 {
			volByCluster[e.part.ClusterOf(k)] += estVol[k]
		}
	}
	best, bestVol := -1, 0.0
	for c, v := range volByCluster {
		if best == -1 || v > bestVol || (v == bestVol && c < best) {
			best, bestVol = c, v
		}
	}
	if best == -1 {
		return -1, -1
	}
	return best, len(e.part.MembersOf(best))
}

// splittable reports whether any unused configuration maps the given
// cluster members to more than one ingress link.
func (e *Evaluator) splittable(members []int) bool {
	if len(members) < 2 {
		return false
	}
	for cfg, row := range e.attr.Catchments {
		if e.used[cfg] {
			continue
		}
		first := row[members[0]]
		for _, k := range members[1:] {
			if row[k] != first {
				return true
			}
		}
	}
	return false
}

// Params returns the evaluator's resolved decision parameters (defaults
// applied).
func (e *Evaluator) Params() EvalParams { return e.par }

// Current returns the configuration the evaluator expects the next
// round to be measured under.
func (e *Evaluator) Current() int { return e.current }

// Deployed returns the configurations deployed so far, in order.
func (e *Evaluator) Deployed() []int { return append([]int(nil), e.deployed...) }

// Candidates returns the current candidate source positions.
func (e *Evaluator) Candidates() []int { return append([]int(nil), e.candidates...) }

// Converged reports whether the loop has refined as far as it can.
func (e *Evaluator) Converged() bool { return e.converged }

// Rounds returns how many rounds have been folded.
func (e *Evaluator) Rounds() int { return len(e.rounds) }

// Assignments returns the per-source cluster assignment (the
// localization verdict at the current refinement).
func (e *Evaluator) Assignments() []int32 { return e.part.Assignments() }

// NumClusters returns the current cluster count.
func (e *Evaluator) NumClusters() int { return e.part.NumClusters() }

// Partition returns the evaluator's live cluster partition. Callers
// must treat it as read-only.
func (e *Evaluator) Partition() *cluster.Partition { return e.part }

// EvalSnapshot is the Evaluator's complete serializable state: the
// deployment transcript plus every folded round. Restoring replays the
// rounds through the same fold code, so a snapshot shipped across the
// wire (the shard controller's failover protocol) reproduces the
// evaluator byte-for-byte.
type EvalSnapshot struct {
	Current   int         `json:"current"`
	Deployed  []int       `json:"deployed"`
	Converged bool        `json:"converged"`
	Rounds    []EvalRound `json:"rounds"`
}

// Snapshot captures the evaluator's replayable state.
func (e *Evaluator) Snapshot() EvalSnapshot {
	s := EvalSnapshot{
		Current:   e.current,
		Deployed:  append([]int(nil), e.deployed...),
		Converged: e.converged,
		Rounds:    make([]EvalRound, len(e.rounds)),
	}
	for i, r := range e.rounds {
		s.Rounds[i] = EvalRound{Config: r.Config, Volumes: append([]float64(nil), r.Volumes...)}
	}
	return s
}

// RestoreEvaluator rebuilds an evaluator from a snapshot by refolding
// every recorded round — deterministic replay through the same
// localizer and refinement code, never a structural copy.
func RestoreEvaluator(attr Attribution, par EvalParams, s EvalSnapshot) (*Evaluator, error) {
	e := NewEvaluator(attr, par)
	if len(s.Deployed) == 0 {
		return nil, fmt.Errorf("stream: snapshot has no deployments")
	}
	if s.Deployed[0] != attr.InitialConfig {
		return nil, fmt.Errorf("stream: snapshot initial config %d, attribution says %d", s.Deployed[0], attr.InitialConfig)
	}
	for _, c := range s.Deployed {
		if c < 0 || c >= len(attr.Catchments) {
			return nil, fmt.Errorf("stream: snapshot deploys config %d out of range", c)
		}
		e.used[c] = true
	}
	e.deployed = append([]int(nil), s.Deployed...)
	for _, r := range s.Rounds {
		if r.Config < 0 || r.Config >= len(attr.Catchments) {
			return nil, fmt.Errorf("stream: snapshot round folds config %d out of range", r.Config)
		}
		vols := append([]float64(nil), r.Volumes...)
		e.loc.AddRound(attr.Catchments[r.Config], vols)
		e.part.Refine(attr.Catchments[r.Config])
		e.rounds = append(e.rounds, EvalRound{Config: r.Config, Volumes: vols})
	}
	e.candidates = e.loc.Candidates(par.MaxMisses)
	e.current = s.Current
	e.converged = s.Converged
	return e, nil
}
