// Package stream is the live attribution pipeline: it turns the repo's
// one-shot batch localization (core.Campaign → clusters → report) into
// the closed loop the paper's operational story describes (§I, §V-C) —
// an origin AS localizing spoofers *while an attack is in progress*.
//
// Per-packet events tapped from the amp honeypot are sharded across N
// worker goroutines over bounded channels; workers accumulate batched
// per-link and per-victim counters and flush them into shared round
// state by count or tick. A controller goroutine periodically folds the
// current round into an incremental localizer (spoof) and cluster
// partition (cluster); when the volume-ranked top candidate cluster
// still exceeds the split threshold, it asks the greedy scheduler
// (sched.NextGreedyVolume) for the next announcement configuration and
// applies the resulting catchment split online through a deploy
// callback — in cmd/spooftrackd, amp.Border.SetCatchments.
//
// Backpressure, not loss: Ingest blocks when a shard's queue is full,
// so a slow consumer stalls the producer instead of silently dropping
// events. Close drains every queue, flushes outstanding batches, folds
// the final round, and only then returns.
package stream

import (
	"fmt"
	"net/netip"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"spooftrack/internal/amp"
	"spooftrack/internal/bgp"
	"spooftrack/internal/metrics"
	"spooftrack/internal/provenance"
	"spooftrack/internal/topo"
	"spooftrack/internal/trace"
)

// Attribution is the precomputed offline knowledge the live loop runs
// against: the campaign's measured catchment matrix (§V-C — "deploy
// configurations whose catchments were measured beforehand").
type Attribution struct {
	// Catchments[c][k] is the catchment of source k under configuration
	// c (bgp.NoLink when unobserved).
	Catchments [][]bgp.LinkID
	// SourceASNs[k] is the ASN of source k, for tables and reports.
	SourceASNs []topo.ASN
	// NumLinks is the number of peering links (sizes per-link counters).
	NumLinks int
	// InitialConfig is the configuration deployed when the pipeline
	// starts (usually 0, the baseline anycast announcement).
	InitialConfig int
}

// DeployFunc applies configuration cfgIdx: table maps each true source
// ASN to the ingress link its traffic enters on under the new
// announcement. It is called from the controller goroutine (and once
// from New) and must not call back into the pipeline.
type DeployFunc func(cfgIdx int, table map[uint32]uint8)

// Config tunes the pipeline.
type Config struct {
	// Workers is the number of shard goroutines (default min(GOMAXPROCS, 8)).
	Workers int
	// QueueDepth bounds each shard's event channel (default 1024).
	QueueDepth int
	// BatchSize flushes a worker's local counters after this many
	// events (default 256).
	BatchSize int
	// FlushInterval flushes idle workers' partial batches (default 100ms).
	FlushInterval time.Duration
	// EvalInterval is the controller's evaluation cadence (default
	// 2×FlushInterval).
	EvalInterval time.Duration
	// SplitThreshold: reconfigure while the top volume-ranked candidate
	// cluster holds more than this many sources (default 1 — drive to
	// singletons).
	SplitThreshold int
	// MinRoundPackets is the volume a round must accumulate before the
	// controller acts on it (default 50) — acting on a near-empty round
	// would eliminate every quiet source.
	MinRoundPackets int64
	// MaxMisses is the localization tolerance (spoof.LocalizeTolerant);
	// 0 is the paper's exact correlation.
	MaxMisses int
	// NoiseFloor is the fraction of a round's total volume below which
	// a link counts as silent when folding the round — absorbs packets
	// straggling across a reconfiguration under the old catchment
	// table. Default 0.02; negative disables.
	NoiseFloor float64
	// MaxOnlineConfigs caps how many configurations the loop may deploy
	// beyond the initial one (0 = no cap).
	MaxOnlineConfigs int
	// Settle ignores events observed within this duration after a
	// reconfiguration for round accounting (they still count toward
	// totals): packets stamped under the previous catchment table may
	// be in flight, the loopback analogue of BGP convergence delay.
	Settle time.Duration
	// Deploy applies a configuration; nil means catchment switches are
	// tracked but not materialized (useful in tests feeding Ingest
	// directly).
	Deploy DeployFunc
	// Relay runs the pipeline as a sharded-ingest relay (internal/shard):
	// workers still batch and flush per-link round counters, but the
	// local controller never folds or deploys — a remote controller
	// harvests the counters (HarvestRound) and advances epochs
	// (AdvanceEpoch) instead. Overload shedding, degraded recovery, and
	// queue metrics keep working; localization state stays empty.
	Relay bool
	// Shed switches intake from backpressure to overload shedding: when
	// a shard's queue is full, Ingest drops the event instead of
	// blocking, counts it (stream_dropped_total), and raises the
	// pipeline's degraded flag. The controller clears the flag once
	// queues drain and no further drops occur. Use when the tap must
	// never stall the packet path (spooftrackd -shed).
	Shed bool
	// DegradedRecovery, if non-nil, is an extra gate on clearing the
	// degraded flag: the controller still requires drained queues and a
	// quiet drop counter, but additionally asks this callback before
	// declaring the overload over. Wire it to metric history (the tsdb
	// engine) so recovery means "no shedding for a whole window", not
	// "no shedding since the last tick" — a flapping overload then holds
	// the flag instead of strobing it. Called from the controller outside
	// the pipeline lock; must not call back into the pipeline.
	DegradedRecovery func() bool
	// Blocked, if non-nil, is consulted at each evaluation for the
	// per-configuration quarantine mask (nil = nothing blocked): blocked
	// configurations are routed around when picking the next deployment,
	// as if used, but become eligible again once unblocked. Wire it to
	// sched.QuarantineMask over the platform's link health.
	Blocked func() []bool
	// Remeasure, if non-nil, is consulted at each evaluation for
	// re-measurement hints: source positions whose evidence channels
	// conflict (probe.Audit's conflict ASes mapped to campaign source
	// positions). When a round ends without a split-driven deployment,
	// the controller deploys the unused configuration that re-observes
	// the most hinted sources (sched.NextRemeasure). Like Blocked, it is
	// called from the controller outside the pipeline lock and must not
	// call back into the pipeline.
	Remeasure func() []int
	// Ledger, if non-nil, records every round fold, reconfiguration
	// decision (with the candidate set it beat), and verdict into the
	// decision-provenance ledger. A nil ledger is provenance-off and
	// costs one nil check per fold (internal/trace's disabled pattern).
	Ledger *provenance.Ledger
	// Metrics instruments the pipeline (nil = a private registry).
	Metrics *metrics.Registry
}

func (c *Config) setDefaults() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
		if c.Workers > 8 {
			c.Workers = 8
		}
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 256
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = 100 * time.Millisecond
	}
	if c.EvalInterval <= 0 {
		c.EvalInterval = 2 * c.FlushInterval
	}
	if c.SplitThreshold <= 0 {
		c.SplitThreshold = 1
	}
	if c.MinRoundPackets <= 0 {
		c.MinRoundPackets = 50
	}
	// NoiseFloor is left as-is: EvalParams.setDefaults resolves the
	// 0-means-default / negative-means-disabled convention, so the
	// Pipeline and the sharded controller resolve it identically.
	if c.Metrics == nil {
		c.Metrics = metrics.NewRegistry()
	}
}

// RoundRecord is one completed round: the configuration that was
// deployed, what the honeypot measured under it, and the attribution
// state after folding it in.
type RoundRecord struct {
	Config      int       `json:"config"`
	Started     time.Time `json:"started"`
	Ended       time.Time `json:"ended"`
	Packets     int64     `json:"packets"`
	Bytes       int64     `json:"bytes"`
	Volumes     []float64 `json:"-"`
	NumClusters int       `json:"num_clusters"`
	MeanSize    float64   `json:"mean_cluster_size"`
	Candidates  int       `json:"candidates"`
}

// Pipeline is the running live-attribution loop. Create with New, feed
// with Ingest (wire it as an amp tap), stop with Close.
type Pipeline struct {
	cfg  Config
	attr Attribution

	shards []chan amp.Event
	wg     sync.WaitGroup
	stop   chan struct{}

	intakeMu  sync.RWMutex
	closed    bool
	closeOnce sync.Once

	// shed is Config.Shed, copied for the hot path (one branch when off).
	// droppedN counts shed events; degraded is raised on any drop and
	// cleared by the controller once queues drain with no new drops.
	shed     bool
	droppedN atomic.Int64
	degraded atomic.Bool

	// settleUntil is the unix-nano time before which events are
	// excluded from round accounting (read on the hot path).
	settleUntil atomic.Int64
	// epoch mirrors loopState.epoch for lock-free reads on the hot
	// path: it increments at every round fold, and a worker batch
	// flushed under a different epoch than it was accumulated in is
	// excluded from round counters (its round has already been folded).
	epoch atomic.Int64

	mu sync.Mutex
	st loopState

	// metrics (resolved once; hot-path friendly)
	mEvents    *metrics.Counter
	mBytes     *metrics.Counter
	mDropped   *metrics.Counter
	mBatches   *metrics.Counter
	mRounds    *metrics.Counter
	mReconfig  *metrics.Counter
	mRemeasure *metrics.Counter
	mSettle    *metrics.Counter
	mEvals     *metrics.Counter
	mClusters  *metrics.Gauge
	mCands     *metrics.Gauge
	mMeanSize  *metrics.Gauge
	mQueue     *metrics.Gauge
	mWater     *metrics.Gauge
	hBatch     *metrics.Histogram
	hEval      *metrics.Histogram
	hLag       *metrics.Histogram

	// labeled vectors: per-link children are resolved once at New into
	// dense slices (the hot path indexes, never formats or hashes);
	// per-shard children are resolved once per worker.
	linkPktC      []*metrics.Counter
	linkByteC     []*metrics.Counter
	vShardEvents  *metrics.CounterVec
	vShardBatches *metrics.CounterVec

	// span is the pipeline's root trace span (nil when tracing is off at
	// construction); workers and the controller hang their tracks off it.
	span *trace.Span

	start time.Time
}

// loopState is the controller-owned attribution state, guarded by
// Pipeline.mu (workers touch it only inside flush).
type loopState struct {
	epoch      int64
	eval       *Evaluator
	roundPkts  []int64
	roundBytes []int64
	roundStart time.Time
	bySource   map[netip.Addr]int64
	total      int64
	totalBytes int64
	settled    int64 // events excluded from rounds while settling
	history    []RoundRecord
	// lastDropped is the shed counter at the previous evaluation; the
	// degraded flag clears when it stops moving and queues are drained.
	lastDropped int64
}

// New validates the attribution input, deploys the initial
// configuration, and starts the workers and the control loop.
func New(attr Attribution, cfg Config) (*Pipeline, error) {
	if len(attr.Catchments) == 0 {
		return nil, fmt.Errorf("stream: no configurations")
	}
	n := len(attr.Catchments[0])
	for c, row := range attr.Catchments {
		if len(row) != n {
			return nil, fmt.Errorf("stream: config %d has %d catchments, config 0 has %d", c, len(row), n)
		}
	}
	if len(attr.SourceASNs) != n {
		return nil, fmt.Errorf("stream: %d source ASNs for %d sources", len(attr.SourceASNs), n)
	}
	if attr.NumLinks <= 0 {
		return nil, fmt.Errorf("stream: NumLinks must be positive")
	}
	if attr.InitialConfig < 0 || attr.InitialConfig >= len(attr.Catchments) {
		return nil, fmt.Errorf("stream: initial config %d out of range", attr.InitialConfig)
	}
	cfg.setDefaults()

	p := &Pipeline{cfg: cfg, attr: attr, stop: make(chan struct{}), start: time.Now(), shed: cfg.Shed}
	reg := cfg.Metrics
	p.mEvents = reg.Counter("stream_events_total")
	p.mBytes = reg.Counter("stream_bytes_total")
	p.mDropped = reg.Counter("stream_dropped_total")
	p.mBatches = reg.Counter("stream_batches_total")
	p.mRounds = reg.Counter("stream_rounds_total")
	p.mReconfig = reg.Counter("stream_reconfigs_total")
	p.mRemeasure = reg.Counter("stream_remeasure_total")
	p.mSettle = reg.Counter("stream_settle_excluded_total")
	p.mEvals = reg.Counter("stream_evals_total")
	p.mClusters = reg.Gauge("stream_clusters")
	p.mCands = reg.Gauge("stream_candidates")
	p.mMeanSize = reg.Gauge("stream_mean_cluster_size")
	p.mQueue = reg.Gauge("stream_queue_depth")
	p.hBatch = reg.Histogram("stream_batch_events", 1, 4, 16, 64, 256, 1024, 4096)
	p.hEval = reg.Histogram("stream_eval_seconds", 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1)
	p.hLag = reg.Histogram("stream_flush_lag_seconds", 1e-4, 1e-3, 1e-2, 0.05, 0.1, 0.5, 1, 5)
	p.mWater = reg.Gauge("stream_watermark_unix_s")
	vLinkPkts := reg.CounterVec("stream_link_packets_total", "link")
	vLinkBytes := reg.CounterVec("stream_link_bytes_total", "link")
	p.vShardEvents = reg.CounterVec("stream_shard_events_total", "shard")
	p.vShardBatches = reg.CounterVec("stream_shard_batches_total", "shard")
	p.linkPktC = make([]*metrics.Counter, attr.NumLinks)
	p.linkByteC = make([]*metrics.Counter, attr.NumLinks)
	for l := 0; l < attr.NumLinks; l++ {
		lbl := strconv.Itoa(l)
		p.linkPktC[l] = vLinkPkts.With(lbl)
		p.linkByteC[l] = vLinkBytes.With(lbl)
	}

	p.span = trace.Start("stream.pipeline")
	if p.span != nil {
		p.span.Set(
			trace.Int("workers", int64(cfg.Workers)),
			trace.Int("links", int64(attr.NumLinks)),
			trace.Int("sources", int64(n)),
		)
	}

	p.st = loopState{
		eval: NewEvaluator(attr, EvalParams{
			SplitThreshold:   cfg.SplitThreshold,
			MaxMisses:        cfg.MaxMisses,
			NoiseFloor:       cfg.NoiseFloor,
			MaxOnlineConfigs: cfg.MaxOnlineConfigs,
		}),
		roundPkts:  make([]int64, attr.NumLinks),
		roundBytes: make([]int64, attr.NumLinks),
		roundStart: time.Now(),
		bySource:   make(map[netip.Addr]int64),
	}
	p.mClusters.Set(1)
	p.mCands.Set(float64(n))
	p.mMeanSize.Set(float64(n))

	// Open the provenance chain: the stream's decision parameters, the
	// full catchment evidence table (one row per configuration — the
	// leaves every verdict chain must account for), and the initial
	// deployment. All no-ops when the ledger is nil.
	if led := cfg.Ledger; led.Enabled() {
		led.RecordMeta(provenance.MetaEvent{
			Component:      "stream",
			NumSources:     n,
			NumConfigs:     len(attr.Catchments),
			NumLinks:       attr.NumLinks,
			MaxMisses:      p.st.eval.par.MaxMisses,
			SplitThreshold: p.st.eval.par.SplitThreshold,
			NoiseFloor:     p.st.eval.par.NoiseFloor,
			InitialConfig:  attr.InitialConfig,
		})
		for c, row := range attr.Catchments {
			led.RecordRow(provenance.RowEvent{Config: c, Catchment: row})
		}
		led.RecordDeploy(provenance.DeployEvent{Config: attr.InitialConfig, Attempts: 1, Phase: "initial"})
	}

	if cfg.Deploy != nil {
		cfg.Deploy(attr.InitialConfig, p.table(attr.InitialConfig))
	}

	p.shards = make([]chan amp.Event, cfg.Workers)
	for i := range p.shards {
		p.shards[i] = make(chan amp.Event, cfg.QueueDepth)
		p.wg.Add(1)
		go p.worker(i, p.shards[i])
	}
	p.wg.Add(1)
	go p.controller()
	return p, nil
}

func allSources(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// table renders configuration cfgIdx as a border catchment table.
func (p *Pipeline) table(cfgIdx int) map[uint32]uint8 {
	row := p.attr.Catchments[cfgIdx]
	t := make(map[uint32]uint8, len(row))
	for k, l := range row {
		if l != bgp.NoLink {
			t[uint32(p.attr.SourceASNs[k])] = uint8(l)
		}
	}
	return t
}

// Ingest feeds one per-packet event into the pipeline. By default a
// full shard queue blocks the caller (backpressure instead of loss);
// with Config.Shed the event is dropped instead, counted, and the
// pipeline marked degraded. It returns false once the pipeline is
// closed. Wire it as an amp tap:
//
//	hp.SetTap(func(ev amp.Event) { p.Ingest(ev) })
func (p *Pipeline) Ingest(ev amp.Event) bool {
	p.intakeMu.RLock()
	defer p.intakeMu.RUnlock()
	if p.closed {
		return false
	}
	ch := p.shards[shardOf(ev, len(p.shards))]
	if p.shed {
		select {
		case ch <- ev:
		default:
			// Overload: shed rather than stall the packet path. The event
			// is acknowledged (the pipeline is open) but unaccounted.
			p.droppedN.Add(1)
			p.mDropped.Inc()
			p.degraded.Store(true)
		}
		return true
	}
	ch <- ev
	return true
}

// Degraded reports whether the pipeline is shedding load: at least one
// event was dropped since the controller last saw drained queues and a
// quiet drop counter. Surfaced through spooftrackd's /readyz.
func (p *Pipeline) Degraded() bool { return p.degraded.Load() }

// Dropped returns how many events overload shedding has discarded.
func (p *Pipeline) Dropped() int64 { return p.droppedN.Load() }

// shardOf spreads events across workers by FNV-1a over the spoofed
// source and ingress link, keeping any one flow on one worker.
func shardOf(ev amp.Event, n int) int {
	if n == 1 {
		return 0
	}
	h := uint32(2166136261)
	if ev.SpoofedSrc.Is4() {
		b := ev.SpoofedSrc.As4()
		for _, c := range b {
			h = (h ^ uint32(c)) * 16777619
		}
	}
	h = (h ^ uint32(ev.IngressLink)) * 16777619
	return int(h % uint32(n))
}

// batch is a worker's local accumulator: counters batched per link and
// per victim so the shared mutex is taken once per BatchSize events,
// not per packet.
type batch struct {
	epoch    int64
	events   int
	pkts     []int64
	bytes    []int64
	bySource map[netip.Addr]int64
	settled  int64
	total    int64
	totalB   int64
	// first/last are the event timestamps bounding the batch: at flush,
	// now-first is the stage lag (oldest unflushed event's age) and last
	// is the shard's watermark.
	first time.Time
	last  time.Time
	// shardEvents/shardBatches are the owning worker's pre-resolved
	// per-shard vector children, bumped once per flush (nil in tests
	// that build batches directly).
	shardEvents  *metrics.Counter
	shardBatches *metrics.Counter
}

func newBatch(links int) *batch {
	return &batch{
		pkts:     make([]int64, links),
		bytes:    make([]int64, links),
		bySource: make(map[netip.Addr]int64),
	}
}

func (b *batch) reset() {
	b.events = 0
	for i := range b.pkts {
		b.pkts[i], b.bytes[i] = 0, 0
	}
	clear(b.bySource)
	b.settled, b.total, b.totalB = 0, 0, 0
}

func (p *Pipeline) worker(shard int, ch chan amp.Event) {
	defer p.wg.Done()
	var wsp *trace.Span
	if p.span != nil {
		// Each worker gets its own track so concurrent flush spans render
		// as parallel flame-chart rows.
		wsp = p.span.ChildTrack("stream.worker")
		wsp.Set(trace.Int("shard", int64(shard)))
		defer wsp.End()
	}
	ticker := time.NewTicker(p.cfg.FlushInterval)
	defer ticker.Stop()
	b := newBatch(p.attr.NumLinks)
	shardLbl := strconv.Itoa(shard)
	b.shardEvents = p.vShardEvents.With(shardLbl)
	b.shardBatches = p.vShardBatches.With(shardLbl)
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				p.flush(b, wsp)
				return
			}
			p.accumulate(b, ev, wsp)
			if b.events >= p.cfg.BatchSize {
				p.flush(b, wsp)
			}
		case <-ticker.C:
			if b.events > 0 {
				p.flush(b, wsp)
			}
		}
	}
}

func (p *Pipeline) accumulate(b *batch, ev amp.Event, wsp *trace.Span) {
	if e := p.epoch.Load(); b.events == 0 {
		b.epoch = e
	} else if b.epoch != e {
		// The round this batch belongs to has been folded; hand the
		// batch over before starting one in the new epoch.
		p.flush(b, wsp)
		b.epoch = e
	}
	b.events++
	if b.events == 1 {
		b.first = ev.Time
	}
	b.last = ev.Time
	b.total++
	b.totalB += int64(ev.WireLen)
	if su := p.settleUntil.Load(); su != 0 && ev.Time.UnixNano() < su {
		b.settled++
		return
	}
	if int(ev.IngressLink) < len(b.pkts) {
		b.pkts[ev.IngressLink]++
		b.bytes[ev.IngressLink] += int64(ev.WireLen)
	}
	b.bySource[ev.SpoofedSrc]++
}

// flush merges a worker batch into the shared round state.
func (p *Pipeline) flush(b *batch, wsp *trace.Span) {
	if b.events == 0 {
		return
	}
	var fsp *trace.Span
	if wsp != nil {
		fsp = wsp.Child("stream.flush")
	}
	excluded := b.settled
	p.mu.Lock()
	st := &p.st
	if b.epoch == st.epoch {
		for l := range b.pkts {
			st.roundPkts[l] += b.pkts[l]
			st.roundBytes[l] += b.bytes[l]
		}
	} else {
		// Stale batch: accumulated before the last fold, so its round
		// no longer exists. Keep it out of the new round's counters.
		for _, n := range b.pkts {
			excluded += n
		}
	}
	for src, n := range b.bySource {
		st.bySource[src] += n
	}
	st.total += b.total
	st.totalBytes += b.totalB
	st.settled += excluded
	p.mu.Unlock()

	p.mEvents.Add(b.total)
	p.mBytes.Add(b.totalB)
	p.mSettle.Add(excluded)
	p.mBatches.Inc()
	for l, n := range b.pkts {
		if n != 0 {
			p.linkPktC[l].Add(n)
			p.linkByteC[l].Add(b.bytes[l])
		}
	}
	if b.shardEvents != nil {
		b.shardEvents.Add(b.total)
		b.shardBatches.Inc()
	}
	p.hBatch.Observe(float64(b.events))
	// Stage lag is the age of the batch's oldest event at flush time; the
	// watermark is the newest event time this shard has pushed downstream.
	lag := time.Since(b.first)
	watermark := float64(b.last.UnixNano()) / 1e9
	p.hLag.Observe(lag.Seconds())
	p.mWater.Set(watermark)
	if fsp != nil {
		fsp.Count("events", int64(b.events))
		fsp.Count("excluded", excluded)
		fsp.Set(
			trace.Float("lag_s", lag.Seconds()),
			trace.Float("watermark_unix_s", watermark),
		)
		fsp.End()
	}
	b.reset()
}

// Close stops intake, drains and flushes every shard, folds the final
// round into the localizer, and shuts the control loop down. It is the
// drain-then-flush half of graceful shutdown: stop producing events
// (close the honeypot or detach the tap) before calling it. Close is
// idempotent and safe for concurrent callers: exactly one caller runs
// the shutdown, the rest wait for it to finish.
func (p *Pipeline) Close() {
	p.closeOnce.Do(func() {
		p.intakeMu.Lock()
		p.closed = true
		p.intakeMu.Unlock()

		close(p.stop)
		for _, ch := range p.shards {
			close(ch)
		}
		p.wg.Wait()
		p.evaluate(true, p.span)
		p.span.End()
	})
}

// TotalEvents returns how many events have been flushed into the shared
// state so far.
func (p *Pipeline) TotalEvents() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.st.total
}
