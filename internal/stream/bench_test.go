package stream

import (
	"fmt"
	"net/netip"
	"testing"
	"time"

	"spooftrack/internal/amp"
	"spooftrack/internal/metrics"
	"spooftrack/internal/tsdb"
)

// BenchmarkStreamPipeline measures sustained ingest throughput
// (events/sec) at different worker counts, with the controller ticking
// but never reconfiguring so the steady-state hot path dominates.
func BenchmarkStreamPipeline(b *testing.B) {
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			attr := testAttribution()
			p, err := New(attr, Config{
				Workers:         workers,
				QueueDepth:      4096,
				BatchSize:       256,
				FlushInterval:   10 * time.Millisecond,
				EvalInterval:    10 * time.Millisecond,
				MinRoundPackets: 1 << 40,
			})
			if err != nil {
				b.Fatal(err)
			}
			victims := make([]netip.Addr, 64)
			for i := range victims {
				victims[i] = netip.AddrFrom4([4]byte{198, 51, 100, byte(i)})
			}
			now := time.Now()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					p.Ingest(amp.Event{
						Time:        now,
						IngressLink: uint8(i % attr.NumLinks),
						SpoofedSrc:  victims[i%len(victims)],
						WireLen:     24,
					})
					i++
				}
			})
			elapsed := b.Elapsed()
			b.StopTimer()
			p.Close()
			if got := p.TotalEvents(); got != int64(b.N) {
				b.Fatalf("accounted %d of %d events", got, b.N)
			}
			if s := elapsed.Seconds(); s > 0 {
				b.ReportMetric(float64(b.N)/s, "events/s")
			}
		})
	}
}

// BenchmarkStreamIngestScrape compares the ingest hot path with the
// metric-history engine off and scraping the pipeline's registry at an
// aggressive 1ms cadence (1000x the production default, so the 20x CI
// benchtime still overlaps real scrapes). The pair bounds the history
// engine's tax on the packet path: scrapes read the same atomics the
// hot path writes, so anything beyond a few percent means the scraper
// is contending rather than observing. scripts/bench.sh gates the
// ratio at 1.05x.
func BenchmarkStreamIngestScrape(b *testing.B) {
	for _, scrape := range []bool{false, true} {
		name := "scrape-off"
		if scrape {
			name = "scrape-on"
		}
		b.Run(name, func(b *testing.B) {
			attr := testAttribution()
			reg := metrics.NewRegistry()
			p, err := New(attr, Config{
				Workers:         4,
				QueueDepth:      1 << 16,
				BatchSize:       256,
				FlushInterval:   10 * time.Millisecond,
				EvalInterval:    10 * time.Millisecond,
				MinRoundPackets: 1 << 40,
				Metrics:         reg,
			})
			if err != nil {
				b.Fatal(err)
			}
			var db *tsdb.DB
			if scrape {
				db = tsdb.New(tsdb.Options{Registry: reg, Interval: time.Millisecond})
				db.Start()
			}
			ev := amp.Event{
				Time:       time.Now(),
				SpoofedSrc: netip.AddrFrom4([4]byte{198, 51, 100, 7}),
				WireLen:    24,
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ev.IngressLink = uint8(i % attr.NumLinks)
				p.Ingest(ev)
			}
			b.StopTimer()
			if db != nil {
				db.Stop()
			}
			p.Close()
		})
	}
}

// BenchmarkStreamIngestShed compares the ingest hot path with load
// shedding off (the default: one predicted branch) and on, queues deep
// enough that nothing is actually dropped. The pair bounds the
// fault-tolerance overhead on the ingest path.
func BenchmarkStreamIngestShed(b *testing.B) {
	for _, shed := range []bool{false, true} {
		name := "shed-off"
		if shed {
			name = "shed-on"
		}
		b.Run(name, func(b *testing.B) {
			attr := testAttribution()
			p, err := New(attr, Config{
				Workers:         4,
				QueueDepth:      1 << 16,
				BatchSize:       256,
				FlushInterval:   10 * time.Millisecond,
				EvalInterval:    10 * time.Millisecond,
				MinRoundPackets: 1 << 40,
				Shed:            shed,
			})
			if err != nil {
				b.Fatal(err)
			}
			ev := amp.Event{
				Time:       time.Now(),
				SpoofedSrc: netip.AddrFrom4([4]byte{198, 51, 100, 7}),
				WireLen:    24,
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ev.IngressLink = uint8(i % attr.NumLinks)
				p.Ingest(ev)
			}
			b.StopTimer()
			p.Close()
			if p.Dropped() != 0 {
				b.Fatalf("benchmark dropped %d events; deepen the queue", p.Dropped())
			}
		})
	}
}
