package stream

import "testing"

// TestEpochBoundaryBatchFlush pins the worker-side epoch boundary: a
// batch accumulated under epoch E must be flushed before an event from
// epoch E+1 is admitted into it (the b.epoch != e path in accumulate),
// and the flushed stale batch's per-link counts must be excluded from
// the new round's counters while still reaching the totals.
func TestEpochBoundaryBatchFlush(t *testing.T) {
	p, err := New(testAttribution(), Config{
		Workers:         1,
		BatchSize:       1024,
		MinRoundPackets: 1 << 40, // suppress controller folds
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	b := newBatch(p.attr.NumLinks)
	p.accumulate(b, testEvent(0), nil)
	p.accumulate(b, testEvent(0), nil)
	if b.epoch != 0 || b.events != 2 {
		t.Fatalf("batch under epoch %d with %d events, want epoch 0 with 2", b.epoch, b.events)
	}

	// Fold the round the way the controller does: bump the epoch. The
	// batch in hand is now stale — its round no longer exists.
	p.mu.Lock()
	p.st.epoch++
	p.epoch.Store(p.st.epoch)
	p.mu.Unlock()

	// Admitting an epoch-1 event must flush the stale batch first and
	// start a fresh batch under the new epoch.
	p.accumulate(b, testEvent(1), nil)
	if b.events != 1 {
		t.Fatalf("stale batch not flushed before admitting an epoch-1 event (%d events)", b.events)
	}
	if b.epoch != 1 {
		t.Fatalf("new batch under epoch %d, want 1", b.epoch)
	}

	p.mu.Lock()
	leaked := p.st.roundPkts[0]
	total := p.st.total
	settled := p.st.settled
	p.mu.Unlock()
	if leaked != 0 {
		t.Fatalf("stale epoch-0 packets leaked into the new round: roundPkts[0] = %d", leaked)
	}
	if total != 2 {
		t.Fatalf("stale batch total = %d, want 2 (stale events still count toward totals)", total)
	}
	if settled != 2 {
		t.Fatalf("stale batch excluded count = %d, want 2", settled)
	}

	// The live epoch-1 batch flushes into the new round normally.
	p.flush(b, nil)
	p.mu.Lock()
	inRound := p.st.roundPkts[1]
	total = p.st.total
	p.mu.Unlock()
	if inRound != 1 {
		t.Fatalf("epoch-1 event missing from the new round: roundPkts[1] = %d", inRound)
	}
	if total != 3 {
		t.Fatalf("total = %d after live flush, want 3", total)
	}
}

// TestRelayHarvestAdvance pins the relay-mode contract: harvests are
// non-consuming snapshots, AdvanceEpoch resets counters and deploys the
// new configuration, stale epochs are rejected, and re-applying the
// current (epoch, config) is an idempotent no-op.
func TestRelayHarvestAdvance(t *testing.T) {
	var deploys []int
	p, err := New(testAttribution(), Config{
		Workers:         1,
		BatchSize:       1,
		Relay:           true,
		MinRoundPackets: 1,
		Deploy:          func(cfgIdx int, table map[uint32]uint8) { deploys = append(deploys, cfgIdx) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	b := newBatch(p.attr.NumLinks)
	p.accumulate(b, testEvent(0), nil)
	p.accumulate(b, testEvent(1), nil)
	p.flush(b, nil)

	h := p.HarvestRound()
	if h.Epoch != 0 || h.Pkts[0] != 1 || h.Pkts[1] != 1 || h.Total != 2 {
		t.Fatalf("harvest = %+v, want epoch 0 with one packet per link", h)
	}
	// Harvesting again returns the same snapshot — collection is
	// non-consuming until the epoch advances.
	if h2 := p.HarvestRound(); h2.Pkts[0] != 1 || h2.Total != 2 {
		t.Fatalf("second harvest consumed counters: %+v", h2)
	}

	if err := p.AdvanceEpoch(1, 2); err != nil {
		t.Fatal(err)
	}
	if got := p.Epoch(); got != 1 {
		t.Fatalf("epoch = %d after advance, want 1", got)
	}
	if h := p.HarvestRound(); h.Pkts[0] != 0 || h.Pkts[1] != 0 {
		t.Fatalf("advance did not reset round counters: %+v", h)
	}
	if len(deploys) != 2 || deploys[1] != 2 {
		t.Fatalf("deploys = %v, want [initial, 2]", deploys)
	}

	// Stale epoch: rejected. Idempotent re-apply: accepted, no deploy.
	if err := p.AdvanceEpoch(0, 0); err == nil {
		t.Fatal("stale epoch accepted")
	}
	if err := p.AdvanceEpoch(1, 2); err != nil {
		t.Fatalf("idempotent re-apply rejected: %v", err)
	}
	if len(deploys) != 2 {
		t.Fatalf("idempotent re-apply re-deployed: %v", deploys)
	}

	// Relay mode keeps localization state empty: no rounds fold locally
	// even though counters exceed MinRoundPackets.
	if p.Status(1).Rounds != 0 {
		t.Fatalf("relay pipeline folded %d rounds locally", p.Status(1).Rounds)
	}
}
