package trace

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// traceFixture journals a small nested campaign-shaped trace.
func traceFixture() *Tracer {
	tr := New(Options{Enabled: true, JournalCap: 64})
	root := tr.Start("campaign")
	root.Set(Int("configs", 2))
	w := root.ChildTrack("worker")
	for i := 0; i < 2; i++ {
		d := w.Child("deploy")
		d.Set(Int("config", int64(i)))
		d.Count("events", 10+int64(i))
		time.Sleep(time.Millisecond)
		d.End()
	}
	w.End()
	root.End()
	return tr
}

func TestWriteJSONTimeline(t *testing.T) {
	tr := traceFixture()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Spans []struct {
			ID     uint64         `json:"id"`
			Parent uint64         `json:"parent"`
			Track  uint64         `json:"track"`
			Name   string         `json:"name"`
			Start  string         `json:"start"`
			DurNS  int64          `json:"dur_ns"`
			Args   map[string]any `json:"args"`
		} `json:"spans"`
		Dropped uint64 `json:"dropped"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("timeline is not valid JSON: %v", err)
	}
	if len(doc.Spans) != 4 {
		t.Fatalf("timeline has %d spans, want 4", len(doc.Spans))
	}
	deploys := 0
	for _, s := range doc.Spans {
		if _, err := time.Parse(time.RFC3339Nano, s.Start); err != nil {
			t.Fatalf("span %q start %q: %v", s.Name, s.Start, err)
		}
		if s.Name == "deploy" {
			deploys++
			if s.Parent == 0 || s.Args["events"] == nil || s.Args["config"] == nil {
				t.Fatalf("deploy span incomplete: %+v", s)
			}
			if s.DurNS < int64(time.Millisecond) {
				t.Fatalf("deploy span dur %d ns, want >= 1ms", s.DurNS)
			}
		}
	}
	if deploys != 2 {
		t.Fatalf("timeline has %d deploy spans, want 2", deploys)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tr := traceFixture()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int            `json:"pid"`
			TID  uint64         `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	var xEvents, metas int
	var campaignTID, deployTID uint64
	var campaignSpan, deploySpan struct{ ts, dur float64 }
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			xEvents++
			if ev.Dur <= 0 || ev.TS < 0 {
				t.Fatalf("event %q has ts=%v dur=%v", ev.Name, ev.TS, ev.Dur)
			}
			if ev.Name == "campaign" {
				campaignTID = ev.TID
				campaignSpan = struct{ ts, dur float64 }{ev.TS, ev.Dur}
			}
			if ev.Name == "deploy" && deployTID == 0 {
				deployTID = ev.TID
				deploySpan = struct{ ts, dur float64 }{ev.TS, ev.Dur}
			}
		case "M":
			metas++
			if ev.Name != "thread_name" {
				t.Fatalf("unexpected metadata event %q", ev.Name)
			}
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if xEvents != 4 {
		t.Fatalf("chrome trace has %d X events, want 4", xEvents)
	}
	if metas != 2 { // campaign track + worker track
		t.Fatalf("chrome trace has %d thread_name events, want 2", metas)
	}
	// Deploy spans ride the worker's track, not the campaign root's, and
	// nest within the campaign span's time range (flame-chart shape).
	if deployTID == campaignTID {
		t.Fatal("worker deploy events share the root track; parallel rows would overlap")
	}
	if deploySpan.ts < campaignSpan.ts ||
		deploySpan.ts+deploySpan.dur > campaignSpan.ts+campaignSpan.dur+1 {
		t.Fatalf("deploy span [%v,+%v] not contained in campaign span [%v,+%v]",
			deploySpan.ts, deploySpan.dur, campaignSpan.ts, campaignSpan.dur)
	}
}

func TestChromeTraceEmptyJournal(t *testing.T) {
	tr := New(Options{Enabled: true})
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if _, ok := doc["traceEvents"]; !ok {
		t.Fatal("empty trace must still carry traceEvents")
	}
}
