package trace

import (
	"encoding/json"
	"io"
	"time"
)

// SpanRecord is one finished span as stored in the journal. Track
// groups records that render on one flame-chart row; a root span's
// Track equals its ID.
type SpanRecord struct {
	ID       uint64
	Parent   uint64 // 0 for root spans
	Track    uint64
	Name     string
	Start    time.Time
	Duration time.Duration
	Attrs    []Attr
	Counters []Counter
}

// Args merges the record's attributes and counters into one map (the
// shape both exporters embed per event).
func (r SpanRecord) Args() map[string]any {
	if len(r.Attrs) == 0 && len(r.Counters) == 0 {
		return nil
	}
	args := make(map[string]any, len(r.Attrs)+len(r.Counters))
	for _, a := range r.Attrs {
		args[a.Key] = a.Value()
	}
	for _, c := range r.Counters {
		args[c.Name] = c.Value
	}
	return args
}

// jsonSpan is the JSON-timeline export shape of one record.
type jsonSpan struct {
	ID     uint64         `json:"id"`
	Parent uint64         `json:"parent,omitempty"`
	Track  uint64         `json:"track"`
	Name   string         `json:"name"`
	Start  string         `json:"start"`
	DurNS  int64          `json:"dur_ns"`
	Args   map[string]any `json:"args,omitempty"`
}

// WriteJSON exports the journal as a JSON timeline: an object with the
// spans ordered by start time plus the journal's dropped count, for
// programmatic consumption and auditing.
func (t *Tracer) WriteJSON(w io.Writer) error {
	recs := t.Snapshot()
	spans := make([]jsonSpan, len(recs))
	for i, r := range recs {
		spans[i] = jsonSpan{
			ID:     r.ID,
			Parent: r.Parent,
			Track:  r.Track,
			Name:   r.Name,
			Start:  r.Start.Format(time.RFC3339Nano),
			DurNS:  r.Duration.Nanoseconds(),
			Args:   r.Args(),
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"spans":   spans,
		"dropped": t.Dropped(),
	})
}

// WriteChromeTrace exports the journal in Chrome trace-event format: a
// {"traceEvents": [...]} object of complete ("X") events that loads in
// chrome://tracing or https://ui.perfetto.dev. Each track becomes a
// thread row (named after its root span), and nested spans on one track
// render as a flame chart.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	return WriteChromeTrace(w, t.Snapshot())
}

// WriteChromeTrace exports the given records in Chrome trace-event
// format. Records must carry wall-clock Start times from one process
// (timestamps are rebased to the earliest record).
func WriteChromeTrace(w io.Writer, recs []SpanRecord) error {
	events := make([]map[string]any, 0, len(recs)+16)
	var base time.Time
	for _, r := range recs {
		if base.IsZero() || r.Start.Before(base) {
			base = r.Start
		}
	}
	// Name each track (trace-viewer thread) after its root span; the
	// first record seen on a track stands in when the root was evicted.
	trackName := make(map[uint64]string)
	for _, r := range recs {
		if r.ID == r.Track || trackName[r.Track] == "" {
			trackName[r.Track] = r.Name
		}
	}
	for track, name := range trackName {
		events = append(events, map[string]any{
			"name": "thread_name",
			"ph":   "M",
			"pid":  1,
			"tid":  track,
			"args": map[string]any{"name": name},
		})
	}
	for _, r := range recs {
		dur := float64(r.Duration.Nanoseconds()) / 1e3
		if dur <= 0 {
			dur = 0.001 // zero-width events confuse trace viewers
		}
		ev := map[string]any{
			"name": r.Name,
			"cat":  "spooftrack",
			"ph":   "X",
			"ts":   float64(r.Start.Sub(base).Nanoseconds()) / 1e3,
			"dur":  dur,
			"pid":  1,
			"tid":  r.Track,
		}
		if args := r.Args(); args != nil {
			ev["args"] = args
		}
		events = append(events, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents":     events,
		"displayTimeUnit": "ms",
	})
}
