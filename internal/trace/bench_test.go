package trace

import "testing"

// BenchmarkStartDisabled measures the per-span-site cost instrumented
// hot paths pay when tracing is off: it must stay at a couple of atomic
// loads with zero allocation.
func BenchmarkStartDisabled(b *testing.B) {
	prev := Global()
	SetGlobal(New(Options{}))
	defer SetGlobal(prev)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := Start("bench")
		sp.Count("n", 1)
		sp.End()
	}
}

// BenchmarkStartEnabled measures the full span lifecycle with the
// journal engaged.
func BenchmarkStartEnabled(b *testing.B) {
	prev := Global()
	SetGlobal(New(Options{Enabled: true, JournalCap: 4096}))
	defer SetGlobal(prev)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := Start("bench")
		sp.Count("n", 1)
		sp.End()
	}
}
