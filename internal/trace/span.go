package trace

import (
	"math"
	"sync"
	"time"
)

// attribute kinds for the Attr tagged union.
const (
	kindString uint8 = iota + 1
	kindInt
	kindFloat
	kindBool
)

// Attr is a typed span attribute. Build with String/Int/Float/Bool; the
// tagged-union layout keeps attribute construction allocation-free for
// the numeric kinds.
type Attr struct {
	Key  string
	kind uint8
	str  string
	num  uint64
}

// String builds a string attribute.
func String(key, v string) Attr { return Attr{Key: key, kind: kindString, str: v} }

// Int builds an int64 attribute.
func Int(key string, v int64) Attr { return Attr{Key: key, kind: kindInt, num: uint64(v)} }

// Float builds a float64 attribute.
func Float(key string, v float64) Attr {
	return Attr{Key: key, kind: kindFloat, num: math.Float64bits(v)}
}

// Bool builds a bool attribute.
func Bool(key string, v bool) Attr {
	a := Attr{Key: key, kind: kindBool}
	if v {
		a.num = 1
	}
	return a
}

// Value returns the attribute's value as its dynamic type.
func (a Attr) Value() any {
	switch a.kind {
	case kindString:
		return a.str
	case kindInt:
		return int64(a.num)
	case kindFloat:
		return math.Float64frombits(a.num)
	case kindBool:
		return a.num != 0
	default:
		return nil
	}
}

// Counter is one named per-span counter.
type Counter struct {
	Name  string
	Value int64
}

// Span is one timed region of work. Spans nest: Child starts a span on
// the same track (rendered as one row of the flame chart), ChildTrack
// starts a child on a fresh track (for concurrent workers, whose spans
// would otherwise overlap within a row).
//
// A nil *Span is a valid no-op — every method checks — which is what
// disabled tracers hand out. Set and Count may be called from the
// goroutine running the span at any point before End; after End they
// are no-ops.
type Span struct {
	t      *Tracer
	id     uint64
	parent uint64
	track  uint64
	name   string
	start  time.Time

	mu       sync.Mutex
	attrs    []Attr
	counters []Counter
	ended    bool
}

// Child begins a nested span on the same track.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	id := s.t.nextID.Add(1)
	return &Span{t: s.t, id: id, parent: s.id, track: s.track, name: name, start: time.Now()}
}

// ChildTrack begins a nested span on a new track of its own — use for
// spans that run concurrently with their siblings (one track per worker
// goroutine renders each worker as its own flame-chart row).
func (s *Span) ChildTrack(name string) *Span {
	if s == nil {
		return nil
	}
	id := s.t.nextID.Add(1)
	return &Span{t: s.t, id: id, parent: s.id, track: id, name: name, start: time.Now()}
}

// Set attaches attributes to the span.
func (s *Span) Set(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.attrs = append(s.attrs, attrs...)
	}
	s.mu.Unlock()
}

// Count adds delta to the span's named counter, creating it at zero on
// first use. Spans carry few counters, so lookup is a linear scan.
func (s *Span) Count(name string, delta int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		for i := range s.counters {
			if s.counters[i].Name == name {
				s.counters[i].Value += delta
				s.mu.Unlock()
				return
			}
		}
		s.counters = append(s.counters, Counter{Name: name, Value: delta})
	}
	s.mu.Unlock()
}

// End finishes the span, stamping its duration off the monotonic clock
// and recording it into the tracer's journal. End is idempotent; calls
// after the first are no-ops.
func (s *Span) End() {
	if s == nil {
		return
	}
	dur := time.Since(s.start)
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	rec := SpanRecord{
		ID:       s.id,
		Parent:   s.parent,
		Track:    s.track,
		Name:     s.name,
		Start:    s.start,
		Duration: dur,
		Attrs:    s.attrs,
		Counters: s.counters,
	}
	s.mu.Unlock()
	s.t.record(rec)
}
