// Package trace is a dependency-free structured tracing kit for the
// campaign pipeline: nestable spans with monotonic timestamps, typed
// attributes, and per-span counters, collected into a lock-sharded
// bounded ring journal and exported as a JSON timeline or in Chrome
// trace-event format (chrome://tracing / Perfetto), so a whole
// campaign — offline deployment, measurement, and the live attribution
// loop — renders as a flame chart.
//
// The package is built around a nil-span fast path: Start returns nil
// when tracing is disabled, and every Span method is a nil-safe no-op,
// so instrumented hot paths pay only an atomic pointer load plus an
// atomic bool load per span site when tracing is off. Instrumentation
// therefore never needs its own enable/disable plumbing:
//
//	sp := trace.Start("bgp.propagate")
//	...
//	sp.Count("events", int64(events))
//	sp.End()
//
// A process-wide default tracer (Global/SetGlobal) keeps wiring out of
// constructor signatures; components that want span nesting across
// package boundaries pass a parent *Span explicitly and derive children
// with StartChild.
package trace

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Options configures a Tracer.
type Options struct {
	// Enabled starts the tracer enabled. Disabled tracers hand out nil
	// spans and record nothing.
	Enabled bool
	// JournalCap bounds the number of finished spans retained across all
	// shards; older spans are evicted ring-buffer style. Default 16384.
	JournalCap int
	// Shards is the number of journal shards (rounded up to a power of
	// two; default 8). Sharding keeps concurrent End calls from
	// serializing on one journal lock.
	Shards int
	// OnEnd, if non-nil, is invoked synchronously with every finished
	// span. This is the bridge hook: cmd/spooftrackd uses it to feed
	// span durations into the metrics registry's histograms.
	OnEnd func(SpanRecord)
	// OnEvict, if non-nil, is invoked synchronously with every span
	// evicted from the bounded journal (overwritten before anyone
	// exported it). cmd/spooftrackd counts these per span name, so span
	// loss under load is alertable instead of silent.
	OnEvict func(SpanRecord)
}

// Tracer collects finished spans into a bounded, lock-sharded journal.
// All methods are safe for concurrent use. A nil *Tracer is valid and
// permanently disabled.
type Tracer struct {
	enabled atomic.Bool
	nextID  atomic.Uint64
	onEnd   func(SpanRecord)
	onEvict func(SpanRecord)
	mask    uint64
	shards  []journalShard
}

type journalShard struct {
	mu      sync.Mutex
	buf     []SpanRecord
	next    int // overwrite cursor once the shard ring is full
	dropped uint64
}

// New builds a tracer.
func New(opts Options) *Tracer {
	capacity := opts.JournalCap
	if capacity <= 0 {
		capacity = 16384
	}
	ns := 1
	for ns < opts.Shards || (opts.Shards <= 0 && ns < 8) {
		ns <<= 1
	}
	per := (capacity + ns - 1) / ns
	t := &Tracer{onEnd: opts.OnEnd, onEvict: opts.OnEvict, mask: uint64(ns - 1), shards: make([]journalShard, ns)}
	for i := range t.shards {
		t.shards[i].buf = make([]SpanRecord, 0, per)
	}
	t.enabled.Store(opts.Enabled)
	return t
}

// Enabled reports whether the tracer hands out live spans.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// SetEnabled flips tracing on or off. Spans already started keep
// recording into the journal when they End.
func (t *Tracer) SetEnabled(on bool) {
	if t != nil {
		t.enabled.Store(on)
	}
}

// Start begins a root span on its own track. It returns nil — a valid
// no-op span — when the tracer is nil or disabled.
func (t *Tracer) Start(name string) *Span {
	if t == nil || !t.enabled.Load() {
		return nil
	}
	id := t.nextID.Add(1)
	return &Span{t: t, id: id, track: id, name: name, start: time.Now()}
}

// record appends a finished span to its journal shard, evicting the
// oldest record once the shard ring is full.
func (t *Tracer) record(rec SpanRecord) {
	sh := &t.shards[rec.ID&t.mask]
	var evicted SpanRecord
	var didEvict bool
	sh.mu.Lock()
	if len(sh.buf) < cap(sh.buf) {
		sh.buf = append(sh.buf, rec)
	} else if cap(sh.buf) > 0 {
		evicted, didEvict = sh.buf[sh.next], true
		sh.buf[sh.next] = rec
		sh.next++
		if sh.next == cap(sh.buf) {
			sh.next = 0
		}
		sh.dropped++
	}
	sh.mu.Unlock()
	if didEvict && t.onEvict != nil {
		t.onEvict(evicted)
	}
	if t.onEnd != nil {
		t.onEnd(rec)
	}
}

// Snapshot copies the journal, ordered by span start time (ties broken
// by span ID). Safe to call while spans are being recorded.
func (t *Tracer) Snapshot() []SpanRecord {
	if t == nil {
		return nil
	}
	var out []SpanRecord
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		if len(sh.buf) == cap(sh.buf) && sh.dropped > 0 {
			out = append(out, sh.buf[sh.next:]...)
			out = append(out, sh.buf[:sh.next]...)
		} else {
			out = append(out, sh.buf...)
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Dropped returns how many finished spans have been evicted from the
// bounded journal.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	var n uint64
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		n += sh.dropped
		sh.mu.Unlock()
	}
	return n
}

// Reset discards every journaled span and the dropped count.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		sh.buf = sh.buf[:0]
		sh.next = 0
		sh.dropped = 0
		sh.mu.Unlock()
	}
}

// global is the process default tracer, disabled until a main wires one
// in with SetGlobal (or enables the default).
var global atomic.Pointer[Tracer]

func init() { global.Store(New(Options{})) }

// Global returns the process default tracer.
func Global() *Tracer { return global.Load() }

// SetGlobal replaces the process default tracer. Nil is ignored.
func SetGlobal(t *Tracer) {
	if t != nil {
		global.Store(t)
	}
}

// Start begins a root span on the process default tracer; nil (a no-op
// span) when tracing is disabled.
func Start(name string) *Span { return global.Load().Start(name) }

// StartChild begins a span under parent, or — when parent is nil, e.g.
// at an API boundary whose caller did not trace — a root span on the
// process default tracer. This is the idiom for functions accepting an
// optional parent span.
func StartChild(parent *Span, name string) *Span {
	if parent != nil {
		return parent.Child(name)
	}
	return global.Load().Start(name)
}
