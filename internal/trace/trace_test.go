package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func enabled(capacity int) *Tracer {
	return New(Options{Enabled: true, JournalCap: capacity})
}

func TestDisabledTracerHandsOutNilSpans(t *testing.T) {
	tr := New(Options{})
	if tr.Enabled() {
		t.Fatal("tracer should start disabled")
	}
	sp := tr.Start("x")
	if sp != nil {
		t.Fatal("disabled tracer must return nil spans")
	}
	// Every method must be a nil-safe no-op.
	sp.Set(Int("a", 1))
	sp.Count("c", 2)
	child := sp.Child("y")
	if child != nil {
		t.Fatal("nil span's child must be nil")
	}
	sp.ChildTrack("z").End()
	sp.End()
	if got := tr.Snapshot(); len(got) != 0 {
		t.Fatalf("disabled tracer journaled %d spans", len(got))
	}
}

func TestNilTracerIsValid(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	tr.Start("x").End()
	tr.SetEnabled(true)
	tr.Reset()
	if tr.Snapshot() != nil || tr.Dropped() != 0 {
		t.Fatal("nil tracer must act empty")
	}
}

func TestSpanNestingAndRecords(t *testing.T) {
	tr := enabled(64)
	root := tr.Start("root")
	root.Set(String("who", "test"), Bool("ok", true))
	child := root.Child("child")
	child.Count("events", 3)
	child.Count("events", 4)
	child.Set(Float("ratio", 0.5))
	worker := root.ChildTrack("worker")
	grand := worker.Child("task")
	grand.End()
	worker.End()
	child.End()
	root.End()

	recs := tr.Snapshot()
	if len(recs) != 4 {
		t.Fatalf("got %d records, want 4", len(recs))
	}
	byName := map[string]SpanRecord{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	r := byName["root"]
	if r.Parent != 0 || r.Track != r.ID {
		t.Fatalf("root record %+v: want parentless on own track", r)
	}
	c := byName["child"]
	if c.Parent != r.ID || c.Track != r.Track {
		t.Fatalf("child record %+v: want parent %d on track %d", c, r.ID, r.Track)
	}
	if got := c.Args()["events"]; got != int64(7) {
		t.Fatalf("child counter events = %v, want 7", got)
	}
	if got := c.Args()["ratio"]; got != 0.5 {
		t.Fatalf("child attr ratio = %v, want 0.5", got)
	}
	w := byName["worker"]
	if w.Parent != r.ID || w.Track == r.Track || w.Track != w.ID {
		t.Fatalf("worker record %+v: want own track under root", w)
	}
	g := byName["task"]
	if g.Parent != w.ID || g.Track != w.Track {
		t.Fatalf("task record %+v: want nested on worker track", g)
	}
	if got := r.Args()["who"]; got != "test" {
		t.Fatalf("root attr who = %v", got)
	}
	if got := r.Args()["ok"]; got != true {
		t.Fatalf("root attr ok = %v", got)
	}
}

func TestEndIsIdempotentAndSealsSpan(t *testing.T) {
	tr := enabled(16)
	sp := tr.Start("x")
	sp.Count("n", 1)
	sp.End()
	sp.Count("n", 100)
	sp.Set(Int("late", 1))
	sp.End()
	recs := tr.Snapshot()
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1 (End must be idempotent)", len(recs))
	}
	if got := recs[0].Args()["n"]; got != int64(1) {
		t.Fatalf("counter mutated after End: %v", got)
	}
	if _, ok := recs[0].Args()["late"]; ok {
		t.Fatal("attr attached after End")
	}
}

func TestJournalBoundedEviction(t *testing.T) {
	tr := New(Options{Enabled: true, JournalCap: 8, Shards: 1})
	for i := 0; i < 20; i++ {
		tr.Start("s").End()
	}
	recs := tr.Snapshot()
	if len(recs) != 8 {
		t.Fatalf("journal holds %d records, want cap 8", len(recs))
	}
	if tr.Dropped() != 12 {
		t.Fatalf("dropped = %d, want 12", tr.Dropped())
	}
	// Eviction keeps the newest records, in order.
	for i := 1; i < len(recs); i++ {
		if recs[i].ID <= recs[i-1].ID {
			t.Fatalf("snapshot out of order: %d after %d", recs[i].ID, recs[i-1].ID)
		}
	}
	if recs[0].ID != 13 {
		t.Fatalf("oldest surviving span ID = %d, want 13", recs[0].ID)
	}
	tr.Reset()
	if len(tr.Snapshot()) != 0 || tr.Dropped() != 0 {
		t.Fatal("Reset did not clear the journal")
	}
}

func TestOnEndBridge(t *testing.T) {
	var mu sync.Mutex
	seen := map[string]time.Duration{}
	tr := New(Options{Enabled: true, OnEnd: func(rec SpanRecord) {
		mu.Lock()
		seen[rec.Name] = rec.Duration
		mu.Unlock()
	}})
	sp := tr.Start("bridge")
	time.Sleep(time.Millisecond)
	sp.End()
	mu.Lock()
	defer mu.Unlock()
	if d, ok := seen["bridge"]; !ok || d <= 0 {
		t.Fatalf("OnEnd saw %v", seen)
	}
}

func TestStartChildFallsBackToGlobal(t *testing.T) {
	prev := Global()
	defer SetGlobal(prev)
	tr := enabled(16)
	SetGlobal(tr)

	root := Start("root")
	if root == nil {
		t.Fatal("global tracer enabled but Start returned nil")
	}
	if c := StartChild(root, "c"); c == nil || c.parent != root.id {
		t.Fatal("StartChild with parent must nest")
	} else {
		c.End()
	}
	orphan := StartChild(nil, "orphan")
	if orphan == nil || orphan.parent != 0 {
		t.Fatal("StartChild without parent must start a root span")
	}
	orphan.End()
	root.End()
	if len(tr.Snapshot()) != 3 {
		t.Fatalf("got %d records, want 3", len(tr.Snapshot()))
	}
}

func TestConcurrentSpansRace(t *testing.T) {
	tr := New(Options{Enabled: true, JournalCap: 1024, Shards: 4})
	root := tr.Start("root")
	var wg sync.WaitGroup
	for k := 0; k < 8; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			wsp := root.ChildTrack("worker")
			for i := 0; i < 50; i++ {
				sp := wsp.Child("task")
				sp.Count("i", int64(i))
				sp.Set(Int("k", int64(k)))
				sp.End()
			}
			wsp.End()
		}(k)
	}
	// Concurrent snapshot while spans end.
	for i := 0; i < 10; i++ {
		tr.Snapshot()
	}
	wg.Wait()
	root.End()
	recs := tr.Snapshot()
	if len(recs) == 0 {
		t.Fatal("no records after concurrent run")
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Start.Before(recs[i-1].Start) {
			t.Fatal("snapshot not ordered by start time")
		}
	}
}

func TestMonotonicDurations(t *testing.T) {
	tr := enabled(16)
	sp := tr.Start("timed")
	time.Sleep(2 * time.Millisecond)
	sp.End()
	recs := tr.Snapshot()
	if len(recs) != 1 || recs[0].Duration < 2*time.Millisecond {
		t.Fatalf("duration %v, want >= 2ms", recs[0].Duration)
	}
	if strings.TrimSpace(recs[0].Name) == "" {
		t.Fatal("record lost its name")
	}
}

func TestOnEvictHook(t *testing.T) {
	var mu sync.Mutex
	var evicted []string
	tr := New(Options{Enabled: true, JournalCap: 4, Shards: 1,
		OnEvict: func(rec SpanRecord) {
			mu.Lock()
			evicted = append(evicted, rec.Name)
			mu.Unlock()
		}})
	for i := 0; i < 4; i++ {
		tr.Start("keep").End()
	}
	mu.Lock()
	if len(evicted) != 0 {
		t.Fatalf("evictions before the ring filled: %v", evicted)
	}
	mu.Unlock()
	for i := 0; i < 3; i++ {
		tr.Start("push").End()
	}
	mu.Lock()
	defer mu.Unlock()
	if len(evicted) != 3 {
		t.Fatalf("OnEvict fired %d times, want 3", len(evicted))
	}
	// The overwritten spans are the oldest — the "keep" generation.
	for _, name := range evicted {
		if name != "keep" {
			t.Fatalf("evicted %q, want the oldest generation", name)
		}
	}
	if tr.Dropped() != 3 {
		t.Fatalf("Dropped() = %d, want 3", tr.Dropped())
	}
}
