package flowspec

import (
	"net/netip"
	"testing"
	"testing/quick"

	"spooftrack/internal/addr"
	"spooftrack/internal/topo"
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }
func ip(s string) netip.Addr    { return netip.MustParseAddr(s) }

func sampleRule() Rule {
	return Rule{
		DstPrefix:       pfx("198.51.100.0/24"),
		SrcPrefix:       pfx("16.0.32.0/20"),
		Protos:          []uint8{17},
		DstPorts:        []uint16{123, 11211},
		SrcPorts:        []uint16{53},
		RateBytesPerSec: 0,
	}
}

func TestRuleMatches(t *testing.T) {
	r := sampleRule()
	match := Packet{Src: ip("16.0.32.9"), Dst: ip("198.51.100.1"), Proto: 17, SrcPort: 53, DstPort: 123}
	if !r.Matches(match) {
		t.Fatal("matching packet rejected")
	}
	cases := []Packet{
		{Src: ip("16.0.48.9"), Dst: ip("198.51.100.1"), Proto: 17, SrcPort: 53, DstPort: 123},  // wrong src
		{Src: ip("16.0.32.9"), Dst: ip("203.0.113.1"), Proto: 17, SrcPort: 53, DstPort: 123},   // wrong dst
		{Src: ip("16.0.32.9"), Dst: ip("198.51.100.1"), Proto: 6, SrcPort: 53, DstPort: 123},   // wrong proto
		{Src: ip("16.0.32.9"), Dst: ip("198.51.100.1"), Proto: 17, SrcPort: 53, DstPort: 80},   // wrong dport
		{Src: ip("16.0.32.9"), Dst: ip("198.51.100.1"), Proto: 17, SrcPort: 999, DstPort: 123}, // wrong sport
	}
	for i, p := range cases {
		if r.Matches(p) {
			t.Errorf("case %d: non-matching packet accepted", i)
		}
	}
}

func TestRuleZeroFieldsMatchAnything(t *testing.T) {
	r := Rule{SrcPrefix: pfx("16.0.0.0/8")}
	if !r.Matches(Packet{Src: ip("16.1.2.3"), Dst: ip("1.2.3.4"), Proto: 6, DstPort: 80}) {
		t.Fatal("wildcard fields should match")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	r := sampleRule()
	data, err := r.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.DstPrefix != r.DstPrefix || got.SrcPrefix != r.SrcPrefix {
		t.Fatalf("prefixes lost: %+v", got)
	}
	if len(got.Protos) != 1 || got.Protos[0] != 17 {
		t.Fatalf("protos lost: %v", got.Protos)
	}
	if len(got.DstPorts) != 2 || got.DstPorts[0] != 123 || got.DstPorts[1] != 11211 {
		t.Fatalf("dports lost: %v", got.DstPorts)
	}
	if len(got.SrcPorts) != 1 || got.SrcPorts[0] != 53 {
		t.Fatalf("sports lost: %v", got.SrcPorts)
	}
	if got.RateBytesPerSec != 0 {
		t.Fatalf("rate lost: %v", got.RateBytesPerSec)
	}
}

func TestMarshalRoundTripProperty(t *testing.T) {
	f := func(srcOct [4]byte, bits uint8, proto uint8, port uint16, rate float32) bool {
		r := Rule{
			SrcPrefix:       netip.PrefixFrom(netip.AddrFrom4(srcOct), int(bits%33)),
			Protos:          []uint8{proto},
			DstPorts:        []uint16{port},
			RateBytesPerSec: rate,
		}
		// Mask the prefix so it round-trips canonically.
		r.SrcPrefix = r.SrcPrefix.Masked()
		data, err := r.Marshal()
		if err != nil {
			return false
		}
		got, err := Unmarshal(data)
		if err != nil {
			return false
		}
		return got.SrcPrefix == r.SrcPrefix &&
			got.Protos[0] == proto && got.DstPorts[0] == port &&
			(got.RateBytesPerSec == rate || (rate != rate && got.RateBytesPerSec != got.RateBytesPerSec))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMarshalRejectsEmptyRule(t *testing.T) {
	r := Rule{}
	if _, err := r.Marshal(); err == nil {
		t.Fatal("match-everything rule accepted")
	}
	v6 := Rule{SrcPrefix: pfx("2001:db8::/48")}
	if _, err := v6.Marshal(); err == nil {
		t.Fatal("IPv6 rule accepted")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{5, 1, 2},                          // truncated
		{2, 99, 0, 0, 0, 0, 0, 0, 0, 0, 0}, // unknown component
	}
	for i, data := range cases {
		if _, err := Unmarshal(data); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// Corrupt the action community type.
	r := sampleRule()
	data, err := r.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-8] = 0x40
	if _, err := Unmarshal(data); err == nil {
		t.Error("bad action community accepted")
	}
}

func TestTableOrderingAndMatch(t *testing.T) {
	broad := Rule{SrcPrefix: pfx("16.0.0.0/8"), RateBytesPerSec: 1000}
	narrow := Rule{SrcPrefix: pfx("16.0.32.0/20"), RateBytesPerSec: 0}
	table := NewTable([]Rule{broad, narrow}) // broad first on purpose
	// The more specific source prefix must win.
	p := Packet{Src: ip("16.0.32.1"), Dst: ip("1.1.1.1")}
	got := table.Match(p)
	if got == nil || got.RateBytesPerSec != 0 {
		t.Fatalf("longest-prefix rule not preferred: %+v", got)
	}
	if !table.ShouldDrop(p) {
		t.Fatal("drop rule not applied")
	}
	other := Packet{Src: ip("16.9.9.9"), Dst: ip("1.1.1.1")}
	if table.ShouldDrop(other) {
		t.Fatal("rate-limited packet dropped")
	}
	if table.Match(Packet{Src: ip("99.9.9.9")}) != nil {
		t.Fatal("unmatched packet matched")
	}
	if table.Len() != 2 {
		t.Fatal("table size wrong")
	}
}

func TestDropRulesForSources(t *testing.T) {
	p := topo.DefaultGenParams(91)
	p.NumASes = 300
	g, err := topo.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	space := addr.Allocate(g)
	protect := pfx("198.51.100.0/24")
	rules := DropRulesForSources(space, []int{5, 9}, protect, 17, 11211)
	if len(rules) < 2 {
		t.Fatalf("got %d rules", len(rules))
	}
	// Every rule drops UDP:11211 from a candidate prefix toward the
	// protected prefix.
	for _, r := range rules {
		if r.RateBytesPerSec != 0 || r.DstPrefix != protect {
			t.Fatalf("bad rule %+v", r)
		}
		as, ok := space.ASOf(r.SrcPrefix.Addr())
		if !ok || (as != 5 && as != 9) {
			t.Fatalf("rule source %v not from a candidate", r.SrcPrefix)
		}
	}
	// Traffic from candidate 5 is dropped; from another AS it is not.
	table := NewTable(rules)
	if !table.ShouldDrop(Packet{Src: space.HostAddr(5, 0), Dst: ip("198.51.100.1"), Proto: 17, DstPort: 11211}) {
		t.Fatal("candidate traffic not dropped")
	}
	if table.ShouldDrop(Packet{Src: space.HostAddr(50, 0), Dst: ip("198.51.100.1"), Proto: 17, DstPort: 11211}) {
		t.Fatal("innocent traffic dropped")
	}
	// Same source, different service: untouched.
	if table.ShouldDrop(Packet{Src: space.HostAddr(5, 0), Dst: ip("198.51.100.1"), Proto: 17, DstPort: 53}) {
		t.Fatal("other service traffic dropped")
	}
}

func TestMarshalRulesRoundTrip(t *testing.T) {
	rules := []Rule{sampleRule(), {SrcPrefix: pfx("16.0.0.0/12"), RateBytesPerSec: 125000}}
	data, err := MarshalRules(rules)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalRules(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d rules", len(got))
	}
	if got[1].RateBytesPerSec != 125000 {
		t.Fatal("rate lost in stream")
	}
	if _, err := UnmarshalRules([]byte{9, 9}); err == nil {
		t.Fatal("garbage stream accepted")
	}
}
