package flowspec

import (
	"net/netip"

	"spooftrack/internal/addr"
)

// DropRulesForSources generates drop rules for the localization output:
// one rule per prefix of each candidate source AS, matching traffic from
// that prefix toward the protected destination prefix. protoUDP and the
// amplification service port narrow the rules so legitimate traffic from
// the same networks is unaffected.
func DropRulesForSources(space *addr.Space, candidates []int, protect netip.Prefix, proto uint8, dstPort uint16) []Rule {
	var rules []Rule
	for _, as := range candidates {
		for _, p := range space.PrefixesOf(as) {
			r := Rule{
				DstPrefix:       protect,
				SrcPrefix:       p,
				RateBytesPerSec: 0,
			}
			if proto != 0 {
				r.Protos = []uint8{proto}
			}
			if dstPort != 0 {
				r.DstPorts = []uint16{dstPort}
			}
			rules = append(rules, r)
		}
	}
	return rules
}

// MarshalRules encodes a rule set into one byte stream (length-prefixed
// records), ready to be disseminated to border routers.
func MarshalRules(rules []Rule) ([]byte, error) {
	var out []byte
	for i := range rules {
		data, err := rules[i].Marshal()
		if err != nil {
			return nil, err
		}
		out = append(out, data...)
	}
	return out, nil
}

// UnmarshalRules decodes a stream produced by MarshalRules.
func UnmarshalRules(data []byte) ([]Rule, error) {
	var rules []Rule
	for len(data) > 0 {
		r, err := Unmarshal(data)
		if err != nil {
			return nil, err
		}
		rules = append(rules, *r)
		// Advance: 1 length byte + NLRI + 8 action bytes.
		data = data[1+int(data[0])+8:]
	}
	return rules, nil
}
