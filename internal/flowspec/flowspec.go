// Package flowspec implements the subset of BGP Flow Specification
// (RFC 5575) needed to act on the paper's localization output: §I
// proposes driving "automatic DoS mitigation systems that use ... BGP
// flowspec to configure traffic filters". Once clusters sending spoofed
// traffic are identified, the origin can disseminate flowspec rules that
// drop (or rate-limit) matching traffic at its border.
//
// Scope: IPv4 rules with destination-prefix (type 1), source-prefix
// (type 2), IP-protocol (type 3), destination-port (type 5) and
// source-port (type 6) components, all with equality operators, plus the
// traffic-rate action extended community (0x8006; rate 0 = drop). The
// wire format follows RFC 5575 §4 (NLRI) and §7 (actions).
package flowspec

import (
	"encoding/binary"
	"fmt"
	"math"
	"net/netip"
	"sort"
)

// Component type codes (RFC 5575 §4).
const (
	compDstPrefix = 1
	compSrcPrefix = 2
	compProto     = 3
	compDstPort   = 5
	compSrcPort   = 6
)

// Rule is one flow specification with its action. Zero-valued fields
// match anything.
type Rule struct {
	// DstPrefix matches the destination address (the protected prefix).
	DstPrefix netip.Prefix
	// SrcPrefix matches the (spoofed or attacking) source address.
	SrcPrefix netip.Prefix
	// Protos lists acceptable IP protocol numbers (empty = any).
	Protos []uint8
	// DstPorts and SrcPorts list acceptable ports (empty = any).
	DstPorts []uint16
	SrcPorts []uint16
	// RateBytesPerSec is the traffic-rate action; 0 drops all matching
	// traffic.
	RateBytesPerSec float32
}

// Packet is the 5-tuple a rule is matched against.
type Packet struct {
	Src, Dst netip.Addr
	Proto    uint8
	SrcPort  uint16
	DstPort  uint16
}

// Matches reports whether the packet satisfies every component of the
// rule.
func (r *Rule) Matches(p Packet) bool {
	if r.DstPrefix.IsValid() && !r.DstPrefix.Contains(p.Dst) {
		return false
	}
	if r.SrcPrefix.IsValid() && !r.SrcPrefix.Contains(p.Src) {
		return false
	}
	if len(r.Protos) > 0 && !containsU8(r.Protos, p.Proto) {
		return false
	}
	if len(r.DstPorts) > 0 && !containsU16(r.DstPorts, p.DstPort) {
		return false
	}
	if len(r.SrcPorts) > 0 && !containsU16(r.SrcPorts, p.SrcPort) {
		return false
	}
	return true
}

func containsU8(xs []uint8, v uint8) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func containsU16(xs []uint16, v uint16) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// Marshal encodes the rule as RFC 5575 NLRI followed by the 8-byte
// traffic-rate extended community.
func (r *Rule) Marshal() ([]byte, error) {
	var nlri []byte
	appendPrefix := func(typeCode byte, p netip.Prefix) error {
		if !p.Addr().Is4() {
			return fmt.Errorf("flowspec: prefix %v is not IPv4", p)
		}
		nlri = append(nlri, typeCode, byte(p.Bits()))
		addr := p.Addr().As4()
		nlri = append(nlri, addr[:(p.Bits()+7)/8]...)
		return nil
	}
	if r.DstPrefix.IsValid() {
		if err := appendPrefix(compDstPrefix, r.DstPrefix); err != nil {
			return nil, err
		}
	}
	if r.SrcPrefix.IsValid() {
		if err := appendPrefix(compSrcPrefix, r.SrcPrefix); err != nil {
			return nil, err
		}
	}
	appendU8List := func(typeCode byte, vals []uint8) {
		if len(vals) == 0 {
			return
		}
		nlri = append(nlri, typeCode)
		for i, v := range vals {
			op := byte(0x01) // equality, 1-byte value
			if i == len(vals)-1 {
				op |= 0x80 // end of list
			}
			nlri = append(nlri, op, v)
		}
	}
	appendU16List := func(typeCode byte, vals []uint16) {
		if len(vals) == 0 {
			return
		}
		nlri = append(nlri, typeCode)
		for i, v := range vals {
			op := byte(0x11) // equality, 2-byte value (len bits = 01)
			if i == len(vals)-1 {
				op |= 0x80
			}
			nlri = binary.BigEndian.AppendUint16(append(nlri, op), v)
		}
	}
	appendU8List(compProto, r.Protos)
	appendU16List(compDstPort, r.DstPorts)
	appendU16List(compSrcPort, r.SrcPorts)
	if len(nlri) == 0 {
		return nil, fmt.Errorf("flowspec: rule matches everything; refusing to encode")
	}
	if len(nlri) > 0xf0 {
		return nil, fmt.Errorf("flowspec: NLRI of %d bytes needs extended length (unsupported)", len(nlri))
	}
	out := make([]byte, 0, 1+len(nlri)+8)
	out = append(out, byte(len(nlri)))
	out = append(out, nlri...)
	// Traffic-rate extended community: type 0x80, subtype 0x06, 2-byte
	// AS (0), 4-byte IEEE float rate.
	out = append(out, 0x80, 0x06, 0, 0)
	out = binary.BigEndian.AppendUint32(out, math.Float32bits(r.RateBytesPerSec))
	return out, nil
}

// Unmarshal decodes one rule (NLRI + traffic-rate community) produced by
// Marshal.
func Unmarshal(data []byte) (*Rule, error) {
	if len(data) < 1 {
		return nil, fmt.Errorf("flowspec: empty rule")
	}
	nlriLen := int(data[0])
	if len(data) < 1+nlriLen+8 {
		return nil, fmt.Errorf("flowspec: truncated rule (%d bytes, NLRI %d)", len(data), nlriLen)
	}
	nlri := data[1 : 1+nlriLen]
	r := &Rule{}
	for len(nlri) > 0 {
		typeCode := nlri[0]
		nlri = nlri[1:]
		switch typeCode {
		case compDstPrefix, compSrcPrefix:
			if len(nlri) < 1 {
				return nil, fmt.Errorf("flowspec: truncated prefix component")
			}
			bits := int(nlri[0])
			nBytes := (bits + 7) / 8
			if bits > 32 || len(nlri) < 1+nBytes {
				return nil, fmt.Errorf("flowspec: bad prefix component")
			}
			var a [4]byte
			copy(a[:], nlri[1:1+nBytes])
			p := netip.PrefixFrom(netip.AddrFrom4(a), bits)
			if typeCode == compDstPrefix {
				r.DstPrefix = p
			} else {
				r.SrcPrefix = p
			}
			nlri = nlri[1+nBytes:]
		case compProto:
			for {
				if len(nlri) < 2 {
					return nil, fmt.Errorf("flowspec: truncated proto component")
				}
				op, v := nlri[0], nlri[1]
				nlri = nlri[2:]
				if op&0x01 == 0 {
					return nil, fmt.Errorf("flowspec: non-equality proto op %#x", op)
				}
				r.Protos = append(r.Protos, v)
				if op&0x80 != 0 {
					break
				}
			}
		case compDstPort, compSrcPort:
			var vals []uint16
			for {
				if len(nlri) < 3 {
					return nil, fmt.Errorf("flowspec: truncated port component")
				}
				op := nlri[0]
				v := binary.BigEndian.Uint16(nlri[1:3])
				nlri = nlri[3:]
				if op&0x01 == 0 {
					return nil, fmt.Errorf("flowspec: non-equality port op %#x", op)
				}
				vals = append(vals, v)
				if op&0x80 != 0 {
					break
				}
			}
			if typeCode == compDstPort {
				r.DstPorts = vals
			} else {
				r.SrcPorts = vals
			}
		default:
			return nil, fmt.Errorf("flowspec: unsupported component type %d", typeCode)
		}
	}
	ext := data[1+nlriLen : 1+nlriLen+8]
	if ext[0] != 0x80 || ext[1] != 0x06 {
		return nil, fmt.Errorf("flowspec: unexpected action community %#x%02x", ext[0], ext[1])
	}
	r.RateBytesPerSec = math.Float32frombits(binary.BigEndian.Uint32(ext[4:8]))
	return r, nil
}

// Table is an ordered rule set. RFC 5575 orders rules by specificity;
// this implementation evaluates in insertion order after sorting by
// longest source prefix (the dominant discriminator for anti-spoofing
// rules), which matches the RFC's ordering for the rule shapes produced
// here.
type Table struct {
	rules []Rule
}

// NewTable builds a table from rules.
func NewTable(rules []Rule) *Table {
	t := &Table{rules: append([]Rule(nil), rules...)}
	sort.SliceStable(t.rules, func(i, j int) bool {
		return t.rules[i].SrcPrefix.Bits() > t.rules[j].SrcPrefix.Bits()
	})
	return t
}

// Len returns the number of installed rules.
func (t *Table) Len() int { return len(t.rules) }

// Match returns the first matching rule, or nil.
func (t *Table) Match(p Packet) *Rule {
	for i := range t.rules {
		if t.rules[i].Matches(p) {
			return &t.rules[i]
		}
	}
	return nil
}

// ShouldDrop reports whether the packet matches a rule whose rate is 0.
func (t *Table) ShouldDrop(p Packet) bool {
	r := t.Match(p)
	return r != nil && r.RateBytesPerSec == 0
}
