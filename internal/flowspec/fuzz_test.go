package flowspec

import (
	"net/netip"
	"testing"
)

// FuzzUnmarshal exercises the RFC 5575 parser against arbitrary input:
// never panic; accepted rules re-encode losslessly.
func FuzzUnmarshal(f *testing.F) {
	r := Rule{
		DstPrefix:       netip.MustParsePrefix("198.51.100.0/24"),
		SrcPrefix:       netip.MustParsePrefix("16.0.32.0/20"),
		Protos:          []uint8{17},
		DstPorts:        []uint16{11211},
		RateBytesPerSec: 0,
	}
	valid, err := r.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-2])
	mut := append([]byte(nil), valid...)
	mut[1] ^= 0xff
	f.Add(mut)
	f.Add([]byte{})
	f.Add([]byte{0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Unmarshal(data)
		if err != nil {
			return
		}
		re, err := got.Marshal()
		if err != nil {
			return // e.g., wildcard-only rule: parseable but not encodable
		}
		got2, err := Unmarshal(re)
		if err != nil {
			t.Fatalf("re-encoded rule unparseable: %v", err)
		}
		if got2.SrcPrefix != got.SrcPrefix || got2.DstPrefix != got.DstPrefix {
			t.Fatal("prefixes drift across round trips")
		}
	})
}
