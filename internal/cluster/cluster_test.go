package cluster

import (
	"testing"
	"testing/quick"

	"spooftrack/internal/bgp"
	"spooftrack/internal/stats"
)

func labels(ls ...int) []bgp.LinkID {
	out := make([]bgp.LinkID, len(ls))
	for i, l := range ls {
		out[i] = bgp.LinkID(l)
	}
	return out
}

func TestNewSingleCluster(t *testing.T) {
	p := New(5)
	if p.NumClusters() != 1 || p.NumSources() != 5 {
		t.Fatalf("got %d clusters over %d sources", p.NumClusters(), p.NumSources())
	}
	for k := 0; k < 5; k++ {
		if p.ClusterOf(k) != 0 {
			t.Fatal("all sources must start in cluster 0")
		}
	}
}

func TestNewEmpty(t *testing.T) {
	p := New(0)
	if p.NumClusters() != 0 {
		t.Fatal("empty partition should have 0 clusters")
	}
	m := p.Summarize()
	if m.NumClusters != 0 {
		t.Fatal("empty metrics should be zero")
	}
}

func TestRefineSplits(t *testing.T) {
	p := New(6)
	p.Refine(labels(0, 0, 1, 1, 2, 2))
	if p.NumClusters() != 3 {
		t.Fatalf("got %d clusters, want 3", p.NumClusters())
	}
	if p.ClusterOf(0) != p.ClusterOf(1) || p.ClusterOf(0) == p.ClusterOf(2) {
		t.Fatal("refinement grouped wrong sources")
	}
}

func TestRefineIsIntersection(t *testing.T) {
	// Refining by two configurations separates exactly the pairs that
	// differ in at least one config.
	p := New(4)
	p.Refine(labels(0, 0, 1, 1))
	p.Refine(labels(0, 1, 0, 1))
	if p.NumClusters() != 4 {
		t.Fatalf("got %d clusters, want 4", p.NumClusters())
	}
}

func TestRefineNoLinkStaysTogether(t *testing.T) {
	p := New(4)
	p.Refine([]bgp.LinkID{0, bgp.NoLink, bgp.NoLink, 1})
	if p.NumClusters() != 3 {
		t.Fatalf("got %d clusters, want 3", p.NumClusters())
	}
	if p.ClusterOf(1) != p.ClusterOf(2) {
		t.Fatal("unobserved sources must stay together")
	}
}

func TestRefineIdempotent(t *testing.T) {
	p := New(6)
	l := labels(0, 1, 0, 1, 2, 0)
	p.Refine(l)
	before := p.NumClusters()
	p.Refine(l)
	if p.NumClusters() != before {
		t.Fatal("refining by the same labels twice must not split further")
	}
}

func TestRefineOrderIndependentClusterCount(t *testing.T) {
	a, b := New(8), New(8)
	l1 := labels(0, 0, 1, 1, 0, 1, 0, 1)
	l2 := labels(0, 1, 0, 1, 1, 1, 0, 0)
	a.Refine(l1)
	a.Refine(l2)
	b.Refine(l2)
	b.Refine(l1)
	if a.NumClusters() != b.NumClusters() {
		t.Fatal("refinement order changed the partition")
	}
	// Same groupings, possibly different ids.
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			if (a.ClusterOf(i) == a.ClusterOf(j)) != (b.ClusterOf(i) == b.ClusterOf(j)) {
				t.Fatalf("pair (%d,%d) grouped differently depending on order", i, j)
			}
		}
	}
}

func TestRefinePanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(3).Refine(labels(0, 1))
}

func TestNumClustersAfterMatchesRefine(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 64 {
			return true
		}
		p := New(len(raw))
		// Pre-split with a derived labeling.
		pre := make([]bgp.LinkID, len(raw))
		for i, v := range raw {
			pre[i] = bgp.LinkID(v % 3)
		}
		p.Refine(pre)
		l := make([]bgp.LinkID, len(raw))
		for i, v := range raw {
			l[i] = bgp.LinkID(v % 5)
		}
		predicted := p.NumClustersAfter(l)
		cp := p.RefinedCopy(l)
		return predicted == cp.NumClusters() && p.NumClustersAfter(pre) == p.NumClusters()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependent(t *testing.T) {
	p := New(4)
	cp := p.Clone()
	p.Refine(labels(0, 1, 0, 1))
	if cp.NumClusters() != 1 {
		t.Fatal("clone affected by refinement of original")
	}
}

func TestSizesAndMembers(t *testing.T) {
	p := New(5)
	p.Refine(labels(0, 0, 0, 1, 1))
	sizes := p.Sizes()
	if len(sizes) != 2 || sizes[0]+sizes[1] != 5 {
		t.Fatalf("sizes = %v", sizes)
	}
	members := p.Members()
	total := 0
	for c, ms := range members {
		total += len(ms)
		if len(ms) != sizes[c] {
			t.Fatalf("members/sizes mismatch for cluster %d", c)
		}
	}
	if total != 5 {
		t.Fatal("members do not cover all sources")
	}
}

func TestSummarize(t *testing.T) {
	p := New(6)
	p.Refine(labels(0, 0, 0, 0, 1, 2))
	m := p.Summarize()
	if m.NumClusters != 3 {
		t.Fatalf("NumClusters = %d", m.NumClusters)
	}
	if m.MeanSize != 2.0 {
		t.Fatalf("MeanSize = %v, want 2", m.MeanSize)
	}
	if m.MaxSize != 4 {
		t.Fatalf("MaxSize = %d, want 4", m.MaxSize)
	}
	if m.SingletonFrac < 0.66 || m.SingletonFrac > 0.67 {
		t.Fatalf("SingletonFrac = %v, want 2/3", m.SingletonFrac)
	}
}

func TestMeanSizeWeighted(t *testing.T) {
	p := New(4)
	p.Refine(labels(0, 0, 0, 1))
	// Sizes 3 and 1: per-cluster mean 2, per-source mean (3*3+1)/4 = 2.5.
	if got := p.Summarize().MeanSize; got != 2 {
		t.Fatalf("MeanSize = %v", got)
	}
	if got := p.MeanSizeWeighted(); got != 2.5 {
		t.Fatalf("MeanSizeWeighted = %v, want 2.5", got)
	}
}

func TestSizeCCDF(t *testing.T) {
	p := New(4)
	p.Refine(labels(0, 0, 0, 1))
	ccdf := p.SizeCCDF()
	// Sizes {3,1}: CCDF points at 1 (frac 1.0) and 3 (frac 0.5).
	want := []stats.CCDFPoint{{Value: 1, Frac: 1.0}, {Value: 3, Frac: 0.5}}
	if len(ccdf) != len(want) {
		t.Fatalf("CCDF = %v", ccdf)
	}
	for i := range want {
		if ccdf[i] != want[i] {
			t.Fatalf("CCDF = %v, want %v", ccdf, want)
		}
	}
}

func TestSizeOfSource(t *testing.T) {
	p := New(4)
	p.Refine(labels(0, 0, 0, 1))
	if p.SizeOfSource(0) != 3 || p.SizeOfSource(3) != 1 {
		t.Fatal("SizeOfSource wrong")
	}
}

func TestRefineMonotone(t *testing.T) {
	// Property: refinement never decreases the number of clusters and
	// never exceeds the number of sources.
	f := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 128 {
			return true
		}
		p := New(len(raw))
		prev := p.NumClusters()
		for round := 0; round < 3; round++ {
			l := make([]bgp.LinkID, len(raw))
			for i, v := range raw {
				l[i] = bgp.LinkID(int(v>>uint(round)) % 4)
			}
			p.Refine(l)
			if p.NumClusters() < prev || p.NumClusters() > len(raw) {
				return false
			}
			prev = p.NumClusters()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
