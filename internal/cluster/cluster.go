// Package cluster implements the paper's observation-correlation step
// (§III-B): a cluster is a set of sources that were in the same catchment
// across every announcement configuration deployed so far. Starting from
// a single cluster holding all sources, each configuration's catchments
// refine the partition; sources that end up alone can be localized
// exactly.
//
// The Partition type supports incremental refinement (one configuration
// at a time), which makes per-configuration trajectories (Fig. 4, Fig. 8)
// cost O(sources) per step.
package cluster

import (
	"fmt"

	"spooftrack/internal/bgp"
	"spooftrack/internal/stats"
)

// Partition tracks cluster membership for a fixed universe of sources,
// identified by their position 0..n-1 in the campaign's source list.
type Partition struct {
	// assign[k] is the cluster id of source k; ids are dense in
	// [0, numClusters).
	assign []int32
	num    int
}

// New returns a partition with all n sources in a single cluster.
func New(n int) *Partition {
	p := &Partition{assign: make([]int32, n)}
	if n > 0 {
		p.num = 1
	}
	return p
}

// Clone returns an independent copy of the partition.
func (p *Partition) Clone() *Partition {
	cp := &Partition{assign: append([]int32(nil), p.assign...), num: p.num}
	return cp
}

// NumSources returns the size of the universe.
func (p *Partition) NumSources() int { return len(p.assign) }

// NumClusters returns the number of clusters.
func (p *Partition) NumClusters() int { return p.num }

// ClusterOf returns the cluster id of source k.
func (p *Partition) ClusterOf(k int) int { return int(p.assign[k]) }

// Refine splits clusters by the catchment labels of one configuration:
// two sources stay together only if they have the same label. All
// unobserved sources (bgp.NoLink) share one label — a configuration
// cannot separate sources it did not observe, which is exactly why §IV-d
// imputes visibility first. Cluster ids are renumbered densely, ordered
// by first occurrence, so refinement is deterministic.
func (p *Partition) Refine(labels []bgp.LinkID) {
	if len(labels) != len(p.assign) {
		panic(fmt.Sprintf("cluster: %d labels for %d sources", len(labels), len(p.assign)))
	}
	if len(p.assign) == 0 {
		return
	}
	// Composite keys (old cluster, label) are renumbered through a flat
	// table instead of a map: labels are small non-negative link ids
	// (with NoLink mapped to slot 0), so the table has num*(width) cells.
	// This is the hot loop of greedy scheduling and the random-schedule
	// ensembles (Fig. 8).
	width := int(maxLabel(labels)) + 2
	table := make([]int32, p.num*width)
	for i := range table {
		table[i] = -1
	}
	next := int32(0)
	for k := range p.assign {
		key := int(p.assign[k])*width + labelSlot(labels[k])
		id := table[key]
		if id == -1 {
			id = next
			next++
			table[key] = id
		}
		p.assign[k] = id
	}
	p.num = int(next)
}

// maxLabel returns the largest non-negative label.
func maxLabel(labels []bgp.LinkID) bgp.LinkID {
	max := bgp.LinkID(0)
	for _, l := range labels {
		if l > max {
			max = l
		}
	}
	return max
}

// labelSlot maps a label to a table column: NoLink (and any negative
// label) shares slot 0; link l uses slot l+1.
func labelSlot(l bgp.LinkID) int {
	if l < 0 {
		return 0
	}
	return int(l) + 1
}

// RefinedCopy returns Clone().Refine(labels) without mutating p.
func (p *Partition) RefinedCopy(labels []bgp.LinkID) *Partition {
	cp := p.Clone()
	cp.Refine(labels)
	return cp
}

// Assignments returns a copy of the per-source cluster assignment —
// assign[k] is source k's dense cluster id. This is the canonical
// verdict representation the provenance ledger records and replays.
func (p *Partition) Assignments() []int32 {
	return append([]int32(nil), p.assign...)
}

// WeightedMeanSizeAfter returns the volume-weighted mean cluster size
// that refining by the labels would produce, without modifying the
// partition and without materializing the refined copy. It equals
//
//	refined := p.RefinedCopy(labels)
//	sum_k volume[k] * size(refined cluster of k) / sum_k volume[k]
//
// but runs the refinement once through the same flat (old cluster,
// label) table Refine uses, accumulating per-refined-cluster volume and
// size in a single pass — the incremental scoring path of the greedy
// volume scheduler, which previously cloned the partition per candidate
// configuration.
func (p *Partition) WeightedMeanSizeAfter(labels []bgp.LinkID, volume []float64) float64 {
	if len(labels) != len(p.assign) {
		panic(fmt.Sprintf("cluster: %d labels for %d sources", len(labels), len(p.assign)))
	}
	if len(p.assign) == 0 {
		return 0
	}
	width := int(maxLabel(labels)) + 2
	table := make([]int32, p.num*width)
	for i := range table {
		table[i] = -1
	}
	// Pass 1: assign dense refined ids (first-occurrence order, exactly
	// as Refine) and accumulate per-refined-cluster size and volume.
	sizes := make([]int32, 0, p.num)
	vols := make([]float64, 0, p.num)
	next := int32(0)
	for k := range p.assign {
		key := int(p.assign[k])*width + labelSlot(labels[k])
		id := table[key]
		if id == -1 {
			id = next
			next++
			table[key] = id
			sizes = append(sizes, 0)
			vols = append(vols, 0)
		}
		sizes[id]++
		if k < len(volume) {
			vols[id] += volume[k]
		}
	}
	// Pass 2: fold sizes into the volume-weighted mean.
	total, acc := 0.0, 0.0
	for id := int32(0); id < next; id++ {
		total += vols[id]
		acc += vols[id] * float64(sizes[id])
	}
	if total == 0 {
		return 0
	}
	return acc / total
}

// NumClustersAfter returns the number of clusters that refining by the
// labels would produce, without modifying the partition. This is the
// inner loop of greedy scheduling, so it avoids allocation beyond one
// map.
func (p *Partition) NumClustersAfter(labels []bgp.LinkID) int {
	if len(p.assign) == 0 {
		return 0
	}
	width := int(maxLabel(labels)) + 2
	seen := make([]bool, p.num*width)
	n := 0
	for k := range p.assign {
		key := int(p.assign[k])*width + labelSlot(labels[k])
		if !seen[key] {
			seen[key] = true
			n++
		}
	}
	return n
}

// Sizes returns the size of every cluster, indexed by cluster id.
func (p *Partition) Sizes() []int {
	sizes := make([]int, p.num)
	for _, c := range p.assign {
		sizes[c]++
	}
	return sizes
}

// Members returns the sources of every cluster, indexed by cluster id.
func (p *Partition) Members() [][]int {
	out := make([][]int, p.num)
	for k, c := range p.assign {
		out[c] = append(out[c], k)
	}
	return out
}

// MembersOf returns the sources of one cluster, in index order, without
// materializing the full per-cluster membership lists — what a live
// status endpoint wants when reporting only the top few clusters.
func (p *Partition) MembersOf(id int) []int {
	var out []int
	for k, c := range p.assign {
		if int(c) == id {
			out = append(out, k)
		}
	}
	return out
}

// Metrics summarizes a partition the way the paper's figures do.
type Metrics struct {
	NumClusters int
	// MeanSize is the mean cluster size (total sources / clusters) —
	// the quantity in Fig. 4, Fig. 5, Fig. 8 and the 1.40-AS headline.
	MeanSize float64
	// P90Size is the 90th percentile of cluster sizes (Fig. 4).
	P90Size float64
	// MaxSize is the largest cluster.
	MaxSize int
	// SingletonFrac is the fraction of clusters holding a single source
	// (the paper reports 92% after all 705 configurations).
	SingletonFrac float64
}

// Summarize computes partition metrics.
func (p *Partition) Summarize() Metrics {
	sizes := p.Sizes()
	if len(sizes) == 0 {
		return Metrics{}
	}
	singles, max := 0, 0
	for _, s := range sizes {
		if s == 1 {
			singles++
		}
		if s > max {
			max = s
		}
	}
	return Metrics{
		NumClusters:   len(sizes),
		MeanSize:      float64(len(p.assign)) / float64(len(sizes)),
		P90Size:       stats.PercentileInts(sizes, 90),
		MaxSize:       max,
		SingletonFrac: float64(singles) / float64(len(sizes)),
	}
}

// MeanSizeWeighted returns the mean cluster size experienced by a
// source (size-weighted mean, as in Fig. 7's per-AS averages).
func (p *Partition) MeanSizeWeighted() float64 {
	if len(p.assign) == 0 {
		return 0
	}
	sizes := p.Sizes()
	total := 0
	for _, c := range p.assign {
		total += int(sizes[c])
	}
	return float64(total) / float64(len(p.assign))
}

// SizeCCDF returns the complementary CDF of cluster sizes (Fig. 3 and
// Fig. 6).
func (p *Partition) SizeCCDF() []stats.CCDFPoint {
	return stats.CCDFInts(p.Sizes())
}

// SizeOfSource returns the size of the cluster containing source k.
func (p *Partition) SizeOfSource(k int) int {
	return p.Sizes()[p.assign[k]]
}
