package cluster

import (
	"math/rand"
	"testing"

	"spooftrack/internal/bgp"
)

// refWeightedMeanAfter is the reference implementation
// WeightedMeanSizeAfter must match: materialize the refined copy, then
// take the volume-weighted mean of each source's cluster size.
func refWeightedMeanAfter(p *Partition, labels []bgp.LinkID, volume []float64) float64 {
	refined := p.RefinedCopy(labels)
	sizes := refined.Sizes()
	total, acc := 0.0, 0.0
	for k := 0; k < refined.NumSources(); k++ {
		v := 0.0
		if k < len(volume) {
			v = volume[k]
		}
		total += v
		acc += v * float64(sizes[refined.ClusterOf(k)])
	}
	if total == 0 {
		return 0
	}
	return acc / total
}

func TestWeightedMeanSizeAfterMatchesRefinedCopy(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		p := New(n)
		// Pre-refine by a couple of random label rows so the partition
		// has structure before the scored row is applied.
		for r := 0; r < rng.Intn(3); r++ {
			pre := make([]bgp.LinkID, n)
			for k := range pre {
				pre[k] = bgp.LinkID(rng.Intn(3) - 1) // -1..1, includes NoLink
			}
			p.Refine(pre)
		}
		labels := make([]bgp.LinkID, n)
		for k := range labels {
			labels[k] = bgp.LinkID(rng.Intn(4) - 1)
		}
		volume := make([]float64, n)
		for k := range volume {
			volume[k] = float64(rng.Intn(5))
		}
		got := p.WeightedMeanSizeAfter(labels, volume)
		want := refWeightedMeanAfter(p, labels, volume)
		if got != want {
			t.Fatalf("trial %d (n=%d): WeightedMeanSizeAfter = %v, RefinedCopy reference = %v", trial, n, got, want)
		}
	}
}

func TestWeightedMeanSizeAfterShortVolume(t *testing.T) {
	// A volume slice shorter than the source count weights the missing
	// tail at zero, matching the reference.
	p := New(4)
	labels := []bgp.LinkID{0, 0, 1, 1}
	volume := []float64{1, 1}
	got := p.WeightedMeanSizeAfter(labels, volume)
	if want := refWeightedMeanAfter(p, labels, volume); got != want {
		t.Fatalf("short volume: got %v, want %v", got, want)
	}
	if got != 2 {
		t.Fatalf("short volume: got %v, want 2 (both weighted sources land in the size-2 cluster)", got)
	}
}

func TestWeightedMeanSizeAfterZeroVolume(t *testing.T) {
	p := New(3)
	if got := p.WeightedMeanSizeAfter([]bgp.LinkID{0, 1, 0}, []float64{0, 0, 0}); got != 0 {
		t.Fatalf("zero volume: got %v, want 0", got)
	}
}

func TestWeightedMeanSizeAfterPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on label/source length mismatch")
		}
	}()
	New(3).WeightedMeanSizeAfter([]bgp.LinkID{0}, nil)
}
