package topo

import (
	"spooftrack/internal/stats"
)

// weightedPool samples provider candidates proportionally to their
// weight (customer degree + 1) in O(log n) per draw using a Fenwick
// (binary indexed) tree over pool positions. It replaces the linear
// subtract-scan the generator used before — O(pool) per edge, O(n²)
// total, fatal at 80k ASes — while reproducing its draw semantics
// exactly: one rng.Intn(total) per successful pick over the weights of
// eligible members in pool order, no draw when nothing is eligible.
// Same seed, same graph.
type weightedPool struct {
	tree    []int // 1-based Fenwick array over pool positions
	weights []int // current weight per 1-based position
	asns    []ASN // 1-based position -> member ASN
	pos     map[ASN]int
	n       int // members
	total   int // sum of weights
	topBit  int // highest power of two <= capacity
}

// newWeightedPool returns an empty pool that can hold up to capacity
// members.
func newWeightedPool(capacity int) *weightedPool {
	top := 1
	for top*2 <= capacity {
		top *= 2
	}
	return &weightedPool{
		tree:    make([]int, capacity+1),
		weights: make([]int, capacity+1),
		asns:    make([]ASN, capacity+1),
		pos:     make(map[ASN]int, capacity),
		topBit:  top,
	}
}

// add appends a member at the next pool position. Pool order is
// selection order: the pick semantics scan positions ascending.
func (w *weightedPool) add(asn ASN, weight int) {
	w.n++
	p := w.n
	w.asns[p] = asn
	w.pos[asn] = p
	w.setWeight(p, weight)
}

// bump adds one to a member's weight (a new customer attached). ASNs
// not in the pool are ignored.
func (w *weightedPool) bump(asn ASN) {
	if p, ok := w.pos[asn]; ok {
		w.setWeight(p, w.weights[p]+1)
	}
}

// weightOf returns the member's current weight (0 if absent).
func (w *weightedPool) weightOf(asn ASN) int {
	if p, ok := w.pos[asn]; ok {
		return w.weights[p]
	}
	return 0
}

// setWeight assigns the weight at position p, updating the tree and the
// running total.
func (w *weightedPool) setWeight(p, weight int) {
	delta := weight - w.weights[p]
	if delta == 0 {
		return
	}
	w.weights[p] = weight
	w.total += delta
	for i := p; i < len(w.tree); i += i & (-i) {
		w.tree[i] += delta
	}
}

// find returns the 1-based position of the first member whose cumulative
// weight exceeds target (the Fenwick equivalent of the linear
// subtract-until-negative scan). target must be in [0, total).
func (w *weightedPool) find(target int) int {
	p := 0
	rem := target
	for bit := w.topBit; bit > 0; bit >>= 1 {
		next := p + bit
		if next < len(w.tree) && w.tree[next] <= rem {
			p = next
			rem -= w.tree[next]
		}
	}
	return p + 1
}

// pick draws a member with probability proportional to its weight,
// excluding self and existing neighbors of self. It returns 0 without
// consuming randomness when no eligible member exists — exactly the
// contract of the linear pickWeighted it replaces. Exclusions are
// handled by temporarily zeroing their weights (a provider pick has at
// most a handful: the providers self already bought from).
func (w *weightedPool) pick(rng *stats.RNG, self ASN, b *Builder) ASN {
	type saved struct{ pos, weight int }
	var excl []saved
	zero := func(asn ASN) {
		if p, ok := w.pos[asn]; ok && w.weights[p] != 0 {
			excl = append(excl, saved{p, w.weights[p]})
			w.setWeight(p, 0)
		}
	}
	zero(self)
	for _, e := range b.links[self] {
		zero(e.to)
	}
	asn := ASN(0)
	if w.total > 0 {
		asn = w.asns[w.find(rng.Intn(w.total))]
	}
	for _, s := range excl {
		w.setWeight(s.pos, s.weight)
	}
	return asn
}
