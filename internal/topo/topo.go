// Package topo models the AS-level topology of the Internet: autonomous
// systems connected by provider-customer (transit) and peer-peer links,
// following the standard CAIDA AS-relationship model.
//
// The package provides a synthetic Internet generator (gen.go) that builds
// a realistic hierarchy — a tier-1 clique, a transit middle layer with
// preferential attachment and IXP-style peering meshes, and multihomed
// stub networks — plus serialization in the CAIDA AS-relationship format
// (serdes.go) and the graph queries the experiments need: customer cones
// and AS-hop distances (query.go).
//
// Graphs are immutable after Freeze; the BGP engine (package bgp) indexes
// ASes by their dense integer index for speed.
package topo

import (
	"fmt"
	"sort"
)

// ASN is an autonomous system number.
type ASN uint32

// Rel describes the relationship of a neighbor to a given AS, from the
// given AS's point of view.
type Rel int8

const (
	// RelCustomer means the neighbor is a customer of this AS
	// (this AS provides transit to the neighbor).
	RelCustomer Rel = iota
	// RelPeer means the neighbor is a settlement-free peer.
	RelPeer
	// RelProvider means the neighbor is a provider of this AS.
	RelProvider
)

// String returns a short human-readable name for the relationship.
func (r Rel) String() string {
	switch r {
	case RelCustomer:
		return "customer"
	case RelPeer:
		return "peer"
	case RelProvider:
		return "provider"
	default:
		return fmt.Sprintf("Rel(%d)", int8(r))
	}
}

// Invert returns the relationship as seen from the other endpoint.
func (r Rel) Invert() Rel {
	switch r {
	case RelCustomer:
		return RelProvider
	case RelProvider:
		return RelCustomer
	default:
		return r
	}
}

// Neighbor is one adjacency of an AS: the dense index of the neighbor AS
// and its relationship to the owning AS.
type Neighbor struct {
	Idx int
	Rel Rel
}

// Graph is an AS-level topology. Build one with NewBuilder (or the
// generator in gen.go), then Freeze it. A frozen Graph is safe for
// concurrent reads.
type Graph struct {
	asns  []ASN       // dense index -> ASN, sorted ascending
	index map[ASN]int // ASN -> dense index
	adj   [][]Neighbor
	tier1 []bool // marked tier-1 ASes (no providers, clique members)
}

// NumASes returns the number of ASes in the graph.
func (g *Graph) NumASes() int { return len(g.asns) }

// ASN returns the AS number at dense index i.
func (g *Graph) ASN(i int) ASN { return g.asns[i] }

// Index returns the dense index of the given ASN.
func (g *Graph) Index(asn ASN) (int, bool) {
	i, ok := g.index[asn]
	return i, ok
}

// MustIndex is Index but panics if the ASN is not in the graph. Use it for
// ASNs that are known to exist by construction.
func (g *Graph) MustIndex(asn ASN) int {
	i, ok := g.index[asn]
	if !ok {
		panic(fmt.Sprintf("topo: AS%d not in graph", asn))
	}
	return i
}

// Neighbors returns the adjacency list of the AS at index i. The returned
// slice is owned by the graph and must not be modified.
func (g *Graph) Neighbors(i int) []Neighbor { return g.adj[i] }

// Degree returns the total number of neighbors of the AS at index i.
func (g *Graph) Degree(i int) int { return len(g.adj[i]) }

// IsTier1 reports whether the AS at index i was marked tier-1.
func (g *Graph) IsTier1(i int) bool { return g.tier1[i] }

// Tier1s returns the dense indices of all tier-1 ASes.
func (g *Graph) Tier1s() []int {
	var out []int
	for i, t := range g.tier1 {
		if t {
			out = append(out, i)
		}
	}
	return out
}

// Rel returns the relationship of the AS at index j to the AS at index i,
// i.e., how i sees j. The second return is false if i and j are not
// adjacent. Adjacency lists are sorted by neighbor index (Freeze), so
// the lookup is a binary search — Rel sits on the BGP engine's export
// path and high-degree transit ASes made the former linear scan costly.
func (g *Graph) Rel(i, j int) (Rel, bool) {
	adj := g.adj[i]
	lo, hi := 0, len(adj)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if adj[mid].Idx < j {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(adj) && adj[lo].Idx == j {
		return adj[lo].Rel, true
	}
	return 0, false
}

// NumLinks returns the number of undirected links in the graph.
func (g *Graph) NumLinks() int {
	total := 0
	for _, ns := range g.adj {
		total += len(ns)
	}
	return total / 2
}

// Builder accumulates ASes and links and produces an immutable Graph.
type Builder struct {
	links map[ASN][]builderEdge
	tier1 map[ASN]bool
	// edges holds every link as an order-independent key so HasLink is
	// O(1) instead of an adjacency-list scan — the generator's IXP phase
	// and provider sampling probe high-degree ASes constantly.
	edges map[edgeKey]bool
}

// edgeKey canonically identifies an undirected link.
type edgeKey struct{ lo, hi ASN }

func newEdgeKey(a, c ASN) edgeKey {
	if a > c {
		a, c = c, a
	}
	return edgeKey{a, c}
}

type builderEdge struct {
	to  ASN
	rel Rel
}

// NewBuilder returns an empty topology builder.
func NewBuilder() *Builder {
	return &Builder{
		links: make(map[ASN][]builderEdge),
		tier1: make(map[ASN]bool),
		edges: make(map[edgeKey]bool),
	}
}

// AddAS ensures an AS exists even if it has no links yet.
func (b *Builder) AddAS(asn ASN) {
	if _, ok := b.links[asn]; !ok {
		b.links[asn] = nil
	}
}

// MarkTier1 flags an AS as tier-1 (added if absent).
func (b *Builder) MarkTier1(asn ASN) {
	b.AddAS(asn)
	b.tier1[asn] = true
}

// AddP2C adds a provider-to-customer link. It returns an error if the link
// already exists (with any relationship) or if provider == customer.
func (b *Builder) AddP2C(provider, customer ASN) error {
	return b.add(provider, customer, RelCustomer)
}

// AddP2P adds a peer-to-peer link. It returns an error if the link already
// exists or if a == b.
func (b *Builder) AddP2P(a, c ASN) error {
	return b.add(a, c, RelPeer)
}

func (b *Builder) add(from, to ASN, relOfTo Rel) error {
	if from == to {
		return fmt.Errorf("topo: self-link on AS%d", from)
	}
	if b.HasLink(from, to) {
		return fmt.Errorf("topo: duplicate link AS%d-AS%d", from, to)
	}
	b.AddAS(from)
	b.AddAS(to)
	b.links[from] = append(b.links[from], builderEdge{to: to, rel: relOfTo})
	b.links[to] = append(b.links[to], builderEdge{to: from, rel: relOfTo.Invert()})
	b.edges[newEdgeKey(from, to)] = true
	return nil
}

// HasLink reports whether a link between the two ASes exists.
func (b *Builder) HasLink(a, c ASN) bool {
	return b.edges[newEdgeKey(a, c)]
}

// NumASes returns the number of ASes added so far.
func (b *Builder) NumASes() int { return len(b.links) }

// Freeze produces the immutable Graph. Adjacency lists are sorted by
// neighbor index for deterministic iteration.
func (b *Builder) Freeze() *Graph {
	asns := make([]ASN, 0, len(b.links))
	for asn := range b.links {
		asns = append(asns, asn)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	index := make(map[ASN]int, len(asns))
	for i, asn := range asns {
		index[asn] = i
	}
	g := &Graph{
		asns:  asns,
		index: index,
		adj:   make([][]Neighbor, len(asns)),
		tier1: make([]bool, len(asns)),
	}
	for asn, edges := range b.links {
		i := index[asn]
		ns := make([]Neighbor, len(edges))
		for k, e := range edges {
			ns[k] = Neighbor{Idx: index[e.to], Rel: e.rel}
		}
		sort.Slice(ns, func(a, c int) bool { return ns[a].Idx < ns[c].Idx })
		g.adj[i] = ns
	}
	for asn := range b.tier1 {
		g.tier1[index[asn]] = true
	}
	return g
}
