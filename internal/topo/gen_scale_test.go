package topo

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"sort"
	"testing"
)

// graphChecksum digests a graph's full structure — every edge with its
// relationship plus the tier-1 set — into a single FNV-1a value. Used to
// pin the generator's output across refactors of its internals.
func graphChecksum(g *Graph) uint64 {
	h := fnv.New64a()
	type edge struct {
		a, b ASN
		rel  int8
	}
	var edges []edge
	for i := 0; i < g.NumASes(); i++ {
		for _, n := range g.Neighbors(i) {
			if g.ASN(i) < g.ASN(n.Idx) {
				edges = append(edges, edge{g.ASN(i), g.ASN(n.Idx), int8(n.Rel)})
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].a != edges[j].a {
			return edges[i].a < edges[j].a
		}
		return edges[i].b < edges[j].b
	})
	for _, e := range edges {
		fmt.Fprintf(h, "%d|%d|%d;", e.a, e.b, e.rel)
	}
	for _, t1 := range g.Tier1s() {
		fmt.Fprintf(h, "t%d;", g.ASN(t1))
	}
	return h.Sum64()
}

// TestGenerateGoldenChecksums pins the generator's exact output for three
// seed/size combinations. The Fenwick-tree provider sampling (weighted.go)
// was written to reproduce the draw sequence of the original linear scan
// bit for bit; these checksums were recorded from the pre-Fenwick
// generator and must never change without an explicit decision to break
// topology reproducibility (which invalidates every recorded experiment).
func TestGenerateGoldenChecksums(t *testing.T) {
	cases := []struct {
		seed  uint64
		n     int
		want  uint64
		links int
	}{
		{seed: 1, n: 500, want: 0x49027a0225da239f, links: 3979},
		{seed: 42, n: 2000, want: 0xfbbf5492e60624ca, links: 8289},
		{seed: 7, n: 4000, want: 0x2985d610e845b3f0, links: 12599},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("seed%d_n%d", tc.seed, tc.n), func(t *testing.T) {
			p := DefaultGenParams(tc.seed)
			p.NumASes = tc.n
			g, err := Generate(p)
			if err != nil {
				t.Fatal(err)
			}
			if got := graphChecksum(g); got != tc.want {
				t.Errorf("checksum = %#x, want %#x (generator output drifted)", got, tc.want)
			}
			if got := g.NumLinks(); got != tc.links {
				t.Errorf("NumLinks = %d, want %d", got, tc.links)
			}
		})
	}
}

// checkInternetGraph asserts the structural invariants the BGP engine and
// the paper's techniques rely on, at any scale.
func checkInternetGraph(t *testing.T, g *Graph, p GenParams) {
	t.Helper()
	if g.NumASes() != p.NumASes {
		t.Fatalf("NumASes = %d, want %d", g.NumASes(), p.NumASes)
	}
	t1s := g.Tier1s()
	if len(t1s) != p.NumTier1 {
		t.Fatalf("tier-1 count = %d, want %d", len(t1s), p.NumTier1)
	}
	// Tier-1s form a clique and have no providers.
	for _, i := range t1s {
		peers := 0
		for _, n := range g.Neighbors(i) {
			if n.Rel == RelProvider {
				t.Fatalf("tier-1 AS%d has a provider", g.ASN(i))
			}
			if n.Rel == RelPeer && g.IsTier1(n.Idx) {
				peers++
			}
		}
		if peers != p.NumTier1-1 {
			t.Fatalf("tier-1 AS%d peers with %d tier-1s, want %d", g.ASN(i), peers, p.NumTier1-1)
		}
	}
	// Every non-tier-1 AS has at least one provider (connectivity to the
	// clique follows inductively from creation order).
	for i := 0; i < g.NumASes(); i++ {
		if g.IsTier1(i) {
			continue
		}
		hasProv := false
		for _, n := range g.Neighbors(i) {
			if n.Rel == RelProvider {
				hasProv = true
				break
			}
		}
		if !hasProv {
			t.Fatalf("AS%d has no provider", g.ASN(i))
		}
	}
	// Heavy tail: some provider should have accumulated a large customer
	// cone edge count via preferential attachment.
	maxCust := 0
	for i := 0; i < g.NumASes(); i++ {
		cust := 0
		for _, n := range g.Neighbors(i) {
			if n.Rel == RelCustomer {
				cust++
			}
		}
		if cust > maxCust {
			maxCust = cust
		}
	}
	if maxCust < 100 {
		t.Errorf("max customer degree = %d, want >= 100 at internet scale", maxCust)
	}
}

// TestInternetGenParams10k exercises the 10k-AS internet tier end to end:
// structural invariants plus a full CAIDA serdes round trip asserting the
// parsed graph is identical to the generated one (satellite: serdes
// round-trip at 10k+ ASes).
func TestInternetGenParams10k(t *testing.T) {
	p := InternetGenParams(3, 10000)
	g, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	checkInternetGraph(t, g, p)

	var buf bytes.Buffer
	if err := WriteCAIDA(&buf, g); err != nil {
		t.Fatal(err)
	}
	first := buf.String()
	g2, err := ReadCAIDA(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// Field-wise graph equality: same AS set, same adjacency with same
	// relationships, same tier-1 marking. The checksum covers all of it.
	if g2.NumASes() != g.NumASes() {
		t.Fatalf("round trip NumASes = %d, want %d", g2.NumASes(), g.NumASes())
	}
	if g2.NumLinks() != g.NumLinks() {
		t.Fatalf("round trip NumLinks = %d, want %d", g2.NumLinks(), g.NumLinks())
	}
	if got, want := graphChecksum(g2), graphChecksum(g); got != want {
		t.Fatalf("round trip checksum = %#x, want %#x", got, want)
	}
	// Re-serialization is byte-stable.
	var buf2 bytes.Buffer
	if err := WriteCAIDA(&buf2, g2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != first {
		t.Fatal("re-serialized CAIDA output differs from original")
	}
}

// TestInternetGenParams80k proves the 80k-AS tier generates correctly.
// With the Fenwick-tree sampler this takes well under a second; the old
// linear scan would have needed minutes (O(n^2) provider picks).
func TestInternetGenParams80k(t *testing.T) {
	if testing.Short() {
		t.Skip("80k generation skipped in -short")
	}
	p := InternetGenParams(11, 80000)
	g, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	checkInternetGraph(t, g, p)
	if g.NumLinks() < 2*p.NumASes {
		t.Errorf("NumLinks = %d, implausibly sparse for %d ASes", g.NumLinks(), p.NumASes)
	}
}

// TestInternetGenParamsDeterministic: same seed, same graph, at the 10k
// tier (the 4k default is covered by TestGenerateDeterministic).
func TestInternetGenParamsDeterministic(t *testing.T) {
	a, err := Generate(InternetGenParams(9, 10000))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(InternetGenParams(9, 10000))
	if err != nil {
		t.Fatal(err)
	}
	if graphChecksum(a) != graphChecksum(b) {
		t.Fatal("same seed produced different graphs")
	}
}

func benchGenerate(b *testing.B, p GenParams) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, err := Generate(p)
		if err != nil {
			b.Fatal(err)
		}
		if g.NumASes() != p.NumASes {
			b.Fatal("wrong size")
		}
	}
}

func BenchmarkGenerate4k(b *testing.B)  { benchGenerate(b, DefaultGenParams(1)) }
func BenchmarkGenerate10k(b *testing.B) { benchGenerate(b, InternetGenParams(1, 10000)) }
func BenchmarkGenerate80k(b *testing.B) { benchGenerate(b, InternetGenParams(1, 80000)) }
