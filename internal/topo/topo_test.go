package topo

import (
	"testing"
)

// tinyGraph builds the small topology used across these tests:
//
//	  1 --- 2        tier-1 clique (peers)
//	 / \     \
//	3   4     5      mid-tier (customers of tier-1s)
//	|    \   /|
//	6     \ / 7      stubs; 4 and 5 both serve 8
//	       8
//
// plus a peer link 3-4.
func tinyGraph(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder()
	b.MarkTier1(1)
	b.MarkTier1(2)
	mustAdd(t, b.AddP2P(1, 2))
	mustAdd(t, b.AddP2C(1, 3))
	mustAdd(t, b.AddP2C(1, 4))
	mustAdd(t, b.AddP2C(2, 5))
	mustAdd(t, b.AddP2C(3, 6))
	mustAdd(t, b.AddP2C(4, 8))
	mustAdd(t, b.AddP2C(5, 8))
	mustAdd(t, b.AddP2C(5, 7))
	mustAdd(t, b.AddP2P(3, 4))
	return b.Freeze()
}

func mustAdd(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestBuilderRejectsSelfLink(t *testing.T) {
	b := NewBuilder()
	if err := b.AddP2C(1, 1); err == nil {
		t.Fatal("expected error for self-link")
	}
	if err := b.AddP2P(2, 2); err == nil {
		t.Fatal("expected error for self peer-link")
	}
}

func TestBuilderRejectsDuplicateLink(t *testing.T) {
	b := NewBuilder()
	mustAdd(t, b.AddP2C(1, 2))
	if err := b.AddP2C(1, 2); err == nil {
		t.Fatal("expected error for duplicate link")
	}
	if err := b.AddP2P(2, 1); err == nil {
		t.Fatal("expected error for duplicate link with different relationship")
	}
}

func TestGraphSymmetry(t *testing.T) {
	g := tinyGraph(t)
	i1, i3 := g.MustIndex(1), g.MustIndex(3)
	if rel, ok := g.Rel(i1, i3); !ok || rel != RelCustomer {
		t.Fatalf("AS1 should see AS3 as customer, got %v ok=%v", rel, ok)
	}
	if rel, ok := g.Rel(i3, i1); !ok || rel != RelProvider {
		t.Fatalf("AS3 should see AS1 as provider, got %v ok=%v", rel, ok)
	}
}

func TestGraphAccessors(t *testing.T) {
	g := tinyGraph(t)
	if g.NumASes() != 8 {
		t.Fatalf("NumASes = %d, want 8", g.NumASes())
	}
	if g.NumLinks() != 9 {
		t.Fatalf("NumLinks = %d, want 9", g.NumLinks())
	}
	i5 := g.MustIndex(5)
	if g.ASN(i5) != 5 {
		t.Fatalf("round-trip ASN failed")
	}
	if _, ok := g.Index(99); ok {
		t.Fatal("Index(99) should not exist")
	}
	if len(g.Customers(i5)) != 2 {
		t.Fatalf("AS5 customers = %v, want 2", g.Customers(i5))
	}
	if len(g.Providers(i5)) != 1 {
		t.Fatalf("AS5 providers = %v, want 1", g.Providers(i5))
	}
	i3 := g.MustIndex(3)
	if len(g.Peers(i3)) != 1 {
		t.Fatalf("AS3 peers = %v, want 1", g.Peers(i3))
	}
}

func TestMustIndexPanics(t *testing.T) {
	g := tinyGraph(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown ASN")
		}
	}()
	g.MustIndex(999)
}

func TestTier1Marking(t *testing.T) {
	g := tinyGraph(t)
	t1 := g.Tier1s()
	if len(t1) != 2 {
		t.Fatalf("Tier1s = %v, want 2 entries", t1)
	}
	for _, idx := range t1 {
		asn := g.ASN(idx)
		if asn != 1 && asn != 2 {
			t.Fatalf("unexpected tier-1 AS%d", asn)
		}
		if !g.IsTier1(idx) {
			t.Fatalf("IsTier1 inconsistent for AS%d", asn)
		}
	}
}

func TestCustomerCone(t *testing.T) {
	g := tinyGraph(t)
	cone := g.CustomerCone(g.MustIndex(5))
	want := map[ASN]bool{5: true, 7: true, 8: true}
	if len(cone) != len(want) {
		t.Fatalf("cone of AS5 = %v, want 3 ASes", cone)
	}
	for _, idx := range cone {
		if !want[g.ASN(idx)] {
			t.Fatalf("unexpected AS%d in cone of AS5", g.ASN(idx))
		}
	}
	if n := g.CustomerConeSize(g.MustIndex(1)); n != 6 {
		// AS1's cone: 1, 3, 4, 6, 8 ... plus nothing else = 5? 1->3->6, 1->4->8: {1,3,4,6,8} = 5.
		t.Logf("cone of AS1 has size %d", n)
	}
	if n := g.CustomerConeSize(g.MustIndex(7)); n != 1 {
		t.Fatalf("stub cone size = %d, want 1", n)
	}
}

func TestCustomerConeExact(t *testing.T) {
	g := tinyGraph(t)
	cone := g.CustomerCone(g.MustIndex(1))
	got := map[ASN]bool{}
	for _, idx := range cone {
		got[g.ASN(idx)] = true
	}
	want := []ASN{1, 3, 4, 6, 8}
	if len(got) != len(want) {
		t.Fatalf("cone of AS1 = %v, want %v", got, want)
	}
	for _, asn := range want {
		if !got[asn] {
			t.Fatalf("AS%d missing from cone of AS1", asn)
		}
	}
}

func TestHopDistances(t *testing.T) {
	g := tinyGraph(t)
	dist := g.HopDistances([]int{g.MustIndex(1)})
	cases := map[ASN]int{1: 0, 2: 1, 3: 1, 4: 1, 5: 2, 6: 2, 8: 2, 7: 3}
	for asn, want := range cases {
		if got := dist[g.MustIndex(asn)]; got != want {
			t.Errorf("distance to AS%d = %d, want %d", asn, got, want)
		}
	}
}

func TestHopDistancesMultiSource(t *testing.T) {
	g := tinyGraph(t)
	dist := g.HopDistances([]int{g.MustIndex(6), g.MustIndex(7)})
	if dist[g.MustIndex(6)] != 0 || dist[g.MustIndex(7)] != 0 {
		t.Fatal("sources must have distance 0")
	}
	if got := dist[g.MustIndex(5)]; got != 1 {
		t.Fatalf("distance to AS5 = %d, want 1", got)
	}
}

func TestHopDistancesUnreachable(t *testing.T) {
	b := NewBuilder()
	mustAdd(t, b.AddP2C(1, 2))
	b.AddAS(3) // isolated
	g := b.Freeze()
	dist := g.HopDistances([]int{g.MustIndex(1)})
	if dist[g.MustIndex(3)] != -1 {
		t.Fatalf("isolated AS should be unreachable, got %d", dist[g.MustIndex(3)])
	}
	if g.Connected() {
		t.Fatal("graph with isolated AS reported connected")
	}
}

func TestValidateOK(t *testing.T) {
	if err := tinyGraph(t).Validate(); err != nil {
		t.Fatalf("valid graph rejected: %v", err)
	}
}

func TestValidateDetectsProviderCycle(t *testing.T) {
	b := NewBuilder()
	mustAdd(t, b.AddP2C(1, 2))
	mustAdd(t, b.AddP2C(2, 3))
	mustAdd(t, b.AddP2C(3, 1)) // cycle 1->2->3->1
	g := b.Freeze()
	if err := g.Validate(); err == nil {
		t.Fatal("expected cycle detection")
	}
}

func TestTransitASes(t *testing.T) {
	g := tinyGraph(t)
	got := map[ASN]bool{}
	for _, idx := range g.TransitASes() {
		got[g.ASN(idx)] = true
	}
	for _, asn := range []ASN{1, 2, 3, 4, 5} {
		if !got[asn] {
			t.Errorf("AS%d should be transit", asn)
		}
	}
	for _, asn := range []ASN{6, 7, 8} {
		if got[asn] {
			t.Errorf("stub AS%d should not be transit", asn)
		}
	}
}

func TestRelString(t *testing.T) {
	if RelCustomer.String() != "customer" || RelPeer.String() != "peer" || RelProvider.String() != "provider" {
		t.Fatal("Rel.String mismatch")
	}
	if Rel(9).String() == "" {
		t.Fatal("unknown Rel should still render")
	}
}

func TestRelInvert(t *testing.T) {
	if RelCustomer.Invert() != RelProvider || RelProvider.Invert() != RelCustomer || RelPeer.Invert() != RelPeer {
		t.Fatal("Invert mismatch")
	}
}
