package topo

import (
	"fmt"

	"spooftrack/internal/stats"
)

// GenParams configures the synthetic Internet generator. The defaults
// (DefaultGenParams) produce a topology with the structural features the
// paper's techniques depend on: a tier-1 clique at the top, a transit
// hierarchy with preferential attachment (heavy-tailed customer degrees),
// IXP-style peering meshes in the middle, and multihomed stubs at the edge.
type GenParams struct {
	// Seed drives all randomness in the generator.
	Seed uint64
	// NumASes is the total number of ASes to generate.
	NumASes int
	// NumTier1 is the number of tier-1 ASes (full peering clique, no
	// providers).
	NumTier1 int
	// TransitFrac is the fraction of non-tier-1 ASes that are mid-tier
	// transit providers; the rest are stubs.
	TransitFrac float64
	// MeanTransitProviders is the mean number of providers a mid-tier
	// transit AS buys from (at least 1).
	MeanTransitProviders float64
	// StubMultihomeProb is the probability that a stub connects to a
	// second provider.
	StubMultihomeProb float64
	// StubTier1Prob is the probability that a stub buys directly from a
	// tier-1 instead of a mid-tier provider.
	StubTier1Prob float64
	// NumIXPs is the number of IXP-style peering meshes to create among
	// mid-tier ASes.
	NumIXPs int
	// IXPSize is the number of mid-tier ASes participating in each IXP.
	IXPSize int
	// IXPPeerProb is the probability that two co-located IXP members
	// establish a peering link.
	IXPPeerProb float64
}

// DefaultGenParams returns generator parameters sized to roughly match the
// coverage of the paper's measurement dataset (1885 observed ASes out of
// the routed Internet): ~4000 ASes with ~900 transit networks. The
// multihoming and peering densities are chosen at the high end of
// measured Internet values so that the route diversity available to the
// paper's techniques at the granularity of *observed* ASes (which are
// disproportionately well-connected) is preserved at this reduced scale.
func DefaultGenParams(seed uint64) GenParams {
	return GenParams{
		Seed:                 seed,
		NumASes:              4000,
		NumTier1:             12,
		TransitFrac:          0.22,
		MeanTransitProviders: 2.8,
		StubMultihomeProb:    0.75,
		StubTier1Prob:        0.03,
		NumIXPs:              35,
		IXPSize:              25,
		IXPPeerProb:          0.40,
	}
}

// InternetGenParams returns generator parameters for internet-scale
// topologies (intended tiers: 10k and 80k ASes; any numASes >= 1000
// works). Compared to the paper-scale defaults the mix shifts toward
// measured full-Internet structure: a slightly larger tier-1 clique,
// a smaller transit fraction (CAIDA's AS relationship snapshots show
// ~15% of ASes providing transit), fewer providers per transit AS, and
// IXP meshes that scale with the transit population so peering density
// per AS stays roughly flat rather than collapsing. At 80k ASes this is
// the regime a real deployment routes against; generation stays
// CI-fast because provider sampling is O(log n) per edge.
func InternetGenParams(seed uint64, numASes int) GenParams {
	p := GenParams{
		Seed:                 seed,
		NumASes:              numASes,
		NumTier1:             16,
		TransitFrac:          0.15,
		MeanTransitProviders: 2.4,
		StubMultihomeProb:    0.55,
		StubTier1Prob:        0.02,
		IXPSize:              40,
		IXPPeerProb:          0.30,
	}
	// One IXP mesh per ~350 ASes keeps per-transit peering density in
	// the measured range as the topology grows (~30 meshes at 10k, ~230
	// at 80k).
	p.NumIXPs = numASes / 350
	if p.NumIXPs < 8 {
		p.NumIXPs = 8
	}
	return p
}

// Generate builds a synthetic AS-level Internet according to the
// parameters. The same parameters always produce the same graph.
func Generate(p GenParams) (*Graph, error) {
	if p.NumASes < p.NumTier1+2 {
		return nil, fmt.Errorf("topo: NumASes=%d too small for NumTier1=%d", p.NumASes, p.NumTier1)
	}
	if p.NumTier1 < 2 {
		return nil, fmt.Errorf("topo: need at least 2 tier-1 ASes, got %d", p.NumTier1)
	}
	if p.TransitFrac <= 0 || p.TransitFrac >= 1 {
		return nil, fmt.Errorf("topo: TransitFrac=%v out of (0,1)", p.TransitFrac)
	}
	rng := stats.NewRNG(p.Seed)
	b := NewBuilder()

	// ASNs are assigned sequentially from 1. Indices into the weight
	// arrays below are ASN-1.
	numTransit := int(float64(p.NumASes-p.NumTier1) * p.TransitFrac)
	numStub := p.NumASes - p.NumTier1 - numTransit

	// Tier-1 clique.
	tier1 := make([]ASN, p.NumTier1)
	for i := range tier1 {
		tier1[i] = ASN(i + 1)
		b.MarkTier1(tier1[i])
	}
	for i := 0; i < len(tier1); i++ {
		for j := i + 1; j < len(tier1); j++ {
			if err := b.AddP2P(tier1[i], tier1[j]); err != nil {
				return nil, err
			}
		}
	}

	// Preferential attachment samples providers proportionally to
	// custDegree+1 so early providers grow heavy tails. Each pool keeps
	// those weights in a Fenwick tree (weighted.go): picks cost O(log n)
	// instead of a full pool scan, which is what makes 80k-AS generation
	// finish in seconds, and the draw sequence matches the old linear
	// scan exactly (TestGenerateGoldenChecksums pins this).

	// Mid-tier transit ASes buy from tier-1s and previously created
	// mid-tier ASes.
	transit := make([]ASN, numTransit)
	providerPool := newWeightedPool(p.NumTier1 + numTransit)
	for _, t1 := range tier1 {
		providerPool.add(t1, 1)
	}
	for i := range transit {
		asn := ASN(p.NumTier1 + i + 1)
		transit[i] = asn
		// 1 + geometric-ish number of providers around the mean.
		nProv := 1
		for float64(nProv) < p.MeanTransitProviders-0.5+rng.Float64() && nProv < 4 {
			nProv++
		}
		for k := 0; k < nProv; k++ {
			prov := providerPool.pick(rng, asn, b)
			if prov == 0 {
				break
			}
			if err := b.AddP2C(prov, asn); err != nil {
				return nil, err
			}
			providerPool.bump(prov)
		}
		providerPool.add(asn, 1)
	}

	// Stubs buy from mid-tier ASes (occasionally tier-1s). Two pools in
	// the same order the old scan visited (transit in creation order,
	// tier-1s ascending), carrying the customer degrees accumulated so
	// far; stub attachments keep feeding back into the weights.
	transitPool := newWeightedPool(max(numTransit, 1))
	for _, asn := range transit {
		transitPool.add(asn, providerPool.weightOf(asn))
	}
	tier1Pool := newWeightedPool(p.NumTier1)
	for _, asn := range tier1 {
		tier1Pool.add(asn, providerPool.weightOf(asn))
	}
	for i := 0; i < numStub; i++ {
		asn := ASN(p.NumTier1 + numTransit + i + 1)
		nProv := 1
		if rng.Bool(p.StubMultihomeProb) {
			nProv = 2
		}
		for k := 0; k < nProv; k++ {
			pool := transitPool
			if rng.Bool(p.StubTier1Prob) || len(transit) == 0 {
				pool = tier1Pool
			}
			prov := pool.pick(rng, asn, b)
			if prov == 0 {
				break
			}
			if err := b.AddP2C(prov, asn); err != nil {
				return nil, err
			}
			pool.bump(prov)
		}
	}

	// IXP peering meshes among mid-tier ASes.
	for x := 0; x < p.NumIXPs && len(transit) > 1; x++ {
		size := p.IXPSize
		if size > len(transit) {
			size = len(transit)
		}
		members := sampleASNs(rng, transit, size)
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				if rng.Bool(p.IXPPeerProb) && !b.HasLink(members[i], members[j]) {
					if err := b.AddP2P(members[i], members[j]); err != nil {
						return nil, err
					}
				}
			}
		}
	}

	return b.Freeze(), nil
}

// sampleASNs returns k distinct elements of pool (partial Fisher-Yates).
func sampleASNs(rng *stats.RNG, pool []ASN, k int) []ASN {
	cp := append([]ASN(nil), pool...)
	if k > len(cp) {
		k = len(cp)
	}
	for i := 0; i < k; i++ {
		j := i + rng.Intn(len(cp)-i)
		cp[i], cp[j] = cp[j], cp[i]
	}
	return cp[:k]
}
