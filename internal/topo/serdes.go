package topo

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// The CAIDA AS-relationship serialization format:
//
//	# comment lines start with '#'
//	# tier1: 1 2 3          (extension: explicit tier-1 marking)
//	<provider>|<customer>|-1
//	<peer>|<peer>|0
//
// WriteCAIDA emits links sorted for deterministic output; ReadCAIDA accepts
// any order. If no "# tier1:" header is present, tier-1 status is inferred
// as "has no providers and at least one peer".

// WriteCAIDA serializes the graph in CAIDA AS-relationship format.
func WriteCAIDA(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	t1 := g.Tier1s()
	if len(t1) > 0 {
		names := make([]string, len(t1))
		for i, idx := range t1 {
			names[i] = strconv.FormatUint(uint64(g.ASN(idx)), 10)
		}
		if _, err := fmt.Fprintf(bw, "# tier1: %s\n", strings.Join(names, " ")); err != nil {
			return err
		}
	}
	type line struct {
		a, b ASN
		rel  int
	}
	var lines []line
	for i := 0; i < g.NumASes(); i++ {
		for _, n := range g.Neighbors(i) {
			switch n.Rel {
			case RelCustomer:
				lines = append(lines, line{g.ASN(i), g.ASN(n.Idx), -1})
			case RelPeer:
				if g.ASN(i) < g.ASN(n.Idx) { // emit each peer link once
					lines = append(lines, line{g.ASN(i), g.ASN(n.Idx), 0})
				}
			}
		}
	}
	sort.Slice(lines, func(i, j int) bool {
		if lines[i].a != lines[j].a {
			return lines[i].a < lines[j].a
		}
		return lines[i].b < lines[j].b
	})
	for _, l := range lines {
		if _, err := fmt.Fprintf(bw, "%d|%d|%d\n", l.a, l.b, l.rel); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCAIDA parses a graph from CAIDA AS-relationship format.
func ReadCAIDA(r io.Reader) (*Graph, error) {
	b := NewBuilder()
	var explicitTier1 []ASN
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			if rest, ok := strings.CutPrefix(text, "# tier1:"); ok {
				for _, f := range strings.Fields(rest) {
					v, err := strconv.ParseUint(f, 10, 32)
					if err != nil {
						return nil, fmt.Errorf("topo: line %d: bad tier-1 ASN %q: %v", lineNo, f, err)
					}
					explicitTier1 = append(explicitTier1, ASN(v))
				}
			}
			continue
		}
		parts := strings.Split(text, "|")
		if len(parts) < 3 {
			return nil, fmt.Errorf("topo: line %d: malformed link %q", lineNo, text)
		}
		a, err := strconv.ParseUint(parts[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("topo: line %d: bad ASN %q: %v", lineNo, parts[0], err)
		}
		c, err := strconv.ParseUint(parts[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("topo: line %d: bad ASN %q: %v", lineNo, parts[1], err)
		}
		switch strings.TrimSpace(parts[2]) {
		case "-1":
			err = b.AddP2C(ASN(a), ASN(c))
		case "0":
			err = b.AddP2P(ASN(a), ASN(c))
		default:
			return nil, fmt.Errorf("topo: line %d: unknown relationship %q", lineNo, parts[2])
		}
		if err != nil {
			return nil, fmt.Errorf("topo: line %d: %v", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, asn := range explicitTier1 {
		b.MarkTier1(asn)
	}
	g := b.Freeze()
	if len(explicitTier1) == 0 {
		inferTier1(g)
	}
	return g, nil
}

// inferTier1 marks as tier-1 every AS that has no providers and at least
// one peer. Mutates the graph's tier-1 flags in place (only used during
// deserialization, before the graph escapes).
func inferTier1(g *Graph) {
	for i := range g.adj {
		hasProvider, hasPeer := false, false
		for _, n := range g.adj[i] {
			switch n.Rel {
			case RelProvider:
				hasProvider = true
			case RelPeer:
				hasPeer = true
			}
		}
		g.tier1[i] = !hasProvider && hasPeer
	}
}
