package topo

import "fmt"

// CustomerCone returns the dense indices of all ASes in the customer cone
// of the AS at index i, including i itself: every AS reachable by
// repeatedly following provider-to-customer links downward. This is the
// definition CAIDA uses to rank transit networks.
func (g *Graph) CustomerCone(i int) []int {
	seen := make(map[int]bool, 16)
	stack := []int{i}
	seen[i] = true
	var cone []int
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		cone = append(cone, cur)
		for _, n := range g.adj[cur] {
			if n.Rel == RelCustomer && !seen[n.Idx] {
				seen[n.Idx] = true
				stack = append(stack, n.Idx)
			}
		}
	}
	return cone
}

// CustomerConeSize returns the size of the customer cone of the AS at
// index i (including itself).
func (g *Graph) CustomerConeSize(i int) int { return len(g.CustomerCone(i)) }

// HopDistances returns, for every AS, the minimum AS-hop distance to any
// of the source indices, computed by multi-source BFS over the undirected
// graph (relationships ignored, matching the paper's Fig. 7 which measures
// plain AS-hop distance to the closest PEERING location). Unreachable ASes
// get distance -1.
func (g *Graph) HopDistances(sources []int) []int {
	dist := make([]int, g.NumASes())
	for i := range dist {
		dist[i] = -1
	}
	queue := make([]int, 0, len(sources))
	for _, s := range sources {
		if dist[s] == -1 {
			dist[s] = 0
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, n := range g.adj[cur] {
			if dist[n.Idx] == -1 {
				dist[n.Idx] = dist[cur] + 1
				queue = append(queue, n.Idx)
			}
		}
	}
	return dist
}

// Connected reports whether the undirected graph is a single connected
// component.
func (g *Graph) Connected() bool {
	if g.NumASes() == 0 {
		return true
	}
	dist := g.HopDistances([]int{0})
	for _, d := range dist {
		if d == -1 {
			return false
		}
	}
	return true
}

// Providers returns the dense indices of the providers of the AS at
// index i.
func (g *Graph) Providers(i int) []int {
	var out []int
	for _, n := range g.adj[i] {
		if n.Rel == RelProvider {
			out = append(out, n.Idx)
		}
	}
	return out
}

// Customers returns the dense indices of the customers of the AS at
// index i.
func (g *Graph) Customers(i int) []int {
	var out []int
	for _, n := range g.adj[i] {
		if n.Rel == RelCustomer {
			out = append(out, n.Idx)
		}
	}
	return out
}

// Peers returns the dense indices of the settlement-free peers of the AS
// at index i.
func (g *Graph) Peers(i int) []int {
	var out []int
	for _, n := range g.adj[i] {
		if n.Rel == RelPeer {
			out = append(out, n.Idx)
		}
	}
	return out
}

// TransitASes returns the indices of all ASes that have at least one
// customer (i.e., provide transit).
func (g *Graph) TransitASes() []int {
	var out []int
	for i := range g.adj {
		for _, n := range g.adj[i] {
			if n.Rel == RelCustomer {
				out = append(out, i)
				break
			}
		}
	}
	return out
}

// Validate checks structural invariants of the graph: symmetry of
// adjacency with inverted relationships, no self-links, tier-1 ASes have
// no providers, the provider-customer hierarchy is acyclic, and the graph
// is connected. It returns the first violation found.
func (g *Graph) Validate() error {
	for i := range g.adj {
		for _, n := range g.adj[i] {
			if n.Idx == i {
				return fmt.Errorf("topo: AS%d has a self-link", g.asns[i])
			}
			back, ok := g.Rel(n.Idx, i)
			if !ok {
				return fmt.Errorf("topo: asymmetric link AS%d->AS%d", g.asns[i], g.asns[n.Idx])
			}
			if back != n.Rel.Invert() {
				return fmt.Errorf("topo: inconsistent relationship on link AS%d-AS%d", g.asns[i], g.asns[n.Idx])
			}
		}
	}
	for _, t := range g.Tier1s() {
		if len(g.Providers(t)) > 0 {
			return fmt.Errorf("topo: tier-1 AS%d has a provider", g.asns[t])
		}
	}
	if err := g.checkHierarchyAcyclic(); err != nil {
		return err
	}
	if !g.Connected() {
		return fmt.Errorf("topo: graph is not connected")
	}
	return nil
}

// checkHierarchyAcyclic verifies the provider->customer digraph has no
// cycles (a customer cannot transitively be its own provider), using
// Kahn's algorithm on provider->customer edges.
func (g *Graph) checkHierarchyAcyclic() error {
	inDeg := make([]int, g.NumASes()) // number of providers
	for i := range g.adj {
		inDeg[i] = len(g.Providers(i))
	}
	queue := make([]int, 0, g.NumASes())
	for i, d := range inDeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	seen := 0
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		seen++
		for _, n := range g.adj[cur] {
			if n.Rel == RelCustomer {
				inDeg[n.Idx]--
				if inDeg[n.Idx] == 0 {
					queue = append(queue, n.Idx)
				}
			}
		}
	}
	if seen != g.NumASes() {
		return fmt.Errorf("topo: provider-customer hierarchy has a cycle (%d of %d ASes sorted)", seen, g.NumASes())
	}
	return nil
}
