package topo

import (
	"bytes"
	"strings"
	"testing"
)

func TestGenerateDefaultIsValid(t *testing.T) {
	g, err := Generate(DefaultGenParams(1))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumASes() != 4000 {
		t.Fatalf("NumASes = %d, want 4000", g.NumASes())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("generated graph invalid: %v", err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := DefaultGenParams(7)
	p.NumASes = 500
	a, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	var bufA, bufB bytes.Buffer
	if err := WriteCAIDA(&bufA, a); err != nil {
		t.Fatal(err)
	}
	if err := WriteCAIDA(&bufB, b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Fatal("same seed produced different graphs")
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	p1, p2 := DefaultGenParams(1), DefaultGenParams(2)
	p1.NumASes, p2.NumASes = 500, 500
	a, err := Generate(p1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p2)
	if err != nil {
		t.Fatal(err)
	}
	var bufA, bufB bytes.Buffer
	if err := WriteCAIDA(&bufA, a); err != nil {
		t.Fatal(err)
	}
	if err := WriteCAIDA(&bufB, b); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestGenerateTier1Clique(t *testing.T) {
	p := DefaultGenParams(3)
	p.NumASes = 300
	g, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	t1 := g.Tier1s()
	if len(t1) != p.NumTier1 {
		t.Fatalf("got %d tier-1s, want %d", len(t1), p.NumTier1)
	}
	for _, i := range t1 {
		if len(g.Providers(i)) != 0 {
			t.Errorf("tier-1 AS%d has providers", g.ASN(i))
		}
		for _, j := range t1 {
			if i == j {
				continue
			}
			if rel, ok := g.Rel(i, j); !ok || rel != RelPeer {
				t.Errorf("tier-1s AS%d and AS%d not peering", g.ASN(i), g.ASN(j))
			}
		}
	}
}

func TestGenerateEveryoneHasProviderPathToTier1(t *testing.T) {
	p := DefaultGenParams(5)
	p.NumASes = 800
	g, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	// Walk up providers from every AS; must reach a tier-1.
	for i := 0; i < g.NumASes(); i++ {
		cur := i
		for hops := 0; hops < 100; hops++ {
			if g.IsTier1(cur) {
				break
			}
			provs := g.Providers(cur)
			if len(provs) == 0 {
				t.Fatalf("AS%d has no provider and is not tier-1", g.ASN(cur))
			}
			cur = provs[0]
		}
	}
}

func TestGenerateHeavyTailDegrees(t *testing.T) {
	g, err := Generate(DefaultGenParams(11))
	if err != nil {
		t.Fatal(err)
	}
	// Preferential attachment should produce at least one AS with a large
	// customer base and many ASes with few customers.
	maxCust := 0
	for i := 0; i < g.NumASes(); i++ {
		if c := len(g.Customers(i)); c > maxCust {
			maxCust = c
		}
	}
	if maxCust < 50 {
		t.Fatalf("max customer degree = %d, expected a heavy tail (>=50)", maxCust)
	}
}

func TestGenerateParamValidation(t *testing.T) {
	cases := []GenParams{
		{Seed: 1, NumASes: 5, NumTier1: 10, TransitFrac: 0.2},
		{Seed: 1, NumASes: 100, NumTier1: 1, TransitFrac: 0.2},
		{Seed: 1, NumASes: 100, NumTier1: 5, TransitFrac: 0},
		{Seed: 1, NumASes: 100, NumTier1: 5, TransitFrac: 1},
	}
	for i, p := range cases {
		if _, err := Generate(p); err == nil {
			t.Errorf("case %d: expected parameter error", i)
		}
	}
}

func TestGenerateHasPeering(t *testing.T) {
	p := DefaultGenParams(13)
	p.NumASes = 1000
	g, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	peerLinks := 0
	for i := 0; i < g.NumASes(); i++ {
		for _, n := range g.Neighbors(i) {
			if n.Rel == RelPeer && n.Idx > i {
				peerLinks++
			}
		}
	}
	clique := p.NumTier1 * (p.NumTier1 - 1) / 2
	if peerLinks <= clique {
		t.Fatalf("no IXP peering beyond the tier-1 clique (%d links)", peerLinks)
	}
}

func TestCAIDARoundTrip(t *testing.T) {
	p := DefaultGenParams(17)
	p.NumASes = 400
	g, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCAIDA(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadCAIDA(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := WriteCAIDA(&buf2, g2); err != nil {
		t.Fatal(err)
	}
	var buf1 bytes.Buffer
	if err := WriteCAIDA(&buf1, g); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatal("CAIDA round-trip not stable")
	}
	if g2.NumASes() != g.NumASes() || g2.NumLinks() != g.NumLinks() {
		t.Fatal("round-trip changed graph size")
	}
}

func TestReadCAIDAInfersTier1(t *testing.T) {
	in := "1|2|0\n1|3|-1\n2|4|-1\n3|5|-1\n"
	g, err := ReadCAIDA(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	t1 := map[ASN]bool{}
	for _, i := range g.Tier1s() {
		t1[g.ASN(i)] = true
	}
	if !t1[1] || !t1[2] || len(t1) != 2 {
		t.Fatalf("inferred tier-1s = %v, want {1,2}", t1)
	}
}

func TestReadCAIDAErrors(t *testing.T) {
	cases := []string{
		"1|2\n",                 // too few fields
		"x|2|-1\n",              // bad ASN
		"1|y|0\n",               // bad ASN
		"1|2|7\n",               // unknown relationship
		"1|1|-1\n",              // self link
		"1|2|-1\n1|2|0\n",       // duplicate
		"# tier1: zzz\n1|2|0\n", // bad tier-1 header
	}
	for i, in := range cases {
		if _, err := ReadCAIDA(strings.NewReader(in)); err == nil {
			t.Errorf("case %d (%q): expected parse error", i, in)
		}
	}
}

func TestReadCAIDASkipsCommentsAndBlanks(t *testing.T) {
	in := "# a comment\n\n1|2|-1\n  \n# another\n2|3|-1\n"
	g, err := ReadCAIDA(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumASes() != 3 || g.NumLinks() != 2 {
		t.Fatalf("got %d ASes %d links", g.NumASes(), g.NumLinks())
	}
}
