package probe

import (
	"testing"

	"spooftrack/internal/bgp"
)

// BenchmarkProbeRound prices one budget-bounded scan round — the unit
// of work the daemon's scan loop schedules per interval.
func BenchmarkProbeRound(b *testing.B) {
	net, out, plat := probeWorld(b, 301, 0)
	p := newTestProber(b, net, out, plat, Config{Budget: 100, PerKind: 3})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Round(nil)
	}
}

// fullConfig announces on every link, the heaviest propagation shape.
func fullConfig(plat interface{ NumLinks() int }) bgp.Config {
	anns := make([]bgp.Announcement, plat.NumLinks())
	for i := range anns {
		anns[i] = bgp.Announcement{Link: bgp.LinkID(i)}
	}
	return bgp.Config{Anns: anns}
}

// BenchmarkPropagateQuiet is the baseline for the perturbation budget:
// uncached propagation with no probe scan running. Compare against
// BenchmarkPropagateDuringProbeScan (scripts/bench.sh pins the ratio).
func BenchmarkPropagateQuiet(b *testing.B) {
	_, _, plat := probeWorld(b, 302, 0)
	cfg := fullConfig(plat)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plat.PropagateAttempt(cfg, 0, true, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPropagateDuringProbeScan reruns the baseline while a probe
// scan loop hammers rounds on another goroutine — the daemon's steady
// state. The ns/op here against BenchmarkPropagateQuiet is the
// perturbation the scan loop imposes on campaign propagation; bench.sh
// fails when it drifts past budget.
func BenchmarkPropagateDuringProbeScan(b *testing.B) {
	net, out, plat := probeWorld(b, 302, 0)
	p := newTestProber(b, net, out, plat, Config{Budget: 100, PerKind: 3})
	cfg := fullConfig(plat)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
				p.Round(nil)
			}
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plat.PropagateAttempt(cfg, 0, true, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	<-done
}
