package probe

import (
	"spooftrack/internal/bgp"
	"spooftrack/internal/spoof"
)

// This file bridges probe inference into the attribution side: the
// classifier's second evidence channel, an inferred BCP38 model, and
// the agreement/conflict audit between the active and passive channels.

// BuildChannel turns the inference into the classifier's probe channel:
// per-AS measured ingress links (from control replies — an ingress
// observation independent of the campaign's catchment measurements) and
// per-AS spoofability signals. Only outbound verdicts at or above
// minConfidence are promoted to signals; everything else stays
// SAVNoData, so a degraded scan (probe-storm) contributes no evidence
// rather than wrong evidence. Pass minConfidence <= 0 for the
// HighConfidence default.
func BuildChannel(inf *SAVInference, minConfidence float64) *spoof.ProbeChannel {
	if minConfidence <= 0 {
		minConfidence = HighConfidence
	}
	n := inf.NumASes()
	pc := &spoof.ProbeChannel{
		Link:   make([]bgp.LinkID, n),
		Signal: make([]spoof.SAVSignal, n),
	}
	for as := 0; as < n; as++ {
		pc.Link[as] = bgp.NoLink
		if !inf.Probed(as) {
			continue
		}
		r := inf.Report(as)
		if r.CtlAns > 0 {
			pc.Link[as] = r.Link
		}
		switch {
		case r.Outbound == SAVAbsent && r.OutConfidence >= minConfidence:
			pc.Signal[as] = spoof.SAVCanSpoof
		case r.Outbound == SAVDeployed && r.OutConfidence >= minConfidence:
			pc.Signal[as] = spoof.SAVCannotSpoof
		}
	}
	return pc
}

// InferredBCP38 builds a BCP38 deployment model over source positions
// from probe verdicts: position k (dense AS sources[k]) is marked
// deploying iff its outbound verdict is SAVDeployed at or above
// minConfidence. Unprobed and low-confidence sources are conservatively
// non-deploying (they stay candidate spoofers). This is the probed
// counterpart of the seeded spoof.NewBCP38Model — a deployment map the
// origin measured instead of assumed.
func InferredBCP38(inf *SAVInference, sources []int, minConfidence float64) *spoof.BCP38Model {
	if minConfidence <= 0 {
		minConfidence = HighConfidence
	}
	deployed := make([]bool, len(sources))
	for k, as := range sources {
		if as < 0 || as >= inf.NumASes() || !inf.Probed(as) {
			continue
		}
		r := inf.Report(as)
		deployed[k] = r.Outbound == SAVDeployed && r.OutConfidence >= minConfidence
	}
	return spoof.NewBCP38FromVector(deployed)
}

// ChannelAudit tallies how the probe channel's measured ingress links
// relate to the campaign catchment vector, AS by AS — the
// agreement/conflict accounting between the two evidence channels.
type ChannelAudit struct {
	// Agree counts ASes where both channels name the same link.
	Agree int `json:"agree"`
	// Conflict counts ASes where the channels name different links.
	Conflict int `json:"conflict"`
	// ProbeOnly / CatchmentOnly count ASes only one channel covers.
	ProbeOnly     int `json:"probe_only"`
	CatchmentOnly int `json:"catchment_only"`
	// Neither counts ASes with no evidence at all.
	Neither int `json:"neither"`
	// ConflictASes lists the disagreeing dense indices (route drift or
	// measurement error — the review queue).
	ConflictASes []int `json:"conflict_ases,omitempty"`
}

// Audit compares the probe channel against a catchment vector.
func Audit(pc *spoof.ProbeChannel, catchment []bgp.LinkID) ChannelAudit {
	var a ChannelAudit
	n := len(catchment)
	if len(pc.Link) > n {
		n = len(pc.Link)
	}
	for as := 0; as < n; as++ {
		e1, e2 := bgp.NoLink, bgp.NoLink
		if as < len(catchment) {
			e1 = catchment[as]
		}
		if as < len(pc.Link) {
			e2 = pc.Link[as]
		}
		switch {
		case e1 == bgp.NoLink && e2 == bgp.NoLink:
			a.Neither++
		case e2 == bgp.NoLink:
			a.CatchmentOnly++
		case e1 == bgp.NoLink:
			a.ProbeOnly++
		case e1 == e2:
			a.Agree++
		default:
			a.Conflict++
			a.ConflictASes = append(a.ConflictASes, as)
		}
	}
	return a
}
