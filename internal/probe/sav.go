package probe

import (
	"fmt"
	"math"

	"spooftrack/internal/bgp"
)

// SAVState is a per-direction filtering verdict for one AS.
type SAVState int8

const (
	// SAVUnknown means the probes were inconclusive: controls never
	// answered, nothing spoofed was sent, or the only spoofed answers
	// were off-path junk.
	SAVUnknown SAVState = iota
	// SAVDeployed means spoofed probes were filtered while controls got
	// through — the network validates source addresses in that
	// direction. The confidence is the probability the silence is
	// filtering rather than loss.
	SAVDeployed
	// SAVAbsent means at least one genuinely spoofed probe (or its
	// reflection) was delivered: the network does not filter. Delivery
	// is proof, so the confidence is 1.
	SAVAbsent
)

// String names the state as used in reports and metric labels.
func (s SAVState) String() string {
	switch s {
	case SAVUnknown:
		return "unknown"
	case SAVDeployed:
		return "deployed"
	case SAVAbsent:
		return "absent"
	default:
		return fmt.Sprintf("SAVState(%d)", int(s))
	}
}

// ASReport is one AS's accumulated probe evidence and verdicts.
type ASReport struct {
	// AS is the dense topology index.
	AS int `json:"as"`
	// Link is the peering link the AS's control replies arrived on
	// (NoLink until a control answers) — the probe channel's
	// independently measured ingress.
	Link bgp.LinkID `json:"link"`
	// Inbound/Outbound are the per-direction verdicts with confidences.
	Inbound       SAVState `json:"inbound"`
	InConfidence  float64  `json:"inbound_confidence"`
	Outbound      SAVState `json:"outbound"`
	OutConfidence float64  `json:"outbound_confidence"`
	// Raw tallies.
	CtlSent int `json:"ctl_sent"`
	CtlAns  int `json:"ctl_ans"`
	InSent  int `json:"in_sent"`
	InAns   int `json:"in_ans"`
	OutSent int `json:"out_sent"`
	OutAns  int `json:"out_ans"`
	// TTLDiscards counts answers thrown away for implausible hop counts.
	TTLDiscards int `json:"ttl_discards"`
}

// asCounters is the mutable per-AS tally behind a report.
type asCounters struct {
	ctlSent, ctlAns int
	inSent, inAns   int
	outSent, outAns int
	ttlDiscard      int
	baseHops        int // control-reply hop baseline, -1 until observed
	link            bgp.LinkID
	probed          bool
}

// SAVInference accumulates probe outcomes and derives per-AS SAV
// verdicts. It is not synchronized; the Prober serializes access.
type SAVInference struct {
	c []asCounters
	// totalCtlSent/Ans pool every control probe: the scan-wide delivery
	// rate that caps what a lucky per-AS control sample may claim.
	totalCtlSent, totalCtlAns int
}

// NewSAVInference sizes the inference for n ASes (dense indexing).
func NewSAVInference(n int) *SAVInference {
	inf := &SAVInference{c: make([]asCounters, n)}
	for i := range inf.c {
		inf.c[i].baseHops = -1
		inf.c[i].link = bgp.NoLink
	}
	return inf
}

// NumASes returns the inference's vector size.
func (inf *SAVInference) NumASes() int { return len(inf.c) }

// RecordSent tallies one emitted probe (delivered or not — losses count
// as sent, which is what makes the confidence honest).
func (inf *SAVInference) RecordSent(as int, k Kind) {
	if as < 0 || as >= len(inf.c) {
		return
	}
	c := &inf.c[as]
	c.probed = true
	switch k {
	case KindControl:
		c.ctlSent++
		inf.totalCtlSent++
	case KindInbound:
		c.inSent++
	case KindOutbound:
		c.outSent++
	}
}

// RecordAnswer tallies a reply. Spoofed-probe answers whose hop count
// strays more than tol from the control baseline are discarded as
// off-path junk; it returns false for those (and they never count as
// delivery evidence).
func (inf *SAVInference) RecordAnswer(as int, k Kind, r Response, tol int) bool {
	if as < 0 || as >= len(inf.c) || !r.Answered {
		return false
	}
	c := &inf.c[as]
	if k == KindControl {
		c.ctlAns++
		inf.totalCtlAns++
		if c.baseHops < 0 {
			c.baseHops = r.Hops
		}
		c.link = r.Link
		return true
	}
	if c.baseHops >= 0 {
		d := r.Hops - c.baseHops
		if d < -tol || d > tol {
			c.ttlDiscard++
			return false
		}
	}
	switch k {
	case KindInbound:
		c.inAns++
	case KindOutbound:
		c.outAns++
	}
	return true
}

// verdict derives one direction's state and confidence from tallies.
//
// Delivery of a spoofed probe is proof of no filtering (confidence 1).
// Silence is ambiguous — the probe may have been filtered or lost — so
// the confidence in SAVDeployed is the probability that at least one of
// the spoofed probes would have been delivered were nothing filtering,
// using a Wilson lower bound on the control answer rate as the
// delivery rate:
//
//	conf = 1 - (1 - wilsonLower(ctlAns, ctlSent))^spoofedSent
//
// The delivery-rate estimate is the smaller of the per-AS bound and
// the scan-wide pooled bound (pooledLB): a handful of lucky per-AS
// control answers under heavy loss must not manufacture confidence the
// fleet-wide delivery rate contradicts. Both are lower bounds, so the
// min is conservative — exactly the direction the evidence contract
// wants (degrade to low confidence, never to wrong high confidence).
// Under probe-storm both bounds collapse and the confidence honestly
// collapses with them; more rounds recover it. Discarded off-path
// answers poison the measurement, so an AS with discards and no clean
// spoofed answer stays SAVUnknown rather than being promoted on
// contaminated silence.
func verdict(spoofedSent, spoofedAns, discards, ctlSent, ctlAns int, pooledLB float64) (SAVState, float64) {
	if spoofedAns > 0 {
		return SAVAbsent, 1
	}
	if spoofedSent == 0 || ctlAns == 0 {
		return SAVUnknown, 0
	}
	if discards > 0 {
		return SAVUnknown, 0
	}
	rate := wilsonLower(ctlAns, ctlSent)
	if pooledLB < rate {
		rate = pooledLB
	}
	return SAVDeployed, 1 - math.Pow(1-rate, float64(spoofedSent))
}

// wilsonLower is the one-sided 95% Wilson score lower bound on a
// binomial proportion of succ successes in n trials.
func wilsonLower(succ, n int) float64 {
	if n <= 0 {
		return 0
	}
	const z = 1.645
	p := float64(succ) / float64(n)
	nf := float64(n)
	denom := 1 + z*z/nf
	center := p + z*z/(2*nf)
	margin := z * math.Sqrt(p*(1-p)/nf+z*z/(4*nf*nf))
	lb := (center - margin) / denom
	if lb < 0 {
		return 0
	}
	return lb
}

// Report derives the current verdicts for one AS.
func (inf *SAVInference) Report(as int) ASReport {
	c := inf.c[as]
	r := ASReport{
		AS: as, Link: c.link,
		CtlSent: c.ctlSent, CtlAns: c.ctlAns,
		InSent: c.inSent, InAns: c.inAns,
		OutSent: c.outSent, OutAns: c.outAns,
		TTLDiscards: c.ttlDiscard,
	}
	lb := wilsonLower(inf.totalCtlAns, inf.totalCtlSent)
	r.Inbound, r.InConfidence = verdict(c.inSent, c.inAns, c.ttlDiscard, c.ctlSent, c.ctlAns, lb)
	r.Outbound, r.OutConfidence = verdict(c.outSent, c.outAns, c.ttlDiscard, c.ctlSent, c.ctlAns, lb)
	return r
}

// Reports returns the reports of every probed AS, ascending by index.
func (inf *SAVInference) Reports() []ASReport {
	var out []ASReport
	for as := range inf.c {
		if inf.c[as].probed {
			out = append(out, inf.Report(as))
		}
	}
	return out
}

// Probed reports whether AS as has been sent at least one probe.
func (inf *SAVInference) Probed(as int) bool {
	return as >= 0 && as < len(inf.c) && inf.c[as].probed
}

// Covered reports whether AS as has at least one answered control —
// the denominator-side requirement for any confident verdict.
func (inf *SAVInference) Covered(as int) bool {
	return as >= 0 && as < len(inf.c) && inf.c[as].ctlAns > 0
}
