package probe

import (
	"fmt"
	"net/netip"
	"sync"
	"time"

	"spooftrack/internal/amp"
	"spooftrack/internal/bgp"
	"spooftrack/internal/metrics"
	"spooftrack/internal/sched"
	"spooftrack/internal/trace"
)

// FaultHook lets the fault-injection substrate lose probes on the way
// out. Probe reports true when the probe (or its answer) is lost.
// *fault.Injector implements this.
type FaultHook interface {
	Probe(link, target int, seq uint64) bool
}

// Config assembles a Prober.
type Config struct {
	// Net delivers probes (required).
	Net Network
	// TargetLinks is the expected ingress link per dense AS index
	// (bgp.NoLink for unroutable ASes). Required; it sizes the
	// inference, selects the probe targets, and labels metrics.
	TargetLinks []bgp.LinkID
	// Targets restricts probing to these dense indices. Nil probes
	// every AS with a link in TargetLinks.
	Targets []int
	// LinkNames label metrics per link; indices missing from it render
	// as "link<N>".
	LinkNames []string
	// Budget caps targets visited per round; successive rounds rotate
	// fairly through the rest (sched.RotationWindow). 0 visits all.
	Budget int
	// PerKind is how many probes of each kind a visit sends (default 3).
	PerKind int
	// HopTolerance is the accepted deviation from the control hop
	// baseline before an answer is discarded as off-path (default 2).
	HopTolerance int
	// InboundSrc, when non-nil, supplies the forged-from-target-space
	// source address an inbound probe claims (e.g. addr.Space.HostAddr).
	// Nil leaves the address zero; the simulated network keys filtering
	// off the probe kind either way.
	InboundSrc func(target int) netip.Addr
	// Quarantined, when non-nil, skips targets whose ingress link the
	// health breaker currently holds (peering.LinkHealth.IsQuarantined).
	Quarantined func(bgp.LinkID) bool
	// Fault, when non-nil, is consulted per probe; lost probes still
	// count as sent (that is what keeps confidences honest).
	Fault FaultHook
	// Tracer records per-round spans when non-nil.
	Tracer *trace.Tracer
}

// Prober schedules spoofed-source probe rounds against the network and
// feeds an SAVInference. Round is serialized internally, so a scan loop
// and HTTP status readers may run concurrently.
type Prober struct {
	cfg     Config
	targets []int

	mu    sync.Mutex
	inf   *SAVInference
	round uint64
	seq   uint64
	tally struct {
		sent, lost, answered, discarded, skipped int64
	}

	sentVec    *metrics.CounterVec
	lostVec    *metrics.CounterVec
	verdictVec *metrics.CounterVec
	scanHist   *metrics.Histogram
}

// RoundReport summarizes one probe round.
type RoundReport struct {
	// Round is the completed round's number (counting from 1).
	Round uint64 `json:"round"`
	// Visited and Skipped partition the round's target window.
	Visited int `json:"visited"`
	Skipped int `json:"skipped"`
	// Sent/Lost/Answered/Discarded count this round's probes.
	Sent      int `json:"sent"`
	Lost      int `json:"lost"`
	Answered  int `json:"answered"`
	Discarded int `json:"discarded"`
	// Duration is wall-clock scan time.
	Duration time.Duration `json:"duration"`
}

// NewProber validates the config and builds a prober.
func NewProber(cfg Config) (*Prober, error) {
	if cfg.Net == nil {
		return nil, fmt.Errorf("probe: Config.Net is required")
	}
	if len(cfg.TargetLinks) == 0 {
		return nil, fmt.Errorf("probe: Config.TargetLinks is required")
	}
	if cfg.PerKind <= 0 {
		cfg.PerKind = 3
	}
	if cfg.HopTolerance <= 0 {
		cfg.HopTolerance = 2
	}
	targets := cfg.Targets
	if targets == nil {
		for as, l := range cfg.TargetLinks {
			if l != bgp.NoLink {
				targets = append(targets, as)
			}
		}
	} else {
		for _, as := range targets {
			if as < 0 || as >= len(cfg.TargetLinks) {
				return nil, fmt.Errorf("probe: target %d outside the %d-AS link vector", as, len(cfg.TargetLinks))
			}
		}
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("probe: no routable targets")
	}
	return &Prober{
		cfg:     cfg,
		targets: targets,
		inf:     NewSAVInference(len(cfg.TargetLinks)),
	}, nil
}

// Instrument registers the prober's metrics:
//
//	probe_sent_total{link}         probes emitted per ingress link
//	probe_lost_total{link}         probes lost in flight per link
//	probe_sav_verdicts_total{verdict}  outbound verdicts emitted per scan
//	probe_scan_seconds             scan-duration histogram
//	probe_coverage                 fraction of targets with a control answer
func (p *Prober) Instrument(reg *metrics.Registry) {
	p.sentVec = reg.CounterVec("probe_sent_total", "link")
	p.lostVec = reg.CounterVec("probe_lost_total", "link")
	p.verdictVec = reg.CounterVec("probe_sav_verdicts_total", "verdict")
	p.scanHist = reg.Histogram("probe_scan_seconds",
		0.0001, 0.001, 0.01, 0.05, 0.1, 0.5, 1, 5, 30)
	reg.GaugeFunc("probe_coverage", p.Coverage)
}

// linkName renders a link for metric labels.
func (p *Prober) linkName(l bgp.LinkID) string {
	if int(l) >= 0 && int(l) < len(p.cfg.LinkNames) {
		return p.cfg.LinkNames[l]
	}
	return fmt.Sprintf("link%d", int(l))
}

// NumTargets returns the prober's eligible target count.
func (p *Prober) NumTargets() int { return len(p.targets) }

// Round runs one budget-bounded scan round: rotate to this round's
// target window, probe each non-quarantined target with PerKind probes
// of every kind, and fold answers into the SAV inference.
func (p *Prober) Round(parent *trace.Span) RoundReport {
	p.mu.Lock()
	defer p.mu.Unlock()

	sp := trace.StartChild(parent, "probe.round")
	if sp == nil && p.cfg.Tracer != nil {
		sp = p.cfg.Tracer.Start("probe.round")
	}
	start := time.Now()
	rep := RoundReport{Round: p.round + 1}

	for _, idx := range sched.RotationWindow(len(p.targets), p.cfg.Budget, p.round) {
		target := p.targets[idx]
		link := p.cfg.TargetLinks[target]
		if p.cfg.Quarantined != nil && link != bgp.NoLink && p.cfg.Quarantined(link) {
			rep.Skipped++
			continue
		}
		rep.Visited++
		p.visit(target, link, &rep)
	}
	p.round++
	rep.Duration = time.Since(start)

	p.tally.sent += int64(rep.Sent)
	p.tally.lost += int64(rep.Lost)
	p.tally.answered += int64(rep.Answered)
	p.tally.discarded += int64(rep.Discarded)
	p.tally.skipped += int64(rep.Skipped)
	if p.scanHist != nil {
		p.scanHist.Observe(rep.Duration.Seconds())
	}
	p.emitVerdictsLocked(rep)

	sp.Count("visited", int64(rep.Visited))
	sp.Count("sent", int64(rep.Sent))
	sp.Count("lost", int64(rep.Lost))
	sp.Count("answered", int64(rep.Answered))
	sp.Count("discarded", int64(rep.Discarded))
	sp.Set(trace.Int("round", int64(rep.Round)))
	sp.End()
	return rep
}

// visit sends one target's probes for this round.
func (p *Prober) visit(target int, link bgp.LinkID, rep *RoundReport) {
	name := p.linkName(link)
	// Controls first: they set the hop baseline spoofed answers are
	// sanity-checked against.
	for _, kind := range []Kind{KindControl, KindInbound, KindOutbound} {
		for i := 0; i < p.cfg.PerKind; i++ {
			seq := p.seq
			p.seq++
			pr := Probe{Kind: kind, Target: target, Seq: seq}
			switch kind {
			case KindInbound:
				if p.cfg.InboundSrc != nil {
					pr.SpoofedSrc = p.cfg.InboundSrc(target)
				}
			case KindOutbound:
				pr.SpoofedSrc = CollectorAddr
				payload, err := amp.BuildDNSQuery(uint16(seq), "probe.invalid")
				if err != nil {
					continue
				}
				pr.Payload = payload
			}
			p.inf.RecordSent(target, kind)
			rep.Sent++
			if p.sentVec != nil {
				p.sentVec.With(name).Inc()
			}
			if p.cfg.Fault != nil && p.cfg.Fault.Probe(int(link), target, seq) {
				rep.Lost++
				if p.lostVec != nil {
					p.lostVec.With(name).Inc()
				}
				continue
			}
			resp := p.cfg.Net.Send(pr)
			if !resp.Answered {
				continue
			}
			if p.inf.RecordAnswer(target, kind, resp, p.cfg.HopTolerance) {
				rep.Answered++
			} else {
				rep.Discarded++
			}
		}
	}
}

// emitVerdictsLocked counts each probed target's current outbound
// verdict into the verdict counter — one observation per target per
// round, so the counter's rate tracks scan throughput and its label
// split tracks the verdict mix.
func (p *Prober) emitVerdictsLocked(rep RoundReport) {
	if p.verdictVec == nil {
		return
	}
	counts := map[SAVState]int64{}
	for _, idx := range sched.RotationWindow(len(p.targets), p.cfg.Budget, rep.Round-1) {
		target := p.targets[idx]
		if !p.inf.Probed(target) {
			continue
		}
		counts[p.inf.Report(target).Outbound]++
	}
	for st, n := range counts {
		p.verdictVec.With(st.String()).Add(n)
	}
}

// Coverage returns the fraction of eligible targets with at least one
// answered control probe — the probe-coverage SLO's value.
func (p *Prober) Coverage() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.targets) == 0 {
		return 0
	}
	covered := 0
	for _, t := range p.targets {
		if p.inf.Covered(t) {
			covered++
		}
	}
	return float64(covered) / float64(len(p.targets))
}

// Status is the /probe endpoint's payload.
type Status struct {
	Rounds    uint64  `json:"rounds"`
	Targets   int     `json:"targets"`
	Coverage  float64 `json:"coverage"`
	Sent      int64   `json:"sent"`
	Lost      int64   `json:"lost"`
	Answered  int64   `json:"answered"`
	Discarded int64   `json:"discarded"`
	Skipped   int64   `json:"skipped"`
	// Inbound/Outbound count probed ASes by current verdict name.
	Inbound  map[string]int `json:"inbound"`
	Outbound map[string]int `json:"outbound"`
	// LowConfidence counts probed ASes whose outbound verdict sits below
	// the high-confidence threshold — the honest-degradation signal.
	LowConfidence int     `json:"low_confidence"`
	Threshold     float64 `json:"confidence_threshold"`
}

// HighConfidence is the default confidence floor for promoting a probe
// verdict into attribution evidence.
const HighConfidence = 0.95

// Status summarizes the prober for operators.
func (p *Prober) Status() Status {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := Status{
		Rounds:    p.round,
		Targets:   len(p.targets),
		Sent:      p.tally.sent,
		Lost:      p.tally.lost,
		Answered:  p.tally.answered,
		Discarded: p.tally.discarded,
		Skipped:   p.tally.skipped,
		Inbound:   map[string]int{},
		Outbound:  map[string]int{},
		Threshold: HighConfidence,
	}
	covered := 0
	for _, t := range p.targets {
		if p.inf.Covered(t) {
			covered++
		}
		if !p.inf.Probed(t) {
			continue
		}
		r := p.inf.Report(t)
		st.Inbound[r.Inbound.String()]++
		st.Outbound[r.Outbound.String()]++
		if r.OutConfidence < HighConfidence {
			st.LowConfidence++
		}
	}
	if len(p.targets) > 0 {
		st.Coverage = float64(covered) / float64(len(p.targets))
	}
	return st
}

// Inference runs fn with the prober's inference under the lock — the
// safe way to snapshot reports or build evidence mid-scan.
func (p *Prober) Inference(fn func(*SAVInference)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	fn(p.inf)
}

// Reports returns a copy of every probed AS's report.
func (p *Prober) Reports() []ASReport {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.inf.Reports()
}
