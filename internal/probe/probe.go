// Package probe is the pipeline's second evidence channel: an active
// spoof-probing subsystem that tests, per peering-link catchment,
// whether probed networks deploy source address validation (SAV). Where
// the campaign side of the paper infers spoofers passively from
// catchment attribution, this package probes in the spirit of the
// Spoofer project, Korczyński et al.'s closed-resolver ("lock the
// front door") scans, and SMap-style reflection measurements: send
// carefully spoofed packets at a network and observe whether anything
// comes back.
//
// Three probe kinds triangulate a network's filtering posture:
//
//   - Control: an unspoofed probe. Its answer rate is the baseline
//     delivery rate, which turns "no answer to a spoofed probe" from a
//     boolean into a confidence.
//   - Inbound: a probe whose source address is forged from the target's
//     own address space. Networks deploying inbound SAV drop it at the
//     border (nothing answers); networks without see it delivered.
//   - Outbound: an amplification request (a real DNS ANY / NTP monlist
//     payload, built and validated by internal/amp) aimed at a reflector
//     inside the target, with the collector's address as the forged
//     source. The reflected answer only escapes the target if the
//     target does NOT filter outbound spoofed traffic — the BCP38
//     posture the paper's remediation loop cares about.
//
// Replies carry the AS-level hop count of the path they took;
// answers whose hop count disagrees with the control baseline are
// discarded as off-path junk (third-party injected responses), never
// counted as delivery evidence.
//
// SimNet grounds the probes in the simulated topology: reachability and
// hop counts come from a converged bgp.Outcome, and SAV ground truth is
// an explicit per-AS vector, so inference quality is measurable against
// known truth. The Prober (prober.go) schedules rounds, SAVInference
// (sav.go) turns tallies into verdicts with honest confidences, and the
// Evidence bridge (evidence.go) feeds them to spoof.Classifier and the
// BCP38 model as the second channel next to catchment attribution.
package probe

import (
	"fmt"
	"net/netip"

	"spooftrack/internal/amp"
	"spooftrack/internal/bgp"
	"spooftrack/internal/stats"
)

// Kind distinguishes the three probe types.
type Kind uint8

const (
	// KindControl is an unspoofed baseline probe.
	KindControl Kind = iota
	// KindInbound carries a source forged from the target's own space.
	KindInbound
	// KindOutbound triggers a reflector inside the target with the
	// collector's address forged as the source.
	KindOutbound

	numKinds = 3
)

// String names the kind as used in reports.
func (k Kind) String() string {
	switch k {
	case KindControl:
		return "control"
	case KindInbound:
		return "inbound"
	case KindOutbound:
		return "outbound"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// CollectorAddr is the fixed measurement-point address outbound probes
// forge as their source, so reflected answers route back to the
// collector (TEST-NET-2, guaranteed outside every simulated AS's space).
var CollectorAddr = netip.AddrFrom4([4]byte{198, 51, 100, 1})

// Probe is one emitted probe packet.
type Probe struct {
	// Kind selects the probe semantics.
	Kind Kind
	// Target is the dense topology index of the probed AS.
	Target int
	// Seq is the probe's sequence number, unique per prober.
	Seq uint64
	// SpoofedSrc is the forged source address (zero for controls).
	SpoofedSrc netip.Addr
	// Payload is the amplification request for outbound probes.
	Payload []byte
}

// Response is what (if anything) came back.
type Response struct {
	// Answered reports whether any reply was observed.
	Answered bool
	// Hops is the AS-level hop count of the reply path.
	Hops int
	// Link is the peering link the reply arrived on.
	Link bgp.LinkID
	// Payload is the reflected answer for outbound probes.
	Payload []byte
}

// Network delivers probes. Implementations must be safe for concurrent
// Send calls and deterministic for a fixed construction.
type Network interface {
	Send(p Probe) Response
}

// GroundTruth is the per-AS SAV deployment the simulated network
// enforces — what inference is graded against.
type GroundTruth struct {
	// InboundSAV[i] reports whether AS i drops packets arriving from
	// outside that claim its own address space.
	InboundSAV []bool
	// OutboundSAV[i] reports whether AS i filters spoofed-source packets
	// leaving it (BCP38).
	OutboundSAV []bool
}

// RandomGroundTruth deploys inbound and outbound SAV independently at
// the given per-AS rates, seeded.
func RandomGroundTruth(n int, inFrac, outFrac float64, seed uint64) GroundTruth {
	rng := stats.NewRNG(seed ^ 0x5a71e57)
	gt := GroundTruth{
		InboundSAV:  make([]bool, n),
		OutboundSAV: make([]bool, n),
	}
	for i := 0; i < n; i++ {
		gt.InboundSAV[i] = rng.Bool(inFrac)
		gt.OutboundSAV[i] = rng.Bool(outFrac)
	}
	return gt
}

// SimNet delivers probes over a converged routing outcome with explicit
// SAV ground truth. It is stateless after construction and safe for
// concurrent Send.
type SimNet struct {
	outcome  *bgp.Outcome
	truth    GroundTruth
	services []amp.Service
	// offPathFrac is the seeded fraction of targets whose replies to
	// spoofed probes arrive with implausible hop counts (modeling
	// third-party response injection); the prober must discard them.
	offPathFrac float64
	seed        uint64
}

// NewSimNet builds the simulated probe network. truth vectors must
// cover every AS the outcome routes.
func NewSimNet(out *bgp.Outcome, truth GroundTruth, offPathFrac float64, seed uint64) (*SimNet, error) {
	n := out.Graph().NumASes()
	if len(truth.InboundSAV) < n || len(truth.OutboundSAV) < n {
		return nil, fmt.Errorf("probe: ground truth covers %d/%d inbound, %d/%d outbound ASes",
			len(truth.InboundSAV), n, len(truth.OutboundSAV), n)
	}
	if offPathFrac < 0 || offPathFrac > 1 {
		return nil, fmt.Errorf("probe: off-path fraction %v out of [0,1]", offPathFrac)
	}
	return &SimNet{
		outcome:     out,
		truth:       truth,
		services:    amp.DefaultServices(),
		offPathFrac: offPathFrac,
		seed:        seed,
	}, nil
}

// Truth returns the ground truth the network enforces (for grading).
func (s *SimNet) Truth() GroundTruth { return s.truth }

// Send implements Network.
func (s *SimNet) Send(p Probe) Response {
	t := p.Target
	if t < 0 || t >= s.outcome.Graph().NumASes() || !s.outcome.HasRoute(t) {
		return Response{}
	}
	hops := len(s.outcome.DataPath(t))
	link := s.outcome.CatchmentOf(t)
	switch p.Kind {
	case KindControl:
		return Response{Answered: true, Hops: hops, Link: link}
	case KindInbound:
		if s.truth.InboundSAV[t] {
			return Response{}
		}
		return Response{Answered: true, Hops: s.replyHops(t, hops), Link: link}
	case KindOutbound:
		svc, ok := amp.RecognizeService(s.services, p.Payload)
		if !ok {
			// No reflector recognizes the payload: nothing to reflect.
			return Response{}
		}
		if s.truth.OutboundSAV[t] {
			// The reflector answers, but its spoofed-source reply dies at
			// the target's border filter.
			return Response{}
		}
		return Response{
			Answered: true,
			Hops:     s.replyHops(t, hops),
			Link:     link,
			Payload:  svc.Respond(p.Payload, 512),
		}
	default:
		return Response{}
	}
}

// replyHops returns the hop count a spoofed-probe reply reports:
// the true path length, except for the seeded off-path fraction of
// targets whose replies come back wildly long.
func (s *SimNet) replyHops(target, trueHops int) int {
	if s.offPathFrac <= 0 {
		return trueHops
	}
	h := mix(s.seed, uint64(target))
	if float64(h>>11)/(1<<53) < s.offPathFrac {
		return trueHops + 5 + int(h%7)
	}
	return trueHops
}

// mix hashes (seed, v) through SplitMix64 for a uniform deterministic
// site value, mirroring the fault injector's site-hash discipline.
func mix(seed, v uint64) uint64 {
	z := seed ^ 0x9e3779b97f4a7c15 ^ (v * 0xbf58476d1ce4e5b9)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ (z >> 31)
}
