package probe

import (
	"testing"

	"spooftrack/internal/amp"
	"spooftrack/internal/bgp"
	"spooftrack/internal/metrics"
	"spooftrack/internal/peering"
	"spooftrack/internal/spoof"
	"spooftrack/internal/topo"
)

// probeWorld builds a small converged topology with known SAV ground
// truth: the test substrate for every inference assertion.
func probeWorld(t testing.TB, seed uint64, offPathFrac float64) (*SimNet, *bgp.Outcome, *peering.Platform) {
	t.Helper()
	p := topo.DefaultGenParams(seed)
	p.NumASes = 400
	g, err := topo.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	plat, err := peering.New(g, peering.Options{EngineParams: bgp.DefaultParams(seed)})
	if err != nil {
		t.Fatal(err)
	}
	anns := make([]bgp.Announcement, plat.NumLinks())
	for i := range anns {
		anns[i] = bgp.Announcement{Link: bgp.LinkID(i)}
	}
	out, err := plat.Propagate(bgp.Config{Anns: anns})
	if err != nil {
		t.Fatal(err)
	}
	truth := RandomGroundTruth(g.NumASes(), 0.4, 0.5, seed)
	net, err := NewSimNet(out, truth, offPathFrac, seed)
	if err != nil {
		t.Fatal(err)
	}
	return net, out, plat
}

func TestSimNetSemantics(t *testing.T) {
	net, out, _ := probeWorld(t, 101, 0)
	truth := net.Truth()
	// Find a routed target without any SAV and one with both directions.
	open, closed := -1, -1
	for i := 0; i < out.Graph().NumASes(); i++ {
		if !out.HasRoute(i) {
			continue
		}
		if !truth.InboundSAV[i] && !truth.OutboundSAV[i] && open == -1 {
			open = i
		}
		if truth.InboundSAV[i] && truth.OutboundSAV[i] && closed == -1 {
			closed = i
		}
	}
	if open == -1 || closed == -1 {
		t.Skip("seed produced no suitable targets")
	}

	ctl := net.Send(Probe{Kind: KindControl, Target: open})
	if !ctl.Answered || ctl.Hops != len(out.DataPath(open)) || ctl.Link != out.CatchmentOf(open) {
		t.Fatalf("control reply = %+v, want hops %d on link %d", ctl, len(out.DataPath(open)), out.CatchmentOf(open))
	}
	if r := net.Send(Probe{Kind: KindInbound, Target: open}); !r.Answered {
		t.Fatal("inbound probe filtered by a network without inbound SAV")
	}
	if r := net.Send(Probe{Kind: KindInbound, Target: closed}); r.Answered {
		t.Fatal("inbound probe delivered through inbound SAV")
	}

	query, err := amp.BuildDNSQuery(7, "probe.invalid")
	if err != nil {
		t.Fatal(err)
	}
	r := net.Send(Probe{Kind: KindOutbound, Target: open, Payload: query})
	if !r.Answered {
		t.Fatal("reflection did not escape an unfiltered network")
	}
	if len(r.Payload) <= len(query) {
		t.Fatalf("reflected %d bytes for a %d-byte query: not amplified", len(r.Payload), len(query))
	}
	if r = net.Send(Probe{Kind: KindOutbound, Target: closed, Payload: query}); r.Answered {
		t.Fatal("spoofed reflection escaped through outbound SAV")
	}
	// A garbage payload is not a recognizable amplification request.
	if r = net.Send(Probe{Kind: KindOutbound, Target: open, Payload: []byte("junk")}); r.Answered {
		t.Fatal("reflector answered an unrecognized payload")
	}
	// Unrouted / out-of-range targets never answer.
	for i := 0; i < out.Graph().NumASes(); i++ {
		if !out.HasRoute(i) {
			if r := net.Send(Probe{Kind: KindControl, Target: i}); r.Answered {
				t.Fatalf("unrouted AS %d answered", i)
			}
			break
		}
	}
	if r := net.Send(Probe{Kind: KindControl, Target: -1}); r.Answered {
		t.Fatal("negative target answered")
	}
}

func newTestProber(t testing.TB, net *SimNet, out *bgp.Outcome, plat *peering.Platform, cfg Config) *Prober {
	t.Helper()
	cfg.Net = net
	if cfg.TargetLinks == nil {
		cfg.TargetLinks = out.CatchmentVector()
	}
	if cfg.LinkNames == nil {
		cfg.LinkNames = plat.LinkNames()
	}
	p, err := NewProber(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestProberInfersGroundTruthFaultFree(t *testing.T) {
	net, out, plat := probeWorld(t, 102, 0)
	p := newTestProber(t, net, out, plat, Config{PerKind: 4})
	for i := 0; i < 2; i++ {
		p.Round(nil)
	}
	truth := net.Truth()
	st := p.Status()
	if st.Coverage != 1.0 {
		t.Fatalf("fault-free coverage %.3f, want 1.0", st.Coverage)
	}
	checked := 0
	for _, r := range p.Reports() {
		// Fault-free delivery rate is 1, so every verdict is confident.
		if r.InConfidence < HighConfidence || r.OutConfidence < HighConfidence {
			t.Fatalf("AS %d: low confidence without faults: %+v", r.AS, r)
		}
		wantIn, wantOut := SAVAbsent, SAVAbsent
		if truth.InboundSAV[r.AS] {
			wantIn = SAVDeployed
		}
		if truth.OutboundSAV[r.AS] {
			wantOut = SAVDeployed
		}
		if r.Inbound != wantIn || r.Outbound != wantOut {
			t.Fatalf("AS %d: inferred (%v, %v), truth (%v, %v)", r.AS, r.Inbound, r.Outbound, wantIn, wantOut)
		}
		if r.Inbound == SAVAbsent && r.InConfidence != 1 {
			t.Fatalf("AS %d: delivered spoofed probe must be proof, conf %v", r.AS, r.InConfidence)
		}
		checked++
	}
	if checked != p.NumTargets() {
		t.Fatalf("reports cover %d/%d targets", checked, p.NumTargets())
	}
}

func TestBudgetRotationCoversAllTargets(t *testing.T) {
	net, out, plat := probeWorld(t, 103, 0)
	budget := 50
	p := newTestProber(t, net, out, plat, Config{Budget: budget, PerKind: 1})
	n := p.NumTargets()
	rounds := (n + budget - 1) / budget
	for i := 0; i < rounds; i++ {
		rep := p.Round(nil)
		if rep.Visited+rep.Skipped != min(budget, n) {
			t.Fatalf("round %d visited %d + skipped %d, want window %d", i, rep.Visited, rep.Skipped, min(budget, n))
		}
	}
	if st := p.Status(); st.Coverage != 1.0 {
		t.Fatalf("coverage after full rotation %.3f, want 1.0", st.Coverage)
	}
}

func TestOffPathAnswersDiscardedNotTrusted(t *testing.T) {
	net, out, plat := probeWorld(t, 104, 0.3)
	p := newTestProber(t, net, out, plat, Config{PerKind: 3})
	p.Round(nil)
	truth := net.Truth()
	discards := 0
	for _, r := range p.Reports() {
		if r.TTLDiscards == 0 {
			continue
		}
		discards++
		// Contaminated measurements must degrade to explicit Unknown (or
		// be proven Absent by a clean answer) — never promoted to a
		// confident Deployed that contradicts truth.
		if r.Inbound == SAVDeployed && !truth.InboundSAV[r.AS] && r.InConfidence >= HighConfidence {
			t.Fatalf("AS %d: off-path junk produced a wrong confident inbound verdict: %+v", r.AS, r)
		}
		if r.Outbound == SAVDeployed && !truth.OutboundSAV[r.AS] && r.OutConfidence >= HighConfidence {
			t.Fatalf("AS %d: off-path junk produced a wrong confident outbound verdict: %+v", r.AS, r)
		}
	}
	if discards == 0 {
		t.Fatal("30% off-path fraction produced no TTL discards")
	}
	if st := p.Status(); st.Discarded == 0 {
		t.Fatal("status did not tally discards")
	}
}

func TestQuarantinedLinksSkipped(t *testing.T) {
	net, out, plat := probeWorld(t, 105, 0)
	links := out.CatchmentVector()
	badLink := bgp.LinkID(0)
	p := newTestProber(t, net, out, plat, Config{
		PerKind:     1,
		Quarantined: func(l bgp.LinkID) bool { return l == badLink },
	})
	rep := p.Round(nil)
	if rep.Skipped == 0 {
		t.Fatal("no targets skipped with link 0 quarantined")
	}
	for _, r := range p.Reports() {
		if links[r.AS] == badLink {
			t.Fatalf("AS %d behind quarantined link was probed", r.AS)
		}
	}
}

func TestEvidenceBridge(t *testing.T) {
	net, out, plat := probeWorld(t, 106, 0)
	p := newTestProber(t, net, out, plat, Config{PerKind: 4})
	p.Round(nil)
	catchment := out.CatchmentVector()
	truth := net.Truth()

	var pc *spoof.ProbeChannel
	var model *spoof.BCP38Model
	sources := []int{0, 1, 2, 3, 4, 5}
	p.Inference(func(inf *SAVInference) {
		pc = BuildChannel(inf, 0)
		model = InferredBCP38(inf, sources, 0)
	})

	// The probe channel's measured links must agree with the true
	// catchments: SimNet replies arrive on the catchment link.
	a := Audit(pc, catchment)
	if a.Conflict != 0 {
		t.Fatalf("audit found %d conflicts against true catchments: %+v", a.Conflict, a.ConflictASes)
	}
	if a.Agree == 0 {
		t.Fatal("audit found no agreement")
	}
	// Signals must match ground truth exactly in the fault-free world.
	for as, sig := range pc.Signal {
		if !out.HasRoute(as) {
			if sig != spoof.SAVNoData {
				t.Fatalf("unrouted AS %d promoted to %v", as, sig)
			}
			continue
		}
		want := spoof.SAVCanSpoof
		if truth.OutboundSAV[as] {
			want = spoof.SAVCannotSpoof
		}
		if sig != want {
			t.Fatalf("AS %d signal %v, truth wants %v", as, sig, want)
		}
	}
	// The inferred BCP38 model mirrors truth for the probed sources.
	for k, as := range sources {
		if !out.HasRoute(as) {
			continue
		}
		if model.Deployed(k) != truth.OutboundSAV[as] {
			t.Fatalf("source %d (AS %d): inferred deployment %v, truth %v", k, as, model.Deployed(k), truth.OutboundSAV[as])
		}
	}
}

func TestInstrumentationAndStatus(t *testing.T) {
	net, out, plat := probeWorld(t, 107, 0)
	p := newTestProber(t, net, out, plat, Config{PerKind: 2, Budget: 40})
	reg := metrics.NewRegistry()
	p.Instrument(reg)
	rep1 := p.Round(nil)
	rep2 := p.Round(nil)

	st := p.Status()
	if st.Rounds != 2 || st.Sent != int64(rep1.Sent+rep2.Sent) {
		t.Fatalf("status %+v does not match reports %+v %+v", st, rep1, rep2)
	}
	snap := reg.Snapshot()
	sent, ok := snap["probe_sent_total"].(map[string]any)
	if !ok {
		t.Fatalf("probe_sent_total missing from snapshot")
	}
	total := int64(0)
	for _, v := range sent {
		total += v.(int64)
	}
	if total != st.Sent {
		t.Fatalf("probe_sent_total sums to %d, status says %d", total, st.Sent)
	}
	if hs, ok := snap["probe_scan_seconds"].(metrics.HistogramSnapshot); !ok || hs.Count != 2 {
		t.Fatalf("probe_scan_seconds = %+v, want 2 observations", snap["probe_scan_seconds"])
	}
	if cov, ok := snap["probe_coverage"].(float64); !ok || cov != p.Coverage() {
		t.Fatalf("probe_coverage gauge = %v, want %v", snap["probe_coverage"], p.Coverage())
	}
	if _, ok := snap["probe_sav_verdicts_total"].(map[string]any); !ok {
		t.Fatal("probe_sav_verdicts_total missing from snapshot")
	}
}

func TestNewProberValidation(t *testing.T) {
	net, out, _ := probeWorld(t, 108, 0)
	if _, err := NewProber(Config{TargetLinks: out.CatchmentVector()}); err == nil {
		t.Fatal("nil network accepted")
	}
	if _, err := NewProber(Config{Net: net}); err == nil {
		t.Fatal("missing target links accepted")
	}
	if _, err := NewProber(Config{Net: net, TargetLinks: out.CatchmentVector(), Targets: []int{99999}}); err == nil {
		t.Fatal("out-of-range explicit target accepted")
	}
	if _, err := NewProber(Config{Net: net, TargetLinks: []bgp.LinkID{bgp.NoLink}}); err == nil {
		t.Fatal("zero routable targets accepted")
	}
	if _, err := NewSimNet(out, GroundTruth{}, 0, 1); err == nil {
		t.Fatal("undersized ground truth accepted")
	}
	if _, err := NewSimNet(out, net.Truth(), 1.5, 1); err == nil {
		t.Fatal("off-path fraction 1.5 accepted")
	}
}

func TestKindAndStateStrings(t *testing.T) {
	if KindControl.String() != "control" || KindInbound.String() != "inbound" || KindOutbound.String() != "outbound" {
		t.Fatal("kind names wrong")
	}
	if SAVUnknown.String() != "unknown" || SAVDeployed.String() != "deployed" || SAVAbsent.String() != "absent" {
		t.Fatal("state names wrong")
	}
	if Kind(9).String() == "" || SAVState(9).String() == "" {
		t.Fatal("out-of-range values must still render")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
