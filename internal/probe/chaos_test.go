package probe

import (
	"testing"

	"spooftrack/internal/fault"
	"spooftrack/internal/spoof"
)

// The probe-storm chaos suite pins the subsystem's graceful-degradation
// contract: when most probes are lost and the survivors crawl, SAV
// inference must degrade to explicit low-confidence verdicts — never to
// wrong high-confidence ones — and recover honestly as rounds
// accumulate.

func TestProbeStormDegradesToLowConfidence(t *testing.T) {
	net, out, plat := probeWorld(t, 201, 0)
	prof, err := fault.ProfileByName("probe-storm")
	if err != nil {
		t.Fatal(err)
	}
	// The storm's injected latency is real wall-clock sleep (covered by
	// the fault package's own tests); zero it so 14 rounds of loss
	// statistics stay fast.
	prof.ProbeLatency = 0
	inj := fault.New(prof, 201, plat.NumLinks())
	p := newTestProber(t, net, out, plat, Config{PerKind: 3, Fault: inj})
	truth := net.Truth()

	assertConfidentVerdictsCorrect := func(phase string) (low, highAbsent, highDeployed int) {
		t.Helper()
		for _, r := range p.Reports() {
			for _, dir := range []struct {
				st    SAVState
				conf  float64
				truth bool
			}{
				{r.Inbound, r.InConfidence, truth.InboundSAV[r.AS]},
				{r.Outbound, r.OutConfidence, truth.OutboundSAV[r.AS]},
			} {
				if dir.conf < HighConfidence {
					low++
					continue
				}
				if dir.st == SAVAbsent {
					highAbsent++
				} else {
					highDeployed++
				}
				// A high-confidence verdict must match ground truth.
				want := SAVAbsent
				if dir.truth {
					want = SAVDeployed
				}
				if dir.st != want {
					t.Fatalf("%s: AS %d holds wrong high-confidence verdict %v (conf %.3f), truth %v: %+v",
						phase, r.AS, dir.st, dir.conf, want, r)
				}
			}
		}
		return low, highAbsent, highDeployed
	}

	// Phase 1: two rounds under the storm. Delivered spoofed probes are
	// proof at any loss rate (SAVAbsent stays legitimate), but every
	// silence-based Deployed verdict must sit below the confidence
	// threshold: 85% loss makes silence nearly meaningless.
	for i := 0; i < 2; i++ {
		p.Round(nil)
	}
	low, _, highDeployed := assertConfidentVerdictsCorrect("storm")
	if low == 0 {
		t.Fatal("storm produced no low-confidence verdicts")
	}
	if highDeployed != 0 {
		t.Fatalf("storm promoted %d silence-based verdicts to high confidence after 2 rounds", highDeployed)
	}
	if st := p.Status(); st.Lost == 0 || float64(st.Lost)/float64(st.Sent) < 0.8 {
		t.Fatalf("storm loss %d/%d, want ~85%%", st.Lost, st.Sent)
	}
	if inj.Count(fault.KindProbeLoss) == 0 {
		t.Fatal("injector counted no probe losses")
	}

	// The evidence bridge must promote none of the shaky verdicts into
	// wrong attribution signals.
	var pc *spoof.ProbeChannel
	p.Inference(func(inf *SAVInference) { pc = BuildChannel(inf, 0) })
	for as, sig := range pc.Signal {
		if sig == spoof.SAVNoData {
			continue
		}
		want := spoof.SAVCanSpoof
		if truth.OutboundSAV[as] {
			want = spoof.SAVCannotSpoof
		}
		if sig != want {
			t.Fatalf("storm promoted wrong signal %v for AS %d (truth %v)", sig, as, want)
		}
	}

	// Phase 2: recovery. Twelve more rounds accumulate enough probes
	// that silence becomes meaningful again — Deployed verdicts climb
	// back over the threshold, and every promoted verdict stays
	// truthful along the way.
	for i := 0; i < 12; i++ {
		p.Round(nil)
	}
	low2, high2, highDeployed2 := assertConfidentVerdictsCorrect("recovery")
	if highDeployed2 == 0 {
		t.Fatal("confidence in silence-based verdicts did not recover with more rounds")
	}
	if conf := high2 + highDeployed2; conf < low2 {
		t.Fatalf("after 14 storm rounds only %d/%d verdicts are confident", conf, conf+low2)
	}
}

// TestProbeStormDeterministic pins that a storm-afflicted scan is a
// pure function of its seeds: two identically built probers agree on
// every tally after every round.
func TestProbeStormDeterministic(t *testing.T) {
	build := func() *Prober {
		net, out, plat := probeWorld(t, 202, 0)
		prof, err := fault.ProfileByName("probe-storm")
		if err != nil {
			t.Fatal(err)
		}
		prof.ProbeLatency = 0 // timing noise off; loss rolls are seeded anyway
		inj := fault.New(prof, 202, plat.NumLinks())
		return newTestProber(t, net, out, plat, Config{PerKind: 2, Budget: 60, Fault: inj})
	}
	a, b := build(), build()
	for i := 0; i < 4; i++ {
		ra, rb := a.Round(nil), b.Round(nil)
		ra.Duration, rb.Duration = 0, 0
		if ra != rb {
			t.Fatalf("round %d diverged: %+v vs %+v", i, ra, rb)
		}
	}
	sa, sb := a.Status(), b.Status()
	sa.Coverage, sb.Coverage = 0, 0
	if sa.Sent != sb.Sent || sa.Lost != sb.Lost || sa.Answered != sb.Answered {
		t.Fatalf("status diverged: %+v vs %+v", sa, sb)
	}
}
