package spoof

import (
	"math"
	"sort"
	"testing"

	"spooftrack/internal/bgp"
	"spooftrack/internal/cluster"
	"spooftrack/internal/stats"
)

func TestPlaceUniformConserved(t *testing.T) {
	rng := stats.NewRNG(1)
	p := PlaceUniform(rng, 100, 500)
	if got := p.TotalVolume(); got != 500 {
		t.Fatalf("total volume %v, want 500", got)
	}
	if p.NumActive() == 0 {
		t.Fatal("no active sources")
	}
}

func TestPlaceUniformSpread(t *testing.T) {
	rng := stats.NewRNG(2)
	p := PlaceUniform(rng, 50, 5000)
	// With 100 bots per AS expected, every AS should have some and none
	// should dominate.
	for k, w := range p.Weight {
		if w == 0 {
			t.Fatalf("source %d empty under uniform placement", k)
		}
		if w > 300 {
			t.Fatalf("source %d holds %v bots; uniform should not concentrate", k, w)
		}
	}
}

func TestPlaceParetoConcentrates(t *testing.T) {
	rng := stats.NewRNG(3)
	p := PlacePareto(rng, 200, 10000)
	if got := p.TotalVolume(); got != 10000 {
		t.Fatalf("total volume %v, want 10000", got)
	}
	// Top 20% of ASes should hold well over half the volume.
	w := append([]float64(nil), p.Weight...)
	sort.Float64s(w)
	top := 0.0
	for _, v := range w[len(w)*8/10:] {
		top += v
	}
	if frac := top / 10000; frac < 0.55 {
		t.Fatalf("top-20%% holds %.2f of volume; want Pareto concentration", frac)
	}
}

func TestPlaceSingle(t *testing.T) {
	rng := stats.NewRNG(4)
	p := PlaceSingle(rng, 10)
	if p.NumActive() != 1 || p.TotalVolume() != 1 {
		t.Fatalf("single placement wrong: %+v", p)
	}
}

func TestLinkVolumes(t *testing.T) {
	catchment := []bgp.LinkID{0, 0, 1, bgp.NoLink}
	p := Placement{Weight: []float64{1, 2, 3, 4}}
	v := LinkVolumes(catchment, p, 2)
	if v[0] != 3 || v[1] != 3 {
		t.Fatalf("volumes %v, want [3 3]", v)
	}
}

func TestLinkVolumesPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	LinkVolumes([]bgp.LinkID{0}, Placement{Weight: []float64{1, 2}}, 2)
}

func TestVolumeByCluster(t *testing.T) {
	part := cluster.New(4)
	part.Refine([]bgp.LinkID{0, 0, 1, 1})
	p := Placement{Weight: []float64{1, 2, 3, 4}}
	v := VolumeByCluster(part, p)
	sort.Float64s(v)
	if len(v) != 2 || v[0] != 3 || v[1] != 7 {
		t.Fatalf("cluster volumes %v, want [3 7]", v)
	}
}

func TestTrafficBySizeSingleton(t *testing.T) {
	// All traffic from a singleton cluster: curve jumps to 1 at size 1.
	part := cluster.New(4)
	part.Refine([]bgp.LinkID{0, 1, 1, 1})
	p := Placement{Weight: []float64{5, 0, 0, 0}}
	curve := TrafficBySize(part, p)
	if len(curve) != 1 || curve[0].Size != 1 || curve[0].CumFrac != 1 {
		t.Fatalf("curve %v, want [{1 1}]", curve)
	}
}

func TestTrafficBySizeMixed(t *testing.T) {
	part := cluster.New(4)
	part.Refine([]bgp.LinkID{0, 1, 1, 1}) // sizes 1 and 3
	p := Placement{Weight: []float64{1, 1, 1, 1}}
	curve := TrafficBySize(part, p)
	if len(curve) != 2 {
		t.Fatalf("curve %v", curve)
	}
	if curve[0].Size != 1 || math.Abs(curve[0].CumFrac-0.25) > 1e-12 {
		t.Fatalf("first point %v, want {1 0.25}", curve[0])
	}
	if curve[1].Size != 3 || curve[1].CumFrac != 1 {
		t.Fatalf("second point %v, want {3 1}", curve[1])
	}
}

func TestTrafficBySizeEmpty(t *testing.T) {
	part := cluster.New(2)
	if c := TrafficBySize(part, Placement{Weight: []float64{0, 0}}); c != nil {
		t.Fatal("zero-volume placement should produce nil curve")
	}
}

func TestAverageTrafficBySize(t *testing.T) {
	c1 := []TrafficBySizePoint{{Size: 1, CumFrac: 1}}
	c2 := []TrafficBySizePoint{{Size: 2, CumFrac: 1}}
	avg := AverageTrafficBySize([][]TrafficBySizePoint{c1, c2}, 3)
	if len(avg) != 3 {
		t.Fatalf("avg %v", avg)
	}
	if avg[0].CumFrac != 0.5 { // only c1 has mass at size 1
		t.Fatalf("avg at 1 = %v, want 0.5", avg[0].CumFrac)
	}
	if avg[1].CumFrac != 1 || avg[2].CumFrac != 1 {
		t.Fatalf("avg tail %v, want 1", avg[1:])
	}
}

func TestAverageTrafficBySizeEmpty(t *testing.T) {
	if got := AverageTrafficBySize(nil, 5); got != nil {
		t.Fatal("empty input should be nil")
	}
}

func TestLocalizeSingleSource(t *testing.T) {
	// 4 sources; three configs whose catchments separate everyone.
	catchments := [][]bgp.LinkID{
		{0, 0, 1, 1},
		{0, 1, 0, 1},
		{1, 0, 0, 0},
	}
	p := Placement{Weight: []float64{0, 0, 1, 0}} // source 2 attacks
	volumes := make([][]float64, len(catchments))
	for c := range catchments {
		volumes[c] = LinkVolumes(catchments[c], p, 2)
	}
	cands := Localize(catchments, volumes)
	if len(cands) != 1 || cands[0] != 2 {
		t.Fatalf("candidates %v, want [2]", cands)
	}
	rep := Evaluate(cands, p)
	if rep.TruePositives != 1 || rep.Missed != 0 || rep.Candidates != 1 {
		t.Fatalf("report %+v", rep)
	}
}

func TestLocalizeNeverEliminatesTrueSources(t *testing.T) {
	rng := stats.NewRNG(9)
	const n, configs = 40, 12
	catchments := make([][]bgp.LinkID, configs)
	for c := range catchments {
		v := make([]bgp.LinkID, n)
		for k := range v {
			v[k] = bgp.LinkID(rng.Intn(4))
		}
		catchments[c] = v
	}
	p := PlacePareto(rng, n, 100)
	volumes := make([][]float64, configs)
	for c := range catchments {
		volumes[c] = LinkVolumes(catchments[c], p, 4)
	}
	rep := Evaluate(Localize(catchments, volumes), p)
	if rep.Missed != 0 {
		t.Fatalf("%d true sources eliminated; correlation must be sound", rep.Missed)
	}
}

func TestLocalizeUnknownCatchmentNotEliminated(t *testing.T) {
	catchments := [][]bgp.LinkID{{bgp.NoLink, 0}}
	p := Placement{Weight: []float64{0, 1}}
	volumes := [][]float64{LinkVolumes(catchments[0], p, 1)}
	cands := Localize(catchments, volumes)
	// Source 0 has unknown catchment: cannot be ruled out.
	if len(cands) != 2 {
		t.Fatalf("candidates %v, want both", cands)
	}
}

func TestLocalizeEmpty(t *testing.T) {
	if got := Localize(nil, nil); got != nil {
		t.Fatal("empty localization should be nil")
	}
}

func TestVolumeByClusterPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	VolumeByCluster(cluster.New(2), Placement{Weight: []float64{1}})
}
