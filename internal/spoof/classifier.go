package spoof

import (
	"fmt"
	"net/netip"
	"sync/atomic"

	"spooftrack/internal/addr"
	"spooftrack/internal/bgp"
	"spooftrack/internal/stats"
)

// This file implements the paper's second volume-estimation approach
// (§III-C): instead of a honeypot, "infer legitimate sources for each
// peering link and label all traffic received from other sources as
// spoofed" (Lichtblau et al., IMC 2017). The legitimate sources of link
// l are exactly its catchment: a packet whose (claimed) source address
// belongs to an AS in another link's catchment cannot have arrived on l
// legitimately.

// Verdict is a classification outcome.
type Verdict int

const (
	// VerdictLegit means the claimed source is consistent with the
	// ingress link.
	VerdictLegit Verdict = iota
	// VerdictSpoofed means the claimed source belongs to a different
	// link's catchment.
	VerdictSpoofed
	// VerdictUnknown means the source address cannot be mapped or its
	// AS has no known catchment.
	VerdictUnknown
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictLegit:
		return "legit"
	case VerdictSpoofed:
		return "spoofed"
	case VerdictUnknown:
		return "unknown"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// SAVSignal is the per-AS spoofability signal an active probing pass
// (internal/probe) derives: whether the network's outbound
// source-address validation would let it originate spoofed traffic.
// Only high-confidence probe verdicts should be promoted into signals;
// everything else stays SAVNoData.
type SAVSignal int8

const (
	// SAVNoData means the probe channel has no (confident) verdict.
	SAVNoData SAVSignal = iota
	// SAVCanSpoof means a spoofed probe escaped the network: it can
	// originate spoofed traffic (no outbound SAV / BCP38).
	SAVCanSpoof
	// SAVCannotSpoof means spoofed probes were filtered while control
	// probes answered: outbound SAV is deployed.
	SAVCannotSpoof
)

// String names the signal.
func (s SAVSignal) String() string {
	switch s {
	case SAVNoData:
		return "no_data"
	case SAVCanSpoof:
		return "can_spoof"
	case SAVCannotSpoof:
		return "cannot_spoof"
	default:
		return fmt.Sprintf("SAVSignal(%d)", int(s))
	}
}

// ProbeChannel is the second evidence channel active probing feeds the
// classifier: an independently measured ingress link per AS (the link a
// probed network's replies actually arrived on) and a per-AS
// spoofability signal. Both are indexed by dense topology index, like
// the classifier's catchment vector; bgp.NoLink / SAVNoData mark ASes
// the probing pass has no evidence for.
type ProbeChannel struct {
	Link   []bgp.LinkID
	Signal []SAVSignal
}

// ChannelSource records which evidence channels produced a merged
// verdict — the audit trail that makes two-channel classification
// reviewable.
type ChannelSource int8

const (
	// ChanNone: neither channel had evidence for the claimed source.
	ChanNone ChannelSource = iota
	// ChanCatchment: only the campaign catchment channel had evidence.
	ChanCatchment
	// ChanProbe: only the probe channel had evidence.
	ChanProbe
	// ChanAgree: both channels had evidence and named the same link.
	ChanAgree
	// ChanConflict: the channels named different expected links.
	ChanConflict
)

// String names the channel source as used in metrics labels.
func (c ChannelSource) String() string {
	switch c {
	case ChanNone:
		return "none"
	case ChanCatchment:
		return "catchment_only"
	case ChanProbe:
		return "probe_only"
	case ChanAgree:
		return "agree"
	case ChanConflict:
		return "conflict"
	default:
		return fmt.Sprintf("ChannelSource(%d)", int(c))
	}
}

const numChannelSources = int(ChanConflict) + 1

// ChannelStats counts merged classifications by evidence source.
type ChannelStats struct {
	None, CatchmentOnly, ProbeOnly, Agree, Conflict int64
}

// Classifier labels ingress traffic using a configuration's catchments.
type Classifier struct {
	// catchment[i] is the expected ingress link of the AS at dense
	// topology index i.
	catchment []bgp.LinkID
	mapper    addr.Mapper

	// probe is the optional second evidence channel; nil until
	// SetProbeChannel installs one. chanCounts audits ClassifyMerged.
	probe      *ProbeChannel
	chanCounts [numChannelSources]atomic.Int64
}

// NewClassifier builds a classifier from a per-AS catchment vector
// (dense topology indexing, as produced by bgp.Outcome.CatchmentVector
// or measured inference) and an IP-to-AS mapper.
func NewClassifier(catchment []bgp.LinkID, mapper addr.Mapper) *Classifier {
	return &Classifier{catchment: catchment, mapper: mapper}
}

// Classify labels one packet by its claimed source address and ingress
// link.
func (c *Classifier) Classify(src netip.Addr, ingress bgp.LinkID) Verdict {
	as, ok := c.mapper.Map(src)
	if !ok || as >= len(c.catchment) {
		return VerdictUnknown
	}
	expected := c.catchment[as]
	if expected == bgp.NoLink {
		return VerdictUnknown
	}
	if expected == ingress {
		return VerdictLegit
	}
	return VerdictSpoofed
}

// SetProbeChannel installs (or, with nil, removes) the active-probing
// evidence channel. Install before classification starts; ClassifyMerged
// reads it without locking.
func (c *Classifier) SetProbeChannel(pc *ProbeChannel) { c.probe = pc }

// ClassifyMerged labels one packet using both evidence channels, with
// the following precedence rules (also DESIGN.md §5.5):
//
//  1. If neither channel knows the claimed source's AS, the verdict is
//     VerdictUnknown (ChanNone).
//  2. If exactly one channel has an expected link, that channel decides
//     (ChanCatchment / ChanProbe). The probe channel therefore recovers
//     packets the catchment channel alone would leave VerdictUnknown.
//  3. If both channels agree on the expected link, the shared
//     expectation decides (ChanAgree).
//  4. If the channels conflict (different expected links), the packet is
//     VerdictSpoofed only when the ingress matches *neither* channel
//     (ChanConflict): a packet corroborated by either evidence channel
//     is never labeled spoofed on the other's say-so, keeping the
//     false-positive direction conservative under route drift.
//
// The SAV spoofability signals ride the same channel but do not alter
// per-packet verdicts — a claimed source's own filtering says nothing
// about who forged its address; they gate candidate sets in attribution
// (FilterCandidatesBySAV).
func (c *Classifier) ClassifyMerged(src netip.Addr, ingress bgp.LinkID) (Verdict, ChannelSource) {
	as, ok := c.mapper.Map(src)
	if !ok {
		c.chanCounts[ChanNone].Add(1)
		return VerdictUnknown, ChanNone
	}
	e1, e2 := bgp.NoLink, bgp.NoLink
	if as < len(c.catchment) {
		e1 = c.catchment[as]
	}
	if c.probe != nil && as < len(c.probe.Link) {
		e2 = c.probe.Link[as]
	}
	verdictOf := func(expected bgp.LinkID) Verdict {
		if expected == ingress {
			return VerdictLegit
		}
		return VerdictSpoofed
	}
	var v Verdict
	var chanSrc ChannelSource
	switch {
	case e1 == bgp.NoLink && e2 == bgp.NoLink:
		v, chanSrc = VerdictUnknown, ChanNone
	case e2 == bgp.NoLink:
		v, chanSrc = verdictOf(e1), ChanCatchment
	case e1 == bgp.NoLink:
		v, chanSrc = verdictOf(e2), ChanProbe
	case e1 == e2:
		v, chanSrc = verdictOf(e1), ChanAgree
	default:
		chanSrc = ChanConflict
		if e1 == ingress || e2 == ingress {
			v = VerdictLegit
		} else {
			v = VerdictSpoofed
		}
	}
	c.chanCounts[chanSrc].Add(1)
	return v, chanSrc
}

// ChannelStats returns the cumulative ClassifyMerged audit counts.
func (c *Classifier) ChannelStats() ChannelStats {
	return ChannelStats{
		None:          c.chanCounts[ChanNone].Load(),
		CatchmentOnly: c.chanCounts[ChanCatchment].Load(),
		ProbeOnly:     c.chanCounts[ChanProbe].Load(),
		Agree:         c.chanCounts[ChanAgree].Load(),
		Conflict:      c.chanCounts[ChanConflict].Load(),
	}
}

// FilterCandidatesBySAV splits catchment-attribution candidates by the
// probe channel's spoofability signals: a candidate whose network is
// confirmed unable to emit spoofed traffic (SAVCannotSpoof) cannot be
// the origin and moves to the conflicted list; everything else —
// corroborated (SAVCanSpoof) or unprobed (SAVNoData) — is kept.
// candidates hold source positions; sources maps positions to dense
// topology indices (signal is indexed by the latter). The conflicted
// list is the agreement/conflict audit trail between the passive and
// active channels at attribution level: it is returned, not discarded.
func FilterCandidatesBySAV(candidates []int, sources []int, signal []SAVSignal) (kept, conflicted []int) {
	for _, k := range candidates {
		excluded := false
		if k >= 0 && k < len(sources) {
			if as := sources[k]; as >= 0 && as < len(signal) && signal[as] == SAVCannotSpoof {
				excluded = true
			}
		}
		if excluded {
			conflicted = append(conflicted, k)
		} else {
			kept = append(kept, k)
		}
	}
	return kept, conflicted
}

// FlowSample is one observed packet for classifier evaluation.
type FlowSample struct {
	// Src is the (possibly forged) source address.
	Src netip.Addr
	// Ingress is the peering link the packet arrived on.
	Ingress bgp.LinkID
	// Spoofed is the ground truth.
	Spoofed bool
}

// TrafficParams configures synthetic mixed traffic generation.
type TrafficParams struct {
	// NumLegit and NumSpoofed are the flow counts to generate.
	NumLegit, NumSpoofed int
	// AttackerAS is the dense index of the AS originating spoofed
	// flows; its packets enter on its own catchment link but claim
	// other networks' addresses.
	AttackerAS int
}

// GenerateTraffic synthesizes a classifier evaluation workload against
// the true catchments: legitimate flows from random routed ASes arriving
// on their catchment links, plus spoofed flows from the attacker AS
// claiming random other ASes' addresses.
func GenerateTraffic(rng *stats.RNG, catchment []bgp.LinkID, space *addr.Space, p TrafficParams) ([]FlowSample, error) {
	var routed []int
	for i, l := range catchment {
		if l != bgp.NoLink {
			routed = append(routed, i)
		}
	}
	if len(routed) == 0 {
		return nil, fmt.Errorf("spoof: no routed ASes to generate traffic from")
	}
	if p.AttackerAS < 0 || p.AttackerAS >= len(catchment) || catchment[p.AttackerAS] == bgp.NoLink {
		return nil, fmt.Errorf("spoof: attacker AS %d has no route", p.AttackerAS)
	}
	flows := make([]FlowSample, 0, p.NumLegit+p.NumSpoofed)
	for k := 0; k < p.NumLegit; k++ {
		as := routed[rng.Intn(len(routed))]
		flows = append(flows, FlowSample{
			Src:     space.HostAddr(as, k),
			Ingress: catchment[as],
			Spoofed: false,
		})
	}
	attackerLink := catchment[p.AttackerAS]
	for k := 0; k < p.NumSpoofed; k++ {
		claimed := routed[rng.Intn(len(routed))]
		flows = append(flows, FlowSample{
			Src:     space.HostAddr(claimed, k),
			Ingress: attackerLink,
			Spoofed: true,
		})
	}
	rng.Shuffle(len(flows), func(i, j int) { flows[i], flows[j] = flows[j], flows[i] })
	return flows, nil
}

// ClassifierReport aggregates evaluation counts.
type ClassifierReport struct {
	TruePositives  int // spoofed flows labeled spoofed
	FalsePositives int // legitimate flows labeled spoofed
	TrueNegatives  int // legitimate flows labeled legit
	FalseNegatives int // spoofed flows labeled legit
	Unknown        int // flows the classifier could not judge
}

// Precision returns TP / (TP + FP), or 0 with no positives.
func (r ClassifierReport) Precision() float64 {
	d := r.TruePositives + r.FalsePositives
	if d == 0 {
		return 0
	}
	return float64(r.TruePositives) / float64(d)
}

// Recall returns TP / (TP + FN), or 0 with no spoofed flows.
func (r ClassifierReport) Recall() float64 {
	d := r.TruePositives + r.FalseNegatives
	if d == 0 {
		return 0
	}
	return float64(r.TruePositives) / float64(d)
}

// EvaluateClassifier runs the classifier over the flows and tallies the
// confusion matrix. Unknown verdicts are counted separately and excluded
// from precision/recall.
func EvaluateClassifier(c *Classifier, flows []FlowSample) ClassifierReport {
	var r ClassifierReport
	for _, f := range flows {
		switch c.Classify(f.Src, f.Ingress) {
		case VerdictSpoofed:
			if f.Spoofed {
				r.TruePositives++
			} else {
				r.FalsePositives++
			}
		case VerdictLegit:
			if f.Spoofed {
				r.FalseNegatives++
			} else {
				r.TrueNegatives++
			}
		default:
			r.Unknown++
		}
	}
	return r
}
