package spoof

import (
	"fmt"
	"net/netip"

	"spooftrack/internal/addr"
	"spooftrack/internal/bgp"
	"spooftrack/internal/stats"
)

// This file implements the paper's second volume-estimation approach
// (§III-C): instead of a honeypot, "infer legitimate sources for each
// peering link and label all traffic received from other sources as
// spoofed" (Lichtblau et al., IMC 2017). The legitimate sources of link
// l are exactly its catchment: a packet whose (claimed) source address
// belongs to an AS in another link's catchment cannot have arrived on l
// legitimately.

// Verdict is a classification outcome.
type Verdict int

const (
	// VerdictLegit means the claimed source is consistent with the
	// ingress link.
	VerdictLegit Verdict = iota
	// VerdictSpoofed means the claimed source belongs to a different
	// link's catchment.
	VerdictSpoofed
	// VerdictUnknown means the source address cannot be mapped or its
	// AS has no known catchment.
	VerdictUnknown
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictLegit:
		return "legit"
	case VerdictSpoofed:
		return "spoofed"
	case VerdictUnknown:
		return "unknown"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Classifier labels ingress traffic using a configuration's catchments.
type Classifier struct {
	// catchment[i] is the expected ingress link of the AS at dense
	// topology index i.
	catchment []bgp.LinkID
	mapper    addr.Mapper
}

// NewClassifier builds a classifier from a per-AS catchment vector
// (dense topology indexing, as produced by bgp.Outcome.CatchmentVector
// or measured inference) and an IP-to-AS mapper.
func NewClassifier(catchment []bgp.LinkID, mapper addr.Mapper) *Classifier {
	return &Classifier{catchment: catchment, mapper: mapper}
}

// Classify labels one packet by its claimed source address and ingress
// link.
func (c *Classifier) Classify(src netip.Addr, ingress bgp.LinkID) Verdict {
	as, ok := c.mapper.Map(src)
	if !ok || as >= len(c.catchment) {
		return VerdictUnknown
	}
	expected := c.catchment[as]
	if expected == bgp.NoLink {
		return VerdictUnknown
	}
	if expected == ingress {
		return VerdictLegit
	}
	return VerdictSpoofed
}

// FlowSample is one observed packet for classifier evaluation.
type FlowSample struct {
	// Src is the (possibly forged) source address.
	Src netip.Addr
	// Ingress is the peering link the packet arrived on.
	Ingress bgp.LinkID
	// Spoofed is the ground truth.
	Spoofed bool
}

// TrafficParams configures synthetic mixed traffic generation.
type TrafficParams struct {
	// NumLegit and NumSpoofed are the flow counts to generate.
	NumLegit, NumSpoofed int
	// AttackerAS is the dense index of the AS originating spoofed
	// flows; its packets enter on its own catchment link but claim
	// other networks' addresses.
	AttackerAS int
}

// GenerateTraffic synthesizes a classifier evaluation workload against
// the true catchments: legitimate flows from random routed ASes arriving
// on their catchment links, plus spoofed flows from the attacker AS
// claiming random other ASes' addresses.
func GenerateTraffic(rng *stats.RNG, catchment []bgp.LinkID, space *addr.Space, p TrafficParams) ([]FlowSample, error) {
	var routed []int
	for i, l := range catchment {
		if l != bgp.NoLink {
			routed = append(routed, i)
		}
	}
	if len(routed) == 0 {
		return nil, fmt.Errorf("spoof: no routed ASes to generate traffic from")
	}
	if p.AttackerAS < 0 || p.AttackerAS >= len(catchment) || catchment[p.AttackerAS] == bgp.NoLink {
		return nil, fmt.Errorf("spoof: attacker AS %d has no route", p.AttackerAS)
	}
	flows := make([]FlowSample, 0, p.NumLegit+p.NumSpoofed)
	for k := 0; k < p.NumLegit; k++ {
		as := routed[rng.Intn(len(routed))]
		flows = append(flows, FlowSample{
			Src:     space.HostAddr(as, k),
			Ingress: catchment[as],
			Spoofed: false,
		})
	}
	attackerLink := catchment[p.AttackerAS]
	for k := 0; k < p.NumSpoofed; k++ {
		claimed := routed[rng.Intn(len(routed))]
		flows = append(flows, FlowSample{
			Src:     space.HostAddr(claimed, k),
			Ingress: attackerLink,
			Spoofed: true,
		})
	}
	rng.Shuffle(len(flows), func(i, j int) { flows[i], flows[j] = flows[j], flows[i] })
	return flows, nil
}

// ClassifierReport aggregates evaluation counts.
type ClassifierReport struct {
	TruePositives  int // spoofed flows labeled spoofed
	FalsePositives int // legitimate flows labeled spoofed
	TrueNegatives  int // legitimate flows labeled legit
	FalseNegatives int // spoofed flows labeled legit
	Unknown        int // flows the classifier could not judge
}

// Precision returns TP / (TP + FP), or 0 with no positives.
func (r ClassifierReport) Precision() float64 {
	d := r.TruePositives + r.FalsePositives
	if d == 0 {
		return 0
	}
	return float64(r.TruePositives) / float64(d)
}

// Recall returns TP / (TP + FN), or 0 with no spoofed flows.
func (r ClassifierReport) Recall() float64 {
	d := r.TruePositives + r.FalseNegatives
	if d == 0 {
		return 0
	}
	return float64(r.TruePositives) / float64(d)
}

// EvaluateClassifier runs the classifier over the flows and tallies the
// confusion matrix. Unknown verdicts are counted separately and excluded
// from precision/recall.
func EvaluateClassifier(c *Classifier, flows []FlowSample) ClassifierReport {
	var r ClassifierReport
	for _, f := range flows {
		switch c.Classify(f.Src, f.Ingress) {
		case VerdictSpoofed:
			if f.Spoofed {
				r.TruePositives++
			} else {
				r.FalsePositives++
			}
		case VerdictLegit:
			if f.Spoofed {
				r.FalseNegatives++
			} else {
				r.TrueNegatives++
			}
		default:
			r.Unknown++
		}
	}
	return r
}
