package spoof

import (
	"testing"

	"spooftrack/internal/addr"
	"spooftrack/internal/bgp"
	"spooftrack/internal/peering"
	"spooftrack/internal/stats"
	"spooftrack/internal/topo"
)

// classifierWorld builds a topology, platform, catchments and address
// space for classifier tests.
func classifierWorld(t *testing.T, seed uint64) ([]bgp.LinkID, *addr.Space, *topo.Graph) {
	t.Helper()
	p := topo.DefaultGenParams(seed)
	p.NumASes = 800
	g, err := topo.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	plat, err := peering.New(g, peering.Options{EngineParams: bgp.DefaultParams(seed)})
	if err != nil {
		t.Fatal(err)
	}
	anns := make([]bgp.Announcement, plat.NumLinks())
	for i := range anns {
		anns[i] = bgp.Announcement{Link: bgp.LinkID(i)}
	}
	out, err := plat.Deploy(bgp.Config{Anns: anns})
	if err != nil {
		t.Fatal(err)
	}
	return out.CatchmentVector(), addr.Allocate(g), g
}

func TestClassifierVerdicts(t *testing.T) {
	catchment, space, g := classifierWorld(t, 81)
	c := NewClassifier(catchment, addr.PerfectMapper{Space: space})
	// A legitimate packet: source in its own catchment.
	for i := 0; i < g.NumASes(); i++ {
		if catchment[i] == bgp.NoLink {
			continue
		}
		if v := c.Classify(space.HostAddr(i, 0), catchment[i]); v != VerdictLegit {
			t.Fatalf("own-catchment packet classified %v", v)
		}
		// The same source claimed on a different link is spoofed.
		other := (catchment[i] + 1) % 7
		if v := c.Classify(space.HostAddr(i, 0), other); v != VerdictSpoofed {
			t.Fatalf("cross-catchment packet classified %v", v)
		}
		break
	}
	// Unmappable source.
	if v := c.Classify(addr.IXPAddr(1), 0); v != VerdictUnknown {
		t.Fatalf("IXP source classified %v", v)
	}
}

func TestClassifierPerfectMapperPerfectRecallish(t *testing.T) {
	catchment, space, _ := classifierWorld(t, 82)
	c := NewClassifier(catchment, addr.PerfectMapper{Space: space})
	rng := stats.NewRNG(1)
	// Pick an attacker with a route.
	attacker := -1
	for i, l := range catchment {
		if l != bgp.NoLink {
			attacker = i
			break
		}
	}
	flows, err := GenerateTraffic(rng, catchment, space, TrafficParams{
		NumLegit: 2000, NumSpoofed: 2000, AttackerAS: attacker,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := EvaluateClassifier(c, flows)
	// With perfect mapping and true catchments there are no false
	// positives: every legitimate flow matches its catchment.
	if rep.FalsePositives != 0 {
		t.Fatalf("%d false positives with perfect data", rep.FalsePositives)
	}
	// False negatives happen only when the claimed source shares the
	// attacker's link (structurally undetectable), so recall is the
	// fraction of address space outside the attacker's catchment.
	if rep.Recall() < 0.5 {
		t.Fatalf("recall %.2f implausibly low", rep.Recall())
	}
	if rep.Precision() != 1.0 {
		t.Fatalf("precision %.2f, want 1.0", rep.Precision())
	}
	if rep.Unknown != 0 {
		t.Fatalf("%d unknown flows with perfect mapper", rep.Unknown)
	}
}

func TestClassifierNoisyMapperDegrades(t *testing.T) {
	catchment, space, _ := classifierWorld(t, 83)
	noisy, err := addr.NewNoisyMapper(space, 0.3, 83)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClassifier(catchment, noisy)
	rng := stats.NewRNG(2)
	attacker := -1
	for i, l := range catchment {
		if l != bgp.NoLink {
			attacker = i
			break
		}
	}
	flows, err := GenerateTraffic(rng, catchment, space, TrafficParams{
		NumLegit: 2000, NumSpoofed: 0, AttackerAS: attacker,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := EvaluateClassifier(c, flows)
	// Heavy mapping noise must produce false positives on legit traffic.
	if rep.FalsePositives == 0 {
		t.Fatal("30% mapping noise produced no false positives")
	}
}

func TestGenerateTrafficValidation(t *testing.T) {
	catchment, space, _ := classifierWorld(t, 84)
	rng := stats.NewRNG(3)
	if _, err := GenerateTraffic(rng, []bgp.LinkID{bgp.NoLink}, space, TrafficParams{NumLegit: 1}); err == nil {
		t.Fatal("no routed ASes accepted")
	}
	if _, err := GenerateTraffic(rng, catchment, space, TrafficParams{AttackerAS: -1}); err == nil {
		t.Fatal("invalid attacker accepted")
	}
}

func TestClassifierReportMath(t *testing.T) {
	r := ClassifierReport{TruePositives: 8, FalsePositives: 2, FalseNegatives: 2}
	if r.Precision() != 0.8 {
		t.Fatalf("precision %v", r.Precision())
	}
	if r.Recall() != 0.8 {
		t.Fatalf("recall %v", r.Recall())
	}
	var zero ClassifierReport
	if zero.Precision() != 0 || zero.Recall() != 0 {
		t.Fatal("zero report should have zero rates")
	}
}

func TestVerdictString(t *testing.T) {
	if VerdictLegit.String() != "legit" || VerdictSpoofed.String() != "spoofed" || VerdictUnknown.String() != "unknown" {
		t.Fatal("verdict names wrong")
	}
	if Verdict(9).String() == "" {
		t.Fatal("unknown verdict should render")
	}
}
