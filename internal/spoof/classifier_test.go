package spoof

import (
	"net/netip"
	"reflect"
	"testing"

	"spooftrack/internal/addr"
	"spooftrack/internal/bgp"
	"spooftrack/internal/peering"
	"spooftrack/internal/stats"
	"spooftrack/internal/topo"
)

// classifierWorld builds a topology, platform, catchments and address
// space for classifier tests.
func classifierWorld(t *testing.T, seed uint64) ([]bgp.LinkID, *addr.Space, *topo.Graph) {
	t.Helper()
	p := topo.DefaultGenParams(seed)
	p.NumASes = 800
	g, err := topo.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	plat, err := peering.New(g, peering.Options{EngineParams: bgp.DefaultParams(seed)})
	if err != nil {
		t.Fatal(err)
	}
	anns := make([]bgp.Announcement, plat.NumLinks())
	for i := range anns {
		anns[i] = bgp.Announcement{Link: bgp.LinkID(i)}
	}
	out, err := plat.Deploy(bgp.Config{Anns: anns})
	if err != nil {
		t.Fatal(err)
	}
	return out.CatchmentVector(), addr.Allocate(g), g
}

func TestClassifierVerdicts(t *testing.T) {
	catchment, space, g := classifierWorld(t, 81)
	c := NewClassifier(catchment, addr.PerfectMapper{Space: space})
	// A legitimate packet: source in its own catchment.
	for i := 0; i < g.NumASes(); i++ {
		if catchment[i] == bgp.NoLink {
			continue
		}
		if v := c.Classify(space.HostAddr(i, 0), catchment[i]); v != VerdictLegit {
			t.Fatalf("own-catchment packet classified %v", v)
		}
		// The same source claimed on a different link is spoofed.
		other := (catchment[i] + 1) % 7
		if v := c.Classify(space.HostAddr(i, 0), other); v != VerdictSpoofed {
			t.Fatalf("cross-catchment packet classified %v", v)
		}
		break
	}
	// Unmappable source.
	if v := c.Classify(addr.IXPAddr(1), 0); v != VerdictUnknown {
		t.Fatalf("IXP source classified %v", v)
	}
}

func TestClassifierPerfectMapperPerfectRecallish(t *testing.T) {
	catchment, space, _ := classifierWorld(t, 82)
	c := NewClassifier(catchment, addr.PerfectMapper{Space: space})
	rng := stats.NewRNG(1)
	// Pick an attacker with a route.
	attacker := -1
	for i, l := range catchment {
		if l != bgp.NoLink {
			attacker = i
			break
		}
	}
	flows, err := GenerateTraffic(rng, catchment, space, TrafficParams{
		NumLegit: 2000, NumSpoofed: 2000, AttackerAS: attacker,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := EvaluateClassifier(c, flows)
	// With perfect mapping and true catchments there are no false
	// positives: every legitimate flow matches its catchment.
	if rep.FalsePositives != 0 {
		t.Fatalf("%d false positives with perfect data", rep.FalsePositives)
	}
	// False negatives happen only when the claimed source shares the
	// attacker's link (structurally undetectable), so recall is the
	// fraction of address space outside the attacker's catchment.
	if rep.Recall() < 0.5 {
		t.Fatalf("recall %.2f implausibly low", rep.Recall())
	}
	if rep.Precision() != 1.0 {
		t.Fatalf("precision %.2f, want 1.0", rep.Precision())
	}
	if rep.Unknown != 0 {
		t.Fatalf("%d unknown flows with perfect mapper", rep.Unknown)
	}
}

func TestClassifierNoisyMapperDegrades(t *testing.T) {
	catchment, space, _ := classifierWorld(t, 83)
	noisy, err := addr.NewNoisyMapper(space, 0.3, 83)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClassifier(catchment, noisy)
	rng := stats.NewRNG(2)
	attacker := -1
	for i, l := range catchment {
		if l != bgp.NoLink {
			attacker = i
			break
		}
	}
	flows, err := GenerateTraffic(rng, catchment, space, TrafficParams{
		NumLegit: 2000, NumSpoofed: 0, AttackerAS: attacker,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := EvaluateClassifier(c, flows)
	// Heavy mapping noise must produce false positives on legit traffic.
	if rep.FalsePositives == 0 {
		t.Fatal("30% mapping noise produced no false positives")
	}
}

// fixedMapper maps a handful of addresses to dense AS indices, for
// precise control over the merge table below.
type fixedMapper map[netip.Addr]int

func (m fixedMapper) Map(ip netip.Addr) (int, bool) {
	as, ok := m[ip]
	return as, ok
}

// TestClassifyMergedPrecedence pins the documented two-channel
// precedence rules: probe evidence agreeing with, contradicting, and
// absent from catchment evidence, in every ingress position.
func TestClassifyMergedPrecedence(t *testing.T) {
	// Five ASes: 0 known to both channels (agreeing), 1 known only to the
	// catchment channel, 2 known only to the probe channel, 3 known to
	// both but conflicting (catchment says link 0, probe says link 1),
	// 4 unknown to both.
	addrOf := func(as int) netip.Addr {
		return netip.AddrFrom4([4]byte{10, 0, byte(as), 1})
	}
	mapper := fixedMapper{}
	for as := 0; as < 5; as++ {
		mapper[addrOf(as)] = as
	}
	catchment := []bgp.LinkID{0, 1, bgp.NoLink, 0, bgp.NoLink}
	probeLink := []bgp.LinkID{0, bgp.NoLink, 2, 1, bgp.NoLink}
	c := NewClassifier(catchment, mapper)
	c.SetProbeChannel(&ProbeChannel{Link: probeLink})

	cases := []struct {
		name    string
		as      int
		ingress bgp.LinkID
		want    Verdict
		source  ChannelSource
	}{
		// Rule 3: channels agree → shared expectation decides.
		{"agree-legit", 0, 0, VerdictLegit, ChanAgree},
		{"agree-spoofed", 0, 2, VerdictSpoofed, ChanAgree},
		// Rule 2: catchment only → unchanged single-channel behaviour.
		{"catchment-only-legit", 1, 1, VerdictLegit, ChanCatchment},
		{"catchment-only-spoofed", 1, 0, VerdictSpoofed, ChanCatchment},
		// Rule 2: probe only → previously-Unknown packets become
		// classifiable.
		{"probe-only-legit", 2, 2, VerdictLegit, ChanProbe},
		{"probe-only-spoofed", 2, 0, VerdictSpoofed, ChanProbe},
		// Rule 4: conflict → spoofed only when neither channel matches.
		{"conflict-catchment-matches", 3, 0, VerdictLegit, ChanConflict},
		{"conflict-probe-matches", 3, 1, VerdictLegit, ChanConflict},
		{"conflict-neither-matches", 3, 2, VerdictSpoofed, ChanConflict},
		// Rule 1: neither channel knows the AS.
		{"both-absent", 4, 0, VerdictUnknown, ChanNone},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v, src := c.ClassifyMerged(addrOf(tc.as), tc.ingress)
			if v != tc.want || src != tc.source {
				t.Fatalf("ClassifyMerged(as=%d, ingress=%d) = (%v, %v), want (%v, %v)",
					tc.as, tc.ingress, v, src, tc.want, tc.source)
			}
		})
	}
	// Unmapped addresses stay unknown and count as ChanNone.
	if v, src := c.ClassifyMerged(netip.AddrFrom4([4]byte{192, 0, 2, 1}), 0); v != VerdictUnknown || src != ChanNone {
		t.Fatalf("unmapped = (%v, %v)", v, src)
	}
	st := c.ChannelStats()
	want := ChannelStats{None: 2, CatchmentOnly: 2, ProbeOnly: 2, Agree: 2, Conflict: 3}
	if st != want {
		t.Fatalf("ChannelStats = %+v, want %+v", st, want)
	}
}

// TestClassifyMergedWithoutProbeChannel: with no probe channel installed
// ClassifyMerged reduces exactly to Classify.
func TestClassifyMergedWithoutProbeChannel(t *testing.T) {
	catchment, space, g := classifierWorld(t, 85)
	c := NewClassifier(catchment, addr.PerfectMapper{Space: space})
	for i := 0; i < g.NumASes(); i += 7 {
		for l := bgp.LinkID(0); l < 7; l++ {
			v1 := c.Classify(space.HostAddr(i, 0), l)
			v2, src := c.ClassifyMerged(space.HostAddr(i, 0), l)
			if v1 != v2 {
				t.Fatalf("AS %d link %d: Classify=%v ClassifyMerged=%v", i, l, v1, v2)
			}
			if src != ChanCatchment && src != ChanNone {
				t.Fatalf("AS %d link %d: source %v without a probe channel", i, l, src)
			}
		}
	}
}

func TestFilterCandidatesBySAV(t *testing.T) {
	// Source positions 0..3 map to dense ASes 10..13.
	sources := []int{10, 11, 12, 13}
	signal := make([]SAVSignal, 20)
	signal[10] = SAVCanSpoof     // corroborated: kept
	signal[11] = SAVCannotSpoof  // confirmed filtered: conflicted
	signal[12] = SAVNoData       // unprobed: kept
	signal[13] = SAVCannotSpoof  // confirmed filtered: conflicted
	kept, conflicted := FilterCandidatesBySAV([]int{0, 1, 2, 3}, sources, signal)
	if !reflect.DeepEqual(kept, []int{0, 2}) {
		t.Fatalf("kept = %v, want [0 2]", kept)
	}
	if !reflect.DeepEqual(conflicted, []int{1, 3}) {
		t.Fatalf("conflicted = %v, want [1 3]", conflicted)
	}
	// Out-of-range positions and an empty signal vector keep everything.
	kept, conflicted = FilterCandidatesBySAV([]int{0, 7}, sources, nil)
	if len(kept) != 2 || conflicted != nil {
		t.Fatalf("no-signal filter = %v, %v", kept, conflicted)
	}
}

func TestBCP38FromVector(t *testing.T) {
	v := []bool{true, false, true}
	m := NewBCP38FromVector(v)
	if m.NumSources() != 3 || !m.Deployed(0) || m.Deployed(1) || !m.Deployed(2) {
		t.Fatalf("vector model wrong: %+v", m)
	}
	v[1] = true // the model must have copied
	if m.Deployed(1) {
		t.Fatal("NewBCP38FromVector aliased its input")
	}
	p := m.Filter(Placement{Weight: []float64{1, 1, 1}})
	if p.TotalVolume() != 1 {
		t.Fatalf("filtered volume %v, want 1 (only source 1 can spoof)", p.TotalVolume())
	}
}

func TestGenerateTrafficValidation(t *testing.T) {
	catchment, space, _ := classifierWorld(t, 84)
	rng := stats.NewRNG(3)
	if _, err := GenerateTraffic(rng, []bgp.LinkID{bgp.NoLink}, space, TrafficParams{NumLegit: 1}); err == nil {
		t.Fatal("no routed ASes accepted")
	}
	if _, err := GenerateTraffic(rng, catchment, space, TrafficParams{AttackerAS: -1}); err == nil {
		t.Fatal("invalid attacker accepted")
	}
}

func TestClassifierReportMath(t *testing.T) {
	r := ClassifierReport{TruePositives: 8, FalsePositives: 2, FalseNegatives: 2}
	if r.Precision() != 0.8 {
		t.Fatalf("precision %v", r.Precision())
	}
	if r.Recall() != 0.8 {
		t.Fatalf("recall %v", r.Recall())
	}
	var zero ClassifierReport
	if zero.Precision() != 0 || zero.Recall() != 0 {
		t.Fatal("zero report should have zero rates")
	}
}

func TestVerdictString(t *testing.T) {
	if VerdictLegit.String() != "legit" || VerdictSpoofed.String() != "spoofed" || VerdictUnknown.String() != "unknown" {
		t.Fatal("verdict names wrong")
	}
	if Verdict(9).String() == "" {
		t.Fatal("unknown verdict should render")
	}
}
