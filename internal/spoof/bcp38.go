package spoof

import (
	"fmt"
	"sort"

	"spooftrack/internal/bgp"
	"spooftrack/internal/stats"
)

// BCP38 (ingress filtering, RFC 2827) stops spoofed packets at their
// first hop. The paper's purpose is to find the networks that have NOT
// deployed it (§I); this file models partial deployment so remediation
// campaigns can be studied: hosts in deploying networks simply cannot
// contribute spoofed volume.

// BCP38Model tracks which source networks filter spoofed traffic.
type BCP38Model struct {
	deployed []bool
}

// NewBCP38Model marks a seeded random fraction of the n sources as
// deploying ingress filtering (measurement studies place real
// deployment around half to three quarters of networks).
func NewBCP38Model(n int, deployFrac float64, seed uint64) (*BCP38Model, error) {
	if deployFrac < 0 || deployFrac > 1 {
		return nil, fmt.Errorf("spoof: deployment fraction %v out of [0,1]", deployFrac)
	}
	rng := stats.NewRNG(seed ^ 0xbc938)
	m := &BCP38Model{deployed: make([]bool, n)}
	for i := range m.deployed {
		m.deployed[i] = rng.Bool(deployFrac)
	}
	return m, nil
}

// NewBCP38FromVector builds a model from an explicit per-source
// deployment vector — e.g. one inferred by active SAV probing
// (internal/probe) rather than seeded at random. The vector is copied.
func NewBCP38FromVector(deployed []bool) *BCP38Model {
	return &BCP38Model{deployed: append([]bool(nil), deployed...)}
}

// NumSources returns how many sources the model tracks.
func (m *BCP38Model) NumSources() int { return len(m.deployed) }

// Deployed reports whether source k filters spoofed traffic.
func (m *BCP38Model) Deployed(k int) bool { return m.deployed[k] }

// Deploy marks source k as filtering from now on (e.g., after a
// notification campaign reached its operator).
func (m *BCP38Model) Deploy(k int) { m.deployed[k] = true }

// DeployedFrac returns the fraction of sources filtering.
func (m *BCP38Model) DeployedFrac() float64 {
	n := 0
	for _, d := range m.deployed {
		if d {
			n++
		}
	}
	return float64(n) / float64(len(m.deployed))
}

// Filter zeroes the spoofed-traffic weight of every deploying source,
// returning the placement an attacker can actually realize.
func (m *BCP38Model) Filter(p Placement) Placement {
	out := Placement{Weight: append([]float64(nil), p.Weight...)}
	for k := range out.Weight {
		if k < len(m.deployed) && m.deployed[k] {
			out.Weight[k] = 0
		}
	}
	return out
}

// RemediationStep is one round of the notify-and-fix loop.
type RemediationStep struct {
	// Round counts from 1.
	Round int
	// NotifiedASCount is how many networks were notified this round.
	NotifiedASCount int
	// ResidualVolume is the spoofed volume still arriving afterwards.
	ResidualVolume float64
	// ResidualFrac is ResidualVolume over the initial volume.
	ResidualFrac float64
}

// Remediate runs the localization-driven notification loop the paper
// envisions: each round, correlate the currently realizable spoofed
// traffic with catchments, notify candidate networks' operators
// (modeled as BCP38 deployment), and measure the residual.
// notifyPerRound caps outreach per round to the candidates with the
// strongest volume evidence — a realistic notification budget; 0 means
// notify every candidate at once. The loop ends when the volume is
// gone, no further candidates can be found, or maxRounds is reached.
func Remediate(catchments [][]bgp.LinkID, p Placement, model *BCP38Model, numLinks, maxRounds, notifyPerRound int) []RemediationStep {
	initial := model.Filter(p).TotalVolume()
	var steps []RemediationStep
	if initial == 0 || len(catchments) == 0 {
		return steps
	}
	for round := 1; round <= maxRounds; round++ {
		realizable := model.Filter(p)
		if realizable.TotalVolume() == 0 {
			break
		}
		volumes := make([][]float64, len(catchments))
		for c := range catchments {
			volumes[c] = LinkVolumes(catchments[c], realizable, numLinks)
		}
		candidates := Localize(catchments, volumes)
		// Rank candidates by the mean volume share their links carried:
		// the same evidence an operator report would lead with.
		rankCandidatesByEvidence(candidates, catchments, volumes)
		step := RemediationStep{Round: round}
		for _, k := range candidates {
			if notifyPerRound > 0 && step.NotifiedASCount >= notifyPerRound {
				break
			}
			if !model.Deployed(k) {
				model.Deploy(k)
				step.NotifiedASCount++
			}
		}
		residual := model.Filter(p).TotalVolume()
		step.ResidualVolume = residual
		step.ResidualFrac = residual / initial
		steps = append(steps, step)
		if step.NotifiedASCount == 0 || residual == 0 {
			break
		}
	}
	return steps
}

// rankCandidatesByEvidence sorts candidate source positions by
// descending mean per-configuration volume share of their catchment
// links (ties by position for determinism).
func rankCandidatesByEvidence(candidates []int, catchments [][]bgp.LinkID, volumes [][]float64) {
	score := make(map[int]float64, len(candidates))
	for _, k := range candidates {
		sum, n := 0.0, 0
		for c := range catchments {
			l := catchments[c][k]
			if l == bgp.NoLink || int(l) >= len(volumes[c]) {
				continue
			}
			total := 0.0
			for _, v := range volumes[c] {
				total += v
			}
			if total > 0 {
				sum += volumes[c][l] / total
				n++
			}
		}
		if n > 0 {
			score[k] = sum / float64(n)
		}
	}
	sort.SliceStable(candidates, func(a, b int) bool {
		if score[candidates[a]] != score[candidates[b]] {
			return score[candidates[a]] > score[candidates[b]]
		}
		return candidates[a] < candidates[b]
	})
}
