package spoof

import (
	"testing"

	"spooftrack/internal/bgp"
	"spooftrack/internal/stats"
)

func TestBCP38ModelBasics(t *testing.T) {
	m, err := NewBCP38Model(1000, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	frac := m.DeployedFrac()
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("deployed fraction %.3f, want ~0.5", frac)
	}
	// Deploy is idempotent and monotone.
	for k := 0; k < 1000; k++ {
		m.Deploy(k)
	}
	if m.DeployedFrac() != 1 {
		t.Fatal("full deployment not reached")
	}
}

func TestBCP38ModelValidation(t *testing.T) {
	if _, err := NewBCP38Model(10, -0.1, 1); err == nil {
		t.Fatal("negative fraction accepted")
	}
	if _, err := NewBCP38Model(10, 1.1, 1); err == nil {
		t.Fatal("fraction > 1 accepted")
	}
}

func TestBCP38Filter(t *testing.T) {
	m, err := NewBCP38Model(4, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	m.Deploy(1)
	m.Deploy(3)
	p := Placement{Weight: []float64{1, 2, 3, 4}}
	got := m.Filter(p)
	if got.Weight[0] != 1 || got.Weight[1] != 0 || got.Weight[2] != 3 || got.Weight[3] != 0 {
		t.Fatalf("filtered %v", got.Weight)
	}
	// Original untouched.
	if p.Weight[1] != 2 {
		t.Fatal("input placement mutated")
	}
}

func TestRemediateDrivesVolumeToZero(t *testing.T) {
	// 8 sources fully separable by 3 configurations.
	catchments := [][]bgp.LinkID{
		{0, 0, 0, 0, 1, 1, 1, 1},
		{0, 0, 1, 1, 0, 0, 1, 1},
		{0, 1, 0, 1, 0, 1, 0, 1},
	}
	rng := stats.NewRNG(5)
	p := PlacePareto(rng, 8, 50)
	model, err := NewBCP38Model(8, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	steps := Remediate(catchments, p, model, 2, 10, 0)
	if len(steps) == 0 {
		t.Fatal("no remediation steps")
	}
	last := steps[len(steps)-1]
	if last.ResidualVolume != 0 {
		t.Fatalf("residual volume %v after %d rounds", last.ResidualVolume, last.Round)
	}
	// Residual fraction is non-increasing.
	prev := 1.0
	for _, s := range steps {
		if s.ResidualFrac > prev+1e-12 {
			t.Fatalf("residual increased at round %d", s.Round)
		}
		prev = s.ResidualFrac
	}
	// Fully separable sources: everything localized in one round.
	if steps[0].ResidualFrac != 0 {
		t.Logf("note: first round left %.2f (catchment overlap)", steps[0].ResidualFrac)
	}
}

func TestRemediatePartialSeparability(t *testing.T) {
	// One configuration only: clusters of 4; notification hits whole
	// clusters at once (the candidate set), volume still reaches zero
	// because candidates cover all active sources.
	catchments := [][]bgp.LinkID{{0, 0, 0, 0, 1, 1, 1, 1}}
	p := Placement{Weight: []float64{1, 0, 0, 0, 0, 0, 0, 1}}
	model, err := NewBCP38Model(8, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	steps := Remediate(catchments, p, model, 2, 5, 0)
	if len(steps) == 0 || steps[len(steps)-1].ResidualVolume != 0 {
		t.Fatalf("remediation failed: %+v", steps)
	}
	// The blunt one-config localization notifies every source in both
	// catchments (collateral notification).
	if steps[0].NotifiedASCount != 8 {
		t.Fatalf("notified %d, want all 8 (no separation available)", steps[0].NotifiedASCount)
	}
}

func TestRemediateAlreadyFiltered(t *testing.T) {
	catchments := [][]bgp.LinkID{{0, 1}}
	p := Placement{Weight: []float64{1, 1}}
	model, err := NewBCP38Model(2, 1.0, 4) // everyone filters already
	if err != nil {
		t.Fatal(err)
	}
	if steps := Remediate(catchments, p, model, 2, 5, 0); len(steps) != 0 {
		t.Fatalf("steps %v for fully filtered world", steps)
	}
}
