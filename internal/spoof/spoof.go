// Package spoof implements the paper's spoofed-traffic study (§III-C,
// §V-D): placing sources of spoofed traffic across ASes (uniform, Pareto
// 80/20, or a single source, as in Fig. 10), modeling per-peering-link
// honeypot volume measurements, attributing volume to clusters, and
// localizing the candidate source set by correlating traffic across
// configurations.
//
// All quantities are indexed by source position: the index of an AS in
// the campaign's source list (the ASes observed in the baseline
// configuration), matching package cluster.
package spoof

import (
	"fmt"
	"sort"

	"spooftrack/internal/bgp"
	"spooftrack/internal/cluster"
	"spooftrack/internal/stats"
)

// Placement is a spoofed-traffic source placement: Weight[k] is the
// traffic volume originated by source k (proportional to the number of
// compromised hosts there, per §V-D's model).
type Placement struct {
	Weight []float64
}

// TotalVolume returns the sum of all weights.
func (p Placement) TotalVolume() float64 {
	t := 0.0
	for _, w := range p.Weight {
		t += w
	}
	return t
}

// NumActive returns how many sources have non-zero weight.
func (p Placement) NumActive() int {
	n := 0
	for _, w := range p.Weight {
		if w > 0 {
			n++
		}
	}
	return n
}

// PlaceUniform distributes nBots spoofing hosts uniformly at random
// across the nSources source ASes.
func PlaceUniform(rng *stats.RNG, nSources, nBots int) Placement {
	w := make([]float64, nSources)
	for b := 0; b < nBots; b++ {
		w[rng.Intn(nSources)]++
	}
	return Placement{Weight: w}
}

// PlacePareto distributes nBots hosts across source ASes with per-AS
// attractiveness drawn from a Pareto distribution shaped so that 80% of
// hosts land in 20% of ASes (§V-D).
func PlacePareto(rng *stats.RNG, nSources, nBots int) Placement {
	attract := make([]float64, nSources)
	total := 0.0
	for i := range attract {
		attract[i] = rng.Pareto(1, stats.ParetoShape8020)
		total += attract[i]
	}
	w := make([]float64, nSources)
	for b := 0; b < nBots; b++ {
		target := rng.Float64() * total
		acc := 0.0
		for i, a := range attract {
			acc += a
			if target < acc {
				w[i]++
				break
			}
		}
	}
	return Placement{Weight: w}
}

// PlaceSingle puts all traffic in one uniformly chosen source AS — the
// common amplification-attack case reported by AmpPot (§V-D).
func PlaceSingle(rng *stats.RNG, nSources int) Placement {
	w := make([]float64, nSources)
	w[rng.Intn(nSources)] = 1
	return Placement{Weight: w}
}

// LinkVolumes models the honeypot measurement for one configuration:
// the spoofed-traffic volume arriving on each peering link is the sum of
// the weights of the sources routed to it. Sources with no catchment
// (bgp.NoLink) contribute nowhere. numLinks sizes the result.
func LinkVolumes(catchment []bgp.LinkID, p Placement, numLinks int) []float64 {
	if len(catchment) != len(p.Weight) {
		panic(fmt.Sprintf("spoof: %d catchments for %d sources", len(catchment), len(p.Weight)))
	}
	out := make([]float64, numLinks)
	for k, l := range catchment {
		if l != bgp.NoLink && int(l) < numLinks {
			out[l] += p.Weight[k]
		}
	}
	return out
}

// VolumeByCluster attributes placement volume to the clusters of a
// partition: result[c] is the total weight of sources in cluster c.
func VolumeByCluster(part *cluster.Partition, p Placement) []float64 {
	if part.NumSources() != len(p.Weight) {
		panic(fmt.Sprintf("spoof: %d sources in partition, %d weights", part.NumSources(), len(p.Weight)))
	}
	out := make([]float64, part.NumClusters())
	for k, w := range p.Weight {
		out[part.ClusterOf(k)] += w
	}
	return out
}

// TrafficBySizePoint is one point of Fig. 10: the cumulative fraction of
// spoofed-traffic volume originated in clusters of size at most Size.
type TrafficBySizePoint struct {
	Size    int
	CumFrac float64
}

// TrafficBySize computes the Fig. 10 curve for one placement over one
// partition.
func TrafficBySize(part *cluster.Partition, p Placement) []TrafficBySizePoint {
	total := p.TotalVolume()
	if total == 0 {
		return nil
	}
	sizes := part.Sizes()
	volBySize := make(map[int]float64)
	for k, w := range p.Weight {
		if w > 0 {
			volBySize[sizes[part.ClusterOf(k)]] += w
		}
	}
	keys := make([]int, 0, len(volBySize))
	for s := range volBySize {
		keys = append(keys, s)
	}
	sort.Ints(keys)
	out := make([]TrafficBySizePoint, 0, len(keys))
	acc := 0.0
	for _, s := range keys {
		acc += volBySize[s]
		out = append(out, TrafficBySizePoint{Size: s, CumFrac: acc / total})
	}
	return out
}

// AverageTrafficBySize averages Fig. 10 curves over many placements,
// evaluating each curve at every integer size up to maxSize.
func AverageTrafficBySize(curves [][]TrafficBySizePoint, maxSize int) []TrafficBySizePoint {
	if len(curves) == 0 {
		return nil
	}
	out := make([]TrafficBySizePoint, maxSize)
	for s := 1; s <= maxSize; s++ {
		sum := 0.0
		for _, curve := range curves {
			sum += evalCurve(curve, s)
		}
		out[s-1] = TrafficBySizePoint{Size: s, CumFrac: sum / float64(len(curves))}
	}
	return out
}

// evalCurve returns the cumulative fraction at the given size (step
// function semantics).
func evalCurve(curve []TrafficBySizePoint, size int) float64 {
	frac := 0.0
	for _, pt := range curve {
		if pt.Size > size {
			break
		}
		frac = pt.CumFrac
	}
	return frac
}

// Localize correlates per-configuration link volumes with catchments to
// identify candidate spoofing sources (§III's core idea): a source
// remains a candidate only if, in every configuration, the link its
// catchment maps to actually carried spoofed traffic. volumes[c][l] is
// the measured volume on link l in configuration c; catchments[c][k] is
// source k's catchment. Sources with unknown catchment in a
// configuration are not eliminated by it.
func Localize(catchments [][]bgp.LinkID, volumes [][]float64) []int {
	if len(catchments) == 0 {
		return nil
	}
	n := len(catchments[0])
	candidate := make([]bool, n)
	for k := range candidate {
		candidate[k] = true
	}
	const eps = 1e-12
	for c := range catchments {
		for k := 0; k < n; k++ {
			if !candidate[k] {
				continue
			}
			l := catchments[c][k]
			if l == bgp.NoLink {
				continue
			}
			if int(l) >= len(volumes[c]) || volumes[c][l] <= eps {
				candidate[k] = false
			}
		}
	}
	var out []int
	for k, ok := range candidate {
		if ok {
			out = append(out, k)
		}
	}
	return out
}

// LocalizeTolerant is Localize with slack for imperfect catchment maps
// (§V-C's stale-measurement reuse): a source stays a candidate as long
// as its catchment link carried traffic in all but at most maxMisses of
// the configurations where its catchment is known. maxMisses = 0 is
// exactly Localize.
func LocalizeTolerant(catchments [][]bgp.LinkID, volumes [][]float64, maxMisses int) []int {
	if len(catchments) == 0 {
		return nil
	}
	n := len(catchments[0])
	misses := make([]int, n)
	const eps = 1e-12
	for c := range catchments {
		for k := 0; k < n; k++ {
			l := catchments[c][k]
			if l == bgp.NoLink {
				continue
			}
			if int(l) >= len(volumes[c]) || volumes[c][l] <= eps {
				misses[k]++
			}
		}
	}
	var out []int
	for k := 0; k < n; k++ {
		if misses[k] <= maxMisses {
			out = append(out, k)
		}
	}
	return out
}

// LocalizationReport summarizes how well Localize narrowed down a known
// placement (for evaluation).
type LocalizationReport struct {
	// Candidates is the number of sources surviving correlation.
	Candidates int
	// TruePositives is how many actual sources are among candidates.
	TruePositives int
	// Missed is how many actual sources were wrongly eliminated.
	Missed int
}

// Evaluate compares a candidate set against the placement ground truth.
func Evaluate(candidates []int, p Placement) LocalizationReport {
	isCand := make(map[int]bool, len(candidates))
	for _, k := range candidates {
		isCand[k] = true
	}
	rep := LocalizationReport{Candidates: len(candidates)}
	for k, w := range p.Weight {
		if w <= 0 {
			continue
		}
		if isCand[k] {
			rep.TruePositives++
		} else {
			rep.Missed++
		}
	}
	return rep
}
