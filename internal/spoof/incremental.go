package spoof

import (
	"fmt"

	"spooftrack/internal/bgp"
)

// IncrementalLocalizer maintains the Localize / LocalizeTolerant
// candidate set online, one configuration round at a time, in
// O(sources) per round and O(sources) memory — the shape a long-running
// attribution daemon needs, where rounds arrive as the origin cycles
// configurations during an attack and the full volume history is never
// materialized.
type IncrementalLocalizer struct {
	misses []int
	rounds int
}

// NewIncrementalLocalizer tracks nSources sources with no rounds
// observed yet (every source is a candidate).
func NewIncrementalLocalizer(nSources int) *IncrementalLocalizer {
	return &IncrementalLocalizer{misses: make([]int, nSources)}
}

// AddRound folds in one configuration round: catchment[k] is source k's
// catchment under the deployed configuration, volumes[l] the spoofed
// volume measured on link l during the round. A source whose known
// catchment link carried no traffic accrues a miss; unknown catchments
// (bgp.NoLink) never eliminate, exactly as in Localize.
func (il *IncrementalLocalizer) AddRound(catchment []bgp.LinkID, volumes []float64) {
	if len(catchment) != len(il.misses) {
		panic(fmt.Sprintf("spoof: %d catchments for %d sources", len(catchment), len(il.misses)))
	}
	const eps = 1e-12
	for k, l := range catchment {
		if l == bgp.NoLink {
			continue
		}
		if int(l) >= len(volumes) || volumes[l] <= eps {
			il.misses[k]++
		}
	}
	il.rounds++
}

// Rounds returns how many rounds have been folded in.
func (il *IncrementalLocalizer) Rounds() int { return il.rounds }

// NumSources returns the size of the source universe.
func (il *IncrementalLocalizer) NumSources() int { return len(il.misses) }

// Candidates returns the sources with at most maxMisses misses, in
// index order — LocalizeTolerant's answer over all rounds so far
// (maxMisses = 0 matches Localize exactly).
func (il *IncrementalLocalizer) Candidates(maxMisses int) []int {
	var out []int
	for k, m := range il.misses {
		if m <= maxMisses {
			out = append(out, k)
		}
	}
	return out
}

// NumCandidates counts candidates without allocating.
func (il *IncrementalLocalizer) NumCandidates(maxMisses int) int {
	n := 0
	for _, m := range il.misses {
		if m <= maxMisses {
			n++
		}
	}
	return n
}

// IsCandidate reports whether source k survives at the given tolerance.
func (il *IncrementalLocalizer) IsCandidate(k, maxMisses int) bool {
	return il.misses[k] <= maxMisses
}
