package bgpwire

import (
	"bytes"
	"net/netip"
	"testing"

	"spooftrack/internal/topo"
)

// FuzzReadMessage exercises the BGP message parser: never panic;
// accepted messages of known types re-encode parseably.
func FuzzReadMessage(f *testing.F) {
	open, _ := MarshalOpen(&Open{AS: 4200000001, HoldTime: 90, BGPID: 7})
	f.Add(open)
	upd, _ := MarshalUpdate(&Update{
		Path:     []topo.ASN{47065},
		NextHop:  netip.MustParseAddr("203.0.113.1"),
		Prefixes: []netip.Prefix{netip.MustParsePrefix("198.51.100.0/24")},
	})
	f.Add(upd)
	f.Add(MarshalKeepalive())
	notif, _ := MarshalNotification(&Notification{Code: NotifCease})
	f.Add(notif)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 19))

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := ReadMessage(bytes.NewReader(data))
		if err != nil {
			return
		}
		var re []byte
		switch m := msg.(type) {
		case *Open:
			re, err = MarshalOpen(m)
		case *Update:
			re, err = MarshalUpdate(m)
		case *Notification:
			re, err = MarshalNotification(m)
		case Keepalive:
			re = MarshalKeepalive()
		}
		if err != nil {
			return // parsed but unencodable corner (e.g., empty path)
		}
		if _, err := ReadMessage(bytes.NewReader(re)); err != nil {
			t.Fatalf("re-encoded message unparseable: %v", err)
		}
	})
}
