package bgpwire

import (
	"fmt"
	"net"
	"sync"
	"time"

	"spooftrack/internal/topo"
)

// SessionState is the RFC 4271 §8 finite state machine position.
type SessionState int32

const (
	// StateIdle is the initial state.
	StateIdle SessionState = iota
	// StateOpenSent means our OPEN is out, awaiting the peer's.
	StateOpenSent
	// StateOpenConfirm means OPENs exchanged, awaiting KEEPALIVE.
	StateOpenConfirm
	// StateEstablished is a fully running session.
	StateEstablished
	// StateClosed is terminal.
	StateClosed
)

// String names the state.
func (s SessionState) String() string {
	switch s {
	case StateIdle:
		return "Idle"
	case StateOpenSent:
		return "OpenSent"
	case StateOpenConfirm:
		return "OpenConfirm"
	case StateEstablished:
		return "Established"
	case StateClosed:
		return "Closed"
	default:
		return fmt.Sprintf("SessionState(%d)", int32(s))
	}
}

// SessionConfig parameterizes a session endpoint.
type SessionConfig struct {
	// LocalAS and BGPID identify this speaker.
	LocalAS topo.ASN
	BGPID   uint32
	// HoldTime is the advertised hold time; keepalives go out at a
	// third of the negotiated value. Minimum 3s per RFC (tests use 3s).
	HoldTime time.Duration
	// UpdateBuffer sizes the received-updates channel (default 64).
	UpdateBuffer int
}

// Session is one established BGP session. Create with Dial (active
// side) or Accept (passive side).
type Session struct {
	conn    net.Conn
	cfg     SessionConfig
	peer    *Open
	updates chan *Update

	mu      sync.Mutex
	state   SessionState
	lastErr error
	closed  chan struct{}
	wg      sync.WaitGroup
}

// Dial opens a TCP connection to addr and runs the active-side handshake
// to Established.
func Dial(addr string, cfg SessionConfig) (*Session, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	return handshake(conn, cfg)
}

// Accept runs the passive-side handshake on an accepted connection.
func Accept(conn net.Conn, cfg SessionConfig) (*Session, error) {
	return handshake(conn, cfg)
}

// handshake is symmetric: both sides send OPEN, expect OPEN, send
// KEEPALIVE, expect KEEPALIVE (RFC 4271's collision-free case).
func handshake(conn net.Conn, cfg SessionConfig) (*Session, error) {
	if cfg.HoldTime < 3*time.Second {
		cfg.HoldTime = 90 * time.Second
	}
	if cfg.UpdateBuffer <= 0 {
		cfg.UpdateBuffer = 64
	}
	s := &Session{
		conn:    conn,
		cfg:     cfg,
		updates: make(chan *Update, cfg.UpdateBuffer),
		closed:  make(chan struct{}),
		state:   StateIdle,
	}
	deadline := time.Now().Add(cfg.HoldTime)
	_ = conn.SetDeadline(deadline)

	open, err := MarshalOpen(&Open{
		AS:       cfg.LocalAS,
		HoldTime: uint16(cfg.HoldTime / time.Second),
		BGPID:    cfg.BGPID,
	})
	if err != nil {
		conn.Close()
		return nil, err
	}
	if _, err := conn.Write(open); err != nil {
		conn.Close()
		return nil, err
	}
	s.setState(StateOpenSent)

	msg, err := ReadMessage(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("bgpwire: awaiting OPEN: %w", err)
	}
	peer, ok := msg.(*Open)
	if !ok {
		s.notifyAndClose(NotifFSMError, 0)
		return nil, fmt.Errorf("bgpwire: expected OPEN, got %T", msg)
	}
	if peer.HoldTime != 0 && time.Duration(peer.HoldTime)*time.Second < s.cfg.HoldTime {
		s.cfg.HoldTime = time.Duration(peer.HoldTime) * time.Second
	}
	s.peer = peer
	if _, err := conn.Write(MarshalKeepalive()); err != nil {
		conn.Close()
		return nil, err
	}
	s.setState(StateOpenConfirm)

	msg, err = ReadMessage(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("bgpwire: awaiting KEEPALIVE: %w", err)
	}
	if n, isNotif := msg.(*Notification); isNotif {
		conn.Close()
		return nil, n
	}
	if _, ok := msg.(Keepalive); !ok {
		s.notifyAndClose(NotifFSMError, 0)
		return nil, fmt.Errorf("bgpwire: expected KEEPALIVE, got %T", msg)
	}
	s.setState(StateEstablished)
	_ = conn.SetDeadline(time.Time{})

	s.wg.Add(2)
	go s.readLoop()
	go s.keepaliveLoop()
	return s, nil
}

// State returns the FSM position.
func (s *Session) State() SessionState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

func (s *Session) setState(st SessionState) {
	s.mu.Lock()
	s.state = st
	s.mu.Unlock()
}

// PeerAS returns the negotiated peer AS (four-octet capability applied).
func (s *Session) PeerAS() topo.ASN { return s.peer.AS }

// HoldTime returns the negotiated hold time.
func (s *Session) HoldTime() time.Duration { return s.cfg.HoldTime }

// Updates delivers received route announcements until the session ends.
func (s *Session) Updates() <-chan *Update { return s.updates }

// Err returns the error that terminated the session, if any.
func (s *Session) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastErr
}

// Announce sends an UPDATE.
func (s *Session) Announce(u *Update) error {
	if s.State() != StateEstablished {
		return fmt.Errorf("bgpwire: session not established")
	}
	data, err := MarshalUpdate(u)
	if err != nil {
		return err
	}
	_, err = s.conn.Write(data)
	return err
}

// Close terminates the session with a Cease notification.
func (s *Session) Close() error {
	s.mu.Lock()
	if s.state == StateClosed {
		s.mu.Unlock()
		return nil
	}
	s.state = StateClosed
	s.mu.Unlock()
	s.notifyAndClose(NotifCease, 0)
	close(s.closed)
	s.wg.Wait()
	return nil
}

func (s *Session) notifyAndClose(code, subcode uint8) {
	if data, err := MarshalNotification(&Notification{Code: code, Subcode: subcode}); err == nil {
		_ = s.conn.SetWriteDeadline(time.Now().Add(time.Second))
		_, _ = s.conn.Write(data)
	}
	_ = s.conn.Close()
}

// fail records the terminating error and tears the session down.
func (s *Session) fail(err error) {
	s.mu.Lock()
	if s.state == StateClosed {
		s.mu.Unlock()
		return
	}
	s.state = StateClosed
	s.lastErr = err
	s.mu.Unlock()
	_ = s.conn.Close()
	close(s.closed)
}

func (s *Session) readLoop() {
	defer s.wg.Done()
	defer close(s.updates)
	for {
		// The hold timer: no message within HoldTime kills the session.
		_ = s.conn.SetReadDeadline(time.Now().Add(s.cfg.HoldTime))
		msg, err := ReadMessage(s.conn)
		if err != nil {
			s.fail(err)
			return
		}
		switch m := msg.(type) {
		case *Update:
			select {
			case s.updates <- m:
			case <-s.closed:
				return
			}
		case Keepalive:
			// Refreshes the hold timer implicitly.
		case *Notification:
			s.fail(m)
			return
		default:
			s.fail(fmt.Errorf("bgpwire: unexpected %T in established state", msg))
			return
		}
	}
}

func (s *Session) keepaliveLoop() {
	defer s.wg.Done()
	interval := s.cfg.HoldTime / 3
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			if s.State() != StateEstablished {
				return
			}
			if _, err := s.conn.Write(MarshalKeepalive()); err != nil {
				s.fail(err)
				return
			}
		case <-s.closed:
			return
		}
	}
}
