package bgpwire

import (
	"bytes"
	"net"
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"spooftrack/internal/topo"
)

func experimentPrefix() netip.Prefix {
	return netip.MustParsePrefix("198.51.100.0/24")
}

func TestOpenRoundTrip(t *testing.T) {
	o := &Open{AS: 4200000001, HoldTime: 90, BGPID: 0x0a000001}
	data, err := MarshalOpen(o)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := ReadMessage(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	got, ok := msg.(*Open)
	if !ok {
		t.Fatalf("got %T", msg)
	}
	// The 4-byte AS must survive via the capability even though the
	// 2-byte field saturates to AS_TRANS.
	if got.AS != o.AS || got.HoldTime != o.HoldTime || got.BGPID != o.BGPID {
		t.Fatalf("round trip %+v, want %+v", got, o)
	}
}

func TestOpenSmallASRoundTrip(t *testing.T) {
	o := &Open{AS: 47065, HoldTime: 30, BGPID: 1}
	data, err := MarshalOpen(o)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := ReadMessage(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if got := msg.(*Open); got.AS != 47065 {
		t.Fatalf("AS = %d", got.AS)
	}
}

func TestUpdateRoundTrip(t *testing.T) {
	u := &Update{
		Path:     []topo.ASN{64500, 47065, 64501, 47065},
		NextHop:  netip.MustParseAddr("203.0.113.9"),
		Prefixes: []netip.Prefix{experimentPrefix()},
	}
	data, err := MarshalUpdate(u)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := ReadMessage(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	got := msg.(*Update)
	if len(got.Path) != 4 || got.Path[0] != 64500 {
		t.Fatalf("path %v", got.Path)
	}
	if got.NextHop != u.NextHop || len(got.Prefixes) != 1 || got.Prefixes[0] != u.Prefixes[0] {
		t.Fatalf("update %+v", got)
	}
}

func TestUpdateWithdrawRoundTrip(t *testing.T) {
	u := &Update{Withdrawn: []netip.Prefix{experimentPrefix()}}
	data, err := MarshalUpdate(u)
	if err != nil {
		t.Fatal(err)
	}
	got := mustRead(t, data).(*Update)
	if len(got.Withdrawn) != 1 || got.Withdrawn[0] != experimentPrefix() {
		t.Fatalf("withdrawn %v", got.Withdrawn)
	}
	if len(got.Prefixes) != 0 {
		t.Fatal("unexpected announcements")
	}
}

func mustRead(t *testing.T, data []byte) any {
	t.Helper()
	msg, err := ReadMessage(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return msg
}

func TestUpdatePathProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 || len(raw) > 200 {
			return true
		}
		path := make([]topo.ASN, len(raw))
		for i, v := range raw {
			path[i] = topo.ASN(v)
		}
		u := &Update{Path: path, NextHop: netip.MustParseAddr("203.0.113.1"),
			Prefixes: []netip.Prefix{experimentPrefix()}}
		data, err := MarshalUpdate(u)
		if err != nil {
			return false
		}
		msg, err := ReadMessage(bytes.NewReader(data))
		if err != nil {
			return false
		}
		got := msg.(*Update)
		if len(got.Path) != len(path) {
			return false
		}
		for i := range path {
			if got.Path[i] != path[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNotificationAndKeepalive(t *testing.T) {
	n := &Notification{Code: NotifCease, Subcode: 2, Data: []byte("bye")}
	data, err := MarshalNotification(n)
	if err != nil {
		t.Fatal(err)
	}
	got := mustRead(t, data).(*Notification)
	if got.Code != NotifCease || got.Subcode != 2 || string(got.Data) != "bye" {
		t.Fatalf("notification %+v", got)
	}
	if got.Error() == "" {
		t.Fatal("notification must render as error")
	}
	if _, ok := mustRead(t, MarshalKeepalive()).(Keepalive); !ok {
		t.Fatal("keepalive round trip failed")
	}
}

func TestReadMessageRejectsGarbage(t *testing.T) {
	// Bad marker.
	data := MarshalKeepalive()
	data[0] = 0
	if _, err := ReadMessage(bytes.NewReader(data)); err == nil {
		t.Error("bad marker accepted")
	}
	// Bad length.
	data = MarshalKeepalive()
	data[16], data[17] = 0xff, 0xff
	if _, err := ReadMessage(bytes.NewReader(data)); err == nil {
		t.Error("bad length accepted")
	}
	// Unknown type.
	data = MarshalKeepalive()
	data[18] = 99
	if _, err := ReadMessage(bytes.NewReader(data)); err == nil {
		t.Error("unknown type accepted")
	}
}

// sessionPair establishes two connected sessions over loopback.
func sessionPair(t *testing.T) (*Session, *Session) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type res struct {
		s   *Session
		err error
	}
	ch := make(chan res, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			ch <- res{nil, err}
			return
		}
		s, err := Accept(conn, SessionConfig{LocalAS: 64501, BGPID: 2, HoldTime: 3 * time.Second})
		ch <- res{s, err}
	}()
	active, err := Dial(ln.Addr().String(), SessionConfig{LocalAS: 47065, BGPID: 1, HoldTime: 3 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	passive := <-ch
	if passive.err != nil {
		t.Fatal(passive.err)
	}
	t.Cleanup(func() {
		active.Close()
		passive.s.Close()
	})
	return active, passive.s
}

func TestSessionHandshake(t *testing.T) {
	a, p := sessionPair(t)
	if a.State() != StateEstablished || p.State() != StateEstablished {
		t.Fatalf("states %v / %v", a.State(), p.State())
	}
	if a.PeerAS() != 64501 || p.PeerAS() != 47065 {
		t.Fatalf("peer ASes %d / %d", a.PeerAS(), p.PeerAS())
	}
	if a.HoldTime() != 3*time.Second {
		t.Fatalf("hold time %v", a.HoldTime())
	}
}

func TestSessionAnnounceDelivery(t *testing.T) {
	a, p := sessionPair(t)
	u := &Update{
		Path:     []topo.ASN{47065},
		NextHop:  netip.MustParseAddr("203.0.113.1"),
		Prefixes: []netip.Prefix{experimentPrefix()},
	}
	if err := a.Announce(u); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-p.Updates():
		if len(got.Path) != 1 || got.Path[0] != 47065 {
			t.Fatalf("received %+v", got)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("update not delivered")
	}
}

func TestSessionSurvivesKeepaliveWindow(t *testing.T) {
	a, p := sessionPair(t)
	// Longer than the hold time: keepalives must keep both sides alive.
	time.Sleep(3500 * time.Millisecond)
	if a.State() != StateEstablished || p.State() != StateEstablished {
		t.Fatalf("session died: %v / %v (err %v / %v)", a.State(), p.State(), a.Err(), p.Err())
	}
}

func TestSessionCloseDeliversCease(t *testing.T) {
	a, p := sessionPair(t)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if p.State() == StateClosed {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if p.State() != StateClosed {
		t.Fatal("peer did not observe close")
	}
	if n, ok := p.Err().(*Notification); !ok || n.Code != NotifCease {
		t.Fatalf("peer error %v, want Cease notification", p.Err())
	}
}

func TestAnnounceOnClosedSession(t *testing.T) {
	a, _ := sessionPair(t)
	a.Close()
	err := a.Announce(&Update{
		Path: []topo.ASN{1}, NextHop: netip.MustParseAddr("203.0.113.1"),
		Prefixes: []netip.Prefix{experimentPrefix()},
	})
	if err == nil {
		t.Fatal("announce on closed session succeeded")
	}
}

func TestRouteServerCollectsRoutes(t *testing.T) {
	rs, err := NewRouteServer("127.0.0.1:0", SessionConfig{LocalAS: 65000, BGPID: 9, HoldTime: 3 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()

	sess, err := Dial(rs.Addr().String(), SessionConfig{LocalAS: 47065, BGPID: 1, HoldTime: 3 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	u := &Update{
		Path:     []topo.ASN{47065, 64512, 47065}, // poison-wrapped path
		NextHop:  netip.MustParseAddr("203.0.113.1"),
		Prefixes: []netip.Prefix{experimentPrefix()},
	}
	if err := sess.Announce(u); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if len(rs.Routes(47065)) > 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	routes := rs.Routes(47065)
	path, ok := routes[experimentPrefix()]
	if !ok {
		t.Fatal("route not collected")
	}
	if len(path) != 3 || path[1] != 64512 {
		t.Fatalf("collected path %v", path)
	}
	// Withdrawal removes the route.
	if err := sess.Announce(&Update{Withdrawn: []netip.Prefix{experimentPrefix()}}); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if len(rs.Routes(47065)) == 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if len(rs.Routes(47065)) != 0 {
		t.Fatal("withdrawal not applied")
	}
	if peers := rs.Peers(); len(peers) != 1 || peers[0] != 47065 {
		t.Fatalf("peers %v", peers)
	}
}
