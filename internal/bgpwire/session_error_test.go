package bgpwire

import (
	"net"
	"testing"
	"time"
)

func TestDialRejectsNonBGPServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		_, _ = conn.Write([]byte("HTTP/1.1 200 OK\r\n\r\n"))
		conn.Close()
	}()
	if _, err := Dial(ln.Addr().String(), SessionConfig{LocalAS: 1, BGPID: 1, HoldTime: 3 * time.Second}); err == nil {
		t.Fatal("session established against a non-BGP server")
	}
}

func TestDialRefusedConnection(t *testing.T) {
	// A listener that is immediately closed: connection refused or reset.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	if _, err := Dial(addr, SessionConfig{LocalAS: 1, BGPID: 1, HoldTime: 3 * time.Second}); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

func TestHoldTimeNegotiationTakesMinimum(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan *Session, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- nil
			return
		}
		s, err := Accept(conn, SessionConfig{LocalAS: 2, BGPID: 2, HoldTime: 3 * time.Second})
		if err != nil {
			done <- nil
			return
		}
		done <- s
	}()
	active, err := Dial(ln.Addr().String(), SessionConfig{LocalAS: 1, BGPID: 1, HoldTime: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer active.Close()
	passive := <-done
	if passive == nil {
		t.Fatal("passive side failed")
	}
	defer passive.Close()
	// Both sides must run at the smaller advertised hold time.
	if active.HoldTime() != 3*time.Second {
		t.Fatalf("active hold time %v, want 3s", active.HoldTime())
	}
	if passive.HoldTime() != 3*time.Second {
		t.Fatalf("passive hold time %v, want 3s", passive.HoldTime())
	}
}

func TestSessionStateString(t *testing.T) {
	for st, want := range map[SessionState]string{
		StateIdle: "Idle", StateOpenSent: "OpenSent", StateOpenConfirm: "OpenConfirm",
		StateEstablished: "Established", StateClosed: "Closed",
	} {
		if st.String() != want {
			t.Fatalf("%d renders %q", st, st.String())
		}
	}
	if SessionState(99).String() == "" {
		t.Fatal("unknown state should render")
	}
}

func TestAcceptGarbageHandshake(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	errCh := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			errCh <- err
			return
		}
		_, err = Accept(conn, SessionConfig{LocalAS: 2, BGPID: 2, HoldTime: 3 * time.Second})
		errCh <- err
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	_, _ = conn.Write([]byte("garbage garbage garbage garbage"))
	conn.Close()
	if err := <-errCh; err == nil {
		t.Fatal("garbage handshake accepted")
	}
}
