// Package bgpwire implements the BGP-4 session protocol (RFC 4271) at
// the subset a PEERING-style announcement platform and its route
// collectors need: OPEN with the four-octet-AS capability (RFC 6793),
// UPDATE carrying IPv4 unicast announcements with ORIGIN / AS_PATH /
// NEXT_HOP attributes, KEEPALIVE, NOTIFICATION, and a session state
// machine over TCP (session.go). cmd/bgpsim can serve a simulated
// configuration's routes over real BGP sessions with it.
package bgpwire

import (
	"encoding/binary"
	"fmt"
	"io"
	"net/netip"

	"spooftrack/internal/topo"
)

// Message type codes (RFC 4271 §4.1).
const (
	MsgOpen         = 1
	MsgUpdate       = 2
	MsgNotification = 3
	MsgKeepalive    = 4
)

// Protocol constants.
const (
	headerLen  = 19
	maxMsgLen  = 4096
	bgpVersion = 4
	// asTrans is the 2-byte AS placeholder when the real AS needs four
	// octets (RFC 6793).
	asTrans = 23456
)

// Open is the session-establishment message.
type Open struct {
	AS       topo.ASN
	HoldTime uint16
	BGPID    uint32
}

// Update is an IPv4 unicast route announcement. Withdrawals carry an
// empty Path and a non-empty Withdrawn list.
type Update struct {
	Path      []topo.ASN
	NextHop   netip.Addr
	Prefixes  []netip.Prefix
	Withdrawn []netip.Prefix
}

// Notification reports a fatal session error (RFC 4271 §4.5).
type Notification struct {
	Code, Subcode uint8
	Data          []byte
}

// Error renders the notification as an error value.
func (n *Notification) Error() string {
	return fmt.Sprintf("bgp NOTIFICATION code %d subcode %d", n.Code, n.Subcode)
}

// Common notification codes.
const (
	NotifCease        = 6
	NotifOpenError    = 2
	NotifHoldTimerExp = 4
	NotifMsgHeaderErr = 1
	NotifUpdateMsgErr = 3
	NotifFSMError     = 5
)

// Keepalive has no body.
type Keepalive struct{}

var marker = func() [16]byte {
	var m [16]byte
	for i := range m {
		m[i] = 0xff
	}
	return m
}()

// frame wraps a message body with the BGP header.
func frame(msgType byte, body []byte) ([]byte, error) {
	total := headerLen + len(body)
	if total > maxMsgLen {
		return nil, fmt.Errorf("bgpwire: message of %d bytes exceeds maximum", total)
	}
	out := make([]byte, 0, total)
	out = append(out, marker[:]...)
	out = binary.BigEndian.AppendUint16(out, uint16(total))
	out = append(out, msgType)
	return append(out, body...), nil
}

// MarshalOpen encodes an OPEN with the four-octet-AS capability.
func MarshalOpen(o *Open) ([]byte, error) {
	body := make([]byte, 0, 10+8)
	body = append(body, bgpVersion)
	as2 := uint16(o.AS)
	if o.AS > 0xffff {
		as2 = asTrans
	}
	body = binary.BigEndian.AppendUint16(body, as2)
	body = binary.BigEndian.AppendUint16(body, o.HoldTime)
	body = binary.BigEndian.AppendUint32(body, o.BGPID)
	// Optional parameters: one capabilities parameter (type 2)
	// containing the four-octet-AS capability (code 65, length 4).
	cap := []byte{65, 4}
	cap = binary.BigEndian.AppendUint32(cap, uint32(o.AS))
	param := append([]byte{2, byte(len(cap))}, cap...)
	body = append(body, byte(len(param)))
	body = append(body, param...)
	return frame(MsgOpen, body)
}

// parseOpen decodes an OPEN body.
func parseOpen(body []byte) (*Open, error) {
	if len(body) < 10 {
		return nil, fmt.Errorf("bgpwire: OPEN too short")
	}
	if body[0] != bgpVersion {
		return nil, fmt.Errorf("bgpwire: unsupported BGP version %d", body[0])
	}
	o := &Open{
		AS:       topo.ASN(binary.BigEndian.Uint16(body[1:])),
		HoldTime: binary.BigEndian.Uint16(body[3:]),
		BGPID:    binary.BigEndian.Uint32(body[5:]),
	}
	optLen := int(body[9])
	if len(body) < 10+optLen {
		return nil, fmt.Errorf("bgpwire: truncated OPEN parameters")
	}
	params := body[10 : 10+optLen]
	for len(params) > 0 {
		if len(params) < 2 {
			return nil, fmt.Errorf("bgpwire: truncated optional parameter")
		}
		pType, pLen := params[0], int(params[1])
		if len(params) < 2+pLen {
			return nil, fmt.Errorf("bgpwire: optional parameter overrun")
		}
		if pType == 2 { // capabilities
			caps := params[2 : 2+pLen]
			for len(caps) > 0 {
				if len(caps) < 2 || len(caps) < 2+int(caps[1]) {
					return nil, fmt.Errorf("bgpwire: truncated capability")
				}
				if caps[0] == 65 && caps[1] == 4 {
					o.AS = topo.ASN(binary.BigEndian.Uint32(caps[2:]))
				}
				caps = caps[2+int(caps[1]):]
			}
		}
		params = params[2+pLen:]
	}
	return o, nil
}

// MarshalUpdate encodes an UPDATE with 4-byte AS_PATH encoding.
func MarshalUpdate(u *Update) ([]byte, error) {
	var body []byte
	// Withdrawn routes.
	var withdrawn []byte
	for _, p := range u.Withdrawn {
		enc, err := encodePrefix(p)
		if err != nil {
			return nil, err
		}
		withdrawn = append(withdrawn, enc...)
	}
	body = binary.BigEndian.AppendUint16(body, uint16(len(withdrawn)))
	body = append(body, withdrawn...)

	var attrs []byte
	if len(u.Prefixes) > 0 {
		if len(u.Path) == 0 || len(u.Path) > 255 {
			return nil, fmt.Errorf("bgpwire: AS path length %d invalid", len(u.Path))
		}
		if !u.NextHop.Is4() {
			return nil, fmt.Errorf("bgpwire: next hop %v is not IPv4", u.NextHop)
		}
		attrs = append(attrs, 0x40, 1, 1, 0) // ORIGIN IGP
		pathLen := 2 + 4*len(u.Path)
		if pathLen > 255 {
			attrs = append(attrs, 0x50, 2, byte(pathLen>>8), byte(pathLen))
		} else {
			attrs = append(attrs, 0x40, 2, byte(pathLen))
		}
		attrs = append(attrs, 2, byte(len(u.Path))) // AS_SEQUENCE
		for _, asn := range u.Path {
			attrs = binary.BigEndian.AppendUint32(attrs, uint32(asn))
		}
		nh := u.NextHop.As4()
		attrs = append(attrs, 0x40, 3, 4)
		attrs = append(attrs, nh[:]...)
	}
	body = binary.BigEndian.AppendUint16(body, uint16(len(attrs)))
	body = append(body, attrs...)
	for _, p := range u.Prefixes {
		enc, err := encodePrefix(p)
		if err != nil {
			return nil, err
		}
		body = append(body, enc...)
	}
	return frame(MsgUpdate, body)
}

func encodePrefix(p netip.Prefix) ([]byte, error) {
	if !p.Addr().Is4() {
		return nil, fmt.Errorf("bgpwire: prefix %v is not IPv4", p)
	}
	addr := p.Addr().As4()
	return append([]byte{byte(p.Bits())}, addr[:(p.Bits()+7)/8]...), nil
}

func decodePrefixes(data []byte) ([]netip.Prefix, error) {
	var out []netip.Prefix
	for len(data) > 0 {
		bits := int(data[0])
		nBytes := (bits + 7) / 8
		if bits > 32 || len(data) < 1+nBytes {
			return nil, fmt.Errorf("bgpwire: bad prefix encoding")
		}
		var a [4]byte
		copy(a[:], data[1:1+nBytes])
		out = append(out, netip.PrefixFrom(netip.AddrFrom4(a), bits))
		data = data[1+nBytes:]
	}
	return out, nil
}

// parseUpdate decodes an UPDATE body.
func parseUpdate(body []byte) (*Update, error) {
	if len(body) < 4 {
		return nil, fmt.Errorf("bgpwire: UPDATE too short")
	}
	wLen := int(binary.BigEndian.Uint16(body))
	if len(body) < 2+wLen+2 {
		return nil, fmt.Errorf("bgpwire: truncated withdrawn routes")
	}
	u := &Update{}
	var err error
	if wLen > 0 {
		u.Withdrawn, err = decodePrefixes(body[2 : 2+wLen])
		if err != nil {
			return nil, err
		}
	}
	aLen := int(binary.BigEndian.Uint16(body[2+wLen:]))
	attrStart := 4 + wLen
	if len(body) < attrStart+aLen {
		return nil, fmt.Errorf("bgpwire: truncated attributes")
	}
	attrs := body[attrStart : attrStart+aLen]
	for len(attrs) > 0 {
		if len(attrs) < 3 {
			return nil, fmt.Errorf("bgpwire: truncated attribute")
		}
		flags, code := attrs[0], attrs[1]
		var vLen, hdr int
		if flags&0x10 != 0 {
			if len(attrs) < 4 {
				return nil, fmt.Errorf("bgpwire: truncated extended attribute")
			}
			vLen, hdr = int(binary.BigEndian.Uint16(attrs[2:])), 4
		} else {
			vLen, hdr = int(attrs[2]), 3
		}
		if len(attrs) < hdr+vLen {
			return nil, fmt.Errorf("bgpwire: attribute overrun")
		}
		val := attrs[hdr : hdr+vLen]
		switch code {
		case 2: // AS_PATH
			for len(val) > 0 {
				if len(val) < 2 || val[0] != 2 {
					return nil, fmt.Errorf("bgpwire: unsupported AS_PATH segment")
				}
				n := int(val[1])
				if len(val) < 2+4*n {
					return nil, fmt.Errorf("bgpwire: truncated AS_PATH")
				}
				for i := 0; i < n; i++ {
					u.Path = append(u.Path, topo.ASN(binary.BigEndian.Uint32(val[2+4*i:])))
				}
				val = val[2+4*n:]
			}
		case 3: // NEXT_HOP
			if vLen != 4 {
				return nil, fmt.Errorf("bgpwire: bad NEXT_HOP length")
			}
			var a [4]byte
			copy(a[:], val)
			u.NextHop = netip.AddrFrom4(a)
		}
		attrs = attrs[hdr+vLen:]
	}
	u.Prefixes, err = decodePrefixes(body[attrStart+aLen:])
	if err != nil {
		return nil, err
	}
	return u, nil
}

// MarshalKeepalive encodes a KEEPALIVE.
func MarshalKeepalive() []byte {
	out, _ := frame(MsgKeepalive, nil)
	return out
}

// MarshalNotification encodes a NOTIFICATION.
func MarshalNotification(n *Notification) ([]byte, error) {
	body := append([]byte{n.Code, n.Subcode}, n.Data...)
	return frame(MsgNotification, body)
}

// ReadMessage reads one framed message from the stream and decodes it
// into *Open, *Update, *Notification, or Keepalive.
func ReadMessage(r io.Reader) (any, error) {
	hdr := make([]byte, headerLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	for i := 0; i < 16; i++ {
		if hdr[i] != 0xff {
			return nil, fmt.Errorf("bgpwire: bad marker")
		}
	}
	total := int(binary.BigEndian.Uint16(hdr[16:]))
	if total < headerLen || total > maxMsgLen {
		return nil, fmt.Errorf("bgpwire: bad message length %d", total)
	}
	body := make([]byte, total-headerLen)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	switch hdr[18] {
	case MsgOpen:
		return parseOpen(body)
	case MsgUpdate:
		return parseUpdate(body)
	case MsgNotification:
		if len(body) < 2 {
			return nil, fmt.Errorf("bgpwire: NOTIFICATION too short")
		}
		return &Notification{Code: body[0], Subcode: body[1], Data: append([]byte(nil), body[2:]...)}, nil
	case MsgKeepalive:
		if len(body) != 0 {
			return nil, fmt.Errorf("bgpwire: KEEPALIVE with body")
		}
		return Keepalive{}, nil
	default:
		return nil, fmt.Errorf("bgpwire: unknown message type %d", hdr[18])
	}
}
