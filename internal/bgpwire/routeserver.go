package bgpwire

import (
	"net"
	"net/netip"
	"sync"

	"spooftrack/internal/topo"
)

// RouteServer is a collector-style passive speaker: it accepts BGP
// sessions and records every announced route per peer, like a
// RouteViews collector does. It never announces anything itself.
type RouteServer struct {
	cfg      SessionConfig
	listener net.Listener
	wg       sync.WaitGroup

	mu     sync.Mutex
	ribs   map[topo.ASN]map[netip.Prefix][]topo.ASN // peer -> prefix -> AS path
	closed bool
}

// NewRouteServer starts a route server listening on addr
// (e.g., "127.0.0.1:0").
func NewRouteServer(addr string, cfg SessionConfig) (*RouteServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	rs := &RouteServer{
		cfg:      cfg,
		listener: ln,
		ribs:     make(map[topo.ASN]map[netip.Prefix][]topo.ASN),
	}
	rs.wg.Add(1)
	go rs.acceptLoop()
	return rs, nil
}

// Addr returns the listening address.
func (rs *RouteServer) Addr() net.Addr { return rs.listener.Addr() }

// Close stops accepting and waits for session handlers to finish.
func (rs *RouteServer) Close() error {
	rs.mu.Lock()
	rs.closed = true
	rs.mu.Unlock()
	err := rs.listener.Close()
	rs.wg.Wait()
	return err
}

func (rs *RouteServer) acceptLoop() {
	defer rs.wg.Done()
	for {
		conn, err := rs.listener.Accept()
		if err != nil {
			return
		}
		rs.wg.Add(1)
		go func() {
			defer rs.wg.Done()
			rs.handle(conn)
		}()
	}
}

func (rs *RouteServer) handle(conn net.Conn) {
	sess, err := Accept(conn, rs.cfg)
	if err != nil {
		return
	}
	defer sess.Close()
	peer := sess.PeerAS()
	for u := range sess.Updates() {
		rs.mu.Lock()
		rib, ok := rs.ribs[peer]
		if !ok {
			rib = make(map[netip.Prefix][]topo.ASN)
			rs.ribs[peer] = rib
		}
		for _, p := range u.Withdrawn {
			delete(rib, p)
		}
		if len(u.Prefixes) > 0 {
			for _, p := range u.Prefixes {
				rib[p] = append([]topo.ASN(nil), u.Path...)
			}
		}
		rs.mu.Unlock()
	}
}

// Routes returns a snapshot of the paths announced by the peer.
func (rs *RouteServer) Routes(peer topo.ASN) map[netip.Prefix][]topo.ASN {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	out := make(map[netip.Prefix][]topo.ASN)
	for p, path := range rs.ribs[peer] {
		out[p] = append([]topo.ASN(nil), path...)
	}
	return out
}

// Peers lists ASes that have announced at least one route.
func (rs *RouteServer) Peers() []topo.ASN {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	var out []topo.ASN
	for p := range rs.ribs {
		out = append(out, p)
	}
	return out
}
