package amp

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"strings"
)

// AmpPot emulates the protocols abused for amplification (Krämer et al.
// report DNS, NTP, SSDP, and chargen dominating). This file implements
// minimal but wire-accurate request parsers and amplified response
// builders for the three biggest: DNS ANY queries, NTP mode-7 monlist,
// and SSDP M-SEARCH. The honeypot recognizes requests by payload (as a
// multi-protocol AmpPot listening on one socket would after port
// demultiplexing) and answers with realistically amplified responses.

// Service is one emulated amplification-vulnerable protocol.
type Service interface {
	// Name identifies the protocol.
	Name() string
	// Recognize reports whether the payload is a valid request.
	Recognize(payload []byte) bool
	// Respond builds the amplified response payload, capped at maxLen.
	Respond(payload []byte, maxLen int) []byte
}

// DefaultServices returns the protocol emulations in recognition order.
func DefaultServices() []Service {
	return []Service{DNSService{}, NTPService{}, SSDPService{}}
}

// RecognizeService returns the first service recognizing the payload.
func RecognizeService(services []Service, payload []byte) (Service, bool) {
	for _, s := range services {
		if s.Recognize(payload) {
			return s, true
		}
	}
	return nil, false
}

// ---------------------------------------------------------------- DNS

// DNSService emulates an open resolver answering ANY queries (the
// classic ~50x amplifier).
type DNSService struct{}

// Name implements Service.
func (DNSService) Name() string { return "dns" }

const (
	dnsHeaderLen = 12
	dnsTypeANY   = 255
	dnsClassIN   = 1
)

// BuildDNSQuery crafts an ANY query for the name (e.g., "example.com").
func BuildDNSQuery(id uint16, name string) ([]byte, error) {
	qname, err := encodeDNSName(name)
	if err != nil {
		return nil, err
	}
	msg := make([]byte, 0, dnsHeaderLen+len(qname)+4)
	msg = binary.BigEndian.AppendUint16(msg, id)
	msg = binary.BigEndian.AppendUint16(msg, 0x0100) // RD
	msg = binary.BigEndian.AppendUint16(msg, 1)      // QDCOUNT
	msg = append(msg, 0, 0, 0, 0, 0, 0)              // AN/NS/AR counts
	msg = append(msg, qname...)
	msg = binary.BigEndian.AppendUint16(msg, dnsTypeANY)
	msg = binary.BigEndian.AppendUint16(msg, dnsClassIN)
	return msg, nil
}

func encodeDNSName(name string) ([]byte, error) {
	if name == "" {
		return nil, fmt.Errorf("amp: empty DNS name")
	}
	var out []byte
	for _, label := range strings.Split(name, ".") {
		if len(label) == 0 || len(label) > 63 {
			return nil, fmt.Errorf("amp: bad DNS label %q", label)
		}
		out = append(out, byte(len(label)))
		out = append(out, label...)
	}
	return append(out, 0), nil
}

// Recognize implements Service: a plausible DNS query with QDCOUNT=1
// and an ANY question.
func (DNSService) Recognize(payload []byte) bool {
	if len(payload) < dnsHeaderLen+5 {
		return false
	}
	if binary.BigEndian.Uint16(payload[2:])&0x8000 != 0 {
		return false // QR set: a response, not a query
	}
	if binary.BigEndian.Uint16(payload[4:]) != 1 {
		return false
	}
	// Walk the QNAME.
	i := dnsHeaderLen
	for i < len(payload) && payload[i] != 0 {
		i += int(payload[i]) + 1
	}
	if i+5 > len(payload) {
		return false
	}
	qtype := binary.BigEndian.Uint16(payload[i+1:])
	return qtype == dnsTypeANY
}

// Respond implements Service: echoes the question and attaches padded
// TXT answers up to maxLen (DNS ANY responses reach dozens of records).
func (DNSService) Respond(payload []byte, maxLen int) []byte {
	resp := make([]byte, 0, maxLen)
	resp = append(resp, payload[0], payload[1]) // same ID
	resp = binary.BigEndian.AppendUint16(resp, 0x8180)
	resp = binary.BigEndian.AppendUint16(resp, 1) // QDCOUNT
	// ANCOUNT patched below.
	anCountAt := len(resp)
	resp = append(resp, 0, 0, 0, 0, 0, 0)
	resp = append(resp, payload[dnsHeaderLen:]...) // question echo
	answers := 0
	record := buildTXTRecord()
	for len(resp)+len(record) <= maxLen {
		resp = append(resp, record...)
		answers++
	}
	binary.BigEndian.PutUint16(resp[anCountAt:], uint16(answers))
	return resp
}

func buildTXTRecord() []byte {
	txt := bytes.Repeat([]byte{'x'}, 80)
	rec := []byte{0xc0, dnsHeaderLen}            // name pointer to the question
	rec = binary.BigEndian.AppendUint16(rec, 16) // TXT
	rec = binary.BigEndian.AppendUint16(rec, dnsClassIN)
	rec = append(rec, 0, 0, 0, 60) // TTL
	rec = binary.BigEndian.AppendUint16(rec, uint16(len(txt)+1))
	rec = append(rec, byte(len(txt)))
	return append(rec, txt...)
}

// ---------------------------------------------------------------- NTP

// NTPService emulates a server answering mode-7 monlist requests (the
// NTP amplification vector of the 2014 attacks, ~500x).
type NTPService struct{}

// Name implements Service.
func (NTPService) Name() string { return "ntp" }

const (
	ntpMode7          = 7
	ntpImplXNTPD      = 3
	ntpReqMonGetList1 = 42
	ntpMonEntryLen    = 72
	ntpMode7HeaderLen = 8
)

// BuildMonlistRequest crafts the 8-byte mode-7 MON_GETLIST_1 request.
func BuildMonlistRequest() []byte {
	req := make([]byte, ntpMode7HeaderLen)
	req[0] = 0x17 // response=0, more=0, version 2, mode 7
	req[1] = 0    // auth=0, sequence 0
	req[2] = ntpImplXNTPD
	req[3] = ntpReqMonGetList1
	return req
}

// Recognize implements Service.
func (NTPService) Recognize(payload []byte) bool {
	if len(payload) < ntpMode7HeaderLen {
		return false
	}
	mode := payload[0] & 0x07
	response := payload[0]&0x80 != 0
	return mode == ntpMode7 && !response && payload[2] == ntpImplXNTPD && payload[3] == ntpReqMonGetList1
}

// Respond implements Service: a mode-7 response carrying as many 72-byte
// monitor entries as fit.
func (NTPService) Respond(payload []byte, maxLen int) []byte {
	entries := (maxLen - ntpMode7HeaderLen) / ntpMonEntryLen
	if entries < 1 {
		entries = 1
	}
	if entries > 100 {
		entries = 100
	}
	resp := make([]byte, ntpMode7HeaderLen+entries*ntpMonEntryLen)
	resp[0] = 0x97 // response=1, version 2, mode 7
	resp[1] = payload[1]
	resp[2] = ntpImplXNTPD
	resp[3] = ntpReqMonGetList1
	binary.BigEndian.PutUint16(resp[4:], uint16(entries))
	binary.BigEndian.PutUint16(resp[6:], ntpMonEntryLen)
	return resp
}

// ---------------------------------------------------------------- SSDP

// SSDPService emulates a UPnP device answering M-SEARCH discovery
// (~30x amplification through verbose device descriptions).
type SSDPService struct{}

// Name implements Service.
func (SSDPService) Name() string { return "ssdp" }

// BuildMSearch crafts the standard ssdp:all discovery request.
func BuildMSearch() []byte {
	return []byte("M-SEARCH * HTTP/1.1\r\n" +
		"HOST: 239.255.255.250:1900\r\n" +
		"MAN: \"ssdp:discover\"\r\n" +
		"MX: 1\r\n" +
		"ST: ssdp:all\r\n\r\n")
}

// Recognize implements Service.
func (SSDPService) Recognize(payload []byte) bool {
	return bytes.HasPrefix(payload, []byte("M-SEARCH")) &&
		bytes.Contains(payload, []byte("ssdp:discover"))
}

// Respond implements Service: one 200 OK per emulated service entry.
func (SSDPService) Respond(payload []byte, maxLen int) []byte {
	entry := []byte("HTTP/1.1 200 OK\r\n" +
		"CACHE-CONTROL: max-age=1800\r\n" +
		"EXT:\r\n" +
		"LOCATION: http://192.0.2.1:5000/rootDesc.xml\r\n" +
		"SERVER: OS/1.0 UPnP/1.1 emulated/1.0\r\n" +
		"ST: urn:schemas-upnp-org:device:InternetGatewayDevice:1\r\n" +
		"USN: uuid:00000000-0000-0000-0000-000000000000\r\n\r\n")
	var resp []byte
	for len(resp)+len(entry) <= maxLen {
		resp = append(resp, entry...)
	}
	if len(resp) == 0 {
		resp = entry[:maxLen]
	}
	return resp
}
