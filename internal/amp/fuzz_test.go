package amp

import (
	"net/netip"
	"testing"
)

// FuzzUnmarshal exercises the overlay packet parser: never panic;
// accepted packets re-encode identically.
func FuzzUnmarshal(f *testing.F) {
	p := &Packet{
		Type:        TypeRequest,
		IngressLink: 2,
		TrueSrcAS:   64500,
		SpoofedSrc:  netip.MustParseAddr("192.0.2.7"),
		Payload:     []byte("query"),
	}
	valid, err := p.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:headerLen])
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Unmarshal(data)
		if err != nil {
			return
		}
		re, err := got.Marshal()
		if err != nil {
			t.Fatalf("parsed packet unencodable: %v", err)
		}
		if len(re) != len(data) {
			t.Fatalf("round trip changed size: %d -> %d", len(data), len(re))
		}
		for i := range re {
			if re[i] != data[i] {
				t.Fatal("round trip not byte-identical")
			}
		}
	})
}

// FuzzServices feeds arbitrary payloads to the protocol recognizers and
// responders: recognition must never panic, and recognized payloads
// must produce bounded responses.
func FuzzServices(f *testing.F) {
	q, _ := BuildDNSQuery(1, "example.com")
	f.Add(q)
	f.Add(BuildMonlistRequest())
	f.Add(BuildMSearch())
	f.Add([]byte{})
	f.Add([]byte("M-SEARCH"))

	services := DefaultServices()
	f.Fuzz(func(t *testing.T, payload []byte) {
		svc, ok := RecognizeService(services, payload)
		if !ok {
			return
		}
		resp := svc.Respond(payload, 1400)
		if len(resp) > 1400 {
			t.Fatalf("%s response of %d bytes exceeds cap", svc.Name(), len(resp))
		}
	})
}
