package amp

import (
	"errors"
	"net"
	"net/netip"
	"sync"
	"time"

	"spooftrack/internal/trace"
)

// HoneypotConfig tunes the honeypot's emulated amplification service.
type HoneypotConfig struct {
	// AmpFactor is the response-to-request size ratio of the emulated
	// vulnerable service (e.g., NTP monlist reaches dozens).
	AmpFactor int
	// MaxResponsesPerVictimPerSec rate-limits reflection per victim, as
	// AmpPot does so honeypots attract attacks without contributing
	// meaningful firepower.
	MaxResponsesPerVictimPerSec int
	// Reflect resolves a victim (spoofed source) address to the UDP
	// endpoint its traffic should be reflected to, or nil to drop.
	// Production honeypots send straight to the spoofed address; tests
	// map victims onto loopback listeners.
	Reflect func(victim netip.Addr) *net.UDPAddr
	// Services, when non-empty, switches the honeypot to protocol
	// emulation: requests are recognized per protocol (DNS / NTP /
	// SSDP) and answered with that protocol's amplified response;
	// unrecognized payloads are accounted but not reflected. Empty
	// means generic AmpFactor amplification.
	Services []Service
}

// DefaultHoneypotConfig emulates a monlist-style amplifier with AmpPot's
// conservative rate limit.
func DefaultHoneypotConfig() HoneypotConfig {
	return HoneypotConfig{AmpFactor: 20, MaxResponsesPerVictimPerSec: 10}
}

// LinkStats is the honeypot's per-ingress-link accounting — the volume
// signal §III-C feeds into cluster attribution.
type LinkStats struct {
	Packets int64
	Bytes   int64
}

// Honeypot is an AmpPot-style UDP service. Create with NewHoneypot,
// stop with Close. Safe for concurrent use.
type Honeypot struct {
	cfg  HoneypotConfig
	conn net.PacketConn
	wg   sync.WaitGroup

	mu         sync.Mutex
	tap        Tap
	metrics    *hpMetrics
	byLink     map[uint8]*LinkStats
	bySource   map[netip.Addr]int64 // victim (spoofed) address -> packets
	byService  map[string]int64     // emulated protocol -> requests
	malformed  int64
	reflected  int64
	rateWindow map[netip.Addr]*rateState
}

type rateState struct {
	windowStart time.Time
	sent        int
}

// NewHoneypot starts a honeypot listening on addr (e.g.,
// "127.0.0.1:0"). The returned honeypot is already serving.
func NewHoneypot(addr string, cfg HoneypotConfig) (*Honeypot, error) {
	if cfg.AmpFactor < 1 {
		return nil, errors.New("amp: AmpFactor must be at least 1")
	}
	conn, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, err
	}
	h := &Honeypot{
		cfg:        cfg,
		conn:       conn,
		byLink:     make(map[uint8]*LinkStats),
		bySource:   make(map[netip.Addr]int64),
		byService:  make(map[string]int64),
		rateWindow: make(map[netip.Addr]*rateState),
	}
	h.wg.Add(1)
	go h.serve()
	return h, nil
}

// Addr returns the honeypot's listening address.
func (h *Honeypot) Addr() net.Addr { return h.conn.LocalAddr() }

// Close stops the honeypot and waits for the serve loop to exit.
func (h *Honeypot) Close() error {
	err := h.conn.Close()
	h.wg.Wait()
	return err
}

func (h *Honeypot) serve() {
	defer h.wg.Done()
	// One span covers the serve loop's lifetime; per-request outcomes are
	// its counters (malformed/accepted/reflected and tap fan-out).
	sp := trace.Start("amp.honeypot.serve")
	defer sp.End()
	buf := make([]byte, 2048)
	for {
		n, _, err := h.conn.ReadFrom(buf)
		if err != nil {
			return // closed
		}
		pkt, err := Unmarshal(buf[:n])
		if err != nil || pkt.Type != TypeRequest {
			h.mu.Lock()
			h.malformed++
			m := h.metrics
			h.mu.Unlock()
			if m != nil {
				m.requests.With("malformed").Inc()
			}
			sp.Count("malformed", 1)
			continue
		}
		h.handleRequest(pkt, n, sp)
	}
}

func (h *Honeypot) handleRequest(pkt *Packet, wireLen int, sp *trace.Span) {
	// Protocol emulation mode: recognize the request first.
	var svc Service
	if len(h.cfg.Services) > 0 {
		var recognized bool
		svc, recognized = RecognizeService(h.cfg.Services, pkt.Payload)
		if !recognized {
			h.mu.Lock()
			h.malformed++
			m := h.metrics
			h.mu.Unlock()
			if m != nil {
				m.requests.With("malformed").Inc()
			}
			sp.Count("malformed", 1)
			return
		}
	}
	sp.Count("accepted", 1)

	h.mu.Lock()
	ls, ok := h.byLink[pkt.IngressLink]
	if !ok {
		ls = &LinkStats{}
		h.byLink[pkt.IngressLink] = ls
	}
	ls.Packets++
	ls.Bytes += int64(wireLen)
	h.bySource[pkt.SpoofedSrc]++
	if svc != nil {
		h.byService[svc.Name()]++
	}
	allowed := h.allowReflectLocked(pkt.SpoofedSrc)
	tap := h.tap
	m := h.metrics
	h.mu.Unlock()

	if m != nil {
		m.requests.With("accepted").Inc()
		m.linkPkts.With(linkLabels[pkt.IngressLink]).Inc()
		m.linkBytes.With(linkLabels[pkt.IngressLink]).Add(int64(wireLen))
		if svc != nil {
			m.service.With(svc.Name()).Inc()
		}
		if !allowed {
			m.requests.With("rate_limited").Inc()
		}
	}

	if tap != nil {
		ev := Event{
			Time:        time.Now(),
			IngressLink: pkt.IngressLink,
			SpoofedSrc:  pkt.SpoofedSrc,
			WireLen:     wireLen,
		}
		if svc != nil {
			ev.Service = svc.Name()
		}
		tap(ev)
		sp.Count("tap_events", 1)
	}

	if !allowed || h.cfg.Reflect == nil {
		return
	}
	dst := h.cfg.Reflect(pkt.SpoofedSrc)
	if dst == nil {
		return
	}
	var respPayload []byte
	if svc != nil {
		respPayload = svc.Respond(pkt.Payload, maxPayload)
	} else {
		respPayload = make([]byte, min(len(pkt.Payload)*h.cfg.AmpFactor, maxPayload))
	}
	resp := &Packet{
		Type:        TypeResponse,
		IngressLink: pkt.IngressLink,
		TrueSrcAS:   0, // honeypot does not know the true source
		SpoofedSrc:  pkt.SpoofedSrc,
		Payload:     respPayload,
	}
	if data, err := resp.Marshal(); err == nil {
		if _, err := h.conn.WriteTo(data, dst); err == nil {
			h.mu.Lock()
			h.reflected++
			h.mu.Unlock()
			if m != nil {
				m.requests.With("reflected").Inc()
			}
			sp.Count("reflected", 1)
		}
	}
}

// allowReflectLocked implements the per-victim rate limit using a fixed
// one-second window. Caller holds h.mu.
func (h *Honeypot) allowReflectLocked(victim netip.Addr) bool {
	limit := h.cfg.MaxResponsesPerVictimPerSec
	if limit <= 0 {
		return false
	}
	now := time.Now()
	st, ok := h.rateWindow[victim]
	if !ok || now.Sub(st.windowStart) >= time.Second {
		h.rateWindow[victim] = &rateState{windowStart: now, sent: 1}
		return true
	}
	if st.sent >= limit {
		return false
	}
	st.sent++
	return true
}

// VolumeByLink returns a snapshot of the per-ingress-link accounting.
func (h *Honeypot) VolumeByLink() map[uint8]LinkStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[uint8]LinkStats, len(h.byLink))
	for l, s := range h.byLink {
		out[l] = *s
	}
	return out
}

// VictimPackets returns how many requests claimed each victim address.
func (h *Honeypot) VictimPackets() map[netip.Addr]int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[netip.Addr]int64, len(h.bySource))
	for a, n := range h.bySource {
		out[a] = n
	}
	return out
}

// VolumeByService returns per-protocol request counts (protocol
// emulation mode only).
func (h *Honeypot) VolumeByService() map[string]int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]int64, len(h.byService))
	for s, n := range h.byService {
		out[s] = n
	}
	return out
}

// Malformed returns the count of dropped undecodable packets.
func (h *Honeypot) Malformed() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.malformed
}

// Reflected returns how many amplified responses were sent.
func (h *Honeypot) Reflected() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.reflected
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
