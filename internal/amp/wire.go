// Package amp is the packet-level amplification substrate: an
// AmpPot-style honeypot (Krämer et al., RAID 2015) that attracts spoofed
// amplification requests and accounts their volume per ingress peering
// link — the origin's §III-C measurement device — plus the spoofing
// attack clients and the border router that stamps ingress links.
//
// Userland cannot forge IP source addresses without raw sockets, so the
// spoofed source travels in an overlay header on top of UDP: attackers
// send Request packets carrying a spoofed victim address and their true
// source AS; the border router (the origin's edge) resolves the true AS
// to the peering link its traffic arrives on under the current routing
// outcome, stamps the link, and forwards to the honeypot. The honeypot
// counts per-link volume and reflects rate-limited amplified responses
// toward the victim, as AmpPot does. All packet formats use fixed-size
// big-endian encoding.
package amp

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// Magic identifies overlay packets.
const Magic uint32 = 0x53504f46 // "SPOF"

// PacketType distinguishes overlay messages.
type PacketType uint8

const (
	// TypeRequest is an amplification query (attacker -> border ->
	// honeypot).
	TypeRequest PacketType = 1
	// TypeResponse is an amplified answer (honeypot -> victim).
	TypeResponse PacketType = 2
)

// maxPayload bounds the variable part of a packet.
const maxPayload = 1400

// headerLen is the fixed overlay header size: magic(4) type(1) link(1)
// srcAS(4) spoofedSrc(4) payloadLen(2).
const headerLen = 16

// Packet is one overlay message.
type Packet struct {
	Type PacketType
	// IngressLink is the peering link stamp; 0xff before the border
	// router assigns it.
	IngressLink uint8
	// TrueSrcAS is the attacker's actual AS number (what a border
	// router implicitly knows from the wire the packet arrived on).
	TrueSrcAS uint32
	// SpoofedSrc is the forged source address — the victim of the
	// reflection.
	SpoofedSrc netip.Addr
	// Payload is the query or amplified answer.
	Payload []byte
}

// LinkUnset marks packets not yet stamped by the border router.
const LinkUnset uint8 = 0xff

// Marshal encodes the packet.
func (p *Packet) Marshal() ([]byte, error) {
	if len(p.Payload) > maxPayload {
		return nil, fmt.Errorf("amp: payload %d exceeds %d bytes", len(p.Payload), maxPayload)
	}
	if !p.SpoofedSrc.Is4() {
		return nil, fmt.Errorf("amp: spoofed source %v is not IPv4", p.SpoofedSrc)
	}
	buf := make([]byte, headerLen+len(p.Payload))
	binary.BigEndian.PutUint32(buf[0:], Magic)
	buf[4] = byte(p.Type)
	buf[5] = p.IngressLink
	binary.BigEndian.PutUint32(buf[6:], p.TrueSrcAS)
	src := p.SpoofedSrc.As4()
	copy(buf[10:14], src[:])
	binary.BigEndian.PutUint16(buf[14:], uint16(len(p.Payload)))
	copy(buf[headerLen:], p.Payload)
	return buf, nil
}

// Unmarshal decodes a packet, validating magic, type, and length fields.
func Unmarshal(buf []byte) (*Packet, error) {
	if len(buf) < headerLen {
		return nil, fmt.Errorf("amp: packet too short (%d bytes)", len(buf))
	}
	if got := binary.BigEndian.Uint32(buf[0:]); got != Magic {
		return nil, fmt.Errorf("amp: bad magic %#x", got)
	}
	t := PacketType(buf[4])
	if t != TypeRequest && t != TypeResponse {
		return nil, fmt.Errorf("amp: unknown packet type %d", t)
	}
	plen := int(binary.BigEndian.Uint16(buf[14:]))
	if plen > maxPayload {
		return nil, fmt.Errorf("amp: declared payload %d exceeds %d", plen, maxPayload)
	}
	if len(buf) != headerLen+plen {
		return nil, fmt.Errorf("amp: length mismatch: %d bytes for payload %d", len(buf), plen)
	}
	var src [4]byte
	copy(src[:], buf[10:14])
	return &Packet{
		Type:        t,
		IngressLink: buf[5],
		TrueSrcAS:   binary.BigEndian.Uint32(buf[6:]),
		SpoofedSrc:  netip.AddrFrom4(src),
		Payload:     append([]byte(nil), buf[headerLen:]...),
	}, nil
}
