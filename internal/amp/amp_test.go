package amp

import (
	"net"
	"net/netip"
	"testing"
	"testing/quick"
	"time"
)

func TestPacketRoundTrip(t *testing.T) {
	p := &Packet{
		Type:        TypeRequest,
		IngressLink: 3,
		TrueSrcAS:   64512,
		SpoofedSrc:  netip.MustParseAddr("192.0.2.7"),
		Payload:     []byte("monlist"),
	}
	data, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != p.Type || got.IngressLink != p.IngressLink ||
		got.TrueSrcAS != p.TrueSrcAS || got.SpoofedSrc != p.SpoofedSrc ||
		string(got.Payload) != string(p.Payload) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, p)
	}
}

func TestPacketRoundTripProperty(t *testing.T) {
	f := func(link uint8, asn uint32, ip [4]byte, payload []byte) bool {
		if len(payload) > maxPayload {
			payload = payload[:maxPayload]
		}
		p := &Packet{
			Type:        TypeResponse,
			IngressLink: link,
			TrueSrcAS:   asn,
			SpoofedSrc:  netip.AddrFrom4(ip),
			Payload:     payload,
		}
		data, err := p.Marshal()
		if err != nil {
			return false
		}
		got, err := Unmarshal(data)
		if err != nil {
			return false
		}
		if got.IngressLink != link || got.TrueSrcAS != asn || got.SpoofedSrc != p.SpoofedSrc {
			return false
		}
		if len(got.Payload) != len(payload) {
			return false
		}
		for i := range payload {
			if got.Payload[i] != payload[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		make([]byte, headerLen),                  // zero magic
		append(mustMarshal(t, validReq()), 0xff), // trailing byte
		mustMarshal(t, validReq())[:headerLen-1], // truncated header
	}
	for i, data := range cases {
		if _, err := Unmarshal(data); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	// Corrupt the type field.
	data := mustMarshal(t, validReq())
	data[4] = 99
	if _, err := Unmarshal(data); err == nil {
		t.Error("bad type accepted")
	}
	// Corrupt declared payload length.
	data = mustMarshal(t, validReq())
	data[14], data[15] = 0xff, 0xff
	if _, err := Unmarshal(data); err == nil {
		t.Error("bad length accepted")
	}
}

func validReq() *Packet {
	return &Packet{
		Type:       TypeRequest,
		TrueSrcAS:  1,
		SpoofedSrc: netip.MustParseAddr("192.0.2.1"),
		Payload:    []byte{1, 2, 3},
	}
}

func mustMarshal(t *testing.T, p *Packet) []byte {
	t.Helper()
	data, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestMarshalRejectsBadPackets(t *testing.T) {
	big := validReq()
	big.Payload = make([]byte, maxPayload+1)
	if _, err := big.Marshal(); err == nil {
		t.Error("oversized payload accepted")
	}
	v6 := validReq()
	v6.SpoofedSrc = netip.MustParseAddr("2001:db8::1")
	if _, err := v6.Marshal(); err == nil {
		t.Error("IPv6 spoofed source accepted")
	}
}

// waitFor polls until cond returns true or the deadline passes.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not met within deadline")
}

func TestEndToEndPipeline(t *testing.T) {
	victimAddr := netip.MustParseAddr("192.0.2.99")

	// Victim listener measures reflected traffic.
	victimConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer victimConn.Close()
	victimUDP := victimConn.LocalAddr().(*net.UDPAddr)
	victimBytes := make(chan int, 1024)
	go func() {
		buf := make([]byte, 2048)
		for {
			n, _, err := victimConn.ReadFrom(buf)
			if err != nil {
				return
			}
			victimBytes <- n
		}
	}()

	cfg := DefaultHoneypotConfig()
	cfg.MaxResponsesPerVictimPerSec = 5
	cfg.Reflect = func(v netip.Addr) *net.UDPAddr {
		if v == victimAddr {
			return victimUDP
		}
		return nil
	}
	hp, err := NewHoneypot("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer hp.Close()

	// Catchments: AS 100 -> link 0, AS 200 -> link 1.
	border, err := NewBorder("127.0.0.1:0", hp.Addr().(*net.UDPAddr), map[uint32]uint8{100: 0, 200: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer border.Close()

	a1, err := NewAttacker(100, victimAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer a1.Close()
	a2, err := NewAttacker(200, victimAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()

	if _, err := a1.Flood(border.Addr(), 20, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := a2.Flood(border.Addr(), 10, 8); err != nil {
		t.Fatal(err)
	}

	waitFor(t, func() bool {
		v := hp.VolumeByLink()
		return v[0].Packets == 20 && v[1].Packets == 10
	})

	// Per-victim accounting.
	if got := hp.VictimPackets()[victimAddr]; got != 30 {
		t.Fatalf("victim packets %d, want 30", got)
	}

	// The rate limiter caps reflection well below the 30 requests.
	waitFor(t, func() bool { return hp.Reflected() >= 1 })
	time.Sleep(50 * time.Millisecond)
	if r := hp.Reflected(); r > 5 {
		t.Fatalf("reflected %d responses in one window, limit is 5", r)
	}
	// Victim actually received amplified responses.
	n := <-victimBytes
	if n <= headerLen+8 {
		t.Fatalf("victim got %d bytes; expected amplification beyond request size", n)
	}
}

func TestBorderDropsUnroutedAS(t *testing.T) {
	hp, err := NewHoneypot("127.0.0.1:0", DefaultHoneypotConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer hp.Close()
	border, err := NewBorder("127.0.0.1:0", hp.Addr().(*net.UDPAddr), map[uint32]uint8{})
	if err != nil {
		t.Fatal(err)
	}
	defer border.Close()
	a, err := NewAttacker(12345, netip.MustParseAddr("192.0.2.1"))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if _, err := a.Flood(border.Addr(), 5, 8); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return border.Dropped() == 5 })
	if len(hp.VolumeByLink()) != 0 {
		t.Fatal("honeypot received traffic that should have been dropped")
	}
}

func TestBorderSetCatchments(t *testing.T) {
	hp, err := NewHoneypot("127.0.0.1:0", DefaultHoneypotConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer hp.Close()
	border, err := NewBorder("127.0.0.1:0", hp.Addr().(*net.UDPAddr), map[uint32]uint8{100: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer border.Close()
	a, err := NewAttacker(100, netip.MustParseAddr("192.0.2.1"))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	if _, err := a.Flood(border.Addr(), 3, 8); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return hp.VolumeByLink()[0].Packets == 3 })

	// Reconfigure: AS 100 now enters on link 4.
	border.SetCatchments(map[uint32]uint8{100: 4})
	if _, err := a.Flood(border.Addr(), 2, 8); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return hp.VolumeByLink()[4].Packets == 2 })
	if hp.VolumeByLink()[0].Packets != 3 {
		t.Fatal("old link accounting changed")
	}
}

func TestHoneypotMalformedCounting(t *testing.T) {
	hp, err := NewHoneypot("127.0.0.1:0", DefaultHoneypotConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer hp.Close()
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.WriteTo([]byte("garbage-not-a-packet"), hp.Addr()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return hp.Malformed() == 1 })
}

func TestNewHoneypotRejectsBadConfig(t *testing.T) {
	if _, err := NewHoneypot("127.0.0.1:0", HoneypotConfig{AmpFactor: 0}); err == nil {
		t.Fatal("expected config error")
	}
}

func TestAttackerFloodValidation(t *testing.T) {
	a, err := NewAttacker(1, netip.MustParseAddr("192.0.2.1"))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	dst := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 9}
	if _, err := a.Flood(dst, 1, 0); err == nil {
		t.Fatal("zero payload accepted")
	}
	if _, err := a.Flood(dst, 1, maxPayload+1); err == nil {
		t.Fatal("oversized payload accepted")
	}
}
