package amp

import (
	"strconv"

	"spooftrack/internal/metrics"
)

// linkLabels pre-renders every possible ingress-link label (LinkID is a
// uint8 on the wire), so per-packet vector lookups never format.
var linkLabels [256]string

func init() {
	for i := range linkLabels {
		linkLabels[i] = strconv.Itoa(i)
	}
}

// hpMetrics is the honeypot's labeled instrumentation, resolved once at
// SetMetrics so the packet path only does seen-label-set vector lookups
// (zero allocations).
type hpMetrics struct {
	linkPkts  *metrics.CounterVec // amp_honeypot_packets_total{link}
	linkBytes *metrics.CounterVec // amp_honeypot_bytes_total{link}
	requests  *metrics.CounterVec // amp_honeypot_requests_total{outcome}
	service   *metrics.CounterVec // amp_honeypot_service_requests_total{service}
}

func newHPMetrics(reg *metrics.Registry) *hpMetrics {
	return &hpMetrics{
		linkPkts:  reg.CounterVec("amp_honeypot_packets_total", "link"),
		linkBytes: reg.CounterVec("amp_honeypot_bytes_total", "link"),
		requests:  reg.CounterVec("amp_honeypot_requests_total", "outcome"),
		service:   reg.CounterVec("amp_honeypot_service_requests_total", "service"),
	}
}

// SetMetrics wires the honeypot's accounting into a metrics registry as
// labeled vectors: per-ingress-link packet/byte counters (the paper's
// volume signal, now scrapeable per dimension instead of name-mangled)
// and per-outcome request counters (accepted, malformed, reflected,
// rate_limited). Call before traffic arrives; nil detaches.
func (h *Honeypot) SetMetrics(reg *metrics.Registry) {
	var m *hpMetrics
	if reg != nil {
		m = newHPMetrics(reg)
	}
	h.mu.Lock()
	h.metrics = m
	h.mu.Unlock()
}

// borderMetrics is the border router's labeled instrumentation.
type borderMetrics struct {
	packets  *metrics.CounterVec // amp_border_packets_total{outcome}
	linkPkts *metrics.CounterVec // amp_border_link_forwarded_total{link}
}

func newBorderMetrics(reg *metrics.Registry) *borderMetrics {
	return &borderMetrics{
		packets:  reg.CounterVec("amp_border_packets_total", "outcome"),
		linkPkts: reg.CounterVec("amp_border_link_forwarded_total", "link"),
	}
}

// SetMetrics wires the border's packet accounting into a metrics
// registry: amp_border_packets_total{outcome} (forwarded, dropped,
// filtered, malformed) and per-link forwarded counters. The watchdog's
// drop-rate SLO reads the dropped series. Nil detaches.
func (b *Border) SetMetrics(reg *metrics.Registry) {
	var m *borderMetrics
	if reg != nil {
		m = newBorderMetrics(reg)
	}
	b.mu.Lock()
	b.metrics = m
	b.mu.Unlock()
}
