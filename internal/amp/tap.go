package amp

import (
	"net/netip"
	"time"
)

// Event is one per-packet observation exported through an event tap.
// Taps are how live consumers (the streaming attribution pipeline in
// internal/stream) see traffic without touching the aggregate
// accounting the batch pipeline reads.
type Event struct {
	// Time is when the packet was processed.
	Time time.Time
	// IngressLink is the peering link the packet was stamped with
	// (LinkUnset if the border had not stamped it).
	IngressLink uint8
	// TrueSrcAS is the packet's actual origin AS. Border taps know it;
	// honeypot taps report 0 — the honeypot never learns true sources,
	// which is the whole reason the paper's technique exists.
	TrueSrcAS uint32
	// SpoofedSrc is the forged source (victim) address.
	SpoofedSrc netip.Addr
	// WireLen is the packet's on-the-wire size in bytes.
	WireLen int
	// Service is the recognized amplification protocol, when the
	// honeypot runs protocol emulation ("" otherwise).
	Service string
}

// Tap receives per-packet events. Taps run synchronously on the serve
// goroutine, outside the component's lock: a tap that blocks applies
// backpressure to packet processing rather than losing events, so it
// must be fast or hand off quickly.
type Tap func(Event)

// SetTap installs (or clears, with nil) the honeypot's per-packet event
// tap. It observes every accepted request — malformed packets are not
// reported — and does not alter the aggregate accounting.
func (h *Honeypot) SetTap(t Tap) {
	h.mu.Lock()
	h.tap = t
	h.mu.Unlock()
}

// SetTap installs (or clears, with nil) the border's per-packet event
// tap. It observes every forwarded request (after catchment resolution
// and filtering), with the true source AS filled in.
func (b *Border) SetTap(t Tap) {
	b.mu.Lock()
	b.tap = t
	b.mu.Unlock()
}
