package amp

import (
	"net"
	"sync"
	"time"

	"spooftrack/internal/trace"
)

// Border is the origin network's edge: it receives attack traffic,
// resolves each packet's true source AS to the peering link that
// traffic currently enters on (the catchment under the deployed
// configuration), stamps the link into the overlay header, and forwards
// to the honeypot. This is the one signal the paper's whole technique
// builds on — the ingress peering link.
type Border struct {
	conn     net.PacketConn
	upstream *net.UDPAddr
	wg       sync.WaitGroup

	mu sync.Mutex
	// linkOf maps a true source AS number to its current ingress link.
	linkOf map[uint32]uint8
	// dropped counts packets from ASes with no route (no catchment).
	dropped int64
	// filter, when set, drops packets it returns true for (e.g., a
	// flowspec table installed after localization). It runs before
	// forwarding and must be safe for concurrent use.
	filter func(*Packet) bool
	// filtered counts packets dropped by the filter.
	filtered int64
	// tap, when set, observes every forwarded packet.
	tap Tap
	// metrics, when set, receives labeled per-outcome and per-link
	// counters for every packet.
	metrics *borderMetrics
}

// NewBorder starts a border router on addr forwarding to the honeypot
// at upstream. linkOf is the initial catchment table (true source ASN ->
// peering link).
func NewBorder(addr string, upstream *net.UDPAddr, linkOf map[uint32]uint8) (*Border, error) {
	conn, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, err
	}
	b := &Border{conn: conn, upstream: upstream, linkOf: copyTable(linkOf)}
	b.wg.Add(1)
	go b.serve()
	return b, nil
}

func copyTable(t map[uint32]uint8) map[uint32]uint8 {
	out := make(map[uint32]uint8, len(t))
	for k, v := range t {
		out[k] = v
	}
	return out
}

// Addr returns the border's listening address.
func (b *Border) Addr() net.Addr { return b.conn.LocalAddr() }

// SetCatchments atomically replaces the catchment table — the runtime
// equivalent of a new announcement configuration converging.
func (b *Border) SetCatchments(linkOf map[uint32]uint8) {
	b.mu.Lock()
	b.linkOf = copyTable(linkOf)
	b.mu.Unlock()
}

// Dropped returns the number of packets with no catchment entry.
func (b *Border) Dropped() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// SetFilter installs (or clears, with nil) the drop filter — the data
// path a disseminated flowspec rule set takes effect through.
func (b *Border) SetFilter(f func(*Packet) bool) {
	b.mu.Lock()
	b.filter = f
	b.mu.Unlock()
}

// Filtered returns the number of packets the filter dropped.
func (b *Border) Filtered() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.filtered
}

// Close stops the border router.
func (b *Border) Close() error {
	err := b.conn.Close()
	b.wg.Wait()
	return err
}

func (b *Border) serve() {
	defer b.wg.Done()
	// One span covers the serve loop's lifetime; per-packet outcomes are
	// its counters (drop/filter/forward and tap fan-out).
	sp := trace.Start("amp.border.serve")
	defer sp.End()
	buf := make([]byte, 2048)
	for {
		n, _, err := b.conn.ReadFrom(buf)
		if err != nil {
			return
		}
		pkt, err := Unmarshal(buf[:n])
		if err != nil || pkt.Type != TypeRequest {
			b.mu.Lock()
			m := b.metrics
			b.mu.Unlock()
			if m != nil {
				m.packets.With("malformed").Inc()
			}
			continue
		}
		b.mu.Lock()
		link, ok := b.linkOf[pkt.TrueSrcAS]
		if !ok {
			b.dropped++
		}
		filter := b.filter
		tap := b.tap
		m := b.metrics
		b.mu.Unlock()
		if !ok {
			if m != nil {
				m.packets.With("dropped").Inc()
			}
			sp.Count("dropped", 1)
			continue
		}
		if filter != nil && filter(pkt) {
			b.mu.Lock()
			b.filtered++
			b.mu.Unlock()
			if m != nil {
				m.packets.With("filtered").Inc()
			}
			sp.Count("filtered", 1)
			continue
		}
		pkt.IngressLink = link
		if tap != nil {
			tap(Event{
				Time:        time.Now(),
				IngressLink: link,
				TrueSrcAS:   pkt.TrueSrcAS,
				SpoofedSrc:  pkt.SpoofedSrc,
				WireLen:     n,
			})
			sp.Count("tap_events", 1)
		}
		if m != nil {
			m.packets.With("forwarded").Inc()
			m.linkPkts.With(linkLabels[link]).Inc()
		}
		sp.Count("forwarded", 1)
		if data, err := pkt.Marshal(); err == nil {
			_, _ = b.conn.WriteTo(data, b.upstream)
		}
	}
}
