package amp

import (
	"net"
	"net/netip"
	"testing"
)

func TestDNSQueryRecognized(t *testing.T) {
	q, err := BuildDNSQuery(0x1234, "example.com")
	if err != nil {
		t.Fatal(err)
	}
	if !(DNSService{}).Recognize(q) {
		t.Fatal("own ANY query not recognized")
	}
	// A response (QR set) must not be recognized.
	resp := (DNSService{}).Respond(q, 512)
	if (DNSService{}).Recognize(resp) {
		t.Fatal("DNS response recognized as query")
	}
	// Non-ANY query not recognized (flip QTYPE to A).
	a := append([]byte(nil), q...)
	a[len(a)-3] = 1 // QTYPE low byte... careful: set QTYPE=1
	a[len(a)-4] = 0
	if (DNSService{}).Recognize(a) {
		t.Fatal("A query recognized as ANY")
	}
}

func TestDNSAmplifies(t *testing.T) {
	q, err := BuildDNSQuery(7, "example.com")
	if err != nil {
		t.Fatal(err)
	}
	resp := (DNSService{}).Respond(q, 1200)
	if len(resp) < len(q)*10 {
		t.Fatalf("DNS amplification only %dx", len(resp)/len(q))
	}
	if len(resp) > 1200 {
		t.Fatal("response exceeds cap")
	}
	// Transaction ID preserved.
	if resp[0] != q[0] || resp[1] != q[1] {
		t.Fatal("transaction ID lost")
	}
}

func TestBuildDNSQueryValidation(t *testing.T) {
	if _, err := BuildDNSQuery(1, ""); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := BuildDNSQuery(1, "a..b"); err == nil {
		t.Fatal("empty label accepted")
	}
}

func TestNTPMonlist(t *testing.T) {
	req := BuildMonlistRequest()
	if !(NTPService{}).Recognize(req) {
		t.Fatal("monlist request not recognized")
	}
	resp := (NTPService{}).Respond(req, 1400)
	if !((NTPService{}).Name() == "ntp") {
		t.Fatal("name wrong")
	}
	if len(resp) < len(req)*50 {
		t.Fatalf("NTP amplification only %dx (%d bytes)", len(resp)/len(req), len(resp))
	}
	// A response must not be recognized as a request.
	if (NTPService{}).Recognize(resp) {
		t.Fatal("mode-7 response recognized as request")
	}
	if (NTPService{}).Recognize([]byte{0x17, 0}) {
		t.Fatal("truncated packet recognized")
	}
}

func TestSSDPMSearch(t *testing.T) {
	req := BuildMSearch()
	if !(SSDPService{}).Recognize(req) {
		t.Fatal("M-SEARCH not recognized")
	}
	resp := (SSDPService{}).Respond(req, 1400)
	if len(resp) < len(req)*4 {
		t.Fatalf("SSDP amplification only %dx", len(resp)/len(req))
	}
	if (SSDPService{}).Recognize([]byte("GET / HTTP/1.1\r\n")) {
		t.Fatal("plain HTTP recognized as SSDP")
	}
}

func TestRecognizeServiceDispatch(t *testing.T) {
	services := DefaultServices()
	q, _ := BuildDNSQuery(1, "example.com")
	cases := []struct {
		payload []byte
		want    string
	}{
		{q, "dns"},
		{BuildMonlistRequest(), "ntp"},
		{BuildMSearch(), "ssdp"},
	}
	for _, c := range cases {
		svc, ok := RecognizeService(services, c.payload)
		if !ok || svc.Name() != c.want {
			t.Fatalf("payload dispatched to %v, want %s", svc, c.want)
		}
	}
	if _, ok := RecognizeService(services, []byte("garbage")); ok {
		t.Fatal("garbage recognized")
	}
}

func TestHoneypotProtocolEmulation(t *testing.T) {
	victimAddr := netip.MustParseAddr("192.0.2.50")
	victimConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer victimConn.Close()
	victimUDP := victimConn.LocalAddr().(*net.UDPAddr)
	gotBytes := make(chan int, 64)
	go func() {
		buf := make([]byte, 2048)
		for {
			n, _, err := victimConn.ReadFrom(buf)
			if err != nil {
				return
			}
			gotBytes <- n
		}
	}()

	cfg := DefaultHoneypotConfig()
	cfg.Services = DefaultServices()
	cfg.Reflect = func(v netip.Addr) *net.UDPAddr {
		if v == victimAddr {
			return victimUDP
		}
		return nil
	}
	hp, err := NewHoneypot("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer hp.Close()
	border, err := NewBorder("127.0.0.1:0", hp.Addr().(*net.UDPAddr), map[uint32]uint8{100: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer border.Close()
	a, err := NewAttacker(100, victimAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	// NTP monlist flood: recognized, accounted, amplified.
	if _, err := a.FloodPayload(border.Addr(), 5, BuildMonlistRequest()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return hp.VolumeByService()["ntp"] == 5 })

	// Garbage payload: dropped as unrecognized, not accounted per link.
	if _, err := a.FloodPayload(border.Addr(), 3, []byte("not a protocol")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return hp.Malformed() == 3 })
	if hp.VolumeByLink()[0].Packets != 5 {
		t.Fatal("unrecognized payloads were accounted")
	}

	// The victim received a genuinely amplified NTP response.
	n := <-gotBytes
	if n < 500 {
		t.Fatalf("victim got %d bytes; expected monlist-scale amplification", n)
	}
}
