package amp

import (
	"fmt"
	"net"
	"net/netip"
)

// Attacker crafts amplification requests with a forged source address
// and sends them toward the origin's border router, as the compromised
// hosts in §V-D's placements would.
type Attacker struct {
	conn net.PacketConn
	// TrueAS is the AS the attacker actually sits in; the border
	// resolves it to an ingress link.
	TrueAS uint32
	// Victim is the spoofed source address: amplified responses are
	// reflected there.
	Victim netip.Addr
}

// NewAttacker creates an attack client bound to an ephemeral local port.
func NewAttacker(trueAS uint32, victim netip.Addr) (*Attacker, error) {
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	return &Attacker{conn: conn, TrueAS: trueAS, Victim: victim}, nil
}

// Close releases the attacker's socket.
func (a *Attacker) Close() error { return a.conn.Close() }

// Flood sends n spoofed requests with the given query payload size to
// the border router. It returns the number of packets actually written.
func (a *Attacker) Flood(border net.Addr, n, payloadLen int) (int, error) {
	if payloadLen < 1 || payloadLen > maxPayload {
		return 0, fmt.Errorf("amp: payload length %d out of range", payloadLen)
	}
	return a.FloodPayload(border, n, make([]byte, payloadLen))
}

// FloodPayload sends n spoofed requests carrying the exact payload —
// e.g., a DNS ANY query or NTP monlist request built by the protocol
// helpers.
func (a *Attacker) FloodPayload(border net.Addr, n int, payload []byte) (int, error) {
	pkt := &Packet{
		Type:        TypeRequest,
		IngressLink: LinkUnset,
		TrueSrcAS:   a.TrueAS,
		SpoofedSrc:  a.Victim,
		Payload:     payload,
	}
	data, err := pkt.Marshal()
	if err != nil {
		return 0, err
	}
	sent := 0
	for i := 0; i < n; i++ {
		if _, err := a.conn.WriteTo(data, border); err != nil {
			return sent, err
		}
		sent++
	}
	return sent, nil
}
