package watch

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"spooftrack/internal/tsdb"
)

// Bundle is a self-contained diagnostic capture taken at breach time:
// everything an operator needs to reconstruct what the pipeline was
// doing when the SLO went red, without shelling into the host. Profiles
// are in pprof's debug=1 text form so the bundle stays one readable
// JSON document.
type Bundle struct {
	Version   int        `json:"version"`
	Time      time.Time  `json:"time"`
	Breach    Breach     `json:"breach"`
	RuleFor   int        `json:"rule_for"`
	RuleRate  bool       `json:"rule_rate"`
	Snapshots []Snapshot `json:"snapshots"`
	// History is the tsdb range for Config.BundleHistory families over
	// the breached rule's longest window (at least bundleHistorySpan),
	// ending at breach time — the query an operator would run first,
	// already answered.
	History      []tsdb.SeriesData `json:"history,omitempty"`
	HistoryFrom  time.Time         `json:"history_from,omitempty"`
	Trace        json.RawMessage   `json:"trace,omitempty"`
	Goroutine    string            `json:"goroutine_profile"`
	Heap         string            `json:"heap_profile"`
	NumGoroutine int               `json:"num_goroutine"`
	GoVersion    string            `json:"go_version"`
}

// bundleVersion is bumped when the bundle shape changes incompatibly.
const bundleVersion = 1

// bundleHistorySpan is the minimum history window embedded in bundles.
const bundleHistorySpan = 10 * time.Minute

// writeBundleLocked captures and atomically writes a diagnostic bundle
// for the breach, returning its path. Caller holds w.mu (the recorder
// ring must not rotate mid-capture); profile and trace capture do not
// touch watchdog state.
func (w *Watchdog) writeBundleLocked(b Breach) (string, error) {
	bundle := Bundle{
		Version:      bundleVersion,
		Time:         b.Time,
		Breach:       b,
		Snapshots:    w.recorderLocked(),
		NumGoroutine: runtime.NumGoroutine(),
		GoVersion:    runtime.Version(),
	}
	if rule, ok := w.ruleByName(b.Rule); ok {
		bundle.RuleFor = max(rule.For, 1)
		bundle.RuleRate = rule.Rate
		if w.cfg.DB != nil && len(w.cfg.BundleHistory) > 0 {
			span := bundleHistorySpan
			if rule.Window > span {
				span = rule.Window
			}
			for _, win := range rule.Windows {
				if win > span {
					span = win
				}
			}
			bundle.HistoryFrom = b.Time.Add(-span)
			for _, family := range w.cfg.BundleHistory {
				bundle.History = append(bundle.History, w.cfg.DB.Query(tsdb.Query{
					Series: family, From: bundle.HistoryFrom, To: b.Time,
				})...)
			}
		}
	}
	if w.cfg.Tracer != nil {
		var tb bytes.Buffer
		if err := w.cfg.Tracer.WriteJSON(&tb); err == nil {
			bundle.Trace = json.RawMessage(bytes.TrimSpace(tb.Bytes()))
		}
	}
	bundle.Goroutine = profileText("goroutine")
	bundle.Heap = profileText("heap")

	if err := os.MkdirAll(w.cfg.BundleDir, 0o755); err != nil {
		return "", err
	}
	name := fmt.Sprintf("bundle-%s-%d.json", sanitizeFile(b.Rule), b.Time.UnixNano())
	path := filepath.Join(w.cfg.BundleDir, name)
	data, err := json.MarshalIndent(bundle, "", "  ")
	if err != nil {
		return "", err
	}
	// Atomic publish: a scraper hitting /debug/bundle mid-write must see
	// either the previous bundle or this one, never a truncated file.
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return "", err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return "", err
	}
	w.pruneBundlesLocked()
	return path, nil
}

// pruneBundlesLocked keeps the newest MaxBundles bundle files in the
// bundle directory.
func (w *Watchdog) pruneBundlesLocked() {
	paths, err := listBundles(w.cfg.BundleDir)
	if err != nil || len(paths) <= w.cfg.MaxBundles {
		return
	}
	for _, p := range paths[:len(paths)-w.cfg.MaxBundles] {
		os.Remove(p)
	}
}

// listBundles returns bundle files in dir, oldest first. Bundle names
// embed a nanosecond timestamp, so lexical order is age order within
// one rule and close enough across rules for pruning and "latest".
func listBundles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if e.Type().IsRegular() && strings.HasPrefix(name, "bundle-") && strings.HasSuffix(name, ".json") {
			out = append(out, filepath.Join(dir, name))
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return bundleStamp(out[i]) < bundleStamp(out[j])
	})
	return out, nil
}

// bundleStamp extracts the UnixNano stamp from a bundle filename (0 on
// malformed names, sorting them oldest).
func bundleStamp(path string) int64 {
	base := strings.TrimSuffix(filepath.Base(path), ".json")
	i := strings.LastIndexByte(base, '-')
	if i < 0 {
		return 0
	}
	var n int64
	if _, err := fmt.Sscanf(base[i+1:], "%d", &n); err != nil {
		return 0
	}
	return n
}

// Latest returns the path of the newest diagnostic bundle in dir, or
// "" when none exist.
func Latest(dir string) (string, error) {
	paths, err := listBundles(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return "", nil
		}
		return "", err
	}
	if len(paths) == 0 {
		return "", nil
	}
	return paths[len(paths)-1], nil
}

// ReadBundle loads and decodes a bundle file.
func ReadBundle(path string) (*Bundle, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("watch: bundle %s: %w", path, err)
	}
	return &b, nil
}

// profileText renders a runtime profile in pprof's debug=1 text form.
func profileText(name string) string {
	p := pprof.Lookup(name)
	if p == nil {
		return ""
	}
	var buf bytes.Buffer
	if err := p.WriteTo(&buf, 1); err != nil {
		return ""
	}
	return buf.String()
}
