package watch

import (
	"encoding/json"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"spooftrack/internal/metrics"
	"spooftrack/internal/trace"
)

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func TestRuleForHysteresisAndRecovery(t *testing.T) {
	reg := metrics.NewRegistry()
	g := reg.Gauge("queue_depth")
	w := New(Config{
		Registry: reg,
		Logger:   quietLogger(),
		Rules: []Rule{{
			Name: "queue-depth", Expr: Metric("queue_depth"),
			Op: Above, Threshold: 100, For: 3,
		}},
	})
	now := time.Unix(1000, 0)

	g.Set(500)
	for i := 1; i <= 2; i++ {
		if fired := w.Evaluate(now.Add(time.Duration(i) * time.Second)); len(fired) != 0 {
			t.Fatalf("eval %d fired %v before For=3 streak", i, fired)
		}
		if !w.Healthy() {
			t.Fatalf("unhealthy before streak completes")
		}
	}
	fired := w.Evaluate(now.Add(3 * time.Second))
	if len(fired) != 1 || fired[0].Rule != "queue-depth" || fired[0].Consecutive != 3 {
		t.Fatalf("third eval fired = %+v, want one queue-depth breach at streak 3", fired)
	}
	if w.Healthy() {
		t.Fatal("healthy while in breach")
	}
	if got := w.BreachingRules(); len(got) != 1 || got[0] != "queue-depth" {
		t.Fatalf("BreachingRules = %v", got)
	}
	// Staying in breach does not re-fire.
	if fired := w.Evaluate(now.Add(4 * time.Second)); len(fired) != 0 {
		t.Fatalf("re-fired while already breaching: %v", fired)
	}
	// Recovery clears the breach and resets the streak.
	g.Set(10)
	if fired := w.Evaluate(now.Add(5 * time.Second)); len(fired) != 0 {
		t.Fatalf("fired on recovery: %v", fired)
	}
	if !w.Healthy() {
		t.Fatal("unhealthy after recovery")
	}
	// A single excursion after recovery must not fire (streak reset).
	g.Set(500)
	if fired := w.Evaluate(now.Add(6 * time.Second)); len(fired) != 0 {
		t.Fatal("fired after one post-recovery excursion")
	}
}

func TestRateRule(t *testing.T) {
	reg := metrics.NewRegistry()
	c := reg.CounterVec("border_packets_total", "outcome")
	w := New(Config{
		Registry: reg,
		Logger:   quietLogger(),
		Rules: []Rule{{
			Name: "drop-rate", Expr: Series("border_packets_total", "outcome=dropped"),
			Rate: true, Op: Above, Threshold: 50, // packets/sec
		}},
	})
	now := time.Unix(2000, 0)
	c.With("dropped").Add(0)
	// First eval has no previous snapshot: no data, no fire.
	if fired := w.Evaluate(now); len(fired) != 0 {
		t.Fatalf("first eval fired %v", fired)
	}
	// +30 drops over 1s = 30/s: under threshold.
	c.With("dropped").Add(30)
	if fired := w.Evaluate(now.Add(time.Second)); len(fired) != 0 {
		t.Fatalf("30/s fired %v", fired)
	}
	// +200 drops over 1s = 200/s: breach (For defaults to 1).
	c.With("dropped").Add(200)
	fired := w.Evaluate(now.Add(2 * time.Second))
	if len(fired) != 1 || fired[0].Value != 200 {
		t.Fatalf("200/s: fired = %+v", fired)
	}
}

func TestRatioAndMissingData(t *testing.T) {
	reg := metrics.NewRegistry()
	v := reg.CounterVec("cache_requests_total", "result")
	hitRate := Ratio(
		Series("cache_requests_total", "result=hit"),
		Sum(Series("cache_requests_total", "result=hit"), Series("cache_requests_total", "result=miss")),
	)
	w := New(Config{
		Registry: reg,
		Logger:   quietLogger(),
		Rules:    []Rule{{Name: "hit-rate-floor", Expr: hitRate, Op: Below, Threshold: 0.5}},
	})
	// No children yet: missing data must not fire or mark unhealthy.
	if fired := w.Evaluate(time.Unix(1, 0)); len(fired) != 0 || !w.Healthy() {
		t.Fatalf("missing data fired or unhealthy")
	}
	v.With("hit").Add(1)
	v.With("miss").Add(9)
	fired := w.Evaluate(time.Unix(2, 0))
	if len(fired) != 1 || fired[0].Value != 0.1 {
		t.Fatalf("hit rate 0.1 under floor 0.5: fired = %+v", fired)
	}
}

func TestVecSumExpr(t *testing.T) {
	reg := metrics.NewRegistry()
	vec := reg.CounterVec("probe_lost_total", "link")
	// An empty vector is "no data", not zero — a rule on an idle scan
	// loop must not compare against 0.
	if _, ok := VecSum("probe_lost_total")(reg.Snapshot()); ok {
		t.Fatal("empty vector produced data")
	}
	if _, ok := VecSum("no_such_metric")(reg.Snapshot()); ok {
		t.Fatal("absent metric produced data")
	}
	vec.With("ams01").Add(3)
	vec.With("sea02").Add(4)
	v, ok := VecSum("probe_lost_total")(reg.Snapshot())
	if !ok || v != 7 {
		t.Fatalf("VecSum = %v, %v, want 7, true", v, ok)
	}
	// Composes with Ratio for cross-link loss-rate SLOs.
	sent := reg.CounterVec("probe_sent_total", "link")
	sent.With("ams01").Add(10)
	sent.With("sea02").Add(4)
	r, ok := Ratio(VecSum("probe_lost_total"), VecSum("probe_sent_total"))(reg.Snapshot())
	if !ok || r != 0.5 {
		t.Fatalf("loss ratio = %v, %v, want 0.5, true", r, ok)
	}
}

func TestQuantileExpr(t *testing.T) {
	reg := metrics.NewRegistry()
	h := reg.Histogram("lag_seconds", 0.1, 1, 10)
	for i := 0; i < 99; i++ {
		h.Observe(0.05)
	}
	h.Observe(5) // p99 lands in (1,10]
	snap := reg.Snapshot()
	direct := h.Quantile(0.99)
	got, ok := Quantile("lag_seconds", 0.99)(snap)
	if !ok {
		t.Fatal("quantile expr: no data")
	}
	if got != direct {
		t.Fatalf("snapshot quantile %v != live quantile %v", got, direct)
	}
	// All mass in overflow clamps to the last bound, exactly as the live
	// histogram answers.
	h2 := reg.Histogram("over_seconds", 0.1, 1)
	h2.Observe(50)
	got, ok = Quantile("over_seconds", 0.5)(reg.Snapshot())
	if !ok || got != h2.Quantile(0.5) || got != 1 {
		t.Fatalf("overflow quantile = %v ok=%v, want 1", got, ok)
	}
}

func TestFlightRecorderRing(t *testing.T) {
	reg := metrics.NewRegistry()
	g := reg.Gauge("x")
	w := New(Config{Registry: reg, Logger: quietLogger(), History: 4})
	for i := 0; i < 10; i++ {
		g.Set(float64(i))
		w.Evaluate(time.Unix(int64(i), 0))
	}
	recs := w.Recorder()
	if len(recs) != 4 {
		t.Fatalf("recorder holds %d snapshots, want 4", len(recs))
	}
	for i, r := range recs {
		wantT := time.Unix(int64(6+i), 0)
		if !r.Time.Equal(wantT) {
			t.Fatalf("recorder[%d].Time = %v, want %v (oldest-first)", i, r.Time, wantT)
		}
		if r.Metrics["x"] != float64(6+i) {
			t.Fatalf("recorder[%d] x = %v", i, r.Metrics["x"])
		}
	}
}

// TestBreachWritesCompleteBundle forces an SLO breach and verifies the
// diagnostic bundle lands atomically with every section present: the
// breached rule, the flight-recorder snapshots, the trace-journal
// export, and both profiles.
func TestBreachWritesCompleteBundle(t *testing.T) {
	dir := t.TempDir()
	reg := metrics.NewRegistry()
	h := reg.Histogram("stream_flush_lag_seconds", 0.1, 1, 10)
	tr := trace.New(trace.Options{Enabled: true, JournalCap: 128})
	sp := tr.Start("pipeline.root")
	sp.End()

	var hooked []Breach
	w := New(Config{
		Registry:  reg,
		Tracer:    tr,
		BundleDir: dir,
		History:   8,
		Logger:    quietLogger(),
		OnBreach:  func(b Breach) { hooked = append(hooked, b) },
		Rules: []Rule{{
			Name: "flush-lag-p99", Expr: Quantile("stream_flush_lag_seconds", 0.99),
			Op: Above, Threshold: 2, For: 2,
		}},
	})

	now := time.Unix(3000, 0)
	h.Observe(0.05) // healthy tick first, so the recorder has history
	w.Evaluate(now)
	for i := 0; i < 100; i++ {
		h.Observe(8)
	}
	w.Evaluate(now.Add(time.Second))
	fired := w.Evaluate(now.Add(2 * time.Second))
	if len(fired) != 1 {
		t.Fatalf("fired = %+v, want 1 breach", fired)
	}
	path := fired[0].BundlePath
	if path == "" || w.LastBundlePath() != path {
		t.Fatalf("bundle path %q, last %q", path, w.LastBundlePath())
	}
	if len(hooked) != 1 || hooked[0].Rule != "flush-lag-p99" {
		t.Fatalf("OnBreach hook = %+v", hooked)
	}

	b, err := ReadBundle(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.Version != bundleVersion || b.Breach.Rule != "flush-lag-p99" || b.Breach.Op != ">" {
		t.Fatalf("bundle header = %+v", b)
	}
	if b.Breach.Value <= 2 {
		t.Fatalf("bundle breach value %v not over threshold", b.Breach.Value)
	}
	if b.RuleFor != 2 {
		t.Fatalf("bundle rule_for = %d", b.RuleFor)
	}
	if len(b.Snapshots) != 3 {
		t.Fatalf("bundle has %d snapshots, want 3", len(b.Snapshots))
	}
	if _, ok := b.Snapshots[0].Metrics["stream_flush_lag_seconds"]; !ok {
		t.Fatal("bundle snapshots missing watched metric")
	}
	var traceDoc struct {
		Spans []struct {
			Name string `json:"name"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(b.Trace, &traceDoc); err != nil {
		t.Fatalf("bundle trace not decodable: %v", err)
	}
	if len(traceDoc.Spans) != 1 || traceDoc.Spans[0].Name != "pipeline.root" {
		t.Fatalf("bundle trace spans = %+v", traceDoc.Spans)
	}
	if !strings.Contains(b.Goroutine, "goroutine profile:") {
		t.Fatal("bundle missing goroutine profile")
	}
	if !strings.Contains(b.Heap, "heap profile:") {
		t.Fatal("bundle missing heap profile")
	}
	if b.NumGoroutine <= 0 || b.GoVersion == "" {
		t.Fatalf("bundle runtime info = %d %q", b.NumGoroutine, b.GoVersion)
	}

	// No .tmp residue (atomic publish).
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
	// Latest resolves to this bundle.
	latest, err := Latest(dir)
	if err != nil || latest != path {
		t.Fatalf("Latest = %q err=%v, want %q", latest, err, path)
	}
}

func TestBundlePruning(t *testing.T) {
	dir := t.TempDir()
	reg := metrics.NewRegistry()
	g := reg.Gauge("x")
	w := New(Config{
		Registry: reg, BundleDir: dir, MaxBundles: 2, Logger: quietLogger(),
		Rules: []Rule{{Name: "x-high", Expr: Metric("x"), Op: Above, Threshold: 1}},
	})
	now := time.Unix(4000, 0)
	for i := 0; i < 5; i++ {
		// Alternate healthy/breaching so each breach re-fires and writes a
		// fresh bundle.
		g.Set(0)
		w.Evaluate(now.Add(time.Duration(2*i) * time.Second))
		g.Set(9)
		if fired := w.Evaluate(now.Add(time.Duration(2*i+1) * time.Second)); len(fired) != 1 {
			t.Fatalf("round %d: fired %d", i, len(fired))
		}
	}
	paths, err := listBundles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("%d bundles on disk, want 2 (pruned)", len(paths))
	}
	latest, _ := Latest(dir)
	if latest != w.LastBundlePath() {
		t.Fatalf("Latest %q != LastBundlePath %q", latest, w.LastBundlePath())
	}
}

func TestLatestOnMissingDir(t *testing.T) {
	p, err := Latest(filepath.Join(t.TempDir(), "nope"))
	if err != nil || p != "" {
		t.Fatalf("Latest on missing dir = %q, %v", p, err)
	}
}

func TestStartStopTicker(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Gauge("x").Set(5)
	w := New(Config{
		Registry: reg, Interval: 5 * time.Millisecond, Logger: quietLogger(),
		Rules: []Rule{{Name: "x-high", Expr: Metric("x"), Op: Above, Threshold: 1}},
	})
	w.Start()
	deadline := time.After(2 * time.Second)
	for w.Breaches() == 0 {
		select {
		case <-deadline:
			t.Fatal("ticker never fired a breach")
		case <-time.After(5 * time.Millisecond):
		}
	}
	w.Stop()
	w.Stop() // idempotent
}
