package watch

import (
	"sync"
	"testing"
	"time"

	"spooftrack/internal/metrics"
	"spooftrack/internal/tsdb"
)

// TestBurnRateFiresWhereSingleWindowStaysSilent is the ISSUE acceptance
// scenario: a slow 2.5% error ratio burns the 99% objective at 2.5x —
// an incident by any SRE book — while the absolute error rate (25/s)
// sits far under any sane single-window rate threshold. The burn-rate
// rule must fire; the rate rule must stay silent.
func TestBurnRateFiresWhereSingleWindowStaysSilent(t *testing.T) {
	reg := metrics.NewRegistry()
	total := reg.Counter("requests_total")
	errs := reg.Counter("request_errors_total")
	db := tsdb.New(tsdb.Options{Registry: reg})

	// 65 minutes of steady traffic at 1000/s with a 2.5% error ratio,
	// scraped every 15s.
	start := time.Unix(100_000, 0)
	var now time.Time
	for i := 0; i <= 65*4; i++ {
		now = start.Add(time.Duration(i) * 15 * time.Second)
		total.Add(15_000)
		errs.Add(375)
		db.ScrapeOnce(now)
	}

	w := New(Config{
		Registry: reg,
		DB:       db,
		Logger:   quietLogger(),
		Rules: []Rule{
			{
				Name:      "error-budget-burn",
				ErrorExpr: Metric("request_errors_total"),
				TotalExpr: Metric("requests_total"),
				Objective: 0.99,
				Windows:   []time.Duration{5 * time.Minute, time.Hour},
				Op:        Above,
				Threshold: 2,
			},
			{
				Name: "error-rate",
				Expr: Metric("request_errors_total"),
				Rate: true, Window: 5 * time.Minute,
				Op: Above, Threshold: 100, // errors/s — 25/s is nowhere near
			},
		},
	})

	fired := w.Evaluate(now)
	if len(fired) != 1 || fired[0].Rule != "error-budget-burn" {
		t.Fatalf("fired = %+v, want exactly the burn-rate rule", fired)
	}
	if fired[0].Value < 2.4 || fired[0].Value > 2.6 {
		t.Fatalf("burn value %v, want ~2.5", fired[0].Value)
	}
	st := w.Status()
	if !st[1].HasData || st[1].Breaching {
		t.Fatalf("single-window rate rule state = %+v, want quiet with data", st[1])
	}
	if st[1].Value < 20 || st[1].Value > 30 {
		t.Fatalf("rate rule value %v, want ~25/s", st[1].Value)
	}
}

// TestBurnRateSlowWindowVetoesSpike: a short error spike saturates the
// fast window but barely moves the slow one — the multi-window rule
// must hold fire (that is its whole point), while a fast-window-only
// variant fires.
func TestBurnRateSlowWindowVetoesSpike(t *testing.T) {
	reg := metrics.NewRegistry()
	total := reg.Counter("requests_total")
	errs := reg.Counter("request_errors_total")
	db := tsdb.New(tsdb.Options{Registry: reg})

	start := time.Unix(200_000, 0)
	var now time.Time
	for i := 0; i <= 60*4; i++ {
		now = start.Add(time.Duration(i) * 15 * time.Second)
		total.Add(15_000)
		if i > 55*4 { // only the last 5 minutes go bad, at 50% errors
			errs.Add(7_500)
		}
		db.ScrapeOnce(now)
	}

	mk := func(name string, windows ...time.Duration) Rule {
		return Rule{
			Name:      name,
			ErrorExpr: Metric("request_errors_total"),
			TotalExpr: Metric("requests_total"),
			Objective: 0.99,
			Windows:   windows,
			Op:        Above,
			Threshold: 10,
		}
	}
	w := New(Config{
		Registry: reg,
		DB:       db,
		Logger:   quietLogger(),
		Rules: []Rule{
			mk("burn-both", 5*time.Minute, time.Hour),
			mk("burn-fast-only", 5*time.Minute),
		},
	})
	fired := w.Evaluate(now)
	if len(fired) != 1 || fired[0].Rule != "burn-fast-only" {
		t.Fatalf("fired = %+v, want only the fast-window variant", fired)
	}
	st := w.Status()
	if st[0].Breaching {
		t.Fatal("multi-window rule breached on a 5m spike")
	}
	if !st[0].HasData || st[0].Value > 10 {
		t.Fatalf("multi-window burn = %+v, want slow-window value under threshold", st[0])
	}
}

// TestBurnRateWithoutDBIsNoData: burn rules need history; without a DB
// they must sit in "no data", never fire, and never mark unhealthy.
func TestBurnRateWithoutDBIsNoData(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("requests_total").Add(100)
	reg.Counter("request_errors_total").Add(100) // 100% errors!
	w := New(Config{
		Registry: reg,
		Logger:   quietLogger(),
		Rules: []Rule{{
			Name:      "burn",
			ErrorExpr: Metric("request_errors_total"),
			TotalExpr: Metric("requests_total"),
			Objective: 0.99,
			Windows:   []time.Duration{5 * time.Minute},
			Op:        Above, Threshold: 1,
		}},
	})
	if fired := w.Evaluate(time.Unix(1000, 0)); len(fired) != 0 || !w.Healthy() {
		t.Fatalf("burn rule without DB fired %v (healthy=%v)", fired, w.Healthy())
	}
	if st := w.Status(); st[0].HasData {
		t.Fatalf("burn rule without DB reports data: %+v", st[0])
	}
}

// TestWindowedRateSmoothsSpikes: with history wired, a Rate rule
// averages over its window, so a one-tick burst between two adjacent
// snapshots cannot fire it — while the legacy two-frame watchdog
// (no DB) fires on the same sequence.
func TestWindowedRateSmoothsSpikes(t *testing.T) {
	mk := func(withDB bool) []Breach {
		reg := metrics.NewRegistry()
		ctr := reg.Counter("dropped_total")
		var db *tsdb.DB
		if withDB {
			db = tsdb.New(tsdb.Options{Registry: reg})
		}
		w := New(Config{
			Registry: reg,
			DB:       db,
			Logger:   quietLogger(),
			Rules: []Rule{{
				Name: "drop-rate", Expr: Metric("dropped_total"),
				Rate: true, Window: time.Minute,
				Op: Above, Threshold: 100,
			}},
		})
		start := time.Unix(300_000, 0)
		var now time.Time
		for i := 0; i <= 120; i++ { // 2 minutes of steady 10/s
			now = start.Add(time.Duration(i) * time.Second)
			ctr.Add(10)
			if withDB {
				db.ScrapeOnce(now)
			}
			w.Evaluate(now)
		}
		ctr.Add(500) // one-tick burst
		now = now.Add(time.Second)
		if withDB {
			db.ScrapeOnce(now)
		}
		return w.Evaluate(now)
	}
	if fired := mk(false); len(fired) != 1 {
		t.Fatalf("two-frame watchdog fired %d on the burst, want 1 (control)", len(fired))
	}
	if fired := mk(true); len(fired) != 0 {
		t.Fatalf("windowed watchdog fired %+v on a one-tick burst", fired)
	}
}

// TestBreachRecoveryRebreach covers the full hysteresis cycle the ISSUE
// calls out: breach, recover, then breach again — the second incident
// must re-fire (with a fresh For streak) and recount in Breaches().
func TestBreachRecoveryRebreach(t *testing.T) {
	reg := metrics.NewRegistry()
	g := reg.Gauge("queue_depth")
	w := New(Config{
		Registry: reg,
		Logger:   quietLogger(),
		Rules: []Rule{{
			Name: "queue-depth", Expr: Metric("queue_depth"),
			Op: Above, Threshold: 100, For: 2,
		}},
	})
	now := time.Unix(5000, 0)
	tick := func(v float64) []Breach {
		g.Set(v)
		now = now.Add(time.Second)
		return w.Evaluate(now)
	}

	// Breach #1 after a full For streak.
	tick(500)
	fired := tick(500)
	if len(fired) != 1 || w.Breaches() != 1 {
		t.Fatalf("first breach: fired=%v breaches=%d", fired, w.Breaches())
	}
	// Recovery.
	if fired := tick(10); len(fired) != 0 || !w.Healthy() {
		t.Fatal("recovery did not clear the breach")
	}
	// Re-breach needs the full streak again — one excursion is not enough.
	if fired := tick(500); len(fired) != 0 {
		t.Fatal("re-breach fired after a single excursion")
	}
	fired = tick(500)
	if len(fired) != 1 || fired[0].Consecutive != 2 {
		t.Fatalf("re-breach: fired=%+v, want streak 2", fired)
	}
	if w.Breaches() != 2 {
		t.Fatalf("Breaches() = %d after two incidents", w.Breaches())
	}
	if w.Healthy() {
		t.Fatal("healthy while re-breached")
	}
}

// TestBundlePruningOrder verifies MaxBundles keeps the NEWEST bundles:
// the survivors must be exactly the last written, in age order.
func TestBundlePruningOrder(t *testing.T) {
	dir := t.TempDir()
	reg := metrics.NewRegistry()
	g := reg.Gauge("x")
	w := New(Config{
		Registry: reg, BundleDir: dir, MaxBundles: 3, Logger: quietLogger(),
		Rules: []Rule{{Name: "x-high", Expr: Metric("x"), Op: Above, Threshold: 1}},
	})
	now := time.Unix(6000, 0)
	var written []string
	for i := 0; i < 6; i++ {
		g.Set(0)
		w.Evaluate(now.Add(time.Duration(2*i) * time.Second))
		g.Set(9)
		fired := w.Evaluate(now.Add(time.Duration(2*i+1) * time.Second))
		if len(fired) != 1 || fired[0].BundlePath == "" {
			t.Fatalf("round %d: fired=%v", i, fired)
		}
		written = append(written, fired[0].BundlePath)
	}
	paths, err := listBundles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Fatalf("%d bundles survive, want 3", len(paths))
	}
	for i, want := range written[3:] {
		if paths[i] != want {
			t.Fatalf("survivor[%d] = %s, want %s (newest kept, oldest-first order)", i, paths[i], want)
		}
	}
}

// TestBundleEmbedsHistory: with a DB and BundleHistory wired, a breach
// bundle carries the named families' range over the rule's window.
func TestBundleEmbedsHistory(t *testing.T) {
	dir := t.TempDir()
	reg := metrics.NewRegistry()
	ctr := reg.Counter("events_total")
	g := reg.Gauge("queue_depth")
	db := tsdb.New(tsdb.Options{Registry: reg})

	start := time.Unix(400_000, 0)
	var now time.Time
	for i := 0; i <= 120; i++ {
		now = start.Add(time.Duration(i) * time.Second)
		ctr.Add(10)
		db.ScrapeOnce(now)
	}
	w := New(Config{
		Registry:      reg,
		DB:            db,
		BundleHistory: []string{"events_total"},
		BundleDir:     dir,
		Logger:        quietLogger(),
		Rules: []Rule{{
			Name: "queue-depth", Expr: Metric("queue_depth"),
			Op: Above, Threshold: 100, Window: 30 * time.Minute,
		}},
	})
	g.Set(500)
	fired := w.Evaluate(now)
	if len(fired) != 1 || fired[0].BundlePath == "" {
		t.Fatalf("fired = %+v", fired)
	}
	b, err := ReadBundle(fired[0].BundlePath)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.History) != 1 || b.History[0].Family != "events_total" {
		t.Fatalf("bundle history = %+v", b.History)
	}
	if n := len(b.History[0].Points); n < 100 {
		t.Fatalf("bundle history has %d points, want the full recorded window", n)
	}
	if want := fired[0].Time.Add(-30 * time.Minute); !b.HistoryFrom.Equal(want) {
		t.Fatalf("HistoryFrom = %v, want %v (rule window wins over the 10m floor)", b.HistoryFrom, want)
	}
	if b.Snapshots[len(b.Snapshots)-1].TS != now.Unix() {
		t.Fatalf("frame ts = %d, want %d", b.Snapshots[len(b.Snapshots)-1].TS, now.Unix())
	}
}

// TestConcurrentEvaluateScrapeQuery races rule evaluation against
// scraping and querying the shared DB; run with -race (scripts/ci.sh
// covers internal/watch with the tsdb package).
func TestConcurrentEvaluateScrapeQuery(t *testing.T) {
	reg := metrics.NewRegistry()
	total := reg.Counter("requests_total")
	errs := reg.Counter("request_errors_total")
	db := tsdb.New(tsdb.Options{Registry: reg})
	w := New(Config{
		Registry: reg,
		DB:       db,
		Logger:   quietLogger(),
		Rules: []Rule{
			{
				Name:      "burn",
				ErrorExpr: Metric("request_errors_total"),
				TotalExpr: Metric("requests_total"),
				Objective: 0.99,
				Windows:   []time.Duration{5 * time.Minute, time.Hour},
				Op:        Above, Threshold: 2,
			},
			{
				Name: "req-rate", Expr: Metric("requests_total"),
				Rate: true, Op: Above, Threshold: 1e12,
			},
		},
	})
	start := time.Unix(500_000, 0)
	const iters = 300
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			total.Add(1000)
			errs.Add(25)
			db.ScrapeOnce(start.Add(time.Duration(i) * time.Second))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			w.Evaluate(start.Add(time.Duration(i) * time.Second))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			db.Query(tsdb.Query{Series: "requests_total", From: start, To: start.Add(time.Hour), Rate: true})
			w.Status()
			w.Healthy()
		}
	}()
	wg.Wait()
}
