// Package watch is the pipeline's SLO watchdog: declarative rules
// evaluated on a ticker against metrics-registry snapshots, a bounded
// flight-recorder ring of recent snapshots, and — when a rule stays in
// breach for its configured number of consecutive evaluations — an
// atomic diagnostic bundle written to disk carrying the breached rule,
// the recorder's snapshots, the trace-journal export, and
// goroutine/heap profiles. The paper's operational posture (an origin
// AS running localization continuously against live spoofed traffic)
// needs exactly this layer: when the loop degrades at 3am, the evidence
// of *why* is already on disk before anyone looks.
//
// Rules are built from small snapshot-extractor combinators:
//
//	watch.Rule{
//	    Name:      "flush-lag-p99",
//	    Expr:      watch.Quantile("stream_flush_lag_seconds", 0.99),
//	    Op:        watch.Above,
//	    Threshold: 2.0,
//	    For:       3,
//	}
//
// Expressions are pure functions of one snapshot, so a rule's Rate
// variant (per-second delta between consecutive snapshots) composes
// with every extractor, and tests can drive Evaluate directly without a
// ticker or a clock.
package watch

import (
	"log/slog"
	"strconv"
	"strings"
	"sync"
	"time"

	"spooftrack/internal/metrics"
	"spooftrack/internal/trace"
	"spooftrack/internal/tsdb"
)

// Expr extracts one value from a registry snapshot. The bool reports
// whether the value exists (metric registered, denominator non-zero);
// rules treat a missing value as "no data", which resets their breach
// streak rather than firing.
type Expr func(snap map[string]any) (float64, bool)

// Metric reads a scalar metric (counter, gauge, or gauge func) by
// registry name. For histograms it reads the observation count.
func Metric(name string) Expr {
	return func(snap map[string]any) (float64, bool) {
		return scalar(snap[name])
	}
}

// Series reads one child of a labeled vector. key is the child's
// "label=value,label=value" identity in label-name order — the same key
// the registry's JSON export uses.
func Series(name, key string) Expr {
	return func(snap map[string]any) (float64, bool) {
		vec, ok := snap[name].(map[string]any)
		if !ok {
			return 0, false
		}
		return scalar(vec[key])
	}
}

// Quantile estimates a quantile of a histogram metric from its bucket
// snapshot, with the same interpolation semantics as
// metrics.Histogram.Quantile.
func Quantile(name string, q float64) Expr {
	return func(snap map[string]any) (float64, bool) {
		hs, ok := snap[name].(metrics.HistogramSnapshot)
		if !ok {
			return 0, false
		}
		return quantileFromBuckets(hs, q)
	}
}

// Ratio is num/den on one snapshot; missing when either side is missing
// or the denominator is zero.
func Ratio(num, den Expr) Expr {
	return func(snap map[string]any) (float64, bool) {
		n, ok1 := num(snap)
		d, ok2 := den(snap)
		if !ok1 || !ok2 || d == 0 {
			return 0, false
		}
		return n / d, true
	}
}

// VecSum adds every child of a labeled vector — the cross-label total
// Series can't express without enumerating keys (e.g. probe losses
// summed over all peering links). Missing when the vector is absent or
// has no children, so rules on a vector that hasn't emitted yet stay in
// "no data" instead of comparing against zero.
func VecSum(name string) Expr {
	return func(snap map[string]any) (float64, bool) {
		vec, ok := snap[name].(map[string]any)
		if !ok || len(vec) == 0 {
			return 0, false
		}
		total := 0.0
		for _, v := range vec {
			s, ok := scalar(v)
			if !ok {
				return 0, false
			}
			total += s
		}
		return total, true
	}
}

// Sum adds expressions; missing when any operand is missing.
func Sum(exprs ...Expr) Expr {
	return func(snap map[string]any) (float64, bool) {
		total := 0.0
		for _, e := range exprs {
			v, ok := e(snap)
			if !ok {
				return 0, false
			}
			total += v
		}
		return total, true
	}
}

// scalar coerces the snapshot value shapes (counter int64, gauge
// float64, histogram snapshot -> count) to float64.
func scalar(v any) (float64, bool) {
	switch x := v.(type) {
	case int64:
		return float64(x), true
	case float64:
		return x, true
	case metrics.HistogramSnapshot:
		return float64(x.Count), true
	}
	return 0, false
}

// quantileFromBuckets reconstructs bucket counts from a
// HistogramSnapshot (full bound layout in Bounds, occupied buckets in
// the sparse Buckets map) and interpolates with exactly the semantics
// of metrics.Histogram.Quantile: empty buckets advance the base, and
// overflow mass clamps to the last bound.
func quantileFromBuckets(hs metrics.HistogramSnapshot, q float64) (float64, bool) {
	if hs.Count == 0 {
		return 0, false
	}
	if len(hs.Bounds) == 0 {
		return hs.Max, true // zero-bounds histogram, mirrors Quantile
	}
	rank := q * float64(hs.Count)
	acc := int64(0)
	lo := 0.0
	for i := 0; i <= len(hs.Bounds); i++ {
		var n int64
		if i < len(hs.Bounds) {
			n = hs.Buckets[strconv.FormatFloat(hs.Bounds[i], 'g', -1, 64)]
		} else {
			n = hs.Buckets["+inf"]
		}
		if n == 0 {
			if i < len(hs.Bounds) {
				lo = hs.Bounds[i]
			}
			continue
		}
		if float64(acc+n) >= rank {
			if i >= len(hs.Bounds) {
				return hs.Bounds[len(hs.Bounds)-1], true
			}
			frac := (rank - float64(acc)) / float64(n)
			return lo + frac*(hs.Bounds[i]-lo), true
		}
		acc += n
		lo = hs.Bounds[i]
	}
	return hs.Bounds[len(hs.Bounds)-1], true
}

// Op compares a rule's value to its threshold.
type Op int

const (
	// Above breaches when value > threshold.
	Above Op = iota
	// Below breaches when value < threshold.
	Below
)

func (o Op) String() string {
	if o == Below {
		return "<"
	}
	return ">"
}

// Rule is one declarative SLO: an extracted value compared to a
// threshold, breaching only after For consecutive failing evaluations
// (hysteresis against single-tick noise).
type Rule struct {
	// Name identifies the rule in logs, bundles, and /readyz.
	Name string
	// Expr extracts the value under watch from a snapshot.
	Expr Expr
	// Rate, when set, watches Expr's per-second growth instead of its
	// level — the shape counter-derived SLOs (drop rate, error rate)
	// take. With a history DB wired (Config.DB) the rate is taken over
	// Window of real history, which a one-tick spike between two
	// adjacent snapshots cannot fake; without one it falls back to the
	// delta between consecutive evaluation snapshots.
	Rate bool
	// Window is the history span Rate rules average over when Config.DB
	// is set (default 1m). Ignored for level rules.
	Window time.Duration
	// Op and Threshold define the breach condition.
	Op        Op
	Threshold float64
	// For is the number of consecutive breaching evaluations before the
	// rule fires (default 1 — fire immediately).
	For int

	// Burn-rate SLO fields (Google SRE multi-window form). When
	// Objective, ErrorExpr, and TotalExpr are all set and Config.DB is
	// wired, the rule watches
	//
	//	burn(W) = (increase(error, W) / increase(total, W)) / (1 − Objective)
	//
	// for every window in Windows (e.g. a fast 5m and a slow 1h), and
	// reports the SMALLEST burn — so an Above rule breaches only when
	// every window burns hot: the fast window proves it is happening
	// now, the slow one proves it is not a blip. Windows reaching past
	// recorded history clamp to the oldest sample, so a freshly started
	// daemon measures real burn instead of diluting over missing time.
	ErrorExpr Expr
	TotalExpr Expr
	Objective float64 // availability target in (0,1), e.g. 0.999
	Windows   []time.Duration
}

// burnRule reports whether the rule is a multi-window burn-rate SLO.
func (r Rule) burnRule() bool {
	return r.Objective > 0 && r.Objective < 1 && r.ErrorExpr != nil && r.TotalExpr != nil && len(r.Windows) > 0
}

// RuleStatus is one rule's current evaluation state.
type RuleStatus struct {
	Name        string  `json:"name"`
	Value       float64 `json:"value"`
	HasData     bool    `json:"has_data"`
	Threshold   float64 `json:"threshold"`
	Op          string  `json:"op"`
	Consecutive int     `json:"consecutive"`
	For         int     `json:"for"`
	Breaching   bool    `json:"breaching"`
}

// Breach describes a rule that just fired (crossed its For streak).
type Breach struct {
	Rule        string    `json:"rule"`
	Op          string    `json:"op"`
	Threshold   float64   `json:"threshold"`
	Value       float64   `json:"value"`
	Consecutive int       `json:"consecutive"`
	Time        time.Time `json:"time"`
	// BundlePath is where the diagnostic bundle landed ("" when bundle
	// writing is disabled or failed; failures are logged).
	BundlePath string `json:"bundle_path,omitempty"`
}

// Snapshot is one flight-recorder frame: a registry snapshot and when
// it was taken. TS repeats the capture instant as unix seconds so
// exported frames are self-describing to consumers that don't parse
// RFC 3339.
type Snapshot struct {
	Time    time.Time      `json:"time"`
	TS      int64          `json:"ts"`
	Metrics map[string]any `json:"metrics"`
}

// Config assembles a Watchdog.
type Config struct {
	// Registry is the metrics registry to watch (required).
	Registry *metrics.Registry
	// DB, when non-nil, gives rules metric history: Rate rules average
	// over their Window instead of two adjacent ticks, burn-rate rules
	// become possible, and breach bundles embed the relevant query
	// window. The watchdog never writes to it.
	DB *tsdb.DB
	// BundleHistory names metric families whose recent history (over the
	// breached rule's longest window, at least 10m) is embedded in
	// diagnostic bundles when DB is set.
	BundleHistory []string
	// Rules are the SLOs to evaluate each tick.
	Rules []Rule
	// Interval is the evaluation cadence for Start (default 5s).
	Interval time.Duration
	// History bounds the flight-recorder ring (default 32 snapshots).
	History int
	// Tracer, when non-nil, has its journal exported into bundles.
	Tracer *trace.Tracer
	// BundleDir is where diagnostic bundles are written; empty disables
	// bundle writing (breaches still log and fire OnBreach).
	BundleDir string
	// MaxBundles caps bundles kept in BundleDir, oldest pruned (default 8).
	MaxBundles int
	// Logger receives breach/recovery messages (default slog.Default()).
	Logger *slog.Logger
	// OnBreach, when non-nil, is called synchronously for every fired
	// breach, after the bundle is written.
	OnBreach func(Breach)
}

// Watchdog evaluates SLO rules against registry snapshots and captures
// diagnostic bundles on breach. Create with New; drive with Start/Stop
// (ticker) or Evaluate (manual, e.g. tests).
type Watchdog struct {
	cfg Config

	mu         sync.Mutex
	ring       []Snapshot // flight recorder, oldest first once full
	ringNext   int
	ringFull   bool
	prev       *Snapshot
	states     []ruleState
	lastBundle string
	breaches   uint64

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

type ruleState struct {
	consecutive int
	breaching   bool // fired and not yet recovered
	lastValue   float64
	hasData     bool
}

// New builds a watchdog. It panics without a registry — a watchdog with
// nothing to watch is a wiring bug.
func New(cfg Config) *Watchdog {
	if cfg.Registry == nil {
		panic("watch: Config.Registry is required")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 5 * time.Second
	}
	if cfg.History <= 0 {
		cfg.History = 32
	}
	if cfg.MaxBundles <= 0 {
		cfg.MaxBundles = 8
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	return &Watchdog{
		cfg:    cfg,
		ring:   make([]Snapshot, cfg.History),
		states: make([]ruleState, len(cfg.Rules)),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
}

// Start runs the evaluation ticker until Stop.
func (w *Watchdog) Start() {
	go func() {
		defer close(w.done)
		t := time.NewTicker(w.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-w.stop:
				return
			case <-t.C:
				w.Evaluate(time.Now())
			}
		}
	}()
}

// Stop halts the ticker and waits for the evaluation loop to exit. Safe
// to call more than once, and without a prior Start.
func (w *Watchdog) Stop() {
	w.stopOnce.Do(func() { close(w.stop) })
	select {
	case <-w.done:
	default:
		// Start never ran; don't block on its goroutine.
		select {
		case <-w.done:
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// Evaluate runs one tick at the given time: snapshot the registry, push
// it into the flight recorder, evaluate every rule, and fire breaches
// whose For streak completes. It returns the breaches fired this tick
// (usually none). Exported so tests and callers without a ticker can
// drive the watchdog deterministically.
func (w *Watchdog) Evaluate(now time.Time) []Breach {
	cur := Snapshot{Time: now, TS: now.Unix(), Metrics: w.cfg.Registry.Snapshot()}

	w.mu.Lock()
	prev := w.prev
	w.ring[w.ringNext] = cur
	w.ringNext++
	if w.ringNext == len(w.ring) {
		w.ringNext = 0
		w.ringFull = true
	}
	w.prev = &cur

	var fired []Breach
	for i, rule := range w.cfg.Rules {
		st := &w.states[i]
		value, ok := w.eval(rule, cur, prev)
		st.lastValue, st.hasData = value, ok
		breachingNow := ok && compare(rule.Op, value, rule.Threshold)
		if !breachingNow {
			if st.breaching {
				w.cfg.Logger.Info("slo recovered", "rule", rule.Name,
					"value", value, "threshold", rule.Threshold)
			}
			st.consecutive = 0
			st.breaching = false
			continue
		}
		st.consecutive++
		need := rule.For
		if need <= 0 {
			need = 1
		}
		if st.consecutive < need || st.breaching {
			continue
		}
		st.breaching = true
		w.breaches++
		b := Breach{
			Rule:        rule.Name,
			Op:          rule.Op.String(),
			Threshold:   rule.Threshold,
			Value:       value,
			Consecutive: st.consecutive,
			Time:        now,
		}
		if w.cfg.BundleDir != "" {
			path, err := w.writeBundleLocked(b)
			if err != nil {
				w.cfg.Logger.Warn("diagnostic bundle write failed", "rule", rule.Name, "err", err)
			} else {
				b.BundlePath = path
				w.lastBundle = path
			}
		}
		fired = append(fired, b)
	}
	w.mu.Unlock()

	for _, b := range fired {
		w.cfg.Logger.Warn("slo breach", "rule", b.Rule,
			"value", b.Value, "op", b.Op, "threshold", b.Threshold,
			"consecutive", b.Consecutive, "bundle", b.BundlePath)
		if w.cfg.OnBreach != nil {
			w.cfg.OnBreach(b)
		}
	}
	return fired
}

// eval computes a rule's value: the expression on the current snapshot;
// its per-second growth over Window (history-backed) or against the
// previous snapshot (two-frame fallback) for Rate rules; or the minimum
// multi-window burn for burn-rate rules.
func (w *Watchdog) eval(rule Rule, cur Snapshot, prev *Snapshot) (float64, bool) {
	if rule.burnRule() {
		return w.evalBurn(rule, cur)
	}
	v, ok := rule.Expr(cur.Metrics)
	if !rule.Rate {
		return v, ok
	}
	if !ok {
		return 0, false
	}
	if w.cfg.DB != nil {
		if rv, rok := w.evalWindowRate(rule, cur, v); rok {
			return rv, true
		}
	}
	if prev == nil {
		return 0, false
	}
	pv, pok := rule.Expr(prev.Metrics)
	dt := cur.Time.Sub(prev.Time).Seconds()
	if !pok || dt <= 0 {
		return 0, false
	}
	return (v - pv) / dt, true
}

// evalWindowRate is the history-backed Rate path: Expr now versus Expr
// over a reconstructed snapshot Window ago, divided by the real span.
// The window clamps to the DB's oldest sample so warmup rates are
// honest rather than silent.
func (w *Watchdog) evalWindowRate(rule Rule, cur Snapshot, curVal float64) (float64, bool) {
	win := rule.Window
	if win <= 0 {
		win = time.Minute
	}
	then := cur.Time.Add(-win)
	if early, ok := w.cfg.DB.Earliest(); ok && early.After(then) {
		then = early
	}
	dt := cur.Time.Sub(then).Seconds()
	if dt <= 0 {
		return 0, false
	}
	pv, ok := rule.Expr(w.cfg.DB.SnapshotAt(then))
	if !ok {
		return 0, false
	}
	return (curVal - pv) / dt, true
}

// evalBurn computes the minimum burn rate across the rule's windows.
// "No traffic in a window" is no data, not zero burn.
func (w *Watchdog) evalBurn(rule Rule, cur Snapshot) (float64, bool) {
	if w.cfg.DB == nil {
		return 0, false
	}
	eNow, ok1 := rule.ErrorExpr(cur.Metrics)
	tNow, ok2 := rule.TotalExpr(cur.Metrics)
	if !ok1 || !ok2 {
		return 0, false
	}
	denom := 1 - rule.Objective
	early, hasEarly := w.cfg.DB.Earliest()
	best := 0.0
	for i, win := range rule.Windows {
		then := cur.Time.Add(-win)
		if hasEarly && early.After(then) {
			then = early
		}
		if !then.Before(cur.Time) {
			return 0, false
		}
		past := w.cfg.DB.SnapshotAt(then)
		// A counter absent from the reconstructed past snapshot had not
		// been incremented yet: its value then was zero.
		eThen, _ := rule.ErrorExpr(past)
		tThen, _ := rule.TotalExpr(past)
		dTot := tNow - tThen
		if dTot <= 0 {
			return 0, false
		}
		dErr := eNow - eThen
		if dErr < 0 {
			dErr = 0
		}
		burn := (dErr / dTot) / denom
		if i == 0 || burn < best {
			best = burn
		}
	}
	return best, true
}

func compare(op Op, v, threshold float64) bool {
	if op == Below {
		return v < threshold
	}
	return v > threshold
}

// Healthy reports whether no rule is currently in breach — the readiness
// signal /readyz serves.
func (w *Watchdog) Healthy() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	for i := range w.states {
		if w.states[i].breaching {
			return false
		}
	}
	return true
}

// ReadyFunc returns a readiness gate that ANDs the watchdog's SLO
// health with extra conditions — the membership signal the
// sharded-ingest controller consults before keeping a shard in the
// ring (internal/shard: /readyz + SLO rules gate membership, so a
// breaching shard is drained rather than silently miscounted). It is
// callable on a nil *Watchdog, yielding a gate over the extra
// conditions only, so a shard running without SLO rules is ready
// whenever its own conditions hold.
func (w *Watchdog) ReadyFunc(extra ...func() bool) func() bool {
	return func() bool {
		if w != nil && !w.Healthy() {
			return false
		}
		for _, f := range extra {
			if f != nil && !f() {
				return false
			}
		}
		return true
	}
}

// Status returns every rule's current evaluation state.
func (w *Watchdog) Status() []RuleStatus {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]RuleStatus, len(w.cfg.Rules))
	for i, rule := range w.cfg.Rules {
		st := w.states[i]
		out[i] = RuleStatus{
			Name:        rule.Name,
			Value:       st.lastValue,
			HasData:     st.hasData,
			Threshold:   rule.Threshold,
			Op:          rule.Op.String(),
			Consecutive: st.consecutive,
			For:         max(rule.For, 1),
			Breaching:   st.breaching,
		}
	}
	return out
}

// BreachingRules returns the names of rules currently in breach.
func (w *Watchdog) BreachingRules() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	var out []string
	for i := range w.states {
		if w.states[i].breaching {
			out = append(out, w.cfg.Rules[i].Name)
		}
	}
	return out
}

// Breaches returns how many breaches have fired since construction.
func (w *Watchdog) Breaches() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.breaches
}

// LastBundlePath returns the most recently written bundle's path ("" if
// none yet).
func (w *Watchdog) LastBundlePath() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastBundle
}

// Recorder returns the flight recorder's snapshots, oldest first.
func (w *Watchdog) Recorder() []Snapshot {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.recorderLocked()
}

func (w *Watchdog) recorderLocked() []Snapshot {
	if !w.ringFull {
		return append([]Snapshot(nil), w.ring[:w.ringNext]...)
	}
	out := make([]Snapshot, 0, len(w.ring))
	out = append(out, w.ring[w.ringNext:]...)
	out = append(out, w.ring[:w.ringNext]...)
	return out
}

// ruleByName resolves a rule for bundle metadata.
func (w *Watchdog) ruleByName(name string) (Rule, bool) {
	for _, r := range w.cfg.Rules {
		if r.Name == name {
			return r, true
		}
	}
	return Rule{}, false
}

// sanitizeFile maps a rule name onto a filesystem-safe token.
func sanitizeFile(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		}
		return '-'
	}, name)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
