// Package policy runs the routing-policy compliance survey of Fig. 9:
// across announcement configurations, what fraction of ASes follow the
// best-relationship criterion, and what fraction additionally follow
// shortest-path (the Gao-Rexford model)?
package policy

import (
	"spooftrack/internal/bgp"
	"spooftrack/internal/stats"
)

// Survey holds per-configuration compliance fractions.
type Survey struct {
	// BestRel[c] is the fraction of evaluated ASes following the
	// best-relationship criterion in configuration c.
	BestRel []float64
	// GaoRexford[c] is the fraction following both criteria.
	GaoRexford []float64
}

// Add audits one configuration outcome and appends its fractions.
func (s *Survey) Add(e *bgp.Engine, out *bgp.Outcome) {
	audit := e.Audit(out)
	s.BestRel = append(s.BestRel, audit.FracBestRel())
	s.GaoRexford = append(s.GaoRexford, audit.FracGaoRexford())
}

// Len returns the number of audited configurations.
func (s *Survey) Len() int { return len(s.BestRel) }

// CDF is the cumulative distribution Fig. 9 plots: for each observed
// compliance fraction x, the fraction of configurations with compliance
// at most x. Returned as (x, y) pairs sorted by x.
type CDFPoint struct {
	Compliance float64
	CumFrac    float64
}

// BestRelCDF returns the distribution of best-relationship compliance
// across configurations.
func (s *Survey) BestRelCDF() []CDFPoint { return cdf(s.BestRel) }

// GaoRexfordCDF returns the distribution of full Gao-Rexford compliance
// across configurations.
func (s *Survey) GaoRexfordCDF() []CDFPoint { return cdf(s.GaoRexford) }

func cdf(xs []float64) []CDFPoint {
	ccdf := stats.CCDF(xs)
	if len(ccdf) == 0 {
		return nil
	}
	out := make([]CDFPoint, len(ccdf))
	for i, pt := range ccdf {
		// CCDF gives P[X >= x]; CDF at x is 1 - P[X > x]. Using the next
		// point's fraction keeps step-function semantics.
		cum := 1.0
		if i+1 < len(ccdf) {
			cum = 1 - ccdf[i+1].Frac
		}
		out[i] = CDFPoint{Compliance: pt.Value, CumFrac: cum}
	}
	return out
}

// Summary reports the mean compliance across configurations.
func (s *Survey) Summary() (meanBestRel, meanGaoRexford float64) {
	return stats.Mean(s.BestRel), stats.Mean(s.GaoRexford)
}
