package policy

import (
	"math"
	"testing"

	"spooftrack/internal/bgp"
	"spooftrack/internal/peering"
	"spooftrack/internal/topo"
)

func TestSurveyAcrossConfigs(t *testing.T) {
	p := topo.DefaultGenParams(70)
	p.NumASes = 800
	g, err := topo.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	plat, err := peering.New(g, peering.Options{EngineParams: bgp.DefaultParams(70)})
	if err != nil {
		t.Fatal(err)
	}
	s := &Survey{}
	for _, cfg := range []bgp.Config{
		{Anns: []bgp.Announcement{{Link: 0}, {Link: 1}, {Link: 2}}},
		{Anns: []bgp.Announcement{{Link: 0, Prepend: 4}, {Link: 1}}},
		{Anns: []bgp.Announcement{{Link: 3}, {Link: 4}}},
	} {
		out, err := plat.Deploy(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.Add(plat.Engine(), out)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	meanBR, meanGR := s.Summary()
	if meanBR <= 0.5 || meanBR > 1 {
		t.Fatalf("mean best-relationship compliance %v implausible", meanBR)
	}
	if meanGR > meanBR {
		t.Fatal("Gao-Rexford compliance cannot exceed best-relationship")
	}
	// With the default modest policy noise most ASes comply.
	if meanBR < 0.8 {
		t.Fatalf("compliance %v lower than expected for default noise", meanBR)
	}
}

func TestCDFWellFormed(t *testing.T) {
	s := &Survey{BestRel: []float64{0.8, 0.9, 0.9, 1.0}}
	pts := s.BestRelCDF()
	if len(pts) != 3 {
		t.Fatalf("CDF %v, want 3 distinct values", pts)
	}
	// Final point must reach 1.
	if pts[len(pts)-1].CumFrac != 1 {
		t.Fatalf("CDF does not reach 1: %v", pts)
	}
	// Non-decreasing.
	for i := 1; i < len(pts); i++ {
		if pts[i].CumFrac < pts[i-1].CumFrac || pts[i].Compliance <= pts[i-1].Compliance {
			t.Fatalf("CDF not monotone: %v", pts)
		}
	}
	// CDF at 0.8 = 1/4.
	if math.Abs(pts[0].CumFrac-0.25) > 1e-12 {
		t.Fatalf("CDF(0.8) = %v, want 0.25", pts[0].CumFrac)
	}
}

func TestCDFEmpty(t *testing.T) {
	s := &Survey{}
	if pts := s.GaoRexfordCDF(); pts != nil {
		t.Fatal("empty survey should produce nil CDF")
	}
}
