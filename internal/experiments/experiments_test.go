package experiments

import (
	"strings"
	"sync"
	"testing"

	"spooftrack/internal/sched"
	"spooftrack/internal/spoof"
)

var (
	testLabOnce sync.Once
	testLab     *Lab
	testLabErr  error
)

// lab returns a shared reduced-scale measured lab for the experiment
// tests (building it once keeps the suite fast).
func lab(t *testing.T) *Lab {
	t.Helper()
	testLabOnce.Do(func() {
		testLab, testLabErr = NewLab(LabParams{
			Seed:             7,
			NumASes:          1500,
			NumProbes:        500,
			NumCollectors:    120,
			MaxPoisonTargets: 60,
		})
	})
	if testLabErr != nil {
		t.Fatal(testLabErr)
	}
	return testLab
}

func TestLabShape(t *testing.T) {
	l := lab(t)
	counts := sched.PhaseCounts(l.Plan)
	if counts[sched.PhaseLocations] != 64 || counts[sched.PhasePrepending] != 294 || counts[sched.PhasePoisoning] != 60 {
		t.Fatalf("plan counts %v", counts)
	}
	if l.Campaign.NumSources() == 0 {
		t.Fatal("no sources")
	}
}

func TestFig3Shapes(t *testing.T) {
	l := lab(t)
	r := Fig3(l)
	// Each successive phase must not increase the mean cluster size
	// (refinement only splits). Note the singleton *fraction* can dip
	// when a split turns one big cluster into several medium ones.
	parts := l.Campaign.PhasePartitions()
	if parts[sched.PhasePrepending].Summarize().MeanSize > parts[sched.PhaseLocations].Summarize().MeanSize+1e-9 {
		t.Fatal("prepending phase grew mean cluster size")
	}
	if parts[sched.PhasePoisoning].Summarize().MeanSize > parts[sched.PhasePrepending].Summarize().MeanSize+1e-9 {
		t.Fatal("poisoning phase grew mean cluster size")
	}
	// Most clusters end up small.
	if r.SingletonFrac[sched.PhasePoisoning] < 0.5 {
		t.Fatalf("final singleton fraction %.2f; techniques ineffective", r.SingletonFrac[sched.PhasePoisoning])
	}
	// CCDFs start at 1.0.
	for ph, pts := range r.CCDF {
		if len(pts) == 0 || pts[0].Frac != 1.0 {
			t.Fatalf("phase %v CCDF malformed", ph)
		}
	}
	if !strings.Contains(r.String(), "Figure 3") {
		t.Fatal("String() missing header")
	}
}

func TestFig4Shapes(t *testing.T) {
	l := lab(t)
	r := Fig4(l)
	if len(r.Mean) != l.Campaign.NumConfigs() {
		t.Fatal("trajectory length mismatch")
	}
	// Mean cluster size never increases.
	for i := 1; i < len(r.Mean); i++ {
		if r.Mean[i] > r.Mean[i-1]+1e-9 {
			t.Fatalf("mean increased at step %d", i)
		}
	}
	// Diminishing returns: the first quarter of configs does more work
	// than the last quarter.
	q := len(r.Mean) / 4
	firstGain := r.Mean[0] - r.Mean[q]
	lastGain := r.Mean[len(r.Mean)-1-q] - r.Mean[len(r.Mean)-1]
	if firstGain < lastGain {
		t.Fatalf("no diminishing returns: first-quarter gain %.2f < last %.2f", firstGain, lastGain)
	}
	if !strings.Contains(r.String(), "Figure 4") {
		t.Fatal("String() missing header")
	}
}

func TestFig5Shapes(t *testing.T) {
	r := Fig5(lab(t))
	if len(r.Scenarios) != 3 {
		t.Fatalf("got %d scenarios, want 3", len(r.Scenarios))
	}
	if r.Scenarios[0].NumConfigs != 358 || r.Scenarios[1].NumConfigs != 118 || r.Scenarios[2].NumConfigs != 31 {
		t.Fatalf("config counts %d/%d/%d, want 358/118/31",
			r.Scenarios[0].NumConfigs, r.Scenarios[1].NumConfigs, r.Scenarios[2].NumConfigs)
	}
	// More locations end with smaller mean clusters.
	final := func(s FootprintScenario) float64 { return s.MeanTrajectory[len(s.MeanTrajectory)-1] }
	if final(r.Scenarios[0]) > final(r.Scenarios[1]) || final(r.Scenarios[1]) > final(r.Scenarios[2]) {
		t.Fatalf("footprint ordering violated: %.2f, %.2f, %.2f",
			final(r.Scenarios[0]), final(r.Scenarios[1]), final(r.Scenarios[2]))
	}
	// Min <= mean <= max everywhere.
	for _, s := range r.Scenarios {
		for i := range s.MeanTrajectory {
			if s.MinTrajectory[i] > s.MeanTrajectory[i]+1e-9 || s.MeanTrajectory[i] > s.MaxTrajectory[i]+1e-9 {
				t.Fatal("trajectory band inconsistent")
			}
		}
	}
	// Fewer locations leave a heavier tail.
	if r.Scenarios[2].FracOver25 < r.Scenarios[0].FracOver25 {
		t.Fatalf("5-location tail %.4f lighter than 7-location %.4f",
			r.Scenarios[2].FracOver25, r.Scenarios[0].FracOver25)
	}
	if !strings.Contains(r.String(), "Figure 5") || !strings.Contains(r.Fig6String(), "Figure 6") {
		t.Fatal("render headers missing")
	}
}

func TestFig7Shapes(t *testing.T) {
	r := Fig7(lab(t))
	if r.MeanNear <= 0 || r.MeanFar <= 0 {
		t.Fatal("distance groups empty")
	}
	// The paper's qualitative claim: nearby ASes are in smaller (or
	// equal) clusters on average.
	if r.MeanNear > r.MeanFar {
		t.Fatalf("near mean %.2f > far mean %.2f: distance trend violated", r.MeanNear, r.MeanFar)
	}
	// Each group's CDF ends at 1.
	for grp, pts := range r.Groups {
		if len(pts) == 0 || pts[len(pts)-1].CumFrac < 0.999 {
			t.Fatalf("group %d CDF incomplete", grp)
		}
	}
	if !strings.Contains(r.String(), "Figure 7") {
		t.Fatal("String() missing header")
	}
}

func TestFig8Shapes(t *testing.T) {
	p := DefaultFig8Params()
	p.NumRandomSequences = 40
	p.GreedySteps = 24
	r := Fig8(lab(t), p)
	if len(r.Greedy) != 24 {
		t.Fatalf("greedy trajectory %d steps, want 24", len(r.Greedy))
	}
	// Greedy at 10 must beat the random median at 10.
	if r.GreedyAt10 >= r.RandomAt10 {
		t.Fatalf("greedy %.2f not better than random %.2f after 10 configs", r.GreedyAt10, r.RandomAt10)
	}
	if !strings.Contains(r.String(), "Figure 8") {
		t.Fatal("String() missing header")
	}
}

func TestFig9Shapes(t *testing.T) {
	l := lab(t)
	r := Fig9(l)
	if r.Survey.Len() != l.Campaign.NumConfigs() {
		t.Fatal("survey length mismatch")
	}
	if r.MeanGaoRexford > r.MeanBestRel {
		t.Fatal("Gao-Rexford compliance exceeds best-relationship")
	}
	// Most ASes follow known policies (paper's conclusion).
	if r.MeanBestRel < 0.75 {
		t.Fatalf("best-relationship compliance %.2f too low", r.MeanBestRel)
	}
	if !strings.Contains(r.String(), "Figure 9") {
		t.Fatal("String() missing header")
	}
}

func TestFig10Shapes(t *testing.T) {
	p := DefaultFig10Params()
	p.NumPlacements = 100
	r := Fig10(lab(t), p)
	for name, c := range map[string][]spoof.TrafficBySizePoint{
		"uniform": r.Uniform, "pareto": r.Pareto, "single": r.Single,
	} {
		if len(c) != p.MaxSize {
			t.Fatalf("%s: curve length %d, want %d", name, len(c), p.MaxSize)
		}
		for i := 1; i < len(c); i++ {
			if c[i].CumFrac < c[i-1].CumFrac-1e-9 {
				t.Fatalf("%s: curve not monotone", name)
			}
		}
		// Most traffic is in small clusters: by size 8, over half.
		if c[7].CumFrac < 0.5 {
			t.Fatalf("%s: only %.2f of traffic in clusters <=8", name, c[7].CumFrac)
		}
	}
	if !strings.Contains(r.String(), "Figure 10") {
		t.Fatal("String() missing header")
	}
}

func TestHeadline(t *testing.T) {
	r := Headline(lab(t))
	if r.NumConfigs != 418 {
		t.Fatalf("NumConfigs = %d, want 64+294+60", r.NumConfigs)
	}
	if r.MeanSize < 1 || r.MeanSize > 10 {
		t.Fatalf("mean size %.2f implausible", r.MeanSize)
	}
	if r.MultiCatchmentFrac <= 0 || r.MultiCatchmentFrac > 0.2 {
		t.Fatalf("multi-catchment fraction %.4f implausible", r.MultiCatchmentFrac)
	}
	if r.Elapsed.Hours() < 100 {
		t.Fatalf("simulated duration %v too short for %d configs", r.Elapsed, r.NumConfigs)
	}
	if !strings.Contains(r.String(), "Headline") {
		t.Fatal("String() missing header")
	}
}

func TestTable1(t *testing.T) {
	r := Table1(lab(t))
	if len(r.Rows) != 7 {
		t.Fatalf("got %d rows, want 7", len(r.Rows))
	}
	seen := map[string]bool{}
	for _, row := range r.Rows {
		seen[row.Mux] = true
		if row.Customers == 0 {
			t.Errorf("mux %s bound to non-transit AS", row.Mux)
		}
	}
	if !seen["AMS-IX"] || !seen["UFMG"] {
		t.Fatal("Table I muxes missing")
	}
	if !strings.Contains(r.String(), "Table I") {
		t.Fatal("String() missing header")
	}
}

func TestHijackScenarios(t *testing.T) {
	l := lab(t)
	n := HijackScenarios(l)
	// Every configuration contributes 2^|A| >= 2^4 scenarios.
	if n < len(l.Plan)*16 {
		t.Fatalf("scenario count %d too low", n)
	}
}
