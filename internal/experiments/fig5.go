package experiments

import (
	"fmt"
	"strings"

	"spooftrack/internal/bgp"
	"spooftrack/internal/sched"
	"spooftrack/internal/stats"
)

// FootprintScenario is one emulated peering footprint: a subset of the
// campaign's links and the sub-campaign trajectories over all subsets of
// that size.
type FootprintScenario struct {
	// Locations is the footprint size (7, 6, or 5 in the paper).
	Locations int
	// NumConfigs is the number of usable configurations per subset
	// (358, 118, 31 in the paper).
	NumConfigs int
	// MeanTrajectory is the across-subsets mean of the mean-cluster-size
	// trajectory; Min/Max bound it (the figure's shaded area).
	MeanTrajectory, MinTrajectory, MaxTrajectory []float64
	// FinalCCDF pools cluster sizes at the end of every subset's
	// trajectory (Fig. 6's distribution).
	FinalCCDF []stats.CCDFPoint
	// FracOver25 is the fraction of final clusters larger than 25 ASes
	// (the paper reports 0.1%, 1.27%, 4.29% for 7/6/5 locations).
	FracOver25 float64
}

// Fig5Result compares localization precision across peering footprints
// (Fig. 5 and Fig. 6 share this computation).
type Fig5Result struct {
	Scenarios []FootprintScenario
}

// Fig5 emulates 7-, 6-, and 5-location networks by restricting the
// default campaign to configurations using only the retained links,
// exactly as the paper discards PoPs from its dataset. Only location and
// prepending configurations participate (the paper's 358/118/31 counts).
func Fig5(lab *Lab) *Fig5Result {
	camp := lab.Campaign
	numLinks := lab.World.Platform.NumLinks()
	prependEnd := sched.PhaseEnd(lab.Plan, sched.PhasePrepending)
	res := &Fig5Result{}
	for _, drop := range []int{0, 1, 2} {
		scenario := FootprintScenario{Locations: numLinks - drop}
		var trajectories [][]float64
		var finalSizes []int
		for _, keepLinks := range linkSubsets(numLinks, numLinks-drop) {
			keep := camp.ConfigsUsingOnlyLinks(keepLinks)
			// Restrict to location+prepending phases.
			var kept []int
			for _, i := range keep {
				if i < prependEnd {
					kept = append(kept, i)
				}
			}
			sub := camp.SubCampaign(kept)
			traj := sub.MetricsTrajectory()
			means := make([]float64, len(traj))
			for i, m := range traj {
				means[i] = m.MeanSize
			}
			trajectories = append(trajectories, means)
			finalSizes = append(finalSizes, sub.FinalPartition().Sizes()...)
			scenario.NumConfigs = len(kept)
		}
		steps := scenario.NumConfigs
		scenario.MeanTrajectory = make([]float64, steps)
		scenario.MinTrajectory = make([]float64, steps)
		scenario.MaxTrajectory = make([]float64, steps)
		for i := 0; i < steps; i++ {
			vals := make([]float64, 0, len(trajectories))
			for _, tr := range trajectories {
				vals = append(vals, tr[i])
			}
			scenario.MeanTrajectory[i] = stats.Mean(vals)
			scenario.MinTrajectory[i], scenario.MaxTrajectory[i] = minMax(vals)
		}
		scenario.FinalCCDF = stats.CCDFInts(finalSizes)
		scenario.FracOver25 = stats.FracGreater(finalSizes, 25)
		res.Scenarios = append(res.Scenarios, scenario)
	}
	return res
}

// linkSubsets enumerates subsets of {0..n-1} of the given size.
func linkSubsets(n, size int) [][]bgp.LinkID {
	var out [][]bgp.LinkID
	var rec func(start int, cur []bgp.LinkID)
	rec = func(start int, cur []bgp.LinkID) {
		if len(cur) == size {
			out = append(out, append([]bgp.LinkID(nil), cur...))
			return
		}
		for i := start; i < n; i++ {
			rec(i+1, append(cur, bgp.LinkID(i)))
		}
	}
	rec(0, nil)
	return out
}

func minMax(xs []float64) (lo, hi float64) {
	lo, hi = xs[0], xs[0]
	for _, v := range xs[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// String renders the Fig. 5 trajectories.
func (r *Fig5Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 5: mean cluster size when removing peering locations\n")
	for _, s := range r.Scenarios {
		fmt.Fprintf(&sb, "  %d locations (%d configs):\n", s.Locations, s.NumConfigs)
		for _, i := range logCheckpoints(len(s.MeanTrajectory)) {
			fmt.Fprintf(&sb, "    configs=%4d mean=%7.2f [%.2f, %.2f]\n",
				i+1, s.MeanTrajectory[i], s.MinTrajectory[i], s.MaxTrajectory[i])
		}
	}
	return sb.String()
}

// Fig6String renders the same scenarios as Fig. 6's final distributions.
func (r *Fig5Result) Fig6String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 6: distribution of cluster size after removing locations\n")
	for _, s := range r.Scenarios {
		fmt.Fprintf(&sb, "  %d locations: %.2f%% of clusters larger than 25 ASes\n",
			s.Locations, s.FracOver25*100)
		for _, pt := range s.FinalCCDF {
			fmt.Fprintf(&sb, "    size>=%4.0f frac=%.4f\n", pt.Value, pt.Frac)
		}
	}
	return sb.String()
}

// Fig6 returns the footprint distributions (it shares Fig5's
// computation, as in the paper).
func Fig6(lab *Lab) *Fig5Result { return Fig5(lab) }
