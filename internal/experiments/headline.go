package experiments

import (
	"fmt"
	"strings"
	"time"

	"spooftrack/internal/sched"
)

// HeadlineResult collects the campaign-level numbers quoted through the
// paper's abstract, §IV and §V: the 705-configuration plan shape, the
// dataset size, the 1.40-AS mean cluster size, the 92% singleton
// fraction, and the measurement-quality figures (2.28% multi-catchment
// ASes, imputation volume).
type HeadlineResult struct {
	NumConfigs    int
	PhaseCounts   map[sched.Phase]int
	NumSources    int
	MeanSize      float64
	SingletonFrac float64
	P90Size       float64
	MaxSize       int
	// MultiCatchmentFrac is the average fraction of observed ASes with
	// conflicting catchment evidence per configuration.
	MultiCatchmentFrac float64
	// ImputedFrac is the fraction of (config, source) cells filled via
	// smax.
	ImputedFrac float64
	// Elapsed is the simulated campaign duration (70 min per config).
	Elapsed time.Duration
}

// Headline computes the campaign summary.
func Headline(lab *Lab) *HeadlineResult {
	camp := lab.Campaign
	m := camp.FinalPartition().Summarize()
	res := &HeadlineResult{
		NumConfigs:    camp.NumConfigs(),
		PhaseCounts:   sched.PhaseCounts(lab.Plan),
		NumSources:    camp.NumSources(),
		MeanSize:      m.MeanSize,
		SingletonFrac: m.SingletonFrac,
		P90Size:       m.P90Size,
		MaxSize:       m.MaxSize,
		Elapsed:       camp.Elapsed,
	}
	if camp.Measurements != nil {
		multi, obs := 0, 0
		for _, mm := range camp.Measurements {
			multi += mm.MultiCatchment
			obs += mm.ObservedCount()
		}
		if obs > 0 {
			res.MultiCatchmentFrac = float64(multi) / float64(obs)
		}
	}
	if camp.Imputed != nil && camp.NumSources() > 0 {
		cells := camp.NumConfigs() * camp.NumSources()
		res.ImputedFrac = float64(camp.Imputed.Imputed) / float64(cells)
	}
	return res
}

// String renders the summary.
func (r *HeadlineResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Headline campaign summary\n")
	fmt.Fprintf(&sb, "  configurations: %d (locations %d + prepending %d + poisoning %d)\n",
		r.NumConfigs, r.PhaseCounts[sched.PhaseLocations],
		r.PhaseCounts[sched.PhasePrepending], r.PhaseCounts[sched.PhasePoisoning])
	fmt.Fprintf(&sb, "  sources analyzed: %d ASes\n", r.NumSources)
	fmt.Fprintf(&sb, "  mean cluster size: %.2f ASes (paper: 1.40)\n", r.MeanSize)
	fmt.Fprintf(&sb, "  singleton clusters: %.1f%% (paper: 92%%)\n", r.SingletonFrac*100)
	fmt.Fprintf(&sb, "  p90 cluster size: %.1f, max: %d\n", r.P90Size, r.MaxSize)
	fmt.Fprintf(&sb, "  multi-catchment ASes: %.2f%% (paper: 2.28%%)\n", r.MultiCatchmentFrac*100)
	fmt.Fprintf(&sb, "  imputed catchment cells: %.1f%%\n", r.ImputedFrac*100)
	fmt.Fprintf(&sb, "  simulated duration: %s (70 min per configuration)\n", r.Elapsed)
	return sb.String()
}
