package experiments

import (
	"fmt"
	"strings"

	"spooftrack/internal/sched"
	"spooftrack/internal/stats"
)

// Fig3Result is the complementary cumulative distribution of cluster
// sizes at the end of each technique phase (Fig. 3). The paper reports
// 92% singleton clusters after all 705 configurations, with 14 clusters
// larger than 5 ASes holding 7.9% of the dataset's ASes.
type Fig3Result struct {
	// CCDF maps each phase to its cluster-size CCDF.
	CCDF map[sched.Phase][]stats.CCDFPoint
	// SingletonFrac maps each phase to the fraction of single-AS
	// clusters.
	SingletonFrac map[sched.Phase]float64
	// LargeClusters and LargeClusterASFrac report, for the final phase,
	// how many clusters exceed 5 ASes and what fraction of sources they
	// hold.
	LargeClusters      int
	LargeClusterASFrac float64
}

// Fig3 computes the phase-by-phase cluster-size distributions.
func Fig3(lab *Lab) *Fig3Result {
	res := &Fig3Result{
		CCDF:          make(map[sched.Phase][]stats.CCDFPoint, 3),
		SingletonFrac: make(map[sched.Phase]float64, 3),
	}
	parts := lab.Campaign.PhasePartitions()
	for ph, part := range parts {
		res.CCDF[ph] = part.SizeCCDF()
		res.SingletonFrac[ph] = part.Summarize().SingletonFrac
	}
	final := lab.Campaign.FinalPartition()
	large, largeASes := 0, 0
	for _, s := range final.Sizes() {
		if s > 5 {
			large++
			largeASes += s
		}
	}
	res.LargeClusters = large
	res.LargeClusterASFrac = float64(largeASes) / float64(final.NumSources())
	return res
}

// String renders the distributions as the figure's series.
func (r *Fig3Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 3: CCDF of cluster sizes after each phase\n")
	for _, ph := range []sched.Phase{sched.PhaseLocations, sched.PhasePrepending, sched.PhasePoisoning} {
		pts, ok := r.CCDF[ph]
		if !ok {
			continue
		}
		fmt.Fprintf(&sb, "  phase %-11s (singleton clusters: %5.1f%%)\n", ph, r.SingletonFrac[ph]*100)
		for _, pt := range pts {
			fmt.Fprintf(&sb, "    size>=%4.0f  frac=%.4f\n", pt.Value, pt.Frac)
		}
	}
	fmt.Fprintf(&sb, "  final: %d clusters larger than 5 ASes holding %.1f%% of ASes\n",
		r.LargeClusters, r.LargeClusterASFrac*100)
	return sb.String()
}
