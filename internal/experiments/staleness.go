package experiments

import (
	"fmt"
	"strings"

	"spooftrack/internal/bgp"
	"spooftrack/internal/spoof"
	"spooftrack/internal/stats"
)

// §V-C identifies a trade-off: reusing catchments measured before an
// attack is fast but "may incur errors due to route changes", while
// re-measuring during the attack is slow. ExtStaleness quantifies the
// fast path: a seeded fraction of ASes change their routing behaviour
// between campaign time and attack time (bgp.Engine.Perturbed), the
// honeypot measures volumes under the *new* routes, and localization
// correlates them against the *old* catchment map — strictly, and with
// the mismatch tolerance a deployed system would use.

// StalenessPoint is one tolerance setting's outcome.
type StalenessPoint struct {
	// MaxMissFrac is the tolerated fraction of configurations where a
	// candidate's link carried no traffic.
	MaxMissFrac float64
	// HitRate is the fraction of trials keeping the true attacker.
	HitRate float64
	// MeanCandidates is the average candidate-set size.
	MeanCandidates float64
}

// ExtStalenessResult compares localization against stale vs. fresh
// catchments across tolerance levels.
type ExtStalenessResult struct {
	// DriftFrac is the fraction of ASes whose routing behaviour
	// changed.
	DriftFrac float64
	// CatchmentChangedFrac is the fraction of (config, source) cells
	// whose catchment differs between campaign time and attack time.
	CatchmentChangedFrac float64
	// Trials is the number of single-attacker trials.
	Trials int
	// Fresh is the strict localization against up-to-date catchments
	// (the slow, re-measure path).
	Fresh StalenessPoint
	// Stale holds the stale-map results per tolerance level.
	Stale []StalenessPoint
}

// ExtStaleness runs the study on the lab's campaign with the given AS
// drift fraction.
func ExtStaleness(lab *Lab, trials int, driftFrac float64) (*ExtStalenessResult, error) {
	w := lab.World
	driftEngine, err := w.Platform.Engine().Perturbed(driftFrac, w.Params.Seed+1)
	if err != nil {
		return nil, err
	}
	fresh := make([][]bgp.LinkID, len(lab.Plan))
	for i, pc := range lab.Plan {
		out, err := driftEngine.Propagate(pc.Config)
		if err != nil {
			return nil, err
		}
		row := make([]bgp.LinkID, len(lab.Campaign.Sources))
		for k, src := range lab.Campaign.Sources {
			row[k] = out.CatchmentOf(src)
		}
		fresh[i] = row
	}
	stale := lab.Campaign.Catchments

	res := &ExtStalenessResult{DriftFrac: driftFrac, Trials: trials}
	changed, total := 0, 0
	for c := range stale {
		for k := range stale[c] {
			total++
			if stale[c][k] != fresh[c][k] {
				changed++
			}
		}
	}
	if total > 0 {
		res.CatchmentChangedFrac = float64(changed) / float64(total)
	}

	tolerances := []float64{0, 0.02, 0.10, 0.25}
	rng := stats.NewRNG(w.Params.Seed ^ 0x57a1e)
	numLinks := w.Platform.NumLinks()
	n := lab.Campaign.NumSources()
	numConfigs := len(stale)
	staleHits := make([]int, len(tolerances))
	staleCands := make([]int, len(tolerances))
	freshHits, freshCands := 0, 0
	for t := 0; t < trials; t++ {
		placement := spoof.PlaceSingle(rng.Split(), n)
		trueIdx := -1
		for k, wgt := range placement.Weight {
			if wgt > 0 {
				trueIdx = k
			}
		}
		volumes := make([][]float64, len(fresh))
		for c := range fresh {
			volumes[c] = spoof.LinkVolumes(fresh[c], placement, numLinks)
		}
		freshSet := spoof.Localize(fresh, volumes)
		freshCands += len(freshSet)
		if containsIdx(freshSet, trueIdx) {
			freshHits++
		}
		for ti, tol := range tolerances {
			set := spoof.LocalizeTolerant(stale, volumes, int(tol*float64(numConfigs)))
			staleCands[ti] += len(set)
			if containsIdx(set, trueIdx) {
				staleHits[ti]++
			}
		}
	}
	res.Fresh = StalenessPoint{
		HitRate:        float64(freshHits) / float64(trials),
		MeanCandidates: float64(freshCands) / float64(trials),
	}
	for ti, tol := range tolerances {
		res.Stale = append(res.Stale, StalenessPoint{
			MaxMissFrac:    tol,
			HitRate:        float64(staleHits[ti]) / float64(trials),
			MeanCandidates: float64(staleCands[ti]) / float64(trials),
		})
	}
	return res, nil
}

func containsIdx(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// String renders the staleness study.
func (r *ExtStalenessResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Extension: stale-catchment localization accuracy (§V-C)\n")
	fmt.Fprintf(&sb, "  route drift: %.0f%% of ASes re-decided; %.1f%% of catchment cells changed\n",
		r.DriftFrac*100, r.CatchmentChangedFrac*100)
	fmt.Fprintf(&sb, "  over %d single-attacker trials:\n", r.Trials)
	fmt.Fprintf(&sb, "    fresh catchments (re-measured): hit rate %.0f%%, %.1f candidates\n",
		r.Fresh.HitRate*100, r.Fresh.MeanCandidates)
	for _, p := range r.Stale {
		fmt.Fprintf(&sb, "    stale, tolerating %4.0f%% misses: hit rate %3.0f%%, %.1f candidates\n",
			p.MaxMissFrac*100, p.HitRate*100, p.MeanCandidates)
	}
	return sb.String()
}
