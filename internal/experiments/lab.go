// Package experiments contains one driver per table and figure of the
// paper's evaluation (§V). Each driver consumes a Lab — a built world
// plus a fully deployed and measured default campaign — and returns a
// result struct that renders the same rows or series the paper reports.
// The drivers are shared by cmd/spooftrack, the benchmark harness at the
// repository root, and the integration tests.
package experiments

import (
	"context"
	"fmt"
	"sync"

	"spooftrack/internal/core"
	"spooftrack/internal/sched"
	"spooftrack/internal/topo"
)

// Lab bundles the world and the default three-phase campaign all
// experiments analyze.
type Lab struct {
	World    *core.World
	Plan     []sched.PlannedConfig
	Campaign *core.Campaign
}

// LabParams sizes a lab.
type LabParams struct {
	Seed uint64
	// NumASes overrides the topology size (0 = default 4000).
	NumASes int
	// NumProbes overrides the probe count (0 = default 1600).
	NumProbes int
	// NumCollectors overrides the collector count (0 = default 250).
	NumCollectors int
	// MaxPoisonTargets overrides the poison-phase size (0 = paper's 347).
	MaxPoisonTargets int
	// UseTruth bypasses the measurement pipeline (faster; used by tests
	// that only exercise the analysis).
	UseTruth bool
	// Progress, if non-nil, receives deployment progress.
	Progress func(done, total int)
	// Ctx, if non-nil, cancels the campaign deployment early.
	Ctx context.Context
}

// NewLab builds a world and runs the default campaign.
func NewLab(p LabParams) (*Lab, error) {
	wp := core.DefaultWorldParams(p.Seed)
	if p.NumASes > 0 {
		tp := topo.DefaultGenParams(p.Seed)
		tp.NumASes = p.NumASes
		wp.Topo = &tp
	}
	if p.NumProbes > 0 {
		wp.NumProbes = p.NumProbes
	}
	if p.NumCollectors > 0 {
		wp.NumCollectors = p.NumCollectors
	}
	if p.MaxPoisonTargets > 0 {
		wp.MaxPoisonTargets = p.MaxPoisonTargets
	}
	w, err := core.BuildWorld(wp)
	if err != nil {
		return nil, err
	}
	plan, err := w.DefaultPlan()
	if err != nil {
		return nil, err
	}
	camp, err := w.RunCampaign(plan, core.CampaignOptions{UseTruth: p.UseTruth, Progress: p.Progress, Ctx: p.Ctx})
	if err != nil {
		return nil, err
	}
	return &Lab{World: w, Plan: plan, Campaign: camp}, nil
}

// DefaultLabParams is the paper-scale configuration used by the
// benchmark harness and the CLI.
func DefaultLabParams() LabParams { return LabParams{Seed: 42} }

var (
	defaultLabOnce sync.Once
	defaultLab     *Lab
	defaultLabErr  error
)

// DefaultLab returns a process-wide shared paper-scale lab, built on
// first use. Benchmarks reuse it so each figure's bench measures the
// figure's analysis, not a repeated 705-configuration campaign.
func DefaultLab() (*Lab, error) {
	defaultLabOnce.Do(func() {
		defaultLab, defaultLabErr = NewLab(DefaultLabParams())
	})
	if defaultLabErr != nil {
		return nil, fmt.Errorf("experiments: building default lab: %w", defaultLabErr)
	}
	return defaultLab, nil
}
