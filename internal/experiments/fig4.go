package experiments

import (
	"fmt"
	"strings"

	"spooftrack/internal/sched"
)

// Fig4Result traces mean and 90th-percentile cluster size as a function
// of the number of deployed configurations, with phase boundaries
// (Fig. 4). The paper observes diminishing returns, small steps at phase
// changes, and continued route manipulation even after hundreds of
// configurations.
type Fig4Result struct {
	Mean []float64
	P90  []float64
	// PhaseEnds marks the configuration index ending each phase.
	PhaseEnds map[sched.Phase]int
}

// Fig4 computes the cluster-size trajectory of the default campaign.
func Fig4(lab *Lab) *Fig4Result {
	traj := lab.Campaign.MetricsTrajectory()
	res := &Fig4Result{
		Mean:      make([]float64, len(traj)),
		P90:       make([]float64, len(traj)),
		PhaseEnds: make(map[sched.Phase]int, 3),
	}
	for i, m := range traj {
		res.Mean[i] = m.MeanSize
		res.P90[i] = m.P90Size
	}
	for _, ph := range []sched.Phase{sched.PhaseLocations, sched.PhasePrepending, sched.PhasePoisoning} {
		res.PhaseEnds[ph] = sched.PhaseEnd(lab.Plan, ph)
	}
	return res
}

// String renders the trajectory at logarithmically spaced checkpoints,
// matching the figure's log-scale x-axis.
func (r *Fig4Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 4: cluster size vs. number of configurations\n")
	fmt.Fprintf(&sb, "  phase ends: locations=%d prepending=%d poisoning=%d\n",
		r.PhaseEnds[sched.PhaseLocations], r.PhaseEnds[sched.PhasePrepending], r.PhaseEnds[sched.PhasePoisoning])
	fmt.Fprintf(&sb, "  %8s %12s %12s\n", "configs", "mean", "p90")
	for _, i := range logCheckpoints(len(r.Mean)) {
		fmt.Fprintf(&sb, "  %8d %12.2f %12.1f\n", i+1, r.Mean[i], r.P90[i])
	}
	return sb.String()
}

// logCheckpoints returns ~log-spaced indices into a series of length n,
// always including the first and last element.
func logCheckpoints(n int) []int {
	if n == 0 {
		return nil
	}
	var out []int
	last := -1
	for v := 1; v < n; v = v*3/2 + 1 {
		if v-1 != last {
			out = append(out, v-1)
			last = v - 1
		}
	}
	if last != n-1 {
		out = append(out, n-1)
	}
	return out
}
