package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Fig7Result breaks cluster sizes down by the AS-hop distance between
// each source and the closest announcement location (Fig. 7). The paper
// finds ASes 1-2 hops from PEERING in clusters of 1.85 ASes on average
// and ASes 3+ hops away in clusters of 2.64 ASes: nearby sources are
// easier to isolate, but distant ones remain actionable.
type Fig7Result struct {
	// Groups maps the distance label (1, 2, 3; 4 means "4 or more") to
	// the cumulative distribution of cluster sizes for sources at that
	// distance.
	Groups map[int][]Fig7Point
	// MeanByGroup is the per-source mean cluster size per distance
	// group.
	MeanByGroup map[int]float64
	// MeanNear and MeanFar aggregate distances 1-2 and 3+, matching the
	// paper's 1.85 / 2.64 comparison.
	MeanNear, MeanFar float64
}

// Fig7Point is one point of a group's CDF: the fraction of the group's
// sources in clusters of size at most Size.
type Fig7Point struct {
	Size    int
	CumFrac float64
}

// Fig7 computes the distance breakdown for the default campaign.
func Fig7(lab *Lab) *Fig7Result {
	camp := lab.Campaign
	g := lab.World.Graph
	var provs []int
	for _, m := range lab.World.Platform.Muxes() {
		provs = append(provs, m.Provider)
	}
	dist := g.HopDistances(provs)
	final := camp.FinalPartition()
	sizes := final.Sizes()

	groupOf := func(d int) int {
		if d < 1 {
			d = 1
		}
		if d > 4 {
			d = 4
		}
		return d
	}
	bySize := make(map[int]map[int]int) // group -> cluster size -> count
	counts := make(map[int]int)
	sum := make(map[int]int)
	var nearSum, nearN, farSum, farN int
	for k, src := range camp.Sources {
		d := dist[src]
		if d < 0 {
			continue
		}
		grp := groupOf(d)
		size := sizes[final.ClusterOf(k)]
		if bySize[grp] == nil {
			bySize[grp] = make(map[int]int)
		}
		bySize[grp][size]++
		counts[grp]++
		sum[grp] += size
		if d <= 2 {
			nearSum += size
			nearN++
		} else {
			farSum += size
			farN++
		}
	}
	res := &Fig7Result{
		Groups:      make(map[int][]Fig7Point, 4),
		MeanByGroup: make(map[int]float64, 4),
	}
	for grp, hist := range bySize {
		var szs []int
		for s := range hist {
			szs = append(szs, s)
		}
		sort.Ints(szs)
		acc := 0
		pts := make([]Fig7Point, 0, len(szs))
		for _, s := range szs {
			acc += hist[s]
			pts = append(pts, Fig7Point{Size: s, CumFrac: float64(acc) / float64(counts[grp])})
		}
		res.Groups[grp] = pts
		res.MeanByGroup[grp] = float64(sum[grp]) / float64(counts[grp])
	}
	if nearN > 0 {
		res.MeanNear = float64(nearSum) / float64(nearN)
	}
	if farN > 0 {
		res.MeanFar = float64(farSum) / float64(farN)
	}
	return res
}

// String renders the per-distance distributions.
func (r *Fig7Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 7: cluster size vs. AS-hop distance from the origin\n")
	fmt.Fprintf(&sb, "  mean cluster size: 1-2 hops %.2f ASes, 3+ hops %.2f ASes\n", r.MeanNear, r.MeanFar)
	for grp := 1; grp <= 4; grp++ {
		pts, ok := r.Groups[grp]
		if !ok {
			continue
		}
		label := fmt.Sprintf("%d hops", grp)
		if grp == 4 {
			label = "4+ hops"
		}
		fmt.Fprintf(&sb, "  ASes %s from origin (mean %.2f):\n", label, r.MeanByGroup[grp])
		for _, pt := range pts {
			if pt.Size > 25 && pt.CumFrac < 1 {
				continue // the figure's x-axis stops at 25
			}
			fmt.Fprintf(&sb, "    size<=%3d cumfrac=%.3f\n", pt.Size, pt.CumFrac)
		}
	}
	return sb.String()
}
