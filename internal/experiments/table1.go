package experiments

import (
	"fmt"
	"strings"
)

// Table1Row is one PoP binding: the paper's mux/provider names and the
// synthetic provider AS standing in for it.
type Table1Row struct {
	Mux          string
	ProviderName string
	ProviderASN  uint32 // the real-world ASN from the paper's Table I
	BoundASN     uint32 // the synthetic topology AS bound to the mux
	Customers    int    // customer count of the bound provider
}

// Table1Result reproduces Table I against the built world.
type Table1Result struct {
	Rows []Table1Row
}

// Table1 reads the platform bindings.
func Table1(lab *Lab) *Table1Result {
	g := lab.World.Graph
	res := &Table1Result{}
	for _, m := range lab.World.Platform.Muxes() {
		res.Rows = append(res.Rows, Table1Row{
			Mux:          m.Spec.Name,
			ProviderName: m.Spec.ProviderName,
			ProviderASN:  uint32(m.Spec.ProviderASN),
			BoundASN:     uint32(g.ASN(m.Provider)),
			Customers:    len(g.Customers(m.Provider)),
		})
	}
	return res
}

// String renders the table.
func (r *Table1Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table I: PoPs and providers of the PEERING platform\n")
	fmt.Fprintf(&sb, "  %-11s %-26s %-10s %-10s %s\n", "Mux", "Transit Provider", "Paper ASN", "Sim ASN", "Customers")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "  %-11s %-26s AS%-8d AS%-8d %d\n",
			row.Mux, row.ProviderName, row.ProviderASN, row.BoundASN, row.Customers)
	}
	return sb.String()
}

// HijackScenarios quantifies the §VI observation that a configuration
// announcing from n locations covers 2^n prefix-hijack scenarios (every
// location can be a legitimate origin or a hijacker): it returns the
// total number of hijack scenarios the campaign's location-phase
// configurations cover.
func HijackScenarios(lab *Lab) int {
	total := 0
	for _, pc := range lab.Plan {
		total += 1 << len(pc.Config.Anns)
	}
	return total
}
