package experiments

import (
	"fmt"
	"strings"

	"spooftrack/internal/policy"
)

// Fig9Result is the routing-policy compliance survey (Fig. 9): across
// configurations, the distribution of the fraction of ASes following the
// best-relationship criterion, and of the fraction following both
// best-relationship and shortest-path (the Gao-Rexford model). The paper
// concludes most ASes follow a well-defined, known behaviour.
type Fig9Result struct {
	Survey *policy.Survey
	// MeanBestRel and MeanGaoRexford are the across-config means.
	MeanBestRel, MeanGaoRexford float64
}

// Fig9 audits every configuration of the default campaign.
func Fig9(lab *Lab) *Fig9Result {
	s := &policy.Survey{}
	eng := lab.World.Platform.Engine()
	for _, out := range lab.Campaign.Outcomes {
		s.Add(eng, out)
	}
	res := &Fig9Result{Survey: s}
	res.MeanBestRel, res.MeanGaoRexford = s.Summary()
	return res
}

// String renders both CDFs.
func (r *Fig9Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 9: fraction of ASes following well-known routing policies\n")
	fmt.Fprintf(&sb, "  mean compliance: best relationship %.3f, best relationship & shortest %.3f\n",
		r.MeanBestRel, r.MeanGaoRexford)
	render := func(name string, pts []policy.CDFPoint) {
		fmt.Fprintf(&sb, "  %s:\n", name)
		step := len(pts)/12 + 1
		for i := 0; i < len(pts); i += step {
			fmt.Fprintf(&sb, "    compliance<=%.3f cumfrac=%.3f\n", pts[i].Compliance, pts[i].CumFrac)
		}
	}
	render("best relationship", r.Survey.BestRelCDF())
	render("best relationship & shortest", r.Survey.GaoRexfordCDF())
	return sb.String()
}
