package experiments

// Extension experiments: the paper's future-work directions (§V-B, §V-C,
// §VIII) implemented and evaluated on the same lab as the main figures.

import (
	"fmt"
	"strings"
	"time"

	"spooftrack/internal/bgp"
	"spooftrack/internal/sched"
	"spooftrack/internal/spoof"
	"spooftrack/internal/stats"
	"spooftrack/internal/topo"
)

// ExtPredictionResult evaluates catchment prediction (§V-C, building on
// Sermpezis & Kotronis): a noise-free Gao-Rexford model predicts each
// configuration's catchments without deploying it; agreement with the
// true catchments bounds how much measurement the technique could skip.
type ExtPredictionResult struct {
	// AgreementPerConfig is, per configuration, the fraction of routed
	// ASes whose predicted catchment matches the truth.
	AgreementPerConfig []float64
	// Mean agreement across configurations.
	Mean float64
}

// ExtPrediction runs the predictor against every campaign configuration.
func ExtPrediction(lab *Lab) (*ExtPredictionResult, error) {
	pred, err := sched.NewPredictor(lab.World.Graph, lab.World.Platform.Engine().Origin())
	if err != nil {
		return nil, err
	}
	res := &ExtPredictionResult{}
	for i, out := range lab.Campaign.Outcomes {
		vec, err := pred.Predict(lab.Plan[i].Config)
		if err != nil {
			return nil, err
		}
		match, total := 0, 0
		for as := 0; as < lab.World.Graph.NumASes(); as++ {
			truth := out.CatchmentOf(as)
			if truth == bgp.NoLink {
				continue
			}
			total++
			if vec[as] == truth {
				match++
			}
		}
		if total > 0 {
			res.AgreementPerConfig = append(res.AgreementPerConfig, float64(match)/float64(total))
		}
	}
	res.Mean = stats.Mean(res.AgreementPerConfig)
	return res, nil
}

// String renders the prediction study.
func (r *ExtPredictionResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Extension: catchment prediction accuracy (§V-C)\n")
	fmt.Fprintf(&sb, "  mean agreement with true catchments: %.3f\n", r.Mean)
	s := stats.Summarize(r.AgreementPerConfig)
	fmt.Fprintf(&sb, "  p25=%.3f median=%.3f p75=%.3f over %d configurations\n", s.P25, s.P50, s.P75, s.N)
	return sb.String()
}

// ExtTargetedPoisonResult evaluates targeted poisoning of shared
// upstreams to split large clusters (§V-B future work): for every final
// cluster above a size threshold, poison the transit AS its members'
// paths share most, and measure how much the extra configurations shrink
// the partition.
type ExtTargetedPoisonResult struct {
	// ExtraConfigs is how many targeted configurations were generated.
	ExtraConfigs int
	// Before/After summarize the partition around the targeted phase.
	BeforeMean, AfterMean float64
	BeforeMax, AfterMax   int
	// LargeBefore/LargeAfter count clusters above the threshold.
	Threshold               int
	LargeBefore, LargeAfter int
}

// ExtTargetedPoison generates and deploys the targeted plan on the lab's
// platform, measuring each configuration through the standard pipeline.
func ExtTargetedPoison(lab *Lab, threshold int) (*ExtTargetedPoisonResult, error) {
	camp := lab.Campaign
	part := camp.FinalPartition()
	baseOut := camp.Outcomes[0] // baseline anycast outcome guides targeting
	plan := sched.TargetedPoisonPlan(baseOut, part, camp.Sources, threshold, lab.World.Platform.NumLinks())
	res := &ExtTargetedPoisonResult{
		ExtraConfigs: len(plan),
		Threshold:    threshold,
	}
	m := part.Summarize()
	res.BeforeMean, res.BeforeMax = m.MeanSize, m.MaxSize
	for _, s := range part.Sizes() {
		if s >= threshold {
			res.LargeBefore++
		}
	}

	refined := part.Clone()
	rng := stats.NewRNG(lab.World.Params.Seed ^ 0x7a26e7ed)
	for i, pc := range plan {
		out, err := lab.World.Platform.Deploy(pc.Config)
		if err != nil {
			return nil, err
		}
		labels := make([]bgp.LinkID, len(camp.Sources))
		if camp.Measurements != nil {
			mm, err := lab.World.MeasureOutcome(out, camp.NumConfigs()+i, rng.Split())
			if err != nil {
				return nil, err
			}
			for k, src := range camp.Sources {
				labels[k] = mm.Catchment[src]
			}
		} else {
			for k, src := range camp.Sources {
				labels[k] = out.CatchmentOf(src)
			}
		}
		refined.Refine(labels)
	}
	m2 := refined.Summarize()
	res.AfterMean, res.AfterMax = m2.MeanSize, m2.MaxSize
	for _, s := range refined.Sizes() {
		if s >= threshold {
			res.LargeAfter++
		}
	}
	return res, nil
}

// String renders the targeted-poisoning study.
func (r *ExtTargetedPoisonResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Extension: targeted poisoning of large clusters (§V-B)\n")
	fmt.Fprintf(&sb, "  targeted configurations: %d (threshold %d ASes)\n", r.ExtraConfigs, r.Threshold)
	fmt.Fprintf(&sb, "  mean cluster size: %.2f -> %.2f\n", r.BeforeMean, r.AfterMean)
	fmt.Fprintf(&sb, "  largest cluster:   %d -> %d\n", r.BeforeMax, r.AfterMax)
	fmt.Fprintf(&sb, "  clusters >= %d:    %d -> %d\n", r.Threshold, r.LargeBefore, r.LargeAfter)
	return sb.String()
}

// ExtCommunitiesResult compares the poisoning phase against an
// equally-sized community-based phase (§VIII future work): starting from
// the partition after locations+prepending, which technique splits more?
// Communities sidestep loop-prevention opt-outs and tier-1 route-leak
// filters, but only work at providers that implement action communities.
type ExtCommunitiesResult struct {
	// BaseMean is the mean cluster size after locations+prepending.
	BaseMean float64
	// PoisonMean and CommunityMean are the means after additionally
	// applying each technique's configurations.
	PoisonMean, CommunityMean float64
	// NumConfigs is the per-technique configuration count compared.
	NumConfigs int
}

// ExtCommunities deploys a community plan matched in size to the
// campaign's poisoning phase and compares marginal refinement. Both
// techniques refine from the end-of-prepending partition; catchments are
// read from the routing engine (technique comparison, not measurement
// evaluation).
func ExtCommunities(lab *Lab) (*ExtCommunitiesResult, error) {
	camp := lab.Campaign
	prependEnd := sched.PhaseEnd(lab.Plan, sched.PhasePrepending)
	base := camp.PartitionAfter(prependEnd)
	res := &ExtCommunitiesResult{BaseMean: base.Summarize().MeanSize}

	// Poison branch: the campaign already holds these catchments.
	poisonPart := base.Clone()
	for i := prependEnd; i < camp.NumConfigs(); i++ {
		poisonPart.Refine(camp.Catchments[i])
	}
	res.PoisonMean = poisonPart.Summarize().MeanSize
	res.NumConfigs = camp.NumConfigs() - prependEnd

	// Community branch: same (link, neighbor) targets, expressed as
	// no-export communities at the providers.
	g := lab.World.Graph
	providerOf := make(map[bgp.LinkID]topo.ASN)
	for l, m := range lab.World.Platform.Muxes() {
		providerOf[bgp.LinkID(l)] = g.ASN(m.Provider)
	}
	targets := make(map[bgp.LinkID][]topo.ASN)
	count := 0
	for i := prependEnd; i < camp.NumConfigs(); i++ {
		for _, a := range camp.Plan[i].Config.Anns {
			for _, p := range a.Poison {
				targets[a.Link] = append(targets[a.Link], p)
				count++
			}
		}
	}
	if count == 0 {
		return res, nil
	}
	plan := sched.CommunityPlan(lab.World.Platform.NumLinks(), providerOf, targets)
	commPart := base.Clone()
	for _, pc := range plan {
		out, err := lab.World.Platform.Deploy(pc.Config)
		if err != nil {
			return nil, err
		}
		labels := make([]bgp.LinkID, len(camp.Sources))
		for k, src := range camp.Sources {
			labels[k] = out.CatchmentOf(src)
		}
		commPart.Refine(labels)
	}
	res.CommunityMean = commPart.Summarize().MeanSize
	return res, nil
}

// String renders the technique comparison.
func (r *ExtCommunitiesResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Extension: export-control communities vs. poisoning (§VIII)\n")
	fmt.Fprintf(&sb, "  base mean after locations+prepending: %.2f ASes\n", r.BaseMean)
	fmt.Fprintf(&sb, "  after %d poisoning configs:  %.2f ASes\n", r.NumConfigs, r.PoisonMean)
	fmt.Fprintf(&sb, "  after %d community configs:  %.2f ASes\n", r.NumConfigs, r.CommunityMean)
	return sb.String()
}

// ExtRemediationResult evaluates the notification campaign the paper
// motivates (§I): starting from partial BCP38 deployment, each round
// localizes the realizable spoofed traffic, notifies the candidate
// networks (modeled as them deploying ingress filtering), and measures
// the residual attack volume.
type ExtRemediationResult struct {
	// InitialDeployedFrac is the pre-campaign BCP38 deployment level.
	InitialDeployedFrac float64
	// Steps is the per-round trajectory.
	Steps []spoof.RemediationStep
	// TotalNotified is the cumulative notification count.
	TotalNotified int
}

// ExtRemediation runs the loop over the campaign's catchments with a
// Pareto-placed botnet restricted to non-filtering networks.
func ExtRemediation(lab *Lab, deployFrac float64, nBots, maxRounds int) (*ExtRemediationResult, error) {
	const notifyPerRound = 25 // realistic per-round outreach budget
	n := lab.Campaign.NumSources()
	seed := lab.World.Params.Seed
	model, err := spoof.NewBCP38Model(n, deployFrac, seed)
	if err != nil {
		return nil, err
	}
	rng := stats.NewRNG(seed ^ 0x2e3ed1a7e)
	placement := spoof.PlacePareto(rng, n, nBots)
	res := &ExtRemediationResult{InitialDeployedFrac: model.DeployedFrac()}
	res.Steps = spoof.Remediate(lab.Campaign.Catchments, placement, model,
		lab.World.Platform.NumLinks(), maxRounds, notifyPerRound)
	for _, s := range res.Steps {
		res.TotalNotified += s.NotifiedASCount
	}
	return res, nil
}

// String renders the remediation trajectory.
func (r *ExtRemediationResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Extension: localization-driven BCP38 notification campaign (§I)\n")
	fmt.Fprintf(&sb, "  initial deployment: %.0f%% of networks filter spoofed traffic\n", r.InitialDeployedFrac*100)
	for _, s := range r.Steps {
		fmt.Fprintf(&sb, "  round %d: notified %d network(s), residual attack volume %.1f%%\n",
			s.Round, s.NotifiedASCount, s.ResidualFrac*100)
	}
	fmt.Fprintf(&sb, "  total notifications: %d\n", r.TotalNotified)
	return sb.String()
}

// ExtSpeedResult evaluates localization wall-clock time (§V-C): how long
// until the mean cluster size drops below a target, for random vs. greedy
// schedules and for 1, 2, and 4 concurrently announced prefixes.
type ExtSpeedResult struct {
	TargetMean float64
	// ConfigsRandom/ConfigsGreedy are the configuration counts needed.
	ConfigsRandom, ConfigsGreedy int
	// Times[k] is the wall-clock time with k prefixes (keys 1, 2, 4)
	// using the greedy schedule.
	Times map[int]time.Duration
	// TimeRandomSingle is the single-prefix random-schedule time.
	TimeRandomSingle time.Duration
}

// ExtSpeed computes time-to-target localization for the lab's campaign.
func ExtSpeed(lab *Lab, targetMean float64, seed uint64) *ExtSpeedResult {
	catchments := lab.Campaign.Catchments
	res := &ExtSpeedResult{TargetMean: targetMean, Times: map[int]time.Duration{}}
	slot := lab.World.Platform.Constraints().ConfigDuration

	greedy, _ := sched.GreedyTrajectory(catchments, 0)
	res.ConfigsGreedy = firstBelow(greedy, targetMean)
	random := sched.RandomTrajectory(catchments, stats.NewRNG(seed))
	res.ConfigsRandom = firstBelow(random, targetMean)

	if res.ConfigsRandom > 0 {
		res.TimeRandomSingle = time.Duration(res.ConfigsRandom) * slot
	}
	if res.ConfigsGreedy > 0 {
		for _, k := range []int{1, 2, 4} {
			slots := (res.ConfigsGreedy + k - 1) / k
			res.Times[k] = time.Duration(slots) * slot
		}
	}
	return res
}

// firstBelow returns the 1-based index of the first trajectory value at
// or below the target, or 0 if never reached.
func firstBelow(tr sched.Trajectory, target float64) int {
	for i, v := range tr {
		if v <= target {
			return i + 1
		}
	}
	return 0
}

// String renders the speed study.
func (r *ExtSpeedResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Extension: localization speed to mean cluster size <= %.1f (§V-C)\n", r.TargetMean)
	fmt.Fprintf(&sb, "  random schedule: %d configurations (%s, 1 prefix)\n", r.ConfigsRandom, r.TimeRandomSingle)
	fmt.Fprintf(&sb, "  greedy schedule: %d configurations\n", r.ConfigsGreedy)
	for _, k := range []int{1, 2, 4} {
		if d, ok := r.Times[k]; ok {
			fmt.Fprintf(&sb, "    with %d concurrent prefix(es): %s\n", k, d)
		}
	}
	return sb.String()
}
