package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestExtPrediction(t *testing.T) {
	r, err := ExtPrediction(lab(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.AgreementPerConfig) != lab(t).Campaign.NumConfigs() {
		t.Fatal("missing per-config agreement")
	}
	// The predictor shares the engine's decision structure minus the
	// noise knobs, so agreement should be substantial but not perfect.
	if r.Mean < 0.5 || r.Mean >= 1.0 {
		t.Fatalf("mean agreement %.3f implausible", r.Mean)
	}
	if !strings.Contains(r.String(), "prediction") {
		t.Fatal("String() missing header")
	}
}

func TestExtTargetedPoison(t *testing.T) {
	l := lab(t)
	r, err := ExtTargetedPoison(l, 10)
	if err != nil {
		t.Fatal(err)
	}
	if r.ExtraConfigs == 0 {
		t.Skip("no clusters above threshold in this lab")
	}
	// Refinement can only shrink or keep cluster sizes.
	if r.AfterMean > r.BeforeMean+1e-9 {
		t.Fatalf("targeted poisoning grew mean size %.2f -> %.2f", r.BeforeMean, r.AfterMean)
	}
	if r.AfterMax > r.BeforeMax {
		t.Fatalf("targeted poisoning grew max cluster %d -> %d", r.BeforeMax, r.AfterMax)
	}
	if !strings.Contains(r.String(), "targeted") {
		t.Fatal("String() missing header")
	}
}

func TestExtCommunities(t *testing.T) {
	l := lab(t)
	r, err := ExtCommunities(l)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumConfigs == 0 {
		t.Fatal("no poison configs to compare against")
	}
	// Both techniques refine from the base; neither can grow clusters.
	if r.PoisonMean > r.BaseMean+1e-9 || r.CommunityMean > r.BaseMean+1e-9 {
		t.Fatalf("technique grew clusters: base %.2f poison %.2f community %.2f",
			r.BaseMean, r.PoisonMean, r.CommunityMean)
	}
	if r.CommunityMean <= 0 {
		t.Fatal("community branch did not run")
	}
	if !strings.Contains(r.String(), "communities") {
		t.Fatal("String() missing header")
	}
}

func TestExtRemediation(t *testing.T) {
	l := lab(t)
	r, err := ExtRemediation(l, 0.5, 100, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Steps) == 0 {
		t.Fatal("no remediation rounds")
	}
	last := r.Steps[len(r.Steps)-1]
	// Localization-driven notification must eliminate the attack: the
	// candidate set always covers the active sources.
	if last.ResidualVolume != 0 {
		t.Fatalf("residual volume %.2f after %d rounds", last.ResidualVolume, last.Round)
	}
	if r.TotalNotified == 0 || r.TotalNotified > l.Campaign.NumSources() {
		t.Fatalf("notified %d networks", r.TotalNotified)
	}
	if !strings.Contains(r.String(), "notification campaign") {
		t.Fatal("String() missing header")
	}
}

func TestExtStaleness(t *testing.T) {
	l := lab(t)
	r, err := ExtStaleness(l, 40, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	// Route drift is real but partial.
	if r.CatchmentChangedFrac <= 0 || r.CatchmentChangedFrac >= 0.5 {
		t.Fatalf("changed fraction %.3f implausible for 5%% drift", r.CatchmentChangedFrac)
	}
	// Fresh catchments never lose the attacker; that is Localize's
	// soundness guarantee when the map matches reality.
	if r.Fresh.HitRate != 1.0 {
		t.Fatalf("fresh hit rate %.2f, want 1.0", r.Fresh.HitRate)
	}
	// Hit rate and candidate count grow with tolerance.
	for i := 1; i < len(r.Stale); i++ {
		if r.Stale[i].HitRate < r.Stale[i-1].HitRate-1e-9 {
			t.Fatal("hit rate not monotone in tolerance")
		}
		if r.Stale[i].MeanCandidates < r.Stale[i-1].MeanCandidates-1e-9 {
			t.Fatal("candidate count not monotone in tolerance")
		}
	}
	// A generous tolerance must recover most attackers under mild drift.
	last := r.Stale[len(r.Stale)-1]
	if last.HitRate < 0.8 {
		t.Fatalf("tolerant stale hit rate %.2f too low", last.HitRate)
	}
	if !strings.Contains(r.String(), "stale") {
		t.Fatal("String() missing header")
	}
}

func TestExtSpeed(t *testing.T) {
	l := lab(t)
	r := ExtSpeed(l, 5.0, 3)
	if r.ConfigsGreedy == 0 {
		t.Fatal("greedy never reached target mean 5.0")
	}
	// Greedy needs no more configurations than this random draw.
	if r.ConfigsRandom > 0 && r.ConfigsGreedy > r.ConfigsRandom {
		t.Fatalf("greedy %d configs, random %d", r.ConfigsGreedy, r.ConfigsRandom)
	}
	// Concurrency divides wall-clock time (up to slot rounding).
	if r.Times[4] > r.Times[2] || r.Times[2] > r.Times[1] {
		t.Fatalf("concurrency times not monotone: %v", r.Times)
	}
	if r.Times[1] != time.Duration(r.ConfigsGreedy)*70*time.Minute {
		t.Fatalf("single-prefix time %v inconsistent", r.Times[1])
	}
	if !strings.Contains(r.String(), "speed") {
		t.Fatal("String() missing header")
	}
}
