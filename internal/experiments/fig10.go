package experiments

import (
	"fmt"
	"strings"

	"spooftrack/internal/spoof"
	"spooftrack/internal/stats"
)

// Fig10Params tunes the spoofed-traffic study.
type Fig10Params struct {
	// NumPlacements is how many random placements each distribution is
	// averaged over (the paper uses 1000).
	NumPlacements int
	// NumBots is the number of spoofing hosts placed per trial for the
	// uniform and Pareto distributions.
	NumBots int
	// MaxSize is the largest cluster size reported on the x-axis.
	MaxSize int
	Seed    uint64
}

// DefaultFig10Params mirrors the paper's study.
func DefaultFig10Params() Fig10Params {
	return Fig10Params{NumPlacements: 1000, NumBots: 100, MaxSize: 16, Seed: 42}
}

// Fig10Result is the cumulative fraction of spoofed-traffic volume in
// clusters up to each size, averaged over placements, for the three
// §V-D source distributions. The paper observes that most spoofed
// traffic originates from ASes in small clusters under all three.
type Fig10Result struct {
	Uniform []spoof.TrafficBySizePoint
	Pareto  []spoof.TrafficBySizePoint
	Single  []spoof.TrafficBySizePoint
}

// Fig10 runs the placement simulations over the default campaign's
// final partition.
func Fig10(lab *Lab, p Fig10Params) *Fig10Result {
	part := lab.Campaign.FinalPartition()
	n := part.NumSources()
	rng := stats.NewRNG(p.Seed ^ 0xf16a10)
	run := func(place func(r *stats.RNG) spoof.Placement) []spoof.TrafficBySizePoint {
		curves := make([][]spoof.TrafficBySizePoint, 0, p.NumPlacements)
		for t := 0; t < p.NumPlacements; t++ {
			curves = append(curves, spoof.TrafficBySize(part, place(rng.Split())))
		}
		return spoof.AverageTrafficBySize(curves, p.MaxSize)
	}
	return &Fig10Result{
		Uniform: run(func(r *stats.RNG) spoof.Placement { return spoof.PlaceUniform(r, n, p.NumBots) }),
		Pareto:  run(func(r *stats.RNG) spoof.Placement { return spoof.PlacePareto(r, n, p.NumBots) }),
		Single:  run(func(r *stats.RNG) spoof.Placement { return spoof.PlaceSingle(r, n) }),
	}
}

// String renders the three averaged curves.
func (r *Fig10Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 10: cumulative traffic volume vs. cluster size\n")
	fmt.Fprintf(&sb, "  %6s %10s %10s %10s\n", "size", "uniform", "pareto", "single")
	for i := range r.Uniform {
		fmt.Fprintf(&sb, "  %6d %10.3f %10.3f %10.3f\n",
			r.Uniform[i].Size, r.Uniform[i].CumFrac, r.Pareto[i].CumFrac, r.Single[i].CumFrac)
	}
	return sb.String()
}
