package experiments

import "testing"

// TestCampaignDeterminism verifies the repository's reproducibility
// claim end-to-end: two labs built from the same seed produce
// bit-identical catchment matrices, partitions, and figure outputs.
func TestCampaignDeterminism(t *testing.T) {
	params := LabParams{
		Seed:             99,
		NumASes:          1000,
		NumProbes:        300,
		NumCollectors:    80,
		MaxPoisonTargets: 20,
	}
	a, err := NewLab(params)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewLab(params)
	if err != nil {
		t.Fatal(err)
	}
	if a.Campaign.NumSources() != b.Campaign.NumSources() {
		t.Fatalf("source counts differ: %d vs %d", a.Campaign.NumSources(), b.Campaign.NumSources())
	}
	for c := range a.Campaign.Catchments {
		for k := range a.Campaign.Catchments[c] {
			if a.Campaign.Catchments[c][k] != b.Campaign.Catchments[c][k] {
				t.Fatalf("catchment [%d][%d] differs", c, k)
			}
		}
	}
	ma := a.Campaign.FinalPartition().Summarize()
	mb := b.Campaign.FinalPartition().Summarize()
	if ma != mb {
		t.Fatalf("partitions differ: %+v vs %+v", ma, mb)
	}
	// Figure outputs render identically.
	if Fig3(a).String() != Fig3(b).String() {
		t.Fatal("Fig3 output differs")
	}
	if Headline(a).String() != Headline(b).String() {
		t.Fatal("headline output differs")
	}
	fa := Fig8(a, Fig8Params{NumRandomSequences: 20, GreedySteps: 8, Seed: 1})
	fb := Fig8(b, Fig8Params{NumRandomSequences: 20, GreedySteps: 8, Seed: 1})
	if fa.String() != fb.String() {
		t.Fatal("Fig8 output differs")
	}
}
