package experiments

import (
	"fmt"
	"strings"

	"spooftrack/internal/sched"
)

// Fig8Params tunes the scheduling comparison.
type Fig8Params struct {
	// NumRandomSequences is the size of the random-order ensemble
	// (the paper used 30,000; the default trades that for runtime while
	// keeping stable quartiles).
	NumRandomSequences int
	// GreedySteps bounds the greedy trajectory; 0 means all
	// configurations (the interesting region is the first tens).
	GreedySteps int
	Seed        uint64
}

// DefaultFig8Params returns the harness defaults.
func DefaultFig8Params() Fig8Params {
	return Fig8Params{NumRandomSequences: 200, GreedySteps: 64, Seed: 42}
}

// Fig8Result compares random and greedy deployment schedules over
// precomputed catchments (Fig. 8). The paper reports a mean cluster size
// of 7.8 ASes after ten random configurations versus 3.5 with the greedy
// order.
type Fig8Result struct {
	RandomP25, RandomMedian, RandomP75 sched.Trajectory
	Greedy                             sched.Trajectory
	GreedyOrder                        []int
	// At10 captures the figure's headline comparison after ten
	// configurations.
	RandomAt10, GreedyAt10 float64
}

// Fig8 runs the scheduling comparison on the default campaign's
// catchment matrix.
func Fig8(lab *Lab, p Fig8Params) *Fig8Result {
	catchments := lab.Campaign.Catchments
	res := &Fig8Result{}
	res.RandomP25, res.RandomMedian, res.RandomP75 = sched.RandomEnsemble(catchments, p.NumRandomSequences, p.Seed)
	res.Greedy, res.GreedyOrder = sched.GreedyTrajectory(catchments, p.GreedySteps)
	if len(res.RandomMedian) >= 10 {
		res.RandomAt10 = res.RandomMedian[9]
	}
	if len(res.Greedy) >= 10 {
		res.GreedyAt10 = res.Greedy[9]
	}
	return res
}

// String renders both schedules at log-spaced checkpoints.
func (r *Fig8Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 8: mean cluster size vs. announcement schedule\n")
	fmt.Fprintf(&sb, "  after 10 configs: random median %.2f, greedy %.2f\n", r.RandomAt10, r.GreedyAt10)
	fmt.Fprintf(&sb, "  %8s %10s %22s %10s\n", "configs", "rand p25", "rand median (p75)", "greedy")
	n := len(r.Greedy)
	if len(r.RandomMedian) < n {
		n = len(r.RandomMedian)
	}
	for _, i := range logCheckpoints(n) {
		fmt.Fprintf(&sb, "  %8d %10.2f %12.2f (%6.2f) %10.2f\n",
			i+1, r.RandomP25[i], r.RandomMedian[i], r.RandomP75[i], r.Greedy[i])
	}
	return sb.String()
}
