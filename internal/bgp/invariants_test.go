package bgp

import (
	"sort"
	"testing"

	"spooftrack/internal/topo"
)

// worldForTest generates a mid-sized topology and an origin attached to
// seven high-customer-degree transit providers, mirroring the PEERING
// setup at reduced scale.
func worldForTest(t testing.TB, seed uint64, numASes int) (*topo.Graph, Origin) {
	p := topo.DefaultGenParams(seed)
	p.NumASes = numASes
	g, err := topo.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	transit := g.TransitASes()
	sort.Slice(transit, func(i, j int) bool {
		ci, cj := len(g.Customers(transit[i])), len(g.Customers(transit[j]))
		if ci != cj {
			return ci > cj
		}
		return transit[i] < transit[j]
	})
	// Skip tier-1s: PEERING buys from regional transit providers.
	var provs []int
	for _, idx := range transit {
		if !g.IsTier1(idx) {
			provs = append(provs, idx)
		}
		if len(provs) == 7 {
			break
		}
	}
	if len(provs) < 7 {
		t.Fatalf("topology too small for 7 providers")
	}
	links := make([]Link, 7)
	for i, p := range provs {
		links[i] = Link{Name: "mux" + string(rune('A'+i)), Provider: p}
	}
	return g, Origin{ASN: 47065, Links: links}
}

func allLinksConfig(n int) Config {
	anns := make([]Announcement, n)
	for i := range anns {
		anns[i] = Announcement{Link: LinkID(i)}
	}
	return Config{Anns: anns}
}

func TestFullAnycastRoutesEveryone(t *testing.T) {
	g, o := worldForTest(t, 42, 1200)
	e := newEngine(t, g, o, noiseless())
	out := propagate(t, e, allLinksConfig(7))
	if n := out.NumRouted(); n != g.NumASes() {
		t.Fatalf("only %d of %d ASes routed under full anycast", n, g.NumASes())
	}
	// All 7 catchments should be non-empty for well-spread providers.
	c := out.Catchments()
	if len(c) < 5 {
		t.Errorf("only %d non-empty catchments; providers are poorly spread", len(c))
	}
}

func TestCatchmentsPartitionRoutedASes(t *testing.T) {
	g, o := worldForTest(t, 43, 1000)
	e := newEngine(t, g, o, DefaultParams(43))
	out := propagate(t, e, allLinksConfig(7))
	seen := make(map[int]bool)
	for _, members := range out.Catchments() {
		for _, i := range members {
			if seen[i] {
				t.Fatalf("AS%d appears in two catchments", g.ASN(i))
			}
			seen[i] = true
		}
	}
	if len(seen) != out.NumRouted() {
		t.Fatalf("catchments cover %d ASes, routed %d", len(seen), out.NumRouted())
	}
}

func TestPropagationDeterministic(t *testing.T) {
	g, o := worldForTest(t, 44, 800)
	cfg := Config{Anns: []Announcement{
		{Link: 0}, {Link: 2, Prepend: 4}, {Link: 5, Poison: []topo.ASN{g.ASN(20)}},
	}}
	e1 := newEngine(t, g, o, DefaultParams(7))
	e2 := newEngine(t, g, o, DefaultParams(7))
	v1 := propagate(t, e1, cfg).CatchmentVector()
	v2 := propagate(t, e2, cfg).CatchmentVector()
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("catchment of AS%d differs across identical engines", g.ASN(i))
		}
	}
}

func TestValleyFreePathsWithoutNoise(t *testing.T) {
	g, o := worldForTest(t, 45, 1000)
	e := newEngine(t, g, o, noiseless())
	out := propagate(t, e, allLinksConfig(7))
	for i := 0; i < g.NumASes(); i++ {
		dp := out.DataPath(i)
		if dp == nil {
			continue
		}
		// Forwarding direction src -> ... -> provider -> origin.
		// Valley-free: a sequence of up (to provider) steps, at most one
		// peer step, then down (to customer) steps.
		phase := 0 // 0 = climbing, 1 = after peer step, 2 = descending
		for k := 0; k+1 < len(dp); k++ {
			rel, ok := g.Rel(dp[k], dp[k+1])
			if !ok {
				t.Fatalf("non-adjacent hops in path of AS%d", g.ASN(i))
			}
			switch rel {
			case topo.RelProvider: // moving up
				if phase != 0 {
					t.Fatalf("AS%d path climbs after peak: %v", g.ASN(i), pathASNs(g, dp))
				}
			case topo.RelPeer:
				if phase >= 1 {
					t.Fatalf("AS%d path has two peer steps: %v", g.ASN(i), pathASNs(g, dp))
				}
				phase = 1
			case topo.RelCustomer: // moving down
				phase = 2
			}
		}
	}
}

func pathASNs(g *topo.Graph, dp []int) []topo.ASN {
	out := make([]topo.ASN, len(dp))
	for i, idx := range dp {
		out[i] = g.ASN(idx)
	}
	return out
}

func TestASPathMatchesDataPathPlusStuffing(t *testing.T) {
	g, o := worldForTest(t, 46, 600)
	e := newEngine(t, g, o, DefaultParams(46))
	cfg := Config{Anns: []Announcement{{Link: 0, Prepend: 2}, {Link: 1}}}
	out := propagate(t, e, cfg)
	for i := 0; i < g.NumASes(); i += 13 {
		dp, ap := out.DataPath(i), out.ASPath(i)
		if dp == nil {
			continue
		}
		for k, idx := range dp {
			if ap[k] != g.ASN(idx) {
				t.Fatalf("ASPath prefix diverges from DataPath at hop %d for AS%d", k, g.ASN(i))
			}
		}
		ann := out.Config().Anns[0]
		if out.CatchmentOf(i) == 1 {
			ann = out.Config().Anns[1]
		}
		if len(ap) != len(dp)+ann.PathLen() {
			t.Fatalf("ASPath length %d != data %d + announcement %d", len(ap), len(dp), ann.PathLen())
		}
	}
}

func TestWithdrawingLinkMovesItsCatchment(t *testing.T) {
	g, o := worldForTest(t, 47, 1000)
	e := newEngine(t, g, o, noiseless())
	full := propagate(t, e, allLinksConfig(7))
	// Withdraw link 0; every AS previously on link 0 must move elsewhere
	// (or lose its route), and ASes on other links should mostly stay.
	cfg := Config{}
	for l := 1; l < 7; l++ {
		cfg.Anns = append(cfg.Anns, Announcement{Link: LinkID(l)})
	}
	reduced := propagate(t, e, cfg)
	moved := 0
	for i := 0; i < g.NumASes(); i++ {
		if full.CatchmentOf(i) == 0 {
			if l := reduced.CatchmentOf(i); l == 0 {
				t.Fatalf("AS%d still in withdrawn catchment", g.ASN(i))
			}
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("link 0 had an empty catchment; test is vacuous")
	}
}

func TestPrependShrinksCatchment(t *testing.T) {
	g, o := worldForTest(t, 48, 1000)
	e := newEngine(t, g, o, noiseless())
	plain := propagate(t, e, allLinksConfig(7))
	cfg := allLinksConfig(7)
	cfg.Anns[0].Prepend = 4
	prepended := propagate(t, e, cfg)
	before := len(plain.Catchments()[0])
	after := len(prepended.Catchments()[0])
	if after > before {
		t.Fatalf("prepending link 0 grew its catchment: %d -> %d", before, after)
	}
	if before == 0 {
		t.Fatal("link 0 catchment empty; vacuous")
	}
}

func TestConcurrentPropagateSafe(t *testing.T) {
	g, o := worldForTest(t, 49, 600)
	e := newEngine(t, g, o, DefaultParams(49))
	done := make(chan []LinkID, 4)
	for k := 0; k < 4; k++ {
		go func() {
			out, err := e.Propagate(allLinksConfig(7))
			if err != nil {
				done <- nil
				return
			}
			done <- out.CatchmentVector()
		}()
	}
	var first []LinkID
	for k := 0; k < 4; k++ {
		v := <-done
		if v == nil {
			t.Fatal("concurrent propagate failed")
		}
		if first == nil {
			first = v
			continue
		}
		for i := range v {
			if v[i] != first[i] {
				t.Fatal("concurrent propagations disagree")
			}
		}
	}
}
