package bgp

import (
	"testing"

	"spooftrack/internal/trace"
)

// BenchmarkPropagateTraced measures the tracing overhead on the
// propagation hot path. The "off" variant is the budget that matters:
// with the global tracer disabled, instrumented Propagate must stay
// within a few atomic loads of the uninstrumented baseline
// (BenchmarkPropagateFullScale). The "on" variant shows the full cost
// of journaling a span per propagation.
func BenchmarkPropagateTraced(b *testing.B) {
	g, o := worldForTest(b, 42, 4000)
	e, err := NewEngine(g, o, DefaultParams(42))
	if err != nil {
		b.Fatal(err)
	}
	cfg := allLinksConfig(7)
	prev := trace.Global()
	defer trace.SetGlobal(prev)

	b.Run("off", func(b *testing.B) {
		trace.SetGlobal(trace.New(trace.Options{}))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.Propagate(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("on", func(b *testing.B) {
		trace.SetGlobal(trace.New(trace.Options{Enabled: true, JournalCap: 4096}))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.Propagate(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}
