package bgp

import (
	"sync"

	"spooftrack/internal/metrics"
	"spooftrack/internal/trace"
)

// OutcomeCache memoizes propagation outcomes by canonical configuration
// key (Config.Key). Outcomes are immutable, so cache hits return the
// same *Outcome pointer the first propagation produced — callers get
// pointer-stable, bit-identical results whether or not the cache is in
// play. A cache belongs to one engine: keys do not encode engine
// parameters.
//
// The footprint/scheduling experiments and the live reconfiguration loop
// revisit configurations constantly (SubCampaign emulation, greedy
// re-ranking, targeted re-deploys); with the cache each distinct
// configuration is propagated exactly once per engine.
type OutcomeCache struct {
	mu     sync.Mutex
	m      map[string]*Outcome
	hits   uint64
	misses uint64
	// hitC/missC, when set via Instrument, are bumped alongside the
	// internal counters so a registry sees hits and misses as one
	// labeled family instead of two scraped gauges.
	hitC  *metrics.Counter
	missC *metrics.Counter
}

// CacheStats is a point-in-time view of a cache's effectiveness:
// cumulative hit and miss counts plus the current number of memoized
// outcomes. Exposed through the metrics registry by cmd/spooftrackd.
type CacheStats struct {
	Hits   uint64
	Misses uint64
	Size   int
}

// NewOutcomeCache returns an empty cache.
func NewOutcomeCache() *OutcomeCache {
	return &OutcomeCache{m: make(map[string]*Outcome)}
}

// Propagate returns the engine's outcome for the configuration, reusing
// a previously computed outcome when the canonical key matches. Safe for
// concurrent use; on a race, the first stored outcome wins so pointer
// identity stays stable.
func (c *OutcomeCache) Propagate(e *Engine, cfg Config) (*Outcome, error) {
	return c.PropagateTraced(e, cfg, nil)
}

// PropagateTraced is Propagate with trace-span parentage: the lookup's
// "bgp.cache" span (carrying hit/miss counters and the cache size)
// nests under parent, and on a miss the engine's propagation span nests
// under the lookup. With tracing disabled this costs a few atomic loads
// over Propagate.
func (c *OutcomeCache) PropagateTraced(e *Engine, cfg Config, parent *trace.Span) (*Outcome, error) {
	sp := trace.StartChild(parent, "bgp.cache")
	key := cfg.Key()
	c.mu.Lock()
	if out, ok := c.m[key]; ok {
		c.hits++
		if c.hitC != nil {
			c.hitC.Inc()
		}
		size := len(c.m)
		c.mu.Unlock()
		c.endSpan(sp, 1, 0, size)
		return out, nil
	}
	c.mu.Unlock()
	out, err := e.PropagateTraced(cfg, sp)
	if err != nil {
		sp.End()
		return nil, err
	}
	c.mu.Lock()
	if prior, ok := c.m[key]; ok {
		c.hits++
		if c.hitC != nil {
			c.hitC.Inc()
		}
		size := len(c.m)
		c.mu.Unlock()
		c.endSpan(sp, 1, 0, size)
		return prior, nil
	}
	c.misses++
	if c.missC != nil {
		c.missC.Inc()
	}
	c.m[key] = &out
	size := len(c.m)
	c.mu.Unlock()
	c.endSpan(sp, 0, 1, size)
	return &out, nil
}

// endSpan stamps a lookup span with its hit/miss outcome and the cache
// size at resolution time.
func (c *OutcomeCache) endSpan(sp *trace.Span, hit, miss int64, size int) {
	if sp == nil {
		return
	}
	sp.Count("hit", hit)
	sp.Count("miss", miss)
	sp.Set(trace.Int("size", int64(size)))
	sp.End()
}

// Instrument attaches a labeled counter vector (conventionally
// bgp_outcome_cache_requests_total{result}) so hits and misses are
// counted under result="hit" / result="miss" as they happen. Nil
// detaches. Counts recorded before Instrument are not replayed.
func (c *OutcomeCache) Instrument(v *metrics.CounterVec) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if v == nil {
		c.hitC, c.missC = nil, nil
		return
	}
	c.hitC = v.With("hit")
	c.missC = v.With("miss")
}

// Stats returns the cumulative hit and miss counts.
func (c *OutcomeCache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// StatsSnapshot returns hit, miss, and size counters in one consistent
// read — the shape the metrics registry's gauge functions consume.
func (c *OutcomeCache) StatsSnapshot() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Size: len(c.m)}
}

// Len returns the number of cached outcomes.
func (c *OutcomeCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
