package bgp

import (
	"sync"

	"spooftrack/internal/metrics"
	"spooftrack/internal/trace"
)

// DefaultOutcomeCacheCapacity bounds a cache built by NewOutcomeCache.
// An Outcome holds one selection per AS (~1.25 MB at 80k ASes), so an
// unbounded cache walks into multi-gigabyte territory over a
// 705-configuration campaign sweep; 1024 entries keeps every config of
// the paper's campaigns resident at small scale while capping worst-case
// memory at internet scale.
const DefaultOutcomeCacheCapacity = 1024

// OutcomeCache memoizes propagation outcomes by canonical configuration
// key (Config.Key). Outcomes are immutable, so cache hits return the
// same *Outcome pointer the first propagation produced — callers get
// pointer-stable, bit-identical results whether or not the cache is in
// play. A cache belongs to one engine: keys do not encode engine
// parameters.
//
// The footprint/scheduling experiments and the live reconfiguration loop
// revisit configurations constantly (SubCampaign emulation, greedy
// re-ranking, targeted re-deploys); with the cache each distinct
// configuration is propagated exactly once per engine.
//
// The cache is bounded: beyond its capacity the least-recently-used
// outcome is evicted (hits refresh recency). It also remembers the most
// recently resolved outcome and hands it to Engine.PropagateDelta on a
// miss, so consumers that replay near-identical configurations — the
// campaign runner, the scheduler's predictor, the stream controller's
// greedy loop — ride the incremental path without code changes;
// PropagateDelta transparently falls back to a full run whenever the
// previous outcome cannot help.
type OutcomeCache struct {
	mu     sync.Mutex
	m      map[string]*cacheEntry
	cap    int
	head   *cacheEntry // most recently used
	tail   *cacheEntry // least recently used
	last   *Outcome    // most recently resolved outcome, delta seed
	hits   uint64
	misses uint64
	evicts uint64
	// hitC/missC/evictC, when set via Instrument, are bumped alongside
	// the internal counters so a registry sees the events as one labeled
	// family instead of scraped gauges.
	hitC   *metrics.Counter
	missC  *metrics.Counter
	evictC *metrics.Counter
}

type cacheEntry struct {
	key        string
	out        *Outcome
	prev, next *cacheEntry
}

// CacheStats is a point-in-time view of a cache's effectiveness:
// cumulative hit, miss, and eviction counts plus the current number of
// memoized outcomes and the configured capacity (0 = unbounded).
// Exposed through the metrics registry by cmd/spooftrackd.
type CacheStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Size      int
	Capacity  int
}

// NewOutcomeCache returns an empty cache bounded at
// DefaultOutcomeCacheCapacity entries.
func NewOutcomeCache() *OutcomeCache {
	return NewOutcomeCacheCap(DefaultOutcomeCacheCapacity)
}

// NewOutcomeCacheCap returns an empty cache bounded at capacity entries;
// capacity <= 0 means unbounded.
func NewOutcomeCacheCap(capacity int) *OutcomeCache {
	return &OutcomeCache{m: make(map[string]*cacheEntry), cap: capacity}
}

// SetCapacity rebounds the cache (<= 0 means unbounded), evicting from
// the LRU end if the current contents exceed the new capacity.
func (c *OutcomeCache) SetCapacity(capacity int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cap = capacity
	c.evictOver()
}

// touch moves an entry to the MRU position. Caller holds mu.
func (c *OutcomeCache) touch(e *cacheEntry) {
	if c.head == e {
		return
	}
	// unlink
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	}
	if c.tail == e {
		c.tail = e.prev
	}
	// push front
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// evictOver drops LRU entries until the size fits the capacity. Caller
// holds mu. Evicted outcomes stay valid for callers still holding them
// (outcomes are immutable); only the memoization is dropped.
func (c *OutcomeCache) evictOver() {
	if c.cap <= 0 {
		return
	}
	for len(c.m) > c.cap && c.tail != nil {
		victim := c.tail
		c.tail = victim.prev
		if c.tail != nil {
			c.tail.next = nil
		} else {
			c.head = nil
		}
		delete(c.m, victim.key)
		c.evicts++
		if c.evictC != nil {
			c.evictC.Inc()
		}
	}
}

// Propagate returns the engine's outcome for the configuration, reusing
// a previously computed outcome when the canonical key matches. Safe for
// concurrent use; on a race, the first stored outcome wins so pointer
// identity stays stable.
func (c *OutcomeCache) Propagate(e *Engine, cfg Config) (*Outcome, error) {
	return c.PropagateTraced(e, cfg, nil)
}

// PropagateTraced is Propagate with trace-span parentage: the lookup's
// "bgp.cache" span (carrying hit/miss counters and the cache size)
// nests under parent, and on a miss the engine's delta propagation span
// nests under the lookup. With tracing disabled this costs a few atomic
// loads over Propagate.
func (c *OutcomeCache) PropagateTraced(e *Engine, cfg Config, parent *trace.Span) (*Outcome, error) {
	sp := trace.StartChild(parent, "bgp.cache")
	key := cfg.Key()
	c.mu.Lock()
	if ent, ok := c.m[key]; ok {
		c.hits++
		if c.hitC != nil {
			c.hitC.Inc()
		}
		c.touch(ent)
		c.last = ent.out
		size := len(c.m)
		c.mu.Unlock()
		c.endSpan(sp, 1, 0, size)
		return ent.out, nil
	}
	// Seed the miss with the most recent outcome: campaign sweeps and
	// greedy reconfiguration visit near-identical configs back to back,
	// which is exactly the delta fast path. Any converged previous
	// outcome yields the same (byte-identical) result, so racing misses
	// picking different seeds is harmless.
	last := c.last
	c.mu.Unlock()
	var (
		out Outcome
		err error
	)
	if last != nil {
		out, _, err = e.PropagateDeltaTraced(last, last.Config(), cfg, sp)
	} else {
		out, err = e.PropagateTraced(cfg, sp)
	}
	if err != nil {
		sp.End()
		return nil, err
	}
	c.mu.Lock()
	if prior, ok := c.m[key]; ok {
		c.hits++
		if c.hitC != nil {
			c.hitC.Inc()
		}
		c.touch(prior)
		c.last = prior.out
		size := len(c.m)
		c.mu.Unlock()
		c.endSpan(sp, 1, 0, size)
		return prior.out, nil
	}
	c.misses++
	if c.missC != nil {
		c.missC.Inc()
	}
	ent := &cacheEntry{key: key, out: &out}
	c.m[key] = ent
	ent.next = c.head
	if c.head != nil {
		c.head.prev = ent
	}
	c.head = ent
	if c.tail == nil {
		c.tail = ent
	}
	c.last = ent.out
	c.evictOver()
	size := len(c.m)
	c.mu.Unlock()
	c.endSpan(sp, 0, 1, size)
	return ent.out, nil
}

// endSpan stamps a lookup span with its hit/miss outcome and the cache
// size at resolution time.
func (c *OutcomeCache) endSpan(sp *trace.Span, hit, miss int64, size int) {
	if sp == nil {
		return
	}
	sp.Count("hit", hit)
	sp.Count("miss", miss)
	sp.Set(trace.Int("size", int64(size)))
	sp.End()
}

// Instrument attaches a labeled counter vector (conventionally
// bgp_outcome_cache_requests_total{result}) so hits, misses, and LRU
// evictions are counted under result="hit" / result="miss" /
// result="eviction" as they happen. Nil detaches. Counts recorded before
// Instrument are not replayed.
func (c *OutcomeCache) Instrument(v *metrics.CounterVec) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if v == nil {
		c.hitC, c.missC, c.evictC = nil, nil, nil
		return
	}
	c.hitC = v.With("hit")
	c.missC = v.With("miss")
	c.evictC = v.With("eviction")
}

// Stats returns the cumulative hit and miss counts.
func (c *OutcomeCache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// StatsSnapshot returns hit, miss, eviction, and size counters in one
// consistent read — the shape the metrics registry's gauge functions
// consume.
func (c *OutcomeCache) StatsSnapshot() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Evictions: c.evicts, Size: len(c.m), Capacity: c.cap}
}

// Len returns the number of cached outcomes.
func (c *OutcomeCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
