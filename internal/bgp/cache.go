package bgp

import "sync"

// OutcomeCache memoizes propagation outcomes by canonical configuration
// key (Config.Key). Outcomes are immutable, so cache hits return the
// same *Outcome pointer the first propagation produced — callers get
// pointer-stable, bit-identical results whether or not the cache is in
// play. A cache belongs to one engine: keys do not encode engine
// parameters.
//
// The footprint/scheduling experiments and the live reconfiguration loop
// revisit configurations constantly (SubCampaign emulation, greedy
// re-ranking, targeted re-deploys); with the cache each distinct
// configuration is propagated exactly once per engine.
type OutcomeCache struct {
	mu     sync.Mutex
	m      map[string]*Outcome
	hits   uint64
	misses uint64
}

// NewOutcomeCache returns an empty cache.
func NewOutcomeCache() *OutcomeCache {
	return &OutcomeCache{m: make(map[string]*Outcome)}
}

// Propagate returns the engine's outcome for the configuration, reusing
// a previously computed outcome when the canonical key matches. Safe for
// concurrent use; on a race, the first stored outcome wins so pointer
// identity stays stable.
func (c *OutcomeCache) Propagate(e *Engine, cfg Config) (*Outcome, error) {
	key := cfg.Key()
	c.mu.Lock()
	if out, ok := c.m[key]; ok {
		c.hits++
		c.mu.Unlock()
		return out, nil
	}
	c.mu.Unlock()
	out, err := e.Propagate(cfg)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if prior, ok := c.m[key]; ok {
		c.hits++
		return prior, nil
	}
	c.misses++
	c.m[key] = &out
	return &out, nil
}

// Stats returns the cumulative hit and miss counts.
func (c *OutcomeCache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of cached outcomes.
func (c *OutcomeCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
