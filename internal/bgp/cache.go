package bgp

import (
	"sync"

	"spooftrack/internal/metrics"
	"spooftrack/internal/trace"
)

// DefaultOutcomeCacheCapacity bounds a cache built by NewOutcomeCache.
// An Outcome holds one selection per AS (~1.25 MB at 80k ASes), so an
// unbounded cache walks into multi-gigabyte territory over a
// 705-configuration campaign sweep; 1024 entries keeps every config of
// the paper's campaigns resident at small scale while capping worst-case
// memory at internet scale.
const DefaultOutcomeCacheCapacity = 1024

// OutcomeCache memoizes propagation outcomes by canonical configuration
// key (Config.Key). Outcomes are immutable, so cache hits return the
// same *Outcome pointer the first propagation produced — callers get
// pointer-stable, bit-identical results whether or not the cache is in
// play. A cache belongs to one engine: keys do not encode engine
// parameters.
//
// The footprint/scheduling experiments and the live reconfiguration loop
// revisit configurations constantly (SubCampaign emulation, greedy
// re-ranking, targeted re-deploys); with the cache each distinct
// configuration is propagated exactly once per engine.
//
// The cache is bounded: beyond its capacity the least-recently-used
// outcome is evicted (hits refresh recency). It also keeps a small
// window of recently resolved outcomes and hands the closest one
// (fewest dirty announcements by DiffConfigs) to Engine.PropagateDelta
// on a miss, so consumers that replay near-identical configurations —
// the campaign runner, the scheduler's predictor, the greedy volume
// scoring loop, which interleaves candidate families rather than
// stepping through adjacent configs — ride the incremental path without
// code changes; PropagateDelta transparently falls back to a full run
// whenever the seed outcome cannot help.
type OutcomeCache struct {
	mu   sync.Mutex
	m    map[string]*cacheEntry
	cap  int
	head *cacheEntry // most recently used
	tail *cacheEntry // least recently used
	// recent is the delta-seed window: the most recently resolved
	// outcomes, newest first. A miss seeds PropagateDelta from the
	// window entry whose configuration is nearest the requested one
	// (minimum ConfigDiff.NumDirty), not merely the last resolved — the
	// difference between a full recomputation and a one-link delta when
	// a scoring loop alternates between configuration families.
	recent    []*Outcome
	hits      uint64
	misses    uint64
	evicts    uint64
	deltaInc  uint64 // misses resolved on the incremental delta path
	deltaFull uint64 // misses that fell back to full propagation
	// hitC/missC/evictC, when set via Instrument, are bumped alongside
	// the internal counters so a registry sees the events as one labeled
	// family instead of scraped gauges.
	hitC   *metrics.Counter
	missC  *metrics.Counter
	evictC *metrics.Counter
}

type cacheEntry struct {
	key        string
	out        *Outcome
	prev, next *cacheEntry
}

// CacheStats is a point-in-time view of a cache's effectiveness:
// cumulative hit, miss, and eviction counts plus the current number of
// memoized outcomes and the configured capacity (0 = unbounded).
// DeltaIncremental / DeltaFull split the misses by how they resolved:
// seeded through the incremental delta path versus recomputed in full.
// Exposed through the metrics registry by cmd/spooftrackd.
type CacheStats struct {
	Hits             uint64
	Misses           uint64
	Evictions        uint64
	DeltaIncremental uint64
	DeltaFull        uint64
	Size             int
	Capacity         int
}

// DefaultDeltaSeedWindow is how many recently resolved outcomes the
// cache keeps as candidate delta seeds. Small by design: each seed
// pins an Outcome (~16 B/AS) in memory, and the scoring loops the
// window exists for interleave only a handful of configuration
// families at a time.
const DefaultDeltaSeedWindow = 4

// NewOutcomeCache returns an empty cache bounded at
// DefaultOutcomeCacheCapacity entries.
func NewOutcomeCache() *OutcomeCache {
	return NewOutcomeCacheCap(DefaultOutcomeCacheCapacity)
}

// NewOutcomeCacheCap returns an empty cache bounded at capacity entries;
// capacity <= 0 means unbounded.
func NewOutcomeCacheCap(capacity int) *OutcomeCache {
	return &OutcomeCache{m: make(map[string]*cacheEntry), cap: capacity}
}

// SetCapacity rebounds the cache (<= 0 means unbounded), evicting from
// the LRU end if the current contents exceed the new capacity.
func (c *OutcomeCache) SetCapacity(capacity int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cap = capacity
	c.evictOver()
}

// touch moves an entry to the MRU position. Caller holds mu.
func (c *OutcomeCache) touch(e *cacheEntry) {
	if c.head == e {
		return
	}
	// unlink
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	}
	if c.tail == e {
		c.tail = e.prev
	}
	// push front
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// noteResolved pushes an outcome to the front of the delta-seed window
// (move-to-front on re-resolution, truncated to the window size).
// Caller holds mu.
func (c *OutcomeCache) noteResolved(out *Outcome) {
	for i, r := range c.recent {
		if r == out {
			copy(c.recent[1:i+1], c.recent[:i])
			c.recent[0] = out
			return
		}
	}
	if len(c.recent) < DefaultDeltaSeedWindow {
		c.recent = append(c.recent, nil)
	}
	copy(c.recent[1:], c.recent)
	c.recent[0] = out
}

// pickSeed returns the window outcome whose configuration is nearest
// cfg by announcement-level diff (minimum NumDirty; ties toward the
// most recent), or nil when the window is empty. Caller holds mu. The
// scan is cheap — the window holds at most DefaultDeltaSeedWindow
// outcomes and DiffConfigs is linear in a configuration's handful of
// announcements — while the payoff on a hit is the difference between
// an O(dirty-catchment) delta and a full propagation.
func (c *OutcomeCache) pickSeed(cfg Config) *Outcome {
	var best *Outcome
	bestDirty := 0
	for _, r := range c.recent {
		d := DiffConfigs(r.Config(), cfg)
		if best == nil || d.NumDirty < bestDirty {
			best, bestDirty = r, d.NumDirty
			if bestDirty == 0 {
				break
			}
		}
	}
	return best
}

// evictOver drops LRU entries until the size fits the capacity. Caller
// holds mu. Evicted outcomes stay valid for callers still holding them
// (outcomes are immutable); only the memoization is dropped.
func (c *OutcomeCache) evictOver() {
	if c.cap <= 0 {
		return
	}
	for len(c.m) > c.cap && c.tail != nil {
		victim := c.tail
		c.tail = victim.prev
		if c.tail != nil {
			c.tail.next = nil
		} else {
			c.head = nil
		}
		delete(c.m, victim.key)
		c.evicts++
		if c.evictC != nil {
			c.evictC.Inc()
		}
	}
}

// Propagate returns the engine's outcome for the configuration, reusing
// a previously computed outcome when the canonical key matches. Safe for
// concurrent use; on a race, the first stored outcome wins so pointer
// identity stays stable.
func (c *OutcomeCache) Propagate(e *Engine, cfg Config) (*Outcome, error) {
	return c.PropagateTraced(e, cfg, nil)
}

// PropagateTraced is Propagate with trace-span parentage: the lookup's
// "bgp.cache" span (carrying hit/miss counters and the cache size)
// nests under parent, and on a miss the engine's delta propagation span
// nests under the lookup. With tracing disabled this costs a few atomic
// loads over Propagate.
func (c *OutcomeCache) PropagateTraced(e *Engine, cfg Config, parent *trace.Span) (*Outcome, error) {
	sp := trace.StartChild(parent, "bgp.cache")
	key := cfg.Key()
	c.mu.Lock()
	if ent, ok := c.m[key]; ok {
		c.hits++
		if c.hitC != nil {
			c.hitC.Inc()
		}
		c.touch(ent)
		c.noteResolved(ent.out)
		size := len(c.m)
		c.mu.Unlock()
		c.endSpan(sp, 1, 0, size)
		return ent.out, nil
	}
	// Seed the miss with the nearest outcome in the recent window:
	// campaign sweeps visit near-identical configs back to back, and
	// scoring loops interleave a few configuration families — either
	// way some window entry is usually one announcement away, which is
	// exactly the delta fast path. Any converged previous outcome
	// yields the same (byte-identical) result, so racing misses picking
	// different seeds is harmless.
	seed := c.pickSeed(cfg)
	c.mu.Unlock()
	var (
		out  Outcome
		info DeltaInfo
		err  error
	)
	if seed != nil {
		out, info, err = e.PropagateDeltaTraced(seed, seed.Config(), cfg, sp)
	} else {
		out, err = e.PropagateTraced(cfg, sp)
		info.Mode = DeltaFullNoPrev
	}
	if err != nil {
		sp.End()
		return nil, err
	}
	c.mu.Lock()
	if prior, ok := c.m[key]; ok {
		c.hits++
		if c.hitC != nil {
			c.hitC.Inc()
		}
		c.touch(prior)
		c.noteResolved(prior.out)
		size := len(c.m)
		c.mu.Unlock()
		c.endSpan(sp, 1, 0, size)
		return prior.out, nil
	}
	c.misses++
	if c.missC != nil {
		c.missC.Inc()
	}
	if info.Mode.Incremental() {
		c.deltaInc++
	} else {
		c.deltaFull++
	}
	ent := &cacheEntry{key: key, out: &out}
	c.m[key] = ent
	ent.next = c.head
	if c.head != nil {
		c.head.prev = ent
	}
	c.head = ent
	if c.tail == nil {
		c.tail = ent
	}
	c.noteResolved(ent.out)
	c.evictOver()
	size := len(c.m)
	c.mu.Unlock()
	c.endSpan(sp, 0, 1, size)
	return ent.out, nil
}

// endSpan stamps a lookup span with its hit/miss outcome and the cache
// size at resolution time.
func (c *OutcomeCache) endSpan(sp *trace.Span, hit, miss int64, size int) {
	if sp == nil {
		return
	}
	sp.Count("hit", hit)
	sp.Count("miss", miss)
	sp.Set(trace.Int("size", int64(size)))
	sp.End()
}

// Instrument attaches a labeled counter vector (conventionally
// bgp_outcome_cache_requests_total{result}) so hits, misses, and LRU
// evictions are counted under result="hit" / result="miss" /
// result="eviction" as they happen. Nil detaches. Counts recorded before
// Instrument are not replayed.
func (c *OutcomeCache) Instrument(v *metrics.CounterVec) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if v == nil {
		c.hitC, c.missC, c.evictC = nil, nil, nil
		return
	}
	c.hitC = v.With("hit")
	c.missC = v.With("miss")
	c.evictC = v.With("eviction")
}

// Stats returns the cumulative hit and miss counts.
func (c *OutcomeCache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// StatsSnapshot returns hit, miss, eviction, and size counters in one
// consistent read — the shape the metrics registry's gauge functions
// consume.
func (c *OutcomeCache) StatsSnapshot() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:             c.hits,
		Misses:           c.misses,
		Evictions:        c.evicts,
		DeltaIncremental: c.deltaInc,
		DeltaFull:        c.deltaFull,
		Size:             len(c.m),
		Capacity:         c.cap,
	}
}

// Len returns the number of cached outcomes.
func (c *OutcomeCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
