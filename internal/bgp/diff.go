package bgp

import (
	"spooftrack/internal/topo"
)

// AnnChange classifies how one peering link's announcement differs
// between two configurations. The delta propagator (delta.go) keys its
// seeding strategy on this classification.
type AnnChange int8

const (
	// AnnUnchanged: the announcement is identical on both sides; every
	// route derived from it carries over verbatim.
	AnnUnchanged AnnChange = iota
	// AnnShifted: same link and communities, but prepend depth or the
	// poison list differ. Routes carry over with their AS-path length
	// shifted by a constant; only ASes the shift (or a poison toggle)
	// could flip need re-evaluation.
	AnnShifted
	// AnnReplaced: the link announces on both sides but the community
	// set changed. Export behaviour along the catchment is reshaped, so
	// old routes are withdrawn and the catchment rebuilt from the
	// provider.
	AnnReplaced
	// AnnAdded: the link announces only in the new configuration.
	AnnAdded
	// AnnRemoved: the link announces only in the previous configuration;
	// its routes are withdrawn.
	AnnRemoved
)

// ConfigDiff is the structured difference between a previous and a new
// announcement configuration, matched per peering link (configurations
// hold at most one announcement per link). It drives PropagateDelta's
// frontier seeding and is also a cheap standalone answer to "what
// changed between consecutive campaign configs".
type ConfigDiff struct {
	// Same is true when the two configurations are routing-identical:
	// every link carries the same announcement on both sides (the
	// announcement slices may still be ordered differently).
	Same bool
	// Identity is true when Same holds and announcement i of the
	// previous configuration is announcement i of the new one — the
	// previous outcome's selection array can be copied verbatim.
	Identity bool

	// PrevChange[ai] / NewChange[ai] classify each announcement of the
	// previous / new configuration. PrevChange never contains AnnAdded;
	// NewChange never contains AnnRemoved.
	PrevChange []AnnChange
	NewChange  []AnnChange

	// PrevToNew[ai] maps a previous announcement index to the index of
	// its carried counterpart in the new configuration (AnnUnchanged or
	// AnnShifted), or -1 (AnnRemoved / AnnReplaced: routes withdrawn).
	PrevToNew []int16

	// LenShift[ai], for a previous announcement classified AnnShifted,
	// is new.PathLen() - prev.PathLen(): the constant every carried
	// route's AS-path length moves by.
	LenShift []int32

	// PoisonTouched lists, per previous announcement index, the ASNs
	// poisoned on exactly one side of a shifted announcement (added or
	// removed poisons). Their loop-prevention status flipped, so they
	// are seeded regardless of catchment membership.
	PoisonTouched [][]topo.ASN

	// NumDirty counts previous announcements whose routes cannot carry
	// unchanged (shifted, replaced, or removed) plus added new
	// announcements — a quick "how much changed" scalar.
	NumDirty int
}

// Carried reports whether routes selected through previous announcement
// ai survive into the new configuration (possibly length-shifted).
func (d *ConfigDiff) Carried(prevAi int) bool { return d.PrevToNew[prevAi] >= 0 }

// DiffConfigs computes the structured difference from prev to next.
// Announcements are matched by peering link; both configurations must be
// valid for the same origin (at most one announcement per link).
func DiffConfigs(prev, next Config) ConfigDiff {
	d := ConfigDiff{
		PrevChange:    make([]AnnChange, len(prev.Anns)),
		NewChange:     make([]AnnChange, len(next.Anns)),
		PrevToNew:     make([]int16, len(prev.Anns)),
		LenShift:      make([]int32, len(prev.Anns)),
		PoisonTouched: make([][]topo.ASN, len(prev.Anns)),
	}
	// Configurations carry a handful of announcements (one per platform
	// link), so a linear link match beats building maps.
	newByLink := func(l LinkID) int {
		for i := range next.Anns {
			if next.Anns[i].Link == l {
				return i
			}
		}
		return -1
	}
	matched := make([]bool, len(next.Anns))
	identity := len(prev.Anns) == len(next.Anns)
	same := identity
	for ai := range prev.Anns {
		pa := &prev.Anns[ai]
		ni := newByLink(pa.Link)
		if ni < 0 {
			d.PrevChange[ai] = AnnRemoved
			d.PrevToNew[ai] = -1
			d.NumDirty++
			same, identity = false, false
			continue
		}
		matched[ni] = true
		if ni != ai {
			identity = false
		}
		na := &next.Anns[ni]
		switch {
		case annEqual(pa, na):
			d.PrevChange[ai] = AnnUnchanged
			d.NewChange[ni] = AnnUnchanged
			d.PrevToNew[ai] = int16(ni)
		case communitiesEqual(pa.Communities, na.Communities):
			d.PrevChange[ai] = AnnShifted
			d.NewChange[ni] = AnnShifted
			d.PrevToNew[ai] = int16(ni)
			d.LenShift[ai] = int32(na.PathLen()) - int32(pa.PathLen())
			d.PoisonTouched[ai] = poisonSymmetricDiff(pa.Poison, na.Poison)
			d.NumDirty++
			same, identity = false, false
		default:
			d.PrevChange[ai] = AnnReplaced
			d.NewChange[ni] = AnnReplaced
			d.PrevToNew[ai] = -1
			d.NumDirty++
			same, identity = false, false
		}
	}
	for ni := range next.Anns {
		if !matched[ni] {
			d.NewChange[ni] = AnnAdded
			d.NumDirty++
			same, identity = false, false
		}
	}
	d.Same = same
	d.Identity = identity
	return d
}

// annEqual reports whether two announcements are routing-identical:
// same link, prepend depth, poison list, and communities. Poison order
// is compared exactly — a reorder yields an AnnShifted with LenShift 0
// and no touched poisons, which the delta path treats as free.
func annEqual(a, b *Announcement) bool {
	if a.Link != b.Link || a.Prepend != b.Prepend || len(a.Poison) != len(b.Poison) {
		return false
	}
	for i := range a.Poison {
		if a.Poison[i] != b.Poison[i] {
			return false
		}
	}
	return communitiesEqual(a.Communities, b.Communities)
}

func communitiesEqual(a, b []Community) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// poisonSymmetricDiff returns the ASNs present in exactly one of the two
// poison lists (duplicates collapse). Poison lists are tiny (the
// platform allows 2 per announcement), so quadratic scans are fine.
func poisonSymmetricDiff(a, b []topo.ASN) []topo.ASN {
	var out []topo.ASN
	contains := func(xs []topo.ASN, v topo.ASN) bool {
		for _, x := range xs {
			if x == v {
				return true
			}
		}
		return false
	}
	for _, v := range a {
		if !contains(b, v) && !contains(out, v) {
			out = append(out, v)
		}
	}
	for _, v := range b {
		if !contains(a, v) && !contains(out, v) {
			out = append(out, v)
		}
	}
	return out
}
