package bgp

import (
	"sort"
	"testing"

	"spooftrack/internal/topo"
)

// internetWorldForBench is worldForTest over the internet-scale generator
// tiers (topo.InternetGenParams) instead of the 4k paper-scale defaults.
func internetWorldForBench(b *testing.B, seed uint64, numASes int) (*topo.Graph, Origin) {
	g, err := topo.Generate(topo.InternetGenParams(seed, numASes))
	if err != nil {
		b.Fatal(err)
	}
	transit := g.TransitASes()
	sort.Slice(transit, func(i, j int) bool {
		ci, cj := len(g.Customers(transit[i])), len(g.Customers(transit[j]))
		if ci != cj {
			return ci > cj
		}
		return transit[i] < transit[j]
	})
	var provs []int
	for _, idx := range transit {
		if !g.IsTier1(idx) {
			provs = append(provs, idx)
		}
		if len(provs) == 7 {
			break
		}
	}
	if len(provs) < 7 {
		b.Fatalf("topology too small for 7 providers")
	}
	links := make([]Link, 7)
	for i, p := range provs {
		links[i] = Link{Name: "mux" + string(rune('A'+i)), Provider: p}
	}
	// Internet-scale tiers densely cover the low ASN space; probe upward
	// for an origin ASN outside the topology.
	orig := topo.ASN(47065)
	for {
		if _, ok := g.Index(orig); !ok {
			break
		}
		orig++
	}
	return g, Origin{ASN: orig, Links: links}
}

// benchDelta measures PropagateDelta for a fixed prev -> cfg transition,
// in the campaign-loop usage pattern: each step's outcome is inspected
// and then released back to the engine's array pool. It fails the
// benchmark if the delta path falls back to full propagation: these
// benchmarks exist to quantify the incremental path, and a silent
// fallback would report full-propagation numbers under a delta name.
func benchDelta(b *testing.B, e *Engine, prevCfg, cfg Config) {
	prev, err := e.Propagate(prevCfg)
	if err != nil {
		b.Fatal(err)
	}
	// Warm-up: verify the transition rides the incremental path.
	if out, info, err := e.PropagateDeltaInfo(&prev, prevCfg, cfg); err != nil {
		b.Fatal(err)
	} else if !info.Mode.Incremental() {
		b.Fatalf("delta fell back to full propagation (mode %s, seeds %d)", info.Mode, info.Seeds)
	} else {
		out.Release()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := e.PropagateDelta(&prev, prevCfg, cfg)
		if err != nil {
			b.Fatal(err)
		}
		out.Release()
	}
}

// BenchmarkPropagateDeltaSingleLink: one link's prepend changes between
// configs — the distance a plan walks between most adjacent campaign
// configurations. Compare against BenchmarkPropagateFullScale (same
// topology seed, size, and announcement set): the issue's acceptance bar
// is >= 10x faster per config.
func BenchmarkPropagateDeltaSingleLink(b *testing.B) {
	g, o := worldForTest(b, 42, 4000)
	e, err := NewEngine(g, o, DefaultParams(42))
	if err != nil {
		b.Fatal(err)
	}
	prevCfg := allLinksConfig(7)
	cfg := cloneConfig(prevCfg)
	cfg.Anns[3].Prepend = 1
	benchDelta(b, e, prevCfg, cfg)
}

// BenchmarkPropagateDeltaPoisonToggle: one link adds a poison of a
// non-tier-1 provider neighbor — the poisoning phase's per-config step.
func BenchmarkPropagateDeltaPoisonToggle(b *testing.B) {
	g, o := worldForTest(b, 42, 4000)
	e, err := NewEngine(g, o, DefaultParams(42))
	if err != nil {
		b.Fatal(err)
	}
	prevCfg := allLinksConfig(7)
	cfg := cloneConfig(prevCfg)
	prov := o.Links[2].Provider
	target := topo.ASN(0)
	for _, n := range g.Neighbors(prov) {
		if !g.IsTier1(n.Idx) {
			target = g.ASN(n.Idx)
			break
		}
	}
	if target == 0 {
		b.Fatal("no non-tier-1 neighbor to poison")
	}
	cfg.Anns[2].Poison = []topo.ASN{target}
	benchDelta(b, e, prevCfg, cfg)
}

// BenchmarkPropagateDelta80k: the internet-scale tier. The issue's bar is
// < 100ms per one-link-diff config at 80k ASes.
func BenchmarkPropagateDelta80k(b *testing.B) {
	g, o := internetWorldForBench(b, 42, 80000)
	e, err := NewEngine(g, o, DefaultParams(42))
	if err != nil {
		b.Fatal(err)
	}
	prevCfg := allLinksConfig(7)
	cfg := cloneConfig(prevCfg)
	cfg.Anns[3].Prepend = 2
	benchDelta(b, e, prevCfg, cfg)
}

// BenchmarkPropagateFull80k is the full-recomputation baseline at the 80k
// tier, for the speedup ratio in EXPERIMENTS.md.
func BenchmarkPropagateFull80k(b *testing.B) {
	g, o := internetWorldForBench(b, 42, 80000)
	e, err := NewEngine(g, o, DefaultParams(42))
	if err != nil {
		b.Fatal(err)
	}
	cfg := allLinksConfig(7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := e.Propagate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		out.Release()
	}
}
