package bgp

import (
	"spooftrack/internal/topo"
)

// propScratch is the per-propagation working state. Everything in it is
// sized once for the engine's topology and recycled through the engine's
// sync.Pool, so a steady stream of Propagate calls allocates nothing
// beyond each Outcome's selection array.
//
// The queue is a fixed-capacity ring buffer: the queued bitmap
// deduplicates enqueues, so at most NumASes entries are ever pending and
// the ring can never overflow or grow (unlike the reslice-FIFO it
// replaces, whose backing array crept forward on every pop).
//
// The visit/chainTgt/chainT1 arrays memoize next-hop chain walks within
// one decision event (see chainInfo): stamping with a monotonically
// increasing epoch makes "reset" free.
type propScratch struct {
	queue  []int32 // ring buffer of dense AS indices, capacity NumASes
	qhead  int
	qlen   int
	queued []bool // intrusive membership bitmap for the ring

	epoch    uint64
	visit    []uint64 // epoch stamp per AS for chain memoization
	chainTgt []bool   // memo: chain from this AS reaches the current target
	chainT1  []bool   // memo: chain from this AS contains a tier-1
	stack    []int32  // chain-walk scratch

	seeds []int // initial enqueue order scratch

	// direct[i] is true when the configuration announces directly to AS i
	// (i is a link provider with an active announcement). The decision
	// loop scans cfg.Anns only for these few ASes instead of on every
	// event.
	direct []bool

	// sendClass[i] caches trueClass(i, sel[i]) and is refreshed whenever
	// sel[i] changes, turning the per-offer export-class computation into
	// an array read. Entries are only consulted for ASes with a valid
	// selection. The array is NOT pooled: each propagation aliases it to
	// its Outcome's sendCls so the final classes persist with the outcome
	// (PropagateDelta carries them with one copy), and putScratch drops
	// the alias.
	sendClass []int8

	// deltaSeed marks extra seeds the delta propagator computes before its
	// carry-over pass (poison-toggled ASes, announcement providers,
	// improvement-frontier neighbors). The delta path clears every bit it
	// sets before the scratch is released, so the array is always all-false
	// in the pool.
	deltaSeed []bool

	// fresh marks a scratch that has never been through the pool: its
	// epoch stamps start from zero (an "epoch reset" in trace terms).
	// Cleared on first release.
	fresh bool

	// poisonRows holds dense per-announcement poison membership arrays
	// (each sized NumASes). Rows are handed out by buildCtx and cleared
	// sparsely (by walking the announcement's poison list) on release.
	poisonRows [][]bool

	ctx propCtx
}

// propCtx carries the per-configuration lookup tables the decision
// process needs: dense poison membership per announcement, tier-1 poison
// lists (for the route-leak filter), and community action tables.
type propCtx struct {
	// poisoned[ai] is a dense membership array over AS indices, non-nil
	// exactly when announcement ai poisons at least one AS (poisoned
	// ASNs outside the topology are represented by PathLen stuffing only
	// and can never match a receiver). Rows are borrowed from
	// propScratch.poisonRows.
	poisoned [][]bool
	// poisonTier1[ai] lists the in-topology tier-1 ASNs poisoned on ai.
	poisonTier1 [][]topo.ASN
	// annLen[ai] is cfg.Anns[ai].PathLen() as an int32, precomputed so
	// the per-event direct-offer scan does no arithmetic.
	annLen []int32
	comm   communityTables
	// anyPoison / anyComm gate the poison-row and community lookups: most
	// configurations carry neither, and a single bool spares per-offer
	// table reads.
	anyPoison bool
	anyComm   bool
}

func newPropScratch(n int) *propScratch {
	return &propScratch{
		queue:     make([]int32, n),
		queued:    make([]bool, n),
		visit:     make([]uint64, n),
		chainTgt:  make([]bool, n),
		chainT1:   make([]bool, n),
		direct:    make([]bool, n),
		deltaSeed: make([]bool, n),
		fresh:     true,
	}
}

// pushQueue appends i to the ring. The caller must have checked and set
// queued[i], which bounds pending entries by the ring capacity.
func (s *propScratch) pushQueue(i int) {
	p := s.qhead + s.qlen
	if p >= len(s.queue) {
		p -= len(s.queue)
	}
	s.queue[p] = int32(i)
	s.qlen++
}

// popQueue removes and returns the oldest entry (FIFO).
func (s *propScratch) popQueue() int {
	v := s.queue[s.qhead]
	s.qhead++
	if s.qhead == len(s.queue) {
		s.qhead = 0
	}
	s.qlen--
	return int(v)
}

// drainQueue empties the ring and clears the membership bitmap, leaving
// the scratch reusable after an aborted (non-converged) propagation.
func (s *propScratch) drainQueue() {
	for s.qlen > 0 {
		s.queued[s.popQueue()] = false
	}
}

// seedQueueByLen fills the (empty) ring with the collected seed indices
// ordered by carried path length, shortest first, preserving ascending
// index order within a length (stable bucket sort). Deciding upstream
// ASes before the members that route through them lets most seeds settle
// in a single decision event instead of being re-woken by a later
// upstream change. The caller has already set queued[i] for every entry.
func (s *propScratch) seedQueueByLen(sel []selection, list []int) {
	var cnt [66]int
	for _, i := range list {
		cnt[lenBucket(sel[i].pathLen)]++
	}
	pos := 0
	var off [66]int
	for b := range cnt {
		off[b] = pos
		pos += cnt[b]
	}
	n := len(s.queue)
	for _, i := range list {
		b := lenBucket(sel[i].pathLen)
		p := s.qhead + off[b]
		off[b]++
		if p >= n {
			p -= n
		}
		s.queue[p] = int32(i)
	}
	s.qlen = len(list)
}

// lenBucket clamps a carried path length into the bucket range; the top
// bucket also catches noRoute's sentinel length, ordering invalidated
// ASes after every carried route.
func lenBucket(l int32) int {
	if l < 0 {
		return 0
	}
	if l > 64 {
		return 65
	}
	return int(l)
}

// poisonRow returns the k-th dense poison membership row, allocating it
// on first use. Rows come back cleared (release zeroes the bits it set).
func (s *propScratch) poisonRow(k, n int) []bool {
	for len(s.poisonRows) <= k {
		s.poisonRows = append(s.poisonRows, make([]bool, n))
	}
	return s.poisonRows[k]
}

// chainInfo walks the acyclic next-hop chain starting at start and
// reports whether it passes through target and whether it contains a
// tier-1 AS. Results are memoized per decision event (per epoch): chains
// from a node's neighbors share suffixes, so each chain node is walked
// at most once per event instead of once per neighbor offer, making loop
// prevention and the tier-1 route-leak check O(1) amortized.
//
// When the walk terminates at target, the memoized hasT1 values along
// the walked segment may under-report tier-1s below target; that is
// sound because hasT1 is only consulted after hasTarget rejected the
// offer path, and any chain through those nodes also reaches target.
func (s *propScratch) chainInfo(sel []selection, g *topo.Graph, start, target int) (hasTarget, hasT1 bool) {
	st := s.stack[:0]
	hop := start
	for {
		if hop == -1 {
			break
		}
		if hop == target {
			hasTarget = true
			break
		}
		if s.visit[hop] == s.epoch {
			hasTarget = s.chainTgt[hop]
			hasT1 = s.chainT1[hop]
			break
		}
		st = append(st, int32(hop))
		hop = int(sel[hop].nextHop)
	}
	for k := len(st) - 1; k >= 0; k-- {
		h := int(st[k])
		if g.IsTier1(h) {
			hasT1 = true
		}
		s.visit[h] = s.epoch
		s.chainTgt[h] = hasTarget
		s.chainT1[h] = hasT1
	}
	s.stack = st[:0]
	return hasTarget, hasT1
}

// getScratch takes a scratch from the engine's pool (or builds one).
func (e *Engine) getScratch() *propScratch {
	if s, ok := e.scratch.Get().(*propScratch); ok {
		return s
	}
	return newPropScratch(e.g.NumASes())
}

// putScratch cleans the scratch (drains any aborted queue state, clears
// the poison bits the configuration set, drops config-owned references)
// and returns it to the pool.
func (e *Engine) putScratch(s *propScratch, cfg Config) {
	s.drainQueue()
	for _, a := range cfg.Anns {
		s.direct[e.origin.Links[a.Link].Provider] = false
	}
	for ai, a := range cfg.Anns {
		if ai >= len(s.ctx.poisoned) {
			break
		}
		row := s.ctx.poisoned[ai]
		if row == nil {
			continue
		}
		for _, p := range a.Poison {
			if idx, ok := e.g.Index(p); ok {
				row[idx] = false
			}
		}
		s.ctx.poisoned[ai] = nil
	}
	s.ctx.comm = communityTables{}
	s.sendClass = nil // outcome-owned; see the field comment
	s.fresh = false
	e.scratch.Put(s)
}

// buildCtx fills the scratch's per-configuration tables.
func (e *Engine) buildCtx(s *propScratch, cfg Config) {
	n := e.g.NumASes()
	na := len(cfg.Anns)
	ctx := &s.ctx
	if cap(ctx.poisoned) < na {
		ctx.poisoned = make([][]bool, na)
	}
	ctx.poisoned = ctx.poisoned[:na]
	if cap(ctx.poisonTier1) < na {
		old := ctx.poisonTier1
		ctx.poisonTier1 = make([][]topo.ASN, na)
		copy(ctx.poisonTier1, old[:cap(old)])
	}
	ctx.poisonTier1 = ctx.poisonTier1[:na]
	if cap(ctx.annLen) < na {
		ctx.annLen = make([]int32, na)
	}
	ctx.annLen = ctx.annLen[:na]
	hasComm := false
	rows := 0
	for ai, a := range cfg.Anns {
		s.direct[e.origin.Links[a.Link].Provider] = true
		ctx.annLen[ai] = int32(a.PathLen())
		ctx.poisoned[ai] = nil
		ctx.poisonTier1[ai] = ctx.poisonTier1[ai][:0]
		if len(a.Communities) > 0 {
			hasComm = true
		}
		if len(a.Poison) == 0 {
			continue
		}
		row := s.poisonRow(rows, n)
		rows++
		for _, p := range a.Poison {
			if idx, ok := e.g.Index(p); ok {
				row[idx] = true
				if e.g.IsTier1(idx) {
					ctx.poisonTier1[ai] = append(ctx.poisonTier1[ai], p)
				}
			}
		}
		ctx.poisoned[ai] = row
	}
	ctx.anyPoison = rows > 0
	ctx.anyComm = hasComm
	if hasComm {
		ctx.comm = buildCommunityTables(cfg)
	} else {
		ctx.comm = communityTables{}
	}
}
