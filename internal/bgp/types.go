// Package bgp implements an inter-domain policy-routing engine over an
// AS-level topology (package topo).
//
// The engine models the BGP decision process the paper manipulates
// (§II): LocalPref set from business relationships per the Gao-Rexford
// model (customer > peer > provider), then shortest AS-path, then a
// deterministic per-AS tiebreak standing in for IGP cost / MED / age.
// Export follows valley-free rules: routes learned from customers are
// exported to everyone, routes learned from peers or providers only to
// customers.
//
// An origin AS (external to the topology, like PEERING's AS47065)
// announces a prefix through a subset of its peering links — an
// announcement configuration c = ⟨A; P; Q⟩ (§III): A the set of links
// announced from, P the links with AS-path prepending, and Q per-link
// poisoned-AS sets. Poisoning embeds the target ASN in the announced
// AS-path (wrapped in the origin's own ASN, as PEERING requires), which
// triggers loop prevention at the target; prepending lengthens the path
// to lose length-based ties.
//
// Realism knobs reproduce the paper's observations that not all ASes
// follow the textbook policy (Fig. 9) and that poisoning is best-effort
// (§III-A-c): a seeded fraction of ASes pin LocalPref to one neighbor, a
// fraction disable loop prevention (immune to poisoning), and tier-1 ASes
// can filter customer-learned routes whose AS-path contains another
// tier-1 (route-leak heuristic).
package bgp

import (
	"fmt"
	"sort"
	"strings"

	"spooftrack/internal/topo"
)

// LinkID identifies one peering link of the origin AS. IDs are dense
// indices into Origin.Links.
type LinkID int

// NoLink is the LinkID reported for ASes with no route to the prefix.
const NoLink LinkID = -1

// Link is a peering link between the origin AS and one of its transit
// providers.
type Link struct {
	// Name is a human-readable label (e.g., the PEERING mux name).
	Name string
	// Provider is the dense topo index of the provider AS on this link.
	Provider int
}

// Origin describes the announcing AS: its ASN (not part of the topology
// graph) and its peering links.
type Origin struct {
	ASN   topo.ASN
	Links []Link
}

// Announcement is the prefix announcement made on a single peering link
// as part of a configuration.
type Announcement struct {
	// Link is the peering link the announcement is made through.
	Link LinkID
	// Prepend is the number of extra times the origin prepends its own
	// ASN (0 = no prepending; the paper uses 4, longer than most
	// Internet AS-paths).
	Prepend int
	// Poison lists the ASes poisoned on this announcement. Each poisoned
	// ASN is embedded in the AS-path wrapped in the origin's ASN.
	Poison []topo.ASN
	// Communities are action communities attached to the announcement
	// (§VIII future work). Only ASes that honor communities act on them;
	// remote prepending requested via ActPrependTo affects decision
	// lengths at receivers but, like real prepending applied mid-path,
	// is not reconstructed into reported AS-paths by the simulator.
	Communities []Community
}

// PathLen returns the length contribution of the announcement's initial
// AS-path: one origin ASN, plus prepends, plus two per poisoned AS
// (poison + origin sentinel).
func (a Announcement) PathLen() int {
	return 1 + a.Prepend + 2*len(a.Poison)
}

// InitialPath materializes the AS-path as announced by the origin:
// origin^(1+prepend) then (poison, origin) per poisoned AS, matching
// PEERING's sentinel-wrapping requirement.
func (a Announcement) InitialPath(origin topo.ASN) []topo.ASN {
	path := make([]topo.ASN, 0, a.PathLen())
	for i := 0; i <= a.Prepend; i++ {
		path = append(path, origin)
	}
	for _, p := range a.Poison {
		path = append(path, p, origin)
	}
	return path
}

// Config is an announcement configuration c = ⟨A; P; Q⟩: the set of
// announcements active at one time, at most one per peering link.
type Config struct {
	Anns []Announcement
}

// ActiveLinks returns the set of links the configuration announces from,
// sorted ascending.
func (c Config) ActiveLinks() []LinkID {
	ls := make([]LinkID, len(c.Anns))
	for i, a := range c.Anns {
		ls[i] = a.Link
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	return ls
}

// Validate checks the configuration against the origin: links in range,
// no duplicate links, non-negative prepending, and at least one
// announcement.
func (c Config) Validate(o Origin) error {
	if len(c.Anns) == 0 {
		return fmt.Errorf("bgp: configuration announces from no links")
	}
	// Duplicate detection by pairwise scan: configurations hold at most
	// one announcement per peering link (a handful), and Validate runs on
	// every Propagate, so this stays allocation-free on the hot path.
	for i, a := range c.Anns {
		if a.Link < 0 || int(a.Link) >= len(o.Links) {
			return fmt.Errorf("bgp: link %d out of range (origin has %d links)", a.Link, len(o.Links))
		}
		for _, prev := range c.Anns[:i] {
			if prev.Link == a.Link {
				return fmt.Errorf("bgp: duplicate announcement on link %d", a.Link)
			}
		}
		if a.Prepend < 0 {
			return fmt.Errorf("bgp: negative prepend on link %d", a.Link)
		}
		for _, p := range a.Poison {
			if p == o.ASN {
				return fmt.Errorf("bgp: cannot poison the origin's own ASN on link %d", a.Link)
			}
		}
		for _, c := range a.Communities {
			if c.Action != ActNoExportTo && c.Action != ActPrependTo {
				return fmt.Errorf("bgp: unknown community action %d on link %d", c.Action, a.Link)
			}
			if c.Operator == 0 || c.Target == 0 {
				return fmt.Errorf("bgp: community %v on link %d has empty operator or target", c, a.Link)
			}
		}
	}
	return nil
}

// Key returns a canonical identity string for the configuration:
// announcements ordered by link, each with its prepend count, poison
// list, and communities verbatim. Two configurations with equal keys
// produce identical routing outcomes (poison and community order is
// preserved because it shapes reported AS-paths). Outcome caches key on
// this.
func (c Config) Key() string {
	idx := make([]int, len(c.Anns))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return c.Anns[idx[a]].Link < c.Anns[idx[b]].Link })
	var sb strings.Builder
	sb.Grow(16 * len(c.Anns))
	for _, i := range idx {
		a := c.Anns[i]
		fmt.Fprintf(&sb, "%d:%d", int(a.Link), a.Prepend)
		for _, p := range a.Poison {
			fmt.Fprintf(&sb, ",q%d", uint32(p))
		}
		for _, cm := range a.Communities {
			fmt.Fprintf(&sb, ",c%d.%d.%d", uint32(cm.Operator), uint8(cm.Action), uint32(cm.Target))
		}
		sb.WriteByte(';')
	}
	return sb.String()
}

// String renders the configuration compactly, e.g.
// "⟨A={0,2}; P={0}; Q={2:[64512]}⟩".
func (c Config) String() string {
	var aSet, pSet, qSet []string
	for _, a := range c.Anns {
		aSet = append(aSet, fmt.Sprint(int(a.Link)))
		if a.Prepend > 0 {
			pSet = append(pSet, fmt.Sprint(int(a.Link)))
		}
		if len(a.Poison) > 0 {
			qSet = append(qSet, fmt.Sprintf("%d:%v", int(a.Link), a.Poison))
		}
	}
	return fmt.Sprintf("⟨A={%s}; P={%s}; Q={%s}⟩",
		join(aSet), join(pSet), join(qSet))
}

func join(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += ","
		}
		out += s
	}
	return out
}
