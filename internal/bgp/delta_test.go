package bgp

import (
	"testing"

	"spooftrack/internal/stats"
	"spooftrack/internal/topo"
)

func cloneConfig(cfg Config) Config {
	anns := make([]Announcement, len(cfg.Anns))
	for i, a := range cfg.Anns {
		anns[i] = Announcement{
			Link:        a.Link,
			Prepend:     a.Prepend,
			Poison:      append([]topo.ASN(nil), a.Poison...),
			Communities: append([]Community(nil), a.Communities...),
		}
	}
	return Config{Anns: anns}
}

func randomPoison(rng *stats.RNG, g *topo.Graph, o Origin, l LinkID) topo.ASN {
	prov := o.Links[l].Provider
	ns := g.Neighbors(prov)
	switch rng.Intn(4) {
	case 0: // out-of-topology ASN: pure path stuffing
		return topo.ASN(4200000000 + rng.Intn(1000))
	case 1: // random AS anywhere in the topology
		return g.ASN(rng.Intn(g.NumASes()))
	default: // provider neighbor, the paper's main target set
		return g.ASN(ns[rng.Intn(len(ns))].Idx)
	}
}

// mutateConfig produces the next config of a campaign-style walk: a copy
// of prev with one (or, a quarter of the time, several) field-level
// edits — announcement add/remove, prepend change, poison toggle,
// community change — plus occasional verbatim no-ops. This is exactly
// the near-identical-consecutive-configs workload PropagateDelta exists
// for, while multi-field edits and announcement removals exercise the
// frontier-explosion fallback.
func mutateConfig(rng *stats.RNG, g *topo.Graph, o Origin, prev Config) Config {
	cfg := cloneConfig(prev)
	if rng.Bool(0.05) {
		return cfg // no-op: the delta path should copy state verbatim
	}
	nmut := 1
	if rng.Bool(0.25) {
		nmut = 2 + rng.Intn(2)
	}
	for m := 0; m < nmut; m++ {
		switch rng.Intn(6) {
		case 0: // announce on a currently silent link
			used := make(map[LinkID]bool, len(cfg.Anns))
			for _, a := range cfg.Anns {
				used[a.Link] = true
			}
			var free []LinkID
			for l := range o.Links {
				if !used[LinkID(l)] {
					free = append(free, LinkID(l))
				}
			}
			if len(free) == 0 {
				continue
			}
			na := Announcement{Link: free[rng.Intn(len(free))]}
			if rng.Bool(0.3) {
				na.Prepend = rng.Intn(4)
			}
			if rng.Bool(0.3) {
				na.Poison = append(na.Poison, randomPoison(rng, g, o, na.Link))
			}
			cfg.Anns = append(cfg.Anns, na)
		case 1: // withdraw an announcement (configs must keep ≥1)
			if len(cfg.Anns) <= 1 {
				continue
			}
			i := rng.Intn(len(cfg.Anns))
			cfg.Anns = append(cfg.Anns[:i], cfg.Anns[i+1:]...)
		case 2: // prepend change
			cfg.Anns[rng.Intn(len(cfg.Anns))].Prepend = rng.Intn(5)
		case 3: // poison add (the platform caps announcements at 2 poisons)
			a := &cfg.Anns[rng.Intn(len(cfg.Anns))]
			if len(a.Poison) >= 2 {
				continue
			}
			a.Poison = append(a.Poison, randomPoison(rng, g, o, a.Link))
		case 4: // poison remove
			a := &cfg.Anns[rng.Intn(len(cfg.Anns))]
			if len(a.Poison) == 0 {
				continue
			}
			i := rng.Intn(len(a.Poison))
			a.Poison = append(a.Poison[:i], a.Poison[i+1:]...)
		case 5: // community toggle
			a := &cfg.Anns[rng.Intn(len(cfg.Anns))]
			if len(a.Communities) > 0 && rng.Bool(0.5) {
				a.Communities = a.Communities[:len(a.Communities)-1]
				continue
			}
			prov := o.Links[a.Link].Provider
			ns := g.Neighbors(prov)
			act := ActNoExportTo
			if rng.Bool(0.5) {
				act = ActPrependTo
			}
			a.Communities = append(a.Communities, Community{
				Operator: g.ASN(prov),
				Action:   act,
				Target:   g.ASN(ns[rng.Intn(len(ns))].Idx),
			})
		}
	}
	return cfg
}

// TestPropagateDeltaMatchesFull is the randomized full-vs-delta
// equivalence suite: a campaign-style mutation walk where every step's
// PropagateDelta outcome must be byte-identical to a from-scratch
// Propagate of the same config. Each delta chains off the previous
// *delta* outcome, so errors would compound if any crept in, and the
// walk runs under both noiseless and noisy engine parameters (pinned
// LocalPrefs, length-blind ASes, community support). The suite asserts
// that the walk actually exercised the incremental path, the no-op
// fast path, and the frontier-explosion fallback.
func TestPropagateDeltaMatchesFull(t *testing.T) {
	g, o := worldForTest(t, 77, 1500)
	modeCounts := make(map[DeltaMode]int)
	total := 0
	for _, params := range []Params{noiseless(), DefaultParams(77)} {
		e := newEngine(t, g, o, params)
		rng := stats.NewRNG(4321)
		cfg := randomConfig(rng, g, o)
		prev, err := e.Propagate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 70; step++ {
			next := mutateConfig(rng, g, o, cfg)
			want, err := e.Propagate(next)
			if err != nil {
				t.Fatalf("step %d: full: %v", step, err)
			}
			got, info, err := e.PropagateDeltaInfo(&prev, cfg, next)
			if err != nil {
				t.Fatalf("step %d: delta: %v", step, err)
			}
			if got.converged != want.converged {
				t.Fatalf("step %d (mode %v, cfg %v): converged=%v, full %v",
					step, info.Mode, next, got.converged, want.converged)
			}
			for i := range got.sel {
				if got.sel[i] != want.sel[i] {
					t.Fatalf("step %d (mode %v, prev %v -> next %v): AS %d selection %+v, full %+v",
						step, info.Mode, cfg, next, i, got.sel[i], want.sel[i])
				}
			}
			modeCounts[info.Mode]++
			total++
			cfg, prev = next, got
		}
	}
	t.Logf("equivalence over %d configs, modes: %v", total, modeCounts)
	if total < 120 {
		t.Fatalf("suite covered only %d configs, want >= 120", total)
	}
	if modeCounts[DeltaApplied] == 0 {
		t.Error("walk never took the incremental path")
	}
	if modeCounts[DeltaNoop] == 0 {
		t.Error("walk never hit the no-op fast path")
	}
	if modeCounts[DeltaFullFrontier] == 0 {
		t.Error("walk never triggered the frontier-explosion fallback")
	}
}

// TestPropagateDeltaSingleFieldDiffs pins the execution mode for the
// canonical campaign steps: identical config → noop, one-field tweaks →
// incremental with a bounded frontier, and withdrawing most of an
// anycast set → frontier fallback.
func TestPropagateDeltaSingleFieldDiffs(t *testing.T) {
	g, o := worldForTest(t, 42, 1500)
	e := newEngine(t, g, o, DefaultParams(42))
	base := allLinksConfig(7)
	prev, err := e.Propagate(base)
	if err != nil {
		t.Fatal(err)
	}

	prepended := cloneConfig(base)
	prepended.Anns[3].Prepend = 2
	// Poison a non-tier-1 neighbor: toggling a tier-1 poison legitimately
	// widens the frontier (the route-leak filter's decision changes at
	// every tier-1), which is not the small-diff case this test pins.
	poisoned := cloneConfig(base)
	prov := o.Links[poisoned.Anns[2].Link].Provider
	for _, nb := range g.Neighbors(prov) {
		if !g.IsTier1(nb.Idx) {
			poisoned.Anns[2].Poison = []topo.ASN{g.ASN(nb.Idx)}
			break
		}
	}
	if len(poisoned.Anns[2].Poison) == 0 {
		t.Fatal("provider has only tier-1 neighbors")
	}
	withdrawn := Config{Anns: base.Anns[:1]}

	cases := []struct {
		name string
		cfg  Config
		mode DeltaMode
	}{
		{"noop", cloneConfig(base), DeltaNoop},
		{"prepend", prepended, DeltaApplied},
		{"poison_toggle", poisoned, DeltaApplied},
		{"withdraw_most", withdrawn, DeltaFullFrontier},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, err := e.Propagate(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, info, err := e.PropagateDeltaInfo(&prev, base, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if info.Mode != tc.mode {
				t.Fatalf("mode %v, want %v (info %+v)", info.Mode, tc.mode, info)
			}
			for i := range got.sel {
				if got.sel[i] != want.sel[i] {
					t.Fatalf("AS %d selection %+v, full %+v", i, got.sel[i], want.sel[i])
				}
			}
			if tc.mode == DeltaApplied && info.Seeds > g.NumASes()/4 {
				t.Fatalf("single-field diff seeded %d of %d ASes", info.Seeds, g.NumASes())
			}
		})
	}
}

// TestPropagateDeltaGuards pins the defensive fallbacks: no previous
// outcome, a non-converged previous outcome, a mismatched prevCfg, and
// a previous outcome from a different engine all take the full path and
// still return the correct result.
func TestPropagateDeltaGuards(t *testing.T) {
	g, o := worldForTest(t, 7, 900)
	e := newEngine(t, g, o, noiseless())
	base := allLinksConfig(5)
	prev, err := e.Propagate(base)
	if err != nil {
		t.Fatal(err)
	}
	next := cloneConfig(base)
	next.Anns[0].Prepend = 3
	want, err := e.Propagate(next)
	if err != nil {
		t.Fatal(err)
	}

	other := newEngine(t, g, o, DefaultParams(7))
	otherPrev, err := other.Propagate(base)
	if err != nil {
		t.Fatal(err)
	}
	frozen := prev
	frozen.converged = false

	cases := []struct {
		name    string
		prev    *Outcome
		prevCfg Config
	}{
		{"nil_prev", nil, base},
		{"not_converged", &frozen, base},
		{"wrong_prev_cfg", &prev, next},
		{"foreign_engine", &otherPrev, base},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, info, err := e.PropagateDeltaInfo(tc.prev, tc.prevCfg, next)
			if err != nil {
				t.Fatal(err)
			}
			if info.Mode != DeltaFullNoPrev {
				t.Fatalf("mode %v, want %v", info.Mode, DeltaFullNoPrev)
			}
			for i := range got.sel {
				if got.sel[i] != want.sel[i] {
					t.Fatalf("AS %d selection %+v, full %+v", i, got.sel[i], want.sel[i])
				}
			}
		})
	}

	if _, _, err := e.PropagateDeltaInfo(&prev, base, Config{}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

// TestPropagateDeltaScratchReuse repeats delta propagation on a pooled
// engine so scratch recycling (deltaSeed clearing, queue drain, poison
// row cleanup) is covered: any bit left set by a previous delta would
// poison a later run.
func TestPropagateDeltaScratchReuse(t *testing.T) {
	g, o := worldForTest(t, 11, 1200)
	e := newEngine(t, g, o, DefaultParams(11))
	rng := stats.NewRNG(5)
	cfg := randomConfig(rng, g, o)
	prev, err := e.Propagate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 25; step++ {
		next := mutateConfig(rng, g, o, cfg)
		want, err := e.Propagate(next)
		if err != nil {
			t.Fatal(err)
		}
		for pass := 0; pass < 2; pass++ {
			got, err := e.PropagateDelta(&prev, cfg, next)
			if err != nil {
				t.Fatal(err)
			}
			for i := range got.sel {
				if got.sel[i] != want.sel[i] {
					t.Fatalf("step %d pass %d: AS %d selection %+v, full %+v",
						step, pass, i, got.sel[i], want.sel[i])
				}
			}
			if pass == 1 {
				cfg, prev = next, got
			}
		}
	}
}

// TestOutcomeReleaseRecycling walks a campaign where every superseded
// outcome is released back to the engine's array pool, so both the full
// and the delta paths keep building results inside recycled, unzeroed
// arrays. Selections must stay identical to a control engine that never
// recycles, and a released outcome handed back as prev must be rejected
// with a full-propagation fallback rather than trusted.
func TestOutcomeReleaseRecycling(t *testing.T) {
	g, o := worldForTest(t, 9, 800)
	ep := newEngine(t, g, o, DefaultParams(9)) // recycling walk
	ec := newEngine(t, g, o, DefaultParams(9)) // control, fresh arrays only
	rng := stats.NewRNG(99)
	cfg := randomConfig(rng, g, o)
	prev, err := ep.Propagate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 48; step++ {
		next := mutateConfig(rng, g, o, cfg)
		want, err := ec.Propagate(next)
		if err != nil {
			t.Fatalf("step %d: control: %v", step, err)
		}
		var got Outcome
		if step%7 == 3 {
			// Exercise the full path's pool pull too.
			got, err = ep.Propagate(next)
		} else {
			got, _, err = ep.PropagateDeltaInfo(&prev, cfg, next)
		}
		if err != nil {
			t.Fatalf("step %d: recycled: %v", step, err)
		}
		for i := range got.sel {
			if got.sel[i] != want.sel[i] {
				t.Fatalf("step %d: AS %d selection %+v, control %+v", step, i, got.sel[i], want.sel[i])
			}
		}
		prev.Release()
		cfg, prev = next, got
	}
	// A released outcome is dead: handing it back as prev must take the
	// full fallback (its arrays may already carry someone else's state).
	rel := prev
	rel.Release()
	want, err := ec.Propagate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, info, err := ep.PropagateDeltaInfo(&rel, cfg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode != DeltaFullNoPrev {
		t.Fatalf("released prev: mode %v, want %v", info.Mode, DeltaFullNoPrev)
	}
	for i := range got.sel {
		if got.sel[i] != want.sel[i] {
			t.Fatalf("released prev: AS %d selection %+v, control %+v", i, got.sel[i], want.sel[i])
		}
	}
	rel.Release() // double release is a no-op
}
