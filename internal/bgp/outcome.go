package bgp

import "spooftrack/internal/topo"

// Outcome is the routing state after a configuration converges: every
// AS's selected route toward the origin prefix. Outcomes are immutable
// and safe for concurrent reads.
type Outcome struct {
	engine    *Engine
	cfg       Config
	sel       []selection
	converged bool
	// second[i] is the runner-up of AS i's last decision: the best offer
	// that lost to sel[i] (noRoute when no alternative existed). It is an
	// upper bound on every alternative offer at i, which is what lets
	// PropagateDelta prune worsened-but-still-winning routes from the
	// dirty frontier without re-deciding them.
	second []selection
	// sendCls[i] is the export class of sel[i] (trueClass, resolving
	// pinned overrides), persisted so PropagateDelta can carry it with
	// one copy instead of an O(n) recomputation. Entries are meaningful
	// only where sel[i] is valid.
	sendCls []int8
}

// outcomeArrays is the recyclable allocation unit behind an Outcome: the
// three per-AS arrays are by far the dominant per-propagation allocation
// (≈33 bytes per AS), so Outcome.Release lets high-throughput loops
// recycle them through the engine's pool.
type outcomeArrays struct {
	sel     []selection
	second  []selection
	sendCls []int8
}

// newOutcome builds an Outcome whose arrays come from the engine's
// release pool when one is available. Pooled arrays are NOT zeroed —
// every propagation path overwrites them in full (Propagate's noRoute
// init sweep, PropagateDelta's carry copy) before any read.
func (e *Engine) newOutcome(cfg Config) Outcome {
	out := Outcome{engine: e, cfg: cfg}
	if a, ok := e.outArrs.Get().(*outcomeArrays); ok {
		out.sel, out.second, out.sendCls = a.sel, a.second, a.sendCls
		return out
	}
	n := e.g.NumASes()
	out.sel = make([]selection, n)
	out.second = make([]selection, n)
	out.sendCls = make([]int8, n)
	return out
}

// Release returns the Outcome's arrays to its engine for reuse by later
// propagations. It is optional and purely a performance hint: campaign
// loops that inspect each outcome and move on can cut the dominant
// per-propagation allocations (and the GC churn behind them) to zero.
//
// The caller must be completely done with the Outcome: after Release it
// must not be used again — not as a source of route queries, and not as
// the prev of a PropagateDelta call. Outcomes held in an OutcomeCache
// must not be released while cached. Releasing a zero or already
// released Outcome is a no-op.
func (o *Outcome) Release() {
	if o.engine == nil || o.sel == nil {
		return
	}
	o.engine.outArrs.Put(&outcomeArrays{sel: o.sel, second: o.second, sendCls: o.sendCls})
	o.sel, o.second, o.sendCls = nil, nil, nil
	o.converged = false
}

// Converged reports whether route processing reached a fixpoint. False
// indicates a policy dispute froze mid-oscillation (rare; the state is
// still deterministic and usable, mirroring persistently oscillating
// real-world configurations).
func (o *Outcome) Converged() bool { return o.converged }

// Config returns the configuration that produced this outcome.
func (o *Outcome) Config() Config { return o.cfg }

// Graph returns the topology the outcome was computed over.
func (o *Outcome) Graph() *topo.Graph { return o.engine.g }

// HasRoute reports whether the AS at dense index i has any route to the
// prefix.
func (o *Outcome) HasRoute(i int) bool { return o.sel[i].class != classInvalid }

// CatchmentOf returns the peering link whose catchment contains the AS at
// dense index i, or NoLink if i has no route.
func (o *Outcome) CatchmentOf(i int) LinkID {
	s := o.sel[i]
	if s.class == classInvalid {
		return NoLink
	}
	return o.cfg.Anns[s.ann].Link
}

// CatchmentVector returns, for every AS, the link of its catchment
// (NoLink for ASes with no route). The slice is freshly allocated.
func (o *Outcome) CatchmentVector() []LinkID {
	v := make([]LinkID, len(o.sel))
	for i := range o.sel {
		v[i] = o.CatchmentOf(i)
	}
	return v
}

// Catchments groups ASes by peering link: result[l] lists the dense
// indices of all ASes whose traffic enters on link l. ASes without a
// route appear in no catchment.
func (o *Outcome) Catchments() map[LinkID][]int {
	m := make(map[LinkID][]int)
	for i := range o.sel {
		if l := o.CatchmentOf(i); l != NoLink {
			m[l] = append(m[l], i)
		}
	}
	return m
}

// NextHop returns the dense index of the next-hop AS on i's route, or -1
// if the route is a direct origin link (or i has no route).
func (o *Outcome) NextHop(i int) int {
	s := o.sel[i]
	if s.class == classInvalid {
		return -1
	}
	return int(s.nextHop)
}

// ASPath returns the control-plane AS-path the AS at dense index i
// selects, as a BGP collector peering with i would observe it: i's own
// ASN first, then the ASNs along the forwarding chain, then the
// announcement's initial path (origin prepends and poison sentinels).
// It returns nil if i has no route.
func (o *Outcome) ASPath(i int) []topo.ASN {
	s := o.sel[i]
	if s.class == classInvalid {
		return nil
	}
	var path []topo.ASN
	hop := i
	for hop != -1 {
		path = append(path, o.engine.g.ASN(hop))
		hop = int(o.sel[hop].nextHop)
	}
	return append(path, o.cfg.Anns[o.sel[i].ann].InitialPath(o.engine.origin.ASN)...)
}

// DataPath returns the AS-level data-plane path from the AS at dense
// index i to the origin as the dense indices of the traversed topology
// ASes (starting with i itself). Unlike ASPath it contains no prepend or
// poison stuffing — the data plane does not see those. The origin AS
// (external to the topology) is implicitly the final hop. It returns nil
// if i has no route.
func (o *Outcome) DataPath(i int) []int {
	s := o.sel[i]
	if s.class == classInvalid {
		return nil
	}
	var path []int
	hop := i
	for hop != -1 {
		path = append(path, hop)
		hop = int(o.sel[hop].nextHop)
	}
	return path
}

// PathLen returns the AS-path length of the route as received by i —
// the number of ASNs in the path i selected, including announcement
// stuffing but excluding i's own ASN (standard BGP semantics: a router
// prepends its own ASN only when re-exporting). It returns -1 if i has
// no route.
func (o *Outcome) PathLen(i int) int {
	s := o.sel[i]
	if s.class == classInvalid {
		return -1
	}
	return int(s.pathLen)
}

// RouteClass describes how an AS learned its selected route.
type RouteClass int8

const (
	// RouteNone means the AS has no route.
	RouteNone RouteClass = iota
	// RouteCustomer means the route was learned from a customer (or is
	// a direct origin announcement, the origin being a customer).
	RouteCustomer
	// RoutePeer means the route was learned from a peer.
	RoutePeer
	// RouteProvider means the route was learned from a provider.
	RouteProvider
)

// ClassOf returns how the AS at dense index i learned its route, based
// on the true relationship to its next hop (pinned overrides resolved).
func (o *Outcome) ClassOf(i int) RouteClass {
	s := o.sel[i]
	if s.class == classInvalid {
		return RouteNone
	}
	switch o.engine.trueClass(i, s) {
	case classCustomer:
		return RouteCustomer
	case classPeer:
		return RoutePeer
	default:
		return RouteProvider
	}
}

// NumRouted returns the number of ASes with a route to the prefix.
func (o *Outcome) NumRouted() int {
	n := 0
	for i := range o.sel {
		if o.sel[i].class != classInvalid {
			n++
		}
	}
	return n
}
