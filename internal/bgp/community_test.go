package bgp

import (
	"testing"

	"spooftrack/internal/topo"
)

// commParams returns noiseless params with universal community support.
func commParams() Params {
	p := noiseless()
	p.CommunitySupportFrac = 1.0
	return p
}

func TestNoExportCommunityBlocksEdge(t *testing.T) {
	g, o := diamond(t)
	e := newEngine(t, g, o, commParams())
	// Announce only on link 0 (provider a, AS3), instructing t1 (AS1)
	// not to export toward t2 (AS2): t2 and b lose the route; a, t1 and
	// src keep it.
	cfg := Config{Anns: []Announcement{{
		Link:        0,
		Communities: []Community{{Operator: 1, Action: ActNoExportTo, Target: 2}},
	}}}
	out := propagate(t, e, cfg)
	for _, asn := range []topo.ASN{2, 4} {
		if out.HasRoute(g.MustIndex(asn)) {
			t.Errorf("AS%d should have no route with the no-export community", asn)
		}
	}
	for _, asn := range []topo.ASN{1, 3, 5} {
		if !out.HasRoute(g.MustIndex(asn)) {
			t.Errorf("AS%d lost its route", asn)
		}
	}
}

func TestNoExportCommunityMovesCatchment(t *testing.T) {
	g, o := diamond(t)
	e := newEngine(t, g, o, commParams())
	// Both links; suppress t1 -> t2 export of link 0's announcement.
	// t2 would have preferred... t2 gets link 1's customer route anyway;
	// instead suppress a -> src so src must use provider b (link 1).
	cfg := Config{Anns: []Announcement{
		{Link: 0, Communities: []Community{{Operator: 3, Action: ActNoExportTo, Target: 5}}},
		{Link: 1},
	}}
	out := propagate(t, e, cfg)
	if l := out.CatchmentOf(g.MustIndex(5)); l != 1 {
		t.Fatalf("src in catchment %d, want 1 (export suppressed)", l)
	}
	// a itself keeps its direct route on link 0.
	if l := out.CatchmentOf(g.MustIndex(3)); l != 0 {
		t.Fatalf("a in catchment %d, want 0", l)
	}
}

func TestCommunityIgnoredWithoutSupport(t *testing.T) {
	g, o := diamond(t)
	p := noiseless()
	p.CommunitySupportFrac = 0 // nobody honors communities
	e := newEngine(t, g, o, p)
	cfg := Config{Anns: []Announcement{{
		Link:        0,
		Communities: []Community{{Operator: 1, Action: ActNoExportTo, Target: 2}},
	}}}
	out := propagate(t, e, cfg)
	if !out.HasRoute(g.MustIndex(2)) {
		t.Fatal("community acted on despite zero support")
	}
}

func TestPrependToCommunityFlipsTie(t *testing.T) {
	g, o := diamond(t)
	e := newEngine(t, g, o, commParams())
	// src has equal-length provider routes via a and b. Remote-prepend
	// a -> src on link 0's announcement: src must prefer b.
	cfg := Config{Anns: []Announcement{
		{Link: 0, Communities: []Community{{Operator: 3, Action: ActPrependTo, Target: 5}}},
		{Link: 1},
	}}
	out := propagate(t, e, cfg)
	if l := out.CatchmentOf(g.MustIndex(5)); l != 1 {
		t.Fatalf("src in catchment %d, want 1 after remote prepending", l)
	}
}

func TestCommunityValidation(t *testing.T) {
	_, o := diamond(t)
	bad := Config{Anns: []Announcement{{
		Link:        0,
		Communities: []Community{{Operator: 1, Action: CommunityAction(99), Target: 2}},
	}}}
	if err := bad.Validate(o); err == nil {
		t.Fatal("unknown action accepted")
	}
	empty := Config{Anns: []Announcement{{
		Link:        0,
		Communities: []Community{{Operator: 0, Action: ActNoExportTo, Target: 2}},
	}}}
	if err := empty.Validate(o); err == nil {
		t.Fatal("empty operator accepted")
	}
}

func TestCommunityStrings(t *testing.T) {
	c := Community{Operator: 3356, Action: ActNoExportTo, Target: 1299}
	if c.String() == "" || ActPrependTo.String() != "prepend-to" {
		t.Fatal("community rendering broken")
	}
	if CommunityAction(9).String() == "" {
		t.Fatal("unknown action should render")
	}
}

func TestCommunityVsPoisonOnFilteredAS(t *testing.T) {
	// The headline advantage over poisoning: steer an AS that ignores
	// loop prevention. Poisoning t1 fails (it ignores poison); the
	// community t1->t2 no-export is orthogonal and still works.
	g, o := diamond(t)
	p := commParams()
	p.IgnorePoisonFrac = 1.0
	e := newEngine(t, g, o, p)

	poisonCfg := Config{Anns: []Announcement{{Link: 0, Poison: []topo.ASN{1}}}}
	out := propagate(t, e, poisonCfg)
	if !out.HasRoute(g.MustIndex(1)) || !out.HasRoute(g.MustIndex(2)) {
		t.Fatal("setup: poisoning should be a no-op here")
	}

	commCfg := Config{Anns: []Announcement{{
		Link:        0,
		Communities: []Community{{Operator: 1, Action: ActNoExportTo, Target: 2}},
	}}}
	out2 := propagate(t, e, commCfg)
	if out2.HasRoute(g.MustIndex(2)) {
		t.Fatal("community had no effect where poisoning failed")
	}
}
