package bgp

import "testing"

func TestLengthBlindResistsPrepending(t *testing.T) {
	g, o := diamond(t)
	src := g.MustIndex(5)
	// Find a seed where src is length-blind and pins nothing.
	for seed := uint64(0); seed < 128; seed++ {
		p := Params{Seed: seed, LengthBlindFrac: 1.0}
		e := newEngine(t, g, o, p)
		// Determine src's default choice among its two equal provider
		// routes (pure tiebreak).
		base := propagate(t, e, Config{Anns: []Announcement{{Link: 0}, {Link: 1}}})
		defaultLink := base.CatchmentOf(src)
		// Prepend src's current link: a length-sensitive AS would move;
		// a length-blind AS must stay (its priority dominates).
		cfg := Config{Anns: []Announcement{{Link: 0}, {Link: 1}}}
		cfg.Anns[defaultLink].Prepend = 4
		out := propagate(t, e, cfg)
		if got := out.CatchmentOf(src); got != defaultLink {
			t.Fatalf("length-blind src moved from link %d to %d under prepending", defaultLink, got)
		}
		return
	}
	t.Fatal("no suitable seed found")
}

func TestLengthBlindStillRespectsLocalPref(t *testing.T) {
	g, o := diamond(t)
	p := noiseless()
	p.LengthBlindFrac = 1.0
	e := newEngine(t, g, o, p)
	out := propagate(t, e, Config{Anns: []Announcement{{Link: 0}}})
	// t1 must still choose its customer route via a over the peer route
	// via t2: LocalPref classes come before any tiebreak.
	if nh := out.NextHop(g.MustIndex(1)); nh != g.MustIndex(3) {
		t.Fatalf("length-blind t1 next hop %d, want customer a", nh)
	}
}

func TestOutcomeConvergedFlag(t *testing.T) {
	g, o := diamond(t)
	e := newEngine(t, g, o, noiseless())
	out := propagate(t, e, Config{Anns: []Announcement{{Link: 0}}})
	if !out.Converged() {
		t.Fatal("simple topology should converge")
	}
}

func TestPerturbedEngine(t *testing.T) {
	g, o := worldForTest(t, 66, 1000)
	e := newEngine(t, g, o, DefaultParams(66))
	cfg := allLinksConfig(7)
	base := propagate(t, e, cfg).CatchmentVector()

	// Zero perturbation: identical routing.
	same, err := e.Perturbed(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	v := propagate(t, same, cfg).CatchmentVector()
	for i := range v {
		if v[i] != base[i] {
			t.Fatal("zero perturbation changed routing")
		}
	}

	// Partial perturbation: some but not all catchments change.
	drift, err := e.Perturbed(0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	v2 := propagate(t, drift, cfg).CatchmentVector()
	changed := 0
	for i := range v2 {
		if v2[i] != base[i] {
			changed++
		}
	}
	if changed == 0 {
		t.Fatal("10% perturbation changed nothing")
	}
	if changed > len(v2)/2 {
		t.Fatalf("10%% perturbation changed %d of %d catchments", changed, len(v2))
	}

	// The original engine is untouched.
	v3 := propagate(t, e, cfg).CatchmentVector()
	for i := range v3 {
		if v3[i] != base[i] {
			t.Fatal("Perturbed mutated the base engine")
		}
	}

	if _, err := e.Perturbed(-0.1, 1); err == nil {
		t.Fatal("negative fraction accepted")
	}
}

func TestDefaultParamsKnobs(t *testing.T) {
	p := DefaultParams(1)
	if p.PolicyNoiseFrac <= 0 || p.LengthBlindFrac <= 0 || p.IgnorePoisonFrac <= 0 {
		t.Fatal("default realism knobs should be enabled")
	}
	if p.CommunitySupportFrac <= 0 || p.CommunitySupportFrac > 1 {
		t.Fatal("community support fraction out of range")
	}
	if !p.Tier1PoisonFilter {
		t.Fatal("tier-1 filter should default on")
	}
}
