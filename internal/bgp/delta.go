package bgp

import (
	"spooftrack/internal/trace"
)

// deltaFrontierFrac is the fallback threshold: when the dirty frontier
// (the ASes that must be seeded into the event queue) exceeds this
// fraction of the topology, an incremental pass would approach the cost
// of a full propagation while paying extra bookkeeping, so
// PropagateDelta re-runs Propagate instead.
const deltaFrontierFrac = 0.25

// DeltaMode reports which path a PropagateDelta call took.
type DeltaMode int8

const (
	// DeltaApplied: the incremental pass ran and converged.
	DeltaApplied DeltaMode = iota
	// DeltaNoop: the configurations are identical; the previous selection
	// state was copied verbatim.
	DeltaNoop
	// DeltaFullNoPrev: no usable previous outcome (nil, from another
	// engine, not converged, or prevCfg does not match it); full
	// propagation ran.
	DeltaFullNoPrev
	// DeltaFullFrontier: the dirty frontier exceeded deltaFrontierFrac of
	// the topology; full propagation ran.
	DeltaFullFrontier
	// DeltaFullBudget: the incremental pass hit the event budget without
	// converging (a policy dispute); full propagation ran so the result
	// is byte-identical to what Propagate produces.
	DeltaFullBudget
)

// Incremental reports whether the call avoided a full propagation.
func (m DeltaMode) Incremental() bool { return m == DeltaApplied || m == DeltaNoop }

func (m DeltaMode) String() string {
	switch m {
	case DeltaApplied:
		return "applied"
	case DeltaNoop:
		return "noop"
	case DeltaFullNoPrev:
		return "full_no_prev"
	case DeltaFullFrontier:
		return "full_frontier"
	case DeltaFullBudget:
		return "full_budget"
	default:
		return "unknown"
	}
}

// DeltaInfo describes how a PropagateDelta call executed, for tests and
// instrumentation.
type DeltaInfo struct {
	Mode DeltaMode
	// Seeds is the size of the dirty frontier: ASes enqueued before the
	// incremental pass (also computed for DeltaFullFrontier, where it is
	// what tripped the fallback; zero for the other full modes).
	Seeds int
	// Events is the number of decision events the incremental pass
	// processed (zero for non-incremental modes except DeltaFullBudget,
	// where it reports the budget spent before falling back).
	Events int
}

// PropagateDelta computes the routing outcome of cfg incrementally from
// a previously converged outcome: it diffs the two configurations,
// carries every selection the diff cannot affect, and seeds the event
// queue only with the dirty frontier — ASes whose current best route is
// invalidated or could be improved by the change. The result is
// byte-identical to Propagate(cfg) (the equivalence suite in
// delta_test.go enforces this): with valley-free export and Gao-Rexford
// preferences the stable-paths instance has no dispute wheel, so the
// stable state is unique and event-driven processing reaches it from any
// sound starting state; the rare dispute cases fall back to a full run.
//
// prev must be the outcome this engine computed for prevCfg. When prev
// is unusable, the diff touches too much of the topology, or the
// incremental pass fails to converge, PropagateDelta transparently falls
// back to a full Propagate — callers never need to special-case.
func (e *Engine) PropagateDelta(prev *Outcome, prevCfg, cfg Config) (Outcome, error) {
	out, _, err := e.PropagateDeltaTraced(prev, prevCfg, cfg, nil)
	return out, err
}

// PropagateDeltaInfo is PropagateDelta plus the execution report.
func (e *Engine) PropagateDeltaInfo(prev *Outcome, prevCfg, cfg Config) (Outcome, DeltaInfo, error) {
	return e.PropagateDeltaTraced(prev, prevCfg, cfg, nil)
}

// PropagateDeltaTraced is PropagateDelta with trace-span parentage; a
// fallback's full "bgp.propagate" span nests under the delta span.
func (e *Engine) PropagateDeltaTraced(prev *Outcome, prevCfg, cfg Config, parent *trace.Span) (Outcome, DeltaInfo, error) {
	if err := cfg.Validate(e.origin); err != nil {
		return Outcome{}, DeltaInfo{}, err
	}
	// The carried state is only sound when prev is this engine's converged
	// fixpoint for prevCfg; the prevCfg cross-check is cheap (a handful of
	// announcements) and guards against callers pairing the wrong config.
	if prev == nil || prev.engine != e || !prev.converged || prev.second == nil ||
		prev.sendCls == nil || !configsIndexIdentical(prevCfg, prev.cfg) {
		out, err := e.PropagateTraced(cfg, parent)
		return out, DeltaInfo{Mode: DeltaFullNoPrev}, err
	}

	d := DiffConfigs(prev.cfg, cfg)
	n := e.g.NumASes()
	if d.Identity {
		out := e.newOutcome(cfg)
		out.converged = true
		copy(out.sel, prev.sel)
		copy(out.second, prev.second)
		copy(out.sendCls, prev.sendCls)
		return out, DeltaInfo{Mode: DeltaNoop}, nil
	}

	sp := trace.StartChild(parent, "bgp.propagate_delta")
	traced := sp != nil

	s := e.getScratch()
	defer e.putScratch(s, cfg)
	e.buildCtx(s, cfg)

	// Seeding strategy per previous announcement. Soundness rests on the
	// converged-state invariant that every AS already holds its best
	// response to the current offers:
	//
	//   - Unchanged: routes carry verbatim (announcement index remapped).
	//   - Shifted (pure length change): every member carries with the
	//     shifted length and re-decides only if the shifted route no
	//     longer strictly beats its stored runner-up (prev.second, an
	//     upper bound on every alternative offer — see below). Members
	//     whose worsened route still wins keep it without a decision
	//     event; LenShift < 0 members strictly improve and always prune.
	//   - Shifted with LenShift < 0 (routes improve): the members'
	//     neighbors re-decide — an improved offer can capture a neighbor
	//     without the member's own selection changing (no change event
	//     would wake it).
	//   - Replaced / Removed: members are invalidated to noRoute and
	//     re-derive; each re-gain is a change event that wakes neighbors,
	//     so the withdraw-then-re-offer wave needs no extra seeding.
	//
	// The runner-up prune is sound because prev.second[i] bounds every
	// alternative that did not improve (it was the best loser at i's last
	// decision, and non-improving offers only move down), while every way
	// an alternative can *improve or appear* already re-decides i through
	// another seed: improved offers reach i only via an adjacent member
	// of a LenShift < 0 ann (seedNbrs), re-validated offers require i in
	// PoisonTouched (seeded directly) or a t1-filter flip (blanket
	// seeding below), and new or rewired offers arrive as change events
	// from re-deciding neighbors, which wake i through the normal queue.
	//
	// Two validity effects cut across the length reasoning and get their
	// own seeds regardless of shift sign: ASes whose poison membership
	// toggled (loop-prevention validity flipped for exactly them), and —
	// when the tier-1 route-leak filter is active and a *tier-1* poison
	// toggled — the filter's accept/reject decision at every tier-1
	// changes, which can invalidate or free routes at unchanged length,
	// so members and their neighbors are blanket-seeded with no prune.
	na := len(prev.cfg.Anns)
	seedMembers := make([]bool, na)
	pruneShift := make([]bool, na)
	seedNbrs := make([]bool, na)
	anySeedNbrs := false
	for ai := 0; ai < na; ai++ {
		switch d.PrevChange[ai] {
		case AnnShifted:
			t1Touched := false
			if e.params.Tier1PoisonFilter {
				for _, p := range d.PoisonTouched[ai] {
					if idx, ok := e.g.Index(p); ok && e.g.IsTier1(idx) {
						t1Touched = true
						break
					}
				}
			}
			seedMembers[ai] = t1Touched
			pruneShift[ai] = !t1Touched && d.LenShift[ai] != 0
			if d.LenShift[ai] < 0 || t1Touched {
				seedNbrs[ai] = true
				anySeedNbrs = true
			}
		case AnnReplaced, AnnRemoved:
			seedMembers[ai] = true
		}
	}

	// Extra seeds outside the member frontier: providers whose direct
	// announcement changed, and poison-toggled ASes. Marks are cleared by
	// the carry-over pass below (or clearDeltaSeeds on fallback), keeping
	// the pooled array all-false.
	for ni := range cfg.Anns {
		if d.NewChange[ni] != AnnUnchanged {
			s.deltaSeed[e.origin.Links[cfg.Anns[ni].Link].Provider] = true
		}
	}
	for ai := 0; ai < na; ai++ {
		for _, p := range d.PoisonTouched[ai] {
			if idx, ok := e.g.Index(p); ok {
				s.deltaSeed[idx] = true
			}
		}
	}
	prevSel := prev.sel
	if anySeedNbrs {
		for i := range prevSel {
			if prevSel[i].class != classInvalid && seedNbrs[prevSel[i].ann] {
				for _, nb := range e.g.Neighbors(i) {
					s.deltaSeed[nb.Idx] = true
				}
			}
		}
	}

	// Carry-over pass: copy (remapped, length-shifted) selections and
	// collect the dirty frontier. Runner-ups and export classes carry
	// verbatim: for an AS that is not re-decided, no alternative offer
	// can have improved (that would have seeded it), so the old runner-up
	// bound still holds, and a carried selection keeps its next hop so
	// its export class cannot change; re-decided ASes get fresh values
	// from decide.
	out := e.newOutcome(cfg)
	sel := out.sel
	copy(out.second, prev.second)
	copy(out.sendCls, prev.sendCls)
	s.sendClass = out.sendCls
	prevSecond := prev.second
	seedList := s.seeds[:0]

	// When every announcement keeps its index (the whole prepend, poison,
	// and community space of a campaign walk), carried selections need no
	// remap: bulk-copy the selection state and touch only members of
	// changed announcements plus the explicitly marked seeds.
	identityMap := len(prev.cfg.Anns) == len(cfg.Anns)
	if identityMap {
		for ai, ni := range d.PrevToNew {
			if int(ni) != ai {
				identityMap = false
				break
			}
		}
	}
	if identityMap {
		copy(sel, prev.sel)
		// Per-announcement carry work, indexed by ann+1 so the invalid
		// sentinel (ann == -1) lands on a zero entry.
		type annWork struct {
			shift   int32
			blanket bool
			prune   bool
			any     bool
		}
		work := make([]annWork, na+1)
		for ai := 0; ai < na; ai++ {
			w := annWork{shift: d.LenShift[ai], blanket: seedMembers[ai], prune: pruneShift[ai]}
			w.any = w.shift != 0 || w.blanket || w.prune
			work[ai+1] = w
		}
		for i := 0; i < n; i++ {
			seed := s.deltaSeed[i]
			if seed {
				s.deltaSeed[i] = false
			}
			if w := &work[sel[i].ann+1]; w.any {
				cs := &sel[i]
				cs.pathLen += w.shift
				if !seed {
					if w.blanket {
						seed = true
					} else if w.prune && !e.betterFor(i, *cs, prevSecond[i]) {
						seed = true
					}
				}
			}
			if seed {
				s.queued[i] = true
				seedList = append(seedList, i)
			}
		}
	} else {
		for i := 0; i < n; i++ {
			seed := s.deltaSeed[i]
			s.deltaSeed[i] = false
			ps := prevSel[i]
			cs := noRoute
			if ps.class != classInvalid {
				ai := int(ps.ann)
				if ni := d.PrevToNew[ai]; ni >= 0 {
					cs = ps
					cs.ann = ni
					cs.pathLen += d.LenShift[ai]
				}
				seed = seed || seedMembers[ai]
				// Length-shifted member: re-decide only when the shifted
				// route no longer strictly beats the runner-up bound.
				if !seed && pruneShift[ai] && !e.betterFor(i, cs, prevSecond[i]) {
					seed = true
				}
			}
			sel[i] = cs
			if seed {
				s.queued[i] = true
				seedList = append(seedList, i)
			}
		}
	}
	seeds := len(seedList)
	s.seeds = seedList[:0]

	if seeds > int(deltaFrontierFrac*float64(n)) {
		// Frontier explosion: nothing was pushed yet, so clear the
		// membership bits directly; deltaSeed is already clear.
		for _, i := range seedList {
			s.queued[i] = false
		}
		out.Release() // the carried arrays feed the full run's pool pull
		full, err := e.PropagateTraced(cfg, sp)
		info := DeltaInfo{Mode: DeltaFullFrontier, Seeds: seeds}
		e.endDeltaSpan(sp, info, n, len(cfg.Anns))
		return full, info, err
	}

	// Enqueue shortest-carried-length first: upstream before downstream.
	s.seedQueueByLen(sel, seedList)
	events, _, converged := e.runQueue(cfg, s, sel, out.second, traced)
	if !converged {
		// Event budget exhausted (a policy dispute reachable from the
		// carried state). Propagate freezes disputes deterministically
		// from *its* start state, so matching it byte-for-byte means
		// discarding the partial delta state and re-running in full.
		out.Release()
		full, err := e.PropagateTraced(cfg, sp)
		info := DeltaInfo{Mode: DeltaFullBudget, Seeds: seeds, Events: events}
		e.endDeltaSpan(sp, info, n, len(cfg.Anns))
		return full, info, err
	}
	out.converged = true
	info := DeltaInfo{Mode: DeltaApplied, Seeds: seeds, Events: events}
	e.endDeltaSpan(sp, info, n, len(cfg.Anns))
	return out, info, nil
}

func (e *Engine) endDeltaSpan(sp *trace.Span, info DeltaInfo, ases, anns int) {
	if sp == nil {
		return
	}
	sp.Count("seeds", int64(info.Seeds))
	sp.Count("events", int64(info.Events))
	sp.Set(
		trace.String("mode", info.Mode.String()),
		trace.Int("ases", int64(ases)),
		trace.Int("anns", int64(anns)),
	)
	sp.End()
}

// configsIndexIdentical reports whether two configurations are the same
// announcement-for-announcement at the same indices (the strict sense
// PropagateDelta needs: prev.sel's ann indices must mean in prevCfg what
// they meant in the config that produced prev).
func configsIndexIdentical(a, b Config) bool {
	if len(a.Anns) != len(b.Anns) {
		return false
	}
	for i := range a.Anns {
		if !annEqual(&a.Anns[i], &b.Anns[i]) {
			return false
		}
	}
	return true
}
