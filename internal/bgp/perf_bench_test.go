package bgp

import (
	"testing"
)

func BenchmarkPropagateFullScale(b *testing.B) {
	g, o := worldForTest(b, 42, 4000)
	e, err := NewEngine(g, o, DefaultParams(42))
	if err != nil {
		b.Fatal(err)
	}
	cfg := allLinksConfig(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Propagate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
