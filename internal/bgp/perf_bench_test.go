package bgp

import (
	"testing"

	"spooftrack/internal/topo"
)

func BenchmarkPropagateFullScale(b *testing.B) {
	g, o := worldForTest(b, 42, 4000)
	e, err := NewEngine(g, o, DefaultParams(42))
	if err != nil {
		b.Fatal(err)
	}
	cfg := allLinksConfig(7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := e.Propagate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		// Same outcome-recycling pattern as the delta benchmarks, so the
		// full-vs-delta comparison isolates the algorithms.
		out.Release()
	}
}

// BenchmarkPropagatePoisonHeavy exercises the dense poison rows and the
// tier-1 route-leak walk: every link announces with a two-AS poison list,
// the platform's operational maximum.
func BenchmarkPropagatePoisonHeavy(b *testing.B) {
	g, o := worldForTest(b, 42, 4000)
	e, err := NewEngine(g, o, DefaultParams(42))
	if err != nil {
		b.Fatal(err)
	}
	cfg := allLinksConfig(7)
	for i := range cfg.Anns {
		p := o.Links[cfg.Anns[i].Link].Provider
		ns := g.Neighbors(p)
		cfg.Anns[i].Poison = []topo.ASN{g.ASN(ns[0].Idx), g.ASN(ns[len(ns)/2].Idx)}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Propagate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPropagateParallel measures throughput with every core
// propagating concurrently — the campaign deployment pool's hot path.
// The scratch pool must keep per-call allocation flat here.
func BenchmarkPropagateParallel(b *testing.B) {
	g, o := worldForTest(b, 42, 4000)
	e, err := NewEngine(g, o, DefaultParams(42))
	if err != nil {
		b.Fatal(err)
	}
	cfg := allLinksConfig(7)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := e.Propagate(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}
