package bgp

import (
	"testing"

	"spooftrack/internal/stats"
	"spooftrack/internal/topo"
)

// This file retains the original, straightforward propagation
// implementation as an executable specification. The optimized engine
// (dense poison rows, epoch-memoized chain walks, ring-buffer queue,
// pooled scratch) must produce byte-identical outcomes; the equivalence
// test below checks that over a large randomized configuration corpus.
//
// The reference deliberately keeps the old structure: per-call maps for
// direct announcements and poison sets (keyed by ASN), a reslice-FIFO
// queue, an insertion-sorted seed order, per-offer re-computation of the
// sender's export class, and unmemoized next-hop chain walks.

type refCtx struct {
	poisoned    []map[topo.ASN]bool
	poisonTier1 [][]topo.ASN
	comm        communityTables
}

func refBuildCtx(e *Engine, cfg Config) *refCtx {
	ctx := &refCtx{
		poisoned:    make([]map[topo.ASN]bool, len(cfg.Anns)),
		poisonTier1: make([][]topo.ASN, len(cfg.Anns)),
		comm:        buildCommunityTables(cfg),
	}
	for ai, a := range cfg.Anns {
		if len(a.Poison) == 0 {
			continue
		}
		m := make(map[topo.ASN]bool, len(a.Poison))
		for _, p := range a.Poison {
			m[p] = true
			if idx, ok := e.g.Index(p); ok && e.g.IsTier1(idx) {
				ctx.poisonTier1[ai] = append(ctx.poisonTier1[ai], p)
			}
		}
		ctx.poisoned[ai] = m
	}
	return ctx
}

func refOfferFrom(e *Engine, out *Outcome, nb topo.Neighbor, i int, ctx *refCtx) (selection, bool) {
	s := out.sel[nb.Idx]
	if s.class == classInvalid {
		return selection{}, false
	}
	sendClass := e.trueClass(nb.Idx, s)
	if sendClass != classCustomer && nb.Rel != topo.RelProvider {
		return selection{}, false
	}
	ai := int(s.ann)
	iASN := e.g.ASN(i)
	nbASN := e.g.ASN(nb.Idx)
	remotePrepend := int32(0)
	if e.honorsComm[nb.Idx] {
		if hasCommunity(ctx.comm.noExport, ai, nbASN, iASN) {
			return selection{}, false
		}
		if hasCommunity(ctx.comm.prepend, ai, nbASN, iASN) {
			remotePrepend = remotePrependDepth
		}
	}
	if ctx.poisoned[ai] != nil && ctx.poisoned[ai][iASN] && !e.ignorePoison[i] {
		return selection{}, false
	}
	hop := nb.Idx
	for hop != -1 {
		if hop == i {
			return selection{}, false
		}
		hop = int(out.sel[hop].nextHop)
	}
	if e.params.Tier1PoisonFilter && e.g.IsTier1(i) && nb.Rel == topo.RelCustomer {
		for _, p := range ctx.poisonTier1[ai] {
			if p != iASN {
				return selection{}, false
			}
		}
		hop = nb.Idx
		for hop != -1 {
			if e.g.IsTier1(hop) {
				return selection{}, false
			}
			hop = int(out.sel[hop].nextHop)
		}
	}
	class := classProvider
	switch nb.Rel {
	case topo.RelCustomer:
		class = classCustomer
	case topo.RelPeer:
		class = classPeer
	}
	return selection{
		class:   class,
		ann:     s.ann,
		pathLen: s.pathLen + 1 + remotePrepend,
		nextHop: int32(nb.Idx),
	}, true
}

func refSortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func refPropagate(e *Engine, cfg Config) (*Outcome, error) {
	if err := cfg.Validate(e.origin); err != nil {
		return nil, err
	}
	n := e.g.NumASes()
	out := &Outcome{engine: e, cfg: cfg, sel: make([]selection, n), converged: true}
	for i := range out.sel {
		out.sel[i] = noRoute
	}
	ctx := refBuildCtx(e, cfg)
	directAnns := make(map[int][]int)
	for ai, a := range cfg.Anns {
		p := e.origin.Links[a.Link].Provider
		directAnns[p] = append(directAnns[p], ai)
	}
	queued := make([]bool, n)
	queue := make([]int, 0, n)
	enqueue := func(i int) {
		if !queued[i] {
			queued[i] = true
			queue = append(queue, i)
		}
	}
	for p := range directAnns {
		enqueue(p)
	}
	refSortInts(queue)

	events := 0
	budget := maxEventsPerAS * n
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		queued[i] = false
		events++
		if events > budget {
			out.converged = false
			return out, nil
		}
		best := noRoute
		for _, ai := range directAnns[i] {
			a := cfg.Anns[ai]
			if ctx.poisoned[ai] != nil && ctx.poisoned[ai][e.g.ASN(i)] && !e.ignorePoison[i] {
				continue
			}
			cand := selection{
				class:   classCustomer,
				ann:     int16(ai),
				pathLen: int32(a.PathLen()),
				nextHop: -1,
				pri:     -1,
			}
			if e.betterFor(i, cand, best) {
				best = cand
			}
		}
		for k, nb := range e.g.Neighbors(i) {
			cand, ok := refOfferFrom(e, out, nb, i, ctx)
			if !ok {
				continue
			}
			cand.pri = e.pri[i][k]
			if e.pinned[i] == nb.Idx {
				cand.class = classPinned
			}
			if e.betterFor(i, cand, best) {
				best = cand
			}
		}
		if best != out.sel[i] {
			out.sel[i] = best
			for _, nb := range e.g.Neighbors(i) {
				enqueue(nb.Idx)
			}
		}
	}
	return out, nil
}

// randomConfig draws a configuration exercising every announcement
// feature: link subsets, prepending, in- and out-of-topology poisons,
// and action communities.
func randomConfig(rng *stats.RNG, g *topo.Graph, o Origin) Config {
	nl := len(o.Links)
	var cfg Config
	for len(cfg.Anns) == 0 {
		for l := 0; l < nl; l++ {
			if rng.Bool(0.6) {
				cfg.Anns = append(cfg.Anns, Announcement{Link: LinkID(l)})
			}
		}
	}
	for i := range cfg.Anns {
		a := &cfg.Anns[i]
		if rng.Bool(0.4) {
			a.Prepend = rng.Intn(5)
		}
		if rng.Bool(0.5) {
			np := 1 + rng.Intn(2)
			prov := o.Links[a.Link].Provider
			ns := g.Neighbors(prov)
			for k := 0; k < np; k++ {
				switch rng.Intn(4) {
				case 0: // out-of-topology ASN: pure path stuffing
					a.Poison = append(a.Poison, topo.ASN(4200000000+rng.Intn(1000)))
				case 1: // random AS anywhere in the topology
					a.Poison = append(a.Poison, g.ASN(rng.Intn(g.NumASes())))
				default: // provider neighbor, the paper's main target set
					a.Poison = append(a.Poison, g.ASN(ns[rng.Intn(len(ns))].Idx))
				}
			}
		}
		if rng.Bool(0.3) {
			prov := o.Links[a.Link].Provider
			ns := g.Neighbors(prov)
			act := ActNoExportTo
			if rng.Bool(0.5) {
				act = ActPrependTo
			}
			a.Communities = append(a.Communities, Community{
				Operator: g.ASN(prov),
				Action:   act,
				Target:   g.ASN(ns[rng.Intn(len(ns))].Idx),
			})
		}
	}
	return cfg
}

// TestPropagateMatchesReference checks byte-identical outcomes between
// the optimized engine and the reference implementation over a
// randomized corpus. Each configuration propagates twice through the
// optimized path so scratch reuse (the sync.Pool round trip and the
// sparse cleanup in putScratch) is covered too.
func TestPropagateMatchesReference(t *testing.T) {
	g, o := worldForTest(t, 77, 1500)
	for _, params := range []Params{noiseless(), DefaultParams(77)} {
		e := newEngine(t, g, o, params)
		rng := stats.NewRNG(1234)
		for trial := 0; trial < 60; trial++ {
			cfg := randomConfig(rng, g, o)
			want, err := refPropagate(e, cfg)
			if err != nil {
				t.Fatalf("trial %d: reference: %v", trial, err)
			}
			for pass := 0; pass < 2; pass++ {
				got, err := e.Propagate(cfg)
				if err != nil {
					t.Fatalf("trial %d pass %d: %v", trial, pass, err)
				}
				if got.converged != want.converged {
					t.Fatalf("trial %d pass %d (%v): converged=%v, reference %v",
						trial, pass, cfg, got.converged, want.converged)
				}
				for i := range got.sel {
					if got.sel[i] != want.sel[i] {
						t.Fatalf("trial %d pass %d (%v): AS %d selection %+v, reference %+v",
							trial, pass, cfg, i, got.sel[i], want.sel[i])
					}
				}
			}
		}
	}
}

// TestCachedPropagateMatches checks that the outcome cache returns
// pointer-stable, identical outcomes.
func TestCachedPropagateMatches(t *testing.T) {
	g, o := worldForTest(t, 78, 900)
	e := newEngine(t, g, o, DefaultParams(78))
	cache := NewOutcomeCache()
	rng := stats.NewRNG(99)
	for trial := 0; trial < 20; trial++ {
		cfg := randomConfig(rng, g, o)
		first, err := cache.Propagate(e, cfg)
		if err != nil {
			t.Fatal(err)
		}
		again, err := cache.Propagate(e, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if first != again {
			t.Fatalf("trial %d: cache returned distinct pointers for identical config", trial)
		}
		direct, err := e.Propagate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := range direct.sel {
			if direct.sel[i] != first.sel[i] {
				t.Fatalf("trial %d: cached outcome differs at AS %d", trial, i)
			}
		}
	}
	if hits, misses := cache.Stats(); hits != 20 || misses == 0 {
		t.Fatalf("cache stats hits=%d misses=%d, want 20 hits", hits, misses)
	}
}

// TestConfigKeyCanonical checks that Key is order-insensitive across
// announcement order but sensitive to everything that shapes outcomes.
func TestConfigKeyCanonical(t *testing.T) {
	a := Config{Anns: []Announcement{{Link: 2, Prepend: 1}, {Link: 0, Poison: []topo.ASN{9, 7}}}}
	b := Config{Anns: []Announcement{{Link: 0, Poison: []topo.ASN{9, 7}}, {Link: 2, Prepend: 1}}}
	if a.Key() != b.Key() {
		t.Fatalf("announcement order changed key: %q vs %q", a.Key(), b.Key())
	}
	c := Config{Anns: []Announcement{{Link: 0, Poison: []topo.ASN{7, 9}}, {Link: 2, Prepend: 1}}}
	if a.Key() == c.Key() {
		t.Fatal("poison order is outcome-relevant (AS-path shape) but did not change key")
	}
	d := Config{Anns: []Announcement{{Link: 2, Prepend: 2}, {Link: 0, Poison: []topo.ASN{9, 7}}}}
	if a.Key() == d.Key() {
		t.Fatal("prepend change did not change key")
	}
}

// BenchmarkPropagateReference measures the retained pre-optimization
// implementation on the same workload as BenchmarkPropagateFullScale,
// for an on-hardware before/after comparison (scripts/bench.sh records
// both).
func BenchmarkPropagateReference(b *testing.B) {
	g, o := worldForTest(b, 42, 4000)
	e, err := NewEngine(g, o, DefaultParams(42))
	if err != nil {
		b.Fatal(err)
	}
	cfg := allLinksConfig(7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := refPropagate(e, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
